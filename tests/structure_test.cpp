#include "logic/structure.h"

#include <gtest/gtest.h>

#include "logic/evaluate.h"
#include "logic/parser.h"

namespace swfomc::logic {
namespace {

class StructureTest : public ::testing::Test {
 protected:
  StructureTest() {
    r_ = vocab_.AddRelation("R", 2);
    u_ = vocab_.AddRelation("U", 1);
    p_ = vocab_.AddRelation("P", 0);
  }
  Vocabulary vocab_;
  RelationId r_, u_, p_;
};

TEST_F(StructureTest, TupleCountAndLayout) {
  Structure s(vocab_, 3);
  EXPECT_EQ(s.TupleCount(), 9u + 3u + 1u);
  EXPECT_EQ(s.RelationOffset(r_), 0u);
  EXPECT_EQ(s.RelationOffset(u_), 9u);
  EXPECT_EQ(s.RelationOffset(p_), 12u);
  EXPECT_EQ(s.RelationBitCount(r_), 9u);
  EXPECT_EQ(s.RelationBitCount(p_), 1u);
}

TEST_F(StructureTest, GetSetRoundTrip) {
  Structure s(vocab_, 3);
  EXPECT_FALSE(s.Get(r_, {1, 2}));
  s.Set(r_, {1, 2}, true);
  EXPECT_TRUE(s.Get(r_, {1, 2}));
  EXPECT_FALSE(s.Get(r_, {2, 1}));  // mixed radix is order sensitive
  s.Set(p_, {}, true);
  EXPECT_TRUE(s.Get(p_, {}));
  EXPECT_EQ(s.Cardinality(r_), 1u);
}

TEST_F(StructureTest, FlatIndexBijective) {
  Structure s(vocab_, 3);
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 3; ++a) {
    for (std::uint64_t b = 0; b < 3; ++b) {
      seen.insert(s.FlatIndex(r_, {a, b}));
    }
  }
  for (std::uint64_t a = 0; a < 3; ++a) seen.insert(s.FlatIndex(u_, {a}));
  seen.insert(s.FlatIndex(p_, {}));
  EXPECT_EQ(seen.size(), s.TupleCount());
  EXPECT_EQ(*seen.rbegin(), s.TupleCount() - 1);
}

TEST_F(StructureTest, AssignFromMaskEnumeratesAllWorlds) {
  Vocabulary small;
  small.AddRelation("Q", 1);
  Structure s(small, 2);
  std::set<std::pair<bool, bool>> seen;
  for (std::uint64_t mask = 0; mask < 4; ++mask) {
    s.AssignFromMask(mask);
    seen.emplace(s.Get(0, {0}), s.Get(0, {1}));
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST_F(StructureTest, WeightIsProductOverTuples) {
  Vocabulary weighted;
  RelationId q = weighted.AddRelation("Q", 1, numeric::BigRational(3),
                                      numeric::BigRational::Fraction(1, 2));
  Structure s(weighted, 2);
  // Both absent: (1/2)^2.
  EXPECT_EQ(s.Weight(), numeric::BigRational::Fraction(1, 4));
  s.Set(q, {0}, true);
  EXPECT_EQ(s.Weight(), numeric::BigRational::Fraction(3, 2));
  s.Set(q, {1}, true);
  EXPECT_EQ(s.Weight(), numeric::BigRational(9));
}

TEST_F(StructureTest, WeightWithNegativeWeights) {
  Vocabulary weighted;
  weighted.AddRelation("A", 1, numeric::BigRational(1),
                       numeric::BigRational(-1));
  Structure s(weighted, 1);
  EXPECT_EQ(s.Weight(), numeric::BigRational(-1));
  s.Set(0, {0}, true);
  EXPECT_EQ(s.Weight(), numeric::BigRational(1));
}

TEST_F(StructureTest, EvaluateAtomsAndConnectives) {
  Structure s(vocab_, 2);
  s.Set(r_, {0, 1}, true);
  s.Set(u_, {0}, true);
  Formula f = ParseStrict("R(0,1) & U(0) & !U(1)", vocab_);
  EXPECT_TRUE(Evaluate(s, f));
  Formula g = ParseStrict("R(1,0)", vocab_);
  EXPECT_FALSE(Evaluate(s, g));
}

TEST_F(StructureTest, EvaluateQuantifiers) {
  Structure s(vocab_, 3);
  for (std::uint64_t a = 0; a < 3; ++a) {
    s.Set(r_, {a, (a + 1) % 3}, true);  // a directed 3-cycle
  }
  EXPECT_TRUE(Evaluate(s, ParseStrict("forall x exists y R(x,y)", vocab_)));
  EXPECT_FALSE(Evaluate(s, ParseStrict("exists x forall y R(x,y)", vocab_)));
  EXPECT_TRUE(Evaluate(
      s, ParseStrict("forall x forall y (R(x,y) => !R(y,x))", vocab_)));
}

TEST_F(StructureTest, EvaluateEquality) {
  Structure s(vocab_, 2);
  EXPECT_TRUE(Evaluate(s, ParseStrict("forall x (x = x)", vocab_)));
  EXPECT_FALSE(Evaluate(s, ParseStrict("forall x forall y (x = y)", vocab_)));
  EXPECT_TRUE(
      Evaluate(s, ParseStrict("exists x exists y (x != y)", vocab_)));
}

TEST_F(StructureTest, EvaluateWithAssignment) {
  Structure s(vocab_, 2);
  s.Set(u_, {1}, true);
  Formula f = ParseStrict("U(x)", vocab_);
  EXPECT_FALSE(Evaluate(s, f, {{"x", 0}}));
  EXPECT_TRUE(Evaluate(s, f, {{"x", 1}}));
  EXPECT_THROW(Evaluate(s, f), std::invalid_argument);  // unbound
}

TEST_F(StructureTest, CountSatisfiedGroundings) {
  Structure s(vocab_, 2);
  s.Set(r_, {0, 0}, true);
  s.Set(r_, {0, 1}, true);
  Formula f = ParseStrict("R(x,y)", vocab_);
  EXPECT_EQ(CountSatisfiedGroundings(s, f), 2u);
  // Implication satisfied by vacuity counts too (MLN semantics).
  Formula g = ParseStrict("R(x,y) => U(y)", vocab_);
  EXPECT_EQ(CountSatisfiedGroundings(s, g), 2u);  // the two R-true pairs fail
  Formula sentence = ParseStrict("R(0,0)", vocab_);
  EXPECT_EQ(CountSatisfiedGroundings(s, sentence), 1u);
}

TEST_F(StructureTest, EmptyDomain) {
  Structure s(vocab_, 0);
  EXPECT_EQ(s.TupleCount(), 1u);  // just the 0-ary P
  EXPECT_TRUE(Evaluate(s, ParseStrict("forall x U(x)", vocab_)));
  EXPECT_FALSE(Evaluate(s, ParseStrict("exists x U(x)", vocab_)));
}

}  // namespace
}  // namespace swfomc::logic
