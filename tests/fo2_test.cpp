// Tests for the Appendix C lifted FO² algorithm: normal form construction
// and the cell decomposition, validated exactly against the grounded
// engine and against the paper's closed forms.

#include "fo2/cell_algorithm.h"

#include <gtest/gtest.h>

#include "fo2/fo2_normal_form.h"
#include "grounding/grounded_wfomc.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "logic/transform.h"
#include "numeric/combinatorics.h"

namespace swfomc::fo2 {
namespace {

using numeric::BigInt;
using numeric::BigRational;

TEST(UniversalFormTest, MatrixIsQuantifierFreeOverXY) {
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse("forall x exists y R(x,y)", &vocab);
  UniversalForm form = ToUniversalForm(f, vocab);
  EXPECT_FALSE(logic::ContainsQuantifier(form.matrix));
  for (const std::string& v : logic::FreeVariables(form.matrix)) {
    EXPECT_TRUE(v == UniversalForm::x() || v == UniversalForm::y()) << v;
  }
  // Skolem predicates carry weight (1, -1).
  bool has_skolem = false;
  for (logic::RelationId id = 0; id < form.vocabulary.size(); ++id) {
    if (form.vocabulary.negative_weight(id) == BigRational(-1)) {
      has_skolem = true;
    }
  }
  EXPECT_TRUE(has_skolem);
}

TEST(UniversalFormTest, RejectsThreeVariables) {
  logic::Vocabulary vocab;
  logic::Formula f =
      logic::Parse("forall x forall y forall z (R(x,y) | R(y,z))", &vocab);
  EXPECT_THROW(ToUniversalForm(f, vocab), std::invalid_argument);
}

TEST(UniversalFormTest, RejectsHighArity) {
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse("forall x forall y T(x,y,x)", &vocab);
  EXPECT_THROW(ToUniversalForm(f, vocab), std::invalid_argument);
}

TEST(UniversalFormTest, RejectsConstantsAndFreeVariables) {
  logic::Vocabulary vocab;
  logic::Formula with_const = logic::Parse("forall x R(x,0)", &vocab);
  EXPECT_THROW(ToUniversalForm(with_const, vocab), std::invalid_argument);
  logic::Formula open = logic::Parse("R(x,y)", &vocab);
  EXPECT_THROW(ToUniversalForm(open, vocab), std::invalid_argument);
}

// The decisive property test: lifted == grounded for a basket of FO²
// sentences with nontrivial weights, for n = 0..3.
TEST(LiftedWfomcTest, AgreesWithGroundedEngine) {
  const char* sentences[] = {
      "forall x forall y (R(x) | S(x,y) | T(y))",  // Table 1
      "forall x exists y S(x,y)",
      "exists y R(y)",
      "exists x exists y S(x,y)",
      "forall x forall y (S(x,y) => S(y,x))",
      "forall x (R(x) <=> exists y S(x,y))",
      "forall x exists y (S(x,y) & R(y))",
      "exists x forall y (S(x,y) | T(y))",
      "forall x forall y (S(x,y) => x = y)",
      "forall x S(x,x)",
      "forall x exists y (S(x,y) & x != y)",
      "(exists x R(x)) => (forall x exists y S(x,y))",
  };
  logic::Vocabulary vocab;
  vocab.AddRelation("R", 1, BigRational(2), BigRational(1));
  vocab.AddRelation("S", 2, BigRational::Fraction(1, 2), BigRational(1));
  vocab.AddRelation("T", 1, BigRational(1), BigRational(3));
  for (const char* text : sentences) {
    logic::Formula f = logic::ParseStrict(text, vocab);
    for (std::uint64_t n = 0; n <= 3; ++n) {
      BigRational lifted = LiftedWFOMC(f, vocab, n);
      BigRational grounded = grounding::GroundedWFOMC(f, vocab, n);
      EXPECT_EQ(lifted, grounded) << text << " at n=" << n;
    }
  }
}

TEST(LiftedWfomcTest, UnweightedClosedForms) {
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse("forall x exists y R(x,y)", &vocab);
  for (std::uint64_t n = 1; n <= 8; ++n) {
    BigInt expected = BigInt::Pow(BigInt::Pow(BigInt(2), n) - BigInt(1), n);
    EXPECT_EQ(LiftedFOMC(f, vocab, n), expected) << n;
  }
}

TEST(LiftedWfomcTest, Table1FormulaMatchesClosedFormLargerN) {
  logic::Vocabulary vocab;
  logic::Formula f =
      logic::Parse("forall x forall y (R(x) | S(x,y) | T(y))", &vocab);
  for (std::uint64_t n = 1; n <= 8; ++n) {
    BigInt expected(0);
    for (std::uint64_t k = 0; k <= n; ++k) {
      for (std::uint64_t m = 0; m <= n; ++m) {
        expected += numeric::Binomial(n, k) * numeric::Binomial(n, m) *
                    BigInt::Pow(BigInt(2), n * n - k * m);
      }
    }
    EXPECT_EQ(LiftedFOMC(f, vocab, n), expected) << n;
  }
}

TEST(LiftedWfomcTest, AppendixCExampleSymmetricDisjunction) {
  // ϕ* = ∀x∀y (R(x,y) | T(x,y)) & (R(x,y) | T(y,x)): Appendix C computes
  // p1^{n(n-1)/2} p2^n with p1 over pairs and p2 over the diagonal.
  // With weights (1,1): per unordered pair {a,b} there are 16 assignments
  // to R(a,b),R(b,a),T(a,b),T(b,a); the constraint for the pair is
  // (R(a,b)|T(a,b)) & (R(a,b)|T(b,a)) & (R(b,a)|T(b,a)) & (R(b,a)|T(a,b));
  // count satisfying: R(a,b)&R(b,a) free T: 4; R(a,b),!R(b,a): T(b,a)&T(a,b)
  // forced: 1; symmetric 1; !R&!R: T both forced: 1 -> 7.
  // Diagonal: (R(c,c)|T(c,c)) -> 3.
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse(
      "forall x forall y ((R(x,y) | T(x,y)) & (R(x,y) | T(y,x)))", &vocab);
  for (std::uint64_t n = 1; n <= 6; ++n) {
    BigInt expected = BigInt::Pow(BigInt(7), n * (n - 1) / 2) *
                      BigInt::Pow(BigInt(3), n);
    EXPECT_EQ(LiftedFOMC(f, vocab, n), expected) << n;
  }
}

TEST(LiftedWfomcTest, ZeroAryShannonExpansion) {
  logic::Vocabulary vocab;
  vocab.AddRelation("P", 0, BigRational(5), BigRational(1));
  vocab.AddRelation("U", 1, BigRational(1), BigRational(1));
  logic::Formula f = logic::ParseStrict("P => forall x U(x)", vocab);
  for (std::uint64_t n = 1; n <= 3; ++n) {
    EXPECT_EQ(LiftedWFOMC(f, vocab, n),
              grounding::GroundedWFOMC(f, vocab, n))
        << n;
  }
}

TEST(LiftedWfomcTest, NegativeWeightsRoundTrip) {
  // Negative weights flow through the lifted path (needed by the MLN
  // reduction); verify against grounding.
  logic::Vocabulary vocab;
  vocab.AddRelation("A", 1, BigRational(1), BigRational(-1));
  vocab.AddRelation("S", 2, BigRational(2), BigRational(1));
  logic::Formula f =
      logic::ParseStrict("forall x (A(x) | exists y S(x,y))", vocab);
  for (std::uint64_t n = 1; n <= 3; ++n) {
    EXPECT_EQ(LiftedWFOMC(f, vocab, n),
              grounding::GroundedWFOMC(f, vocab, n))
        << n;
  }
}

TEST(LiftedWfomcTest, UnsatisfiableSentence) {
  logic::Vocabulary vocab;
  logic::Formula f =
      logic::Parse("(forall x U(x)) & (exists x !U(x))", &vocab);
  EXPECT_EQ(LiftedFOMC(f, vocab, 4), BigInt(0));
}

TEST(LiftedWfomcTest, PolynomialScalingSmokeTest) {
  // The data-complexity claim: n = 40 must be effortless for a fixed FO²
  // sentence (the grounded engine would need 2^1600 worlds).
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse("forall x exists y R(x,y)", &vocab);
  BigInt count = LiftedFOMC(f, vocab, 40);
  BigInt expected =
      BigInt::Pow(BigInt::Pow(BigInt(2), 40) - BigInt(1), 40);
  EXPECT_EQ(count, expected);
}

TEST(LiftedProbabilityTest, MatchesGroundedProbability) {
  logic::Vocabulary vocab;
  vocab.AddRelation("S", 2, BigRational(1), BigRational(1));
  logic::Formula f = logic::ParseStrict("forall x exists y S(x,y)", vocab);
  for (std::uint64_t n = 1; n <= 3; ++n) {
    EXPECT_EQ(LiftedProbability(f, vocab, n),
              grounding::GroundedProbability(f, vocab, n))
        << n;
  }
}

TEST(LiftedProbabilityTest, ZeroOneLawDirections) {
  // µ_n(∀x∃y S(x,y)) = (1 - 2^{-n})^n -> 1 (Fagin; the paper's intro
  // misstates this limit as 0 — see EXPERIMENTS.md), while the dual
  // µ_n(∃x∀y S(x,y)) -> 0. Under p = 1/2 the two are exact complements
  // (negate S).
  logic::Vocabulary vocab;
  vocab.AddRelation("S", 2);
  logic::Formula ae = logic::ParseStrict("forall x exists y S(x,y)", vocab);
  logic::Formula ea = logic::ParseStrict("exists x forall y S(x,y)", vocab);
  for (std::uint64_t n = 1; n <= 6; ++n) {
    BigRational mu_ae = LiftedProbability(ae, vocab, n);
    BigRational mu_ea = LiftedProbability(ea, vocab, n);
    EXPECT_EQ(mu_ae + mu_ea, BigRational(1)) << n;
  }
  EXPECT_GT(LiftedProbability(ae, vocab, 8), BigRational::Fraction(9, 10));
  EXPECT_LT(LiftedProbability(ea, vocab, 8), BigRational::Fraction(1, 10));
}

TEST(CellStatsTest, Reported) {
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse("forall x exists y R(x,y)", &vocab);
  CellStats stats;
  LiftedWFOMC(f, vocab, 5, &stats);
  EXPECT_GT(stats.cells, 0u);
  EXPECT_GT(stats.valid_cells, 0u);
  EXPECT_GT(stats.composition_terms, 0u);
}

}  // namespace
}  // namespace swfomc::fo2
