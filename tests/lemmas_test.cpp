// Tests for the paper's three WFOMC-preserving rewritings (Lemmas 3.3-3.5).
// Each lemma's guarantee is WFOMC equality over an extended vocabulary for
// every domain size; we verify it exactly against the grounded engine.

#include <gtest/gtest.h>

#include "grounding/grounded_wfomc.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "logic/transform.h"
#include "transforms/equality_removal.h"
#include "transforms/negation_removal.h"
#include "transforms/skolemization.h"

namespace swfomc::transforms {
namespace {

using numeric::BigRational;

void ExpectWfomcPreserved(const char* text, logic::Vocabulary vocabulary,
                          std::uint64_t max_n,
                          const RewriteResult& rewritten) {
  logic::Formula original = logic::ParseStrict(text, vocabulary);
  for (std::uint64_t n = 1; n <= max_n; ++n) {
    BigRational before = grounding::GroundedWFOMC(original, vocabulary, n);
    BigRational after =
        grounding::GroundedWFOMC(rewritten.sentence, rewritten.vocabulary, n);
    EXPECT_EQ(before, after) << text << " at n=" << n;
  }
}

logic::Vocabulary WeightedVocab() {
  logic::Vocabulary vocab;
  vocab.AddRelation("R", 2, BigRational(2), BigRational(1));
  vocab.AddRelation("U", 1, BigRational::Fraction(1, 2), BigRational(3));
  vocab.AddRelation("V", 1, BigRational(1), BigRational(1));
  return vocab;
}

TEST(SkolemizationTest, RemovesAllExistentials) {
  logic::Vocabulary vocab = WeightedVocab();
  logic::Formula f = logic::ParseStrict("forall x exists y R(x,y)", vocab);
  RewriteResult result = Skolemize(f, vocab);
  EXPECT_FALSE(logic::ContainsExistentialInNNFSense(result.sentence));
  // The gadget adds a replacement predicate Z with weights (1, 1) and a
  // cancellation predicate Sk with weights (1, -1).
  ASSERT_EQ(result.vocabulary.size(), vocab.size() + 2);
  logic::RelationId z = vocab.size();
  EXPECT_EQ(result.vocabulary.positive_weight(z), BigRational(1));
  EXPECT_EQ(result.vocabulary.negative_weight(z), BigRational(1));
  logic::RelationId sk = vocab.size() + 1;
  EXPECT_EQ(result.vocabulary.positive_weight(sk), BigRational(1));
  EXPECT_EQ(result.vocabulary.negative_weight(sk), BigRational(-1));
}

TEST(SkolemizationTest, PreservesWfomcForallExists) {
  logic::Vocabulary vocab = WeightedVocab();
  logic::Formula f = logic::ParseStrict("forall x exists y R(x,y)", vocab);
  ExpectWfomcPreserved("forall x exists y R(x,y)", vocab, 3,
                       Skolemize(f, vocab));
}

TEST(SkolemizationTest, PreservesWfomcPureExistential) {
  logic::Vocabulary vocab = WeightedVocab();
  logic::Formula f = logic::ParseStrict("exists y U(y)", vocab);
  ExpectWfomcPreserved("exists y U(y)", vocab, 4, Skolemize(f, vocab));
}

TEST(SkolemizationTest, PreservesWfomcNestedAlternation) {
  logic::Vocabulary vocab = WeightedVocab();
  const char* text = "exists x forall y (R(x,y) | U(y))";
  logic::Formula f = logic::ParseStrict(text, vocab);
  ExpectWfomcPreserved(text, vocab, 3, Skolemize(f, vocab));
}

TEST(SkolemizationTest, PreservesWfomcExistsUnderDisjunction) {
  logic::Vocabulary vocab = WeightedVocab();
  const char* text = "forall x (U(x) | exists y (R(x,y) & V(y)))";
  logic::Formula f = logic::ParseStrict(text, vocab);
  ExpectWfomcPreserved(text, vocab, 3, Skolemize(f, vocab));
}

TEST(SkolemizationTest, PreservesWfomcNegatedUniversal) {
  // NNF turns !(forall) into an existential; Skolemization must handle it.
  logic::Vocabulary vocab = WeightedVocab();
  const char* text = "!(forall x U(x)) & forall x V(x)";
  logic::Formula f = logic::ParseStrict(text, vocab);
  ExpectWfomcPreserved(text, vocab, 3, Skolemize(f, vocab));
}

TEST(SkolemizationTest, DoesNotPreserveUnweightedCount) {
  // Section 3.1: if FOMC were preserved, satisfiability of arbitrary FO
  // would reduce to the decidable ∀* fragment. Sanity-check the asymmetry.
  logic::Vocabulary vocab;
  vocab.AddRelation("R", 2);
  logic::Formula f = logic::ParseStrict("forall x exists y R(x,y)", vocab);
  RewriteResult result = Skolemize(f, vocab);
  logic::Vocabulary unweighted = result.vocabulary;
  for (logic::RelationId id = 0; id < unweighted.size(); ++id) {
    unweighted.SetWeights(id, 1, 1);
  }
  // (2^2-1)^2 = 9 models originally; the Skolemized sentence with flat
  // weights counts something else.
  EXPECT_NE(grounding::GroundedWFOMC(result.sentence, unweighted, 2),
            BigRational(9));
}

TEST(NegationRemovalTest, ProducesPositiveSentence) {
  logic::Vocabulary vocab = WeightedVocab();
  const char* text = "forall x forall y (R(x,y) | !U(x) | !V(y))";
  logic::Formula f = logic::ParseStrict(text, vocab);
  RewriteResult result = RemoveNegations(f, vocab);
  // No negation nodes anywhere.
  std::function<bool(const logic::Formula&)> positive =
      [&](const logic::Formula& g) {
        if (g->kind() == logic::FormulaKind::kNot) return false;
        for (const logic::Formula& child : g->children()) {
          if (!positive(child)) return false;
        }
        return true;
      };
  EXPECT_TRUE(positive(result.sentence))
      << logic::ToString(result.sentence, result.vocabulary);
}

TEST(NegationRemovalTest, PreservesWfomcSingleNegation) {
  logic::Vocabulary vocab = WeightedVocab();
  const char* text = "forall x (U(x) | !V(x))";
  logic::Formula f = logic::ParseStrict(text, vocab);
  ExpectWfomcPreserved(text, vocab, 4, RemoveNegations(f, vocab));
}

TEST(NegationRemovalTest, PreservesWfomcMultipleNegations) {
  logic::Vocabulary vocab = WeightedVocab();
  const char* text = "forall x forall y (!R(x,y) | !U(x) | V(y))";
  logic::Formula f = logic::ParseStrict(text, vocab);
  ExpectWfomcPreserved(text, vocab, 3, RemoveNegations(f, vocab));
}

TEST(NegationRemovalTest, PreservesWfomcNegatedEquality) {
  logic::Vocabulary vocab = WeightedVocab();
  const char* text = "forall x forall y (R(x,y) | x = y)";
  logic::Formula f = logic::ParseStrict(text, vocab);
  // NNF of the matrix has no negation, but dualized: check a variant with
  // explicit disequality.
  const char* text2 = "forall x forall y (R(x,y) | !(x = y))";
  logic::Formula f2 = logic::ParseStrict(text2, vocab);
  ExpectWfomcPreserved(text, vocab, 3, RemoveNegations(f, vocab));
  ExpectWfomcPreserved(text2, vocab, 3, RemoveNegations(f2, vocab));
}

TEST(NegationRemovalTest, RejectsNonUniversalInput) {
  logic::Vocabulary vocab = WeightedVocab();
  logic::Formula f = logic::ParseStrict("exists x U(x)", vocab);
  EXPECT_THROW(RemoveNegations(f, vocab), std::invalid_argument);
}

TEST(NegationRemovalTest, ComposesWithSkolemization) {
  // The Corollary 3.2 pipeline: Skolemize, then remove negations; WFOMC
  // must survive both steps.
  logic::Vocabulary vocab = WeightedVocab();
  const char* text = "forall x exists y (R(x,y) & !U(y))";
  logic::Formula f = logic::ParseStrict(text, vocab);
  RewriteResult skolemized = Skolemize(f, vocab);
  RewriteResult positive =
      RemoveNegations(skolemized.sentence, skolemized.vocabulary);
  logic::Formula original = logic::ParseStrict(text, vocab);
  for (std::uint64_t n = 1; n <= 2; ++n) {
    EXPECT_EQ(grounding::GroundedWFOMC(original, vocab, n),
              grounding::GroundedWFOMC(positive.sentence,
                                       positive.vocabulary, n))
        << n;
  }
}

TEST(EqualityRemovalTest, StructuralRewrite) {
  logic::Vocabulary vocab = WeightedVocab();
  const char* text = "forall x forall y (R(x,y) | x = y)";
  logic::Formula f = logic::ParseStrict(text, vocab);
  EqualityRemovalResult result = RemoveEquality(f, vocab);
  EXPECT_TRUE(logic::IsEqualityFree(result.sentence));
  EXPECT_EQ(result.vocabulary.arity(result.equality_relation), 2u);
}

TEST(EqualityRemovalTest, RecoversWfomcViaInterpolation) {
  logic::Vocabulary vocab = WeightedVocab();
  const char* cases[] = {
      "forall x forall y (R(x,y) | x = y)",
      "forall x exists y (R(x,y) & x != y)",
      "exists x exists y (x != y & U(x) & U(y))",
  };
  for (const char* text : cases) {
    logic::Formula f = logic::ParseStrict(text, vocab);
    for (std::uint64_t n = 1; n <= 2; ++n) {
      BigRational direct = grounding::GroundedWFOMC(f, vocab, n);
      BigRational recovered = WFOMCViaEqualityRemoval(
          f, vocab, n,
          [](const logic::Formula& sentence,
             const logic::Vocabulary& vocabulary, std::uint64_t domain) {
            return grounding::GroundedWFOMC(sentence, vocabulary, domain);
          });
      EXPECT_EQ(direct, recovered) << text << " n=" << n;
    }
  }
}

TEST(EqualityRemovalTest, EqualityFreeSentencePassesThrough) {
  logic::Vocabulary vocab = WeightedVocab();
  const char* text = "forall x U(x)";
  logic::Formula f = logic::ParseStrict(text, vocab);
  BigRational direct = grounding::GroundedWFOMC(f, vocab, 2);
  BigRational recovered = WFOMCViaEqualityRemoval(
      f, vocab, 2,
      [](const logic::Formula& sentence, const logic::Vocabulary& vocabulary,
         std::uint64_t domain) {
        return grounding::GroundedWFOMC(sentence, vocabulary, domain);
      });
  EXPECT_EQ(direct, recovered);
}

}  // namespace
}  // namespace swfomc::transforms
