// Lemma 3.8 (pairing function), the counting-TM simulator, and the
// Appendix B encoder: FOMC(Θ1, n) = n! * #accepting(n), verified exactly
// by grounding Θ1 and counting with the DPLL engine.

#include "tm/encoder.h"

#include <gtest/gtest.h>

#include "grounding/grounded_wfomc.h"
#include "numeric/combinatorics.h"
#include "tm/pairing.h"
#include "tm/simulator.h"

namespace swfomc::tm {
namespace {

using numeric::BigInt;

TEST(PairingTest, CeilLog3) {
  EXPECT_EQ(CeilLog3(1), 0u);
  EXPECT_EQ(CeilLog3(2), 1u);
  EXPECT_EQ(CeilLog3(3), 1u);
  EXPECT_EQ(CeilLog3(4), 2u);
  EXPECT_EQ(CeilLog3(9), 2u);
  EXPECT_EQ(CeilLog3(10), 3u);
  EXPECT_THROW(CeilLog3(0), std::invalid_argument);
}

TEST(PairingTest, KnownValues) {
  // e(0, j) = 6j + 1.
  EXPECT_EQ(PairingEncode(0, 1).ToInt64(), 7);
  EXPECT_EQ(PairingEncode(0, 5).ToInt64(), 31);
  // e(1, 1) = 2 * 3^0 * 7 = 14.
  EXPECT_EQ(PairingEncode(1, 1).ToInt64(), 14);
  // e(1, 2) = 2 * 3^4 * 13 = 2106.
  EXPECT_EQ(PairingEncode(1, 2).ToInt64(), 2106);
}

TEST(PairingTest, DecodeInvertsEncode) {
  for (std::uint64_t i = 0; i <= 4; ++i) {
    for (std::uint64_t j = 1; j <= 12; ++j) {
      auto [di, dj] = PairingDecode(PairingEncode(i, j));
      EXPECT_EQ(di, i) << i << "," << j;
      EXPECT_EQ(dj, j) << i << "," << j;
    }
  }
}

TEST(PairingTest, PropertyBRuntimeBound) {
  // e(i,j) >= (i * j^i + i)^2 — the property letting U1 run M_i on j.
  for (std::uint64_t i = 0; i <= 3; ++i) {
    for (std::uint64_t j = 1; j <= 6; ++j) {
      BigInt runtime_bound =
          BigInt::Pow(BigInt::FromUnsigned(i) *
                              BigInt::Pow(BigInt::FromUnsigned(j), i) +
                          BigInt::FromUnsigned(i),
                      2);
      EXPECT_TRUE(PairingEncode(i, j) >= runtime_bound) << i << "," << j;
    }
  }
}

TEST(PairingTest, DecodeRejectsNonImage) {
  EXPECT_THROW(PairingDecode(BigInt(5)), std::invalid_argument);
  EXPECT_THROW(PairingDecode(BigInt(0)), std::invalid_argument);
  EXPECT_THROW(PairingDecode(BigInt(-7)), std::invalid_argument);
}

// --- Simulator ----------------------------------------------------------

TEST(SimulatorTest, AlwaysAcceptHasOneRun) {
  CountingTuringMachine machine = AlwaysAcceptMachine();
  for (std::uint64_t n = 1; n <= 6; ++n) {
    EXPECT_EQ(CountAcceptingComputations(machine, n), BigInt(1)) << n;
  }
}

TEST(SimulatorTest, BranchingMachineCountsChoices) {
  CountingTuringMachine machine = BranchingMachine();
  for (std::uint64_t n = 1; n <= 6; ++n) {
    EXPECT_EQ(CountAcceptingComputations(machine, n),
              BigInt::Pow(BigInt(2), n - 1))
        << n;
  }
}

TEST(SimulatorTest, ParityMachineAlternates) {
  CountingTuringMachine machine = ParityMachine();
  for (std::uint64_t n = 1; n <= 6; ++n) {
    BigInt expected(n % 2 == 1 ? 1 : 0);  // n-1 transitions, accept on even
    EXPECT_EQ(CountAcceptingComputations(machine, n), expected) << n;
  }
}

TEST(SimulatorTest, TwoTapeBranching) {
  CountingTuringMachine machine = TwoTapeBranchingMachine();
  for (std::uint64_t n = 1; n <= 5; ++n) {
    // Guess steps are those taken in state q1: ⌊(n-1)/2⌋... but identical
    // guesses can merge only as distinct *paths*, which the simulator
    // counts separately; expected 2^{#q1-steps}.
    std::uint64_t q1_steps = (n - 1) / 2;
    EXPECT_EQ(CountAcceptingComputations(machine, n),
              BigInt::Pow(BigInt(2), q1_steps))
        << n;
  }
}

TEST(SimulatorTest, MultiEpochRunsLonger) {
  // With c = 2 epochs the parity machine makes 2n - 1 transitions.
  CountingTuringMachine machine = ParityMachine();
  for (std::uint64_t n = 1; n <= 4; ++n) {
    BigInt expected((2 * n - 1) % 2 == 0 ? 1 : 0);
    EXPECT_EQ(CountAcceptingComputations(machine, n, 2), expected) << n;
  }
}

TEST(SimulatorTest, EmptyInputAcceptsNothing) {
  EXPECT_EQ(CountAcceptingComputations(AlwaysAcceptMachine(), 0), BigInt(0));
}

TEST(SimulatorTest, DeadBranchesDie) {
  // A machine with no transition on symbol 1 dies immediately (input is
  // all ones) unless the run is a single step.
  CountingTuringMachine machine(1, 1, {0}, 0, {0});
  machine.AddTransition(0, false,
                        {0, false, CountingTuringMachine::Move::kRight});
  EXPECT_EQ(CountAcceptingComputations(machine, 1), BigInt(1));
  EXPECT_EQ(CountAcceptingComputations(machine, 3), BigInt(0));
}

// --- Encoder ------------------------------------------------------------

void ExpectEncodingIdentity(const CountingTuringMachine& machine,
                            std::uint64_t n, std::uint64_t epochs = 1) {
  EncodedMachine encoded = EncodeMachine(machine, epochs);
  BigInt fomc =
      grounding::GroundedFOMC(encoded.theta, encoded.vocabulary, n);
  BigInt expected = numeric::Factorial(n) *
                    CountAcceptingComputations(machine, n, epochs);
  EXPECT_EQ(fomc, expected)
      << machine.ToString() << " n=" << n << " epochs=" << epochs;
}

TEST(EncoderTest, SentenceIsFO3) {
  EncodedMachine encoded = EncodeMachine(ParityMachine());
  EXPECT_TRUE(logic::IsSentence(encoded.theta));
  EXPECT_TRUE(logic::InFragmentFOk(encoded.theta, 3));
}

TEST(EncoderTest, AlwaysAcceptIdentityN2) {
  ExpectEncodingIdentity(AlwaysAcceptMachine(), 2);
}

TEST(EncoderTest, BranchingIdentityN2) {
  ExpectEncodingIdentity(BranchingMachine(), 2);
}

TEST(EncoderTest, ParityIdentityN2) {
  ExpectEncodingIdentity(ParityMachine(), 2);
}

TEST(EncoderTest, ParityIdentityN2Rejects) {
  // n = 2 means 1 transition -> state q1 (odd) -> reject: FOMC must be 0.
  EncodedMachine encoded = EncodeMachine(ParityMachine());
  EXPECT_EQ(grounding::GroundedFOMC(encoded.theta, encoded.vocabulary, 2),
            BigInt(0));
}

TEST(EncoderTest, AlwaysAcceptIdentityN3) {
  ExpectEncodingIdentity(AlwaysAcceptMachine(), 3);
}

TEST(EncoderTest, BranchingIdentityN3) {
  ExpectEncodingIdentity(BranchingMachine(), 3);
}

TEST(EncoderTest, TwoTapeIdentityN2) {
  ExpectEncodingIdentity(TwoTapeBranchingMachine(), 2);
}

TEST(EncoderTest, MultiEpochIdentityN2) {
  ExpectEncodingIdentity(ParityMachine(), 2, /*epochs=*/2);
}

}  // namespace
}  // namespace swfomc::tm
