// WalkSAT / SampleSAT and the MC-SAT MLN sampler (the approximate
// baseline of Section 1, compared against exact inference).

#include "mcsat/mcsat.h"

#include <gtest/gtest.h>

#include <map>

#include "logic/parser.h"
#include "mcsat/walksat.h"
#include "logic/evaluate.h"
#include "mln/reduction.h"

namespace swfomc::mcsat {
namespace {

using numeric::BigRational;
using prop::Clause;
using prop::CnfFormula;
using prop::Literal;

CnfFormula MakeCnf(std::uint32_t variables,
                   std::vector<std::vector<int>> clauses) {
  // DIMACS-ish: positive int v means variable v-1 positive.
  CnfFormula cnf;
  cnf.variable_count = variables;
  for (const auto& clause : clauses) {
    Clause c;
    for (int lit : clause) {
      c.push_back(Literal{static_cast<prop::VarId>(std::abs(lit) - 1),
                          lit > 0});
    }
    cnf.clauses.push_back(std::move(c));
  }
  return cnf;
}

TEST(WalkSatTest, SolvesSimpleSatisfiable) {
  CnfFormula cnf = MakeCnf(3, {{1, 2}, {-1, 3}, {-2, -3}, {1, -3}});
  WalkSat solver(cnf, {}, /*seed=*/7);
  auto solution = solver.Solve();
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(cnf.IsSatisfiedBy(*solution));
}

TEST(WalkSatTest, GivesUpOnUnsatisfiable) {
  // x & !x, small budget: must return nullopt, not loop forever.
  CnfFormula cnf = MakeCnf(1, {{1}, {-1}});
  WalkSat solver(cnf, {.noise = 0.5, .max_flips = 200, .max_tries = 3},
                 /*seed=*/7);
  EXPECT_FALSE(solver.Solve().has_value());
}

TEST(WalkSatTest, EmptyFormulaIsTriviallySat) {
  CnfFormula cnf;
  cnf.variable_count = 4;
  WalkSat solver(cnf, {}, /*seed=*/1);
  auto solution = solver.Solve();
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ(solution->size(), 4u);
}

TEST(WalkSatTest, SolvesPigeonholeSizedInstance) {
  // A denser satisfiable instance: 8 variables, implication chain plus a
  // few cross clauses.
  std::vector<std::vector<int>> clauses;
  for (int i = 1; i < 8; ++i) clauses.push_back({-i, i + 1});
  clauses.push_back({1, 5});
  clauses.push_back({-8, 2});
  CnfFormula cnf = MakeCnf(8, clauses);
  WalkSat solver(cnf, {}, /*seed=*/99);
  auto solution = solver.Solve();
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(cnf.IsSatisfiedBy(*solution));
}

TEST(SampleSatTest, SamplesAreSolutions) {
  CnfFormula cnf = MakeCnf(4, {{1, 2}, {-2, 3}, {-3, -4}});
  WalkSat solver(cnf, {}, /*seed=*/11);
  for (int i = 0; i < 20; ++i) {
    auto sample = solver.Sample();
    ASSERT_TRUE(sample.has_value());
    EXPECT_TRUE(cnf.IsSatisfiedBy(*sample));
  }
}

TEST(SampleSatTest, CoversAllSolutionsOfTinyInstance) {
  // x1 | x2 has three solutions; repeated sampling should find each of
  // them (coverage, not uniformity — SampleSAT guarantees neither, which
  // is the paper's criticism, but coverage failure on 3 solutions in 300
  // draws would indicate a broken sampler).
  CnfFormula cnf = MakeCnf(2, {{1, 2}});
  WalkSat solver(cnf, {}, /*seed=*/5);
  std::map<std::vector<bool>, int> seen;
  for (int i = 0; i < 300; ++i) {
    auto sample = solver.Sample();
    ASSERT_TRUE(sample.has_value());
    ++seen[*sample];
  }
  EXPECT_EQ(seen.size(), 3u);
}

// --- MC-SAT on MLNs -----------------------------------------------------

mln::MarkovLogicNetwork SpouseNetwork() {
  logic::Vocabulary vocab;
  vocab.AddRelation("Spouse", 2);
  vocab.AddRelation("Female", 1);
  vocab.AddRelation("Male", 1);
  mln::MarkovLogicNetwork network(std::move(vocab));
  network.AddSoft(BigRational(3), "(Spouse(x,y) & Female(x)) -> Male(y)");
  return network;
}

McSatOptions FastOptions(std::uint64_t seed, std::uint64_t samples = 400) {
  McSatOptions options;
  options.seed = seed;
  options.burn_in = 50;
  options.samples = samples;
  options.walksat.max_flips = 2000;
  options.walksat.max_tries = 5;
  return options;
}

TEST(McSatTest, GroundsSoftConstraints) {
  mln::MarkovLogicNetwork network = SpouseNetwork();
  McSatSampler sampler(network, /*domain_size=*/2, FastOptions(1));
  // One soft constraint over (x, y) in [2]^2.
  EXPECT_EQ(sampler.ground_soft_count(), 4u);
  EXPECT_EQ(sampler.hard_clause_count(), 0u);
}

TEST(McSatTest, HardConstraintsHoldInEverySample) {
  logic::Vocabulary vocab;
  vocab.AddRelation("E", 2);
  mln::MarkovLogicNetwork network(std::move(vocab));
  network.AddHard("forall x !E(x,x)");
  network.AddSoft(BigRational(2), "E(x,y) -> E(y,x)");
  McSatSampler sampler(network, 2, FastOptions(3, 100));
  logic::Formula no_loops = logic::ParseStrict(
      "forall x !E(x,x)", network.vocabulary());
  for (const logic::Structure& world : sampler.DrawSamples()) {
    EXPECT_TRUE(logic::Evaluate(world, no_loops));
  }
}

TEST(McSatTest, NonPositiveWeightsRejectedUpstream) {
  // MarkovLogicNetwork::AddSoft already rejects w <= 0, so the sampler
  // never sees one; weight w = 1 is accepted and must be a no-op.
  logic::Vocabulary vocab;
  vocab.AddRelation("U", 1);
  mln::MarkovLogicNetwork network(std::move(vocab));
  EXPECT_THROW(network.AddSoft(BigRational(-2), "U(x)"),
               std::invalid_argument);
  network.AddSoft(BigRational(1), "U(x)");
  McSatSampler sampler(network, 2, FastOptions(1));
  EXPECT_EQ(sampler.ground_soft_count(), 0u);
}

TEST(McSatTest, UnsatisfiableHardConstraintsThrow) {
  logic::Vocabulary vocab;
  vocab.AddRelation("U", 1);
  mln::MarkovLogicNetwork network(std::move(vocab));
  network.AddHard("forall x (U(x) & !U(x))");
  McSatSampler sampler(network, 2, FastOptions(1, 10));
  EXPECT_THROW(sampler.DrawSamples(), std::runtime_error);
}

TEST(McSatTest, ConvergesToExactOnSpouseNetwork) {
  mln::MarkovLogicNetwork network = SpouseNetwork();
  logic::Formula query = logic::ParseStrict(
      "exists x Female(x)", network.vocabulary());
  double exact = network.BruteForceProbability(query, 2).ToDouble();
  McSatSampler sampler(network, 2, FastOptions(17, 1500));
  double estimate = sampler.EstimateProbability(query);
  EXPECT_NEAR(estimate, exact, 0.1);
}

TEST(McSatTest, SubUnitWeightsAreNormalized) {
  // (1/2, U(x)) ≡ (2, !U(x)): the sampler must accept w < 1 and converge
  // to the same exact answer.
  logic::Vocabulary vocab;
  vocab.AddRelation("U", 1);
  mln::MarkovLogicNetwork network(std::move(vocab));
  network.AddSoft(BigRational::Fraction(1, 2), "U(x)");
  logic::Formula query =
      logic::ParseStrict("exists x U(x)", network.vocabulary());
  double exact = network.BruteForceProbability(query, 2).ToDouble();
  McSatSampler sampler(network, 2, FastOptions(23, 1500));
  EXPECT_NEAR(sampler.EstimateProbability(query), exact, 0.1);
}

// Seed sweep: the estimator is stochastic but must stay in a sane band
// across seeds (a systematically biased or broken chain drifts far off).
class McSatSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McSatSeedSweep, EstimateWithinBand) {
  mln::MarkovLogicNetwork network = SpouseNetwork();
  logic::Formula query = logic::ParseStrict(
      "forall y Male(y)", network.vocabulary());
  double exact = network.BruteForceProbability(query, 2).ToDouble();
  McSatSampler sampler(network, 2, FastOptions(GetParam(), 800));
  EXPECT_NEAR(sampler.EstimateProbability(query), exact, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Seeds, McSatSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace swfomc::mcsat
