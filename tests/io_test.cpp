// The io module's contract, exercised three ways:
//
//  1. Error paths: every malformed input — unknown directives, duplicate
//     predicate declarations, bad weight lines, truncated CNFs, FO syntax
//     errors — must surface as io::ParseError with a 1-based line/column,
//     never as a crash or a bare unpositioned exception.
//  2. Round trips: PrintModel/PrintWeightedCnf are fixpoints of their
//     parsers (print(parse(x)) == normalize(x)), checked on hand-written
//     inputs and on seeded random instances (SWFOMC_FUZZ_SEED rotates in
//     CI; the base seed is printed for replay).
//  3. The golden bridge: tests/golden/models/*.model must stay faithful
//     mirrors of wfomc_golden.json — same sentence, weights, domain, and
//     pinned value — so `swfomc run --check` over those files is exactly
//     the golden corpus, replayed through the real binary.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "api/engine.h"
#include "io/cnf_format.h"
#include "io/diagnostics.h"
#include "io/json.h"
#include "io/model_format.h"
#include "io/runner.h"
#include "logic/printer.h"
#include "numeric/rational.h"
#include "test_util.h"
#include "wmc/dpll_counter.h"

namespace swfomc {
namespace {

using io::CnfRunReport;
using io::JsonValue;
using io::ModelRunReport;
using io::ModelSpec;
using io::ParseError;
using io::ParseJson;
using io::ParseModel;
using io::ParseWeightedCnf;
using io::PrintModel;
using io::PrintWeightedCnf;
using io::WeightedCnf;
using numeric::BigRational;

// Asserts that parsing `text` fails at the given position with a message
// containing `needle`.
template <typename Parser>
void ExpectParseErrorAt(Parser parse, const std::string& text,
                        std::size_t line, std::size_t column,
                        const std::string& needle) {
  try {
    parse(text);
    FAIL() << "expected ParseError for:\n" << text;
  } catch (const ParseError& error) {
    EXPECT_EQ(error.location().line, line) << error.what();
    EXPECT_EQ(error.location().column, column) << error.what();
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "message '" << error.what() << "' lacks '" << needle << "'";
  }
}

void ExpectModelErrorAt(const std::string& text, std::size_t line,
                        std::size_t column, const std::string& needle) {
  ExpectParseErrorAt([](const std::string& t) { return ParseModel(t); }, text,
                     line, column, needle);
}

void ExpectCnfErrorAt(const std::string& text, std::size_t line,
                      std::size_t column, const std::string& needle) {
  ExpectParseErrorAt(
      [](const std::string& t) { return ParseWeightedCnf(t); }, text, line,
      column, needle);
}

// --- JSON ----------------------------------------------------------------

TEST(Json, ParsesEveryValueKind) {
  JsonValue root = ParseJson(
      R"({"s": "a\nb", "n": -42, "f": 0.5, "b": true, "nil": null,
          "arr": [1, 2], "obj": {"k": "v"}})");
  EXPECT_EQ(root.At("s").string, "a\nb");
  EXPECT_EQ(root.At("n").string, "-42");
  EXPECT_EQ(root.At("f").string, "0.5");
  EXPECT_TRUE(root.At("b").boolean);
  EXPECT_EQ(root.At("nil").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(root.At("arr").array.size(), 2u);
  EXPECT_EQ(root.At("obj").At("k").string, "v");
  EXPECT_TRUE(root.Has("s"));
  EXPECT_FALSE(root.Has("missing"));
}

TEST(Json, NumbersSurviveVerbatim) {
  // Exact big integers must not pass through a double.
  const char* big = "123456789012345678901234567890123456789";
  JsonValue root = ParseJson(std::string("{\"v\": ") + big + "}");
  EXPECT_EQ(root.At("v").string, big);
}

TEST(Json, DumpRoundTrips) {
  JsonValue value = JsonValue::MakeObject();
  value.Add("name", JsonValue::MakeString("quote\" and \\ and \n"));
  value.Add("count", JsonValue::MakeNumber(std::uint64_t{7}));
  JsonValue& arr = value.Add("points", JsonValue::MakeArray());
  arr.array.push_back(JsonValue::MakeBool(false));
  arr.array.push_back(JsonValue::MakeNull());
  for (int indent : {-1, 0, 2}) {
    JsonValue reparsed = ParseJson(value.Dump(indent));
    EXPECT_EQ(reparsed.At("name").string, value.At("name").string);
    EXPECT_EQ(reparsed.At("count").string, "7");
    EXPECT_EQ(reparsed.At("points").array.size(), 2u);
  }
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  // Regression: MakeNumber(double) used to pass inf/nan straight through
  // "%.17g", emitting bare `inf`/`nan` tokens — invalid JSON that would
  // poison any consumer of the reports (the serve protocol included).
  for (double value : {std::numeric_limits<double>::infinity(),
                       -std::numeric_limits<double>::infinity(),
                       std::numeric_limits<double>::quiet_NaN()}) {
    JsonValue json = JsonValue::MakeNumber(value);
    EXPECT_EQ(json.kind, JsonValue::Kind::kNull);
    EXPECT_EQ(json.Dump(-1), "null");
  }
  // Finite values still render as numbers, and every rendering must be
  // re-parseable — the fixpoint the serve protocol relies on.
  JsonValue finite = JsonValue::MakeNumber(0.125);
  EXPECT_EQ(finite.kind, JsonValue::Kind::kNumber);
  EXPECT_EQ(ParseJson(finite.Dump(-1)).string, "0.125");
  EXPECT_EQ(JsonValue::MakeNumber(std::numeric_limits<double>::max()).kind,
            JsonValue::Kind::kNumber);
}

TEST(Json, ParserRejectsNonFiniteNumberTokens) {
  // The symmetric half: documents carrying the tokens the old writer
  // emitted must be rejected, not silently absorbed.
  auto parse = [](const std::string& t) { return ParseJson(t, "doc.json"); };
  for (const char* text :
       {"{\"v\": inf}", "{\"v\": -inf}", "{\"v\": nan}", "{\"v\": Infinity}",
        "{\"v\": NaN}", "inf", "nan"}) {
    EXPECT_THROW(parse(text), ParseError) << text;
  }
}

TEST(Json, ErrorsCarryLineAndColumn) {
  auto parse = [](const std::string& t) { return ParseJson(t, "doc.json"); };
  ExpectParseErrorAt(parse, "{\n  \"a\": 1,\n  \"a\": 2\n}", 3, 6,
                     "duplicate object key");
  ExpectParseErrorAt(parse, "{\"a\": }", 1, 7, "unexpected character");
  ExpectParseErrorAt(parse, "[1, 2", 1, 6, "unexpected end");
  ExpectParseErrorAt(parse, "{\"a\": \"unterminated", 1, 20, "unterminated");
  try {
    ParseJson("[", "doc.json");
    FAIL();
  } catch (const ParseError& error) {
    EXPECT_EQ(error.source(), "doc.json");
    EXPECT_NE(std::string(error.what()).find("doc.json:1:"),
              std::string::npos);
  }
}

// --- Model format --------------------------------------------------------

TEST(ModelFormat, ParsesAFullDocument) {
  ModelSpec spec = ParseModel(
      "# header comment\n"
      "model demo\n"
      "predicate S 2\n"
      "sentence forall x exists y S(x,y)  # trailing comment\n"
      "weight S 2 1/3\n"
      "domain 4\n"
      "method lifted-fo2\n"
      "expect -7/2\n");
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.domain_lo, 4u);
  EXPECT_EQ(spec.domain_hi, 4u);
  EXPECT_FALSE(spec.IsSweep());
  EXPECT_EQ(spec.method, api::Method::kLiftedFO2);
  ASSERT_TRUE(spec.expect.has_value());
  EXPECT_EQ(*spec.expect, BigRational::Fraction(-7, 2));
  logic::RelationId s = spec.vocabulary.Require("S");
  EXPECT_EQ(spec.vocabulary.arity(s), 2u);
  EXPECT_EQ(spec.vocabulary.positive_weight(s), BigRational(2));
  EXPECT_EQ(spec.vocabulary.negative_weight(s), BigRational::Fraction(1, 3));
  EXPECT_EQ(spec.sentence_text, "forall x exists y S(x,y)");
}

TEST(ModelFormat, ParsesSweepRanges) {
  ModelSpec spec = ParseModel("sentence exists x U(x)\ndomain 2..9\n");
  EXPECT_EQ(spec.domain_lo, 2u);
  EXPECT_EQ(spec.domain_hi, 9u);
  EXPECT_TRUE(spec.IsSweep());
  EXPECT_EQ(spec.method, api::Method::kAuto);
}

TEST(ModelFormat, SentenceDeclaresUnknownRelations) {
  ModelSpec spec = ParseModel("sentence R(x,y) & U(x)\ndomain 1\n");
  EXPECT_EQ(spec.vocabulary.size(), 2u);
  EXPECT_EQ(spec.vocabulary.arity(spec.vocabulary.Require("R")), 2u);
  EXPECT_EQ(spec.vocabulary.arity(spec.vocabulary.Require("U")), 1u);
}

TEST(ModelFormat, ErrorPathsReportLineAndColumn) {
  // Unknown directive.
  ExpectModelErrorAt("sentence true\ndomain 1\nfrobnicate 3\n", 3, 1,
                     "unknown directive");
  // Duplicate directives.
  ExpectModelErrorAt("model a\nmodel b\nsentence true\ndomain 1\n", 2, 1,
                     "duplicate 'model'");
  ExpectModelErrorAt("sentence true\nsentence false\ndomain 1\n", 2, 1,
                     "duplicate 'sentence'");
  ExpectModelErrorAt("sentence true\ndomain 1\ndomain 2\n", 3, 1,
                     "duplicate 'domain'");
  ExpectModelErrorAt(
      "sentence exists x U(x)\nweight U 1 2\nweight U 1 2\ndomain 1\n", 3, 8,
      "duplicate weight");
  // Predicate declarations.
  ExpectModelErrorAt("predicate S 2\npredicate S 2\nsentence true\ndomain 1\n",
                     2, 11, "duplicate predicate declaration");
  ExpectModelErrorAt("sentence true\npredicate S 2\ndomain 1\n", 2, 1,
                     "must precede the sentence");
  ExpectModelErrorAt("predicate s 1\nsentence true\ndomain 1\n", 1, 11,
                     "uppercase");
  ExpectModelErrorAt("predicate S x\nsentence true\ndomain 1\n", 1, 13,
                     "bad arity");
  // Weight lines.
  ExpectModelErrorAt("sentence true\nweight R 1 1\ndomain 1\n", 2, 8,
                     "unknown predicate");
  ExpectModelErrorAt("sentence exists x U(x)\nweight U 1\ndomain 1\n", 2, 1,
                     "takes 3 operands");
  ExpectModelErrorAt("sentence exists x U(x)\nweight U 2,5 1\ndomain 1\n", 2,
                     10, "bad rational");
  // Domain.
  ExpectModelErrorAt("sentence true\ndomain -3\n", 2, 8, "bad domain size");
  ExpectModelErrorAt("sentence true\ndomain 5..2\n", 2, 8, "empty domain");
  ExpectModelErrorAt(
      "sentence true\ndomain 0..18446744073709551615\n", 2, 8, "too wide");
  ExpectModelErrorAt("sentence true\ndomain 23058430092136939520\n", 2, 8,
                     "overflows");
  // Method / expect.
  ExpectModelErrorAt("sentence true\ndomain 1\nmethod dpll\n", 3, 8,
                     "unknown method");
  ExpectModelErrorAt("sentence true\ndomain 1\nexpect 1..2\n", 3, 8,
                     "bad rational");
  // Missing required directives: the EOF error points at the last real
  // line — a trailing '\n' must not shift it onto a phantom empty line.
  // (`domain` itself is optional — a domain-less model compiles lifted —
  // but `expect` is meaningless without one.)
  ExpectModelErrorAt("domain 3\n", 1, 1, "missing required directive");
  ExpectModelErrorAt("sentence true\nexpect 1\n", 2, 1,
                     "'expect' needs a 'domain' directive");
  ExpectModelErrorAt("sentence true\nexpect 2 = 1\n", 2, 1,
                     "'expect' needs a 'domain' directive");
  // FO syntax errors map to the sentence's line, offset by the column of
  // the offending token within the sentence text.
  ExpectModelErrorAt("sentence forall x S(x\ndomain 2\n", 1, 22,
                     "FO parse error");
  // The arity conflict is detected once the lexer has consumed the second
  // atom's argument list: column = sentence start (10) + offset 22.
  ExpectModelErrorAt("# pad\nsentence exists x U(x) & U(x,x)\ndomain 2\n", 2,
                     32, "arity");
}

TEST(ModelFormat, EofErrorsPointAtTheLastRealLine) {
  // Same document with and without the trailing newline: the EOF
  // diagnostic must render the identical file:line:column either way.
  for (const char* text : {"model demo\ndomain 3", "model demo\ndomain 3\n"}) {
    try {
      ParseModel(text, "demo.model");
      FAIL() << "expected ParseError for:\n" << text;
    } catch (const ParseError& error) {
      EXPECT_EQ(error.source(), "demo.model");
      EXPECT_EQ(error.location().line, 2u) << error.what();
      EXPECT_EQ(error.location().column, 1u) << error.what();
      EXPECT_NE(std::string(error.what()).find("demo.model:2:1"),
                std::string::npos)
          << error.what();
    }
  }
}

TEST(CnfFormat, EofErrorsPointAtTheLastRealLine) {
  for (const char* text : {"p cnf 2 2\n1 0", "p cnf 2 2\n1 0\n"}) {
    try {
      ParseWeightedCnf(text, "demo.cnf");
      FAIL() << "expected ParseError for:\n" << text;
    } catch (const ParseError& error) {
      EXPECT_EQ(error.source(), "demo.cnf");
      EXPECT_EQ(error.location().line, 2u) << error.what();
      EXPECT_EQ(error.location().column, 1u) << error.what();
      EXPECT_NE(std::string(error.what()).find("demo.cnf:2:1"),
                std::string::npos)
          << error.what();
    }
  }
}

TEST(ModelFormat, PrintIsAParserFixpoint) {
  ModelSpec spec = ParseModel(
      "model demo\n"
      "sentence   forall x   exists y ( S(x,y) )\n"
      "weight S 2 1\n"
      "domain 1..5\n"
      "method grounded\n"
      "expect 9\n");
  std::string canonical = PrintModel(spec);
  ModelSpec reparsed = ParseModel(canonical);
  EXPECT_EQ(PrintModel(reparsed), canonical);
  EXPECT_EQ(reparsed.domain_lo, 1u);
  EXPECT_EQ(reparsed.domain_hi, 5u);
  EXPECT_EQ(reparsed.method, api::Method::kGrounded);
  ASSERT_TRUE(reparsed.expect.has_value());
  EXPECT_EQ(*reparsed.expect, BigRational(9));
  // The canonical form declares every predicate explicitly.
  EXPECT_NE(canonical.find("predicate S 2"), std::string::npos);
}

TEST(ModelFormat, DomainIsOptionalAndOmittedByPrint) {
  // A domain-less model is a compile-only workload for the lifted
  // compiler; PrintModel must not invent a `domain 0` line for it.
  ModelSpec spec = ParseModel("sentence forall x U(x)\n");
  EXPECT_FALSE(spec.has_domain);
  std::string canonical = PrintModel(spec);
  EXPECT_EQ(canonical.find("domain"), std::string::npos);
  ModelSpec reparsed = ParseModel(canonical);
  EXPECT_FALSE(reparsed.has_domain);
  EXPECT_EQ(PrintModel(reparsed), canonical);
}

TEST(ModelFormat, RoundTripFuzz) {
  std::uint64_t base = testutil::FuzzBaseSeed(1);
  std::cout << "SWFOMC_FUZZ_SEED base = " << base << std::endl;
  for (std::uint64_t i = 0; i < 60; ++i) {
    std::uint64_t seed = base + i;
    testutil::RandomSentence random =
        i % 2 == 0 ? testutil::MakeRandomFO2Sentence(seed)
                   : testutil::MakeRandomGammaAcyclicSentence(seed,
                                                              2 + seed % 4);
    ModelSpec spec;
    spec.name = "fuzz-" + std::to_string(seed);
    spec.vocabulary = random.vocabulary;
    spec.sentence = random.sentence;
    spec.has_domain = true;
    spec.domain_lo = 1 + seed % 3;
    spec.domain_hi = spec.domain_lo + seed % 2;
    if (seed % 3 == 0) spec.method = api::Method::kGrounded;
    if (seed % 4 == 0) spec.expect = BigRational::Fraction(-3, 7);

    // print(parse(print(spec))) == print(spec): printing is canonical.
    std::string canonical = PrintModel(spec);
    SCOPED_TRACE(canonical);
    ModelSpec reparsed = ParseModel(canonical, "fuzz.model");
    EXPECT_EQ(PrintModel(reparsed), canonical);
    // And the reparse preserves the semantics, not just the text.
    EXPECT_EQ(logic::ToString(reparsed.sentence, reparsed.vocabulary),
              logic::ToString(spec.sentence, spec.vocabulary));
    ASSERT_EQ(reparsed.vocabulary.size(), spec.vocabulary.size());
    for (logic::RelationId id = 0; id < spec.vocabulary.size(); ++id) {
      EXPECT_EQ(reparsed.vocabulary.name(id), spec.vocabulary.name(id));
      EXPECT_EQ(reparsed.vocabulary.positive_weight(id),
                spec.vocabulary.positive_weight(id));
      EXPECT_EQ(reparsed.vocabulary.negative_weight(id),
                spec.vocabulary.negative_weight(id));
    }
    EXPECT_EQ(reparsed.domain_lo, spec.domain_lo);
    EXPECT_EQ(reparsed.domain_hi, spec.domain_hi);
    EXPECT_EQ(reparsed.method, spec.method);
    EXPECT_EQ(reparsed.expect, spec.expect);
  }
}

TEST(ModelFormat, MutationFuzzNeverCrashes) {
  // Random single-character mutations of a valid document must either
  // parse or throw ParseError — nothing else, and never a crash.
  const std::string valid =
      "model demo\npredicate S 2\nsentence forall x exists y S(x,y)\n"
      "weight S 1/2 -1\ndomain 1..4\nmethod auto\nexpect 343\n";
  std::uint64_t base = testutil::FuzzBaseSeed(1);
  std::mt19937_64 rng(base ^ 0x9e3779b97f4a7c15ull);
  const std::string alphabet =
      "abcdefgXYZ0123456789 .#/-_()&|!,\nqwS";
  for (int i = 0; i < 300; ++i) {
    std::string mutated = valid;
    std::size_t edits = 1 + rng() % 3;
    for (std::size_t e = 0; e < edits; ++e) {
      std::size_t at = rng() % mutated.size();
      switch (rng() % 3) {
        case 0: mutated[at] = alphabet[rng() % alphabet.size()]; break;
        case 1: mutated.erase(at, 1 + rng() % 3); break;
        default:
          mutated.insert(at, 1, alphabet[rng() % alphabet.size()]);
      }
      if (mutated.empty()) mutated = "x";
    }
    try {
      ModelSpec spec = ParseModel(mutated, "mutated.model");
      // Valid result: must still round-trip through the printer.
      EXPECT_EQ(PrintModel(ParseModel(PrintModel(spec))), PrintModel(spec));
    } catch (const ParseError& error) {
      EXPECT_GE(error.location().line, 1u);
      EXPECT_GE(error.location().column, 1u);
    }
  }
}

// --- Weighted CNF --------------------------------------------------------

TEST(CnfFormat, ParsesWeightsAndClauses) {
  WeightedCnf instance = ParseWeightedCnf(
      "c a comment\n"
      "p cnf 4 3\n"
      "w 1 1/2 3/2\n"    // both sides
      "w -2 2\n"         // literal form: sets w̄(2)
      "w 3 5 7\n"
      "1 -2 0\n"
      "3 4\n0\n"         // clause spanning lines
      "-1 0\n");
  EXPECT_EQ(instance.cnf.variable_count, 4u);
  ASSERT_EQ(instance.cnf.clauses.size(), 3u);
  EXPECT_EQ(instance.cnf.clauses[1],
            (prop::Clause{{2, true}, {3, true}}));
  EXPECT_EQ(instance.weights.Get(0).positive, BigRational::Fraction(1, 2));
  EXPECT_EQ(instance.weights.Get(0).negative, BigRational::Fraction(3, 2));
  EXPECT_EQ(instance.weights.Get(1).positive, BigRational(1));
  EXPECT_EQ(instance.weights.Get(1).negative, BigRational(2));
  EXPECT_EQ(instance.weights.Get(2).positive, BigRational(5));
  EXPECT_EQ(instance.weights.Get(2).negative, BigRational(7));
  EXPECT_EQ(instance.weights.Get(3).positive, BigRational(1));  // default
}

TEST(CnfFormat, ErrorPathsReportLineAndColumn) {
  ExpectCnfErrorAt("1 2 0\n", 1, 1, "header before");
  ExpectCnfErrorAt("p dnf 2 1\n1 0\n", 1, 1, "malformed header");
  ExpectCnfErrorAt("p cnf 2 1\np cnf 2 1\n", 2, 1, "duplicate 'p' header");
  ExpectCnfErrorAt("p cnf x 1\n", 1, 7, "bad variable count");
  // Counts beyond the 32-bit literal encoding are rejected, not wrapped.
  ExpectCnfErrorAt("p cnf 4294967297 1\n1 0\n", 1, 7,
                   "exceeds the supported maximum");
  ExpectCnfErrorAt("p cnf 2 1\n1 3 0\n", 2, 3, "out of range");
  ExpectCnfErrorAt("p cnf 2 1\n1 0\n2 0\n", 3, 3, "more clauses");
  ExpectCnfErrorAt("p cnf 2 2\n1 0\n", 2, 1, "truncated CNF");
  ExpectCnfErrorAt("p cnf 2 1\n1 2\n", 2, 1, "terminating 0");
  ExpectCnfErrorAt("p cnf 2 1\nw 1 0.5 1\n1 0\n", 2, 5, "bad rational");
  ExpectCnfErrorAt("p cnf 2 1\nw 1 1 2 3\n1 0\n", 2, 1,
                   "malformed weight line");
  // A weight line ending in a bare 0 is ambiguous (terminated literal
  // form vs w̄ = 0) and rejected either way; 0/1 spells the zero weight.
  ExpectCnfErrorAt("p cnf 2 1\nw 2 1/2 0\n1 0\n", 2, 9, "ambiguous");
  ExpectCnfErrorAt("p cnf 2 1\nw -2 1/2 0\n1 0\n", 2, 10, "ambiguous");
  ExpectCnfErrorAt("p cnf 2 1\nw 1 1 2 3 0\n1 0\n", 2, 1,
                   "no trailing 0 terminator");
  ExpectCnfErrorAt("p cnf 2 1\nw 0 1 1\n1 0\n", 2, 3, "out of range");
  ExpectCnfErrorAt("p cnf 2 1\nw 1 1 1\nw 1 2 2\n1 0\n", 3, 3, "set twice");
  ExpectCnfErrorAt("p cnf 2 1\nw -1 2\nw -1 3\n1 0\n", 3, 3, "set twice");
  ExpectCnfErrorAt("p cnf 2 1\n1 - 0\n", 2, 3, "bad literal");
}

TEST(CnfFormat, PrintIsAParserFixpoint) {
  WeightedCnf instance = ParseWeightedCnf(
      "c noise\np cnf 3 2\nw 2 -1 1/3\n1 -2 3 0\n-3 0\n");
  std::string canonical = PrintWeightedCnf(instance);
  WeightedCnf reparsed = ParseWeightedCnf(canonical);
  EXPECT_EQ(PrintWeightedCnf(reparsed), canonical);
  EXPECT_EQ(reparsed.cnf.clauses, instance.cnf.clauses);
}

TEST(CnfFormat, ZeroNegativeWeightRoundTripsAsFraction) {
  // w̄ = 0 prints as "0/1" (a bare trailing 0 is rejected as ambiguous).
  WeightedCnf instance = ParseWeightedCnf("p cnf 1 1\nw 1 2 0/1\n1 0\n");
  EXPECT_TRUE(instance.weights.Get(0).negative.IsZero());
  std::string canonical = PrintWeightedCnf(instance);
  EXPECT_NE(canonical.find("w 1 2 0/1"), std::string::npos);
  EXPECT_EQ(PrintWeightedCnf(ParseWeightedCnf(canonical)), canonical);
}

TEST(CnfFormat, RoundTripAndCountFuzz) {
  std::uint64_t base = testutil::FuzzBaseSeed(1);
  std::cout << "SWFOMC_FUZZ_SEED base = " << base << std::endl;
  std::mt19937_64 rng(base);
  for (int i = 0; i < 30; ++i) {
    WeightedCnf instance;
    instance.cnf = testutil::RandomCnf(&rng, 6, 8, 3);
    instance.weights = testutil::RandomWeights(&rng, 6, /*allow_negative=*/
                                               i % 2 == 0);
    std::string canonical = PrintWeightedCnf(instance);
    SCOPED_TRACE(canonical);
    WeightedCnf reparsed = ParseWeightedCnf(canonical, "fuzz.cnf");
    EXPECT_EQ(PrintWeightedCnf(reparsed), canonical);
    EXPECT_EQ(reparsed.cnf.clauses, instance.cnf.clauses);
    // The reparsed instance must count identically to the original.
    EXPECT_EQ(wmc::CountWeightedModels(reparsed.cnf, reparsed.weights),
              wmc::CountWeightedModels(instance.cnf, instance.weights));
  }
}

// --- Runner + reports ----------------------------------------------------

TEST(Runner, SinglePointModelReportsStatsAndRoute) {
  ModelSpec spec = ParseModel(
      "sentence exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))\n"
      "domain 3\nexpect 463\n");
  ModelRunReport report = io::RunModel(spec, {}, "triangle.model");
  EXPECT_EQ(report.method_used, api::Method::kGrounded);
  EXPECT_EQ(report.route.method, api::Method::kGrounded);
  EXPECT_NE(report.route.reason.find("grounded fallback"), std::string::npos);
  ASSERT_EQ(report.points.size(), 1u);
  EXPECT_EQ(report.points[0].value, BigRational(463));
  EXPECT_TRUE(report.check_passed);
  ASSERT_TRUE(report.grounded_stats.has_value());
  EXPECT_GE(report.grounded_stats->decisions, 1u);

  JsonValue json = io::ToJson(report);
  EXPECT_EQ(json.At("method").string, "grounded");
  EXPECT_EQ(json.At("check").string, "pass");
  EXPECT_EQ(json.At("points").array.at(0).At("wfomc").string, "463");
  EXPECT_TRUE(json.At("stats").Has("decisions"));
  // The document must be valid JSON in both renderings.
  ParseJson(json.Dump(2));
  ParseJson(json.Dump(-1));
}

TEST(Runner, SweepAndExpectMismatch) {
  ModelSpec spec = ParseModel(
      "sentence forall x exists y S(x,y)\ndomain 1..3\nexpect 999\n");
  ModelRunReport report = io::RunModel(spec);
  ASSERT_EQ(report.points.size(), 3u);
  EXPECT_EQ(report.points[0].value, BigRational(1));
  EXPECT_EQ(report.points[2].value, BigRational(343));
  EXPECT_FALSE(report.check_passed);  // 343 != 999
  JsonValue json = io::ToJson(report);
  EXPECT_EQ(json.At("check").string, "fail");
  EXPECT_EQ(json.At("domain").At("lo").string, "1");
  EXPECT_EQ(json.At("domain").At("hi").string, "3");
}

TEST(ModelFormat, ParsesAndPrintsPointExpects) {
  ModelSpec spec = ParseModel(
      "sentence forall x exists y S(x,y)\ndomain 1..3\n"
      "expect 2 = 9\nexpect 1 = 1\nexpect 343\n");
  ASSERT_EQ(spec.point_expects.size(), 2u);
  // Sorted ascending whatever the file order was.
  EXPECT_EQ(spec.point_expects[0].first, 1u);
  EXPECT_EQ(spec.point_expects[0].second, BigRational(1));
  EXPECT_EQ(spec.point_expects[1].first, 2u);
  EXPECT_EQ(spec.point_expects[1].second, BigRational(9));
  ASSERT_TRUE(spec.expect.has_value());
  EXPECT_EQ(*spec.expect, BigRational(343));
  std::string canonical = PrintModel(spec);
  EXPECT_NE(canonical.find("expect 1 = 1"), std::string::npos);
  EXPECT_EQ(PrintModel(ParseModel(canonical)), canonical);
}

TEST(ModelFormat, PointExpectErrorPaths) {
  const std::string header = "sentence exists x U(x)\ndomain 1..3\n";
  ExpectModelErrorAt(header + "expect 5 = 1\n", 3, 8,
                     "outside the domain range");
  ExpectModelErrorAt(header + "expect 2 = 1\nexpect 2 = 1\n", 4, 8,
                     "duplicate 'expect' for domain size 2");
  ExpectModelErrorAt(header + "expect 7\nexpect 3 = 7\n", 4, 8,
                     "conflicts with the plain 'expect'");
  ExpectModelErrorAt(header + "expect 1 2 3\n", 3, 1,
                     "takes either one operand");
}

TEST(Runner, MidSweepExpectMismatchFailsCheck) {
  // Regression: --check used to validate only points.back(), so a sweep
  // whose final point matched sailed through even when an intermediate
  // point disagreed with its `expect N = VALUE`.
  ModelSpec spec = ParseModel(
      "sentence forall x exists y S(x,y)\ndomain 1..3\n"
      "expect 2 = 999\nexpect 343\n");
  ModelRunReport report = io::RunModel(spec);
  ASSERT_EQ(report.points.size(), 3u);
  EXPECT_EQ(report.points[1].value, BigRational(9));    // not 999
  EXPECT_EQ(report.points[2].value, BigRational(343));  // final point fine
  EXPECT_FALSE(report.check_passed);
  ASSERT_TRUE(report.first_failed_point.has_value());
  EXPECT_EQ(*report.first_failed_point, 2u);
  JsonValue json = io::ToJson(report);
  EXPECT_EQ(json.At("check").string, "fail");
  EXPECT_EQ(json.At("points").array.at(1).At("check").string, "fail");
  EXPECT_EQ(json.At("points").array.at(1).At("expect").string, "999");
  // The matching final point still reports its own pass.
  EXPECT_EQ(json.At("points").array.at(2).At("check").string, "pass");
}

TEST(Runner, PointExpectsThatAllMatchPassTheCheck) {
  ModelSpec spec = ParseModel(
      "sentence forall x exists y S(x,y)\ndomain 1..3\n"
      "expect 1 = 1\nexpect 2 = 9\nexpect 343\n");
  ModelRunReport report = io::RunModel(spec);
  EXPECT_TRUE(report.check_passed);
  EXPECT_FALSE(report.first_failed_point.has_value());
  JsonValue json = io::ToJson(report);
  EXPECT_EQ(json.At("check").string, "pass");
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(json.At("points").array.at(i).At("check").string, "pass");
  }
}

TEST(Runner, MethodOverrideBeatsTheFile) {
  ModelSpec spec = ParseModel(
      "sentence forall x exists y S(x,y)\ndomain 3\nmethod lifted-fo2\n");
  io::RunOptions options;
  options.method_override = api::Method::kGrounded;
  ModelRunReport report = io::RunModel(spec, options);
  EXPECT_EQ(report.method_used, api::Method::kGrounded);
  EXPECT_EQ(report.route.method, api::Method::kLiftedFO2);  // still reported
  EXPECT_EQ(report.points[0].value, BigRational(343));
}

TEST(Runner, FullRangeSweepIsRejectedNotWrapped) {
  // Defense in depth behind the parser's 2^20-point cap: the engine
  // itself refuses the [0, 2^64-1] sweep whose point count would wrap
  // to zero (and previously segfaulted via points.back()).
  api::Engine engine((logic::Vocabulary()));
  logic::Formula sentence = engine.Parse("exists x U(x)");
  EXPECT_THROW(
      engine.WFOMCSweep(sentence, 0,
                        std::numeric_limits<std::uint64_t>::max()),
      std::invalid_argument);
}

TEST(Runner, CnfReportMatchesDirectCount) {
  WeightedCnf instance =
      ParseWeightedCnf("p cnf 3 2\nw 1 1/2 1\n1 2 0\n-1 3 0\n");
  CnfRunReport report = io::RunWeightedCnf(instance, {}, "x.cnf");
  EXPECT_EQ(report.count,
            wmc::CountWeightedModels(instance.cnf, instance.weights));
  EXPECT_EQ(report.variables, 3u);
  EXPECT_EQ(report.clauses, 2u);
  JsonValue json = io::ToJson(report);
  EXPECT_EQ(json.At("wmc").string, report.count.ToString());
  ParseJson(json.Dump(2));
}

// --- The golden bridge ---------------------------------------------------

// Every golden corpus case must have a faithful .model mirror, so that
// `swfomc run --check tests/golden/models/*.model` (the cli_golden_replay
// ctest entry and the CI step) replays exactly the corpus.
TEST(GoldenModels, MirrorTheCorpusExactly) {
  std::ifstream in(SWFOMC_GOLDEN_JSON);
  ASSERT_TRUE(in) << "cannot open " << SWFOMC_GOLDEN_JSON;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  JsonValue corpus = ParseJson(buffer.str(), SWFOMC_GOLDEN_JSON);

  const std::vector<JsonValue>& cases = corpus.At("cases").array;
  ASSERT_FALSE(cases.empty());
  for (const JsonValue& entry : cases) {
    const std::string& name = entry.At("name").string;
    SCOPED_TRACE(name);
    std::string path =
        std::string(SWFOMC_GOLDEN_MODELS_DIR) + "/" + name + ".model";
    ModelSpec spec;
    ASSERT_NO_THROW(spec = io::LoadModelFile(path))
        << "regenerate with scripts/golden_models.py";
    EXPECT_EQ(spec.name, name);
    EXPECT_EQ(spec.sentence_text, entry.At("sentence").string);
    EXPECT_EQ(spec.domain_lo, std::stoull(entry.At("domain_size").string));
    EXPECT_EQ(spec.domain_hi, spec.domain_lo);
    EXPECT_EQ(spec.method, api::Method::kAuto);
    ASSERT_TRUE(spec.expect.has_value());
    EXPECT_EQ(*spec.expect,
              BigRational::FromString(entry.At("wfomc").string));
    for (const auto& [relation, weights] : entry.At("weights").object) {
      auto id = spec.vocabulary.Find(relation);
      ASSERT_TRUE(id.has_value()) << relation;
      EXPECT_EQ(spec.vocabulary.positive_weight(*id),
                BigRational::FromString(weights.array.at(0).string));
      EXPECT_EQ(spec.vocabulary.negative_weight(*id),
                BigRational::FromString(weights.array.at(1).string));
    }
  }
}

}  // namespace
}  // namespace swfomc
