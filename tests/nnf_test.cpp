// Knowledge-compilation subsystem: the traced circuits must be (a)
// well-formed d-DNNF — structurally audited — and (b) *evaluation-
// equivalent* to the DPLL counter under every weight vector, which the
// differential checks here enforce bit-for-bit: for the whole golden
// corpus and for seeded random CNFs, Compile(...).Evaluate(w) must equal
// a fresh recount with w, including zero and negative weights (the
// weight regimes where a naive trace — one that keeps the counter's
// zero-weight pruning — would silently drop subcircuits).
//
// Seeds are deterministic (committed base seed 1) but rotatable via
// SWFOMC_FUZZ_SEED, like the other fuzz suites.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "api/engine.h"
#include "io/diagnostics.h"
#include "io/model_format.h"
#include "io/nnf_format.h"
#include "logic/parser.h"
#include "nnf/circuit.h"
#include "nnf/circuit_builder.h"
#include "test_util.h"
#include "wmc/dpll_counter.h"

namespace swfomc {
namespace {

using api::CompiledQuery;
using api::Engine;
using api::Method;
using api::RelationWeights;
using io::ModelSpec;
using io::NnfDocument;
using nnf::Circuit;
using nnf::CircuitBuilder;
using nnf::NodeKind;
using numeric::BigRational;
using testutil::FuzzBaseSeed;
using testutil::RandomCnf;
using testutil::RandomWeights;
using wmc::DpllCounter;
using wmc::WeightMap;

constexpr std::uint64_t kDefaultBaseSeed = 1;

std::uint64_t BaseSeed() {
  static std::uint64_t seed = [] {
    std::uint64_t value = FuzzBaseSeed(kDefaultBaseSeed);
    std::cout << "[nnf_test] SWFOMC_FUZZ_SEED base = " << value << std::endl;
    return value;
  }();
  return seed;
}

// Compiles a raw CNF by running the counter in tracing mode.
Circuit TraceCnf(const prop::CnfFormula& cnf, const WeightMap& weights,
                 BigRational* count) {
  CircuitBuilder builder(cnf.variable_count);
  DpllCounter::Options options;
  options.trace_sink = &builder;
  DpllCounter counter(cnf, weights, options);
  *count = counter.Count();
  return builder.Finish();
}

// The per-relation weight regimes every golden entry is re-evaluated
// under: unit (FOMC), fractional, negative (Skolemization's regime), and
// zero — the last one only works if tracing disabled zero pruning.
std::vector<std::vector<RelationWeights>> WeightRegimes(
    const logic::Vocabulary& vocabulary) {
  std::vector<std::vector<RelationWeights>> regimes(4);
  for (logic::RelationId id = 0; id < vocabulary.size(); ++id) {
    const std::string& name = vocabulary.name(id);
    regimes[0].push_back({name, BigRational(1), BigRational(1)});
    regimes[1].push_back(
        {name, BigRational(3), BigRational::Fraction(1, 2)});
    regimes[2].push_back({name, BigRational(-1), BigRational(2)});
    regimes[3].push_back({name, BigRational(0), BigRational(1)});
  }
  return regimes;
}

std::vector<std::string> GoldenModelPaths() {
  std::vector<std::string> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(SWFOMC_GOLDEN_MODELS_DIR)) {
    if (entry.path().extension() == ".model") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

// --- Golden corpus: compile once, recount under many weights -------------

TEST(Compile, GoldenCorpusBitIdenticalAcrossWeightRegimes) {
  std::vector<std::string> paths = GoldenModelPaths();
  ASSERT_FALSE(paths.empty());
  for (const std::string& path : paths) {
    SCOPED_TRACE(path);
    ModelSpec spec = io::LoadModelFile(path);
    Engine engine(spec.vocabulary);
    CompiledQuery compiled = engine.Compile(spec.sentence, spec.domain_hi);

    // The compile-time count is the grounded count; the corpus pins it.
    ASSERT_TRUE(spec.expect.has_value());
    EXPECT_EQ(compiled.compile_count(), *spec.expect);
    EXPECT_EQ(compiled.Evaluate(), compiled.compile_count());

    // Structural d-DNNF audit.
    std::string violation;
    EXPECT_TRUE(compiled.circuit().Validate(&violation)) << violation;

    // Differential: circuit evaluation vs. a fresh grounded recount.
    for (const std::vector<RelationWeights>& regime :
         WeightRegimes(spec.vocabulary)) {
      logic::Vocabulary reweighted = spec.vocabulary;
      for (const RelationWeights& weights : regime) {
        reweighted.SetWeights(reweighted.Require(weights.relation),
                              weights.positive, weights.negative);
      }
      Engine recount(reweighted);
      EXPECT_EQ(compiled.Evaluate(regime),
                recount.WFOMC(spec.sentence, spec.domain_hi,
                              Method::kGrounded)
                    .value)
          << "regime starting (" << regime.front().positive.ToString()
          << ", " << regime.front().negative.ToString() << ")";
    }
  }
}

TEST(Compile, SharesCacheHitSubcircuits) {
  // The n=3 triangle lineage has repeated components; the trace must
  // resolve those cache hits to shared nodes, not re-expansions, so the
  // circuit is a DAG strictly smaller than the unshared search tree.
  logic::Vocabulary vocabulary;
  logic::Formula sentence = logic::Parse(
      "exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))", &vocabulary);
  Engine engine(vocabulary);
  CompiledQuery compiled = engine.Compile(sentence, 3);
  EXPECT_GT(compiled.compile_stats().cache_hits, 0u);
  EXPECT_EQ(compiled.compile_stats().cache_entries,
            compiled.compile_stats().cache_insertions);
  EXPECT_EQ(compiled.compile_stats().parallel_forks, 0u);
  // Every insertion is a distinct component; the node count is bounded
  // by a constant multiple of the distinct-component set plus literals.
  EXPECT_LT(compiled.circuit().node_count(),
            10 * (compiled.compile_stats().cache_entries + 1) +
                2 * compiled.circuit().variable_count());
}

TEST(Compile, TracingForcesSequentialSearch) {
  prop::CnfFormula cnf;
  cnf.variable_count = 40;
  std::mt19937_64 rng(7);
  cnf = RandomCnf(&rng, 40, 60, 3);
  WeightMap weights(cnf.variable_count);
  CircuitBuilder builder(cnf.variable_count);
  DpllCounter::Options options;
  options.num_threads = 4;  // must be ignored under tracing
  options.trace_sink = &builder;
  DpllCounter counter(cnf, weights, options);
  BigRational traced = counter.Count();
  EXPECT_EQ(counter.stats().parallel_forks, 0u);
  EXPECT_EQ(traced, DpllCounter(cnf, weights).Count());
  Circuit circuit = builder.Finish();
  EXPECT_EQ(circuit.Evaluate(weights), traced);
}

// --- Random CNFs: trace, audit, evaluate under fresh weights -------------

TEST(Compile, RandomCnfDifferential) {
  std::uint64_t base = BaseSeed();
  ::testing::Test::RecordProperty("fuzz_base_seed",
                                  static_cast<int64_t>(base));
  for (std::uint64_t offset = 0; offset < 24; ++offset) {
    std::uint64_t seed = base + offset;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937_64 rng(seed);
    std::uint32_t variables = 3 + static_cast<std::uint32_t>(rng() % 8);
    prop::CnfFormula cnf =
        RandomCnf(&rng, variables, 4 + rng() % 10, 1 + rng() % 4);
    WeightMap compile_weights =
        RandomWeights(&rng, variables, /*allow_negative=*/true);

    BigRational compile_count;
    Circuit circuit = TraceCnf(cnf, compile_weights, &compile_count);
    EXPECT_EQ(circuit.Evaluate(compile_weights), compile_count);
    std::string violation;
    ASSERT_TRUE(circuit.Validate(&violation)) << violation;

    // Three fresh weight maps, one with forced zeros.
    for (int regime = 0; regime < 3; ++regime) {
      WeightMap weights =
          RandomWeights(&rng, variables, /*allow_negative=*/regime != 0);
      if (regime == 2) {
        weights.Set(0, BigRational(0), BigRational(1));
        weights.Set(variables - 1, BigRational(2), BigRational(0));
      }
      DpllCounter recount(cnf, weights);
      EXPECT_EQ(circuit.Evaluate(weights), recount.Count())
          << "regime " << regime;
    }
  }
}

TEST(Compile, DegenerateFormulas) {
  // No clauses: every variable is free, the circuit is a product of
  // (w + w̄) factors.
  prop::CnfFormula free_cnf;
  free_cnf.variable_count = 3;
  WeightMap weights(3);
  weights.Set(0, BigRational(2), BigRational(3));
  weights.Set(1, BigRational::Fraction(1, 2), BigRational::Fraction(3, 2));
  BigRational count;
  Circuit circuit = TraceCnf(free_cnf, weights, &count);
  EXPECT_EQ(count, BigRational(5) * BigRational(2) * BigRational(2));
  EXPECT_EQ(circuit.Evaluate(weights), count);
  std::string violation;
  EXPECT_TRUE(circuit.Validate(&violation)) << violation;

  // An empty clause: FALSE for every weight vector.
  prop::CnfFormula unsat;
  unsat.variable_count = 2;
  unsat.clauses.push_back({});
  Circuit false_circuit = TraceCnf(unsat, WeightMap(2), &count);
  EXPECT_TRUE(count.IsZero());
  EXPECT_EQ(false_circuit.node_count(), 1u);
  WeightMap other(2);
  other.Set(0, BigRational(7), BigRational(-2));
  EXPECT_TRUE(false_circuit.Evaluate(other).IsZero());

  // A unit clause: root propagation, literal factor times free factor.
  prop::CnfFormula unit;
  unit.variable_count = 2;
  unit.clauses.push_back({prop::Literal{0, true}});
  WeightMap unit_weights(2);
  unit_weights.Set(0, BigRational(5), BigRational(11));
  unit_weights.Set(1, BigRational(2), BigRational(3));
  Circuit unit_circuit = TraceCnf(unit, unit_weights, &count);
  EXPECT_EQ(count, BigRational(25));
  EXPECT_EQ(unit_circuit.Evaluate(unit_weights), BigRational(25));
}

// --- The structural audit must actually reject malformed circuits -------

TEST(Validate, RejectsNonDecomposableAnd) {
  // AND(x1, x1) shares variable 0 between children.
  std::vector<Circuit::Node> nodes(2);
  nodes[0] = {.kind = NodeKind::kLiteral, .literal = prop::MakeLit(0, true)};
  nodes[1] = {.kind = NodeKind::kAnd,
              .children_begin = 0,
              .children_end = 2};
  Circuit circuit(1, std::move(nodes), {0, 0}, 1);
  std::string violation;
  EXPECT_FALSE(circuit.Validate(&violation));
  EXPECT_NE(violation.find("not decomposable"), std::string::npos)
      << violation;
}

TEST(Validate, RejectsNonDeterministicOr) {
  // OR(x1, x2) — the children do not conflict on any variable.
  std::vector<Circuit::Node> nodes(3);
  nodes[0] = {.kind = NodeKind::kLiteral, .literal = prop::MakeLit(0, true)};
  nodes[1] = {.kind = NodeKind::kLiteral, .literal = prop::MakeLit(1, true)};
  nodes[2] = {.kind = NodeKind::kOr, .children_begin = 0, .children_end = 2};
  Circuit circuit(2, std::move(nodes), {0, 1}, 2);
  std::string violation;
  EXPECT_FALSE(circuit.Validate(&violation));
  EXPECT_NE(violation.find("not deterministic"), std::string::npos)
      << violation;
}

TEST(Validate, RejectsDecisionOrWhoseChildSkipsTheDecision) {
  // OR deciding variable 2 with a child fixing only variable 1.
  std::vector<Circuit::Node> nodes(3);
  nodes[0] = {.kind = NodeKind::kLiteral, .literal = prop::MakeLit(0, true)};
  nodes[1] = {.kind = NodeKind::kLiteral, .literal = prop::MakeLit(1, false)};
  nodes[2] = {.kind = NodeKind::kOr,
              .decision = 1,
              .children_begin = 0,
              .children_end = 2};
  Circuit circuit(2, std::move(nodes), {0, 1}, 2);
  std::string violation;
  EXPECT_FALSE(circuit.Validate(&violation));
  EXPECT_NE(violation.find("does not fix the decision"), std::string::npos)
      << violation;
}

TEST(Validate, AcceptsDecisionlessDeterministicOr) {
  // c2d-style OR with decision 0 but conflicting surface literals.
  NnfDocument document = io::ParseNnf(
      "nnf 3 2 1\n"
      "L 1\n"
      "L -1\n"
      "O 0 2 0 1\n");
  std::string violation;
  EXPECT_TRUE(document.circuit.Validate(&violation)) << violation;
  EXPECT_EQ(document.circuit.Evaluate(WeightMap(1)), BigRational(2));
}

TEST(Circuit, ConstructorRejectsForwardReferences) {
  std::vector<Circuit::Node> nodes(2);
  nodes[0] = {.kind = NodeKind::kAnd, .children_begin = 0, .children_end = 1};
  nodes[1] = {.kind = NodeKind::kLiteral, .literal = prop::MakeLit(0, true)};
  EXPECT_THROW(Circuit(1, std::move(nodes), {1}, 1), std::invalid_argument);
}

// --- .nnf format ---------------------------------------------------------

TEST(NnfFormat, PrintIsAParserFixpoint) {
  std::uint64_t base = BaseSeed();
  for (std::uint64_t offset = 0; offset < 8; ++offset) {
    std::mt19937_64 rng(base + 1000 + offset);
    std::uint32_t variables = 3 + static_cast<std::uint32_t>(rng() % 6);
    prop::CnfFormula cnf =
        RandomCnf(&rng, variables, 3 + rng() % 8, 1 + rng() % 3);
    WeightMap weights =
        RandomWeights(&rng, variables, /*allow_negative=*/true);
    BigRational count;
    NnfDocument document;
    document.circuit = TraceCnf(cnf, weights, &count);
    document.weights = weights;
    document.weights.EnsureSize(document.circuit.variable_count());
    document.expect = count;

    std::string once = io::PrintNnf(document);
    NnfDocument reparsed = io::ParseNnf(once, "roundtrip.nnf");
    EXPECT_EQ(io::PrintNnf(reparsed), once);
    ASSERT_TRUE(reparsed.expect.has_value());
    EXPECT_EQ(*reparsed.expect, count);
    EXPECT_EQ(reparsed.circuit.Evaluate(reparsed.weights), count);
  }
}

void ExpectParseErrorAt(const std::string& text, std::size_t line,
                        std::size_t column,
                        const std::string& message_piece) {
  try {
    io::ParseNnf(text, "bad.nnf");
    FAIL() << "expected ParseError for:\n" << text;
  } catch (const io::ParseError& error) {
    EXPECT_EQ(error.location().line, line) << error.what();
    EXPECT_EQ(error.location().column, column) << error.what();
    EXPECT_NE(error.message().find(message_piece), std::string::npos)
        << error.what();
  }
}

TEST(NnfFormat, ErrorPositions) {
  ExpectParseErrorAt("L 1\n", 1, 1, "expected 'nnf V E n' header");
  ExpectParseErrorAt("nnf 1 0\nL 1\n", 1, 7, "expected 3 value(s)");
  ExpectParseErrorAt("nnf 1 0 1 9\nL 1\n", 1, 11, "unexpected trailing token");
  ExpectParseErrorAt("nnf 0 0 1\n", 1, 5, "at least one node");
  ExpectParseErrorAt("nnf 1 0 1\nnnf 1 0 1\n", 2, 1, "duplicate 'nnf'");
  ExpectParseErrorAt("nnf 1 0 1\nL 2\n", 2, 3, "out of range");
  ExpectParseErrorAt("nnf 1 0 1\nL 0\n", 2, 3, "out of range");
  ExpectParseErrorAt("nnf 2 1 1\nL 1\nA 1 1\n", 3, 5,
                     "does not precede its parent");
  ExpectParseErrorAt("nnf 2 1 1\nL 1\nA 2 0\n", 3, 3,
                     "does not match");
  ExpectParseErrorAt("nnf 1 0 1\nw 1 1/2\nL 1\n", 2, 5, "expected 3");
  ExpectParseErrorAt("nnf 1 0 1\nw 1 1 1\nw 1 2 2\nL 1\n", 3, 3,
                     "set twice");
  ExpectParseErrorAt("nnf 1 0 1\nw 2 1 1\nL 1\n", 2, 3, "out of range");
  ExpectParseErrorAt("nnf 1 0 1\ne 1\ne 2\nL 1\n", 3, 1, "duplicate 'e'");
  ExpectParseErrorAt("nnf 1 0 1\nL 1\nL 1\n", 3, 1, "more nodes");
  ExpectParseErrorAt("nnf 1 0 1\nO 1 0\n", 2, 3,
                     "must use decision 0");
  ExpectParseErrorAt("nnf 1 0 1\nQ 3\n", 2, 1, "unknown line");
  // The count mismatches are end-of-document errors reported at the last
  // real line — the trailing newline must not shift them onto a phantom
  // empty line 3.
  ExpectParseErrorAt("nnf 2 0 1\nL 1\n", 2, 1, "node count mismatch");
  ExpectParseErrorAt("nnf 1 5 1\nL 1\n", 2, 1, "edge count mismatch");
  ExpectParseErrorAt("nnf 2 0 1\nL 1", 2, 1, "node count mismatch");
}

TEST(Circuit, NonSmoothCircuitsEvaluateThroughTheRationalPath) {
  // OR(x1, ¬x2) is deterministic-enough to parse but not smooth, so the
  // integer-scaled pass must not apply; the plain rational pass computes
  // the circuit polynomial w1 + w̄2.
  NnfDocument document = io::ParseNnf(
      "nnf 3 2 2\n"
      "w 1 1/3 1\n"
      "w 2 1 1/7\n"
      "L 1\n"
      "L -2\n"
      "O 0 2 0 1\n");
  EXPECT_EQ(document.circuit.Evaluate(document.weights),
            BigRational::Fraction(1, 3) + BigRational::Fraction(1, 7));
}

TEST(NnfFormat, ParsesConstantsAndComments) {
  NnfDocument trivial = io::ParseNnf(
      "c a comment\n"
      "nnf 1 0 0\n"
      "c another\n"
      "A 0\n");
  EXPECT_EQ(trivial.circuit.node(0).kind, NodeKind::kTrue);
  EXPECT_EQ(trivial.circuit.Evaluate(WeightMap(0)), BigRational(1));

  NnfDocument contradiction = io::ParseNnf("nnf 1 0 2\nO 0 0\n");
  EXPECT_EQ(contradiction.circuit.node(0).kind, NodeKind::kFalse);
  EXPECT_TRUE(contradiction.circuit.Evaluate(WeightMap(2)).IsZero());
}

// --- CompiledQuery surface ----------------------------------------------

TEST(CompiledQuery, RejectsUnknownRelation) {
  logic::Vocabulary vocabulary;
  logic::Formula sentence = logic::Parse("forall x R(x)", &vocabulary);
  Engine engine(vocabulary);
  CompiledQuery compiled = engine.Compile(sentence, 2);
  EXPECT_THROW(
      compiled.Evaluate({{"NoSuchRelation", BigRational(1), BigRational(1)}}),
      std::invalid_argument);
}

TEST(CompiledQuery, ReweightSweepMatchesEngine) {
  // The serving loop: one compile, many weight vectors, against the
  // engine recounting each time.
  logic::Vocabulary vocabulary;
  logic::Formula sentence =
      logic::Parse("forall x exists y S(x,y)", &vocabulary);
  Engine engine(vocabulary);
  CompiledQuery compiled = engine.Compile(sentence, 3);
  for (std::int64_t k = -2; k <= 2; ++k) {
    std::vector<RelationWeights> regime = {
        {"S", BigRational(k), BigRational::Fraction(1, 3)}};
    logic::Vocabulary reweighted = vocabulary;
    reweighted.SetWeights(reweighted.Require("S"), BigRational(k),
                          BigRational::Fraction(1, 3));
    Engine recount(reweighted);
    EXPECT_EQ(compiled.Evaluate(regime),
              recount.WFOMC(sentence, 3, Method::kGrounded).value)
        << "k=" << k;
  }
}

}  // namespace
}  // namespace swfomc
