#include "logic/transform.h"

#include <gtest/gtest.h>

#include "logic/evaluate.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "logic/structure.h"

namespace swfomc::logic {
namespace {

// Semantic equivalence check: two formulas agree on every structure of
// domain sizes 1..3 (over the same vocabulary, few enough tuples).
void ExpectEquivalent(const Formula& a, const Formula& b,
                      const Vocabulary& vocab, std::uint64_t max_n = 3) {
  for (std::uint64_t n = 1; n <= max_n; ++n) {
    Structure structure(vocab, n);
    if (structure.TupleCount() > 16) break;
    std::uint64_t limit = 1ULL << structure.TupleCount();
    for (std::uint64_t mask = 0; mask < limit; ++mask) {
      structure.AssignFromMask(mask);
      EXPECT_EQ(Evaluate(structure, a), Evaluate(structure, b))
          << "n=" << n << " mask=" << mask << "\n a=" << ToString(a, vocab)
          << "\n b=" << ToString(b, vocab);
    }
  }
}

TEST(SubstituteTest, ReplacesFreeOccurrences) {
  Vocabulary vocab;
  Formula f = Parse("R(x,y)", &vocab);
  Formula g = SubstituteConstant(f, "x", 2);
  EXPECT_EQ(ToString(g, vocab), "R(2,y)");
}

TEST(SubstituteTest, RespectsBinding) {
  Vocabulary vocab;
  Formula f = Parse("R(x) & forall x S(x)", &vocab);
  Formula g = SubstituteConstant(f, "x", 1);
  EXPECT_EQ(ToString(g, vocab), "R(1) & forall x. S(x)");
}

TEST(SubstituteTest, CaptureAvoidance) {
  Vocabulary vocab;
  // Substituting y := x into exists x R(x,y) must rename the binder.
  Formula f = Parse("exists x R(x,y)", &vocab);
  Formula g = Substitute(f, {{"y", Term::Var("x")}});
  // The bound variable must no longer be "x".
  EXPECT_EQ(g->kind(), FormulaKind::kExists);
  EXPECT_NE(g->variable(), "x");
  std::set<std::string> free = FreeVariables(g);
  EXPECT_EQ(free, (std::set<std::string>{"x"}));
}

TEST(EliminateImplicationsTest, RewritesBothConnectives) {
  Vocabulary vocab;
  Formula f = Parse("A => B", &vocab);
  Formula g = EliminateImplications(f);
  EXPECT_EQ(ToString(g, vocab), "!A | B");
  Formula h = EliminateImplications(Parse("A <=> B", &vocab));
  ExpectEquivalent(Parse("A <=> B", &vocab), h, vocab);
}

TEST(NNFTest, PushesNegationThroughConnectives) {
  Vocabulary vocab;
  Formula f = Parse("!(A & (B | !C))", &vocab);
  Formula nnf = ToNNF(f);
  EXPECT_EQ(ToString(nnf, vocab), "!A | !B & C");
  ExpectEquivalent(f, nnf, vocab);
}

TEST(NNFTest, DualizesQuantifiers) {
  Vocabulary vocab;
  Formula f = Parse("!(forall x exists y R(x,y))", &vocab);
  Formula nnf = ToNNF(f);
  EXPECT_EQ(ToString(nnf, vocab), "exists x. forall y. !R(x,y)");
  ExpectEquivalent(f, nnf, vocab, 2);
}

TEST(NNFTest, ImplicationAndIffInsideQuantifier) {
  Vocabulary vocab;
  Formula f = Parse("forall x (U(x) => exists y R(x,y))", &vocab);
  Formula nnf = ToNNF(f);
  ExpectEquivalent(f, nnf, vocab, 2);
  Formula g = Parse("!(forall x (U(x) <=> V(x)))", &vocab);
  ExpectEquivalent(g, ToNNF(g), vocab);
}

TEST(NNFTest, Idempotent) {
  Vocabulary vocab;
  Formula f = Parse("!(A => (B <=> !C))", &vocab);
  Formula once = ToNNF(f);
  Formula twice = ToNNF(once);
  EXPECT_TRUE(StructurallyEqual(once, twice));
}

TEST(RenameApartTest, DistinctBoundNames) {
  Vocabulary vocab;
  Formula f = Parse("(forall x R(x)) & (forall x S(x)) & exists x T(x)",
                    &vocab);
  std::size_t counter = 0;
  Formula g = RenameApart(f, &counter);
  // Three binders -> three distinct fresh names.
  EXPECT_EQ(counter, 3u);
  ExpectEquivalent(f, g, vocab);
}

TEST(PrenexTest, PullsQuantifiersOutOfConjunction) {
  Vocabulary vocab;
  Formula f = Parse("(forall x R(x)) & (exists y S(y))", &vocab);
  std::size_t counter = 0;
  PrenexForm prenex = ToPrenex(f, &counter);
  EXPECT_EQ(prenex.prefix.size(), 2u);
  EXPECT_FALSE(ContainsQuantifier(prenex.matrix));
  ExpectEquivalent(f, FromPrenex(prenex), vocab);
}

TEST(PrenexTest, DisjunctionOfUniversals) {
  Vocabulary vocab;
  // ∀xφ ∨ ∀yψ ≡ ∀x∀y(φ ∨ ψ) — the classic identity; verify semantically.
  Formula f = Parse("(forall x R(x)) | (forall x S(x))", &vocab);
  std::size_t counter = 0;
  PrenexForm prenex = ToPrenex(f, &counter);
  EXPECT_EQ(prenex.prefix.size(), 2u);
  EXPECT_TRUE(prenex.prefix[0].is_forall);
  EXPECT_TRUE(prenex.prefix[1].is_forall);
  ExpectEquivalent(f, FromPrenex(prenex), vocab);
}

TEST(PrenexTest, NegatedQuantifierDualizes) {
  Vocabulary vocab;
  Formula f = Parse("!(exists x (R(x) & forall y S(y)))", &vocab);
  std::size_t counter = 0;
  PrenexForm prenex = ToPrenex(f, &counter);
  ASSERT_EQ(prenex.prefix.size(), 2u);
  EXPECT_TRUE(prenex.prefix[0].is_forall);   // from !exists
  EXPECT_FALSE(prenex.prefix[1].is_forall);  // from !forall
  ExpectEquivalent(f, FromPrenex(prenex), vocab);
}

TEST(PrenexTest, MixedNestingSemanticsPreserved) {
  Vocabulary vocab;
  const char* cases[] = {
      "forall x (R(x) | exists y S(y))",
      "(exists x R(x)) => (exists y S(y))",
      "forall x exists y (R(x) & S(y)) | T(0)",
  };
  for (const char* text : cases) {
    Formula f = Parse(text, &vocab);
    std::size_t counter = 0;
    ExpectEquivalent(f, FromPrenex(ToPrenex(f, &counter)), vocab, 2);
  }
}

TEST(ContainsQuantifierTest, Basics) {
  Vocabulary vocab;
  EXPECT_TRUE(ContainsQuantifier(Parse("forall x R(x)", &vocab)));
  EXPECT_FALSE(ContainsQuantifier(Parse("R(0) & S(1)", &vocab)));
}

TEST(ContainsExistentialTest, NNFSense) {
  Vocabulary vocab;
  EXPECT_TRUE(
      ContainsExistentialInNNFSense(Parse("exists x R(x)", &vocab)));
  EXPECT_FALSE(
      ContainsExistentialInNNFSense(Parse("forall x R(x)", &vocab)));
  // A negated universal is an existential in disguise.
  EXPECT_TRUE(
      ContainsExistentialInNNFSense(Parse("!(forall x R(x))", &vocab)));
  EXPECT_FALSE(
      ContainsExistentialInNNFSense(Parse("!(exists x R(x))", &vocab)));
}

TEST(RenameFreeVariableTest, OnlyFreeOccurrences) {
  Vocabulary vocab;
  Formula f = Parse("R(x) & exists x S(x)", &vocab);
  Formula g = RenameFreeVariable(f, "x", "z");
  EXPECT_EQ(ToString(g, vocab), "R(z) & exists x. S(x)");
}

}  // namespace
}  // namespace swfomc::logic
