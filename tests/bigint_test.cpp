#include "numeric/bigint.h"

#include <cstdint>
#include <random>
#include <sstream>

#include <gtest/gtest.h>

namespace swfomc::numeric {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.Sign(), 0);
  EXPECT_EQ(z.ToString(), "0");
  EXPECT_EQ(z.ToInt64(), 0);
}

TEST(BigIntTest, SmallConstruction) {
  EXPECT_EQ(BigInt(42).ToString(), "42");
  EXPECT_EQ(BigInt(-42).ToString(), "-42");
  EXPECT_EQ(BigInt(1).Sign(), 1);
  EXPECT_EQ(BigInt(-1).Sign(), -1);
  EXPECT_TRUE(BigInt(1).IsOne());
  EXPECT_FALSE(BigInt(-1).IsOne());
}

TEST(BigIntTest, Int64Extremes) {
  BigInt min(std::numeric_limits<std::int64_t>::min());
  BigInt max(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(min.ToString(), "-9223372036854775808");
  EXPECT_EQ(max.ToString(), "9223372036854775807");
  EXPECT_EQ(min.ToInt64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(max.ToInt64(), std::numeric_limits<std::int64_t>::max());
  EXPECT_TRUE(min.FitsInt64());
  EXPECT_FALSE((min - BigInt(1)).FitsInt64());
  EXPECT_FALSE((max + BigInt(1)).FitsInt64());
}

TEST(BigIntTest, FromStringRoundTrip) {
  const char* cases[] = {"0",
                         "7",
                         "-7",
                         "123456789",
                         "-987654321012345678901234567890",
                         "340282366920938463463374607431768211456"};
  for (const char* text : cases) {
    EXPECT_EQ(BigInt::FromString(text).ToString(), text) << text;
  }
}

TEST(BigIntTest, FromStringAcceptsPlusAndRejectsGarbage) {
  EXPECT_EQ(BigInt::FromString("+17").ToString(), "17");
  EXPECT_THROW(BigInt::FromString(""), std::invalid_argument);
  EXPECT_THROW(BigInt::FromString("-"), std::invalid_argument);
  EXPECT_THROW(BigInt::FromString("12a3"), std::invalid_argument);
  EXPECT_THROW(BigInt::FromString("1 2"), std::invalid_argument);
}

TEST(BigIntTest, FromStringNegativeZeroNormalizes) {
  EXPECT_TRUE(BigInt::FromString("-0").IsZero());
  EXPECT_EQ(BigInt::FromString("-0000").Sign(), 0);
  EXPECT_EQ(BigInt::FromString("007").ToString(), "7");
}

TEST(BigIntTest, AdditionMatchesInt64) {
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<std::int64_t> dist(-1000000000, 1000000000);
  for (int i = 0; i < 2000; ++i) {
    std::int64_t a = dist(rng), b = dist(rng);
    EXPECT_EQ((BigInt(a) + BigInt(b)).ToInt64(), a + b) << a << " " << b;
    EXPECT_EQ((BigInt(a) - BigInt(b)).ToInt64(), a - b) << a << " " << b;
  }
}

TEST(BigIntTest, MultiplicationMatchesInt128) {
  std::mt19937_64 rng(2);
  std::uniform_int_distribution<std::int64_t> dist(-3000000000LL,
                                                   3000000000LL);
  for (int i = 0; i < 2000; ++i) {
    std::int64_t a = dist(rng), b = dist(rng);
    __int128 expected = static_cast<__int128>(a) * b;
    BigInt product = BigInt(a) * BigInt(b);
    // Render the __int128 for comparison.
    bool negative = expected < 0;
    unsigned __int128 magnitude =
        negative ? -static_cast<unsigned __int128>(expected)
                 : static_cast<unsigned __int128>(expected);
    std::string text;
    if (magnitude == 0) text = "0";
    while (magnitude != 0) {
      text.insert(text.begin(),
                  static_cast<char>('0' + static_cast<int>(magnitude % 10)));
      magnitude /= 10;
    }
    if (negative && text != "0") text.insert(text.begin(), '-');
    EXPECT_EQ(product.ToString(), text) << a << " * " << b;
  }
}

TEST(BigIntTest, DivModMatchesInt64Semantics) {
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::int64_t> dist(-100000, 100000);
  for (int i = 0; i < 3000; ++i) {
    std::int64_t a = dist(rng), b = dist(rng);
    if (b == 0) continue;
    BigInt q, r;
    BigInt::DivMod(BigInt(a), BigInt(b), &q, &r);
    EXPECT_EQ(q.ToInt64(), a / b) << a << " / " << b;
    EXPECT_EQ(r.ToInt64(), a % b) << a << " % " << b;
  }
}

TEST(BigIntTest, DivModInvariantOnLargeOperands) {
  std::mt19937_64 rng(4);
  auto random_bigint = [&rng](int limbs) {
    BigInt value(0);
    for (int i = 0; i < limbs; ++i) {
      value = value.ShiftLeft(32) + BigInt::FromUnsigned(rng() & 0xFFFFFFFFu);
    }
    return value;
  };
  for (int i = 0; i < 200; ++i) {
    BigInt a = random_bigint(1 + static_cast<int>(rng() % 8));
    BigInt b = random_bigint(1 + static_cast<int>(rng() % 4));
    if (b.IsZero()) continue;
    if (rng() & 1) a = -a;
    if (rng() & 1) b = -b;
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r.Abs() < b.Abs());
    if (!r.IsZero()) {
      EXPECT_EQ(r.Sign(), a.Sign());
    }
  }
}

TEST(BigIntTest, DivisionByZeroThrows) {
  BigInt q, r;
  EXPECT_THROW(BigInt::DivMod(BigInt(1), BigInt(0), &q, &r),
               std::domain_error);
  BigInt x(5);
  EXPECT_THROW(x /= BigInt(0), std::domain_error);
}

TEST(BigIntTest, KnuthDivisionAddBackCase) {
  // Exercise multi-limb division near the q_hat correction boundary.
  BigInt a = BigInt::FromString("340282366920938463463374607431768211455");
  BigInt b = BigInt::FromString("18446744073709551615");
  BigInt q, r;
  BigInt::DivMod(a, b, &q, &r);
  EXPECT_EQ(q * b + r, a);
  EXPECT_EQ(q.ToString(), "18446744073709551617");
  EXPECT_EQ(r.ToString(), "0");
}

TEST(BigIntTest, PowSmall) {
  EXPECT_EQ(BigInt::Pow(BigInt(2), 10).ToInt64(), 1024);
  EXPECT_EQ(BigInt::Pow(BigInt(3), 0).ToInt64(), 1);
  EXPECT_EQ(BigInt::Pow(BigInt(0), 0).ToInt64(), 1);  // convention
  EXPECT_EQ(BigInt::Pow(BigInt(0), 5).ToInt64(), 0);
  EXPECT_EQ(BigInt::Pow(BigInt(-2), 3).ToInt64(), -8);
  EXPECT_EQ(BigInt::Pow(BigInt(-2), 4).ToInt64(), 16);
}

TEST(BigIntTest, PowLargeKnownValue) {
  // 2^128
  EXPECT_EQ(BigInt::Pow(BigInt(2), 128).ToString(),
            "340282366920938463463374607431768211456");
  // 10^40
  std::string ten40 = "1";
  ten40.append(40, '0');
  EXPECT_EQ(BigInt::Pow(BigInt(10), 40).ToString(), ten40);
}

TEST(BigIntTest, KaratsubaAgreesWithSchoolbookViaStringCheck) {
  // Build operands large enough to cross the Karatsuba threshold (32
  // limbs = 1024 bits) and verify a multiplication identity:
  // (x + 1)(x - 1) == x^2 - 1.
  BigInt x = BigInt::Pow(BigInt(7), 500);  // ~1400 bits
  BigInt lhs = (x + BigInt(1)) * (x - BigInt(1));
  BigInt rhs = x * x - BigInt(1);
  EXPECT_EQ(lhs, rhs);
}

TEST(BigIntTest, KaratsubaRandomizedCrossCheckAgainstDivision) {
  std::mt19937_64 rng(5);
  for (int i = 0; i < 20; ++i) {
    BigInt a(1), b(1);
    int a_limbs = 40 + static_cast<int>(rng() % 30);
    int b_limbs = 40 + static_cast<int>(rng() % 30);
    for (int j = 0; j < a_limbs; ++j) {
      a = a.ShiftLeft(32) + BigInt::FromUnsigned(rng() & 0xFFFFFFFFu);
    }
    for (int j = 0; j < b_limbs; ++j) {
      b = b.ShiftLeft(32) + BigInt::FromUnsigned(rng() & 0xFFFFFFFFu);
    }
    BigInt product = a * b;
    BigInt q, r;
    BigInt::DivMod(product, b, &q, &r);
    EXPECT_EQ(q, a);
    EXPECT_TRUE(r.IsZero());
  }
}

TEST(BigIntTest, ComparisonTotalOrder) {
  std::vector<BigInt> ordered = {
      BigInt::FromString("-100000000000000000000"), BigInt(-5), BigInt(0),
      BigInt(3), BigInt::FromString("99999999999999999999")};
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    for (std::size_t j = 0; j < ordered.size(); ++j) {
      EXPECT_EQ(ordered[i] < ordered[j], i < j);
      EXPECT_EQ(ordered[i] == ordered[j], i == j);
      EXPECT_EQ(ordered[i] <= ordered[j], i <= j);
    }
  }
}

TEST(BigIntTest, NegationAndAbs) {
  BigInt a(-17);
  EXPECT_EQ((-a).ToInt64(), 17);
  EXPECT_EQ(a.Abs().ToInt64(), 17);
  EXPECT_EQ((-BigInt(0)).Sign(), 0);
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToInt64(), 5);
  EXPECT_EQ(BigInt::Gcd(BigInt(7), BigInt(0)).ToInt64(), 7);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)).ToInt64(), 0);
  // gcd(2^100, 2^60) = 2^60.
  EXPECT_EQ(BigInt::Gcd(BigInt::Pow(BigInt(2), 100),
                        BigInt::Pow(BigInt(2), 60)),
            BigInt::Pow(BigInt(2), 60));
}

TEST(BigIntTest, Shifts) {
  BigInt one(1);
  EXPECT_EQ(one.ShiftLeft(100).ToString(),
            BigInt::Pow(BigInt(2), 100).ToString());
  EXPECT_EQ(one.ShiftLeft(100).ShiftRight(100), one);
  EXPECT_EQ(BigInt(5).ShiftRight(1).ToInt64(), 2);
  EXPECT_EQ(BigInt(5).ShiftRight(10).ToInt64(), 0);
  EXPECT_EQ(BigInt(-8).ShiftLeft(2).ToInt64(), -32);
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(0).BitLength(), 0u);
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_EQ(BigInt::Pow(BigInt(2), 100).BitLength(), 101u);
}

TEST(BigIntTest, ToDoubleApproximates) {
  EXPECT_DOUBLE_EQ(BigInt(12345).ToDouble(), 12345.0);
  EXPECT_DOUBLE_EQ(BigInt(-7).ToDouble(), -7.0);
  double big = BigInt::Pow(BigInt(2), 70).ToDouble();
  EXPECT_NEAR(big, std::pow(2.0, 70.0), big * 1e-12);
}

TEST(BigIntTest, StreamOutput) {
  std::ostringstream os;
  os << BigInt(-123);
  EXPECT_EQ(os.str(), "-123");
}

TEST(BigIntTest, SelfAliasingOperations) {
  BigInt a(7);
  a += a;
  EXPECT_EQ(a.ToInt64(), 14);
  a *= a;
  EXPECT_EQ(a.ToInt64(), 196);
  a -= a;
  EXPECT_TRUE(a.IsZero());
}

TEST(BigIntTest, FactorialLikeAccumulation) {
  BigInt f(1);
  for (int i = 2; i <= 30; ++i) f *= BigInt(i);
  EXPECT_EQ(f.ToString(), "265252859812191058636308480000000");
}

}  // namespace
}  // namespace swfomc::numeric
