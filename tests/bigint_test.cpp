#include "numeric/bigint.h"

#include <cstdint>
#include <limits>
#include <random>
#include <sstream>

#include <gtest/gtest.h>

namespace swfomc::numeric {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.Sign(), 0);
  EXPECT_EQ(z.ToString(), "0");
  EXPECT_EQ(z.ToInt64(), 0);
}

TEST(BigIntTest, SmallConstruction) {
  EXPECT_EQ(BigInt(42).ToString(), "42");
  EXPECT_EQ(BigInt(-42).ToString(), "-42");
  EXPECT_EQ(BigInt(1).Sign(), 1);
  EXPECT_EQ(BigInt(-1).Sign(), -1);
  EXPECT_TRUE(BigInt(1).IsOne());
  EXPECT_FALSE(BigInt(-1).IsOne());
}

TEST(BigIntTest, Int64Extremes) {
  BigInt min(std::numeric_limits<std::int64_t>::min());
  BigInt max(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(min.ToString(), "-9223372036854775808");
  EXPECT_EQ(max.ToString(), "9223372036854775807");
  EXPECT_EQ(min.ToInt64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(max.ToInt64(), std::numeric_limits<std::int64_t>::max());
  EXPECT_TRUE(min.FitsInt64());
  EXPECT_FALSE((min - BigInt(1)).FitsInt64());
  EXPECT_FALSE((max + BigInt(1)).FitsInt64());
}

TEST(BigIntTest, FromStringRoundTrip) {
  const char* cases[] = {"0",
                         "7",
                         "-7",
                         "123456789",
                         "-987654321012345678901234567890",
                         "340282366920938463463374607431768211456"};
  for (const char* text : cases) {
    EXPECT_EQ(BigInt::FromString(text).ToString(), text) << text;
  }
}

TEST(BigIntTest, FromStringAcceptsPlusAndRejectsGarbage) {
  EXPECT_EQ(BigInt::FromString("+17").ToString(), "17");
  EXPECT_THROW(BigInt::FromString(""), std::invalid_argument);
  EXPECT_THROW(BigInt::FromString("-"), std::invalid_argument);
  EXPECT_THROW(BigInt::FromString("12a3"), std::invalid_argument);
  EXPECT_THROW(BigInt::FromString("1 2"), std::invalid_argument);
}

TEST(BigIntTest, FromStringNegativeZeroNormalizes) {
  EXPECT_TRUE(BigInt::FromString("-0").IsZero());
  EXPECT_EQ(BigInt::FromString("-0000").Sign(), 0);
  EXPECT_EQ(BigInt::FromString("007").ToString(), "7");
}

TEST(BigIntTest, AdditionMatchesInt64) {
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<std::int64_t> dist(-1000000000, 1000000000);
  for (int i = 0; i < 2000; ++i) {
    std::int64_t a = dist(rng), b = dist(rng);
    EXPECT_EQ((BigInt(a) + BigInt(b)).ToInt64(), a + b) << a << " " << b;
    EXPECT_EQ((BigInt(a) - BigInt(b)).ToInt64(), a - b) << a << " " << b;
  }
}

TEST(BigIntTest, MultiplicationMatchesInt128) {
  std::mt19937_64 rng(2);
  std::uniform_int_distribution<std::int64_t> dist(-3000000000LL,
                                                   3000000000LL);
  for (int i = 0; i < 2000; ++i) {
    std::int64_t a = dist(rng), b = dist(rng);
    __int128 expected = static_cast<__int128>(a) * b;
    BigInt product = BigInt(a) * BigInt(b);
    // Render the __int128 for comparison.
    bool negative = expected < 0;
    unsigned __int128 magnitude =
        negative ? -static_cast<unsigned __int128>(expected)
                 : static_cast<unsigned __int128>(expected);
    std::string text;
    if (magnitude == 0) text = "0";
    while (magnitude != 0) {
      text.insert(text.begin(),
                  static_cast<char>('0' + static_cast<int>(magnitude % 10)));
      magnitude /= 10;
    }
    if (negative && text != "0") text.insert(text.begin(), '-');
    EXPECT_EQ(product.ToString(), text) << a << " * " << b;
  }
}

TEST(BigIntTest, DivModMatchesInt64Semantics) {
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::int64_t> dist(-100000, 100000);
  for (int i = 0; i < 3000; ++i) {
    std::int64_t a = dist(rng), b = dist(rng);
    if (b == 0) continue;
    BigInt q, r;
    BigInt::DivMod(BigInt(a), BigInt(b), &q, &r);
    EXPECT_EQ(q.ToInt64(), a / b) << a << " / " << b;
    EXPECT_EQ(r.ToInt64(), a % b) << a << " % " << b;
  }
}

TEST(BigIntTest, DivModInvariantOnLargeOperands) {
  std::mt19937_64 rng(4);
  auto random_bigint = [&rng](int limbs) {
    BigInt value(0);
    for (int i = 0; i < limbs; ++i) {
      value = value.ShiftLeft(32) + BigInt::FromUnsigned(rng() & 0xFFFFFFFFu);
    }
    return value;
  };
  for (int i = 0; i < 200; ++i) {
    BigInt a = random_bigint(1 + static_cast<int>(rng() % 8));
    BigInt b = random_bigint(1 + static_cast<int>(rng() % 4));
    if (b.IsZero()) continue;
    if (rng() & 1) a = -a;
    if (rng() & 1) b = -b;
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r.Abs() < b.Abs());
    if (!r.IsZero()) {
      EXPECT_EQ(r.Sign(), a.Sign());
    }
  }
}

TEST(BigIntTest, DivisionByZeroThrows) {
  BigInt q, r;
  EXPECT_THROW(BigInt::DivMod(BigInt(1), BigInt(0), &q, &r),
               std::domain_error);
  BigInt x(5);
  EXPECT_THROW(x /= BigInt(0), std::domain_error);
}

TEST(BigIntTest, KnuthDivisionAddBackCase) {
  // Exercise multi-limb division near the q_hat correction boundary.
  BigInt a = BigInt::FromString("340282366920938463463374607431768211455");
  BigInt b = BigInt::FromString("18446744073709551615");
  BigInt q, r;
  BigInt::DivMod(a, b, &q, &r);
  EXPECT_EQ(q * b + r, a);
  EXPECT_EQ(q.ToString(), "18446744073709551617");
  EXPECT_EQ(r.ToString(), "0");
}

TEST(BigIntTest, PowSmall) {
  EXPECT_EQ(BigInt::Pow(BigInt(2), 10).ToInt64(), 1024);
  EXPECT_EQ(BigInt::Pow(BigInt(3), 0).ToInt64(), 1);
  EXPECT_EQ(BigInt::Pow(BigInt(0), 0).ToInt64(), 1);  // convention
  EXPECT_EQ(BigInt::Pow(BigInt(0), 5).ToInt64(), 0);
  EXPECT_EQ(BigInt::Pow(BigInt(-2), 3).ToInt64(), -8);
  EXPECT_EQ(BigInt::Pow(BigInt(-2), 4).ToInt64(), 16);
}

TEST(BigIntTest, PowLargeKnownValue) {
  // 2^128
  EXPECT_EQ(BigInt::Pow(BigInt(2), 128).ToString(),
            "340282366920938463463374607431768211456");
  // 10^40
  std::string ten40 = "1";
  ten40.append(40, '0');
  EXPECT_EQ(BigInt::Pow(BigInt(10), 40).ToString(), ten40);
}

TEST(BigIntTest, KaratsubaAgreesWithSchoolbookViaStringCheck) {
  // Build operands large enough to cross the Karatsuba threshold (32
  // limbs = 1024 bits) and verify a multiplication identity:
  // (x + 1)(x - 1) == x^2 - 1.
  BigInt x = BigInt::Pow(BigInt(7), 500);  // ~1400 bits
  BigInt lhs = (x + BigInt(1)) * (x - BigInt(1));
  BigInt rhs = x * x - BigInt(1);
  EXPECT_EQ(lhs, rhs);
}

TEST(BigIntTest, KaratsubaRandomizedCrossCheckAgainstDivision) {
  std::mt19937_64 rng(5);
  for (int i = 0; i < 20; ++i) {
    BigInt a(1), b(1);
    int a_limbs = 40 + static_cast<int>(rng() % 30);
    int b_limbs = 40 + static_cast<int>(rng() % 30);
    for (int j = 0; j < a_limbs; ++j) {
      a = a.ShiftLeft(32) + BigInt::FromUnsigned(rng() & 0xFFFFFFFFu);
    }
    for (int j = 0; j < b_limbs; ++j) {
      b = b.ShiftLeft(32) + BigInt::FromUnsigned(rng() & 0xFFFFFFFFu);
    }
    BigInt product = a * b;
    BigInt q, r;
    BigInt::DivMod(product, b, &q, &r);
    EXPECT_EQ(q, a);
    EXPECT_TRUE(r.IsZero());
  }
}

TEST(BigIntTest, ComparisonTotalOrder) {
  std::vector<BigInt> ordered = {
      BigInt::FromString("-100000000000000000000"), BigInt(-5), BigInt(0),
      BigInt(3), BigInt::FromString("99999999999999999999")};
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    for (std::size_t j = 0; j < ordered.size(); ++j) {
      EXPECT_EQ(ordered[i] < ordered[j], i < j);
      EXPECT_EQ(ordered[i] == ordered[j], i == j);
      EXPECT_EQ(ordered[i] <= ordered[j], i <= j);
    }
  }
}

TEST(BigIntTest, NegationAndAbs) {
  BigInt a(-17);
  EXPECT_EQ((-a).ToInt64(), 17);
  EXPECT_EQ(a.Abs().ToInt64(), 17);
  EXPECT_EQ((-BigInt(0)).Sign(), 0);
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToInt64(), 5);
  EXPECT_EQ(BigInt::Gcd(BigInt(7), BigInt(0)).ToInt64(), 7);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)).ToInt64(), 0);
  // gcd(2^100, 2^60) = 2^60.
  EXPECT_EQ(BigInt::Gcd(BigInt::Pow(BigInt(2), 100),
                        BigInt::Pow(BigInt(2), 60)),
            BigInt::Pow(BigInt(2), 60));
}

TEST(BigIntTest, Shifts) {
  BigInt one(1);
  EXPECT_EQ(one.ShiftLeft(100).ToString(),
            BigInt::Pow(BigInt(2), 100).ToString());
  EXPECT_EQ(one.ShiftLeft(100).ShiftRight(100), one);
  EXPECT_EQ(BigInt(5).ShiftRight(1).ToInt64(), 2);
  EXPECT_EQ(BigInt(5).ShiftRight(10).ToInt64(), 0);
  EXPECT_EQ(BigInt(-8).ShiftLeft(2).ToInt64(), -32);
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(0).BitLength(), 0u);
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_EQ(BigInt::Pow(BigInt(2), 100).BitLength(), 101u);
}

TEST(BigIntTest, ToDoubleApproximates) {
  EXPECT_DOUBLE_EQ(BigInt(12345).ToDouble(), 12345.0);
  EXPECT_DOUBLE_EQ(BigInt(-7).ToDouble(), -7.0);
  double big = BigInt::Pow(BigInt(2), 70).ToDouble();
  EXPECT_NEAR(big, std::pow(2.0, 70.0), big * 1e-12);
}

TEST(BigIntTest, StreamOutput) {
  std::ostringstream os;
  os << BigInt(-123);
  EXPECT_EQ(os.str(), "-123");
}

TEST(BigIntTest, SelfAliasingOperations) {
  BigInt a(7);
  a += a;
  EXPECT_EQ(a.ToInt64(), 14);
  a *= a;
  EXPECT_EQ(a.ToInt64(), 196);
  a -= a;
  EXPECT_TRUE(a.IsZero());
}

TEST(BigIntTest, FactorialLikeAccumulation) {
  BigInt f(1);
  for (int i = 2; i <= 30; ++i) f *= BigInt(i);
  EXPECT_EQ(f.ToString(), "265252859812191058636308480000000");
}

// --- Regression corpus for the WMC-scale arithmetic paths (this PR) ----
// Model counts reach thousands of bits, where multiplication crosses the
// Karatsuba threshold and sweep normalizers divide huge rationals; these
// tests pin the threshold boundary and the DivMod sign contract with an
// independent reference implementation.

namespace {

// Pseudorandom positive value with exactly `limbs` 32-bit limbs,
// constructed through the public interface only.
BigInt RandomMagnitude(std::mt19937_64* rng, std::size_t limbs) {
  BigInt result;
  for (std::size_t i = 0; i < limbs; ++i) {
    std::uint32_t limb = static_cast<std::uint32_t>((*rng)());
    if (i + 1 == limbs && limb == 0) limb = 1;  // keep the top limb set
    result = result.ShiftLeft(32) + BigInt::FromUnsigned(limb);
  }
  return result;
}

// Reference product via 32-bit decomposition of b: every partial product
// has a single-limb factor, which stays on the schoolbook path — so this
// checks Karatsuba against schoolbook without private access.
BigInt ReferenceMul(const BigInt& a, BigInt b) {
  bool negative = b.IsNegative();
  if (negative) b = -b;
  BigInt accumulator;
  std::size_t shift = 0;
  while (!b.IsZero()) {
    BigInt chunk = b - b.ShiftRight(32).ShiftLeft(32);
    accumulator += (a * chunk).ShiftLeft(shift);
    shift += 32;
    b = b.ShiftRight(32);
  }
  return negative ? -accumulator : accumulator;
}

}  // namespace

TEST(BigIntTest, KaratsubaThresholdBoundary) {
  // The Karatsuba fast path engages when both operands reach 32 limbs;
  // products straddling the boundary (31/32/33 limbs) and unbalanced
  // shapes (64 x 32) must agree with the schoolbook reference exactly.
  std::mt19937_64 rng(20260731);
  const std::size_t sizes[] = {1, 31, 32, 33, 40, 63, 64, 65, 96};
  for (std::size_t a_limbs : sizes) {
    for (std::size_t b_limbs : sizes) {
      BigInt a = RandomMagnitude(&rng, a_limbs);
      BigInt b = RandomMagnitude(&rng, b_limbs);
      BigInt product = a * b;
      EXPECT_EQ(product, ReferenceMul(a, b))
          << a_limbs << "x" << b_limbs << " limbs";
      EXPECT_EQ(product, b * a) << "commutativity " << a_limbs << "x"
                                << b_limbs;
      // Bit lengths of exact products: |a|+|b|-1 or |a|+|b|.
      EXPECT_GE(product.BitLength(), a.BitLength() + b.BitLength() - 1);
      EXPECT_LE(product.BitLength(), a.BitLength() + b.BitLength());
    }
  }
}

TEST(BigIntTest, KaratsubaPowersOfTwoAndAllOnes) {
  // Sparse-limb operands stress the split-and-recombine carries: trailing
  // zero limbs in the split halves and maximal carries from all-ones.
  BigInt two_pow_2047 = BigInt::Pow(BigInt(2), 2047);
  BigInt all_ones = two_pow_2047 - BigInt(1);  // 2^2047 - 1: 64 full limbs
  EXPECT_EQ(all_ones * all_ones,
            BigInt::Pow(BigInt(2), 4094) - two_pow_2047.ShiftLeft(1) +
                BigInt(1));
  BigInt sparse = BigInt::Pow(BigInt(2), 2016) + BigInt(1);  // zero middle
  EXPECT_EQ(sparse * all_ones, ReferenceMul(sparse, all_ones));
}

TEST(BigIntTest, DivModSignInvariants) {
  // Truncated division contract: a == q*b + r, |r| < |b|, and r is zero
  // or carries the sign of a — for every sign combination, across the
  // multi-limb Knuth path (divisor >= 2 limbs) and the single-limb fast
  // path.
  std::mt19937_64 rng(987654321);
  const std::size_t a_sizes[] = {1, 2, 5, 33, 64};
  const std::size_t b_sizes[] = {1, 2, 3, 32};
  for (std::size_t a_limbs : a_sizes) {
    for (std::size_t b_limbs : b_sizes) {
      for (int signs = 0; signs < 4; ++signs) {
        BigInt a = RandomMagnitude(&rng, a_limbs);
        BigInt b = RandomMagnitude(&rng, b_limbs);
        if (signs & 1) a = -a;
        if (signs & 2) b = -b;
        BigInt quotient, remainder;
        BigInt::DivMod(a, b, &quotient, &remainder);
        EXPECT_EQ(quotient * b + remainder, a)
            << a.ToString() << " / " << b.ToString();
        EXPECT_LT(remainder.Abs(), b.Abs());
        if (!remainder.IsZero()) {
          EXPECT_EQ(remainder.Sign(), a.Sign())
              << a.ToString() << " % " << b.ToString();
        }
        EXPECT_EQ(a / b, quotient);
        EXPECT_EQ(a % b, remainder);
      }
    }
  }
}

TEST(BigIntTest, DivModKnuthQhatCorrectionCases) {
  // Dividends engineered to force the q̂-overestimate correction loops in
  // algorithm D: all-ones dividends against divisors with a maximal top
  // limb and a minimal second limb.
  BigInt dividend = BigInt::Pow(BigInt(2), 320) - BigInt(1);
  BigInt divisor =
      BigInt::FromUnsigned(0xFFFFFFFFull).ShiftLeft(32) + BigInt(1);
  BigInt quotient, remainder;
  BigInt::DivMod(dividend, divisor, &quotient, &remainder);
  EXPECT_EQ(quotient * divisor + remainder, dividend);
  EXPECT_LT(remainder.Abs(), divisor.Abs());

  // Exact division and off-by-one neighbours around a huge product.
  std::mt19937_64 rng(5);
  BigInt a = RandomMagnitude(&rng, 48);
  BigInt b = RandomMagnitude(&rng, 17);
  BigInt product = a * b;
  EXPECT_EQ(product / b, a);
  EXPECT_TRUE((product % b).IsZero());
  EXPECT_EQ((product - BigInt(1)) / b, a - BigInt(1));
  EXPECT_EQ((product - BigInt(1)) % b, b - BigInt(1));
  EXPECT_EQ((product + BigInt(1)) / b, a);
  EXPECT_EQ((product + BigInt(1)) % b, BigInt(1));
}

TEST(BigIntTest, Int64BoundaryRoundTrips) {
  BigInt min64(std::numeric_limits<std::int64_t>::min());
  BigInt max64(std::numeric_limits<std::int64_t>::max());
  EXPECT_TRUE(min64.FitsInt64());
  EXPECT_TRUE(max64.FitsInt64());
  EXPECT_EQ(min64.ToInt64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(max64.ToInt64(), std::numeric_limits<std::int64_t>::max());
  EXPECT_FALSE((max64 + BigInt(1)).FitsInt64());
  EXPECT_FALSE((min64 - BigInt(1)).FitsInt64());
  EXPECT_EQ((min64 / BigInt(-1)), max64 + BigInt(1));
}

TEST(BigIntTest, ShiftLeftAtLimbMultiples) {
  // Shifts by exact 32-bit limb multiples take the whole-limb path; the
  // result must agree with multiplication by 2^k and round-trip back.
  for (std::size_t bits : {32u, 64u, 96u, 128u}) {
    for (std::int64_t value : {1, 3, -5, 0x7FFFFFFF}) {
      BigInt shifted = BigInt(value).ShiftLeft(bits);
      EXPECT_EQ(shifted, BigInt(value) * BigInt::Pow(BigInt(2), bits))
          << value << " << " << bits;
      EXPECT_EQ(shifted.ShiftRight(bits), BigInt(value))
          << value << " << " << bits;
    }
  }
  // Zero stays canonical zero through any shift.
  EXPECT_TRUE(BigInt(0).ShiftLeft(64).IsZero());
  EXPECT_EQ(BigInt(0).ShiftLeft(64), BigInt(0));
}

TEST(BigIntTest, ShiftRightAtOrPastBitLength) {
  // Shifting by >= BitLength() must produce canonical zero — including
  // for negative values, where a stale sign bit once survived.
  for (const char* text :
       {"1", "-1", "123456789", "-123456789",
        "340282366920938463463374607431768211456",
        "-340282366920938463463374607431768211456"}) {
    BigInt value = BigInt::FromString(text);
    std::size_t length = value.BitLength();
    for (std::size_t bits : {length, length + 1, length + 32, length + 129}) {
      BigInt shifted = value.ShiftRight(bits);
      EXPECT_TRUE(shifted.IsZero()) << text << " >> " << bits;
      EXPECT_EQ(shifted.Sign(), 0) << text << " >> " << bits;
      EXPECT_EQ(shifted, BigInt(0)) << text << " >> " << bits;
      EXPECT_EQ(shifted.ToString(), "0") << text << " >> " << bits;
    }
    // One bit short of the length leaves the top bit (magnitude 1).
    if (!value.IsZero()) {
      EXPECT_EQ(value.ShiftRight(length - 1).Abs(), BigInt(1)) << text;
    }
  }
}

TEST(BigIntTest, ShiftRightAtLimbMultiples) {
  BigInt value = BigInt::FromString("340282366920938463463374607431768211457");
  // 2^128 + 1: dropping exact limb counts must keep the remaining limbs.
  EXPECT_EQ(value.ShiftRight(32), BigInt::Pow(BigInt(2), 96));
  EXPECT_EQ(value.ShiftRight(64), BigInt::Pow(BigInt(2), 64));
  EXPECT_EQ(value.ShiftRight(96), BigInt::Pow(BigInt(2), 32));
  EXPECT_EQ(value.ShiftRight(128), BigInt(1));
  EXPECT_EQ(value.ShiftRight(129), BigInt(0));
}

TEST(BigIntTest, PromoteDemoteBoundaryRoundTrips) {
  // Crossing ±2^63 in both directions lands back on the inline form with
  // full equality against a freshly built value (the representation is
  // canonical, so == is field-wise).
  BigInt max64(std::numeric_limits<std::int64_t>::max());
  BigInt min64(std::numeric_limits<std::int64_t>::min());
  BigInt up = max64;
  up += BigInt(1);  // 2^63: heap
  EXPECT_FALSE(up.FitsInt64());
  up -= BigInt(1);  // back to 2^63 - 1: inline again
  EXPECT_TRUE(up.FitsInt64());
  EXPECT_EQ(up, max64);
  EXPECT_EQ(up.ToInt64(), std::numeric_limits<std::int64_t>::max());

  BigInt down = min64;  // -2^63 is the inline negative extreme
  EXPECT_TRUE(down.FitsInt64());
  down -= BigInt(1);  // -2^63 - 1: heap
  EXPECT_FALSE(down.FitsInt64());
  down += BigInt(1);
  EXPECT_TRUE(down.FitsInt64());
  EXPECT_EQ(down, min64);

  // Negation across the asymmetric boundary: -(-2^63) needs the heap,
  // and negating back must demote.
  BigInt flipped = -min64;
  EXPECT_FALSE(flipped.FitsInt64());
  EXPECT_EQ(flipped.ToString(), "9223372036854775808");
  EXPECT_EQ(-flipped, min64);
  EXPECT_TRUE((-flipped).FitsInt64());

  // Division is a demotion path too: 2^63 / -1 → -2^63 inline.
  EXPECT_EQ(flipped / BigInt(-1), min64);
  EXPECT_TRUE((flipped / BigInt(-1)).FitsInt64());
}

TEST(BigIntTest, ArithmeticStraddlingTheInlineBoundary) {
  // Products and sums whose operands are inline but whose results are
  // not (and vice versa) — the overflow-intrinsic fast paths must commit
  // only on success.
  BigInt two62 = BigInt::Pow(BigInt(2), 62);
  EXPECT_TRUE(two62.FitsInt64());
  EXPECT_FALSE((two62 * BigInt(2)).FitsInt64());
  EXPECT_EQ((two62 * BigInt(2)) - two62, two62);
  EXPECT_TRUE(((two62 * BigInt(2)) - two62).FitsInt64());
  EXPECT_EQ(two62 * BigInt(-2), BigInt(std::numeric_limits<std::int64_t>::min()));
  EXPECT_TRUE((two62 * BigInt(-2)).FitsInt64());

  // (2^62) * (2^62) then divided back down: promote through multiply,
  // demote through divide.
  BigInt square = two62 * two62;
  EXPECT_FALSE(square.FitsInt64());
  EXPECT_EQ(square / two62, two62);
  EXPECT_TRUE((square / two62).FitsInt64());
  EXPECT_EQ(square % two62, BigInt(0));

  // Sum of two inline extremes: max + max = 2^64 - 2 (heap), minus max
  // demotes again.
  BigInt max64(std::numeric_limits<std::int64_t>::max());
  BigInt double_max = max64 + max64;
  EXPECT_FALSE(double_max.FitsInt64());
  EXPECT_EQ(double_max - max64, max64);
  EXPECT_TRUE((double_max - max64).FitsInt64());
}

}  // namespace
}  // namespace swfomc::numeric
