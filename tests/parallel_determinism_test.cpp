// Determinism under parallelism — the property the ISSUE's tentpole
// stakes its soundness on: independent components are exact subproblems
// whose counts multiply commutatively and whose cached values are fully
// determined by their keys, so the grounded WFOMC result must be
// bit-identical for every thread count and every schedule. Stats are
// *not* schedule-deterministic (shared-cache hits change which subtrees
// get explored), but they must always satisfy the accounting invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

#include "api/engine.h"
#include "grounding/grounded_wfomc.h"
#include "logic/parser.h"
#include "runtime/thread_pool.h"
#include "wmc/dpll_counter.h"

namespace swfomc {
namespace {

using numeric::BigRational;
using wmc::DpllCounter;

// At least 2 so the parallel machinery is exercised even on single-core
// CI runners and build containers.
unsigned StressThreads() {
  return std::max(2u, std::thread::hardware_concurrency());
}

void CheckStatsInvariants(const DpllCounter::Stats& stats) {
  EXPECT_LE(stats.cache_hits, stats.cache_lookups);
  EXPECT_LE(stats.cache_hits + stats.cache_collisions, stats.cache_lookups);
  EXPECT_LE(stats.cache_evictions, stats.cache_insertions);
  EXPECT_LE(stats.cache_entries,
            stats.cache_insertions - stats.cache_evictions);
}

TEST(ParallelDeterminism, RepeatedParallelRunsAreBitIdentical) {
  logic::Vocabulary vocab;
  logic::Formula phi = logic::Parse(
      "exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))", &vocab);

  DpllCounter::Stats sequential_stats;
  BigRational sequential = grounding::GroundedWFOMC(phi, vocab, 4, {},
                                                    &sequential_stats);
  CheckStatsInvariants(sequential_stats);

  DpllCounter::Options parallel;
  parallel.num_threads = StressThreads();
  // Force forking deep into the search so the schedule space is large.
  parallel.parallel_min_component_vars = 2;
  for (int run = 0; run < 6; ++run) {
    SCOPED_TRACE("run=" + std::to_string(run));
    DpllCounter::Stats stats;
    BigRational result = grounding::GroundedWFOMC(phi, vocab, 4, parallel,
                                                  &stats);
    EXPECT_EQ(result, sequential);
    EXPECT_GT(stats.parallel_forks, 0u);
    CheckStatsInvariants(stats);
    // The search tree may shrink under different cache-hit interleavings
    // but never grows past the sequential one's bound by more than the
    // forked re-discoveries; decisions must stay positive and sane.
    EXPECT_GT(stats.decisions, 0u);
  }
}

TEST(ParallelDeterminism, ThreadCountSweepAgreesOnWeightedInstance) {
  // Fractional + negative weights: exactness must survive parallelism.
  logic::Vocabulary vocab;
  vocab.AddRelation("S", 2, BigRational::Fraction(1, 2), BigRational(-1));
  vocab.AddRelation("U", 1, BigRational(3), BigRational(1));
  logic::Formula phi = logic::Parse(
      "forall x exists y (S(x,y) | U(x))", &vocab);

  BigRational reference;
  for (unsigned threads : {1u, 2u, 3u, StressThreads()}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    DpllCounter::Options options;
    options.num_threads = threads;
    options.parallel_min_component_vars = 2;
    DpllCounter::Stats stats;
    BigRational result =
        grounding::GroundedWFOMC(phi, vocab, 4, options, &stats);
    if (threads == 1) {
      reference = result;
    } else {
      EXPECT_EQ(result, reference);
    }
    CheckStatsInvariants(stats);
  }
}

TEST(ParallelDeterminism, TinyCacheBoundStaysExactUnderThreads) {
  // Eviction churn across striped shards must never corrupt a count.
  logic::Vocabulary vocab;
  logic::Formula phi = logic::Parse(
      "exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))", &vocab);
  BigRational reference = grounding::GroundedWFOMC(phi, vocab, 3);
  DpllCounter::Options options;
  options.num_threads = StressThreads();
  options.parallel_min_component_vars = 2;
  options.max_cache_entries = 32;  // per-shard bound becomes 2
  DpllCounter::Stats stats;
  EXPECT_EQ(grounding::GroundedWFOMC(phi, vocab, 3, options, &stats),
            reference);
  CheckStatsInvariants(stats);
  EXPECT_LE(stats.cache_entries, 32u);
}

TEST(ParallelDeterminism, EngineSweepParallelMatchesSequential) {
  logic::Vocabulary vocab;
  api::Engine sequential_engine(vocab);
  logic::Formula phi = sequential_engine.Parse(
      "exists x exists y (S(x,y) & S(y,x) & T(x))");
  api::Engine::SweepResult expected =
      sequential_engine.WFOMCSweep(phi, 1, 4, api::Method::kGrounded);

  api::Engine parallel_engine(sequential_engine.vocabulary(),
                              api::Engine::Options{StressThreads()});
  api::Engine::SweepResult actual =
      parallel_engine.WFOMCSweep(phi, 1, 4, api::Method::kGrounded);
  ASSERT_EQ(actual.points.size(), expected.points.size());
  for (std::size_t i = 0; i < actual.points.size(); ++i) {
    EXPECT_EQ(actual.points[i].domain_size, expected.points[i].domain_size);
    EXPECT_EQ(actual.points[i].value, expected.points[i].value);
  }
}

TEST(ThreadPool, NestedGroupsAndExceptionPropagation) {
  runtime::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);

  // Fork-join fan-out with nested groups: 4 * 8 increments, all counted.
  std::atomic<int> counter{0};
  {
    runtime::TaskGroup group(&pool);
    for (int i = 0; i < 4; ++i) {
      group.Submit([&pool, &counter] {
        runtime::TaskGroup nested(&pool);
        for (int j = 0; j < 8; ++j) {
          nested.Submit([&counter] { ++counter; });
        }
        nested.Wait();
      });
    }
    group.Wait();
  }
  EXPECT_EQ(counter.load(), 32);

  // The first exception surfaces in Wait; the pool survives for reuse.
  runtime::TaskGroup failing(&pool);
  failing.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(failing.Wait(), std::runtime_error);

  runtime::TaskGroup after(&pool);
  after.Submit([&counter] { ++counter; });
  after.Wait();
  EXPECT_EQ(counter.load(), 33);
}

TEST(ThreadPool, SingleThreadPoolRunsTasksInline) {
  runtime::ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  int runs = 0;
  runtime::TaskGroup group(&pool);
  for (int i = 0; i < 5; ++i) group.Submit([&runs] { ++runs; });
  group.Wait();
  EXPECT_EQ(runs, 5);
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(runtime::ThreadPool::ResolveThreadCount(3), 3u);
  EXPECT_GE(runtime::ThreadPool::ResolveThreadCount(0), 1u);
}

}  // namespace
}  // namespace swfomc
