// Table 2 sequence pins: exact FOMC values for the paper's open-problem
// formulas at small n, cross-checked against independent references
// (OEIS) and exhaustive enumeration. These back the claims printed by
// bench_table2.

#include <gtest/gtest.h>

#include "grounding/grounded_wfomc.h"
#include "logic/parser.h"

namespace swfomc::grounding {
namespace {

using numeric::BigInt;

BigInt Fomc(const char* sentence, std::uint64_t n) {
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse(sentence, &vocab);
  return GroundedFOMC(f, vocab, n);
}

TEST(Table2Test, TransitiveRelationsMatchOeisA006905) {
  // Labeled transitive binary relations on n points: 2, 13, 171, 3994.
  const char* transitivity =
      "forall x forall y forall z ((E(x,y) & E(y,z)) => E(x,z))";
  const std::uint64_t expected[] = {2, 13, 171, 3994};
  for (std::uint64_t n = 1; n <= 4; ++n) {
    EXPECT_EQ(Fomc(transitivity, n), BigInt(expected[n - 1])) << n;
  }
}

TEST(Table2Test, UntypedTrianglesComplementTriangleFree) {
  // ∃x∃y∃z R(x,y) ∧ R(y,z) ∧ R(z,x) with variables not required
  // distinct: at n = 1 only the world {R(1,1)} has a triangle (x=y=z).
  const char* triangles =
      "exists x exists y exists z (R(x,y) & R(y,z) & R(z,x))";
  EXPECT_EQ(Fomc(triangles, 1), BigInt(1));
  // n = 2: complement count — digraphs on 2 nodes with no directed
  // triangle (incl. loops as 1-cycles counted via x=y=z etc.). Checked
  // against exhaustive enumeration rather than a closed form.
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse(triangles, &vocab);
  EXPECT_EQ(GroundedFOMC(f, vocab, 2), ExhaustiveFOMC(f, vocab, 2));
}

TEST(Table2Test, ExtensionAxiomVacuousBelowThreeElements) {
  // The simplified extension axiom quantifies three *distinct* elements:
  // for n < 3 it is vacuously true, so FOMC = 2^(n^2).
  const char* extension =
      "forall x1 forall x2 forall x3 ((x1 != x2 & x1 != x3 & x2 != x3) => "
      "exists y (E(x1,y) & E(x2,y) & E(x3,y)))";
  EXPECT_EQ(Fomc(extension, 1), BigInt(2));
  EXPECT_EQ(Fomc(extension, 2), BigInt(16));
  // n = 3 is the first constrained case; pin the measured value so any
  // engine regression trips here.
  EXPECT_EQ(Fomc(extension, 3), BigInt(169));
}

TEST(Table2Test, TypedTriangleFactorsAtN1) {
  // At n = 1 the typed triangle needs R(1,1), S(1,1), T(1,1) all present:
  // exactly one world of eight.
  EXPECT_EQ(Fomc("exists x exists y exists z (R(x,y) & S(y,z) & T(z,x))",
                 1),
            BigInt(1));
}

TEST(Table2Test, HomophilyMatchesExhaustiveAtN2) {
  const char* homophily =
      "forall x forall y forall z ((R(x,y) & S(x,z)) => R(z,y))";
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse(homophily, &vocab);
  for (std::uint64_t n = 1; n <= 2; ++n) {
    EXPECT_EQ(GroundedFOMC(f, vocab, n), ExhaustiveFOMC(f, vocab, n)) << n;
  }
}

TEST(Table2Test, FourCycleMatchesExhaustiveAtN1) {
  const char* cycle =
      "exists x1 exists x2 exists x3 exists x4 "
      "(R1(x1,x2) & R2(x2,x3) & R3(x3,x4) & R4(x4,x1))";
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse(cycle, &vocab);
  EXPECT_EQ(GroundedFOMC(f, vocab, 1), BigInt(1));
  EXPECT_EQ(GroundedFOMC(f, vocab, 1), ExhaustiveFOMC(f, vocab, 1));
}

}  // namespace
}  // namespace swfomc::grounding
