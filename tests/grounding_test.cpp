#include "grounding/grounded_wfomc.h"

#include <gtest/gtest.h>

#include "grounding/lineage.h"
#include "logic/parser.h"
#include "numeric/combinatorics.h"
#include "prop/prop_formula.h"

namespace swfomc::grounding {
namespace {

using numeric::BigInt;
using numeric::BigRational;

TEST(TupleIndexTest, Bijection) {
  logic::Vocabulary vocab;
  vocab.AddRelation("R", 2);
  vocab.AddRelation("U", 1);
  vocab.AddRelation("P", 0);
  TupleIndex index(vocab, 3);
  EXPECT_EQ(index.TupleCount(), 13u);
  for (prop::VarId v = 0; v < index.TupleCount(); ++v) {
    TupleIndex::GroundAtom atom = index.AtomOf(v);
    EXPECT_EQ(index.VariableOf(atom.relation, atom.args), v);
  }
  EXPECT_EQ(index.NameOf(index.VariableOf(0, {1, 2})), "R(1,2)");
  EXPECT_EQ(index.NameOf(index.VariableOf(2, {})), "P");
}

TEST(LineageTest, MatchesSectionTwoDefinition) {
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse("forall x exists y R(x,y)", &vocab);
  TupleIndex index(vocab, 2);
  prop::PropFormula lineage = GroundLineage(f, index);
  // (R(0,0) | R(0,1)) & (R(1,0) | R(1,1))
  EXPECT_EQ(lineage->kind(), prop::PropKind::kAnd);
  EXPECT_EQ(lineage->children().size(), 2u);
  EXPECT_EQ(lineage->children()[0]->kind(), prop::PropKind::kOr);
}

TEST(LineageTest, GroundEqualityFolds) {
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse("forall x forall y (x = y | R(x,y))",
                                  &vocab);
  TupleIndex index(vocab, 2);
  prop::PropFormula lineage = GroundLineage(f, index);
  // Diagonal pairs fold to true; the off-diagonal R atoms remain.
  EXPECT_EQ(lineage->kind(), prop::PropKind::kAnd);
  EXPECT_EQ(lineage->children().size(), 2u);
}

TEST(LineageTest, UnboundVariableThrows) {
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse("R(x)", &vocab);
  TupleIndex index(vocab, 2);
  EXPECT_THROW(GroundLineage(f, index), std::invalid_argument);
}

TEST(GroundedFOMCTest, PaperClosedFormForallExists) {
  // FOMC(∀x∃y R(x,y), n) = (2^n - 1)^n  (Section 1).
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse("forall x exists y R(x,y)", &vocab);
  for (std::uint64_t n = 1; n <= 4; ++n) {
    BigInt expected =
        BigInt::Pow(BigInt::Pow(BigInt(2), n) - BigInt(1), n);
    EXPECT_EQ(GroundedFOMC(f, vocab, n), expected) << n;
  }
}

TEST(GroundedFOMCTest, ExistsUnary) {
  // FOMC(∃y S(y), n) = 2^n - 1.
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse("exists y S(y)", &vocab);
  for (std::uint64_t n = 0; n <= 6; ++n) {
    BigInt expected = BigInt::Pow(BigInt(2), n) - BigInt(1);
    EXPECT_EQ(GroundedFOMC(f, vocab, n), expected) << n;
  }
}

TEST(GroundedWFOMCTest, WeightedExistsUnaryClosedForm) {
  // WFOMC(∃y S(y), n, w, w̄) = (w + w̄)^n - w̄^n  (Section 2).
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse("exists y S(y)", &vocab);
  vocab.SetWeights(vocab.Require("S"), BigRational(3),
                   BigRational::Fraction(1, 2));
  for (std::uint64_t n = 1; n <= 5; ++n) {
    BigRational expected =
        BigRational::Pow(BigRational::Fraction(7, 2),
                         static_cast<std::int64_t>(n)) -
        BigRational::Pow(BigRational::Fraction(1, 2),
                         static_cast<std::int64_t>(n));
    EXPECT_EQ(GroundedWFOMC(f, vocab, n), expected) << n;
  }
}

TEST(GroundedWFOMCTest, WeightedForallExistsClosedForm) {
  // WFOMC(∀x∃y R(x,y), n) = ((w + w̄)^n - w̄^n)^n  (Section 2).
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse("forall x exists y R(x,y)", &vocab);
  vocab.SetWeights(vocab.Require("R"), BigRational(2), BigRational(3));
  for (std::uint64_t n = 1; n <= 3; ++n) {
    BigRational inner =
        BigRational::Pow(BigRational(5), static_cast<std::int64_t>(n)) -
        BigRational::Pow(BigRational(3), static_cast<std::int64_t>(n));
    EXPECT_EQ(GroundedWFOMC(f, vocab, n),
              BigRational::Pow(inner, static_cast<std::int64_t>(n)))
        << n;
  }
}

TEST(GroundedWFOMCTest, Table1ClosedForm) {
  // Table 1: FOMC(∀x∀y(R(x)|S(x,y)|T(y)), n) = Σ_{k,m} C(n,k)C(n,m) 2^{n²-km}.
  logic::Vocabulary vocab;
  logic::Formula f =
      logic::Parse("forall x forall y (R(x) | S(x,y) | T(y))", &vocab);
  for (std::uint64_t n = 1; n <= 3; ++n) {
    BigInt expected(0);
    for (std::uint64_t k = 0; k <= n; ++k) {
      for (std::uint64_t m = 0; m <= n; ++m) {
        expected += numeric::Binomial(n, k) * numeric::Binomial(n, m) *
                    BigInt::Pow(BigInt(2), n * n - k * m);
      }
    }
    EXPECT_EQ(GroundedFOMC(f, vocab, n), expected) << n;
  }
}

TEST(GroundedWFOMCTest, AgreesWithExhaustiveOnRandomSentences) {
  logic::Vocabulary vocab;
  const char* sentences[] = {
      "forall x forall y (R(x,y) => R(y,x))",
      "forall x (U(x) | exists y R(x,y))",
      "exists x exists y (R(x,y) & !R(y,x))",
      "forall x exists y (R(x,y) & U(y))",
      "forall x (U(x) <=> exists y R(y,x))",
  };
  logic::Vocabulary weighted;
  weighted.AddRelation("R", 2, BigRational(2), BigRational(1));
  weighted.AddRelation("U", 1, BigRational::Fraction(1, 3), BigRational(1));
  for (const char* text : sentences) {
    logic::Formula f = logic::ParseStrict(text, weighted);
    for (std::uint64_t n = 1; n <= 2; ++n) {
      EXPECT_EQ(GroundedWFOMC(f, weighted, n),
                ExhaustiveWFOMC(f, weighted, n))
          << text << " n=" << n;
    }
  }
}

TEST(GroundedWFOMCTest, UnsatisfiableSentenceCountsZero) {
  logic::Vocabulary vocab;
  logic::Formula f =
      logic::Parse("(forall x U(x)) & (exists x !U(x))", &vocab);
  EXPECT_EQ(GroundedFOMC(f, vocab, 3), BigInt(0));
}

TEST(GroundedWFOMCTest, TautologyCountsAllWorlds) {
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse("forall x (U(x) | !U(x))", &vocab);
  // 2^{|Tup(n)|} = 2^n.
  EXPECT_EQ(GroundedFOMC(f, vocab, 5), BigInt::Pow(BigInt(2), 5));
}

TEST(GroundedProbabilityTest, MatchesDefinition) {
  logic::Vocabulary vocab;
  vocab.AddRelation("S", 1, BigRational(1), BigRational(1));
  logic::Formula f = logic::ParseStrict("exists y S(y)", vocab);
  // Pr = (2^n - 1) / 2^n with weights (1,1) i.e. p = 1/2.
  EXPECT_EQ(GroundedProbability(f, vocab, 3),
            BigRational::Fraction(7, 8));
}

TEST(GroundedWFOMCAsymmetricTest, PerTupleWeights) {
  // Σ over worlds satisfying ∃y S(y) of per-tuple weights: with
  // w(S(0)) = 2, w(S(1)) = 3 and w̄ = 1:
  // total = (2+1)(3+1) - 1 = 11 (subtract the empty world).
  logic::Vocabulary vocab;
  vocab.AddRelation("S", 1);
  logic::Formula f = logic::ParseStrict("exists y S(y)", vocab);
  auto weights = [](const TupleIndex& index,
                    prop::VarId v) -> wmc::VariableWeights {
    TupleIndex::GroundAtom atom = index.AtomOf(v);
    return wmc::VariableWeights{
        BigRational(static_cast<std::int64_t>(atom.args[0] + 2)),
        BigRational(1)};
  };
  EXPECT_EQ(GroundedWFOMCAsymmetric(f, vocab, 2, weights), BigRational(11));
}

TEST(GroundedWFOMCTest, EmptyDomain) {
  logic::Vocabulary vocab;
  logic::Formula forall = logic::Parse("forall x U(x)", &vocab);
  EXPECT_EQ(GroundedFOMC(forall, vocab, 0), BigInt(1));
  logic::Formula exists = logic::Parse("exists x U(x)", &vocab);
  EXPECT_EQ(GroundedFOMC(exists, vocab, 0), BigInt(0));
}

TEST(GroundedWFOMCTest, StatsReporting) {
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse("forall x exists y R(x,y)", &vocab);
  wmc::DpllCounter::Stats stats;
  GroundedWFOMC(f, vocab, 3, {}, &stats);
  EXPECT_GT(stats.decisions + stats.unit_propagations, 0u);
}

}  // namespace
}  // namespace swfomc::grounding
