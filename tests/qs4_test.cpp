// Theorem 3.7: the QS4 dynamic program, validated against exhaustive
// enumeration (QS4 is FO4 — no lifted rule computes it, so brute force is
// the only independent reference).

#include "qs4/qs4.h"

#include <gtest/gtest.h>

#include "grounding/grounded_wfomc.h"

namespace swfomc::qs4 {
namespace {

using numeric::BigInt;
using numeric::BigRational;

TEST(Qs4Test, SentenceIsFO4) {
  logic::Vocabulary vocab = Qs4Vocabulary(1, 1);
  logic::Formula qs4 = Qs4Sentence(vocab);
  EXPECT_TRUE(logic::IsSentence(qs4));
  EXPECT_TRUE(logic::InFragmentFOk(qs4, 4));
  EXPECT_FALSE(logic::InFragmentFOk(qs4, 3));
}

TEST(Qs4Test, TrivialDomains) {
  Qs4Solver solver(1, 1);
  EXPECT_EQ(solver.WFOMC(0), BigRational(1));
  // n = 1: S(0,0) free or not — the sentence degenerates to a tautology
  // (S(0,0) | !S(0,0) | ...), so both worlds count.
  EXPECT_EQ(solver.WFOMC(1), BigRational(2));
}

TEST(Qs4Test, MatchesBruteForceUnweighted) {
  logic::Vocabulary vocab = Qs4Vocabulary(1, 1);
  logic::Formula qs4 = Qs4Sentence(vocab);
  for (std::uint64_t n = 1; n <= 3; ++n) {
    Qs4Solver solver(1, 1);
    BigRational expected(
        grounding::ExhaustiveFOMC(qs4, vocab, n));
    EXPECT_EQ(solver.WFOMC(n), expected) << n;
  }
}

TEST(Qs4Test, MatchesBruteForceWeighted) {
  BigRational w(2), w_bar = BigRational::Fraction(1, 3);
  logic::Vocabulary vocab = Qs4Vocabulary(w, w_bar);
  logic::Formula qs4 = Qs4Sentence(vocab);
  for (std::uint64_t n = 1; n <= 3; ++n) {
    Qs4Solver solver(w, w_bar);
    EXPECT_EQ(solver.WFOMC(n), grounding::ExhaustiveWFOMC(qs4, vocab, n))
        << n;
  }
}

TEST(Qs4Test, MatchesGroundedDpllAtNFour) {
  // n = 4 has 2^16 worlds: still exhaustive-checkable via the DPLL path.
  logic::Vocabulary vocab = Qs4Vocabulary(1, 1);
  logic::Formula qs4 = Qs4Sentence(vocab);
  Qs4Solver solver(1, 1);
  EXPECT_EQ(solver.WFOMC(4),
            BigRational(grounding::GroundedFOMC(qs4, vocab, 4)));
}

TEST(Qs4Test, GeneralizedBipartiteCounts) {
  // Rectangular domains: cross-check f/g recurrences against exhaustive
  // counting over an n1 x n2 bipartite S. Build the restriction manually:
  // over domain max(n1,n2) the formula with typed ranges equals the DP.
  Qs4Solver solver(1, 1);
  // n1 = 1, n2 = 2: matrices 1x2; Q requires: no 2x2 violation possible
  // with one row -> all 4 matrices satisfy. f+g should be 4.
  EXPECT_EQ(solver.GeneralizedWFOMC(1, 2), BigRational(4));
  // n1 = 2, n2 = 1: dually 4.
  Qs4Solver solver2(1, 1);
  EXPECT_EQ(solver2.GeneralizedWFOMC(2, 1), BigRational(4));
}

TEST(Qs4Test, PolynomialScaling) {
  // The PTIME claim: n = 40 is effortless (the matrix has 1600 cells;
  // 2^1600 worlds for brute force).
  Qs4Solver solver(1, 1);
  BigRational count = solver.WFOMC(40);
  EXPECT_GT(count, BigRational(0));
  // Sanity: strictly fewer than all 2^1600 worlds.
  EXPECT_LT(count, BigRational(numeric::BigInt::Pow(numeric::BigInt(2),
                                                    1600)));
}

TEST(Qs4Test, MonotoneInDomainSize) {
  Qs4Solver solver(1, 1);
  BigRational previous(1);
  for (std::uint64_t n = 1; n <= 10; ++n) {
    BigRational current = solver.WFOMC(n);
    EXPECT_GT(current, previous) << n;
    previous = current;
  }
}

TEST(Qs4Test, NegativeWeightsSupported) {
  // The DP is a polynomial identity in (w, w̄); negative weights must
  // agree with brute force too.
  BigRational w(-1), w_bar(2);
  logic::Vocabulary vocab = Qs4Vocabulary(w, w_bar);
  logic::Formula qs4 = Qs4Sentence(vocab);
  for (std::uint64_t n = 1; n <= 2; ++n) {
    Qs4Solver solver(w, w_bar);
    EXPECT_EQ(solver.WFOMC(n), grounding::ExhaustiveWFOMC(qs4, vocab, n))
        << n;
  }
}

}  // namespace
}  // namespace swfomc::qs4
