#include "prop/prop_formula.h"

#include <random>

#include <gtest/gtest.h>

#include "prop/cnf.h"
#include "prop/tseitin.h"
#include "test_util.h"

namespace swfomc::prop {
namespace {

TEST(PropFormulaTest, ConstantFolding) {
  EXPECT_EQ(PropAnd(PropVar(0), PropTrue())->kind(), PropKind::kVar);
  EXPECT_EQ(PropAnd(PropVar(0), PropFalse())->kind(), PropKind::kFalse);
  EXPECT_EQ(PropOr(PropVar(0), PropTrue())->kind(), PropKind::kTrue);
  EXPECT_EQ(PropOr(PropVar(0), PropFalse())->kind(), PropKind::kVar);
  EXPECT_EQ(PropNot(PropNot(PropVar(3)))->kind(), PropKind::kVar);
}

TEST(PropFormulaTest, Flattening) {
  PropFormula f = PropAnd(PropAnd(PropVar(0), PropVar(1)), PropVar(2));
  EXPECT_EQ(f->children().size(), 3u);
  PropFormula g = PropOr({PropOr(PropVar(0), PropVar(1)), PropVar(2)});
  EXPECT_EQ(g->children().size(), 3u);
}

TEST(PropFormulaTest, EvaluateProp) {
  // (x0 | !x1) & x2
  PropFormula f =
      PropAnd(PropOr(PropVar(0), PropNot(PropVar(1))), PropVar(2));
  EXPECT_TRUE(EvaluateProp(f, {true, true, true}));
  EXPECT_TRUE(EvaluateProp(f, {false, false, true}));
  EXPECT_FALSE(EvaluateProp(f, {false, true, true}));
  EXPECT_FALSE(EvaluateProp(f, {true, true, false}));
}

TEST(PropFormulaTest, VariableUpperBound) {
  EXPECT_EQ(VariableUpperBound(PropTrue()), 0u);
  EXPECT_EQ(VariableUpperBound(PropVar(7)), 8u);
  EXPECT_EQ(VariableUpperBound(PropAnd(PropVar(2), PropNot(PropVar(9)))),
            10u);
}

TEST(PropFormulaTest, SizeAndToString) {
  PropFormula f = PropAnd(PropVar(0), PropNot(PropVar(1)));
  EXPECT_EQ(PropSize(f), 4u);
  EXPECT_EQ(PropToString(f), "(x0 & !x1)");
}

TEST(CnfTest, IsSatisfiedBy) {
  CnfFormula cnf;
  cnf.variable_count = 2;
  cnf.clauses = {{{0, true}, {1, false}}};  // x0 | !x1
  EXPECT_TRUE(cnf.IsSatisfiedBy({true, true}));
  EXPECT_TRUE(cnf.IsSatisfiedBy({false, false}));
  EXPECT_FALSE(cnf.IsSatisfiedBy({false, true}));
}

TEST(CnfTest, NormalizeDropsTautologiesAndDuplicates) {
  CnfFormula cnf;
  cnf.variable_count = 2;
  cnf.clauses = {{{0, true}, {0, false}},          // tautology
                 {{1, true}, {0, true}},           // kept
                 {{0, true}, {1, true}},           // duplicate of above
                 {{1, true}, {1, true}, {0, true}}};  // dup literal + dup
  NormalizeCnf(&cnf);
  EXPECT_EQ(cnf.clauses.size(), 1u);
  EXPECT_EQ(cnf.clauses[0].size(), 2u);
}

TEST(CnfTest, DimacsRendering) {
  CnfFormula cnf;
  cnf.variable_count = 2;
  cnf.clauses = {{{0, true}, {1, false}}};
  EXPECT_EQ(cnf.ToString(), "p cnf 2 1\n1 -2 0\n");
}

// Tseitin must preserve the *number of models projected onto original
// variables* — each original model extends uniquely.
TEST(TseitinTest, CountPreservation) {
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 60; ++trial) {
    // Random formula over 4 variables.
    PropFormula f = testutil::RandomPropFormula(&rng, 3, 4);
    TseitinResult tseitin = TseitinTransform(f, 4);

    // Count models of f directly.
    int direct = 0;
    for (std::uint64_t mask = 0; mask < 16; ++mask) {
      std::vector<bool> assignment(4);
      for (int i = 0; i < 4; ++i) assignment[i] = (mask >> i) & 1;
      if (EvaluateProp(f, assignment)) ++direct;
    }
    // Count models of the CNF over all (original + auxiliary) variables.
    int cnf_models = 0;
    std::uint32_t total = tseitin.cnf.variable_count;
    ASSERT_LE(total, 20u);
    for (std::uint64_t mask = 0; mask < (1ULL << total); ++mask) {
      std::vector<bool> assignment(total);
      for (std::uint32_t i = 0; i < total; ++i) assignment[i] = (mask >> i) & 1;
      if (tseitin.cnf.IsSatisfiedBy(assignment)) ++cnf_models;
    }
    // Each of the 2^4 original assignments... only models of f extend, each
    // in exactly one way.
    EXPECT_EQ(cnf_models, direct) << PropToString(f);
  }
}

TEST(TseitinTest, ConstantRoots) {
  TseitinResult t_true = TseitinTransform(PropTrue(), 3);
  EXPECT_TRUE(t_true.cnf.clauses.empty());
  EXPECT_EQ(t_true.cnf.variable_count, 3u);

  TseitinResult t_false = TseitinTransform(PropFalse(), 3);
  ASSERT_EQ(t_false.cnf.clauses.size(), 1u);
  EXPECT_TRUE(t_false.cnf.clauses[0].empty());
}

TEST(TseitinTest, SingleLiteralNeedsNoAuxiliaries) {
  TseitinResult t = TseitinTransform(PropNot(PropVar(1)), 2);
  EXPECT_EQ(t.cnf.variable_count, 2u);
  ASSERT_EQ(t.cnf.clauses.size(), 1u);
  EXPECT_EQ(t.cnf.clauses[0].size(), 1u);
  EXPECT_FALSE(t.cnf.clauses[0][0].positive);
}

TEST(TseitinTest, SharedSubformulaEncodedOnce) {
  PropFormula shared = PropAnd(PropVar(0), PropVar(1));
  PropFormula f = PropOr(shared, PropAnd(shared, PropVar(2)));
  TseitinResult t = TseitinTransform(f, 3);
  // Aux vars: shared, the inner And, the outer Or -> exactly 3.
  EXPECT_EQ(t.cnf.variable_count, 6u);
}

}  // namespace
}  // namespace swfomc::prop
