#ifndef SWFOMC_TESTS_TEST_UTIL_H_
#define SWFOMC_TESTS_TEST_UTIL_H_

// Shared seeded generators for the property suites and benchmark drivers.
// Everything here is deterministic in the caller-supplied rng/seed so test
// shards and reruns see identical instances.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "cq/conjunctive_query.h"
#include "numeric/rational.h"
#include "prop/cnf.h"
#include "prop/prop_formula.h"
#include "wmc/weights.h"

namespace swfomc::testutil {

/// Random CNF over `variables` variables: `clauses` clauses of 1..max_len
/// literals each, uniformly random variable and polarity. Duplicate and
/// complementary literals within a clause are allowed — counters must
/// handle both.
inline prop::CnfFormula RandomCnf(std::mt19937_64* rng,
                                  std::uint32_t variables,
                                  std::size_t clauses, std::size_t max_len) {
  prop::CnfFormula cnf;
  cnf.variable_count = variables;
  std::uniform_int_distribution<std::uint32_t> var_dist(0, variables - 1);
  for (std::size_t i = 0; i < clauses; ++i) {
    std::size_t len = 1 + (*rng)() % max_len;
    prop::Clause clause;
    for (std::size_t j = 0; j < len; ++j) {
      clause.push_back(prop::Literal{var_dist(*rng), ((*rng)() & 1) != 0});
    }
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

/// Random weight table with small fractional weights; negative w/w̄ are
/// included when `allow_negative` (the paper's Section 2 semantics allows
/// them, and the exact engines must agree there too).
inline wmc::WeightMap RandomWeights(std::mt19937_64* rng,
                                    std::uint32_t variables,
                                    bool allow_negative) {
  wmc::WeightMap weights(variables);
  std::uniform_int_distribution<std::int64_t> dist(allow_negative ? -3 : 1, 4);
  for (prop::VarId v = 0; v < variables; ++v) {
    std::int64_t wp = dist(*rng), wn = dist(*rng);
    weights.Set(v, numeric::BigRational::Fraction(wp, 2),
                numeric::BigRational::Fraction(wn, 3));
  }
  return weights;
}

/// Random propositional formula tree of depth <= `depth` over `variables`
/// variables: leaves are (possibly negated) variables, interior nodes are
/// And/Or with early termination so shapes vary.
inline prop::PropFormula RandomPropFormula(std::mt19937_64* rng, int depth,
                                           std::uint32_t variables) {
  if (depth == 0 || (*rng)() % 3 == 0) {
    prop::PropFormula v =
        prop::PropVar(static_cast<prop::VarId>((*rng)() % variables));
    return (*rng)() % 2 ? prop::PropNot(v) : v;
  }
  prop::PropFormula a = RandomPropFormula(rng, depth - 1, variables);
  prop::PropFormula b = RandomPropFormula(rng, depth - 1, variables);
  return (*rng)() % 2 ? prop::PropAnd(a, b) : prop::PropOr(a, b);
}

/// Random tree-shaped (hence γ-acyclic) query: atoms R1..Rk, each new atom
/// shares exactly one variable with an earlier atom and introduces one
/// fresh variable — a random spanning tree over variables. Every relation
/// gets a random probability in {1/4, 2/4, 3/4}.
inline cq::ConjunctiveQuery MakeRandomTreeQuery(std::uint64_t seed,
                                                std::size_t atoms) {
  std::mt19937_64 rng(seed);
  cq::ConjunctiveQuery query;
  std::vector<std::string> variables = {"v0", "v1"};
  query.AddAtom("R1", {"v0", "v1"});
  for (std::size_t i = 2; i <= atoms; ++i) {
    std::string shared = variables[rng() % variables.size()];
    std::string fresh = "v" + std::to_string(variables.size());
    variables.push_back(fresh);
    // Random atom shape: binary, or unary on the fresh variable.
    if (rng() % 4 == 0) {
      query.AddAtom("R" + std::to_string(i), {fresh});
    } else if (rng() % 2 == 0) {
      query.AddAtom("R" + std::to_string(i), {shared, fresh});
    } else {
      query.AddAtom("R" + std::to_string(i), {fresh, shared});
    }
  }
  for (const cq::ConjunctiveQuery::QueryAtom& atom : query.atoms()) {
    std::int64_t numerator = static_cast<std::int64_t>(1 + rng() % 3);
    query.SetProbability(atom.relation,
                         numeric::BigRational::Fraction(numerator, 4));
  }
  return query;
}

}  // namespace swfomc::testutil

#endif  // SWFOMC_TESTS_TEST_UTIL_H_
