#ifndef SWFOMC_TESTS_TEST_UTIL_H_
#define SWFOMC_TESTS_TEST_UTIL_H_

// Shared seeded generators for the property suites and benchmark drivers.
// Everything here is deterministic in the caller-supplied rng/seed so test
// shards and reruns see identical instances.

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "cq/conjunctive_query.h"
#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "numeric/rational.h"
#include "prop/cnf.h"
#include "prop/prop_formula.h"
#include "wmc/weights.h"

namespace swfomc::testutil {

/// Random CNF over `variables` variables: `clauses` clauses of 1..max_len
/// literals each, uniformly random variable and polarity. Duplicate and
/// complementary literals within a clause are allowed — counters must
/// handle both.
inline prop::CnfFormula RandomCnf(std::mt19937_64* rng,
                                  std::uint32_t variables,
                                  std::size_t clauses, std::size_t max_len) {
  prop::CnfFormula cnf;
  cnf.variable_count = variables;
  std::uniform_int_distribution<std::uint32_t> var_dist(0, variables - 1);
  for (std::size_t i = 0; i < clauses; ++i) {
    std::size_t len = 1 + (*rng)() % max_len;
    prop::Clause clause;
    for (std::size_t j = 0; j < len; ++j) {
      clause.push_back(prop::Literal{var_dist(*rng), ((*rng)() & 1) != 0});
    }
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

/// Random weight table with small fractional weights; negative w/w̄ are
/// included when `allow_negative` (the paper's Section 2 semantics allows
/// them, and the exact engines must agree there too).
inline wmc::WeightMap RandomWeights(std::mt19937_64* rng,
                                    std::uint32_t variables,
                                    bool allow_negative) {
  wmc::WeightMap weights(variables);
  std::uniform_int_distribution<std::int64_t> dist(allow_negative ? -3 : 1, 4);
  for (prop::VarId v = 0; v < variables; ++v) {
    std::int64_t wp = dist(*rng), wn = dist(*rng);
    weights.Set(v, numeric::BigRational::Fraction(wp, 2),
                numeric::BigRational::Fraction(wn, 3));
  }
  return weights;
}

/// Random weight table concentrated at the BigInt inline-word boundary:
/// numerators within a few units of ±2^62 over denominators of 1, 2, or
/// likewise near 2^62. A product of any two such weights overflows the
/// inline int64 form (promote), while sums and gcd reductions routinely
/// land back inside it (demote) — so counting under these weights hammers
/// exactly the promote/demote seam the small-value representation adds.
inline wmc::WeightMap RandomBoundaryWeights(std::mt19937_64* rng,
                                            std::uint32_t variables) {
  wmc::WeightMap weights(variables);
  constexpr std::int64_t kBoundary = std::int64_t{1} << 62;
  auto near_boundary = [rng]() {
    std::int64_t magnitude =
        kBoundary - 2 + static_cast<std::int64_t>((*rng)() % 5);
    return ((*rng)() & 1) != 0 ? magnitude : -magnitude;
  };
  auto denominator = [rng, near_boundary]() -> std::int64_t {
    switch ((*rng)() % 3) {
      case 0: return 1;
      case 1: return 2;
      default: return std::abs(near_boundary());
    }
  };
  for (prop::VarId v = 0; v < variables; ++v) {
    weights.Set(v,
                numeric::BigRational::Fraction(near_boundary(), denominator()),
                numeric::BigRational::Fraction(near_boundary(), denominator()));
  }
  return weights;
}

/// Random propositional formula tree of depth <= `depth` over `variables`
/// variables: leaves are (possibly negated) variables, interior nodes are
/// And/Or with early termination so shapes vary.
inline prop::PropFormula RandomPropFormula(std::mt19937_64* rng, int depth,
                                           std::uint32_t variables) {
  if (depth == 0 || (*rng)() % 3 == 0) {
    prop::PropFormula v =
        prop::PropVar(static_cast<prop::VarId>((*rng)() % variables));
    return (*rng)() % 2 ? prop::PropNot(v) : v;
  }
  prop::PropFormula a = RandomPropFormula(rng, depth - 1, variables);
  prop::PropFormula b = RandomPropFormula(rng, depth - 1, variables);
  return (*rng)() % 2 ? prop::PropAnd(a, b) : prop::PropOr(a, b);
}

/// Random tree-shaped (hence γ-acyclic) query: atoms R1..Rk, each new atom
/// shares exactly one variable with an earlier atom and introduces one
/// fresh variable — a random spanning tree over variables. Every relation
/// gets a random probability in {1/4, 2/4, 3/4}.
inline cq::ConjunctiveQuery MakeRandomTreeQuery(std::uint64_t seed,
                                                std::size_t atoms) {
  std::mt19937_64 rng(seed);
  cq::ConjunctiveQuery query;
  std::vector<std::string> variables = {"v0", "v1"};
  query.AddAtom("R1", {"v0", "v1"});
  for (std::size_t i = 2; i <= atoms; ++i) {
    std::string shared = variables[rng() % variables.size()];
    std::string fresh = "v" + std::to_string(variables.size());
    variables.push_back(fresh);
    // Random atom shape: binary, or unary on the fresh variable.
    if (rng() % 4 == 0) {
      query.AddAtom("R" + std::to_string(i), {fresh});
    } else if (rng() % 2 == 0) {
      query.AddAtom("R" + std::to_string(i), {shared, fresh});
    } else {
      query.AddAtom("R" + std::to_string(i), {fresh, shared});
    }
  }
  for (const cq::ConjunctiveQuery::QueryAtom& atom : query.atoms()) {
    std::int64_t numerator = static_cast<std::int64_t>(1 + rng() % 3);
    query.SetProbability(atom.relation,
                         numeric::BigRational::Fraction(numerator, 4));
  }
  return query;
}

/// A random sentence paired with the weighted vocabulary it was built
/// against (the differential suites push one instance through several
/// engines).
struct RandomSentence {
  logic::Formula sentence;
  logic::Vocabulary vocabulary;
};

/// Random FO² sentence over {U/1, V/1, R/2}: a random quantifier-free
/// matrix over the eight atoms on {x, y}, wrapped in a random two-variable
/// quantifier prefix. Weight pattern varies with the seed and includes
/// fractional and negative weights (the exact engines must agree there
/// too). Always inside the lifted fragment: no constants, arity <= 2.
inline RandomSentence MakeRandomFO2Sentence(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  RandomSentence result;
  auto pick_weight = [&]() {
    switch (rng() % 5) {
      case 0: return numeric::BigRational(1);
      case 1: return numeric::BigRational(2);
      case 2: return numeric::BigRational::Fraction(1, 2);
      case 3: return numeric::BigRational(3);
      default: return numeric::BigRational(-1);
    }
  };
  logic::RelationId u = result.vocabulary.AddRelation(
      "U", 1, pick_weight(), numeric::BigRational(1));
  logic::RelationId v = result.vocabulary.AddRelation(
      "V", 1, pick_weight(), numeric::BigRational(1));
  logic::RelationId r =
      result.vocabulary.AddRelation("R", 2, pick_weight(), pick_weight());

  auto var = [](const char* name) { return logic::Term::Var(name); };
  std::vector<logic::Formula> atoms = {
      logic::Atom(u, {var("x")}),           logic::Atom(u, {var("y")}),
      logic::Atom(v, {var("x")}),           logic::Atom(v, {var("y")}),
      logic::Atom(r, {var("x"), var("y")}), logic::Atom(r, {var("y"), var("x")}),
      logic::Atom(r, {var("x"), var("x")}), logic::Atom(r, {var("y"), var("y")}),
  };
  // Random matrix: a small tree of connectives over random atoms.
  std::function<logic::Formula(int)> matrix = [&](int depth) -> logic::Formula {
    if (depth == 0 || rng() % 3 == 0) {
      logic::Formula atom = atoms[rng() % atoms.size()];
      return rng() % 2 ? logic::Not(atom) : atom;
    }
    logic::Formula a = matrix(depth - 1);
    logic::Formula b = matrix(depth - 1);
    switch (rng() % 3) {
      case 0: return logic::And(std::move(a), std::move(b));
      case 1: return logic::Or(std::move(a), std::move(b));
      default: return logic::Implies(std::move(a), std::move(b));
    }
  };
  logic::Formula body = matrix(2);
  switch (rng() % 4) {
    case 0:
      result.sentence = logic::Forall("x", logic::Forall("y", body));
      break;
    case 1:
      result.sentence = logic::Forall("x", logic::Exists("y", body));
      break;
    case 2:
      result.sentence = logic::Exists("x", logic::Forall("y", body));
      break;
    default:
      result.sentence = logic::Exists("x", logic::Exists("y", body));
      break;
  }
  return result;
}

/// Random γ-acyclic conjunctive query *as a sentence*: the tree-query
/// shape of MakeRandomTreeQuery (each atom shares exactly one variable
/// with an earlier atom and introduces a fresh one), existentially closed
/// over all variables, with random positive weights (w + w̄ != 0 so the
/// γ-acyclic route is admissible) on a fresh vocabulary.
inline RandomSentence MakeRandomGammaAcyclicSentence(std::uint64_t seed,
                                                     std::size_t atoms) {
  std::mt19937_64 rng(seed);
  RandomSentence result;
  auto pick_weight = [&]() {
    switch (rng() % 4) {
      case 0: return numeric::BigRational(1);
      case 1: return numeric::BigRational(2);
      case 2: return numeric::BigRational::Fraction(1, 2);
      default: return numeric::BigRational::Fraction(3, 2);
    }
  };
  auto var = [](const std::string& name) { return logic::Term::Var(name); };
  std::vector<std::string> variables = {"v0", "v1"};
  logic::RelationId r1 =
      result.vocabulary.AddRelation("R1", 2, pick_weight(), pick_weight());
  logic::Formula body = logic::Atom(r1, {var("v0"), var("v1")});
  for (std::size_t i = 2; i <= atoms; ++i) {
    std::string shared = variables[rng() % variables.size()];
    std::string fresh = "v" + std::to_string(variables.size());
    variables.push_back(fresh);
    std::string name = "R" + std::to_string(i);
    logic::Formula atom;
    if (rng() % 4 == 0) {
      atom = logic::Atom(
          result.vocabulary.AddRelation(name, 1, pick_weight(), pick_weight()),
          {var(fresh)});
    } else if (rng() % 2 == 0) {
      atom = logic::Atom(
          result.vocabulary.AddRelation(name, 2, pick_weight(), pick_weight()),
          {var(shared), var(fresh)});
    } else {
      atom = logic::Atom(
          result.vocabulary.AddRelation(name, 2, pick_weight(), pick_weight()),
          {var(fresh), var(shared)});
    }
    body = logic::And(std::move(body), std::move(atom));
  }
  result.sentence = std::move(body);
  for (std::size_t i = variables.size(); i-- > 0;) {
    result.sentence = logic::Exists(variables[i], std::move(result.sentence));
  }
  return result;
}

/// Base seed for the fuzz suites: the committed default, overridable with
/// the SWFOMC_FUZZ_SEED environment variable (CI rotates it per run and
/// logs the value so any failure is replayable).
inline std::uint64_t FuzzBaseSeed(std::uint64_t default_seed) {
  const char* env = std::getenv("SWFOMC_FUZZ_SEED");
  if (env == nullptr || *env == '\0') return default_seed;
  return std::strtoull(env, nullptr, 10);
}

}  // namespace swfomc::testutil

#endif  // SWFOMC_TESTS_TEST_UTIL_H_
