// Typed cycles C_k, typed (per-variable-domain) grounding, and the
// Section 3.2 embedding of C_k into β-cyclic queries.

#include "cq/typed_cycle.h"

#include <gtest/gtest.h>

#include "cq/gamma_evaluator.h"
#include "grounding/grounded_wfomc.h"

namespace swfomc::cq {
namespace {

using numeric::BigInt;
using numeric::BigRational;

BigRational Pow(const BigRational& base, std::uint64_t e) {
  return BigRational::Pow(base, static_cast<std::int64_t>(e));
}

TEST(TypedCycleTest, BuildsCycleStructure) {
  ConjunctiveQuery c3 = TypedCycle(3);
  ASSERT_EQ(c3.atoms().size(), 3u);
  EXPECT_EQ(c3.ToString(), "R1(x1,x2), R2(x2,x3), R3(x3,x1)");
  ConjunctiveQuery c5 = TypedCycle(5);
  EXPECT_EQ(c5.atoms().back().relation, "R5");
  EXPECT_EQ(c5.atoms().back().variables,
            (std::vector<std::string>{"x5", "x1"}));
}

TEST(TypedCycleTest, RejectsShortCycles) {
  EXPECT_THROW(TypedCycle(0), std::invalid_argument);
  EXPECT_THROW(TypedCycle(2), std::invalid_argument);
}

TEST(TypedCycleTest, CycleIsNotGammaOrBetaAcyclic) {
  for (std::size_t k : {3u, 4u, 5u}) {
    Hypergraph graph = BuildHypergraph(TypedCycle(k));
    EXPECT_FALSE(IsGammaAcyclic(graph));
    EXPECT_FALSE(IsBetaAcyclic(graph));
    auto cycle = FindWeakBetaCycle(graph);
    ASSERT_TRUE(cycle.has_value());
    EXPECT_EQ(cycle->edges.size(), k);
  }
}

// --- typed grounding ----------------------------------------------------

TEST(TypedGroundingTest, SingleAtomClosedForm) {
  // Pr(∃x R(x)) over [n] = 1 - (1-p)^n.
  ConjunctiveQuery query = ConjunctiveQuery::FromString("R(x)");
  query.SetProbability("R", BigRational::Fraction(1, 3));
  for (std::uint64_t n = 1; n <= 5; ++n) {
    BigRational expected =
        BigRational(1) - Pow(BigRational::Fraction(2, 3), n);
    EXPECT_EQ(TypedGroundedProbability(query, n), expected) << "n=" << n;
  }
}

TEST(TypedGroundingTest, EmptyDomainGivesZero) {
  ConjunctiveQuery query = ConjunctiveQuery::FromString("R(x)");
  std::map<std::string, std::uint64_t> domains{{"x", 0}};
  EXPECT_EQ(TypedGroundedProbability(query, domains), BigRational(0));
}

TEST(TypedGroundingTest, MissingDomainThrows) {
  ConjunctiveQuery query = ConjunctiveQuery::FromString("R(x,y)");
  std::map<std::string, std::uint64_t> domains{{"x", 2}};
  EXPECT_THROW(TypedGroundedProbability(query, domains),
               std::invalid_argument);
}

TEST(TypedGroundingTest, ProductQueryFactorizes) {
  // Pr(∃x∃y R(x) ∧ S(y)) = Pr(∃x R(x)) · Pr(∃y S(y)) with distinct
  // domains — independence across disjoint relations.
  ConjunctiveQuery query = ConjunctiveQuery::FromString("R(x), S(y)");
  query.SetProbability("R", BigRational::Fraction(1, 2));
  query.SetProbability("S", BigRational::Fraction(1, 4));
  std::map<std::string, std::uint64_t> domains{{"x", 2}, {"y", 3}};
  BigRational left = BigRational(1) - Pow(BigRational::Fraction(1, 2), 2);
  BigRational right = BigRational(1) - Pow(BigRational::Fraction(3, 4), 3);
  EXPECT_EQ(TypedGroundedProbability(query, domains), left * right);
}

TEST(TypedGroundingTest, MatchesGammaEvaluatorOnChains) {
  // The Theorem 3.6 evaluator supports per-variable domains; typed
  // grounding must agree on γ-acyclic inputs.
  ConjunctiveQuery chain = ConjunctiveQuery::FromString("R(x,y), S(y,z)");
  chain.SetProbability("R", BigRational::Fraction(1, 2));
  chain.SetProbability("S", BigRational::Fraction(1, 3));
  for (std::uint64_t nx = 1; nx <= 2; ++nx) {
    for (std::uint64_t ny = 1; ny <= 2; ++ny) {
      for (std::uint64_t nz = 1; nz <= 3; ++nz) {
        std::map<std::string, std::uint64_t> domains{
            {"x", nx}, {"y", ny}, {"z", nz}};
        GammaEvaluator evaluator;
        std::map<std::string, BigInt> big_domains{
            {"x", BigInt(nx)}, {"y", BigInt(ny)}, {"z", BigInt(nz)}};
        EXPECT_EQ(TypedGroundedProbability(chain, domains),
                  evaluator.Probability(chain, big_domains))
            << nx << "," << ny << "," << nz;
      }
    }
  }
}

TEST(TypedGroundingTest, StandardSemanticsMatchesSentenceGrounding) {
  // Under equal domains the typed grounding must agree with the generic
  // FO path (ToSentence + GroundedProbability).
  ConjunctiveQuery c3 = TypedCycle(3);
  c3.SetProbability("R1", BigRational::Fraction(1, 2));
  c3.SetProbability("R2", BigRational::Fraction(1, 3));
  c3.SetProbability("R3", BigRational::Fraction(2, 3));
  for (std::uint64_t n = 1; n <= 2; ++n) {
    auto [sentence, vocab] = c3.ToSentence();
    EXPECT_EQ(TypedGroundedProbability(c3, n),
              grounding::GroundedProbability(sentence, vocab, n))
        << "n=" << n;
  }
}

TEST(TypedGroundingTest, RepeatedVariableHitsDiagonal) {
  // R(x,x) only constrains diagonal tuples: Pr(∃x R(x,x)) = 1 - (1-p)^n.
  ConjunctiveQuery query;
  query.AddAtom("R", {"x", "x"});
  query.SetProbability("R", BigRational::Fraction(1, 2));
  std::map<std::string, std::uint64_t> domains{{"x", 3}};
  EXPECT_EQ(TypedGroundedProbability(query, domains),
            BigRational(1) - Pow(BigRational::Fraction(1, 2), 3));
}

// --- C_k closed-form spot checks ---------------------------------------

TEST(TypedCycleTest, C3AllDomainsOneIsProductOfProbabilities) {
  // With n_i = 1 the cycle needs its three designated tuples present.
  std::vector<BigRational> p = {BigRational::Fraction(1, 2),
                                BigRational::Fraction(1, 3),
                                BigRational::Fraction(3, 4)};
  EXPECT_EQ(TypedCycleProbability(3, {1, 1, 1}, p), p[0] * p[1] * p[2]);
}

TEST(TypedCycleTest, C3MatchesSentenceGroundingAtN2) {
  ConjunctiveQuery c3 = TypedCycle(3);
  c3.SetProbability("R1", BigRational::Fraction(1, 2));
  c3.SetProbability("R2", BigRational::Fraction(1, 2));
  c3.SetProbability("R3", BigRational::Fraction(1, 2));
  auto [sentence, vocab] = c3.ToSentence();
  EXPECT_EQ(TypedGroundedProbability(c3, 2),
            grounding::GroundedProbability(sentence, vocab, 2));
}

// --- the Section 3.2 embedding -----------------------------------------

// Q with a weak β-cycle of length 3 plus extra baggage: an extra variable
// w inside a cycle relation and a satellite relation A(w).
ConjunctiveQuery BaggageQuery() {
  ConjunctiveQuery query;
  query.AddAtom("R1", {"x1", "x2", "w"});
  query.AddAtom("R2", {"x2", "x3"});
  query.AddAtom("R3", {"x3", "x1"});
  query.AddAtom("A", {"w"});
  return query;
}

TEST(CkEmbeddingTest, EmbedsIntoPlainCycle) {
  std::vector<std::uint64_t> domains = {2, 2, 2};
  std::vector<BigRational> p = {BigRational::Fraction(1, 2),
                                BigRational::Fraction(1, 3),
                                BigRational::Fraction(1, 4)};
  ConjunctiveQuery c3 = TypedCycle(3);
  CkEmbedding embedding = EmbedCkInBetaCyclicQuery(c3, domains, p);
  EXPECT_EQ(embedding.k, 3u);
  EXPECT_EQ(TypedGroundedProbability(embedding.query,
                                     embedding.domain_sizes),
            TypedCycleProbability(3, domains, p));
}

TEST(CkEmbeddingTest, EmbedsIntoQueryWithBaggage) {
  std::vector<std::uint64_t> domains = {2, 1, 2};
  std::vector<BigRational> p = {BigRational::Fraction(1, 2),
                                BigRational::Fraction(2, 3),
                                BigRational::Fraction(1, 5)};
  CkEmbedding embedding =
      EmbedCkInBetaCyclicQuery(BaggageQuery(), domains, p);
  EXPECT_EQ(embedding.k, 3u);
  // Non-cycle relation A gets probability 1; non-cycle variable w gets
  // domain size 1.
  EXPECT_EQ(embedding.query.probability("A"), BigRational(1));
  EXPECT_EQ(embedding.domain_sizes.at("w"), 1u);
  EXPECT_EQ(TypedGroundedProbability(embedding.query,
                                     embedding.domain_sizes),
            TypedCycleProbability(3, domains, p));
}

TEST(CkEmbeddingTest, UnequalDomainSizes) {
  std::vector<std::uint64_t> domains = {1, 2, 3};
  std::vector<BigRational> p(3, BigRational::Fraction(1, 2));
  CkEmbedding embedding =
      EmbedCkInBetaCyclicQuery(BaggageQuery(), domains, p);
  EXPECT_EQ(TypedGroundedProbability(embedding.query,
                                     embedding.domain_sizes),
            TypedCycleProbability(3, domains, p));
}

TEST(CkEmbeddingTest, RejectsAcyclicQuery) {
  ConjunctiveQuery chain = ConjunctiveQuery::FromString("R(x,y), S(y,z)");
  EXPECT_THROW(EmbedCkInBetaCyclicQuery(chain, {1, 1, 1},
                                        {BigRational(1), BigRational(1),
                                         BigRational(1)}),
               std::invalid_argument);
}

TEST(CkEmbeddingTest, RejectsWrongVectorLengths) {
  ConjunctiveQuery c3 = TypedCycle(3);
  EXPECT_THROW(
      EmbedCkInBetaCyclicQuery(c3, {1, 1}, {BigRational(1), BigRational(1)}),
      std::invalid_argument);
}

// Property sweep: the embedding identity holds across probabilities and
// domain shapes for C_4 inside a 4-cycle with a pendant.
struct EmbeddingCase {
  std::uint64_t n1, n2, n3, n4;
  int numerator;  // shared probability numerator / 4
};

class CkEmbeddingSweep : public ::testing::TestWithParam<EmbeddingCase> {};

TEST_P(CkEmbeddingSweep, IdentityHolds) {
  const EmbeddingCase& c = GetParam();
  ConjunctiveQuery query;
  query.AddAtom("R1", {"x1", "x2"});
  query.AddAtom("R2", {"x2", "x3"});
  query.AddAtom("R3", {"x3", "x4"});
  query.AddAtom("R4", {"x4", "x1"});
  query.AddAtom("Pendant", {"x1", "u"});

  std::vector<std::uint64_t> domains = {c.n1, c.n2, c.n3, c.n4};
  std::vector<BigRational> p(4, BigRational::Fraction(c.numerator, 4));
  CkEmbedding embedding = EmbedCkInBetaCyclicQuery(query, domains, p);
  EXPECT_EQ(TypedGroundedProbability(embedding.query,
                                     embedding.domain_sizes),
            TypedCycleProbability(4, domains, p));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CkEmbeddingSweep,
    ::testing::Values(EmbeddingCase{1, 1, 1, 1, 1},
                      EmbeddingCase{2, 1, 1, 1, 1},
                      EmbeddingCase{2, 2, 1, 1, 2},
                      EmbeddingCase{1, 2, 1, 2, 3},
                      EmbeddingCase{2, 2, 2, 1, 3},
                      EmbeddingCase{2, 1, 2, 1, 4}));

}  // namespace
}  // namespace swfomc::cq
