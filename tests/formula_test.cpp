#include "logic/formula.h"

#include <gtest/gtest.h>

#include "logic/printer.h"
#include "logic/vocabulary.h"

namespace swfomc::logic {
namespace {

class FormulaTest : public ::testing::Test {
 protected:
  FormulaTest() {
    r_ = vocab_.AddRelation("R", 2);
    u_ = vocab_.AddRelation("U", 1);
    p_ = vocab_.AddRelation("P", 0);
  }
  Vocabulary vocab_;
  RelationId r_, u_, p_;
};

TEST_F(FormulaTest, VocabularyBasics) {
  EXPECT_EQ(vocab_.size(), 3u);
  EXPECT_EQ(vocab_.arity(r_), 2u);
  EXPECT_EQ(vocab_.name(u_), "U");
  EXPECT_EQ(vocab_.Find("R"), r_);
  EXPECT_EQ(vocab_.Find("Nope"), std::nullopt);
  EXPECT_THROW(vocab_.Require("Nope"), std::out_of_range);
  EXPECT_THROW(vocab_.AddRelation("R", 3), std::invalid_argument);
}

TEST_F(FormulaTest, VocabularyWeights) {
  EXPECT_EQ(vocab_.positive_weight(r_), numeric::BigRational(1));
  vocab_.SetWeights(r_, numeric::BigRational(3),
                    numeric::BigRational::Fraction(-1, 2));
  EXPECT_EQ(vocab_.positive_weight(r_), numeric::BigRational(3));
  EXPECT_EQ(vocab_.negative_weight(r_),
            numeric::BigRational::Fraction(-1, 2));
}

TEST_F(FormulaTest, VocabularyGroundTupleCount) {
  // |Tup(n)| = n^2 + n + 1.
  EXPECT_EQ(vocab_.GroundTupleCount(3), 9u + 3u + 1u);
  EXPECT_EQ(vocab_.GroundTupleCount(1), 3u);
  EXPECT_EQ(vocab_.GroundTupleCount(0), 1u);  // only the 0-ary tuple
  EXPECT_EQ(vocab_.MaxArity(), 2u);
}

TEST_F(FormulaTest, VocabularyFreshName) {
  EXPECT_EQ(vocab_.FreshName("A"), "A");
  EXPECT_EQ(vocab_.FreshName("R"), "R0");
}

TEST_F(FormulaTest, AndSimplification) {
  Formula atom = Atom(u_, {Term::Var("x")});
  EXPECT_EQ(And(atom, True()).get(), atom.get());
  EXPECT_EQ(And(atom, False())->kind(), FormulaKind::kFalse);
  EXPECT_EQ(And(std::vector<Formula>{})->kind(), FormulaKind::kTrue);
  // Nested conjunctions flatten.
  Formula nested = And(And(atom, atom), atom);
  EXPECT_EQ(nested->kind(), FormulaKind::kAnd);
  EXPECT_EQ(nested->children().size(), 3u);
}

TEST_F(FormulaTest, OrSimplification) {
  Formula atom = Atom(u_, {Term::Var("x")});
  EXPECT_EQ(Or(atom, False()).get(), atom.get());
  EXPECT_EQ(Or(atom, True())->kind(), FormulaKind::kTrue);
  EXPECT_EQ(Or(std::vector<Formula>{})->kind(), FormulaKind::kFalse);
}

TEST_F(FormulaTest, NotSimplification) {
  EXPECT_EQ(Not(True())->kind(), FormulaKind::kFalse);
  EXPECT_EQ(Not(False())->kind(), FormulaKind::kTrue);
  Formula atom = Atom(p_, {});
  EXPECT_EQ(Not(atom)->kind(), FormulaKind::kNot);
}

TEST_F(FormulaTest, FreeVariablesOfAtom) {
  Formula f = Atom(r_, {Term::Var("x"), Term::Var("y")});
  EXPECT_EQ(FreeVariables(f), (std::set<std::string>{"x", "y"}));
  EXPECT_EQ(FreeVariables(Atom(r_, {Term::Const(1), Term::Var("y")})),
            (std::set<std::string>{"y"}));
}

TEST_F(FormulaTest, FreeVariablesUnderQuantifier) {
  Formula f = Forall("x", Atom(r_, {Term::Var("x"), Term::Var("y")}));
  EXPECT_EQ(FreeVariables(f), (std::set<std::string>{"y"}));
  EXPECT_FALSE(IsSentence(f));
  EXPECT_TRUE(IsSentence(Forall("y", f)));
}

TEST_F(FormulaTest, FreeVariablesShadowing) {
  // forall x (R(x,y) & exists y R(x,y)): free = {y} (outer occurrence).
  Formula inner = Exists("y", Atom(r_, {Term::Var("x"), Term::Var("y")}));
  Formula f =
      Forall("x", And(Atom(r_, {Term::Var("x"), Term::Var("y")}), inner));
  EXPECT_EQ(FreeVariables(f), (std::set<std::string>{"y"}));
}

TEST_F(FormulaTest, AllVariablesCountsDistinctNames) {
  // FO2 membership per the paper counts distinct names with reuse allowed.
  Formula f = Forall(
      "x", Exists("y",
                  And(Atom(r_, {Term::Var("x"), Term::Var("y")}),
                      Exists("x", Atom(r_, {Term::Var("y"), Term::Var("x")})))));
  EXPECT_EQ(AllVariables(f), (std::set<std::string>{"x", "y"}));
  EXPECT_TRUE(InFragmentFOk(f, 2));
  EXPECT_FALSE(InFragmentFOk(f, 1));
}

TEST_F(FormulaTest, MultiVariableQuantifierHelpers) {
  Formula f = Forall(std::vector<std::string>{"a", "b"},
                     Atom(r_, {Term::Var("a"), Term::Var("b")}));
  EXPECT_EQ(f->kind(), FormulaKind::kForall);
  EXPECT_EQ(f->variable(), "a");
  EXPECT_EQ(f->child()->variable(), "b");
}

TEST_F(FormulaTest, IsEqualityFree) {
  Formula with_eq = Forall("x", Equals(Term::Var("x"), Term::Var("x")));
  EXPECT_FALSE(IsEqualityFree(with_eq));
  EXPECT_TRUE(IsEqualityFree(Atom(u_, {Term::Var("x")})));
}

TEST_F(FormulaTest, CheckAritiesRejectsMismatch) {
  Formula bad = Atom(r_, {Term::Var("x")});
  EXPECT_THROW(CheckArities(bad, vocab_), std::invalid_argument);
  Formula good = Atom(r_, {Term::Var("x"), Term::Var("y")});
  EXPECT_NO_THROW(CheckArities(good, vocab_));
}

TEST_F(FormulaTest, StructurallyEqual) {
  Formula a = Forall("x", Atom(u_, {Term::Var("x")}));
  Formula b = Forall("x", Atom(u_, {Term::Var("x")}));
  Formula c = Forall("y", Atom(u_, {Term::Var("y")}));
  EXPECT_TRUE(StructurallyEqual(a, b));
  EXPECT_FALSE(StructurallyEqual(a, c));  // structural, not alpha-equivalence
}

TEST_F(FormulaTest, FormulaSize) {
  Formula atom = Atom(u_, {Term::Var("x")});
  EXPECT_EQ(FormulaSize(atom), 1u);
  EXPECT_EQ(FormulaSize(Forall("x", Not(atom))), 3u);
}

TEST_F(FormulaTest, PrinterRoundTrippableRendering) {
  Formula f = Forall(
      "x", Exists("y", Or(Not(Atom(r_, {Term::Var("x"), Term::Var("y")})),
                          Atom(u_, {Term::Var("x")}))));
  EXPECT_EQ(ToString(f, vocab_), "forall x. exists y. (!R(x,y) | U(x))");
}

TEST_F(FormulaTest, PrinterZeroAryAtom) {
  EXPECT_EQ(ToString(Atom(p_, {}), vocab_), "P");
  EXPECT_EQ(ToString(And(Atom(p_, {}), Not(Atom(p_, {}))), vocab_),
            "P & !P");
}

TEST_F(FormulaTest, PrinterEqualityAndPrecedence) {
  Formula f =
      Or(And(Atom(p_, {}), Atom(p_, {})), Equals(Term::Var("x"), Term::Var("y")));
  EXPECT_EQ(ToString(f, vocab_), "P & P | x = y");
  Formula g = And(Or(Atom(p_, {}), Atom(p_, {})), Atom(p_, {}));
  EXPECT_EQ(ToString(g, vocab_), "(P | P) & P");
}

TEST(TermTest, Ordering) {
  EXPECT_LT(Term::Var("a"), Term::Var("b"));
  EXPECT_EQ(Term::Const(3), Term::Const(3));
  EXPECT_NE(Term::Const(3), Term::Var("x"));
}

}  // namespace
}  // namespace swfomc::logic
