// The lifted knowledge-compilation stack: fo2::CompileLifted, the
// nnf::LiftedCircuit evaluator, the unified Engine::Compile router, and
// the .nnf counting-node dialect.
//
// Correctness here is differential: a lifted circuit is compiled ONCE
// and its Evaluate(n, w) must be bit-identical to the direct cell
// algorithm and to a fresh grounded compile at every (n, weight vector)
// pair — including zero and negative weights, where a numeric shortcut
// in either path would show up as a disagreement.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "api/engine.h"
#include "fo2/cell_algorithm.h"
#include "fo2/lifted_compiler.h"
#include "io/diagnostics.h"
#include "io/nnf_format.h"
#include "logic/printer.h"
#include "nnf/lifted_circuit.h"
#include "numeric/rational.h"
#include "test_util.h"

namespace swfomc {
namespace {

using api::CompileOptions;
using api::CompileResult;
using api::CompiledQuery;
using api::Engine;
using api::Method;
using api::Outcome;
using api::RelationWeights;
using numeric::BigRational;
using testutil::FuzzBaseSeed;
using testutil::MakeRandomFO2Sentence;
using testutil::RandomSentence;

constexpr std::uint64_t kDefaultBaseSeed = 1;

std::uint64_t BaseSeed() {
  static std::uint64_t seed = FuzzBaseSeed(kDefaultBaseSeed);
  return seed;
}

/// The four weight regimes the reweighting legs sweep: neutral,
/// fractional, negative, and zero (the regimes where a direct counter is
/// allowed to prune but a compiled circuit is not).
struct Regime {
  const char* label;
  BigRational positive;
  BigRational negative;
};

std::vector<Regime> Regimes() {
  return {
      {"unit", BigRational(1), BigRational(1)},
      {"fractional", BigRational(3), BigRational::Fraction(1, 2)},
      {"negative", BigRational(-1), BigRational(2)},
      {"zero", BigRational(0), BigRational(1)},
  };
}

// --- The headline differential: one compile, every (n, w, threads). ---

// Fixed liftable sentences with few 1-types, so the full n ∈ [1, 32]
// sweep stays cheap (the counting node and the direct cell algorithm
// are both O(n^{C-1}); random sentences can reach C ≈ 32 cells and are
// exercised at small n below, like the other tier-1 fuzz suites).
TEST(LiftedCompile, LiftedCompileAgreesWithCellAlgorithmAndGroundedCompile) {
  struct Fixed {
    const char* text;
    const char* binary;  // the relation the reweighting legs replace
  };
  const Fixed sentences[] = {
      {"forall x exists y S(x,y)", "S"},
      {"forall x forall y (S(x,y) -> (C(x) | C(y)))", "S"},
      {"forall x forall y (!E(x,x) & (E(x,y) -> E(y,x)))", "E"},
  };
  for (const Fixed& fixed : sentences) {
    const char* text = fixed.text;
    SCOPED_TRACE(text);
    Engine engine{logic::Vocabulary{}};
    logic::Formula sentence = engine.Parse(text);
    const std::string binary = fixed.binary;

    // Compile once, domain-free: the tentpole contract.
    ASSERT_TRUE(engine.CanCompileLifted(sentence));
    CompileResult result = engine.Compile(sentence, CompileOptions{});
    ASSERT_EQ(result.outcome, Outcome::kExact);
    ASSERT_EQ(result.method, Method::kLiftedFO2);
    ASSERT_TRUE(result.compiled.has_value());
    const CompiledQuery& query = *result.compiled;
    ASSERT_EQ(query.kind(), CompiledQuery::Kind::kLifted);
    EXPECT_EQ(query.domain_size(), 0u);

    // Leg 1: the direct cell algorithm, point by point, n in [1, 32].
    for (std::uint64_t n = 1; n <= 32; ++n) {
      EXPECT_EQ(query.Evaluate(n, {}),
                fo2::LiftedWFOMC(sentence, engine.vocabulary(), n))
          << "n=" << n;
    }

    // Leg 2: WFOMCSweep, sequential and with 4 worker threads — the
    // compiled circuit must match every point of both configurations.
    for (unsigned threads : {1u, 4u}) {
      Engine::Options options;
      options.num_threads = threads;
      Engine sweeper(engine.vocabulary(), options);
      Engine::SweepResult sweep =
          sweeper.WFOMCSweep(sentence, 1, 32, Method::kLiftedFO2);
      ASSERT_EQ(sweep.points.size(), 32u);
      for (const Engine::SweepPoint& point : sweep.points) {
        EXPECT_EQ(query.Evaluate(point.domain_size, {}), point.value)
            << "threads=" << threads << " n=" << point.domain_size;
      }
    }

    // Leg 3: reweighting. Replace the binary relation's weights per
    // regime and compare against a vocabulary carrying those weights —
    // the compiled circuit must track reweights without recompiling.
    for (const Regime& regime : Regimes()) {
      SCOPED_TRACE(std::string("regime=") + regime.label);
      std::vector<RelationWeights> reweights = {
          {binary, regime.positive, regime.negative}};
      logic::Vocabulary reweighted = engine.vocabulary();
      reweighted.SetWeights(reweighted.Require(binary), regime.positive,
                            regime.negative);
      for (std::uint64_t n = 1; n <= 16; ++n) {
        EXPECT_EQ(query.Evaluate(n, reweights),
                  fo2::LiftedWFOMC(sentence, reweighted, n))
            << "n=" << n;
      }
    }

    // Leg 4: the grounded compiler at small n — a different circuit
    // kind, a different algorithm, the same number.
    for (std::uint64_t n = 1; n <= 3; ++n) {
      CompileOptions grounded_options;
      grounded_options.domain_size = n;
      grounded_options.method = Method::kGrounded;
      CompileResult grounded = engine.Compile(sentence, grounded_options);
      ASSERT_EQ(grounded.outcome, Outcome::kExact);
      ASSERT_TRUE(grounded.compiled.has_value());
      ASSERT_EQ(grounded.compiled->kind(), CompiledQuery::Kind::kGrounded);
      EXPECT_EQ(query.Evaluate(n, {}), grounded.compiled->Evaluate(n, {}))
          << "n=" << n;
      for (const Regime& regime : Regimes()) {
        std::vector<RelationWeights> reweights = {
            {binary, regime.positive, regime.negative}};
        EXPECT_EQ(query.Evaluate(n, reweights),
                  grounded.compiled->Evaluate(n, reweights))
            << "n=" << n << " regime=" << regime.label;
      }
    }
  }
}

// Seeded random FO² sentences at small n — the same generator and sizes
// as the tier-1 differential_fuzz suite (cell counts can be large, so
// big n belongs to the slow cross_engine sweep).
TEST(LiftedCompile, RandomFO2SentencesAgreeAcrossAllLegs) {
  std::uint64_t base = BaseSeed();
  ::testing::Test::RecordProperty("fuzz_base_seed",
                                  static_cast<int64_t>(base));
  for (std::uint64_t offset = 0; offset < 8; ++offset) {
    std::uint64_t seed = base + offset;
    RandomSentence random = MakeRandomFO2Sentence(seed);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " sentence=" +
                 logic::ToString(random.sentence, random.vocabulary));

    Engine engine(random.vocabulary);
    ASSERT_TRUE(engine.CanCompileLifted(random.sentence));
    CompileResult result = engine.Compile(random.sentence, CompileOptions{});
    ASSERT_EQ(result.method, Method::kLiftedFO2);
    ASSERT_TRUE(result.compiled.has_value());
    const CompiledQuery& query = *result.compiled;

    for (std::uint64_t n = 1; n <= 4; ++n) {
      // Direct cell algorithm, compile-time weights.
      EXPECT_EQ(query.Evaluate(n, {}),
                fo2::LiftedWFOMC(random.sentence, random.vocabulary, n))
          << "n=" << n;
      // Reweighted, against a reweighted direct count.
      for (const Regime& regime : Regimes()) {
        std::vector<RelationWeights> reweights = {
            {"R", regime.positive, regime.negative}};
        logic::Vocabulary reweighted = random.vocabulary;
        reweighted.SetWeights(reweighted.Require("R"), regime.positive,
                              regime.negative);
        EXPECT_EQ(query.Evaluate(n, reweights),
                  fo2::LiftedWFOMC(random.sentence, reweighted, n))
            << "n=" << n << " regime=" << regime.label;
      }
    }
    // Grounded compile at n = 2: a different circuit kind, the same
    // number, under every regime.
    CompileOptions grounded_options;
    grounded_options.domain_size = 2;
    grounded_options.method = Method::kGrounded;
    CompileResult grounded = engine.Compile(random.sentence, grounded_options);
    ASSERT_TRUE(grounded.compiled.has_value());
    for (const Regime& regime : Regimes()) {
      std::vector<RelationWeights> reweights = {
          {"R", regime.positive, regime.negative}};
      EXPECT_EQ(query.Evaluate(2, reweights),
                grounded.compiled->Evaluate(2, reweights))
          << "regime=" << regime.label;
    }
  }
}

// --- Unified-API contracts around the two circuit kinds. ---

TEST(LiftedCompile, AutoRoutingPicksTheLiftedCompilerForFO2) {
  Engine engine{logic::Vocabulary{}};
  logic::Formula f = engine.Parse("forall x exists y S(x,y)");
  CompileResult result = engine.Compile(f, CompileOptions{});
  ASSERT_TRUE(result.compiled.has_value());
  EXPECT_EQ(result.method, Method::kLiftedFO2);
  EXPECT_EQ(result.compiled->kind(), CompiledQuery::Kind::kLifted);
  // n ↦ (2^n - 1)^n: every element picks a non-empty successor set.
  EXPECT_EQ(result.compiled->Evaluate(3, {}), BigRational(343));
}

TEST(LiftedCompile, GroundedCompileWithoutDomainSizeIsRejected) {
  Engine engine{logic::Vocabulary{}};
  logic::Formula f = engine.Parse("forall x T(x,x,x)");  // arity 3
  EXPECT_FALSE(engine.CanCompileLifted(f));
  try {
    engine.Compile(f, CompileOptions{});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("domain size"),
              std::string::npos)
        << error.what();
  }
}

TEST(LiftedCompile, GammaAcyclicHasNoCircuitForm) {
  Engine engine{logic::Vocabulary{}};
  logic::Formula f = engine.Parse("exists x exists y R(x,y)");
  CompileOptions options;
  options.domain_size = 2;
  options.method = Method::kGammaAcyclic;
  EXPECT_THROW(engine.Compile(f, options), std::invalid_argument);
}

TEST(LiftedCompile, GroundedQueryRejectsForeignDomainSizes) {
  Engine engine{logic::Vocabulary{}};
  logic::Formula f = engine.Parse("forall x U(x)");
  CompileOptions options;
  options.domain_size = 3;
  options.method = Method::kGrounded;
  CompileResult result = engine.Compile(f, options);
  ASSERT_TRUE(result.compiled.has_value());
  EXPECT_EQ(result.compiled->Evaluate(3, {}), BigRational(1));
  try {
    result.compiled->Evaluate(4, {});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("domain size"),
              std::string::npos)
        << error.what();
  }
}

TEST(LiftedCompile, LiftedCircuitRejectsEmptyDomain) {
  Engine engine{logic::Vocabulary{}};
  logic::Formula f = engine.Parse("forall x exists y S(x,y)");
  CompileResult result = engine.Compile(f, CompileOptions{});
  ASSERT_TRUE(result.compiled.has_value());
  EXPECT_THROW(result.compiled->Evaluate(0, {}), std::invalid_argument);
  EXPECT_THROW(result.compiled->lifted_circuit().Evaluate(0),
               std::invalid_argument);
}

TEST(LiftedCompile, MemoryBytesAccountsForVocabularyStrings) {
  // Two structurally identical compiles whose only difference is the
  // length of a relation name: the byte accounting the serve LRU trusts
  // must grow with the name. (Regression: MemoryBytes once ignored the
  // vocabulary snapshot entirely.)
  std::string long_name(512, 'R');
  for (Method method : {Method::kGrounded, Method::kLiftedFO2}) {
    SCOPED_TRACE(api::ToString(method));
    auto compile = [&](const std::string& relation) {
      Engine engine{logic::Vocabulary{}};
      logic::Formula f = engine.Parse("forall x " + relation + "(x)");
      CompileOptions options;
      options.method = method;
      if (method == Method::kGrounded) options.domain_size = 2;
      CompileResult result = engine.Compile(f, options);
      EXPECT_TRUE(result.compiled.has_value());
      return result.compiled->MemoryBytes();
    };
    std::size_t small = compile("U");
    std::size_t large = compile(long_name);
    EXPECT_GE(large, small + long_name.size());
  }
}

// --- The .nnf counting-node dialect: fixpoint, values, positions. ---

TEST(LiftedNnfFormat, PrintIsAParserFixpointOverRandomCircuits) {
  std::uint64_t base = BaseSeed();
  for (std::uint64_t offset = 0; offset < 8; ++offset) {
    std::uint64_t seed = base + offset;
    RandomSentence random = MakeRandomFO2Sentence(seed);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    nnf::LiftedCircuit circuit =
        fo2::CompileLifted(random.sentence, random.vocabulary);

    io::LiftedNnfDocument document;
    BigRational at5 = circuit.Evaluate(5);
    document.circuit = std::move(circuit);
    document.expect = {{5, at5}};

    std::string once = io::PrintLiftedNnf(document);
    io::LiftedNnfDocument reparsed = io::ParseLiftedNnf(once, "rt.nnf");
    EXPECT_EQ(io::PrintLiftedNnf(reparsed), once);
    ASSERT_TRUE(reparsed.expect.has_value());
    EXPECT_EQ(reparsed.expect->first, 5u);
    EXPECT_EQ(reparsed.expect->second, at5);
    // The reparsed circuit is self-contained: same value at every n,
    // under the relation table's compile-time weights.
    for (std::uint64_t n = 1; n <= 6; ++n) {
      EXPECT_EQ(reparsed.circuit.Evaluate(n), document.circuit.Evaluate(n))
          << "n=" << n;
    }
    // And the dialect sniffer sees the lifted header.
    io::AnyNnfDocument any = io::ParseAnyNnf(once, "rt.nnf");
    EXPECT_TRUE(std::holds_alternative<io::LiftedNnfDocument>(any));
  }
}

void ExpectLiftedErrorAt(const std::string& text, std::size_t line,
                         std::size_t column,
                         const std::string& message_piece) {
  try {
    io::ParseLiftedNnf(text, "bad.nnf");
    FAIL() << "expected ParseError for:\n" << text;
  } catch (const io::ParseError& error) {
    EXPECT_EQ(error.location().line, line) << error.what();
    EXPECT_EQ(error.location().column, column) << error.what();
    EXPECT_NE(error.message().find(message_piece), std::string::npos)
        << error.what();
  }
}

TEST(LiftedNnfFormat, ErrorPositions) {
  ExpectLiftedErrorAt("K 1\n", 1, 1, "expected 'lnnf V E R' header");
  ExpectLiftedErrorAt("lnnf 1 0\nK 1\n", 1, 8, "expected 3 value(s)");
  ExpectLiftedErrorAt("lnnf 0 0 0\n", 1, 6, "at least one node");
  ExpectLiftedErrorAt("lnnf 1 0 0\nlnnf 1 0 0\n", 2, 1, "duplicate 'lnnf'");
  ExpectLiftedErrorAt("lnnf 1 0 0\nr R 1 1\nK 1\n", 2, 1,
                      "more relation lines than the header's 0");
  ExpectLiftedErrorAt("lnnf 1 0 1\nK 1\n", 2, 1, "relation count mismatch");
  ExpectLiftedErrorAt("lnnf 1 0 0\nW 1\n", 2, 3, "out of range [1, 0]");
  ExpectLiftedErrorAt("lnnf 2 0 1\nr R 2 1\nW -2\nK 1\n", 3, 3,
                      "out of range [1, 1]");
  ExpectLiftedErrorAt("lnnf 1 0 0\nW 0\n", 2, 3, "out of range");
  ExpectLiftedErrorAt("lnnf 2 1 0\nK 1\nA 1 1\n", 3, 5,
                      "does not precede its parent");
  ExpectLiftedErrorAt("lnnf 2 1 0\nK 1\nA 2 0\n", 3, 3,
                      "child count 2 does not match the 1");
  ExpectLiftedErrorAt("lnnf 1 0 0\ne 0 1\nK 1\n", 2, 3,
                      "expect domain size must be >= 1");
  ExpectLiftedErrorAt("lnnf 1 0 0\ne 1 1\ne 2 1\nK 1\n", 3, 1,
                      "duplicate 'e'");
  ExpectLiftedErrorAt("lnnf 1 0 0\nC 0 0\n", 2, 3, "at least one cell");
  // A 1-cell counting node needs 1 + 1 = 2 children, not 1.
  ExpectLiftedErrorAt("lnnf 2 1 0\nK 1\nC 1 1 0\n", 3, 3,
                      "needs 2 children (C + C(C+1)/2), got 1");
  ExpectLiftedErrorAt("lnnf 1 0 0\nK 1\nK 1\n", 3, 1,
                      "more nodes than the header's 1");
  ExpectLiftedErrorAt("lnnf 2 0 0\nK 1\n", 2, 1, "node count mismatch");
  ExpectLiftedErrorAt("lnnf 1 5 0\nK 1\n", 2, 1, "edge count mismatch");
  ExpectLiftedErrorAt("lnnf 1 0 0\nQ 3\n", 2, 1,
                      "unknown line 'Q' (expected c, r, e, K, W, A, O, or C)");
}

TEST(LiftedNnfFormat, HandWrittenCountingCircuitEvaluates) {
  // One unary relation U(w=2, w̄=1), one cell circuit: C = 2 cells
  // {U, ¬U} with unit pair interactions — so Evaluate(n) must be
  // Σ_k (n choose k) 2^k = 3^n.
  const char* text =
      "c 3^n by hand\n"
      "lnnf 4 5 1\n"
      "r U 2 1\n"
      "e 4 81\n"
      "W 1\n"
      "W -1\n"
      "K 1\n"
      "C 2 5 0 1 2 2 2\n";
  io::LiftedNnfDocument document = io::ParseLiftedNnf(text, "hand.nnf");
  ASSERT_TRUE(document.expect.has_value());
  EXPECT_EQ(document.expect->first, 4u);
  for (std::uint64_t n = 1; n <= 6; ++n) {
    BigRational three_to_n(1);
    for (std::uint64_t i = 0; i < n; ++i) three_to_n *= BigRational(3);
    EXPECT_EQ(document.circuit.Evaluate(n), three_to_n) << "n=" << n;
  }
  EXPECT_EQ(document.circuit.Evaluate(document.expect->first),
            document.expect->second);
  // Reweighting U to (1, 1) turns 3^n into 2^n.
  nnf::LiftedCircuit::Weights unit = {{BigRational(1), BigRational(1)}};
  EXPECT_EQ(document.circuit.Evaluate(3, unit), BigRational(8));
}

}  // namespace
}  // namespace swfomc
