// Golden-value regression corpus: tests/golden/wfomc_golden.json pins
// exact WFOMC values (paper Table 1/2 family entries, closed forms, and
// exhaustively-verified small instances). Every case is replayed through
// Engine::WFOMC under each method the corpus declares applicable, and
// the grounded path additionally under num_threads ∈ {1, 4} — golden
// values are the cheapest way to catch a regression that breaks all
// engines the same way (which the differential suites, by construction,
// cannot see).
//
// The corpus location is compiled in (SWFOMC_GOLDEN_JSON, set by
// tests/CMakeLists.txt), so the binary runs from any directory.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/engine.h"
#include "numeric/rational.h"

namespace swfomc {
namespace {

using api::Engine;
using api::Method;
using numeric::BigRational;

// --- A minimal JSON reader ----------------------------------------------
// Just enough for the corpus schema (objects, arrays, strings, unsigned
// integers); no external dependency, throws std::runtime_error with a
// byte offset on malformed input.

struct JsonValue {
  enum class Kind { kString, kNumber, kArray, kObject };
  Kind kind = Kind::kString;
  std::string string;                        // kString / kNumber (verbatim)
  std::vector<JsonValue> array;              // kArray
  std::map<std::string, JsonValue> object;   // kObject

  const JsonValue& At(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) {
      throw std::runtime_error("golden json: missing key '" + key + "'");
    }
    return it->second;
  }
  bool Has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  JsonValue Parse() {
    JsonValue value = ParseValue();
    SkipSpace();
    if (pos_ != text_.size()) Fail("trailing data");
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) const {
    throw std::runtime_error("golden json: " + why + " at byte " +
                             std::to_string(pos_));
  }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char Peek() {
    SkipSpace();
    if (pos_ >= text_.size()) Fail("unexpected end");
    return text_[pos_];
  }
  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue ParseValue() {
    char c = Peek();
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      JsonValue value;
      value.kind = JsonValue::Kind::kString;
      value.string = ParseString();
      return value;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      JsonValue value;
      value.kind = JsonValue::Kind::kNumber;
      std::size_t start = pos_;
      if (text_[pos_] == '-') ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      value.string = text_.substr(start, pos_ - start);
      if (value.string.empty() || value.string == "-") Fail("bad number");
      return value;
    }
    Fail("unexpected character");
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) Fail("bad escape");
        char escape = text_[pos_++];
        switch (escape) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          default: Fail("unsupported escape");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  JsonValue ParseObject() {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    Expect('{');
    if (Peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      std::string key = ParseString();
      Expect(':');
      value.object.emplace(std::move(key), ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return value;
    }
  }

  JsonValue ParseArray() {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    Expect('[');
    if (Peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return value;
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// --- Corpus loading ------------------------------------------------------

struct GoldenCase {
  std::string name;
  std::string sentence;
  std::map<std::string, std::pair<BigRational, BigRational>> weights;
  std::uint64_t domain_size = 0;
  BigRational wfomc;
  std::vector<Method> methods;
};

Method MethodFromString(const std::string& text) {
  if (text == "lifted-fo2") return Method::kLiftedFO2;
  if (text == "gamma-acyclic") return Method::kGammaAcyclic;
  if (text == "grounded") return Method::kGrounded;
  throw std::runtime_error("golden json: unknown method '" + text + "'");
}

const std::vector<GoldenCase>& Corpus() {
  static const std::vector<GoldenCase> corpus = [] {
    std::ifstream in(SWFOMC_GOLDEN_JSON);
    if (!in) {
      throw std::runtime_error("golden json: cannot open " +
                               std::string(SWFOMC_GOLDEN_JSON));
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    JsonValue root = JsonParser(buffer.str()).Parse();
    std::vector<GoldenCase> cases;
    for (const JsonValue& entry : root.At("cases").array) {
      GoldenCase golden;
      golden.name = entry.At("name").string;
      golden.sentence = entry.At("sentence").string;
      golden.domain_size = std::stoull(entry.At("domain_size").string);
      golden.wfomc = BigRational::FromString(entry.At("wfomc").string);
      for (const auto& [relation, pair] : entry.At("weights").object) {
        golden.weights[relation] = {
            BigRational::FromString(pair.array.at(0).string),
            BigRational::FromString(pair.array.at(1).string)};
      }
      for (const JsonValue& method : entry.At("methods").array) {
        golden.methods.push_back(MethodFromString(method.string));
      }
      cases.push_back(std::move(golden));
    }
    return cases;
  }();
  return corpus;
}

class GoldenCorpus : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GoldenCorpus, ReplaysUnderEveryApplicableMethodAndThreadCount) {
  const GoldenCase& golden = Corpus()[GetParam()];
  SCOPED_TRACE(golden.name);
  for (Method method : golden.methods) {
    SCOPED_TRACE(api::ToString(method));
    // The grounded engine additionally runs parallel; the lifted and
    // γ-acyclic evaluators ignore num_threads, so one pass suffices.
    std::vector<unsigned> thread_counts =
        method == Method::kGrounded ? std::vector<unsigned>{1, 4}
                                    : std::vector<unsigned>{1};
    for (unsigned threads : thread_counts) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      Engine engine(logic::Vocabulary{}, Engine::Options{threads});
      logic::Formula sentence = engine.Parse(golden.sentence);
      for (const auto& [relation, weights] : golden.weights) {
        engine.mutable_vocabulary()->SetWeights(
            engine.vocabulary().Require(relation), weights.first,
            weights.second);
      }
      Engine::Result result =
          engine.WFOMC(sentence, golden.domain_size, method);
      EXPECT_EQ(result.value, golden.wfomc);
      EXPECT_EQ(result.method, method);
    }
  }
}

TEST_P(GoldenCorpus, SweepEndpointCoversGoldenPoint) {
  // WFOMCSweep(n_lo = 1, n_hi = golden n) must reproduce the golden value
  // at its endpoint on the first declared method — exercising the batched
  // path against the same pinned numbers.
  const GoldenCase& golden = Corpus()[GetParam()];
  SCOPED_TRACE(golden.name);
  if (golden.domain_size == 0) return;
  Method method = golden.methods.front();
  Engine engine((logic::Vocabulary()));
  logic::Formula sentence = engine.Parse(golden.sentence);
  for (const auto& [relation, weights] : golden.weights) {
    engine.mutable_vocabulary()->SetWeights(
        engine.vocabulary().Require(relation), weights.first, weights.second);
  }
  Engine::SweepResult sweep =
      engine.WFOMCSweep(sentence, 1, golden.domain_size, method);
  ASSERT_EQ(sweep.points.size(), golden.domain_size);
  EXPECT_EQ(sweep.points.back().domain_size, golden.domain_size);
  EXPECT_EQ(sweep.points.back().value, golden.wfomc);
}

std::string CaseName(const ::testing::TestParamInfo<std::size_t>& info) {
  std::string name = Corpus()[info.param].name;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenCorpus,
                         ::testing::Range<std::size_t>(0, Corpus().size()),
                         CaseName);

}  // namespace
}  // namespace swfomc
