// Golden-value regression corpus: tests/golden/wfomc_golden.json pins
// exact WFOMC values (paper Table 1/2 family entries, closed forms, and
// exhaustively-verified small instances). Every case is replayed through
// Engine::WFOMC under each method the corpus declares applicable, and
// the grounded path additionally under num_threads ∈ {1, 4} — golden
// values are the cheapest way to catch a regression that breaks all
// engines the same way (which the differential suites, by construction,
// cannot see).
//
// The corpus location is compiled in (SWFOMC_GOLDEN_JSON, set by
// tests/CMakeLists.txt), so the binary runs from any directory. The JSON
// itself is read through io::ParseJson — the library's own reader, once
// a private copy in this file, now shared with the swfomc CLI.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/engine.h"
#include "io/json.h"
#include "numeric/rational.h"

namespace swfomc {
namespace {

using api::Engine;
using api::Method;
using io::JsonValue;
using numeric::BigRational;

// --- Corpus loading ------------------------------------------------------

struct GoldenCase {
  std::string name;
  std::string sentence;
  std::map<std::string, std::pair<BigRational, BigRational>> weights;
  std::uint64_t domain_size = 0;
  BigRational wfomc;
  std::vector<Method> methods;
};

Method MethodFromString(const std::string& text) {
  if (text == "lifted-fo2") return Method::kLiftedFO2;
  if (text == "gamma-acyclic") return Method::kGammaAcyclic;
  if (text == "grounded") return Method::kGrounded;
  throw std::runtime_error("golden json: unknown method '" + text + "'");
}

const std::vector<GoldenCase>& Corpus() {
  static const std::vector<GoldenCase> corpus = [] {
    std::ifstream in(SWFOMC_GOLDEN_JSON);
    if (!in) {
      throw std::runtime_error("golden json: cannot open " +
                               std::string(SWFOMC_GOLDEN_JSON));
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    JsonValue root = io::ParseJson(buffer.str(), SWFOMC_GOLDEN_JSON);
    std::vector<GoldenCase> cases;
    for (const JsonValue& entry : root.At("cases").array) {
      GoldenCase golden;
      golden.name = entry.At("name").string;
      golden.sentence = entry.At("sentence").string;
      golden.domain_size = std::stoull(entry.At("domain_size").string);
      golden.wfomc = BigRational::FromString(entry.At("wfomc").string);
      for (const auto& [relation, pair] : entry.At("weights").object) {
        golden.weights[relation] = {
            BigRational::FromString(pair.array.at(0).string),
            BigRational::FromString(pair.array.at(1).string)};
      }
      for (const JsonValue& method : entry.At("methods").array) {
        golden.methods.push_back(MethodFromString(method.string));
      }
      cases.push_back(std::move(golden));
    }
    return cases;
  }();
  return corpus;
}

class GoldenCorpus : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GoldenCorpus, ReplaysUnderEveryApplicableMethodAndThreadCount) {
  const GoldenCase& golden = Corpus()[GetParam()];
  SCOPED_TRACE(golden.name);
  for (Method method : golden.methods) {
    SCOPED_TRACE(api::ToString(method));
    // The grounded engine additionally runs parallel; the lifted and
    // γ-acyclic evaluators ignore num_threads, so one pass suffices.
    std::vector<unsigned> thread_counts =
        method == Method::kGrounded ? std::vector<unsigned>{1, 4}
                                    : std::vector<unsigned>{1};
    for (unsigned threads : thread_counts) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      Engine engine(logic::Vocabulary{}, Engine::Options{threads});
      logic::Formula sentence = engine.Parse(golden.sentence);
      for (const auto& [relation, weights] : golden.weights) {
        engine.mutable_vocabulary()->SetWeights(
            engine.vocabulary().Require(relation), weights.first,
            weights.second);
      }
      Engine::Result result =
          engine.WFOMC(sentence, golden.domain_size, method);
      EXPECT_EQ(result.value, golden.wfomc);
      EXPECT_EQ(result.method, method);
    }
  }
}

TEST_P(GoldenCorpus, SweepEndpointCoversGoldenPoint) {
  // WFOMCSweep(n_lo = 1, n_hi = golden n) must reproduce the golden value
  // at its endpoint on the first declared method — exercising the batched
  // path against the same pinned numbers.
  const GoldenCase& golden = Corpus()[GetParam()];
  SCOPED_TRACE(golden.name);
  if (golden.domain_size == 0) return;
  Method method = golden.methods.front();
  Engine engine((logic::Vocabulary()));
  logic::Formula sentence = engine.Parse(golden.sentence);
  for (const auto& [relation, weights] : golden.weights) {
    engine.mutable_vocabulary()->SetWeights(
        engine.vocabulary().Require(relation), weights.first, weights.second);
  }
  Engine::SweepResult sweep =
      engine.WFOMCSweep(sentence, 1, golden.domain_size, method);
  ASSERT_EQ(sweep.points.size(), golden.domain_size);
  EXPECT_EQ(sweep.points.back().domain_size, golden.domain_size);
  EXPECT_EQ(sweep.points.back().value, golden.wfomc);
}

std::string CaseName(const ::testing::TestParamInfo<std::size_t>& info) {
  std::string name = Corpus()[info.param].name;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenCorpus,
                         ::testing::Range<std::size_t>(0, Corpus().size()),
                         CaseName);

}  // namespace
}  // namespace swfomc
