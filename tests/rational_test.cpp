#include "numeric/rational.h"

#include <random>
#include <sstream>

#include <gtest/gtest.h>

namespace swfomc::numeric {
namespace {

TEST(BigRationalTest, DefaultIsZero) {
  BigRational z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.ToString(), "0");
  EXPECT_TRUE(z.IsInteger());
}

TEST(BigRationalTest, ReductionToLowestTerms) {
  EXPECT_EQ(BigRational::Fraction(6, 4).ToString(), "3/2");
  EXPECT_EQ(BigRational::Fraction(-6, 4).ToString(), "-3/2");
  EXPECT_EQ(BigRational::Fraction(6, -4).ToString(), "-3/2");
  EXPECT_EQ(BigRational::Fraction(-6, -4).ToString(), "3/2");
  EXPECT_EQ(BigRational::Fraction(0, 17).ToString(), "0");
  EXPECT_EQ(BigRational::Fraction(10, 5).ToString(), "2");
}

TEST(BigRationalTest, DenominatorAlwaysPositive) {
  BigRational r = BigRational::Fraction(3, -7);
  EXPECT_EQ(r.denominator(), BigInt(7));
  EXPECT_EQ(r.numerator(), BigInt(-3));
}

TEST(BigRationalTest, ZeroDenominatorThrows) {
  EXPECT_THROW(BigRational::Fraction(1, 0), std::domain_error);
}

TEST(BigRationalTest, FromString) {
  EXPECT_EQ(BigRational::FromString("22/7").ToString(), "22/7");
  EXPECT_EQ(BigRational::FromString("-1/2").ToString(), "-1/2");
  EXPECT_EQ(BigRational::FromString("42").ToString(), "42");
  EXPECT_EQ(BigRational::FromString("4/8").ToString(), "1/2");
}

TEST(BigRationalTest, Arithmetic) {
  BigRational half = BigRational::Fraction(1, 2);
  BigRational third = BigRational::Fraction(1, 3);
  EXPECT_EQ((half + third).ToString(), "5/6");
  EXPECT_EQ((half - third).ToString(), "1/6");
  EXPECT_EQ((half * third).ToString(), "1/6");
  EXPECT_EQ((half / third).ToString(), "3/2");
  EXPECT_EQ((-half).ToString(), "-1/2");
}

TEST(BigRationalTest, NegativeWeightArithmetic) {
  // The Skolemization weight -1 and MLN weights 1/(w-1) < 0 must combine
  // exactly (cancellations drive Lemma 3.3).
  BigRational minus_one(-1);
  BigRational one(1);
  EXPECT_TRUE((one + minus_one).IsZero());
  EXPECT_EQ((minus_one * minus_one), one);
  BigRational w = BigRational::Fraction(1, 2);  // MLN weight 3 -> 1/(3-1)
  EXPECT_EQ((w / (one + w)).ToString(), "1/3");
}

TEST(BigRationalTest, DivisionByZeroThrows) {
  BigRational x(3);
  EXPECT_THROW(x /= BigRational(0), std::domain_error);
  EXPECT_THROW(BigRational(0).Inverse(), std::domain_error);
}

TEST(BigRationalTest, PowPositiveAndNegativeExponents) {
  BigRational two_thirds = BigRational::Fraction(2, 3);
  EXPECT_EQ(BigRational::Pow(two_thirds, 3).ToString(), "8/27");
  EXPECT_EQ(BigRational::Pow(two_thirds, 0).ToString(), "1");
  EXPECT_EQ(BigRational::Pow(two_thirds, -2).ToString(), "9/4");
  EXPECT_EQ(BigRational::Pow(BigRational(-2), 3).ToString(), "-8");
}

TEST(BigRationalTest, Comparisons) {
  BigRational a = BigRational::Fraction(1, 3);
  BigRational b = BigRational::Fraction(1, 2);
  BigRational c = BigRational::Fraction(-5, 2);
  EXPECT_LT(a, b);
  EXPECT_LT(c, a);
  EXPECT_GT(b, c);
  EXPECT_EQ(a, BigRational::Fraction(2, 6));
  EXPECT_LE(a, a);
  EXPECT_GE(b, a);
}

TEST(BigRationalTest, ToIntegerOnlyWhenIntegral) {
  EXPECT_EQ(BigRational::Fraction(8, 2).ToInteger(), BigInt(4));
  EXPECT_THROW(BigRational::Fraction(1, 2).ToInteger(), std::domain_error);
}

TEST(BigRationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(BigRational::Fraction(1, 2).ToDouble(), 0.5);
  EXPECT_DOUBLE_EQ(BigRational::Fraction(-3, 4).ToDouble(), -0.75);
  // Huge numerator and denominator of similar size still resolve.
  BigRational huge(BigInt::Pow(BigInt(3), 800), BigInt::Pow(BigInt(3), 799));
  EXPECT_NEAR(huge.ToDouble(), 3.0, 1e-9);
}

TEST(BigRationalTest, RandomizedFieldAxioms) {
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<std::int64_t> dist(-50, 50);
  for (int i = 0; i < 500; ++i) {
    std::int64_t an = dist(rng), ad = dist(rng);
    std::int64_t bn = dist(rng), bd = dist(rng);
    std::int64_t cn = dist(rng), cd = dist(rng);
    if (ad == 0 || bd == 0 || cd == 0) continue;
    BigRational a = BigRational::Fraction(an, ad);
    BigRational b = BigRational::Fraction(bn, bd);
    BigRational c = BigRational::Fraction(cn, cd);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, BigRational(0));
    if (!a.IsZero()) {
      EXPECT_EQ(a * a.Inverse(), BigRational(1));
    }
  }
}

TEST(BigRationalTest, StreamOutput) {
  std::ostringstream os;
  os << BigRational::Fraction(-7, 3);
  EXPECT_EQ(os.str(), "-7/3");
}

TEST(BigRationalTest, SignAndAbs) {
  EXPECT_EQ(BigRational::Fraction(-1, 2).Sign(), -1);
  EXPECT_EQ(BigRational(0).Sign(), 0);
  EXPECT_EQ(BigRational(3).Sign(), 1);
  EXPECT_EQ(BigRational::Fraction(-1, 2).Abs().ToString(), "1/2");
}

// Every value observable through the public surface must be canonical:
// positive denominator, gcd(num, den) == 1, zero spelled 0/1. The fast
// paths in +=, -=, *= and /= skip the gcd reduction on number-theoretic
// grounds, so this is the invariant they must be measured against.
void ExpectCanonical(const BigRational& value) {
  EXPECT_GT(value.denominator().Sign(), 0) << value;
  EXPECT_EQ(BigInt::Gcd(value.numerator(), value.denominator()), BigInt(1))
      << value;
  if (value.numerator().IsZero()) {
    EXPECT_EQ(value.denominator(), BigInt(1)) << value;
  }
}

TEST(BigRationalTest, EveryMutationPathStaysCanonical) {
  // Pairs chosen to hit each fast path: integer ± integer, integer ±
  // fraction, fraction ± integer, fraction ± fraction with shared
  // factors, multiply with cross-cancellation, and zero products.
  const BigRational values[] = {
      BigRational(0),        BigRational(1),
      BigRational(-3),       BigRational(42),
      BigRational::Fraction(3, 2),   BigRational::Fraction(-3, 2),
      BigRational::Fraction(7, 6),   BigRational::Fraction(-5, 6),
      BigRational::Fraction(1, 42),  BigRational::Fraction(6, 35),
  };
  for (const BigRational& a : values) {
    for (const BigRational& b : values) {
      BigRational sum = a;
      sum += b;
      ExpectCanonical(sum);
      BigRational difference = a;
      difference -= b;
      ExpectCanonical(difference);
      BigRational product = a;
      product *= b;
      ExpectCanonical(product);
      if (!b.IsZero()) {
        BigRational quotient = a;
        quotient /= b;
        ExpectCanonical(quotient);
        // quotient * b must reconstruct a exactly (field inverse).
        EXPECT_EQ(quotient * b, a);
      }
    }
  }
}

TEST(BigRationalTest, MultiplyByZeroNormalizesDenominator) {
  // (3/2) * 0 must be 0/1, not 0/2 — the cross-cancel multiply needs an
  // explicit zero fixup.
  BigRational r = BigRational::Fraction(3, 2);
  r *= BigRational(0);
  EXPECT_TRUE(r.IsZero());
  EXPECT_EQ(r.denominator(), BigInt(1));
  ExpectCanonical(r);
}

TEST(BigRationalTest, DivisionSelfAliasing) {
  // x /= x must yield exactly 1 (a copy of other's numerator is needed
  // because `other` may alias *this).
  BigRational r = BigRational::Fraction(-21, 10);
  r /= r;
  EXPECT_EQ(r, BigRational(1));
  ExpectCanonical(r);
  BigRational s = BigRational::Fraction(5, 3);
  s *= s;
  EXPECT_EQ(s, BigRational::Fraction(25, 9));
  s -= s;
  EXPECT_TRUE(s.IsZero());
  ExpectCanonical(s);
}

TEST(RationalAccumulatorTest, MatchesEagerArithmetic) {
  // The gcd-deferred accumulator must canonicalize to exactly the value
  // the eager operators produce, across mixed products and sums.
  std::mt19937_64 rng(20260808);
  for (int trial = 0; trial < 50; ++trial) {
    RationalAccumulator accumulated;
    accumulated.SetOne();
    BigRational eager(1);
    for (int step = 0; step < 12; ++step) {
      std::int64_t num =
          static_cast<std::int64_t>(rng() % 41) - 20;
      std::int64_t den = 1 + static_cast<std::int64_t>(rng() % 19);
      BigRational term = BigRational::Fraction(num, den);
      if (rng() % 2 == 0) {
        accumulated.Multiply(term);
        eager *= term;
      } else {
        accumulated.Add(term);
        eager += term;
      }
    }
    BigRational canonical = accumulated.Canonical();
    EXPECT_EQ(canonical, eager);
    ExpectCanonical(canonical);
  }
}

TEST(RationalAccumulatorTest, SetZeroCheckAndNestedAdd) {
  RationalAccumulator outer;
  outer.SetOne();
  EXPECT_FALSE(outer.IsZero());
  outer.Multiply(BigRational(0));
  EXPECT_TRUE(outer.IsZero());
  EXPECT_EQ(outer.Canonical(), BigRational(0));

  // Accumulator-into-accumulator addition (the counter's branch sum).
  RationalAccumulator left;
  left.Set(BigRational::Fraction(2, 6));  // unreduced entry is fine
  RationalAccumulator right;
  right.Set(BigRational::Fraction(1, 2));
  right.Multiply(BigRational::Fraction(2, 3));  // 2/6, deferred
  left.Add(right);
  EXPECT_EQ(left.Canonical(), BigRational::Fraction(2, 3));
  ExpectCanonical(left.Canonical());
}

}  // namespace
}  // namespace swfomc::numeric
