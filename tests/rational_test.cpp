#include "numeric/rational.h"

#include <random>
#include <sstream>

#include <gtest/gtest.h>

namespace swfomc::numeric {
namespace {

TEST(BigRationalTest, DefaultIsZero) {
  BigRational z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.ToString(), "0");
  EXPECT_TRUE(z.IsInteger());
}

TEST(BigRationalTest, ReductionToLowestTerms) {
  EXPECT_EQ(BigRational::Fraction(6, 4).ToString(), "3/2");
  EXPECT_EQ(BigRational::Fraction(-6, 4).ToString(), "-3/2");
  EXPECT_EQ(BigRational::Fraction(6, -4).ToString(), "-3/2");
  EXPECT_EQ(BigRational::Fraction(-6, -4).ToString(), "3/2");
  EXPECT_EQ(BigRational::Fraction(0, 17).ToString(), "0");
  EXPECT_EQ(BigRational::Fraction(10, 5).ToString(), "2");
}

TEST(BigRationalTest, DenominatorAlwaysPositive) {
  BigRational r = BigRational::Fraction(3, -7);
  EXPECT_EQ(r.denominator(), BigInt(7));
  EXPECT_EQ(r.numerator(), BigInt(-3));
}

TEST(BigRationalTest, ZeroDenominatorThrows) {
  EXPECT_THROW(BigRational::Fraction(1, 0), std::domain_error);
}

TEST(BigRationalTest, FromString) {
  EXPECT_EQ(BigRational::FromString("22/7").ToString(), "22/7");
  EXPECT_EQ(BigRational::FromString("-1/2").ToString(), "-1/2");
  EXPECT_EQ(BigRational::FromString("42").ToString(), "42");
  EXPECT_EQ(BigRational::FromString("4/8").ToString(), "1/2");
}

TEST(BigRationalTest, Arithmetic) {
  BigRational half = BigRational::Fraction(1, 2);
  BigRational third = BigRational::Fraction(1, 3);
  EXPECT_EQ((half + third).ToString(), "5/6");
  EXPECT_EQ((half - third).ToString(), "1/6");
  EXPECT_EQ((half * third).ToString(), "1/6");
  EXPECT_EQ((half / third).ToString(), "3/2");
  EXPECT_EQ((-half).ToString(), "-1/2");
}

TEST(BigRationalTest, NegativeWeightArithmetic) {
  // The Skolemization weight -1 and MLN weights 1/(w-1) < 0 must combine
  // exactly (cancellations drive Lemma 3.3).
  BigRational minus_one(-1);
  BigRational one(1);
  EXPECT_TRUE((one + minus_one).IsZero());
  EXPECT_EQ((minus_one * minus_one), one);
  BigRational w = BigRational::Fraction(1, 2);  // MLN weight 3 -> 1/(3-1)
  EXPECT_EQ((w / (one + w)).ToString(), "1/3");
}

TEST(BigRationalTest, DivisionByZeroThrows) {
  BigRational x(3);
  EXPECT_THROW(x /= BigRational(0), std::domain_error);
  EXPECT_THROW(BigRational(0).Inverse(), std::domain_error);
}

TEST(BigRationalTest, PowPositiveAndNegativeExponents) {
  BigRational two_thirds = BigRational::Fraction(2, 3);
  EXPECT_EQ(BigRational::Pow(two_thirds, 3).ToString(), "8/27");
  EXPECT_EQ(BigRational::Pow(two_thirds, 0).ToString(), "1");
  EXPECT_EQ(BigRational::Pow(two_thirds, -2).ToString(), "9/4");
  EXPECT_EQ(BigRational::Pow(BigRational(-2), 3).ToString(), "-8");
}

TEST(BigRationalTest, Comparisons) {
  BigRational a = BigRational::Fraction(1, 3);
  BigRational b = BigRational::Fraction(1, 2);
  BigRational c = BigRational::Fraction(-5, 2);
  EXPECT_LT(a, b);
  EXPECT_LT(c, a);
  EXPECT_GT(b, c);
  EXPECT_EQ(a, BigRational::Fraction(2, 6));
  EXPECT_LE(a, a);
  EXPECT_GE(b, a);
}

TEST(BigRationalTest, ToIntegerOnlyWhenIntegral) {
  EXPECT_EQ(BigRational::Fraction(8, 2).ToInteger(), BigInt(4));
  EXPECT_THROW(BigRational::Fraction(1, 2).ToInteger(), std::domain_error);
}

TEST(BigRationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(BigRational::Fraction(1, 2).ToDouble(), 0.5);
  EXPECT_DOUBLE_EQ(BigRational::Fraction(-3, 4).ToDouble(), -0.75);
  // Huge numerator and denominator of similar size still resolve.
  BigRational huge(BigInt::Pow(BigInt(3), 800), BigInt::Pow(BigInt(3), 799));
  EXPECT_NEAR(huge.ToDouble(), 3.0, 1e-9);
}

TEST(BigRationalTest, RandomizedFieldAxioms) {
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<std::int64_t> dist(-50, 50);
  for (int i = 0; i < 500; ++i) {
    std::int64_t an = dist(rng), ad = dist(rng);
    std::int64_t bn = dist(rng), bd = dist(rng);
    std::int64_t cn = dist(rng), cd = dist(rng);
    if (ad == 0 || bd == 0 || cd == 0) continue;
    BigRational a = BigRational::Fraction(an, ad);
    BigRational b = BigRational::Fraction(bn, bd);
    BigRational c = BigRational::Fraction(cn, cd);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, BigRational(0));
    if (!a.IsZero()) {
      EXPECT_EQ(a * a.Inverse(), BigRational(1));
    }
  }
}

TEST(BigRationalTest, StreamOutput) {
  std::ostringstream os;
  os << BigRational::Fraction(-7, 3);
  EXPECT_EQ(os.str(), "-7/3");
}

TEST(BigRationalTest, SignAndAbs) {
  EXPECT_EQ(BigRational::Fraction(-1, 2).Sign(), -1);
  EXPECT_EQ(BigRational(0).Sign(), 0);
  EXPECT_EQ(BigRational(3).Sign(), 1);
  EXPECT_EQ(BigRational::Fraction(-1, 2).Abs().ToString(), "1/2");
}

}  // namespace
}  // namespace swfomc::numeric
