// The observability subsystem's own contract: histogram bucket
// geometry, shard aggregation, scrape-while-incrementing monotonicity
// (the property the lock-free design exists for — run under TSan in
// CI), registry registration rules, the text exposition grammar, and
// the JSONL trace format.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace swfomc::obs {
namespace {

TEST(HistogramTest, BucketBoundaries) {
  // Bucket b holds samples <= 2^b: 0 and 1 land in bucket 0, each exact
  // power of two lands on its own boundary, and value 2^b + 1 spills
  // into the next bucket.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(Histogram::BucketIndex(5), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 3u);
  EXPECT_EQ(Histogram::BucketIndex(9), 4u);
  for (std::size_t b = 0; b + 1 < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketBound(b)), b)
        << "bound of bucket " << b;
  }
  // Values past the last finite bound saturate into the +Inf bucket.
  EXPECT_EQ(Histogram::BucketIndex(~std::uint64_t{0}),
            Histogram::kBuckets - 1);
}

TEST(HistogramTest, SnapshotSumsAndQuantiles) {
  Histogram histogram;
  for (std::uint64_t v = 1; v <= 100; ++v) histogram.Record(v);
  Histogram::Snapshot snapshot = histogram.Take();
  EXPECT_EQ(snapshot.count, 100u);
  EXPECT_EQ(snapshot.sum, 5050u);
  // Log buckets bound the quantile with 2x relative error.
  double p50 = snapshot.Quantile(0.5);
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 100.0);
  double p99 = snapshot.Quantile(0.99);
  EXPECT_GE(p99, 64.0);
  EXPECT_LE(p99, 128.0);
  EXPECT_LE(snapshot.Quantile(0.5), snapshot.Quantile(0.99));
  EXPECT_EQ(Histogram().Take().count, 0u);
  EXPECT_EQ(Histogram().Take().Quantile(0.5), 0.0);
}

TEST(CounterTest, AggregatesAcrossThreads) {
  // Each thread lands on its own shard slot; Value() must see the union.
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(CounterTest, ScrapeWhileIncrementingIsMonotone) {
  // The lock-free claim: scraping during a write storm returns values
  // that only ever grow, and the final value is exact. 4 writers + this
  // thread scraping — the TSan CI job runs this suite specifically to
  // vet these unlocked accesses.
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("swfomc_test_storm_total");
  Histogram* histogram = registry.GetHistogram("swfomc_test_storm_usec");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;
  std::atomic<int> running{kThreads};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter->Add();
        histogram->Record(i & 1023);
      }
      running.fetch_sub(1);
    });
  }
  std::uint64_t last_counter = 0;
  std::uint64_t last_count = 0;
  while (running.load() > 0) {
    std::uint64_t now = counter->Value();
    EXPECT_GE(now, last_counter);
    last_counter = now;
    Histogram::Snapshot snapshot = histogram->Take();
    EXPECT_GE(snapshot.count, last_count);
    last_count = snapshot.count;
    // The exposition itself must also be safe to build mid-storm.
    registry.TextExposition();
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_EQ(histogram->Take().count, kThreads * kPerThread);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentAndKindChecked) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("swfomc_test_total", "help once");
  Counter* b = registry.GetCounter("swfomc_test_total", "ignored rebind");
  EXPECT_EQ(a, b);
  EXPECT_THROW(registry.GetGauge("swfomc_test_total"), std::invalid_argument);
  EXPECT_THROW(registry.GetHistogram("swfomc_test_total"),
               std::invalid_argument);
  EXPECT_THROW(registry.GetCounter("0starts_with_digit"),
               std::invalid_argument);
  EXPECT_THROW(registry.GetCounter("has space"), std::invalid_argument);
  EXPECT_THROW(registry.GetCounter(""), std::invalid_argument);
}

TEST(MetricsRegistryTest, TextExpositionGrammar) {
  MetricsRegistry registry;
  registry.GetCounter("swfomc_test_requests_total", "Requests")->Add(3);
  registry.GetGauge("swfomc_test_depth", "Depth")->Set(-2);
  Histogram* histogram =
      registry.GetHistogram("swfomc_test_usec", "Latency");
  histogram->Record(1);
  histogram->Record(3);
  histogram->Record(3);
  std::string text = registry.TextExposition();

  EXPECT_NE(text.find("# HELP swfomc_test_requests_total Requests\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE swfomc_test_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("swfomc_test_requests_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("swfomc_test_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE swfomc_test_usec histogram\n"),
            std::string::npos);
  // Cumulative buckets: le="1" sees the 1, le="4" sees all three, and
  // the +Inf bucket equals the count.
  EXPECT_NE(text.find("swfomc_test_usec_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("swfomc_test_usec_bucket{le=\"4\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("swfomc_test_usec_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("swfomc_test_usec_sum 7\n"), std::string::npos);
  EXPECT_NE(text.find("swfomc_test_usec_count 3\n"), std::string::npos);
  // Quantiles ride as sibling gauges (not summary-style labels).
  EXPECT_NE(text.find("# TYPE swfomc_test_usec_p50 gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("swfomc_test_usec_p50 "), std::string::npos);
  EXPECT_NE(text.find("swfomc_test_usec_p99 "), std::string::npos);

  // Every non-comment line is `name[{le="..."}] value` with a finite,
  // parseable value — the contract serve_e2e.sh's scraper re-checks
  // end to end.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty()) << line;
    EXPECT_NO_THROW(std::stod(value)) << line;
  }
}

TEST(TraceLogTest, EmitsParseableJsonl) {
  std::ostringstream out;
  TraceLog log(&out);
  log.Event("hello").Str("who", "world \"quoted\"\n").Num("n",
                                                          std::uint64_t{7});
  {
    TraceLog::Span span = log.BeginSpan("work");
    span.Bool("ok", true);
  }
  std::istringstream lines(out.str());
  std::string line;
  std::vector<io::JsonValue> records;
  while (std::getline(lines, line)) {
    records.push_back(io::ParseJson(line, "<trace>"));
  }
  ASSERT_EQ(records.size(), 2u);

  auto field = [](const io::JsonValue& object, const std::string& key)
      -> const io::JsonValue* {
    for (const auto& [name, value] : object.object) {
      if (name == key) return &value;
    }
    return nullptr;
  };
  ASSERT_NE(field(records[0], "ts_us"), nullptr);
  EXPECT_EQ(field(records[0], "type")->string, "event");
  EXPECT_EQ(field(records[0], "name")->string, "hello");
  EXPECT_EQ(field(records[0], "who")->string, "world \"quoted\"\n");
  EXPECT_EQ(field(records[0], "n")->string, "7");
  EXPECT_EQ(field(records[1], "type")->string, "span");
  EXPECT_EQ(field(records[1], "name")->string, "work");
  ASSERT_NE(field(records[1], "dur_us"), nullptr);
  EXPECT_EQ(field(records[1], "ok")->kind, io::JsonValue::Kind::kBool);
}

TEST(TraceLogTest, SamplingDropsWholeQueries) {
  TraceLog log(nullptr, /*sample_every=*/3);
  EXPECT_TRUE(log.SampledQuery(0));
  EXPECT_FALSE(log.SampledQuery(1));
  EXPECT_FALSE(log.SampledQuery(2));
  EXPECT_TRUE(log.SampledQuery(3));
  // Ids are monotone so sampling is deterministic per query.
  EXPECT_EQ(log.NextQueryId(), 0u);
  EXPECT_EQ(log.NextQueryId(), 1u);
}

TEST(TraceLogTest, NullSpanIsInert) {
  // The disabled path: spans and records on a moved-from handle write
  // nothing and must not crash.
  std::ostringstream out;
  TraceLog log(&out);
  TraceLog::Span span;  // default: no log
  span.Str("k", "v").Num("n", 1u);
  span.Finish();
  TraceLog::Span live = log.BeginSpan("a");
  TraceLog::Span stolen = std::move(live);
  live.Finish();  // moved-from: inert
  stolen.Finish();
  std::string text = out.str();
  EXPECT_EQ(text.find("\"name\":\"a\""), text.rfind("\"name\":\"a\""));
}

}  // namespace
}  // namespace swfomc::obs
