// Theorem 4.1: the #SAT -> FO² FOMC reduction (Figure 2 gadget) and the
// spectrum decision procedure.

#include "reductions/sharp_sat.h"

#include <random>

#include <gtest/gtest.h>

#include "logic/parser.h"
#include "reductions/spectrum.h"
#include "test_util.h"
#include "wmc/brute_force.h"

namespace swfomc::reductions {
namespace {

using numeric::BigInt;
using prop::PropAnd;
using prop::PropNot;
using prop::PropOr;
using prop::PropVar;

TEST(SharpSatReductionTest, SentenceIsFO2) {
  prop::PropFormula f = PropOr(PropVar(0), PropVar(1));
  SharpSatReduction reduction = EncodeSharpSat(f, 2);
  EXPECT_TRUE(logic::IsSentence(reduction.sentence));
  EXPECT_TRUE(logic::InFragmentFOk(reduction.sentence, 2));
  EXPECT_EQ(reduction.domain_size, 3u);
}

TEST(SharpSatReductionTest, RejectsDegenerateInputs) {
  EXPECT_THROW(EncodeSharpSat(PropVar(0), 1), std::invalid_argument);
  EXPECT_THROW(EncodeSharpSat(PropVar(5), 2), std::invalid_argument);
}

TEST(SharpSatReductionTest, CountsOrOfTwo) {
  // #(X1 | X2) = 3.
  prop::PropFormula f = PropOr(PropVar(0), PropVar(1));
  EXPECT_EQ(SharpSatViaFOMC(f, 2), BigInt(3));
}

TEST(SharpSatReductionTest, CountsConjunction) {
  // #(X1 & !X2) = 1.
  prop::PropFormula f = PropAnd(PropVar(0), PropNot(PropVar(1)));
  EXPECT_EQ(SharpSatViaFOMC(f, 2), BigInt(1));
}

TEST(SharpSatReductionTest, CountsTautologyAndContradiction) {
  prop::PropFormula tautology = PropOr(PropVar(0), PropNot(PropVar(0)));
  EXPECT_EQ(SharpSatViaFOMC(tautology, 2), BigInt(4));
  prop::PropFormula contradiction = PropAnd(PropVar(0), PropNot(PropVar(0)));
  EXPECT_EQ(SharpSatViaFOMC(contradiction, 2), BigInt(0));
}

TEST(SharpSatReductionTest, MatchesBruteForceOnRandomFormulas) {
  std::mt19937_64 rng(61);
  for (int trial = 0; trial < 5; ++trial) {
    prop::PropFormula f = testutil::RandomPropFormula(&rng, 2, 3);
    BigInt expected = wmc::BruteForceCount(f, 3);
    EXPECT_EQ(SharpSatViaFOMC(f, 3), expected) << prop::PropToString(f);
  }
}

TEST(SpectrumTest, EveryCqHasAllSizes) {
  // Section 3.1: every conjunctive query has a model over any n >= 1.
  logic::Vocabulary vocab;
  logic::Formula cq = logic::Parse("exists x exists y (R(x,y) & S(x))",
                                   &vocab);
  EXPECT_EQ(SpectrumMembers(cq, vocab, 1, 4),
            (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(SpectrumTest, EvenCardinalitySpectrum) {
  // Φ forcing |domain| even: M is a fixed-point-free involution that is
  // functional — a perfect matching, so Spec(Φ) = even numbers.
  logic::Vocabulary vocab2;
  logic::Formula matching = logic::Parse(
      "(forall x exists y (M(x,y) & x != y))"
      " & (forall x forall y (M(x,y) => M(y,x)))"
      " & (forall x forall y forall z ((M(x,y) & M(x,z)) => y = z))",
      &vocab2);
  std::vector<std::uint64_t> members =
      SpectrumMembers(matching, vocab2, 1, 4);
  EXPECT_EQ(members, (std::vector<std::uint64_t>{2, 4}));
}

TEST(SpectrumTest, UnsatisfiableSentenceHasEmptySpectrum) {
  logic::Vocabulary vocab;
  logic::Formula f =
      logic::Parse("(forall x U(x)) & (exists x !U(x))", &vocab);
  EXPECT_TRUE(SpectrumMembers(f, vocab, 1, 3).empty());
}

TEST(SpectrumTest, AtLeastThreeElements) {
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse(
      "exists x exists y exists z (x != y & y != z & x != z)", &vocab);
  EXPECT_EQ(SpectrumMembers(f, vocab, 1, 5),
            (std::vector<std::uint64_t>{3, 4, 5}));
}

}  // namespace
}  // namespace swfomc::reductions
