#include "numeric/polynomial.h"

#include <random>

#include <gtest/gtest.h>

#include "numeric/combinatorics.h"

namespace swfomc::numeric {
namespace {

Polynomial FromInts(std::initializer_list<std::int64_t> coefficients) {
  std::vector<BigRational> c;
  for (std::int64_t v : coefficients) c.emplace_back(v);
  return Polynomial(std::move(c));
}

TEST(PolynomialTest, ZeroPolynomial) {
  Polynomial z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.Degree(), 0u);
  EXPECT_EQ(z.Evaluate(BigRational(5)), BigRational(0));
  EXPECT_EQ(z.ToString(), "0");
}

TEST(PolynomialTest, TrailingZerosTrimmed) {
  Polynomial p = FromInts({1, 2, 0, 0});
  EXPECT_EQ(p.Degree(), 1u);
  EXPECT_EQ(p, FromInts({1, 2}));
}

TEST(PolynomialTest, EvaluateHorner) {
  // 3x^2 - x + 7 at x = 2 -> 17.
  Polynomial p = FromInts({7, -1, 3});
  EXPECT_EQ(p.Evaluate(BigRational(2)), BigRational(17));
  EXPECT_EQ(p.Evaluate(BigRational::Fraction(1, 2)),
            BigRational::Fraction(29, 4));
}

TEST(PolynomialTest, Addition) {
  EXPECT_EQ(FromInts({1, 2}) + FromInts({0, 0, 5}), FromInts({1, 2, 5}));
  // Cancellation of the leading term trims degree.
  EXPECT_EQ(FromInts({1, 0, 3}) + FromInts({0, 0, -3}), FromInts({1}));
}

TEST(PolynomialTest, Multiplication) {
  // (x + 1)(x - 1) = x^2 - 1.
  EXPECT_EQ(FromInts({1, 1}) * FromInts({-1, 1}), FromInts({-1, 0, 1}));
  EXPECT_EQ(FromInts({2}) * FromInts({0, 0, 3}), FromInts({0, 0, 6}));
  EXPECT_TRUE((Polynomial() * FromInts({1, 2, 3})).IsZero());
}

TEST(PolynomialTest, MonomialAndConstant) {
  EXPECT_EQ(Polynomial::Monomial(BigRational(4), 3).ToString("z"), "4*z^3");
  EXPECT_EQ(Polynomial::Constant(BigRational(-2)).ToString(), "-2");
}

TEST(PolynomialTest, ToStringRendering) {
  EXPECT_EQ(FromInts({7, -1, 3}).ToString(), "3*x^2 - x + 7");
  EXPECT_EQ(FromInts({0, 1}).ToString(), "x");
  EXPECT_EQ(FromInts({0, -1}).ToString(), "-x");
}

TEST(PolynomialTest, InterpolateRecoversPolynomial) {
  std::mt19937_64 rng(21);
  std::uniform_int_distribution<std::int64_t> dist(-9, 9);
  for (int trial = 0; trial < 50; ++trial) {
    std::size_t degree = rng() % 6;
    std::vector<BigRational> coefficients;
    for (std::size_t i = 0; i <= degree; ++i) {
      coefficients.emplace_back(dist(rng));
    }
    Polynomial p(coefficients);
    std::vector<std::pair<BigRational, BigRational>> points;
    for (std::size_t x = 0; x <= degree; ++x) {
      BigRational bx(static_cast<std::int64_t>(x));
      points.emplace_back(bx, p.Evaluate(bx));
    }
    Polynomial q = Polynomial::Interpolate(points);
    EXPECT_EQ(p, q);
  }
}

TEST(PolynomialTest, InterpolateRationalPoints) {
  // Through (0,1), (1,1/2), (2,1/3) -- a genuine rational-coefficient fit.
  std::vector<std::pair<BigRational, BigRational>> points = {
      {BigRational(0), BigRational(1)},
      {BigRational(1), BigRational::Fraction(1, 2)},
      {BigRational(2), BigRational::Fraction(1, 3)}};
  Polynomial p = Polynomial::Interpolate(points);
  for (const auto& [x, y] : points) {
    EXPECT_EQ(p.Evaluate(x), y);
  }
}

TEST(PolynomialTest, InterpolateDuplicateXThrows) {
  std::vector<std::pair<BigRational, BigRational>> points = {
      {BigRational(1), BigRational(1)}, {BigRational(1), BigRational(2)}};
  EXPECT_THROW(Polynomial::Interpolate(points), std::invalid_argument);
}

TEST(PolynomialTest, CoefficientBeyondDegreeIsZero) {
  Polynomial p = FromInts({1, 2});
  EXPECT_EQ(p.Coefficient(0), BigRational(1));
  EXPECT_EQ(p.Coefficient(1), BigRational(2));
  EXPECT_EQ(p.Coefficient(99), BigRational(0));
}

TEST(FiniteDifferenceTest, ExtractsLeadingCoefficientTimesFactorial) {
  // f(x) = 5x^3 - x + 2; Δ³f(0) with step 1 = 5 * 3!.
  Polynomial f = FromInts({2, -1, 0, 5});
  std::vector<BigRational> values;
  for (std::int64_t i = 0; i <= 3; ++i) {
    values.push_back(f.Evaluate(BigRational(i)));
  }
  EXPECT_EQ(FiniteDifferenceAtZero(values),
            BigRational(5) * BigRational(Factorial(3)));
}

TEST(FiniteDifferenceTest, KillsLowerDegreeTerms) {
  // Δ³ of a degree-2 polynomial vanishes.
  Polynomial f = FromInts({4, 3, 9});
  std::vector<BigRational> values;
  for (std::int64_t i = 0; i <= 3; ++i) {
    values.push_back(f.Evaluate(BigRational(i)));
  }
  EXPECT_TRUE(FiniteDifferenceAtZero(values).IsZero());
}

TEST(FiniteDifferenceTest, EmptyThrows) {
  EXPECT_THROW(FiniteDifferenceAtZero({}), std::invalid_argument);
}

}  // namespace
}  // namespace swfomc::numeric
