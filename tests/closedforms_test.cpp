// Closed forms from the paper, cross-checked against the engines.

#include "closedforms/closed_forms.h"

#include <gtest/gtest.h>

#include "fo2/cell_algorithm.h"
#include "grounding/grounded_wfomc.h"
#include "logic/parser.h"

namespace swfomc::closedforms {
namespace {

using numeric::BigInt;
using numeric::BigRational;

TEST(ClosedFormsTest, ForallExistsSmallValues) {
  // (2^1-1)^1 = 1, (2^2-1)^2 = 9, (2^3-1)^3 = 343.
  EXPECT_EQ(ForallExistsFOMC(1), BigInt(1));
  EXPECT_EQ(ForallExistsFOMC(2), BigInt(9));
  EXPECT_EQ(ForallExistsFOMC(3), BigInt(343));
}

TEST(ClosedFormsTest, ForallExistsWeightedReducesToUnweighted) {
  for (std::uint64_t n = 1; n <= 6; ++n) {
    EXPECT_EQ(ForallExistsWFOMC(n, 1, 1),
              BigRational(ForallExistsFOMC(n)))
        << n;
  }
}

TEST(ClosedFormsTest, ExistsForms) {
  EXPECT_EQ(ExistsFOMC(4), BigInt(15));
  // (7/2)^3 - (1/2)^3 = 342/8 = 171/4.
  EXPECT_EQ(ExistsWFOMC(3, BigRational(3), BigRational::Fraction(1, 2)),
            BigRational::Fraction(171, 4));
}

TEST(ClosedFormsTest, Table1AgreesWithLiftedEngine) {
  logic::Vocabulary vocab;
  logic::Formula f =
      logic::Parse("forall x forall y (R(x) | S(x,y) | T(y))", &vocab);
  for (std::uint64_t n = 1; n <= 7; ++n) {
    EXPECT_EQ(BigRational(Table1FOMC(n)),
              fo2::LiftedWFOMC(f, vocab, n))
        << n;
  }
}

TEST(ClosedFormsTest, Table1WeightedAgreesWithLiftedEngine) {
  logic::Vocabulary vocab;
  vocab.AddRelation("R", 1, BigRational(2), BigRational(1));
  vocab.AddRelation("S", 2, BigRational::Fraction(1, 2), BigRational(1));
  vocab.AddRelation("T", 1, BigRational(1), BigRational(3));
  logic::Formula f =
      logic::ParseStrict("forall x forall y (R(x) | S(x,y) | T(y))", vocab);
  for (std::uint64_t n = 1; n <= 5; ++n) {
    EXPECT_EQ(Table1WFOMC(n, BigRational(2), BigRational(1),
                          BigRational::Fraction(1, 2), BigRational(1),
                          BigRational(1), BigRational(3)),
              fo2::LiftedWFOMC(f, vocab, n))
        << n;
  }
}

TEST(ClosedFormsTest, ExistsConjComplementIdentity) {
  // Φ = ∃x∃y(R(x) & S(x,y) & T(y)) is the dual of Table 1's clause:
  // models(Φ) + models(¬Φ) = 2^{2n + n²} and ¬Φ ≡ ∀x∀y(!R|!S|!T) has the
  // same count as Table 1 by symmetry (complement R, S, T).
  logic::Vocabulary vocab;
  logic::Formula f = logic::Parse(
      "exists x exists y (R(x) & S(x,y) & T(y))", &vocab);
  for (std::uint64_t n = 1; n <= 3; ++n) {
    EXPECT_EQ(BigInt(grounding::GroundedFOMC(f, vocab, n)),
              ExistsConjFOMC(n))
        << n;
  }
}

TEST(ClosedFormsTest, WorldCount) {
  EXPECT_EQ(WorldCount(0), BigInt(1));
  EXPECT_EQ(WorldCount(10), BigInt(1024));
}

}  // namespace
}  // namespace swfomc::closedforms
