// The Engine facade: routing, cross-method agreement, probability and
// 0-1-law helpers.

#include "api/engine.h"

#include <gtest/gtest.h>

#include "closedforms/closed_forms.h"

namespace swfomc::api {
namespace {

using numeric::BigInt;
using numeric::BigRational;

TEST(EngineTest, RoutesFO2ToLifted) {
  Engine engine{logic::Vocabulary{}};
  logic::Formula f = engine.Parse("forall x exists y R(x,y)");
  EXPECT_EQ(engine.Route(f), Method::kLiftedFO2);
}

TEST(EngineTest, RoutesGammaAcyclicCQ) {
  Engine engine{logic::Vocabulary{}};
  logic::Formula f =
      engine.Parse("exists x exists y exists z (R(x,y) & S(y,z))");
  EXPECT_EQ(engine.Route(f), Method::kGammaAcyclic);
}

TEST(EngineTest, RoutesTypedCycleToGrounded) {
  Engine engine{logic::Vocabulary{}};
  // C3 is a CQ but cyclic, and uses 3 variables: grounded.
  logic::Formula f = engine.Parse(
      "exists x exists y exists z (R1(x,y) & R2(y,z) & R3(z,x))");
  EXPECT_EQ(engine.Route(f), Method::kGrounded);
}

TEST(EngineTest, RoutesHighArityToGrounded) {
  Engine engine{logic::Vocabulary{}};
  logic::Formula f = engine.Parse("forall x forall y !T(x,y,x)");
  EXPECT_EQ(engine.Route(f), Method::kGrounded);
}

TEST(EngineTest, RoutesConstantsAwayFromLifted) {
  Engine engine{logic::Vocabulary{}};
  logic::Formula f = engine.Parse("forall x R(x,0)");
  EXPECT_EQ(engine.Route(f), Method::kGrounded);
}

TEST(EngineTest, MethodsAgreeOnFO2CQ) {
  // ∃x∃y (R(x,y) & T(y)) is simultaneously FO², a γ-acyclic CQ, and
  // groundable: all three answers must coincide.
  Engine engine{logic::Vocabulary{}};
  logic::Formula f = engine.Parse("exists x exists y (R(x,y) & T(y))");
  engine.mutable_vocabulary()->SetWeights(
      engine.vocabulary().Require("R"), BigRational(2), BigRational(1));
  engine.mutable_vocabulary()->SetWeights(
      engine.vocabulary().Require("T"), BigRational(1), BigRational(3));
  for (std::uint64_t n = 1; n <= 3; ++n) {
    BigRational lifted = engine.WFOMC(f, n, Method::kLiftedFO2).value;
    BigRational gamma = engine.WFOMC(f, n, Method::kGammaAcyclic).value;
    BigRational grounded = engine.WFOMC(f, n, Method::kGrounded).value;
    EXPECT_EQ(lifted, gamma) << n;
    EXPECT_EQ(lifted, grounded) << n;
  }
}

TEST(EngineTest, FomcForcesUnitWeightsAndRestores) {
  Engine engine{logic::Vocabulary{}};
  logic::Formula f = engine.Parse("forall x exists y R(x,y)");
  engine.mutable_vocabulary()->SetWeights(
      engine.vocabulary().Require("R"), BigRational(7), BigRational(5));
  EXPECT_EQ(engine.FOMC(f, 4), closedforms::ForallExistsFOMC(4));
  // Weights restored afterwards.
  EXPECT_EQ(engine.vocabulary().positive_weight(
                engine.vocabulary().Require("R")),
            BigRational(7));
}

TEST(EngineTest, ProbabilityMatchesClosedForm) {
  Engine engine{logic::Vocabulary{}};
  logic::Formula f = engine.Parse("exists y S(y)");
  // Weights (1,1): Pr = (2^n - 1) / 2^n.
  EXPECT_EQ(engine.Probability(f, 5), BigRational::Fraction(31, 32));
}

TEST(EngineTest, MuConvergesToZeroForExistsForall) {
  Engine engine{logic::Vocabulary{}};
  logic::Formula f = engine.Parse("exists x forall y R(x,y)");
  BigRational mu8 = engine.Mu(f, 8);
  BigRational mu16 = engine.Mu(f, 16);
  EXPECT_LT(mu16, mu8);  // µ_n -> 0
  EXPECT_LT(mu16, BigRational::Fraction(1, 1000));
}

TEST(EngineTest, MuConvergesToOneForForallExists) {
  // (1 - 2^{-n})^n -> 1 by Fagin's 0-1 law (the paper's intro has a typo
  // claiming 0; EXPERIMENTS.md discusses it).
  Engine engine{logic::Vocabulary{}};
  logic::Formula f = engine.Parse("forall x exists y R(x,y)");
  EXPECT_GT(engine.Mu(f, 16), BigRational::Fraction(999, 1000));
}

TEST(EngineTest, MuConvergesToOneForExtensionStyleAxiom) {
  // ∀x∃y R(x,y) fails a.a.s., but ∃x∃y R(x,y) holds a.a.s.: µ_n -> 1.
  Engine engine{logic::Vocabulary{}};
  logic::Formula f = engine.Parse("exists x exists y R(x,y)");
  BigRational mu6 = engine.Mu(f, 6);
  EXPECT_GT(mu6, BigRational::Fraction(999, 1000));
}

TEST(EngineTest, HasModelOfSize) {
  Engine engine{logic::Vocabulary{}};
  logic::Formula f =
      engine.Parse("exists x exists y (x != y & R(x,y))");
  EXPECT_FALSE(engine.HasModelOfSize(f, 1));
  EXPECT_TRUE(engine.HasModelOfSize(f, 2));
}

TEST(EngineTest, MethodNames) {
  EXPECT_STREQ(ToString(Method::kLiftedFO2), "lifted-fo2");
  EXPECT_STREQ(ToString(Method::kGammaAcyclic), "gamma-acyclic");
  EXPECT_STREQ(ToString(Method::kGrounded), "grounded");
}

TEST(EngineTest, AutoRoutingProducesSameValueAsExplicit) {
  Engine engine{logic::Vocabulary{}};
  logic::Formula f = engine.Parse("forall x forall y (R(x) | S(x,y) | T(y))");
  for (std::uint64_t n = 1; n <= 5; ++n) {
    Engine::Result result = engine.WFOMC(f, n);
    EXPECT_EQ(result.method, Method::kLiftedFO2);
    EXPECT_EQ(result.value.ToInteger(), closedforms::Table1FOMC(n)) << n;
  }
}

}  // namespace
}  // namespace swfomc::api
