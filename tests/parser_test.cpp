#include "logic/parser.h"

#include <gtest/gtest.h>

#include "logic/printer.h"

namespace swfomc::logic {
namespace {

TEST(ParserTest, SimpleAtom) {
  Vocabulary vocab;
  Formula f = Parse("R(x,y)", &vocab);
  EXPECT_EQ(f->kind(), FormulaKind::kAtom);
  EXPECT_EQ(vocab.arity(vocab.Require("R")), 2u);
  EXPECT_EQ(f->arguments()[0], Term::Var("x"));
}

TEST(ParserTest, ZeroAryAtom) {
  Vocabulary vocab;
  Formula f = Parse("P & Q", &vocab);
  EXPECT_EQ(f->kind(), FormulaKind::kAnd);
  EXPECT_EQ(vocab.arity(vocab.Require("P")), 0u);
}

TEST(ParserTest, ConstantsInAtoms) {
  Vocabulary vocab;
  Formula f = Parse("R(0, 2)", &vocab);
  EXPECT_EQ(f->arguments()[0], Term::Const(0));
  EXPECT_EQ(f->arguments()[1], Term::Const(2));
}

TEST(ParserTest, QuantifierSugar) {
  Vocabulary vocab;
  Formula a = Parse("forall x exists y. R(x,y)", &vocab);
  Formula b = Parse("forall x. exists y. R(x,y)", &vocab);
  Formula c = Parse("forall x (exists y (R(x,y)))", &vocab);
  EXPECT_TRUE(StructurallyEqual(a, b));
  EXPECT_TRUE(StructurallyEqual(a, c));
  EXPECT_EQ(a->kind(), FormulaKind::kForall);
  EXPECT_EQ(a->child()->kind(), FormulaKind::kExists);
}

TEST(ParserTest, MultiVariableQuantifier) {
  Vocabulary vocab;
  Formula a = Parse("forall x y. R(x,y)", &vocab);
  Formula b = Parse("forall x forall y. R(x,y)", &vocab);
  EXPECT_TRUE(StructurallyEqual(a, b));
}

TEST(ParserTest, PrecedenceAndBeforeOr) {
  Vocabulary vocab;
  Formula f = Parse("A | B & C", &vocab);
  EXPECT_EQ(f->kind(), FormulaKind::kOr);
  EXPECT_EQ(f->children()[1]->kind(), FormulaKind::kAnd);
}

TEST(ParserTest, ImplicationRightAssociative) {
  Vocabulary vocab;
  Formula f = Parse("A => B => C", &vocab);
  EXPECT_EQ(f->kind(), FormulaKind::kImplies);
  EXPECT_EQ(f->child(1)->kind(), FormulaKind::kImplies);
}

TEST(ParserTest, IffAndArrowSpelling) {
  Vocabulary vocab;
  Formula f = Parse("A <=> B", &vocab);
  EXPECT_EQ(f->kind(), FormulaKind::kIff);
  Formula g = Parse("A -> B", &vocab);
  EXPECT_EQ(g->kind(), FormulaKind::kImplies);
}

TEST(ParserTest, EqualityAndDisequality) {
  Vocabulary vocab;
  Formula f = Parse("x = y", &vocab);
  EXPECT_EQ(f->kind(), FormulaKind::kEquality);
  Formula g = Parse("x != y", &vocab);
  EXPECT_EQ(g->kind(), FormulaKind::kNot);
  EXPECT_EQ(g->child()->kind(), FormulaKind::kEquality);
}

TEST(ParserTest, NegationBindsTighterThanAnd) {
  Vocabulary vocab;
  Formula f = Parse("!A & B", &vocab);
  EXPECT_EQ(f->kind(), FormulaKind::kAnd);
  EXPECT_EQ(f->children()[0]->kind(), FormulaKind::kNot);
}

TEST(ParserTest, TrueFalseKeywords) {
  Vocabulary vocab;
  EXPECT_EQ(Parse("true", &vocab)->kind(), FormulaKind::kTrue);
  EXPECT_EQ(Parse("false", &vocab)->kind(), FormulaKind::kFalse);
}

TEST(ParserTest, PaperExampleSentences) {
  Vocabulary vocab;
  // Table 1 sentence.
  Formula table1 = Parse("forall x forall y (R(x) | S(x,y) | T(y))", &vocab);
  EXPECT_TRUE(IsSentence(table1));
  EXPECT_TRUE(InFragmentFOk(table1, 2));
  // QS4 (Theorem 3.7).
  Vocabulary qs4_vocab;
  Formula qs4 = Parse(
      "forall x1 forall x2 forall y1 forall y2 "
      "(S(x1,y1) | !S(x2,y1) | S(x2,y2) | !S(x1,y2))",
      &qs4_vocab);
  EXPECT_TRUE(IsSentence(qs4));
  EXPECT_TRUE(InFragmentFOk(qs4, 4));
  // MLN constraint of Example 1.1.
  Vocabulary mln_vocab;
  Formula mln = Parse("Spouse(x,y) & Female(x) => Male(y)", &mln_vocab);
  EXPECT_EQ(FreeVariables(mln), (std::set<std::string>{"x", "y"}));
}

TEST(ParserTest, ArityConflictRejected) {
  Vocabulary vocab;
  Parse("R(x,y)", &vocab);
  EXPECT_THROW(Parse("R(x)", &vocab), std::invalid_argument);
}

TEST(ParserTest, StrictModeRejectsUnknownRelations) {
  Vocabulary vocab;
  vocab.AddRelation("R", 1);
  EXPECT_NO_THROW(ParseStrict("forall x R(x)", vocab));
  EXPECT_THROW(ParseStrict("forall x S(x)", vocab), std::invalid_argument);
  EXPECT_EQ(vocab.size(), 1u);  // strict mode never mutates
}

TEST(ParserTest, SyntaxErrors) {
  Vocabulary vocab;
  EXPECT_THROW(Parse("", &vocab), std::invalid_argument);
  EXPECT_THROW(Parse("R(x", &vocab), std::invalid_argument);
  EXPECT_THROW(Parse("forall. R(x)", &vocab), std::invalid_argument);
  EXPECT_THROW(Parse("R(x,y) R(x,y)", &vocab), std::invalid_argument);
  EXPECT_THROW(Parse("x &", &vocab), std::invalid_argument);
  EXPECT_THROW(Parse("(R(x)", &vocab), std::invalid_argument);
  EXPECT_THROW(Parse("R(x,)", &vocab), std::invalid_argument);
}

TEST(ParserTest, BareTermRequiresComparison) {
  Vocabulary vocab;
  EXPECT_THROW(Parse("x", &vocab), std::invalid_argument);
  EXPECT_NO_THROW(Parse("x = x", &vocab));
}

TEST(ParserTest, PrintParseRoundTrip) {
  const char* sentences[] = {
      "forall x. exists y. R(x,y)",
      "forall x forall y (R(x) | S(x,y) | T(y))",
      "exists x (U(x) & !V(x))",
      "forall x (x = x | P)",
      "forall x forall y (E(x,y) => E(y,x))",
  };
  for (const char* text : sentences) {
    // Fresh vocabulary per sentence: the samples reuse relation names at
    // different arities.
    Vocabulary vocab;
    Formula original = Parse(text, &vocab);
    Formula reparsed = Parse(ToString(original, vocab), &vocab);
    EXPECT_TRUE(StructurallyEqual(original, reparsed)) << text;
  }
}

TEST(ParserTest, UnderscoreAndPrimedVariables) {
  Vocabulary vocab;
  Formula f = Parse("R(x_1, y')", &vocab);
  EXPECT_EQ(f->arguments()[0], Term::Var("x_1"));
  EXPECT_EQ(f->arguments()[1], Term::Var("y'"));
}

}  // namespace
}  // namespace swfomc::logic
