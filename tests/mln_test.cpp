// Markov Logic Networks (Example 1.1) and the Example 1.2 reduction to
// symmetric WFOMC, validated against exact brute-force MLN semantics.

#include "mln/reduction.h"

#include <gtest/gtest.h>

#include "fo2/cell_algorithm.h"
#include "logic/parser.h"

namespace swfomc::mln {
namespace {

using numeric::BigRational;

TEST(MlnTest, SoftWeightMustBePositive) {
  MarkovLogicNetwork network{logic::Vocabulary{}};
  EXPECT_THROW(network.AddSoft(BigRational(0), "U(x)"), std::invalid_argument);
  EXPECT_THROW(network.AddSoft(BigRational(-2), "U(x)"),
               std::invalid_argument);
  EXPECT_NO_THROW(network.AddSoft(BigRational::Fraction(1, 2), "U(x)"));
}

TEST(MlnTest, BruteForceWeightSingleSoftUnary) {
  // One soft constraint (w, U(x)): W(true) over n elements is
  // Σ_worlds w^{#U-true} = (1 + w)^n.
  MarkovLogicNetwork network{logic::Vocabulary{}};
  network.AddSoft(BigRational(3), "U(x)");
  for (std::uint64_t n = 1; n <= 4; ++n) {
    EXPECT_EQ(network.BruteForceWeight(logic::True(), n),
              BigRational::Pow(BigRational(4), static_cast<std::int64_t>(n)))
        << n;
  }
}

TEST(MlnTest, HardConstraintExcludesWorlds) {
  MarkovLogicNetwork network{logic::Vocabulary{}};
  network.AddHard("U(x)");  // all elements must be U
  for (std::uint64_t n = 1; n <= 3; ++n) {
    EXPECT_EQ(network.BruteForceWeight(logic::True(), n), BigRational(1))
        << n;
  }
}

TEST(MlnTest, BruteForceProbabilityIsConditional) {
  MarkovLogicNetwork network{logic::Vocabulary{}};
  network.AddSoft(BigRational(3), "U(x)");
  // Pr(U(0)) = w / (1 + w) = 3/4 by independence across elements.
  logic::Formula query =
      logic::ParseStrict("U(0)", network.vocabulary());
  EXPECT_EQ(network.BruteForceProbability(query, 2),
            BigRational::Fraction(3, 4));
}

TEST(ReductionTest, AuxiliaryWeightIsOneOverWMinusOne) {
  MarkovLogicNetwork network{logic::Vocabulary{}};
  network.AddSoft(BigRational(3), "U(x)");
  WfomcReduction reduction = ReduceToWFOMC(network);
  // Aux relation appended with weights (1/2, 1) — Example 1.2's numbers.
  logic::RelationId aux = reduction.vocabulary.size() - 1;
  EXPECT_EQ(reduction.vocabulary.positive_weight(aux),
            BigRational::Fraction(1, 2));
  EXPECT_EQ(reduction.vocabulary.negative_weight(aux), BigRational(1));
}

TEST(ReductionTest, NegativeAuxWeightWhenWBelowOne) {
  MarkovLogicNetwork network{logic::Vocabulary{}};
  network.AddSoft(BigRational::Fraction(1, 2), "U(x)");
  WfomcReduction reduction = ReduceToWFOMC(network);
  logic::RelationId aux = reduction.vocabulary.size() - 1;
  // 1/(1/2 - 1) = -2: the paper's negative-weight case.
  EXPECT_EQ(reduction.vocabulary.positive_weight(aux), BigRational(-2));
}

TEST(ReductionTest, WeightOneConstraintIsDropped) {
  MarkovLogicNetwork network{logic::Vocabulary{}};
  network.AddSoft(BigRational(1), "U(x)");
  WfomcReduction reduction = ReduceToWFOMC(network);
  EXPECT_EQ(reduction.vocabulary.size(), network.vocabulary().size());
}

void ExpectReductionMatchesBruteForce(const MarkovLogicNetwork& network,
                                      const logic::Formula& query,
                                      std::uint64_t max_n) {
  for (std::uint64_t n = 1; n <= max_n; ++n) {
    BigRational reference = network.BruteForceProbability(query, n);
    BigRational reduced = ProbabilityViaWFOMC(network, query, n);
    EXPECT_EQ(reduced, reference) << "n=" << n;
  }
}

TEST(ReductionTest, SingleSoftUnaryMatches) {
  MarkovLogicNetwork network{logic::Vocabulary{}};
  network.AddSoft(BigRational(3), "U(x)");
  logic::Formula query = logic::ParseStrict("U(0)", network.vocabulary());
  ExpectReductionMatchesBruteForce(network, query, 3);
}

TEST(ReductionTest, SpouseExampleMatches) {
  // Example 1.1: (3, Spouse(x,y) & Female(x) => Male(y)).
  MarkovLogicNetwork network{logic::Vocabulary{}};
  network.AddSoft(BigRational(3),
                  "Spouse(x,y) & Female(x) => Male(y)");
  logic::Formula query = logic::ParseStrict(
      "exists x exists y (Spouse(x,y) & Female(x) & !Male(y))",
      network.vocabulary());
  ExpectReductionMatchesBruteForce(network, query, 2);
}

TEST(ReductionTest, MixedHardAndSoftMatches) {
  MarkovLogicNetwork network{logic::Vocabulary{}};
  network.AddHard("Friend(x,y) => Friend(y,x)");
  network.AddSoft(BigRational(2), "Friend(x,y)");
  logic::Formula query =
      logic::ParseStrict("exists x exists y Friend(x,y)",
                         network.vocabulary());
  ExpectReductionMatchesBruteForce(network, query, 2);
}

TEST(ReductionTest, FractionalWeightMatches) {
  // w < 1 exercises the negative-probability regime end to end.
  MarkovLogicNetwork network{logic::Vocabulary{}};
  network.AddSoft(BigRational::Fraction(1, 3), "U(x) => V(x)");
  logic::Formula query =
      logic::ParseStrict("exists x (U(x) & V(x))", network.vocabulary());
  ExpectReductionMatchesBruteForce(network, query, 2);
}

TEST(ReductionTest, LiftedEngineAgreesOnFO2Network) {
  // The reduction output for a two-variable MLN stays in FO², so the
  // lifted cell algorithm can serve as the engine — the paper's headline
  // pipeline (MLN -> WFOMC -> lifted inference).
  MarkovLogicNetwork network{logic::Vocabulary{}};
  network.AddSoft(BigRational(3), "Smokes(x) & Friend(x,y) => Smokes(y)");
  logic::Formula query =
      logic::ParseStrict("exists x Smokes(x)", network.vocabulary());
  for (std::uint64_t n = 1; n <= 2; ++n) {
    BigRational reference = network.BruteForceProbability(query, n);
    BigRational lifted = ProbabilityViaWFOMC(
        network, query, n,
        [](const logic::Formula& sentence,
           const logic::Vocabulary& vocabulary, std::uint64_t domain) {
          return fo2::LiftedWFOMC(sentence, vocabulary, domain);
        });
    EXPECT_EQ(lifted, reference) << n;
  }
}

TEST(ReductionTest, LiftedEngineScalesBeyondBruteForce) {
  // n = 12 has 2^{156} worlds; the lifted pipeline answers exactly.
  MarkovLogicNetwork network{logic::Vocabulary{}};
  network.AddSoft(BigRational(3), "Smokes(x) & Friend(x,y) => Smokes(y)");
  logic::Formula query =
      logic::ParseStrict("exists x Smokes(x)", network.vocabulary());
  BigRational p = ProbabilityViaWFOMC(
      network, query, 12,
      [](const logic::Formula& sentence, const logic::Vocabulary& vocabulary,
         std::uint64_t domain) {
        return fo2::LiftedWFOMC(sentence, vocabulary, domain);
      });
  EXPECT_GT(p, BigRational(0));
  EXPECT_LT(p, BigRational(1));
}

}  // namespace
}  // namespace swfomc::mln
