// The lifted-rules baseline: computes the easy fragment and — the point
// of Theorem 3.7's closing remark — fails on QS4, on Table 1's sentence
// (no atom counting), and on the Table 2 conjectures, while every value
// it does produce matches the grounded engine exactly.

#include "lifted/rules.h"

#include <gtest/gtest.h>

#include "grounding/grounded_wfomc.h"
#include "logic/parser.h"
#include "qs4/qs4.h"

namespace swfomc::lifted {
namespace {

using numeric::BigRational;

struct Engine {
  logic::Vocabulary vocab;
  logic::Formula formula;
  RuleEngine rules{logic::Vocabulary{}};

  explicit Engine(const char* text)
      : formula(logic::Parse(text, &vocab)), rules(vocab) {}
};

TEST(RuleEngineTest, ForallExistsClosedForm) {
  Engine e("forall x exists y R(x,y)");
  for (std::uint64_t n = 1; n <= 3; ++n) {
    auto result = e.rules.Probability(e.formula, n);
    ASSERT_TRUE(result.has_value()) << n;
    EXPECT_EQ(*result, grounding::GroundedProbability(e.formula, e.vocab, n))
        << n;
  }
  // Closed form at n = 10, far beyond grounding: (1 - 2^-10)^10.
  auto big = e.rules.Probability(e.formula, 10);
  ASSERT_TRUE(big.has_value());
  BigRational per_row =
      BigRational(1) - BigRational::Fraction(1, 1024);
  EXPECT_EQ(*big, BigRational::Pow(per_row, 10));
  EXPECT_GE(e.rules.trace().partial_groundings, 2u);
}

TEST(RuleEngineTest, ExistsUnary) {
  Engine e("exists y S(y)");
  auto result = e.rules.Probability(e.formula, 4);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result,
            BigRational(1) -
                BigRational::Pow(BigRational::Fraction(1, 2), 4));
}

TEST(RuleEngineTest, DecomposableConjunction) {
  Engine e("(exists x U(x)) & (forall y exists z R(y,z))");
  auto result = e.rules.Probability(e.formula, 3);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, grounding::GroundedProbability(e.formula, e.vocab, 3));
  EXPECT_EQ(e.rules.trace().decomposable_conjunctions, 1u);
}

TEST(RuleEngineTest, DecomposableDisjunction) {
  Engine e("(exists x U(x)) | (exists y V(y))");
  auto result = e.rules.Probability(e.formula, 3);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, grounding::GroundedProbability(e.formula, e.vocab, 3));
  EXPECT_EQ(e.rules.trace().decomposable_disjunctions, 1u);
}

TEST(RuleEngineTest, SharedAtomsAcrossGroundingsAreNotSeparable) {
  // ∃x∃y (R(x,y) & R(y,x)): "x in every atom" holds but positions
  // conflict — the naive rule would double-count; the engine must refuse
  // rather than return a wrong value.
  Engine e("exists x exists y (R(x,y) & R(y,x))");
  auto result = e.rules.Probability(e.formula, 2);
  EXPECT_FALSE(result.has_value());
  EXPECT_FALSE(e.rules.trace().failure.empty());
}

TEST(RuleEngineTest, FailsOnQs4) {
  // Theorem 3.7's remark, reproduced: the rule set cannot compute QS4 —
  // the dedicated dynamic program can.
  logic::Vocabulary vocab =
      qs4::Qs4Vocabulary(BigRational(1), BigRational(1));
  logic::Formula qs4_sentence = qs4::Qs4Sentence(vocab);
  RuleEngine rules(vocab);
  EXPECT_FALSE(rules.Probability(qs4_sentence, 3).has_value());
  qs4::Qs4Solver solver{BigRational(1), BigRational(1)};
  EXPECT_GT(solver.WFOMC(3), BigRational(0));  // the DP has no trouble
}

TEST(RuleEngineTest, FailsOnTable1WithoutAtomCounting) {
  Engine e("forall x forall y (R(x) | S(x,y) | T(y))");
  EXPECT_FALSE(e.rules.Probability(e.formula, 3).has_value());
}

TEST(RuleEngineTest, FailsOnTransitivity) {
  Engine e("forall x forall y forall z ((E(x,y) & E(y,z)) => E(x,z))");
  EXPECT_FALSE(e.rules.Probability(e.formula, 3).has_value());
}

TEST(RuleEngineTest, EmptyDomainConventions) {
  Engine forall("forall x U(x)");
  EXPECT_EQ(forall.rules.Probability(forall.formula, 0).value(),
            BigRational(1));
  Engine exists("exists x U(x)");
  EXPECT_EQ(exists.rules.Probability(exists.formula, 0).value(),
            BigRational(0));
}

// Whatever the rule engine answers must agree with the grounded engine —
// across a family of rule-solvable sentences and domain sizes.
struct RuleCase {
  const char* text;
};

class RuleAgreementSweep : public ::testing::TestWithParam<RuleCase> {};

TEST_P(RuleAgreementSweep, MatchesGroundedWhenSolvable) {
  Engine e(GetParam().text);
  for (std::uint64_t n = 1; n <= 3; ++n) {
    auto result = e.rules.Probability(e.formula, n);
    ASSERT_TRUE(result.has_value()) << GetParam().text;
    EXPECT_EQ(*result, grounding::GroundedProbability(e.formula, e.vocab, n))
        << GetParam().text << " at n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Solvable, RuleAgreementSweep,
    ::testing::Values(
        RuleCase{"forall x exists y R(x,y)"},
        RuleCase{"exists x forall y R(x,y)"},
        RuleCase{"forall x U(x)"},
        RuleCase{"exists x (U(x) & V(x))"},
        RuleCase{"(forall x U(x)) | (exists y V(y))"},
        RuleCase{"!(exists x U(x))"},
        RuleCase{"(exists x U(x)) -> (exists y V(y))"},
        RuleCase{"forall x (U(x) | !U(x))"},
        RuleCase{"forall x forall y R(x,y)"},
        RuleCase{"exists x exists y (R(x,y) & U(x))"}));

}  // namespace
}  // namespace swfomc::lifted
