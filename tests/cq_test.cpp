// Conjunctive queries, hypergraph acyclicity (Figure 1 taxonomy), and the
// Theorem 3.6 γ-acyclic evaluator (validated against grounding).

#include "cq/gamma_evaluator.h"

#include <gtest/gtest.h>

#include "cq/acyclicity.h"
#include "cq/hypergraph.h"
#include "grounding/grounded_wfomc.h"
#include "logic/parser.h"

namespace swfomc::cq {
namespace {

using numeric::BigInt;
using numeric::BigRational;

ConjunctiveQuery Q(const std::string& text) {
  return ConjunctiveQuery::FromString(text);
}

TEST(ConjunctiveQueryTest, ParseAndRender) {
  ConjunctiveQuery query = Q("R(x,y), S(y,z), T(z)");
  EXPECT_EQ(query.atoms().size(), 3u);
  EXPECT_EQ(query.ToString(), "R(x,y), S(y,z), T(z)");
  EXPECT_EQ(query.Variables(), (std::vector<std::string>{"x", "y", "z"}));
}

TEST(ConjunctiveQueryTest, SelfJoinRejected) {
  ConjunctiveQuery query;
  query.AddAtom("R", {"x", "y"});
  EXPECT_THROW(query.AddAtom("R", {"y", "z"}), std::invalid_argument);
  EXPECT_THROW(Q("R(x), R(y)"), std::invalid_argument);
}

TEST(ConjunctiveQueryTest, DefaultProbabilityIsHalf) {
  ConjunctiveQuery query = Q("R(x)");
  EXPECT_EQ(query.probability("R"), BigRational::Fraction(1, 2));
  query.SetProbability("R", BigRational::Fraction(1, 3));
  EXPECT_EQ(query.probability("R"), BigRational::Fraction(1, 3));
}

TEST(ConjunctiveQueryTest, ToSentenceEncodesWeights) {
  ConjunctiveQuery query = Q("R(x,y), T(y)");
  query.SetProbability("R", BigRational::Fraction(1, 4));
  auto [sentence, vocab] = query.ToSentence();
  EXPECT_TRUE(logic::IsSentence(sentence));
  logic::RelationId r = vocab.Require("R");
  EXPECT_EQ(vocab.positive_weight(r), BigRational::Fraction(1, 4));
  EXPECT_EQ(vocab.negative_weight(r), BigRational::Fraction(3, 4));
}

// --- Figure 1 taxonomy -------------------------------------------------

TEST(AcyclicityTest, ChainIsGammaAcyclic) {
  EXPECT_TRUE(IsGammaAcyclic(BuildHypergraph(Q("R(x,y), S(y,z)"))));
  EXPECT_TRUE(
      IsGammaAcyclic(BuildHypergraph(Q("R1(x0,x1), R2(x1,x2), R3(x2,x3)"))));
}

TEST(AcyclicityTest, PaperCGammaQueryIsGammaCyclicButJtdbStyle) {
  // cγ = R(x,z), S(x,y,z), T(y,z): the paper notes it is γ-CYCLIC (cycle
  // R x S y T z R) yet still PTIME via the separator variable z.
  Hypergraph g = BuildHypergraph(Q("R(x,z), S(x,y,z), T(y,z)"));
  EXPECT_FALSE(IsGammaAcyclic(g));
  EXPECT_TRUE(IsAlphaAcyclic(g));
  // No weak β-cycle: z is everywhere, so any candidate x_i fails the
  // "in no other edge" condition... the cycle R x S y T z R uses z in all
  // three edges, which violates weak-β-cycle distinctness.
  EXPECT_TRUE(IsBetaAcyclic(g));
}

TEST(AcyclicityTest, TypedCyclesHaveWeakBetaCycles) {
  // C_3 = R1(x1,x2), R2(x2,x3), R3(x3,x1).
  Hypergraph c3 = BuildHypergraph(Q("R1(x1,x2), R2(x2,x3), R3(x3,x1)"));
  EXPECT_FALSE(IsGammaAcyclic(c3));
  EXPECT_FALSE(IsBetaAcyclic(c3));
  auto cycle = FindWeakBetaCycle(c3);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->edges.size(), 3u);

  Hypergraph c4 =
      BuildHypergraph(Q("R1(x1,x2), R2(x2,x3), R3(x3,x4), R4(x4,x1)"));
  EXPECT_FALSE(IsBetaAcyclic(c4));
  EXPECT_EQ(FindWeakBetaCycle(c4)->edges.size(), 4u);
}

TEST(AcyclicityTest, CjtdbIsAlphaAcyclic) {
  // cjtdb = R(x,y,z,u), S(x,y), T(x,z), V(x,u) — PTIME per the paper, not
  // jtdb; in our taxonomy it is α-acyclic but not γ-acyclic.
  Hypergraph g =
      BuildHypergraph(Q("R(x,y,z,u), S(x,y), T(x,z), V(x,u)"));
  EXPECT_TRUE(IsAlphaAcyclic(g));
  EXPECT_FALSE(IsGammaAcyclic(g));
  EXPECT_TRUE(IsBetaAcyclic(g));
}

TEST(AcyclicityTest, StarQueryGammaAcyclic) {
  EXPECT_TRUE(IsGammaAcyclic(BuildHypergraph(Q("R(x,y), S(x,z), T(x,u)"))));
}

TEST(AcyclicityTest, TriangleWithCoveringEdgeIsAlphaOnly) {
  // Adding an atom containing all variables makes any query α-acyclic
  // (the Section 3.2 argument for why α-acyclic queries are as hard as
  // all CQs).
  Hypergraph g = BuildHypergraph(
      Q("A(x,y,z), R1(x,y), R2(y,z), R3(z,x)"));
  EXPECT_TRUE(IsAlphaAcyclic(g));
  EXPECT_FALSE(IsGammaAcyclic(g));
  EXPECT_FALSE(IsBetaAcyclic(g));  // the triangle survives as a weak cycle
}

TEST(AcyclicityTest, ClassifyMatchesTaxonomy) {
  EXPECT_EQ(Classify(BuildHypergraph(Q("R(x,y), S(y,z)"))),
            AcyclicityClass::kGammaAcyclic);
  EXPECT_EQ(Classify(BuildHypergraph(Q("R(x,z), S(x,y,z), T(y,z)"))),
            AcyclicityClass::kBetaAcyclic);
  EXPECT_EQ(Classify(BuildHypergraph(Q("R1(x1,x2), R2(x2,x3), R3(x3,x1)"))),
            AcyclicityClass::kCyclic);
}

// --- Theorem 3.6 evaluator ---------------------------------------------

void ExpectMatchesGrounded(const ConjunctiveQuery& query, std::uint64_t max_n) {
  auto [sentence, vocab] = query.ToSentence();
  for (std::uint64_t n = 1; n <= max_n; ++n) {
    BigRational lifted = GammaAcyclicProbability(query, n);
    BigRational grounded = grounding::GroundedProbability(sentence, vocab, n);
    EXPECT_EQ(lifted, grounded) << query.ToString() << " n=" << n;
  }
}

TEST(GammaEvaluatorTest, SingleUnaryAtom) {
  // Pr(∃x R(x)) = 1 - (1-p)^n.
  ConjunctiveQuery query = Q("R(x)");
  query.SetProbability("R", BigRational::Fraction(1, 3));
  for (std::uint64_t n = 1; n <= 6; ++n) {
    BigRational expected =
        BigRational(1) - BigRational::Pow(BigRational::Fraction(2, 3),
                                          static_cast<std::int64_t>(n));
    EXPECT_EQ(GammaAcyclicProbability(query, n), expected) << n;
  }
}

TEST(GammaEvaluatorTest, SingleBinaryAtom) {
  // Pr(∃x∃y R(x,y)) = 1 - (1-p)^{n²} (x,y edge-equivalent, rule (e)).
  ConjunctiveQuery query = Q("R(x,y)");
  query.SetProbability("R", BigRational::Fraction(1, 2));
  for (std::uint64_t n = 1; n <= 4; ++n) {
    BigRational expected =
        BigRational(1) - BigRational::Pow(BigRational::Fraction(1, 2),
                                          static_cast<std::int64_t>(n * n));
    EXPECT_EQ(GammaAcyclicProbability(query, n), expected) << n;
  }
}

TEST(GammaEvaluatorTest, TwoAtomChainMatchesGrounded) {
  ConjunctiveQuery query = Q("R(x,y), T(y)");
  query.SetProbability("R", BigRational::Fraction(1, 2));
  query.SetProbability("T", BigRational::Fraction(1, 3));
  ExpectMatchesGrounded(query, 2);
}

TEST(GammaEvaluatorTest, Example310ChainMatchesGrounded) {
  // The paper's Example 3.10 linear chain with m = 2.
  ConjunctiveQuery query = Q("R1(x0,x1), R2(x1,x2)");
  query.SetProbability("R1", BigRational::Fraction(1, 2));
  query.SetProbability("R2", BigRational::Fraction(2, 3));
  ExpectMatchesGrounded(query, 2);
}

TEST(GammaEvaluatorTest, StarQueryMatchesGrounded) {
  ConjunctiveQuery query = Q("R(x,y), S(x)");
  query.SetProbability("R", BigRational::Fraction(1, 4));
  query.SetProbability("S", BigRational::Fraction(1, 2));
  ExpectMatchesGrounded(query, 2);
}

TEST(GammaEvaluatorTest, RepeatedVariableAtom) {
  // R(x,x) behaves as a unary relation over the diagonal.
  ConjunctiveQuery query = Q("R(x,x)");
  query.SetProbability("R", BigRational::Fraction(1, 2));
  for (std::uint64_t n = 1; n <= 4; ++n) {
    BigRational expected =
        BigRational(1) - BigRational::Pow(BigRational::Fraction(1, 2),
                                          static_cast<std::int64_t>(n));
    EXPECT_EQ(GammaAcyclicProbability(query, n), expected) << n;
  }
}

TEST(GammaEvaluatorTest, ChainScalesPolynomially) {
  // Example 3.10 with m = 4 at n = 25 — far beyond any grounded engine
  // (|Tup| = 4 * 625), finishing instantly: the PTIME claim in action.
  ConjunctiveQuery query =
      Q("R1(x0,x1), R2(x1,x2), R3(x2,x3), R4(x3,x4)");
  BigRational p = GammaAcyclicProbability(query, 25);
  EXPECT_GT(p, BigRational(0));
  EXPECT_LT(p, BigRational(1));
}

TEST(GammaEvaluatorTest, PerVariableDomains) {
  // The generalized semantics of Theorem 3.6.
  ConjunctiveQuery query = Q("R(x,y)");
  query.SetProbability("R", BigRational::Fraction(1, 2));
  GammaEvaluator evaluator;
  std::map<std::string, BigInt> domains{{"x", BigInt(2)}, {"y", BigInt(3)}};
  // 1 - (1/2)^6.
  EXPECT_EQ(evaluator.Probability(query, domains),
            BigRational::Fraction(63, 64));
}

TEST(GammaEvaluatorTest, EmptyDomainGivesZero) {
  ConjunctiveQuery query = Q("R(x)");
  GammaEvaluator evaluator;
  std::map<std::string, BigInt> domains{{"x", BigInt(0)}};
  EXPECT_EQ(evaluator.Probability(query, domains), BigRational(0));
}

TEST(GammaEvaluatorTest, NonGammaAcyclicThrows) {
  ConjunctiveQuery c3 = Q("R1(x1,x2), R2(x2,x3), R3(x3,x1)");
  EXPECT_THROW(GammaAcyclicProbability(c3, 2), std::invalid_argument);
}

TEST(GammaEvaluatorTest, MemoizationFires) {
  ConjunctiveQuery query = Q("R(x), S(x,y), T(y)");
  GammaEvaluator evaluator;
  evaluator.Probability(query, 6);
  EXPECT_GT(evaluator.stats().memo_entries, 0u);
}

TEST(GammaAcyclicWfomcTest, MatchesGroundedWfomc) {
  ConjunctiveQuery query = Q("R(x,y), T(y)");
  std::map<std::string, std::pair<BigRational, BigRational>> weights{
      {"R", {BigRational(2), BigRational(1)}},
      {"T", {BigRational(1), BigRational(3)}}};
  logic::Vocabulary vocab;
  vocab.AddRelation("R", 2, BigRational(2), BigRational(1));
  vocab.AddRelation("T", 1, BigRational(1), BigRational(3));
  logic::Formula sentence =
      logic::ParseStrict("exists x exists y (R(x,y) & T(y))", vocab);
  for (std::uint64_t n = 1; n <= 2; ++n) {
    EXPECT_EQ(GammaAcyclicWFOMC(query, n, weights),
              grounding::GroundedWFOMC(sentence, vocab, n))
        << n;
  }
}

}  // namespace
}  // namespace swfomc::cq
