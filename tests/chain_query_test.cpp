// Example 3.10: the linear-chain recurrence against the general
// Theorem 3.6 evaluator and typed grounding.

#include "cq/chain_query.h"

#include <gtest/gtest.h>

#include "cq/gamma_evaluator.h"
#include "cq/typed_cycle.h"

namespace swfomc::cq {
namespace {

using numeric::BigInt;
using numeric::BigRational;

TEST(ChainQueryTest, RejectsEmptyChain) {
  EXPECT_THROW(ChainQuery({}), std::invalid_argument);
}

TEST(ChainQueryTest, SingleLinkClosedForm) {
  // Pr(∃x0∃x1 R(x0,x1)) = 1 - (1-p)^(n0*n1).
  ChainQuery chain({BigRational::Fraction(1, 3)});
  for (std::uint64_t n0 = 1; n0 <= 3; ++n0) {
    for (std::uint64_t n1 = 1; n1 <= 3; ++n1) {
      BigRational expected =
          BigRational(1) -
          BigRational::Pow(BigRational::Fraction(2, 3),
                           static_cast<std::int64_t>(n0 * n1));
      EXPECT_EQ(chain.Probability({n0, n1}), expected)
          << n0 << "," << n1;
    }
  }
}

TEST(ChainQueryTest, ZeroDomainMeansNoWitness) {
  ChainQuery chain({BigRational::Fraction(1, 2)});
  EXPECT_EQ(chain.Probability({0, 3}), BigRational(0));
  EXPECT_EQ(chain.Probability({3, 0}), BigRational(0));
}

TEST(ChainQueryTest, WrongDomainCountThrows) {
  ChainQuery chain({BigRational::Fraction(1, 2)});
  EXPECT_THROW(chain.Probability({1, 2, 3}), std::invalid_argument);
}

TEST(ChainQueryTest, MatchesGammaEvaluatorStandardSemantics) {
  ChainQuery chain({BigRational::Fraction(1, 2),
                    BigRational::Fraction(1, 3),
                    BigRational::Fraction(2, 3)});
  ConjunctiveQuery query = chain.ToConjunctiveQuery();
  for (std::uint64_t n = 1; n <= 6; ++n) {
    GammaEvaluator evaluator;
    EXPECT_EQ(chain.Probability(n), evaluator.Probability(query, n)) << n;
  }
}

TEST(ChainQueryTest, MatchesTypedGroundingPerVariableDomains) {
  ChainQuery chain({BigRational::Fraction(1, 2),
                    BigRational::Fraction(1, 4)});
  ConjunctiveQuery query = chain.ToConjunctiveQuery();
  for (std::uint64_t n0 = 1; n0 <= 2; ++n0) {
    for (std::uint64_t n1 = 1; n1 <= 2; ++n1) {
      for (std::uint64_t n2 = 1; n2 <= 2; ++n2) {
        std::map<std::string, std::uint64_t> domains{
            {"x0", n0}, {"x1", n1}, {"x2", n2}};
        EXPECT_EQ(chain.Probability({n0, n1, n2}),
                  TypedGroundedProbability(query, domains))
            << n0 << n1 << n2;
      }
    }
  }
}

TEST(ChainQueryTest, ScalesToLargeDomainsForFixedLength) {
  // The paper: polynomial in n for fixed m. n = 40 on a length-4 chain
  // must be quick and exact.
  ChainQuery chain(std::vector<BigRational>(4, BigRational::Fraction(1, 2)));
  BigRational p = chain.Probability(40);
  EXPECT_GT(p, BigRational::Fraction(99, 100));
  EXPECT_LT(p, BigRational(1));
}

// Probability sweeps: the recurrence must agree with the general
// evaluator across chain lengths and probabilities.
struct ChainCase {
  std::size_t length;
  int numerator;  // probability numerator / 4
  std::uint64_t n;
};

class ChainSweep : public ::testing::TestWithParam<ChainCase> {};

TEST_P(ChainSweep, AgreesWithGammaEvaluator) {
  const ChainCase& c = GetParam();
  ChainQuery chain(std::vector<BigRational>(
      c.length, BigRational::Fraction(c.numerator, 4)));
  ConjunctiveQuery query = chain.ToConjunctiveQuery();
  GammaEvaluator evaluator;
  EXPECT_EQ(chain.Probability(c.n), evaluator.Probability(query, c.n));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ChainSweep,
    ::testing::Values(ChainCase{1, 1, 4}, ChainCase{1, 3, 5},
                      ChainCase{2, 1, 4}, ChainCase{2, 2, 6},
                      ChainCase{3, 3, 4}, ChainCase{3, 1, 5},
                      ChainCase{4, 2, 4}, ChainCase{5, 1, 3}));

}  // namespace
}  // namespace swfomc::cq
