// Resource governance: budgets, cooperative cancellation, fault
// injection, and the anytime-bounds contract. The load-bearing property
// is differential: wherever a governed search is forced to stop, the
// explored prefix's exact mass plus the [0, free-mass] brackets of the
// abandoned subtrees must produce certified lower <= exact <= upper —
// and a budget generous enough to finish must reproduce the ungoverned
// count bit for bit, in every threading configuration.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "grounding/grounded_wfomc.h"
#include "logic/parser.h"
#include "numeric/rational.h"
#include "runtime/budget.h"
#include "test_util.h"
#include "wmc/component_cache.h"
#include "wmc/dpll_counter.h"

namespace swfomc {
namespace {

using numeric::BigRational;
using runtime::Budget;
using runtime::CancelToken;
using runtime::FaultPoint;
using runtime::StopReason;
using wmc::ComponentCache;
using wmc::DpllCounter;

using CountResult = DpllCounter::CountResult;
using CountOutcome = DpllCounter::CountOutcome;

struct Instance {
  prop::CnfFormula cnf;
  wmc::WeightMap weights;
};

Instance MakeInstance(std::uint64_t seed, std::uint32_t variables,
                      std::size_t clauses, bool allow_negative = false) {
  std::mt19937_64 rng(seed);
  Instance instance;
  instance.cnf = testutil::RandomCnf(&rng, variables, clauses, 3);
  instance.weights =
      testutil::RandomWeights(&rng, variables, allow_negative);
  return instance;
}

BigRational ExactCount(const Instance& instance) {
  DpllCounter counter(instance.cnf, instance.weights);
  return counter.Count();
}

CountResult CountWithOptions(const Instance& instance,
                             DpllCounter::Options options,
                             DpllCounter::Stats* stats = nullptr) {
  DpllCounter counter(instance.cnf, instance.weights, options);
  CountResult result = counter.CountBounded();
  if (stats != nullptr) *stats = counter.stats();
  return result;
}

void ExpectBrackets(const CountResult& result, const BigRational& exact,
                    const std::string& context) {
  SCOPED_TRACE(context);
  switch (result.outcome) {
    case CountOutcome::kExact:
      EXPECT_EQ(result.value, exact);
      EXPECT_EQ(result.upper, exact);
      break;
    case CountOutcome::kBounds:
      EXPECT_LE(result.value, exact);
      EXPECT_LE(exact, result.upper);
      EXPECT_NE(result.stop_reason, StopReason::kNone);
      break;
    case CountOutcome::kAborted:
      ADD_FAILURE() << "unexpected kAborted (" << context << ")";
      break;
  }
}

// ---------------------------------------------------------------------
// Budget primitive semantics.

TEST(BudgetPrimitives, DecisionCapPermitsExactlyThatManyCharges) {
  Budget budget;
  budget.SetMaxDecisions(3);
  EXPECT_EQ(budget.ChargeDecisions(1), StopReason::kNone);
  EXPECT_EQ(budget.ChargeDecisions(1), StopReason::kNone);
  EXPECT_EQ(budget.ChargeDecisions(1), StopReason::kNone);
  EXPECT_EQ(budget.ChargeDecisions(1), StopReason::kDecisions);
  EXPECT_EQ(budget.decisions_used(), 4u);

  Budget zero;
  zero.SetMaxDecisions(0);
  EXPECT_EQ(zero.ChargeDecisions(1), StopReason::kDecisions);
}

TEST(BudgetPrimitives, ImmediateDeadlineFires) {
  Budget budget;
  budget.SetWallClockMs(0);
  EXPECT_EQ(budget.CheckDeadline(), StopReason::kDeadline);

  Budget generous;
  generous.SetWallClockMs(60'000);
  EXPECT_EQ(generous.CheckDeadline(), StopReason::kNone);
}

TEST(BudgetPrimitives, ByteChargesRollBackOnFailure) {
  Budget budget;
  budget.SetMaxMemoryBytes(100);
  EXPECT_TRUE(budget.TryChargeBytes(60));
  EXPECT_FALSE(budget.TryChargeBytes(50));  // would exceed; rolled back
  EXPECT_EQ(budget.bytes_used(), 60u);
  EXPECT_TRUE(budget.TryChargeBytes(40));
  budget.ReleaseBytes(100);
  EXPECT_EQ(budget.bytes_used(), 0u);
}

TEST(BudgetPrimitives, StopReasonNames) {
  EXPECT_STREQ(runtime::ToString(StopReason::kNone), "none");
  EXPECT_STREQ(runtime::ToString(StopReason::kCancelled), "cancelled");
  EXPECT_STREQ(runtime::ToString(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(runtime::ToString(StopReason::kDecisions), "decisions");
  EXPECT_STREQ(runtime::ToString(StopReason::kMemory), "memory");
}

TEST(BudgetPrimitives, FaultPointFiresExactlyOnce) {
  FaultPoint fault(FaultPoint::Site::kDecision, FaultPoint::Action::kCancel,
                   3);
  EXPECT_FALSE(fault.Count(FaultPoint::Site::kDecision));
  EXPECT_FALSE(fault.Count(FaultPoint::Site::kCacheInsert));  // other site
  EXPECT_FALSE(fault.Count(FaultPoint::Site::kDecision));
  EXPECT_TRUE(fault.Count(FaultPoint::Site::kDecision));  // 3rd decision
  EXPECT_FALSE(fault.Count(FaultPoint::Site::kDecision));
  EXPECT_EQ(fault.reason(), StopReason::kCancelled);
}

// ---------------------------------------------------------------------
// Anytime bounds: differential fuzz against the ungoverned exact count.

TEST(BudgetBounds, ZeroBudgetsGiveSoundTrivialBrackets) {
  for (std::uint64_t seed :
       {testutil::FuzzBaseSeed(7101), testutil::FuzzBaseSeed(7101) + 1}) {
    Instance instance = MakeInstance(seed, 12, 20);
    BigRational exact = ExactCount(instance);

    Budget decisions;
    decisions.SetMaxDecisions(0);
    DpllCounter::Options options;
    options.budget = &decisions;
    DpllCounter::Stats stats;
    CountResult result = CountWithOptions(instance, options, &stats);
    ExpectBrackets(result, exact, "max_decisions=0 seed=" +
                                      std::to_string(seed));
    // A zero decision budget means the search may propagate but never
    // branch.
    EXPECT_EQ(stats.decisions, 0u);

    Budget deadline;
    deadline.SetWallClockMs(0);
    options.budget = &deadline;
    result = CountWithOptions(instance, options);
    ExpectBrackets(result, exact,
                   "budget_ms=0 seed=" + std::to_string(seed));
    if (result.outcome == CountOutcome::kBounds) {
      EXPECT_EQ(result.stop_reason, StopReason::kDeadline);
    }
  }
}

TEST(BudgetBounds, BracketExactForEveryInjectedCutoff) {
  const std::uint64_t base = testutil::FuzzBaseSeed(7102);
  for (int round = 0; round < 6; ++round) {
    Instance instance = MakeInstance(base + round, 13, 22);
    BigRational exact = ExactCount(instance);
    for (std::uint64_t cutoff : {0u, 1u, 2u, 3u, 5u, 8u, 13u, 21u, 64u}) {
      Budget budget;
      budget.SetMaxDecisions(cutoff);
      DpllCounter::Options options;
      options.budget = &budget;
      ExpectBrackets(CountWithOptions(instance, options), exact,
                     "seed=" + std::to_string(base + round) +
                         " cutoff=" + std::to_string(cutoff));
    }
  }
}

TEST(BudgetBounds, FaultInjectedCancellationBracketsExact) {
  const std::uint64_t base = testutil::FuzzBaseSeed(7103);
  for (int round = 0; round < 4; ++round) {
    Instance instance = MakeInstance(base + round, 12, 20);
    BigRational exact = ExactCount(instance);
    for (std::uint64_t fire_at : {1u, 2u, 4u, 7u}) {
      FaultPoint fault(FaultPoint::Site::kDecision,
                       FaultPoint::Action::kCancel, fire_at);
      DpllCounter::Options options;
      options.fault = &fault;
      CountResult result = CountWithOptions(instance, options);
      ExpectBrackets(result, exact,
                     "seed=" + std::to_string(base + round) +
                         " fire_at=" + std::to_string(fire_at));
      if (result.outcome == CountOutcome::kBounds) {
        EXPECT_EQ(result.stop_reason, StopReason::kCancelled);
      }
    }
  }
}

TEST(BudgetBounds, BoundsAreMonotoneInTheBudget) {
  const std::uint64_t base = testutil::FuzzBaseSeed(7104);
  for (int round = 0; round < 4; ++round) {
    Instance instance = MakeInstance(base + round, 13, 22);
    BigRational exact = ExactCount(instance);
    // Sequential search stops at a deterministic point for a decision
    // cap, and a larger cap explores a superset of the same prefix:
    // every extra decision replaces a bracket with mass it contains, so
    // lower bounds may only rise and upper bounds only fall.
    BigRational previous_lower;
    BigRational previous_upper;
    bool have_previous = false;
    for (std::uint64_t cap = 0; cap <= 40; cap += 4) {
      Budget budget;
      budget.SetMaxDecisions(cap);
      DpllCounter::Options options;
      options.budget = &budget;
      CountResult result = CountWithOptions(instance, options);
      ExpectBrackets(result, exact,
                     "seed=" + std::to_string(base + round) +
                         " cap=" + std::to_string(cap));
      BigRational lower = result.value;
      BigRational upper =
          result.outcome == CountOutcome::kExact ? result.value
                                                 : result.upper;
      if (have_previous) {
        EXPECT_GE(lower, previous_lower) << "cap=" << cap;
        EXPECT_LE(upper, previous_upper) << "cap=" << cap;
      }
      previous_lower = std::move(lower);
      previous_upper = std::move(upper);
      have_previous = true;
      if (result.outcome == CountOutcome::kExact) break;
    }
  }
}

TEST(BudgetBounds, GenerousBudgetIsBitIdenticalToUngoverned) {
  const std::uint64_t base = testutil::FuzzBaseSeed(7105);
  for (int round = 0; round < 4; ++round) {
    Instance instance = MakeInstance(base + round, 13, 22);
    BigRational exact = ExactCount(instance);
    for (unsigned threads : {1u, 4u}) {
      Budget budget;
      budget.SetMaxDecisions(std::uint64_t{1} << 40);
      budget.SetWallClockMs(600'000);
      DpllCounter::Options options;
      options.budget = &budget;
      options.num_threads = threads;
      options.parallel_min_component_vars = 2;
      CountResult result = CountWithOptions(instance, options);
      ASSERT_EQ(result.outcome, CountOutcome::kExact)
          << "threads=" << threads;
      EXPECT_EQ(result.value, exact);
      // Bit-identical, not just numerically equal.
      EXPECT_EQ(result.value.ToString(), exact.ToString());
      EXPECT_EQ(result.stop_reason, StopReason::kNone);
    }
  }
}

TEST(BudgetBounds, ParallelStopsStillBracketExact) {
  const std::uint64_t base = testutil::FuzzBaseSeed(7106);
  for (int round = 0; round < 3; ++round) {
    Instance instance = MakeInstance(base + round, 14, 24);
    BigRational exact = ExactCount(instance);
    for (std::uint64_t cutoff : {1u, 4u, 16u}) {
      // With workers racing, the stop lands at a schedule-dependent
      // point — the bracket must hold wherever it lands.
      Budget budget;
      budget.SetMaxDecisions(cutoff);
      DpllCounter::Options options;
      options.budget = &budget;
      options.num_threads = 4;
      options.parallel_min_component_vars = 2;
      ExpectBrackets(CountWithOptions(instance, options), exact,
                     "seed=" + std::to_string(base + round) +
                         " cutoff=" + std::to_string(cutoff));
    }
  }
}

TEST(BudgetBounds, ParallelFaultInjectionBracketsExact) {
  // The fault's event counter is shared by all four workers, so which
  // worker trips it — and which subtrees end up bracketed — is a data
  // race by design; the bracket must hold on every schedule. This is the
  // TSan canary for concurrent cancellation.
  const std::uint64_t base = testutil::FuzzBaseSeed(7112);
  for (int round = 0; round < 3; ++round) {
    Instance instance = MakeInstance(base + round, 14, 24);
    BigRational exact = ExactCount(instance);
    for (std::uint64_t fire_at : {1u, 8u}) {
      FaultPoint fault(FaultPoint::Site::kDecision,
                       FaultPoint::Action::kCancel, fire_at);
      DpllCounter::Options options;
      options.fault = &fault;
      options.num_threads = 4;
      options.parallel_min_component_vars = 2;
      ExpectBrackets(CountWithOptions(instance, options), exact,
                     "seed=" + std::to_string(base + round) +
                         " fire_at=" + std::to_string(fire_at));
    }
  }
}

TEST(BudgetBounds, NegativeWeightsDegradeToAborted) {
  const std::uint64_t base = testutil::FuzzBaseSeed(7107);
  for (int round = 0; round < 8; ++round) {
    Instance instance =
        MakeInstance(base + round, 12, 20, /*allow_negative=*/true);
    bool has_negative = false;
    for (prop::VarId v = 0; v < 12; ++v) {
      const wmc::VariableWeights& w = instance.weights.Get(v);
      if (w.positive.Sign() < 0 || w.negative.Sign() < 0) {
        has_negative = true;
        break;
      }
    }
    if (!has_negative) continue;
    BigRational exact = ExactCount(instance);

    Budget budget;
    budget.SetMaxDecisions(0);
    DpllCounter::Options options;
    options.budget = &budget;
    CountResult result = CountWithOptions(instance, options);
    if (result.outcome == CountOutcome::kExact) {
      // Unit propagation alone finished the count — no bracket needed.
      EXPECT_EQ(result.value, exact);
    } else {
      // A [0, mass] bracket is unsound under negative weights; the
      // search must refuse to certify bounds rather than report wrong
      // ones.
      EXPECT_EQ(result.outcome, CountOutcome::kAborted);
      EXPECT_EQ(result.stop_reason, StopReason::kDecisions);
    }
  }
}

TEST(BudgetBounds, MemoryFaultOnCacheInsertYieldsBounds) {
  Instance instance = MakeInstance(testutil::FuzzBaseSeed(7108), 13, 22);
  BigRational exact = ExactCount(instance);
  FaultPoint fault(FaultPoint::Site::kCacheInsert,
                   FaultPoint::Action::kMemoryExhausted, 1);
  DpllCounter::Options options;
  options.fault = &fault;
  CountResult result = CountWithOptions(instance, options);
  ExpectBrackets(result, exact, "memory fault at first cache insert");
  if (result.outcome == CountOutcome::kBounds) {
    EXPECT_EQ(result.stop_reason, StopReason::kMemory);
  }
}

// ---------------------------------------------------------------------
// Cooperative cancellation across the thread pool.

TEST(BudgetCancellation, FourThreadSearchStopsPromptlyOnCancel) {
  // A grounded instance big enough that nobody finishes it honestly
  // before the token fires (triangle blow-up at n=6).
  logic::Vocabulary vocab;
  logic::Formula phi = logic::Parse(
      "exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))", &vocab);

  CancelToken token;
  DpllCounter::Options options;
  options.cancel = &token;
  options.num_threads = 4;
  options.parallel_min_component_vars = 2;

  DpllCounter::CountResult result;
  std::thread worker([&] {
    result = grounding::GroundedWFOMCBounded(phi, vocab, 6, options);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto cancelled_at = std::chrono::steady_clock::now();
  token.RequestCancel();
  worker.join();
  double latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    cancelled_at)
          .count();

  // Forked component tasks observe the shared stop flag at every
  // decision, so wind-down is bounded by one check interval per worker —
  // generous slack here for sanitizer builds and loaded CI machines.
  EXPECT_LT(latency_seconds, 10.0);
  EXPECT_EQ(result.outcome, CountOutcome::kBounds);
  EXPECT_EQ(result.stop_reason, StopReason::kCancelled);
  EXPECT_LE(result.value, result.upper);
}

TEST(BudgetCancellation, CancelBeforeStartReturnsImmediately) {
  Instance instance = MakeInstance(testutil::FuzzBaseSeed(7109), 12, 20);
  BigRational exact = ExactCount(instance);
  CancelToken token;
  token.RequestCancel();
  DpllCounter::Options options;
  options.cancel = &token;
  CountResult result = CountWithOptions(instance, options);
  ExpectBrackets(result, exact, "pre-cancelled token");
  if (result.outcome == CountOutcome::kBounds) {
    EXPECT_EQ(result.stop_reason, StopReason::kCancelled);
  }
}

TEST(BudgetCancellation, CountThrowsWhenGovernedRunStopsEarly) {
  // Some random instances collapse under unit propagation alone and stay
  // exact even with a zero decision cap — scan seeds until one actually
  // has to stop, then pin the throwing contract on it.
  const std::uint64_t base = testutil::FuzzBaseSeed(7110);
  bool exercised = false;
  for (int round = 0; round < 16 && !exercised; ++round) {
    Instance instance = MakeInstance(base + round, 13, 22);
    Budget probe_budget;
    probe_budget.SetMaxDecisions(0);
    DpllCounter::Options options;
    options.budget = &probe_budget;
    if (CountWithOptions(instance, options).outcome == CountOutcome::kExact) {
      continue;
    }
    Budget budget;
    budget.SetMaxDecisions(0);
    options.budget = &budget;
    DpllCounter counter(instance.cnf, instance.weights, options);
    EXPECT_THROW(counter.Count(), std::runtime_error);
    exercised = true;
  }
  EXPECT_TRUE(exercised) << "no seed in range required a decision";
}

// ---------------------------------------------------------------------
// Byte-accounted component cache.

wmc::ComponentKey MakeKey(std::uint32_t tag, std::size_t words) {
  wmc::ComponentKey key(words, tag);
  key.push_back(wmc::kComponentKeySeparator);
  return key;
}

TEST(CacheBytes, ResidentBytesTrackInsertionsExactly) {
  ComponentCache cache(/*max_entries=*/64);
  std::size_t expected_bytes = 0;
  for (std::uint32_t i = 0; i < 16; ++i) {
    wmc::ComponentKey key = MakeKey(i, 4 + i);
    BigRational value = BigRational::Fraction(3 * i + 1, 7);
    expected_bytes += ComponentCache::EntryBytes(key, value);
    cache.Insert(std::move(key), /*hash=*/i, std::move(value));
  }
  EXPECT_EQ(cache.size(), 16u);
  EXPECT_EQ(cache.bytes(), expected_bytes);
}

TEST(CacheBytes, ByteBoundDrivesEviction) {
  wmc::ComponentKey probe = MakeKey(0, 8);
  std::size_t per_entry =
      ComponentCache::EntryBytes(probe, BigRational(1));
  // Room for about four entries; the entry bound never binds.
  ComponentCache cache(/*max_entries=*/1024, /*max_bytes=*/4 * per_entry);
  for (std::uint32_t i = 0; i < 64; ++i) {
    cache.Insert(MakeKey(i, 8), /*hash=*/i, BigRational(1));
    EXPECT_LE(cache.bytes(), cache.max_bytes());
  }
  EXPECT_LE(cache.size(), 4u);
  EXPECT_GT(cache.size(), 0u);
  // The survivors are the most recent inserts (FIFO eviction).
  EXPECT_NE(cache.Lookup(MakeKey(63, 8), /*hash=*/63), nullptr);
}

TEST(CacheBytes, OversizedEntryIsSkippedNotThrashed) {
  wmc::ComponentKey small = MakeKey(1, 2);
  std::size_t small_bytes =
      ComponentCache::EntryBytes(small, BigRational(1));
  ComponentCache cache(/*max_entries=*/16, /*max_bytes=*/2 * small_bytes);
  cache.Insert(std::move(small), /*hash=*/1, BigRational(1));
  ASSERT_EQ(cache.size(), 1u);

  // An entry bigger than the whole byte bound must not evict everything
  // only to fail to fit anyway.
  cache.Insert(MakeKey(2, 4096), /*hash=*/2, BigRational(1));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Lookup(MakeKey(1, 2), /*hash=*/1), nullptr);
}

TEST(CacheBytes, ReplacementKeepsAccountingBalanced) {
  ComponentCache cache(/*max_entries=*/8);
  wmc::ComponentKey key = MakeKey(5, 4);
  cache.Insert(key, /*hash=*/5, BigRational(1));
  std::size_t bytes_small = cache.bytes();
  // Same key, much larger payload: the accounting must follow the
  // replacement, not accumulate. (Exact byte values depend on vector
  // and limb capacities, so assert the shape, not a magic number.)
  BigRational big = BigRational::Pow(BigRational::Fraction(7, 3), 64);
  cache.Insert(key, /*hash=*/5, big);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GT(cache.bytes(), bytes_small);
  // Replacing back with the small payload must release the difference.
  cache.Insert(key, /*hash=*/5, BigRational(1));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), bytes_small);
}

TEST(CacheBytes, CounterHonoursByteCeilingUnderBudgetMemoryLimit) {
  Instance instance = MakeInstance(testutil::FuzzBaseSeed(7111), 14, 24);
  BigRational exact = ExactCount(instance);
  Budget budget;
  budget.SetMaxMemoryBytes(1 << 12);  // 4 KiB cache ceiling
  DpllCounter::Options options;
  options.budget = &budget;
  DpllCounter::Stats stats;
  CountResult result = CountWithOptions(instance, options, &stats);
  // A memory ceiling alone never stops the search — it shrinks the
  // cache, trading hits for recomputation; the count stays exact.
  ASSERT_EQ(result.outcome, CountOutcome::kExact);
  EXPECT_EQ(result.value, exact);
  EXPECT_LE(stats.cache_bytes, std::uint64_t{1} << 12);
}

// ---------------------------------------------------------------------
// Engine surface: bounds through WFOMC/sweeps, aborts through compile.

TEST(BudgetEngine, SweepDegradesToBoundsThatBracketTheExactSweep) {
  logic::Vocabulary vocab;
  logic::Formula phi = logic::Parse(
      "exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))", &vocab);

  api::Engine exact_engine(vocab);
  api::Engine::SweepResult exact =
      exact_engine.WFOMCSweep(phi, 1, 4, api::Method::kGrounded);
  ASSERT_EQ(exact.outcome, api::Outcome::kExact);

  runtime::Budget budget;
  budget.SetMaxDecisions(8);  // drains across the whole sweep
  api::Engine::Options options;
  options.budget = &budget;
  api::Engine governed_engine(vocab, options);
  api::Engine::SweepResult governed =
      governed_engine.WFOMCSweep(phi, 1, 4, api::Method::kGrounded);

  ASSERT_EQ(governed.points.size(), exact.points.size());
  bool any_bounds = false;
  for (std::size_t i = 0; i < governed.points.size(); ++i) {
    const api::Engine::SweepPoint& point = governed.points[i];
    const BigRational& truth = exact.points[i].value;
    SCOPED_TRACE("n=" + std::to_string(point.domain_size));
    if (point.outcome == api::Outcome::kExact) {
      EXPECT_EQ(point.value, truth);
    } else {
      ASSERT_EQ(point.outcome, api::Outcome::kBounds);
      ASSERT_TRUE(point.bounds.has_value());
      EXPECT_LE(point.bounds->lower, truth);
      EXPECT_LE(truth, point.bounds->upper);
      any_bounds = true;
    }
  }
  EXPECT_TRUE(any_bounds);
  EXPECT_EQ(governed.outcome, api::Outcome::kBounds);
  EXPECT_EQ(governed.stop_reason, StopReason::kDecisions);
}

TEST(BudgetEngine, TryCompileDiscardsPartialTraceAndCompileThrows) {
  logic::Vocabulary vocab;
  logic::Formula phi = logic::Parse(
      "exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))", &vocab);

  runtime::Budget budget;
  budget.SetMaxDecisions(0);
  api::Engine::Options options;
  options.budget = &budget;
  api::Engine engine(vocab, options);

  api::Engine::CompileResult result = engine.TryCompile(phi, 3);
  EXPECT_EQ(result.outcome, api::Outcome::kAborted);
  EXPECT_EQ(result.stop_reason, StopReason::kDecisions);
  EXPECT_FALSE(result.compiled.has_value());

  EXPECT_THROW(engine.Compile(phi, 3), std::runtime_error);

  // The same engine with the cap lifted compiles fine — governance is
  // per-budget state, not a poisoned engine.
  budget.SetMaxDecisions(runtime::Budget::kUnlimited);
  api::Engine::CompileResult retry = engine.TryCompile(phi, 3);
  ASSERT_EQ(retry.outcome, api::Outcome::kExact);
  ASSERT_TRUE(retry.compiled.has_value());
  api::Engine ungoverned(vocab);
  EXPECT_EQ(retry.compiled->compile_count(),
            ungoverned.WFOMC(phi, 3, api::Method::kGrounded).value);
}

}  // namespace
}  // namespace swfomc
