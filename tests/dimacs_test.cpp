// DIMACS CNF interchange: round-trips, edge cases, and a pipeline check
// on a grounded lineage.

#include "prop/dimacs.h"

#include <gtest/gtest.h>

#include "grounding/grounded_wfomc.h"
#include "grounding/lineage.h"
#include "grounding/tuple_index.h"
#include "logic/parser.h"
#include "prop/tseitin.h"
#include "wmc/dpll_counter.h"

namespace swfomc::prop {
namespace {

TEST(DimacsTest, RendersHeaderAndClauses) {
  CnfFormula cnf;
  cnf.variable_count = 3;
  cnf.clauses = {{{0, true}, {1, false}}, {{2, true}}};
  EXPECT_EQ(ToDimacs(cnf), "p cnf 3 2\n1 -2 0\n3 0\n");
}

TEST(DimacsTest, ParsesWithCommentsAndBlankLines) {
  CnfFormula cnf = FromDimacs(
      "c a comment\n"
      "\n"
      "p cnf 2 2\n"
      "c interleaved\n"
      "1 2 0\n"
      "-1 0\n");
  EXPECT_EQ(cnf.variable_count, 2u);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0],
            (Clause{{0, true}, {1, true}}));
  EXPECT_EQ(cnf.clauses[1], (Clause{{0, false}}));
}

TEST(DimacsTest, ParsesMultiLineClause) {
  CnfFormula cnf = FromDimacs("p cnf 3 1\n1\n2\n-3 0\n");
  ASSERT_EQ(cnf.clauses.size(), 1u);
  EXPECT_EQ(cnf.clauses[0].size(), 3u);
}

TEST(DimacsTest, RoundTripsRandomishCnf) {
  CnfFormula cnf;
  cnf.variable_count = 5;
  cnf.clauses = {{{0, true}, {4, false}},
                 {{1, false}, {2, true}, {3, true}},
                 {},
                 {{4, true}}};
  CnfFormula reparsed = FromDimacs(ToDimacs(cnf));
  EXPECT_EQ(reparsed.variable_count, cnf.variable_count);
  EXPECT_EQ(reparsed.clauses, cnf.clauses);
}

TEST(DimacsTest, RejectsMalformedInputs) {
  EXPECT_THROW(FromDimacs(""), std::invalid_argument);
  EXPECT_THROW(FromDimacs("1 2 0\n"), std::invalid_argument);
  EXPECT_THROW(FromDimacs("p cnf x y\n"), std::invalid_argument);
  EXPECT_THROW(FromDimacs("p cnf 2 1\n3 0\n"), std::invalid_argument);
  EXPECT_THROW(FromDimacs("p cnf 2 1\n1 2\n"), std::invalid_argument);
  EXPECT_THROW(FromDimacs("p cnf 2 2\n1 0\n"), std::invalid_argument);
  EXPECT_THROW(FromDimacs("p cnf 2 1\n1 zz 0\n"), std::invalid_argument);
}

TEST(DimacsTest, GroundedLineageSurvivesRoundTrip) {
  // Ground a sentence, Tseitin it, round-trip through DIMACS, and check
  // the model count is unchanged.
  logic::Vocabulary vocab;
  logic::Formula phi =
      logic::Parse("forall x exists y R(x,y)", &vocab);
  grounding::TupleIndex index(vocab, 3);
  PropFormula lineage = grounding::GroundLineage(phi, index);
  TseitinResult encoded = TseitinTransform(
      lineage, static_cast<std::uint32_t>(index.TupleCount()));

  CnfFormula reparsed = FromDimacs(ToDimacs(encoded.cnf));
  wmc::WeightMap weights(reparsed.variable_count);
  numeric::BigRational count =
      wmc::CountWeightedModels(std::move(reparsed), std::move(weights));
  // (2^3 - 1)^3 = 343.
  EXPECT_EQ(count, numeric::BigRational(343));
}

}  // namespace
}  // namespace swfomc::prop
