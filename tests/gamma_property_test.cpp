// Property sweeps for the Theorem 3.6 evaluator: on random γ-acyclic
// queries with random probabilities and per-variable domain sizes, the
// lifted evaluator must agree with typed grounding (and with the generic
// sentence-grounding path under the standard semantics).

#include <gtest/gtest.h>

#include <random>

#include "cq/acyclicity.h"
#include "cq/gamma_evaluator.h"
#include "cq/hypergraph.h"
#include "cq/typed_cycle.h"
#include "grounding/grounded_wfomc.h"
#include "test_util.h"

namespace swfomc::cq {
namespace {

using numeric::BigInt;
using numeric::BigRational;
using testutil::MakeRandomTreeQuery;

class GammaSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GammaSweep, TreeQueriesAreGammaAcyclic) {
  ConjunctiveQuery query = MakeRandomTreeQuery(GetParam(), 4);
  EXPECT_TRUE(IsGammaAcyclic(BuildHypergraph(query)))
      << query.ToString();
}

TEST_P(GammaSweep, EvaluatorMatchesTypedGroundingUniformDomains) {
  ConjunctiveQuery query = MakeRandomTreeQuery(GetParam(), 4);
  GammaEvaluator evaluator;
  for (std::uint64_t n = 1; n <= 2; ++n) {
    EXPECT_EQ(evaluator.Probability(query, n),
              TypedGroundedProbability(query, n))
        << query.ToString() << " at n=" << n;
  }
}

TEST_P(GammaSweep, EvaluatorMatchesTypedGroundingPerVariableDomains) {
  ConjunctiveQuery query = MakeRandomTreeQuery(GetParam(), 3);
  std::mt19937_64 rng(GetParam() * 977);
  std::map<std::string, std::uint64_t> domains;
  std::map<std::string, BigInt> big_domains;
  for (const std::string& v : query.Variables()) {
    std::uint64_t size = 1 + rng() % 3;
    domains[v] = size;
    big_domains[v] = BigInt(size);
  }
  GammaEvaluator evaluator;
  EXPECT_EQ(evaluator.Probability(query, big_domains),
            TypedGroundedProbability(query, domains))
      << query.ToString();
}

TEST_P(GammaSweep, EvaluatorMatchesSentenceGrounding) {
  ConjunctiveQuery query = MakeRandomTreeQuery(GetParam(), 3);
  auto [sentence, vocab] = query.ToSentence();
  GammaEvaluator evaluator;
  for (std::uint64_t n = 1; n <= 2; ++n) {
    EXPECT_EQ(evaluator.Probability(query, n),
              grounding::GroundedProbability(sentence, vocab, n))
        << query.ToString() << " at n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GammaSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace swfomc::cq
