// Property sweeps for the Theorem 3.6 evaluator: on random γ-acyclic
// queries with random probabilities and per-variable domain sizes, the
// lifted evaluator must agree with typed grounding (and with the generic
// sentence-grounding path under the standard semantics).

#include <gtest/gtest.h>

#include <random>

#include "cq/acyclicity.h"
#include "cq/gamma_evaluator.h"
#include "cq/hypergraph.h"
#include "cq/typed_cycle.h"
#include "grounding/grounded_wfomc.h"

namespace swfomc::cq {
namespace {

using numeric::BigInt;
using numeric::BigRational;

// Random tree-shaped (hence γ-acyclic) query: atoms R1..Rk, each new atom
// shares exactly one variable with an earlier atom and introduces one
// fresh variable — a random spanning tree over variables.
ConjunctiveQuery MakeRandomTreeQuery(std::uint64_t seed, std::size_t atoms) {
  std::mt19937_64 rng(seed);
  ConjunctiveQuery query;
  std::vector<std::string> variables = {"v0", "v1"};
  query.AddAtom("R1", {"v0", "v1"});
  for (std::size_t i = 2; i <= atoms; ++i) {
    std::string shared = variables[rng() % variables.size()];
    std::string fresh = "v" + std::to_string(variables.size());
    variables.push_back(fresh);
    // Random atom shape: binary, or unary on the fresh variable.
    if (rng() % 4 == 0) {
      query.AddAtom("R" + std::to_string(i), {fresh});
    } else if (rng() % 2 == 0) {
      query.AddAtom("R" + std::to_string(i), {shared, fresh});
    } else {
      query.AddAtom("R" + std::to_string(i), {fresh, shared});
    }
  }
  for (const ConjunctiveQuery::QueryAtom& atom : query.atoms()) {
    std::int64_t numerator = static_cast<std::int64_t>(1 + rng() % 3);
    query.SetProbability(atom.relation,
                         BigRational::Fraction(numerator, 4));
  }
  return query;
}

class GammaSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GammaSweep, TreeQueriesAreGammaAcyclic) {
  ConjunctiveQuery query = MakeRandomTreeQuery(GetParam(), 4);
  EXPECT_TRUE(IsGammaAcyclic(BuildHypergraph(query)))
      << query.ToString();
}

TEST_P(GammaSweep, EvaluatorMatchesTypedGroundingUniformDomains) {
  ConjunctiveQuery query = MakeRandomTreeQuery(GetParam(), 4);
  GammaEvaluator evaluator;
  for (std::uint64_t n = 1; n <= 2; ++n) {
    EXPECT_EQ(evaluator.Probability(query, n),
              TypedGroundedProbability(query, n))
        << query.ToString() << " at n=" << n;
  }
}

TEST_P(GammaSweep, EvaluatorMatchesTypedGroundingPerVariableDomains) {
  ConjunctiveQuery query = MakeRandomTreeQuery(GetParam(), 3);
  std::mt19937_64 rng(GetParam() * 977);
  std::map<std::string, std::uint64_t> domains;
  std::map<std::string, BigInt> big_domains;
  for (const std::string& v : query.Variables()) {
    std::uint64_t size = 1 + rng() % 3;
    domains[v] = size;
    big_domains[v] = BigInt(size);
  }
  GammaEvaluator evaluator;
  EXPECT_EQ(evaluator.Probability(query, big_domains),
            TypedGroundedProbability(query, domains))
      << query.ToString();
}

TEST_P(GammaSweep, EvaluatorMatchesSentenceGrounding) {
  ConjunctiveQuery query = MakeRandomTreeQuery(GetParam(), 3);
  auto [sentence, vocab] = query.ToSentence();
  GammaEvaluator evaluator;
  for (std::uint64_t n = 1; n <= 2; ++n) {
    EXPECT_EQ(evaluator.Probability(query, n),
              grounding::GroundedProbability(sentence, vocab, n))
        << query.ToString() << " at n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GammaSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace swfomc::cq
