// Cross-engine property sweeps: every engine that claims to compute
// symmetric WFOMC must agree with every other on its shared fragment.
// Random seeded FO² sentences are pushed through
//   * the lifted cell algorithm (Appendix C),
//   * the grounded lineage + DPLL engine,
//   * exhaustive world enumeration (small n),
// and the Lemma 3.3 Skolemization is verified to preserve WFOMC on the
// same random family (the property that pins the (1,-1) cancellation).

#include <gtest/gtest.h>

#include "fo2/cell_algorithm.h"
#include "grounding/grounded_wfomc.h"
#include "logic/formula.h"
#include "logic/printer.h"
#include "logic/transform.h"
#include "logic/vocabulary.h"
#include "test_util.h"
#include "transforms/skolemization.h"

namespace swfomc {
namespace {

using numeric::BigRational;
using testutil::MakeRandomFO2Sentence;
using testutil::RandomSentence;

class CrossEngineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossEngineSweep, LiftedEqualsGrounded) {
  RandomSentence random = MakeRandomFO2Sentence(GetParam());
  for (std::uint64_t n = 1; n <= 3; ++n) {
    BigRational lifted =
        fo2::LiftedWFOMC(random.sentence, random.vocabulary, n);
    BigRational grounded =
        grounding::GroundedWFOMC(random.sentence, random.vocabulary, n);
    EXPECT_EQ(lifted, grounded)
        << logic::ToString(random.sentence, random.vocabulary) << " at n="
        << n;
  }
}

TEST_P(CrossEngineSweep, GroundedEqualsExhaustive) {
  RandomSentence random = MakeRandomFO2Sentence(GetParam());
  // Exhaustive enumeration: 2^(n^2 + 2n) worlds — n = 2 means 256.
  for (std::uint64_t n = 1; n <= 2; ++n) {
    BigRational grounded =
        grounding::GroundedWFOMC(random.sentence, random.vocabulary, n);
    BigRational exhaustive =
        grounding::ExhaustiveWFOMC(random.sentence, random.vocabulary, n);
    EXPECT_EQ(grounded, exhaustive)
        << logic::ToString(random.sentence, random.vocabulary) << " at n="
        << n;
  }
}

TEST_P(CrossEngineSweep, SkolemizationPreservesWfomc) {
  RandomSentence random = MakeRandomFO2Sentence(GetParam());
  transforms::RewriteResult rewritten =
      transforms::Skolemize(random.sentence, random.vocabulary);
  EXPECT_FALSE(logic::ContainsExistentialInNNFSense(rewritten.sentence));
  for (std::uint64_t n = 1; n <= 2; ++n) {
    BigRational before =
        grounding::GroundedWFOMC(random.sentence, random.vocabulary, n);
    BigRational after = grounding::GroundedWFOMC(rewritten.sentence,
                                                 rewritten.vocabulary, n);
    EXPECT_EQ(before, after)
        << logic::ToString(random.sentence, random.vocabulary) << " at n="
        << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossEngineSweep,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace swfomc
