// Cross-engine property sweeps: every engine that claims to compute
// symmetric WFOMC must agree with every other on its shared fragment.
// Random seeded FO² sentences are pushed through
//   * the lifted cell algorithm (Appendix C),
//   * the grounded lineage + DPLL engine,
//   * exhaustive world enumeration (small n),
// and the Lemma 3.3 Skolemization is verified to preserve WFOMC on the
// same random family (the property that pins the (1,-1) cancellation).

#include <gtest/gtest.h>

#include <random>

#include "fo2/cell_algorithm.h"
#include "grounding/grounded_wfomc.h"
#include "logic/formula.h"
#include "logic/printer.h"
#include "logic/transform.h"
#include "logic/vocabulary.h"
#include "transforms/skolemization.h"

namespace swfomc {
namespace {

using logic::Formula;
using numeric::BigRational;

struct RandomSentence {
  Formula sentence;
  logic::Vocabulary vocabulary;
};

// Random FO² sentence over {U/1, V/1, R/2}: a random quantifier-free
// matrix over the eight atoms on {x, y}, wrapped in a random two-variable
// quantifier prefix. Weight pattern varies with the seed and includes
// fractional and negative weights (both engines are exact).
RandomSentence MakeRandomSentence(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  RandomSentence result;
  auto pick_weight = [&]() {
    switch (rng() % 5) {
      case 0: return BigRational(1);
      case 1: return BigRational(2);
      case 2: return BigRational::Fraction(1, 2);
      case 3: return BigRational(3);
      default: return BigRational(-1);
    }
  };
  logic::RelationId u =
      result.vocabulary.AddRelation("U", 1, pick_weight(), BigRational(1));
  logic::RelationId v =
      result.vocabulary.AddRelation("V", 1, pick_weight(), BigRational(1));
  logic::RelationId r =
      result.vocabulary.AddRelation("R", 2, pick_weight(), pick_weight());

  auto var = [](const char* name) { return logic::Term::Var(name); };
  std::vector<Formula> atoms = {
      logic::Atom(u, {var("x")}),          logic::Atom(u, {var("y")}),
      logic::Atom(v, {var("x")}),          logic::Atom(v, {var("y")}),
      logic::Atom(r, {var("x"), var("y")}), logic::Atom(r, {var("y"), var("x")}),
      logic::Atom(r, {var("x"), var("x")}), logic::Atom(r, {var("y"), var("y")}),
  };
  // Random matrix: a small tree of connectives over random atoms.
  std::function<Formula(int)> matrix = [&](int depth) -> Formula {
    if (depth == 0 || rng() % 3 == 0) {
      Formula atom = atoms[rng() % atoms.size()];
      return rng() % 2 ? logic::Not(atom) : atom;
    }
    Formula a = matrix(depth - 1);
    Formula b = matrix(depth - 1);
    switch (rng() % 3) {
      case 0: return logic::And(std::move(a), std::move(b));
      case 1: return logic::Or(std::move(a), std::move(b));
      default: return logic::Implies(std::move(a), std::move(b));
    }
  };
  Formula body = matrix(2);
  switch (rng() % 4) {
    case 0:
      result.sentence = logic::Forall("x", logic::Forall("y", body));
      break;
    case 1:
      result.sentence = logic::Forall("x", logic::Exists("y", body));
      break;
    case 2:
      result.sentence = logic::Exists("x", logic::Forall("y", body));
      break;
    default:
      result.sentence = logic::Exists("x", logic::Exists("y", body));
      break;
  }
  return result;
}

class CrossEngineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossEngineSweep, LiftedEqualsGrounded) {
  RandomSentence random = MakeRandomSentence(GetParam());
  for (std::uint64_t n = 1; n <= 3; ++n) {
    BigRational lifted =
        fo2::LiftedWFOMC(random.sentence, random.vocabulary, n);
    BigRational grounded =
        grounding::GroundedWFOMC(random.sentence, random.vocabulary, n);
    EXPECT_EQ(lifted, grounded)
        << logic::ToString(random.sentence, random.vocabulary) << " at n="
        << n;
  }
}

TEST_P(CrossEngineSweep, GroundedEqualsExhaustive) {
  RandomSentence random = MakeRandomSentence(GetParam());
  // Exhaustive enumeration: 2^(n^2 + 2n) worlds — n = 2 means 256.
  for (std::uint64_t n = 1; n <= 2; ++n) {
    BigRational grounded =
        grounding::GroundedWFOMC(random.sentence, random.vocabulary, n);
    BigRational exhaustive =
        grounding::ExhaustiveWFOMC(random.sentence, random.vocabulary, n);
    EXPECT_EQ(grounded, exhaustive)
        << logic::ToString(random.sentence, random.vocabulary) << " at n="
        << n;
  }
}

TEST_P(CrossEngineSweep, SkolemizationPreservesWfomc) {
  RandomSentence random = MakeRandomSentence(GetParam());
  transforms::RewriteResult rewritten =
      transforms::Skolemize(random.sentence, random.vocabulary);
  EXPECT_FALSE(logic::ContainsExistentialInNNFSense(rewritten.sentence));
  for (std::uint64_t n = 1; n <= 2; ++n) {
    BigRational before =
        grounding::GroundedWFOMC(random.sentence, random.vocabulary, n);
    BigRational after = grounding::GroundedWFOMC(rewritten.sentence,
                                                 rewritten.vocabulary, n);
    EXPECT_EQ(before, after)
        << logic::ToString(random.sentence, random.vocabulary) << " at n="
        << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossEngineSweep,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace swfomc
