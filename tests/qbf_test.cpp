// QBF: the reference solver and the Theorem 4.1(2) reduction from QBF
// validity to spectrum membership for full FO.

#include "reductions/qbf.h"

#include <gtest/gtest.h>

#include "logic/transform.h"

namespace swfomc::reductions {
namespace {

using prop::PropAnd;
using prop::PropFormula;
using prop::PropNot;
using prop::PropOr;
using prop::PropVar;

QuantifiedBooleanFormula Qbf(std::vector<std::pair<char, prop::VarId>> prefix,
                             PropFormula matrix) {
  QuantifiedBooleanFormula qbf;
  for (auto [q, v] : prefix) {
    qbf.prefix.push_back({q == 'A', v});
  }
  qbf.matrix = std::move(matrix);
  return qbf;
}

// --- the reference solver ------------------------------------------------

TEST(QbfSolverTest, ForallExistsXor) {
  // ∀X0 ∃X1 (X0 xor X1): valid.
  PropFormula matrix = PropOr(PropAnd(PropVar(0), PropNot(PropVar(1))),
                              PropAnd(PropNot(PropVar(0)), PropVar(1)));
  EXPECT_TRUE(EvaluateQbf(Qbf({{'A', 0}, {'E', 1}}, matrix)));
  // ∃X1 ∀X0 (X0 xor X1): invalid (X1 cannot match both X0 values).
  EXPECT_FALSE(EvaluateQbf(Qbf({{'E', 1}, {'A', 0}}, matrix)));
}

TEST(QbfSolverTest, QuantifierOrderMatters) {
  // ∀X0 ∃X1 (X0 -> X1) valid; ∃X1 ∀X0 (X0 <-> X1) invalid.
  PropFormula implies = PropOr(PropNot(PropVar(0)), PropVar(1));
  EXPECT_TRUE(EvaluateQbf(Qbf({{'A', 0}, {'E', 1}}, implies)));
  PropFormula iff = PropOr(PropAnd(PropVar(0), PropVar(1)),
                           PropAnd(PropNot(PropVar(0)), PropNot(PropVar(1))));
  EXPECT_FALSE(EvaluateQbf(Qbf({{'E', 1}, {'A', 0}}, iff)));
  EXPECT_TRUE(EvaluateQbf(Qbf({{'A', 0}, {'E', 1}}, iff)));
}

TEST(QbfSolverTest, AllUniversalTautologyAndContradiction) {
  PropFormula tautology = PropOr(PropVar(0), PropNot(PropVar(0)));
  EXPECT_TRUE(EvaluateQbf(Qbf({{'A', 0}, {'A', 1}}, tautology)));
  PropFormula contradiction = PropAnd(PropVar(0), PropNot(PropVar(0)));
  EXPECT_FALSE(EvaluateQbf(Qbf({{'A', 0}, {'A', 1}}, contradiction)));
  EXPECT_FALSE(EvaluateQbf(Qbf({{'E', 0}, {'E', 1}}, contradiction)));
}

TEST(QbfSolverTest, RejectsDoubleQuantification) {
  EXPECT_THROW(EvaluateQbf(Qbf({{'A', 0}, {'E', 0}}, PropVar(0))),
               std::invalid_argument);
}

TEST(QbfSolverTest, ThreeVariableAlternation) {
  // ∀X0 ∃X1 ∀X2 ((X0 xor X1) | X2) — X1 := ¬X0 satisfies regardless of
  // X2: valid.
  PropFormula matrix =
      PropOr(PropOr(PropAnd(PropVar(0), PropNot(PropVar(1))),
                    PropAnd(PropNot(PropVar(0)), PropVar(1))),
             PropVar(2));
  EXPECT_TRUE(
      EvaluateQbf(Qbf({{'A', 0}, {'E', 1}, {'A', 2}}, matrix)));
  // ∀X0 ∀X1 ∃X2 ((X0 xor X1) & ¬X2) — fails when X0 == X1: invalid.
  PropFormula matrix2 =
      PropAnd(PropOr(PropAnd(PropVar(0), PropNot(PropVar(1))),
                     PropAnd(PropNot(PropVar(0)), PropVar(1))),
              PropNot(PropVar(2)));
  EXPECT_FALSE(
      EvaluateQbf(Qbf({{'A', 0}, {'A', 1}, {'E', 2}}, matrix2)));
}

// --- the reduction -------------------------------------------------------

TEST(QbfReductionTest, EncodingShape) {
  PropFormula matrix = PropOr(PropVar(0), PropVar(1));
  QbfReduction reduction = EncodeQbf(Qbf({{'E', 0}, {'E', 1}}, matrix));
  EXPECT_EQ(reduction.domain_size, 3u);
  // Vocabulary: A, B, C unary; R binary; S ternary.
  EXPECT_EQ(reduction.vocabulary.size(), 5u);
  EXPECT_EQ(reduction.vocabulary.arity(reduction.vocabulary.Require("S")),
            3u);
  EXPECT_TRUE(logic::IsSentence(reduction.sentence));
}

TEST(QbfReductionTest, RejectsDegenerateInputs) {
  EXPECT_THROW(EncodeQbf(Qbf({{'A', 0}}, PropVar(0))),
               std::invalid_argument);
  EXPECT_THROW(EncodeQbf(Qbf({{'A', 0}, {'A', 3}}, PropVar(0))),
               std::invalid_argument);
}

struct QbfCase {
  const char* name;
  std::vector<std::pair<char, prop::VarId>> prefix;
  int matrix_id;
};

PropFormula MatrixById(int id) {
  switch (id) {
    case 0:  // X0 xor X1
      return PropOr(PropAnd(PropVar(0), PropNot(PropVar(1))),
                    PropAnd(PropNot(PropVar(0)), PropVar(1)));
    case 1:  // X0 -> X1
      return PropOr(PropNot(PropVar(0)), PropVar(1));
    case 2:  // X0 & X1
      return PropAnd(PropVar(0), PropVar(1));
    case 3:  // X0 | X1
      return PropOr(PropVar(0), PropVar(1));
    default:
      throw std::logic_error("bad matrix id");
  }
}

class QbfReductionAgreement : public ::testing::TestWithParam<QbfCase> {};

TEST_P(QbfReductionAgreement, SpectrumMatchesSolver) {
  const QbfCase& c = GetParam();
  QuantifiedBooleanFormula qbf = Qbf(c.prefix, MatrixById(c.matrix_id));
  EXPECT_EQ(QbfValidViaSpectrum(qbf), EvaluateQbf(qbf)) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    TwoVariable, QbfReductionAgreement,
    ::testing::Values(
        QbfCase{"forall-exists-xor", {{'A', 0}, {'E', 1}}, 0},
        QbfCase{"exists-forall-xor", {{'E', 1}, {'A', 0}}, 0},
        QbfCase{"forall-exists-implies", {{'A', 0}, {'E', 1}}, 1},
        QbfCase{"forall-forall-implies", {{'A', 0}, {'A', 1}}, 1},
        QbfCase{"exists-exists-and", {{'E', 0}, {'E', 1}}, 2},
        QbfCase{"forall-forall-and", {{'A', 0}, {'A', 1}}, 2},
        QbfCase{"forall-exists-or", {{'A', 0}, {'E', 1}}, 3},
        QbfCase{"forall-forall-or", {{'A', 0}, {'A', 1}}, 3}),
    [](const ::testing::TestParamInfo<QbfCase>& info) {
      std::string name = info.param.name;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace swfomc::reductions
