// Cross-engine differential fuzzing at the Engine level: the paper's
// routing invariant says the lifted FO² cell algorithm, the γ-acyclic
// evaluator, and the grounded DPLL counter compute the *same* WFOMC on
// their shared fragments, so random instances of those fragments are an
// oracle-free test — any disagreement is a bug in one of the engines.
//
// Seeds are deterministic (committed base seed 1) but rotatable: CI sets
// SWFOMC_FUZZ_SEED to the run id so every pipeline run explores a fresh
// slice of instance space, and the base seed is logged on stdout and in
// the test XML so failures replay exactly.
//
// This suite is tier-1: instance counts and domain sizes are chosen to
// keep it in the low seconds. The `slow` cross_engine_test sweep covers
// the same FO² family against exhaustive enumeration and Skolemization.

#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>

#include "api/engine.h"
#include "cq/acyclicity.h"
#include "cq/hypergraph.h"
#include "logic/printer.h"
#include "nnf/circuit.h"
#include "nnf/circuit_builder.h"
#include "test_util.h"
#include "wmc/brute_force.h"
#include "wmc/dpll_counter.h"

namespace swfomc {
namespace {

using api::Engine;
using api::Method;
using numeric::BigRational;
using testutil::FuzzBaseSeed;
using testutil::MakeRandomFO2Sentence;
using testutil::MakeRandomGammaAcyclicSentence;
using testutil::RandomSentence;

constexpr std::uint64_t kDefaultBaseSeed = 1;

std::uint64_t BaseSeed() {
  static std::uint64_t seed = [] {
    std::uint64_t value = FuzzBaseSeed(kDefaultBaseSeed);
    // Log unconditionally so a rotated-seed CI failure names its seed.
    std::cout << "[differential_fuzz] SWFOMC_FUZZ_SEED base = " << value
              << std::endl;
    return value;
  }();
  return seed;
}

TEST(DifferentialFuzz, LiftedFO2AgreesWithGrounded) {
  std::uint64_t base = BaseSeed();
  ::testing::Test::RecordProperty("fuzz_base_seed",
                                  static_cast<int64_t>(base));
  for (std::uint64_t offset = 0; offset < 12; ++offset) {
    std::uint64_t seed = base + offset;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    RandomSentence random = MakeRandomFO2Sentence(seed);
    Engine engine(random.vocabulary);
    // The generator stays inside the lifted fragment by construction, so
    // Auto must never fall back to grounding. (A sentence that happens to
    // be a positive existential conjunction routes to the γ-acyclic
    // evaluator instead of the cell algorithm — still lifted.)
    ASSERT_NE(engine.Route(random.sentence), Method::kGrounded)
        << logic::ToString(random.sentence, random.vocabulary);
    for (std::uint64_t n = 1; n <= 3; ++n) {
      SCOPED_TRACE("n=" + std::to_string(n));
      Engine::Result lifted =
          engine.WFOMC(random.sentence, n, Method::kLiftedFO2);
      Engine::Result grounded =
          engine.WFOMC(random.sentence, n, Method::kGrounded);
      EXPECT_EQ(lifted.value, grounded.value)
          << logic::ToString(random.sentence, random.vocabulary);
    }
  }
}

TEST(DifferentialFuzz, GammaAcyclicAgreesWithGrounded) {
  std::uint64_t base = BaseSeed();
  for (std::uint64_t offset = 0; offset < 12; ++offset) {
    std::uint64_t seed = base + offset;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    // 2-3 atoms: the grounded oracle's lineage grows as n^|vars|, and a
    // 4-atom chain already costs ~30s at n=3 — structurally bounded here
    // so rotated CI seeds can't blow the tier-1 budget.
    RandomSentence random =
        MakeRandomGammaAcyclicSentence(seed, /*atoms=*/2 + seed % 2);
    Engine engine(random.vocabulary);
    // Tree-shaped queries are γ-acyclic by construction, so Auto must
    // route them to the Theorem 3.6 evaluator.
    ASSERT_EQ(engine.Route(random.sentence), Method::kGammaAcyclic)
        << logic::ToString(random.sentence, random.vocabulary);
    for (std::uint64_t n = 1; n <= 3; ++n) {
      SCOPED_TRACE("n=" + std::to_string(n));
      Engine::Result gamma =
          engine.WFOMC(random.sentence, n, Method::kGammaAcyclic);
      Engine::Result grounded =
          engine.WFOMC(random.sentence, n, Method::kGrounded);
      EXPECT_EQ(gamma.value, grounded.value)
          << logic::ToString(random.sentence, random.vocabulary);
    }
  }
}

TEST(DifferentialFuzz, BoundaryWeightsAgreeAcrossCounterAndCircuit) {
  // Weights pinned a few units off ±2^62 make every multiply cross the
  // BigInt inline/heap seam and every reduced sum land back inside it —
  // the regime where a promote/demote or deferred-gcd bug would show as
  // a cross-engine disagreement. Oracle: brute-force enumeration; under
  // test: the DPLL counter (sequential and 4-thread) and the traced
  // d-DNNF circuit evaluated under the same weights. All four values
  // must be bit-identical.
  std::uint64_t base = BaseSeed();
  std::mt19937_64 rng(base ^ 0xb0a2d2e1ull);
  for (int trial = 0; trial < 10; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    prop::CnfFormula cnf = testutil::RandomCnf(&rng, 8, 10, 3);
    wmc::WeightMap weights = testutil::RandomBoundaryWeights(&rng, 8);
    BigRational oracle = wmc::BruteForceWMC(cnf, weights);

    nnf::CircuitBuilder builder(cnf.variable_count);
    wmc::DpllCounter::Options trace_options;
    trace_options.trace_sink = &builder;
    wmc::DpllCounter tracing(cnf, weights, trace_options);
    EXPECT_EQ(tracing.Count(), oracle);
    nnf::Circuit circuit = builder.Finish();
    EXPECT_EQ(circuit.Evaluate(weights), oracle);
    // Serving form: the same circuit through a reused arena.
    nnf::Circuit::EvalArena arena;
    EXPECT_EQ(circuit.Evaluate(weights, &arena), oracle);
    EXPECT_EQ(circuit.Evaluate(weights, &arena), oracle);

    for (unsigned threads : {1u, 4u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      wmc::DpllCounter::Options options;
      options.num_threads = threads;
      wmc::DpllCounter counter(cnf, weights, options);
      EXPECT_EQ(counter.Count(), oracle);
    }
  }
}

TEST(DifferentialFuzz, SweepCoversDomainSizeZero) {
  // n = 0 takes a direct-evaluation path on the lifted route (the normal
  // form assumes a non-empty domain); a sweep starting at 0 must match
  // the per-point calls anyway.
  RandomSentence random = MakeRandomFO2Sentence(BaseSeed());
  Engine engine(random.vocabulary);
  Engine::SweepResult sweep =
      engine.WFOMCSweep(random.sentence, 0, 2, Method::kLiftedFO2);
  ASSERT_EQ(sweep.points.size(), 3u);
  for (const Engine::SweepPoint& point : sweep.points) {
    SCOPED_TRACE("n=" + std::to_string(point.domain_size));
    EXPECT_EQ(point.value,
              engine.WFOMC(random.sentence, point.domain_size,
                           Method::kLiftedFO2)
                  .value);
  }
}

TEST(DifferentialFuzz, SweepMatchesPointQueriesOnAllRoutes) {
  // WFOMCSweep must be a pure batching of WFOMC: same values, same
  // routing, for each of the three engines — including the grounded path
  // both sequential and parallel.
  std::uint64_t base = BaseSeed();
  for (std::uint64_t offset = 0; offset < 4; ++offset) {
    std::uint64_t seed = base + offset;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    RandomSentence fo2 = MakeRandomFO2Sentence(seed);
    RandomSentence gamma = MakeRandomGammaAcyclicSentence(seed, 3);
    struct Case {
      RandomSentence* instance;
      Method method;
    } cases[] = {
        {&fo2, Method::kLiftedFO2},
        {&fo2, Method::kGrounded},
        {&gamma, Method::kGammaAcyclic},
    };
    for (const Case& c : cases) {
      SCOPED_TRACE(api::ToString(c.method));
      for (unsigned threads : {1u, 4u}) {
        Engine engine(c.instance->vocabulary, Engine::Options{threads});
        Engine::SweepResult sweep =
            engine.WFOMCSweep(c.instance->sentence, 1, 3, c.method);
        ASSERT_EQ(sweep.points.size(), 3u);
        EXPECT_EQ(sweep.method, c.method);
        for (const Engine::SweepPoint& point : sweep.points) {
          SCOPED_TRACE("n=" + std::to_string(point.domain_size));
          Engine::Result reference =
              engine.WFOMC(c.instance->sentence, point.domain_size, c.method);
          EXPECT_EQ(point.value, reference.value)
              << logic::ToString(c.instance->sentence, c.instance->vocabulary);
        }
      }
    }
  }
}

}  // namespace
}  // namespace swfomc
