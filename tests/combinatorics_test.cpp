#include "numeric/combinatorics.h"

#include <gtest/gtest.h>

namespace swfomc::numeric {
namespace {

TEST(FactorialTest, SmallValues) {
  EXPECT_EQ(Factorial(0).ToInt64(), 1);
  EXPECT_EQ(Factorial(1).ToInt64(), 1);
  EXPECT_EQ(Factorial(5).ToInt64(), 120);
  EXPECT_EQ(Factorial(12).ToInt64(), 479001600);
}

TEST(FactorialTest, LargeValue) {
  EXPECT_EQ(Factorial(25).ToString(), "15511210043330985984000000");
}

TEST(BinomialTest, PascalIdentity) {
  for (std::uint64_t n = 1; n <= 20; ++n) {
    for (std::uint64_t k = 1; k <= n; ++k) {
      EXPECT_EQ(Binomial(n, k), Binomial(n - 1, k - 1) + Binomial(n - 1, k));
    }
  }
}

TEST(BinomialTest, Boundaries) {
  EXPECT_EQ(Binomial(10, 0).ToInt64(), 1);
  EXPECT_EQ(Binomial(10, 10).ToInt64(), 1);
  EXPECT_EQ(Binomial(10, 11).ToInt64(), 0);
  EXPECT_EQ(Binomial(0, 0).ToInt64(), 1);
  EXPECT_EQ(Binomial(52, 5).ToInt64(), 2598960);
}

TEST(BinomialTest, RowSumsArePowersOfTwo) {
  for (std::uint64_t n = 0; n <= 16; ++n) {
    BigInt sum(0);
    for (std::uint64_t k = 0; k <= n; ++k) sum += Binomial(n, k);
    EXPECT_EQ(sum, BigInt::Pow(BigInt(2), n));
  }
}

TEST(BinomialTest, BigIntUpperIndex) {
  BigInt big = BigInt::FromString("1000000000000");
  // C(10^12, 2) = 10^12 * (10^12 - 1) / 2.
  EXPECT_EQ(Binomial(big, 2).ToString(), "499999999999500000000000");
  EXPECT_EQ(Binomial(big, 0).ToInt64(), 1);
  EXPECT_EQ(Binomial(BigInt(3), 5).ToInt64(), 0);
  EXPECT_THROW(Binomial(BigInt(-1), 2), std::domain_error);
}

TEST(MultinomialTest, MatchesFactorialFormula) {
  // 7! / (2! 2! 3!) = 210.
  EXPECT_EQ(Multinomial(7, {2, 2, 3}).ToInt64(), 210);
  EXPECT_EQ(Multinomial(5, {5}).ToInt64(), 1);
  EXPECT_EQ(Multinomial(4, {1, 1, 1, 1}).ToInt64(), 24);
  EXPECT_EQ(Multinomial(0, {0, 0}).ToInt64(), 1);
}

TEST(MultinomialTest, MismatchedPartsThrow) {
  EXPECT_THROW(Multinomial(5, {2, 2}), std::invalid_argument);
}

TEST(CompositionTest, EnumeratesAllWeakCompositions) {
  std::vector<std::vector<std::uint64_t>> seen;
  ForEachComposition(3, 2, [&](const std::vector<std::uint64_t>& c) {
    seen.push_back(c);
    return true;
  });
  std::vector<std::vector<std::uint64_t>> expected = {
      {0, 3}, {1, 2}, {2, 1}, {3, 0}};
  EXPECT_EQ(seen, expected);
}

TEST(CompositionTest, CountMatchesEnumeration) {
  for (std::uint64_t total = 0; total <= 6; ++total) {
    for (std::size_t parts = 1; parts <= 4; ++parts) {
      std::uint64_t count = 0;
      ForEachComposition(total, parts,
                         [&](const std::vector<std::uint64_t>&) {
                           ++count;
                           return true;
                         });
      EXPECT_EQ(BigInt::FromUnsigned(count), CompositionCount(total, parts))
          << total << " into " << parts;
    }
  }
}

TEST(CompositionTest, EachCompositionSumsToTotal) {
  ForEachComposition(5, 3, [](const std::vector<std::uint64_t>& c) {
    std::uint64_t sum = 0;
    for (std::uint64_t v : c) sum += v;
    EXPECT_EQ(sum, 5u);
    return true;
  });
}

TEST(CompositionTest, EarlyAbort) {
  std::uint64_t count = 0;
  ForEachComposition(4, 3, [&](const std::vector<std::uint64_t>&) {
    ++count;
    return count < 3;
  });
  EXPECT_EQ(count, 3u);
}

TEST(FactorialTableTest, MatchesFactorial) {
  FactorialTable table;
  // Out-of-order access exercises the incremental growth.
  EXPECT_EQ(table.Get(5), Factorial(5));
  EXPECT_EQ(table.Get(0), BigInt(1));
  EXPECT_EQ(table.Get(20), Factorial(20));
  EXPECT_EQ(table.Get(12), Factorial(12));
  // Repeated access returns the identical cached value, and references
  // stay valid while the table grows.
  EXPECT_EQ(&table.Get(12), &table.Get(12));
  const BigInt& twelve = table.Get(12);
  table.Get(64);
  EXPECT_EQ(twelve, Factorial(12));
}

TEST(BinomialTableTest, MatchesBinomial) {
  BinomialTable table;
  for (std::uint64_t n = 0; n <= 16; ++n) {
    for (std::uint64_t k = 0; k <= n + 2; ++k) {
      EXPECT_EQ(table.Get(n, k), Binomial(n, k)) << n << " choose " << k;
    }
  }
  // Access far above previously built rows.
  EXPECT_EQ(table.Get(40, 20), Binomial(40, 20));
}

TEST(BinomialTableTest, MultinomialMatchesFreeFunction) {
  BinomialTable table;
  EXPECT_EQ(table.Multinomial(6, {2, 2, 2}), Multinomial(6, {2, 2, 2}));
  EXPECT_EQ(table.Multinomial(10, {10}), BigInt(1));
  EXPECT_EQ(table.Multinomial(0, {}), BigInt(1));
  EXPECT_THROW(table.Multinomial(5, {2, 2}), std::invalid_argument);
}

TEST(CompositionTest, ZeroParts) {
  std::uint64_t calls = 0;
  ForEachComposition(0, 0, [&](const std::vector<std::uint64_t>& c) {
    EXPECT_TRUE(c.empty());
    ++calls;
    return true;
  });
  EXPECT_EQ(calls, 1u);
  calls = 0;
  ForEachComposition(2, 0, [&](const std::vector<std::uint64_t>&) {
    ++calls;
    return true;
  });
  EXPECT_EQ(calls, 0u);
}

}  // namespace
}  // namespace swfomc::numeric
