// Unlabeled model counting (Burnside over S_n) — Section 3.3's UFOMC.

#include "grounding/unlabeled.h"

#include <gtest/gtest.h>

#include "grounding/grounded_wfomc.h"
#include "logic/parser.h"
#include "numeric/combinatorics.h"

namespace swfomc::grounding {
namespace {

using numeric::BigInt;

logic::Formula P(const char* text, logic::Vocabulary* vocab) {
  return logic::Parse(text, vocab);
}

TEST(UnlabeledTest, IdentityPermutationFixesEverything) {
  logic::Vocabulary vocab;
  logic::Formula truth = P("forall x (U(x) | !U(x))", &vocab);
  // Under the identity, every structure is fixed: 2^n models of a
  // tautology over a unary predicate.
  EXPECT_EQ(CountFixedModels(truth, vocab, {0, 1, 2}), BigInt(8));
}

TEST(UnlabeledTest, TranspositionHalvesUnaryOrbits) {
  logic::Vocabulary vocab;
  logic::Formula truth = P("forall x (U(x) | !U(x))", &vocab);
  // Swap(0,1) on 3 elements: orbits {U(0),U(1)}, {U(2)} — 2^2 fixed
  // structures.
  EXPECT_EQ(CountFixedModels(truth, vocab, {1, 0, 2}), BigInt(4));
}

TEST(UnlabeledTest, UnaryPredicateCountsSubsetsUpToSize) {
  // Unlabeled structures over one unary predicate = choice of |U| only:
  // UFOMC(true, n) = n + 1.
  logic::Vocabulary vocab;
  logic::Formula truth = P("forall x (U(x) | !U(x))", &vocab);
  for (std::uint64_t n = 1; n <= 5; ++n) {
    EXPECT_EQ(UnlabeledFOMC(truth, vocab, n), BigInt(n + 1)) << n;
  }
}

TEST(UnlabeledTest, UndirectedLooplessGraphsMatchOeisA000088) {
  // Unlabeled simple graphs on n nodes: 1, 2, 4, 11 (OEIS A000088).
  // Encode simple graphs as symmetric irreflexive E.
  logic::Vocabulary vocab;
  logic::Formula simple = P(
      "forall x forall y ((E(x,y) -> E(y,x)) & !E(x,x))", &vocab);
  const std::uint64_t expected[] = {1, 2, 4, 11};
  for (std::uint64_t n = 1; n <= 4; ++n) {
    EXPECT_EQ(UnlabeledFOMC(simple, vocab, n), BigInt(expected[n - 1]))
        << n;
  }
}

TEST(UnlabeledTest, DigraphsMatchOeisA000273) {
  // Unlabeled directed graphs (loopless): 1, 3, 16 (OEIS A000273).
  logic::Vocabulary vocab;
  logic::Formula loopless = P("forall x !E(x,x)", &vocab);
  const std::uint64_t expected[] = {1, 3, 16};
  for (std::uint64_t n = 1; n <= 3; ++n) {
    EXPECT_EQ(UnlabeledFOMC(loopless, vocab, n), BigInt(expected[n - 1]))
        << n;
  }
}

TEST(UnlabeledTest, UnlabeledNeverExceedsLabeled) {
  logic::Vocabulary vocab;
  logic::Formula phi = P("forall x exists y R(x,y)", &vocab);
  for (std::uint64_t n = 1; n <= 3; ++n) {
    BigInt labeled = GroundedFOMC(phi, vocab, n);
    BigInt unlabeled = UnlabeledFOMC(phi, vocab, n);
    EXPECT_TRUE(unlabeled <= labeled) << n;
    // And labeled <= n! * unlabeled (each isomorphism class has at most
    // n! labelings).
    EXPECT_TRUE(labeled <= unlabeled * numeric::Factorial(n)) << n;
  }
}

TEST(UnlabeledTest, RigidSentenceHasExactlyFactorialRatio) {
  // A strict linear order is rigid: every unlabeled order has exactly n!
  // labelings, so FOMC = n! and UFOMC = 1.
  logic::Vocabulary vocab;
  logic::Formula order = P(
      "forall x forall y forall z ((!(x = y) -> (L(x,y) | L(y,x))) & "
      "!(L(x,y) & L(y,x)) & !L(x,x) & ((L(x,y) & L(y,z)) -> L(x,z)))",
      &vocab);
  for (std::uint64_t n = 1; n <= 3; ++n) {
    EXPECT_EQ(UnlabeledFOMC(order, vocab, n), BigInt(1)) << n;
    EXPECT_EQ(GroundedFOMC(order, vocab, n), numeric::Factorial(n)) << n;
  }
}

TEST(UnlabeledTest, RefusesLargeDomains) {
  logic::Vocabulary vocab;
  logic::Formula phi = P("forall x U(x)", &vocab);
  EXPECT_THROW(UnlabeledFOMC(phi, vocab, 9), std::invalid_argument);
}

}  // namespace
}  // namespace swfomc::grounding
