#include "wmc/dpll_counter.h"

#include <random>

#include <gtest/gtest.h>

#include "grounding/grounded_wfomc.h"
#include "logic/parser.h"
#include "prop/compact_cnf.h"
#include "prop/tseitin.h"
#include "test_util.h"
#include "wmc/brute_force.h"
#include "wmc/component_cache.h"

namespace swfomc::wmc {
namespace {

using numeric::BigRational;
using prop::CnfFormula;
using prop::Literal;
using prop::PropFormula;
using prop::VarId;
using testutil::RandomCnf;
using testutil::RandomWeights;

TEST(BruteForceTest, UnweightedCountSimple) {
  // x0 | x1 has 3 models over 2 variables.
  PropFormula f = prop::PropOr(prop::PropVar(0), prop::PropVar(1));
  EXPECT_EQ(BruteForceCount(f, 2).ToInt64(), 3);
  // Over 3 variables the free variable doubles the count.
  EXPECT_EQ(BruteForceCount(f, 3).ToInt64(), 6);
}

TEST(BruteForceTest, RefusesHugeEnumerations) {
  EXPECT_THROW(BruteForceCount(prop::PropTrue(), 31), std::invalid_argument);
}

TEST(DpllCounterTest, EmptyCnfCountsAllAssignments) {
  CnfFormula cnf;
  cnf.variable_count = 3;
  WeightMap weights(3);
  EXPECT_EQ(CountWeightedModels(cnf, weights), BigRational(8));
}

TEST(DpllCounterTest, EmptyClauseMeansZero) {
  CnfFormula cnf;
  cnf.variable_count = 2;
  cnf.clauses = {{}};
  WeightMap weights(2);
  EXPECT_EQ(CountWeightedModels(cnf, weights), BigRational(0));
}

TEST(DpllCounterTest, UnitClauseForcesValue) {
  CnfFormula cnf;
  cnf.variable_count = 2;
  cnf.clauses = {{Literal{0, true}}};
  WeightMap weights(2);
  weights.Set(0, BigRational(3), BigRational(5));
  // x0 forced true (weight 3), x1 free (1+1).
  EXPECT_EQ(CountWeightedModels(cnf, weights), BigRational(6));
}

TEST(DpllCounterTest, ContradictoryUnitsGiveZero) {
  CnfFormula cnf;
  cnf.variable_count = 1;
  cnf.clauses = {{Literal{0, true}}, {Literal{0, false}}};
  EXPECT_EQ(CountWeightedModels(cnf, WeightMap(1)), BigRational(0));
}

TEST(DpllCounterTest, MatchesBruteForceUnweightedRandom) {
  std::mt19937_64 rng(41);
  for (int trial = 0; trial < 120; ++trial) {
    CnfFormula cnf = RandomCnf(&rng, 6, 3 + rng() % 8, 3);
    WeightMap weights(6);
    BigRational expected = BruteForceWMC(cnf, weights);
    EXPECT_EQ(CountWeightedModels(cnf, weights), expected)
        << cnf.ToString();
  }
}

TEST(DpllCounterTest, MatchesBruteForcePositiveWeights) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 80; ++trial) {
    CnfFormula cnf = RandomCnf(&rng, 6, 2 + rng() % 8, 3);
    WeightMap weights = RandomWeights(&rng, 6, /*allow_negative=*/false);
    BigRational expected = BruteForceWMC(cnf, weights);
    EXPECT_EQ(CountWeightedModels(cnf, weights), expected)
        << cnf.ToString();
  }
}

TEST(DpllCounterTest, MatchesBruteForceNegativeWeights) {
  // Negative weights are load-bearing for Lemma 3.3 / Example 1.2.
  std::mt19937_64 rng(43);
  for (int trial = 0; trial < 80; ++trial) {
    CnfFormula cnf = RandomCnf(&rng, 6, 2 + rng() % 8, 3);
    WeightMap weights = RandomWeights(&rng, 6, /*allow_negative=*/true);
    BigRational expected = BruteForceWMC(cnf, weights);
    EXPECT_EQ(CountWeightedModels(cnf, weights), expected)
        << cnf.ToString();
  }
}

TEST(DpllCounterTest, ZeroWeightsHandled) {
  CnfFormula cnf;
  cnf.variable_count = 2;
  cnf.clauses = {{Literal{0, true}, Literal{1, true}}};
  WeightMap weights(2);
  weights.Set(0, BigRational(0), BigRational(1));
  weights.Set(1, BigRational(2), BigRational(0));
  // Models: (T,T):0*2, (T,F):0*0, (F,T):1*2 -> total 2.
  EXPECT_EQ(CountWeightedModels(cnf, weights), BigRational(2));
}

TEST(DpllCounterTest, OptionsProduceSameAnswer) {
  std::mt19937_64 rng(44);
  for (int trial = 0; trial < 40; ++trial) {
    CnfFormula cnf = RandomCnf(&rng, 8, 6 + rng() % 8, 3);
    WeightMap weights = RandomWeights(&rng, 8, true);
    BigRational reference = BruteForceWMC(cnf, weights);
    for (bool components : {false, true}) {
      for (bool cache : {false, true}) {
        DpllCounter::Options options;
        options.use_components = components;
        options.use_cache = cache;
        DpllCounter counter(cnf, weights, options);
        EXPECT_EQ(counter.Count(), reference)
            << "components=" << components << " cache=" << cache;
      }
    }
  }
}

TEST(DpllCounterTest, ComponentDecompositionFires) {
  // Two disjoint clauses must split into components.
  CnfFormula cnf;
  cnf.variable_count = 4;
  cnf.clauses = {{Literal{0, true}, Literal{1, true}},
                 {Literal{2, true}, Literal{3, true}}};
  DpllCounter counter(cnf, WeightMap(4));
  EXPECT_EQ(counter.Count(), BigRational(9));
  EXPECT_GE(counter.stats().component_splits, 1u);
}

TEST(DpllCounterTest, CacheHitsOnRepeatedComponents) {
  // A chain of independent identical blocks: (x_i | x_{i+1}) pairs.
  CnfFormula cnf;
  cnf.variable_count = 12;
  for (VarId v = 0; v < 12; v += 2) {
    cnf.clauses.push_back({Literal{v, true}, Literal{VarId(v + 1), true}});
  }
  DpllCounter counter(cnf, WeightMap(12));
  EXPECT_EQ(counter.Count(), BigRational(3 * 3 * 3 * 3 * 3 * 3));
  // Identical blocks over distinct variables have distinct keys, so the
  // only guarantee is correctness; components must have fired.
  EXPECT_GE(counter.stats().component_splits, 1u);
}

TEST(DpllCounterTest, CountsViaTseitinPipeline) {
  // Full pipeline: formula -> Tseitin -> weighted count equals brute WMC
  // over the original variables.
  std::mt19937_64 rng(45);
  for (int trial = 0; trial < 40; ++trial) {
    PropFormula f = testutil::RandomPropFormula(&rng, 3, 5);
    WeightMap original_weights = RandomWeights(&rng, 5, true);
    BigRational expected = BruteForceWMC(f, 5, original_weights);

    prop::TseitinResult tseitin = prop::TseitinTransform(f, 5);
    WeightMap extended = original_weights;
    extended.EnsureSize(tseitin.cnf.variable_count);
    EXPECT_EQ(CountWeightedModels(tseitin.cnf, extended), expected)
        << PropToString(f);
  }
}

TEST(DpllCounterTest, MatchesBruteForceLargerSeededRandom) {
  // Differential oracle on larger instances than the quick checks above:
  // mixed clause widths, negative weights, default (trail + components +
  // cache) configuration.
  std::mt19937_64 rng(47);
  for (int trial = 0; trial < 60; ++trial) {
    CnfFormula cnf = RandomCnf(&rng, 10, 8 + rng() % 16, 2 + rng() % 3);
    WeightMap weights = RandomWeights(&rng, 10, /*allow_negative=*/true);
    BigRational expected = BruteForceWMC(cnf, weights);
    EXPECT_EQ(CountWeightedModels(cnf, weights), expected) << cnf.ToString();
  }
}

TEST(DpllCounterTest, GroundedPipelineMatchesExhaustiveWFOMC) {
  // End-to-end differential: lineage -> Tseitin -> counter vs exhaustive
  // world enumeration, with non-trivial weights.
  struct Case {
    const char* sentence;
    std::uint64_t n;
  };
  const Case cases[] = {
      {"forall x forall y (R(x) | S(x,y) | T(y))", 2},
      {"forall x exists y S(x,y)", 3},
      {"exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))", 2},
  };
  for (const Case& c : cases) {
    logic::Vocabulary vocab;
    logic::Formula phi = logic::Parse(c.sentence, &vocab);
    for (logic::RelationId id = 0; id < vocab.size(); ++id) {
      vocab.SetWeights(id, BigRational(2), BigRational::Fraction(1, 3));
    }
    EXPECT_EQ(grounding::GroundedWFOMC(phi, vocab, c.n),
              grounding::ExhaustiveWFOMC(phi, vocab, c.n))
        << c.sentence << " n=" << c.n;
  }
}

TEST(DpllCounterTest, CacheSoundnessOnGroundedLineage) {
  // All four option combinations must agree on an instance too large for
  // brute force (grounded triangle lineage, 463 models at n=3).
  logic::Vocabulary vocab;
  logic::Formula phi = logic::Parse(
      "exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))", &vocab);
  for (bool components : {false, true}) {
    for (bool cache : {false, true}) {
      DpllCounter::Options options;
      options.use_components = components;
      options.use_cache = cache;
      EXPECT_EQ(grounding::GroundedWFOMC(phi, vocab, 3, options),
                BigRational(463))
          << "components=" << components << " cache=" << cache;
    }
  }
}

TEST(DpllCounterTest, CacheHitsOnRepeatedSuffixChains) {
  // A path (x_i | x_{i+1}): branching at the frontier leaves suffix
  // chains that recur across branches, so the component cache must score
  // hits; the count is the Fibonacci number F(18) = 2584.
  CnfFormula cnf;
  cnf.variable_count = 16;
  for (VarId v = 0; v + 1 < 16; ++v) {
    cnf.clauses.push_back({Literal{v, true}, Literal{VarId(v + 1), true}});
  }
  DpllCounter counter(cnf, WeightMap(16));
  EXPECT_EQ(counter.Count(), BigRational(2584));
  EXPECT_GT(counter.stats().cache_hits, 0u);
  EXPECT_GT(counter.stats().cache_entries, 0u);
}

TEST(DpllCounterTest, StatsReportCacheActivityOnGroundedLineage) {
  logic::Vocabulary vocab;
  logic::Formula phi = logic::Parse(
      "exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))", &vocab);
  DpllCounter::Stats stats;
  grounding::GroundedWFOMC(phi, vocab, 3, {}, &stats);
  EXPECT_GT(stats.decisions, 0u);
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.cache_entries, 0u);
  EXPECT_EQ(stats.cache_evictions, 0u);  // far below the entry bound
}

TEST(DpllCounterTest, CacheEntryBoundEvicts) {
  // With a tiny bound the counter must stay exact and record evictions.
  CnfFormula cnf;
  cnf.variable_count = 16;
  for (VarId v = 0; v + 1 < 16; ++v) {
    cnf.clauses.push_back({Literal{v, true}, Literal{VarId(v + 1), true}});
  }
  DpllCounter::Options options;
  options.max_cache_entries = 2;
  DpllCounter counter(cnf, WeightMap(16), options);
  EXPECT_EQ(counter.Count(), BigRational(2584));
  EXPECT_LE(counter.stats().cache_entries, 2u);
  EXPECT_GT(counter.stats().cache_evictions, 0u);
}

TEST(DpllCounterTest, RepeatedCountReportsPerInvocationStats) {
  // The cache persists across Count() calls but stats() must describe
  // exactly one invocation: the second run answers its top-level
  // components straight from the warm cache, so it reports fresh lookups
  // with zero insertions — not the cumulative totals of both runs.
  CnfFormula cnf;
  cnf.variable_count = 16;
  for (VarId v = 0; v + 1 < 16; ++v) {
    cnf.clauses.push_back({Literal{v, true}, Literal{VarId(v + 1), true}});
  }
  DpllCounter counter(cnf, WeightMap(16));
  EXPECT_EQ(counter.Count(), BigRational(2584));
  DpllCounter::Stats first = counter.stats();
  EXPECT_GT(first.cache_insertions, 0u);
  EXPECT_EQ(counter.Count(), BigRational(2584));
  DpllCounter::Stats second = counter.stats();
  EXPECT_GT(second.cache_lookups, 0u);
  EXPECT_LT(second.cache_lookups, first.cache_lookups);
  EXPECT_EQ(second.cache_insertions, 0u);  // warm cache: nothing recomputed
  EXPECT_LE(second.cache_hits, second.cache_lookups);
}

TEST(ComponentCacheTest, LookupInsertAndCollisionHandling) {
  ComponentCache cache(/*max_entries=*/2);
  ComponentKey a{1, 2, kComponentKeySeparator};
  ComponentKey b{3, 4, kComponentKeySeparator};
  std::uint64_t hash = HashComponentKey(a);
  EXPECT_EQ(cache.Lookup(a, hash), nullptr);
  cache.Insert(a, hash, BigRational(7));
  ASSERT_NE(cache.Lookup(a, hash), nullptr);
  EXPECT_EQ(*cache.Lookup(a, hash), BigRational(7));
  // Same hash, different key: counts a collision, reads as a miss.
  EXPECT_EQ(cache.Lookup(b, hash), nullptr);
  EXPECT_EQ(cache.collisions(), 1u);
  // The bound evicts the oldest entry.
  cache.Insert(ComponentKey{5}, HashComponentKey({5}), BigRational(1));
  cache.Insert(ComponentKey{6}, HashComponentKey({6}), BigRational(2));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Lookup(a, hash), nullptr);  // oldest entry gone
}

TEST(ComponentCacheTest, CounterInvariantsAndAccounting) {
  // lookups / hits / insertions are first-class counters now (the stats
  // staleness fixed in this PR): every probe is a lookup, every probe is
  // at most one of {hit, collision}, and evictions never outrun
  // insertions.
  ComponentCache cache(/*max_entries=*/2);
  ComponentKey a{1, kComponentKeySeparator};
  ComponentKey b{2, kComponentKeySeparator};
  EXPECT_EQ(cache.Lookup(a, HashComponentKey(a)), nullptr);
  cache.Insert(a, HashComponentKey(a), BigRational(3));
  EXPECT_NE(cache.Lookup(a, HashComponentKey(a)), nullptr);
  cache.Insert(b, HashComponentKey(b), BigRational(4));
  cache.Insert(ComponentKey{3}, HashComponentKey({3}), BigRational(5));
  EXPECT_EQ(cache.lookups(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.insertions(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_LE(cache.hits() + cache.collisions(), cache.lookups());
  EXPECT_LE(cache.evictions(), cache.insertions());
  EXPECT_LE(cache.size(), cache.insertions() - cache.evictions());
}

TEST(ComponentCacheTest, RefreshedEntryMovesToTheBackOfTheEvictionOrder) {
  // Regression: an in-place replacement used to keep its original FIFO
  // slot, so a just-refreshed entry at the queue front was the next
  // victim. A refresh must count as the newest entry.
  ComponentCache cache(/*max_entries=*/2);
  ComponentKey a{1, kComponentKeySeparator};
  ComponentKey b{2, kComponentKeySeparator};
  ComponentKey c{3, kComponentKeySeparator};
  std::uint64_t hash_a = HashComponentKey(a);
  std::uint64_t hash_b = HashComponentKey(b);
  std::uint64_t hash_c = HashComponentKey(c);
  cache.Insert(a, hash_a, BigRational(1));
  cache.Insert(b, hash_b, BigRational(2));
  // Refresh a: eviction order is now b (oldest), a (newest).
  cache.Insert(a, hash_a, BigRational(1));
  cache.Insert(c, hash_c, BigRational(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Lookup(b, hash_b), nullptr);  // the actual oldest
  ASSERT_NE(cache.Lookup(a, hash_a), nullptr);  // the refreshed survivor
  ASSERT_NE(cache.Lookup(c, hash_c), nullptr);
}

TEST(ComponentCacheTest, ByteOverflowAfterRefreshEvictsOthersNotItself) {
  // Regression for the byte-bound shape of the same bug: a replacement
  // that grows the entry past the byte bound used to run the overflow
  // loop with the refreshed entry still parked at the FIFO front — the
  // cache would evict the entry it had just paid to store and keep the
  // stale neighbors.
  ComponentKey a{1, kComponentKeySeparator};
  ComponentKey b{2, kComponentKeySeparator};
  BigRational small(1);
  // A value with real limb buffers, so the refresh genuinely grows.
  // FromString leaves growth slack in the limb buffer; HeapBytes() counts
  // capacity, so copy once to shrink to exact size — then the by-value
  // copy Insert stores accounts the same bytes this test computes below.
  const BigRational parsed = BigRational::FromString(std::string(120, '7'));
  BigRational big = parsed;
  ASSERT_GT(big.HeapBytes(), 0u);
  std::size_t bytes_a_small = ComponentCache::EntryBytes(a, small);
  std::size_t bytes_a_big = ComponentCache::EntryBytes(a, big);
  std::size_t bytes_b = ComponentCache::EntryBytes(b, small);
  ASSERT_GT(bytes_a_big, bytes_a_small);
  // Fits {a-small, b}, fits {a-big} alone, but not {a-big, b}.
  std::size_t max_bytes = bytes_a_big + bytes_b - 1;
  ASSERT_GE(max_bytes, bytes_a_small + bytes_b);
  ComponentCache cache(/*max_entries=*/16, max_bytes);
  std::uint64_t hash_a = HashComponentKey(a);
  std::uint64_t hash_b = HashComponentKey(b);
  cache.Insert(a, hash_a, small);
  cache.Insert(b, hash_b, small);
  EXPECT_EQ(cache.size(), 2u);
  // The refresh overflows the byte bound; the overflow loop must evict
  // b (the oldest), never the entry this insertion just refreshed.
  cache.Insert(a, hash_a, big);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Lookup(b, hash_b), nullptr);
  ASSERT_NE(cache.Lookup(a, hash_a), nullptr);
  EXPECT_EQ(*cache.Lookup(a, hash_a), big);
  EXPECT_LE(cache.bytes(), max_bytes);
}

TEST(ShardedComponentCacheTest, ShardsRouteByHashAndAggregateCounters) {
  ShardedComponentCache cache(/*max_entries=*/64, /*shard_count=*/4,
                              /*synchronized=*/true);
  EXPECT_EQ(cache.shard_count(), 4u);
  BigRational value;
  for (std::uint32_t i = 0; i < 32; ++i) {
    ComponentKey key{i, kComponentKeySeparator};
    std::uint64_t hash = HashComponentKey(key);
    EXPECT_FALSE(cache.Lookup(key, hash, &value));
    cache.Insert(key, hash, BigRational(static_cast<std::int64_t>(i)));
  }
  for (std::uint32_t i = 0; i < 32; ++i) {
    ComponentKey key{i, kComponentKeySeparator};
    ASSERT_TRUE(cache.Lookup(key, HashComponentKey(key), &value));
    EXPECT_EQ(value, BigRational(static_cast<std::int64_t>(i)));
  }
  EXPECT_EQ(cache.size(), 32u);
  EXPECT_EQ(cache.lookups(), 64u);
  EXPECT_EQ(cache.hits(), 32u);
  EXPECT_EQ(cache.insertions(), 32u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(ShardedComponentCacheTest, SplitsEntryBoundAcrossShards) {
  // Global bound 8 over 4 shards = 2 entries per shard; flooding one
  // stripe cannot grow the cache past the global bound.
  ShardedComponentCache cache(/*max_entries=*/8, /*shard_count=*/4,
                              /*synchronized=*/false);
  for (std::uint32_t i = 0; i < 64; ++i) {
    ComponentKey key{i, kComponentKeySeparator};
    cache.Insert(key, HashComponentKey(key), BigRational(1));
  }
  EXPECT_LE(cache.size(), 8u);
  EXPECT_EQ(cache.insertions(), 64u);
  EXPECT_GE(cache.evictions(), 64u - 8u);
}

TEST(ShardedComponentCacheTest, TinyGlobalBoundCollapsesShards) {
  // A global bound below the requested shard count must drop shards, not
  // round every shard up to one entry and overshoot the bound.
  ShardedComponentCache cache(/*max_entries=*/3, /*shard_count=*/16,
                              /*synchronized=*/true);
  EXPECT_LE(cache.shard_count(), 2u);
  for (std::uint32_t i = 0; i < 64; ++i) {
    ComponentKey key{i, kComponentKeySeparator};
    cache.Insert(key, HashComponentKey(key), BigRational(1));
  }
  EXPECT_LE(cache.size(), 3u);
}

TEST(CompactCnfTest, LiteralEncodingRoundTrip) {
  using prop::LitPositive;
  using prop::LitVariable;
  using prop::MakeLit;
  using prop::NegateLit;
  prop::Lit lit = MakeLit(7, true);
  EXPECT_EQ(LitVariable(lit), 7u);
  EXPECT_TRUE(LitPositive(lit));
  EXPECT_EQ(LitVariable(NegateLit(lit)), 7u);
  EXPECT_FALSE(LitPositive(NegateLit(lit)));
  EXPECT_EQ(NegateLit(NegateLit(lit)), lit);
}

TEST(CompactCnfTest, OccurrenceListsMatchClauses) {
  CnfFormula cnf;
  cnf.variable_count = 3;
  cnf.clauses = {{Literal{0, true}, Literal{1, false}},
                 {Literal{1, false}, Literal{2, true}},
                 {Literal{0, true}}};
  prop::CompactCnf compact = prop::CompactCnf::Build(cnf);
  EXPECT_EQ(compact.clause_count(), 3u);
  EXPECT_EQ(compact.ClauseSize(0), 2u);
  EXPECT_EQ(compact.ClauseSize(2), 1u);
  auto occ_x0 = compact.Occurrences(prop::MakeLit(0, true));
  ASSERT_EQ(occ_x0.size(), 2u);
  EXPECT_EQ(occ_x0[0], 0u);
  EXPECT_EQ(occ_x0[1], 2u);
  auto occ_not_x1 = compact.Occurrences(prop::MakeLit(1, false));
  ASSERT_EQ(occ_not_x1.size(), 2u);
  EXPECT_TRUE(compact.Mentions(2));
  EXPECT_EQ(compact.Occurrences(prop::MakeLit(2, false)).size(), 0u);
  EXPECT_EQ(compact.VariableOccurrences(1).size(), 2u);
}

TEST(DpllSatTest, SatisfiabilityBasics) {
  CnfFormula sat;
  sat.variable_count = 2;
  sat.clauses = {{Literal{0, true}, Literal{1, true}},
                 {Literal{0, false}}};
  EXPECT_TRUE(DpllCounter::IsSatisfiable(sat));

  CnfFormula unsat;
  unsat.variable_count = 1;
  unsat.clauses = {{Literal{0, true}}, {Literal{0, false}}};
  EXPECT_FALSE(DpllCounter::IsSatisfiable(unsat));
}

TEST(DpllSatTest, AgreesWithCountOnRandomInstances) {
  std::mt19937_64 rng(46);
  for (int trial = 0; trial < 100; ++trial) {
    CnfFormula cnf = RandomCnf(&rng, 5, 4 + rng() % 10, 2);
    bool sat = DpllCounter::IsSatisfiable(cnf);
    BigRational count = CountWeightedModels(cnf, WeightMap(5));
    EXPECT_EQ(sat, !count.IsZero()) << cnf.ToString();
  }
}

}  // namespace
}  // namespace swfomc::wmc
