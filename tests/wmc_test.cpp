#include "wmc/dpll_counter.h"

#include <random>

#include <gtest/gtest.h>

#include "prop/tseitin.h"
#include "test_util.h"
#include "wmc/brute_force.h"

namespace swfomc::wmc {
namespace {

using numeric::BigRational;
using prop::CnfFormula;
using prop::Literal;
using prop::PropFormula;
using prop::VarId;
using testutil::RandomCnf;
using testutil::RandomWeights;

TEST(BruteForceTest, UnweightedCountSimple) {
  // x0 | x1 has 3 models over 2 variables.
  PropFormula f = prop::PropOr(prop::PropVar(0), prop::PropVar(1));
  EXPECT_EQ(BruteForceCount(f, 2).ToInt64(), 3);
  // Over 3 variables the free variable doubles the count.
  EXPECT_EQ(BruteForceCount(f, 3).ToInt64(), 6);
}

TEST(BruteForceTest, RefusesHugeEnumerations) {
  EXPECT_THROW(BruteForceCount(prop::PropTrue(), 31), std::invalid_argument);
}

TEST(DpllCounterTest, EmptyCnfCountsAllAssignments) {
  CnfFormula cnf;
  cnf.variable_count = 3;
  WeightMap weights(3);
  EXPECT_EQ(CountWeightedModels(cnf, weights), BigRational(8));
}

TEST(DpllCounterTest, EmptyClauseMeansZero) {
  CnfFormula cnf;
  cnf.variable_count = 2;
  cnf.clauses = {{}};
  WeightMap weights(2);
  EXPECT_EQ(CountWeightedModels(cnf, weights), BigRational(0));
}

TEST(DpllCounterTest, UnitClauseForcesValue) {
  CnfFormula cnf;
  cnf.variable_count = 2;
  cnf.clauses = {{Literal{0, true}}};
  WeightMap weights(2);
  weights.Set(0, BigRational(3), BigRational(5));
  // x0 forced true (weight 3), x1 free (1+1).
  EXPECT_EQ(CountWeightedModels(cnf, weights), BigRational(6));
}

TEST(DpllCounterTest, ContradictoryUnitsGiveZero) {
  CnfFormula cnf;
  cnf.variable_count = 1;
  cnf.clauses = {{Literal{0, true}}, {Literal{0, false}}};
  EXPECT_EQ(CountWeightedModels(cnf, WeightMap(1)), BigRational(0));
}

TEST(DpllCounterTest, MatchesBruteForceUnweightedRandom) {
  std::mt19937_64 rng(41);
  for (int trial = 0; trial < 120; ++trial) {
    CnfFormula cnf = RandomCnf(&rng, 6, 3 + rng() % 8, 3);
    WeightMap weights(6);
    BigRational expected = BruteForceWMC(cnf, weights);
    EXPECT_EQ(CountWeightedModels(cnf, weights), expected)
        << cnf.ToString();
  }
}

TEST(DpllCounterTest, MatchesBruteForcePositiveWeights) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 80; ++trial) {
    CnfFormula cnf = RandomCnf(&rng, 6, 2 + rng() % 8, 3);
    WeightMap weights = RandomWeights(&rng, 6, /*allow_negative=*/false);
    BigRational expected = BruteForceWMC(cnf, weights);
    EXPECT_EQ(CountWeightedModels(cnf, weights), expected)
        << cnf.ToString();
  }
}

TEST(DpllCounterTest, MatchesBruteForceNegativeWeights) {
  // Negative weights are load-bearing for Lemma 3.3 / Example 1.2.
  std::mt19937_64 rng(43);
  for (int trial = 0; trial < 80; ++trial) {
    CnfFormula cnf = RandomCnf(&rng, 6, 2 + rng() % 8, 3);
    WeightMap weights = RandomWeights(&rng, 6, /*allow_negative=*/true);
    BigRational expected = BruteForceWMC(cnf, weights);
    EXPECT_EQ(CountWeightedModels(cnf, weights), expected)
        << cnf.ToString();
  }
}

TEST(DpllCounterTest, ZeroWeightsHandled) {
  CnfFormula cnf;
  cnf.variable_count = 2;
  cnf.clauses = {{Literal{0, true}, Literal{1, true}}};
  WeightMap weights(2);
  weights.Set(0, BigRational(0), BigRational(1));
  weights.Set(1, BigRational(2), BigRational(0));
  // Models: (T,T):0*2, (T,F):0*0, (F,T):1*2 -> total 2.
  EXPECT_EQ(CountWeightedModels(cnf, weights), BigRational(2));
}

TEST(DpllCounterTest, OptionsProduceSameAnswer) {
  std::mt19937_64 rng(44);
  for (int trial = 0; trial < 40; ++trial) {
    CnfFormula cnf = RandomCnf(&rng, 8, 6 + rng() % 8, 3);
    WeightMap weights = RandomWeights(&rng, 8, true);
    BigRational reference = BruteForceWMC(cnf, weights);
    for (bool components : {false, true}) {
      for (bool cache : {false, true}) {
        DpllCounter::Options options;
        options.use_components = components;
        options.use_cache = cache;
        DpllCounter counter(cnf, weights, options);
        EXPECT_EQ(counter.Count(), reference)
            << "components=" << components << " cache=" << cache;
      }
    }
  }
}

TEST(DpllCounterTest, ComponentDecompositionFires) {
  // Two disjoint clauses must split into components.
  CnfFormula cnf;
  cnf.variable_count = 4;
  cnf.clauses = {{Literal{0, true}, Literal{1, true}},
                 {Literal{2, true}, Literal{3, true}}};
  DpllCounter counter(cnf, WeightMap(4));
  EXPECT_EQ(counter.Count(), BigRational(9));
  EXPECT_GE(counter.stats().component_splits, 1u);
}

TEST(DpllCounterTest, CacheHitsOnRepeatedComponents) {
  // A chain of independent identical blocks: (x_i | x_{i+1}) pairs.
  CnfFormula cnf;
  cnf.variable_count = 12;
  for (VarId v = 0; v < 12; v += 2) {
    cnf.clauses.push_back({Literal{v, true}, Literal{VarId(v + 1), true}});
  }
  DpllCounter counter(cnf, WeightMap(12));
  EXPECT_EQ(counter.Count(), BigRational(3 * 3 * 3 * 3 * 3 * 3));
  // Identical blocks over distinct variables have distinct keys, so the
  // only guarantee is correctness; components must have fired.
  EXPECT_GE(counter.stats().component_splits, 1u);
}

TEST(DpllCounterTest, CountsViaTseitinPipeline) {
  // Full pipeline: formula -> Tseitin -> weighted count equals brute WMC
  // over the original variables.
  std::mt19937_64 rng(45);
  for (int trial = 0; trial < 40; ++trial) {
    PropFormula f = testutil::RandomPropFormula(&rng, 3, 5);
    WeightMap original_weights = RandomWeights(&rng, 5, true);
    BigRational expected = BruteForceWMC(f, 5, original_weights);

    prop::TseitinResult tseitin = prop::TseitinTransform(f, 5);
    WeightMap extended = original_weights;
    extended.EnsureSize(tseitin.cnf.variable_count);
    EXPECT_EQ(CountWeightedModels(tseitin.cnf, extended), expected)
        << PropToString(f);
  }
}

TEST(DpllSatTest, SatisfiabilityBasics) {
  CnfFormula sat;
  sat.variable_count = 2;
  sat.clauses = {{Literal{0, true}, Literal{1, true}},
                 {Literal{0, false}}};
  EXPECT_TRUE(DpllCounter::IsSatisfiable(sat));

  CnfFormula unsat;
  unsat.variable_count = 1;
  unsat.clauses = {{Literal{0, true}}, {Literal{0, false}}};
  EXPECT_FALSE(DpllCounter::IsSatisfiable(unsat));
}

TEST(DpllSatTest, AgreesWithCountOnRandomInstances) {
  std::mt19937_64 rng(46);
  for (int trial = 0; trial < 100; ++trial) {
    CnfFormula cnf = RandomCnf(&rng, 5, 4 + rng() % 10, 2);
    bool sat = DpllCounter::IsSatisfiable(cnf);
    BigRational count = CountWeightedModels(cnf, WeightMap(5));
    EXPECT_EQ(sat, !count.IsZero()) << cnf.ToString();
  }
}

}  // namespace
}  // namespace swfomc::wmc
