#include "serve/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "io/json.h"

namespace swfomc {
namespace {

using io::JsonValue;
using io::ParseJson;
using serve::Server;
using serve::ServerOptions;
using serve::ServerStats;

JsonValue Query(Server* server, const std::string& line) {
  Server::Reply reply = server->HandleLine(line);
  EXPECT_FALSE(reply.quit) << line;
  return std::move(reply.json);
}

TEST(Serve, AnswersAQueryExactly) {
  Server server;
  JsonValue response = Query(
      &server,
      R"js({"id": 7, "sentence": "forall x forall y S(x,y)", "domain": 3,
            "weights": [{"S": ["2", "1"]}]})js");
  EXPECT_EQ(response.At("status").string, "ok");
  EXPECT_EQ(response.At("id").string, "7");
  EXPECT_EQ(response.At("n").string, "3");
  ASSERT_EQ(response.At("results").array.size(), 1u);
  EXPECT_EQ(response.At("results").array[0].At("wfomc").string, "512");
  EXPECT_EQ(response.At("cached").boolean, false);
}

TEST(Serve, BatchesWeightVectorsOverOneCompilation) {
  Server server;
  JsonValue response = Query(
      &server,
      R"js({"sentence": "exists x exists y (R(x,y) & U(y))", "domain": 3,
            "weights": [{}, {"R": ["1/2", "1"], "U": ["2", "3"]}]})js");
  EXPECT_EQ(response.At("status").string, "ok");
  ASSERT_EQ(response.At("results").array.size(), 2u);
  // Default weights (1,1): FOMC of the sentence at n=3, i.e. 2^12 minus
  // the 729 models in which no column y has U(y) with an incoming R edge.
  EXPECT_EQ(response.At("results").array[0].At("wfomc").string, "3367");
  // The same batch under a rational reweighting, computed by hand:
  // (3/2)^9 * 5^3 minus the complement (97/8)^3, all over a common 512.
  EXPECT_EQ(response.At("results").array[1].At("wfomc").string,
            "773851/256");
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.circuits, 1u);
}

TEST(Serve, SecondQueryIsServedFromTheCircuitCache) {
  Server server;
  const std::string line =
      R"js({"sentence": "forall x forall y S(x,y)", "domain": 3})js";
  JsonValue cold = Query(&server, line);
  JsonValue warm = Query(&server, line);
  EXPECT_EQ(cold.At("cached").boolean, false);
  EXPECT_TRUE(cold.Has("compile_seconds"));
  EXPECT_EQ(warm.At("cached").boolean, true);
  EXPECT_FALSE(warm.Has("compile_seconds"));
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
}

TEST(Serve, LruEvictsTheLeastRecentlyUsedCircuit) {
  ServerOptions options;
  options.max_circuits = 2;
  Server server(options);
  // Arity 3 keeps the sentence off the lifted path, so each domain size
  // compiles its own grounded circuit (a liftable sentence would share
  // one cache entry across all three domains and never evict).
  const std::string a =
      R"js({"sentence": "forall x T(x,x,x)", "domain": 2})js";
  const std::string b =
      R"js({"sentence": "forall x T(x,x,x)", "domain": 3})js";
  const std::string c =
      R"js({"sentence": "forall x T(x,x,x)", "domain": 4})js";
  Query(&server, a);
  Query(&server, b);
  Query(&server, a);  // refresh a: b is now the LRU victim
  Query(&server, c);  // evicts b
  EXPECT_EQ(server.Stats().evictions, 1u);
  EXPECT_EQ(Query(&server, a).At("cached").boolean, true);
  EXPECT_EQ(Query(&server, b).At("cached").boolean, false);  // recompiled
}

TEST(Serve, LiftedSentenceSharesOneCacheEntryAcrossDomainSizes) {
  // The tentpole contract at the daemon level: a liftable FO² sentence
  // is cached under the canonical sentence alone, so queries at three
  // different domain sizes compile once and hit twice — one lifted
  // circuit serves every n.
  Server server;
  auto line = [](int n) {
    return R"js({"sentence": "forall x exists y S(x,y)", "domain": )js" +
           std::to_string(n) + "}";
  };
  JsonValue cold = Query(&server, line(3));
  EXPECT_EQ(cold.At("status").string, "ok");
  EXPECT_EQ(cold.At("kind").string, "lifted");
  EXPECT_EQ(cold.At("cached").boolean, false);
  // (2^n - 1)^n: every element picks a non-empty successor set.
  EXPECT_EQ(cold.At("results").array[0].At("wfomc").string, "343");
  JsonValue warm5 = Query(&server, line(5));
  JsonValue warm9 = Query(&server, line(9));
  EXPECT_EQ(warm5.At("kind").string, "lifted");
  EXPECT_EQ(warm5.At("cached").boolean, true);
  EXPECT_EQ(warm5.At("results").array[0].At("wfomc").string, "28629151");
  EXPECT_EQ(warm9.At("cached").boolean, true);
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.circuits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 2u);
  // A grounded query reports its kind too.
  JsonValue grounded = Query(
      &server, R"js({"sentence": "forall x T(x,x,x)", "domain": 2})js");
  EXPECT_EQ(grounded.At("kind").string, "grounded");
}

TEST(Serve, ByteBoundCountsVocabularyStrings) {
  // Regression: CompiledQuery::MemoryBytes once ignored the vocabulary
  // snapshot's strings, so a circuit dragging a huge relation name slid
  // under any byte bound. Pin the bound just above a short-named
  // circuit's true footprint: the short name must cache, the long name
  // (identical circuit shape, ~64 KiB of relation name) must not.
  std::string long_name(std::size_t{1} << 16, 'Z');
  api::Engine sizer{logic::Vocabulary{}};
  api::CompileResult sized = sizer.Compile(
      sizer.Parse("forall x exists y S(x,y)"), api::CompileOptions{});
  ASSERT_TRUE(sized.compiled.has_value());

  ServerOptions options;
  options.max_circuit_bytes = sized.compiled->MemoryBytes() + 4096;
  Server server(options);
  const std::string short_line =
      R"js({"sentence": "forall x exists y S(x,y)", "domain": 3})js";
  const std::string long_line =
      R"js({"sentence": "forall x exists y )js" + long_name +
      R"js((x,y)", "domain": 3})js";
  EXPECT_EQ(Query(&server, short_line).At("cached").boolean, false);
  EXPECT_EQ(Query(&server, short_line).At("cached").boolean, true);
  JsonValue big = Query(&server, long_line);
  EXPECT_EQ(big.At("status").string, "ok");
  EXPECT_EQ(big.At("results").array[0].At("wfomc").string, "343");
  // Served, but the vocabulary bytes pushed it past the bound: a second
  // identical query recompiles.
  EXPECT_EQ(Query(&server, long_line).At("cached").boolean, false);
  EXPECT_EQ(server.Stats().circuits, 1u);
}

TEST(Serve, OversizedCircuitIsServedButNotCached) {
  ServerOptions options;
  options.max_circuit_bytes = 1;  // nothing fits
  Server server(options);
  const std::string line =
      R"js({"sentence": "forall x U(x)", "domain": 2})js";
  EXPECT_EQ(Query(&server, line).At("status").string, "ok");
  EXPECT_EQ(Query(&server, line).At("cached").boolean, false);
  EXPECT_EQ(server.Stats().circuits, 0u);
}

TEST(Serve, MalformedLineYieldsErrorAndTheServerKeepsServing) {
  Server server;
  JsonValue error = Query(&server, "this is not json");
  EXPECT_EQ(error.At("status").string, "error");
  JsonValue recovered = Query(
      &server, R"js({"sentence": "forall x U(x)", "domain": 1})js");
  EXPECT_EQ(recovered.At("status").string, "ok");
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.requests, 2u);
}

TEST(Serve, RequestShapedProblemsAreErrorsNotCrashes) {
  Server server;
  EXPECT_EQ(Query(&server, R"js([1, 2, 3])js").At("status").string, "error");
  EXPECT_EQ(Query(&server, R"js({"domain": 3})js").At("status").string,
            "error");
  EXPECT_EQ(Query(&server, R"js({"sentence": "forall x U(x)"})js")
                .At("status").string,
            "error");
  EXPECT_EQ(Query(&server,
                  R"js({"sentence": "forall x U(x)", "domain": -3})js")
                .At("status").string,
            "error");
  EXPECT_EQ(Query(&server,
                  R"js({"sentence": "forall x U(", "domain": 3})js")
                .At("status").string,
            "error");
  EXPECT_EQ(Query(&server, R"js({"cmd": "frobnicate"})js").At("status").string,
            "error");
  EXPECT_EQ(Query(&server,
                  R"js({"cmd": "query", "sentence": "forall x U(x)",
                        "domain": 3, "mode": "warp"})js")
                .At("status").string,
            "error");
  // After all of that, the daemon still answers.
  EXPECT_EQ(Query(&server, R"js({"sentence": "forall x U(x)", "domain": 1})js")
                .At("status").string,
            "ok");
}

TEST(Serve, PerVectorProblemsDoNotFailTheRequest) {
  Server server;
  JsonValue response = Query(
      &server,
      R"js({"sentence": "forall x U(x)", "domain": 2,
            "weights": [{"Q": ["1", "1"]}, {"U": ["oops", "1"]},
                        {"U": ["1/2", "3"]}]})js");
  EXPECT_EQ(response.At("status").string, "ok");
  ASSERT_EQ(response.At("results").array.size(), 3u);
  EXPECT_NE(response.At("results").array[0].At("error").string.find(
                "unknown relation 'Q'"),
            std::string::npos);
  EXPECT_TRUE(response.At("results").array[1].Has("error"));
  EXPECT_EQ(response.At("results").array[2].At("wfomc").string, "1/4");
}

TEST(Serve, OversizedRequestLineIsRejectedPerRequest) {
  ServerOptions options;
  options.max_request_bytes = 64;
  Server server(options);
  std::string huge =
      R"js({"sentence": ")js" + std::string(200, 'x') + R"js("})js";
  JsonValue error = Query(&server, huge);
  EXPECT_EQ(error.At("status").string, "error");
  EXPECT_NE(error.At("error").string.find("exceeds"), std::string::npos);
  EXPECT_EQ(Query(&server, R"js({"cmd": "stats"})js").At("status").string,
            "ok");
}

TEST(Serve, BudgetExhaustedCompileFallsBackToCertifiedBounds) {
  Server server;
  JsonValue response = Query(
      &server,
      R"js({"sentence":
            "exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))",
            "domain": 7, "max_decisions": 0})js");
  EXPECT_EQ(response.At("status").string, "ok");
  EXPECT_EQ(response.At("compile_outcome").string, "aborted");
  ASSERT_EQ(response.At("results").array.size(), 1u);
  const JsonValue& result = response.At("results").array[0];
  EXPECT_EQ(result.At("outcome").string, "bounds");
  EXPECT_TRUE(result.Has("lower"));
  EXPECT_TRUE(result.Has("upper"));
  // The partial circuit must not have been cached.
  EXPECT_EQ(server.Stats().circuits, 0u);
}

TEST(Serve, RequestBudgetOverridesTheServerDefault) {
  ServerOptions options;
  options.max_decisions = 0;  // default envelope: nothing completes
  Server server(options);
  const std::string triangle =
      R"js("exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))")js";
  JsonValue bounded = Query(
      &server,
      R"js({"sentence": )js" + triangle + R"js(, "domain": 5})js");
  EXPECT_EQ(bounded.At("compile_outcome").string, "aborted");
  JsonValue exact = Query(
      &server,
      R"js({"sentence": )js" + triangle +
          R"js(, "domain": 5, "max_decisions": 100000000})js");
  EXPECT_EQ(exact.At("status").string, "ok");
  EXPECT_FALSE(exact.Has("compile_outcome"));
  ASSERT_TRUE(exact.At("results").array[0].Has("wfomc"));
  // Cross-check the compiled exact count against an independent direct
  // (uncompiled) count of the same query.
  JsonValue direct = Query(
      &server,
      R"js({"sentence": )js" + triangle +
          R"js(, "domain": 5, "mode": "direct",
               "max_decisions": 100000000})js");
  EXPECT_EQ(direct.At("results").array[0].At("wfomc").string,
            exact.At("results").array[0].At("wfomc").string);
}

TEST(Serve, DirectModeMatchesCompileMode) {
  Server server;
  JsonValue compiled = Query(
      &server,
      R"js({"sentence": "forall x exists y S(x,y)", "domain": 3})js");
  JsonValue direct = Query(
      &server,
      R"js({"sentence": "forall x exists y S(x,y)", "domain": 3,
            "mode": "direct", "method": "lifted-fo2"})js");
  EXPECT_EQ(compiled.At("results").array[0].At("wfomc").string, "343");
  EXPECT_EQ(direct.At("results").array[0].At("wfomc").string, "343");
  EXPECT_FALSE(direct.Has("cached"));  // direct mode bypasses the cache
}

TEST(Serve, QuitStopsTheStreamAfterDrainingResponses) {
  Server server;
  std::istringstream in(
      "{\"sentence\": \"forall x U(x)\", \"domain\": 1}\n"
      "\n"
      "{\"cmd\": \"stats\"}\n"
      "{\"cmd\": \"quit\"}\n"
      "{\"sentence\": \"forall x U(x)\", \"domain\": 2}\n");
  std::ostringstream out;
  EXPECT_EQ(server.ServeStream(in, out), 0);
  std::vector<std::string> lines;
  std::istringstream reader(out.str());
  for (std::string line; std::getline(reader, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);  // quit drained; the trailing query unread
  EXPECT_EQ(ParseJson(lines[0]).At("status").string, "ok");
  EXPECT_EQ(ParseJson(lines[1]).At("status").string, "ok");
  EXPECT_EQ(ParseJson(lines[2]).At("bye").boolean, true);
}

TEST(Serve, EofIsACleanExit) {
  Server server;
  std::istringstream in("{\"sentence\": \"forall x U(x)\", \"domain\": 1}\n");
  std::ostringstream out;
  EXPECT_EQ(server.ServeStream(in, out), 0);
}

TEST(Serve, TcpRoundTripAndShutdown) {
  Server server;
  std::promise<std::uint16_t> port_promise;
  std::future<std::uint16_t> port_future = port_promise.get_future();
  std::thread daemon([&] {
    server.ServeTcp(0, [&](std::uint16_t port) {
      port_promise.set_value(port);
    });
  });
  std::uint16_t port = port_future.get();

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&address),
                      sizeof(address)),
            0);
  const std::string request =
      "{\"sentence\": \"forall x forall y S(x,y)\", \"domain\": 3,"
      " \"weights\": [{\"S\": [\"2\", \"1\"]}]}\n"
      "{\"cmd\": \"shutdown\"}\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string received;
  char buffer[4096];
  for (ssize_t n = 0; (n = ::read(fd, buffer, sizeof(buffer))) > 0;) {
    received.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  daemon.join();

  std::vector<std::string> lines;
  std::istringstream reader(received);
  for (std::string line; std::getline(reader, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(ParseJson(lines[0]).At("results").array[0].At("wfomc").string,
            "512");
  EXPECT_EQ(ParseJson(lines[1]).At("bye").boolean, true);
}

// TSan target: four client threads hammering one server — the same hot
// circuit plus enough distinct keys to keep the tiny LRU evicting — must
// produce correct counts with no data race between the cache, the arena
// pool, and the stats counters.
TEST(Serve, ConcurrentClientsShareCircuitsSafely) {
  ServerOptions options;
  options.max_circuits = 2;
  Server server(options);
  constexpr int kThreads = 4;
  constexpr int kIterations = 25;
  std::vector<std::thread> clients;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&server, &failures, t] {
      for (int i = 0; i < kIterations; ++i) {
        // All threads share domain 3 (the hot circuit); the rotating
        // domain 1/2 queries force evictions underneath it.
        std::string hot =
            R"js({"sentence": "forall x forall y S(x,y)", "domain": 3,
                  "weights": [{"S": ["2", "1"]}, {"S": ["3", "1"]}]})js";
        std::string churn =
            R"js({"sentence": "forall x U(x)", "domain": )js" +
            std::to_string(1 + (t + i) % 2) + "}";
        JsonValue a = server.HandleLine(hot).json;
        JsonValue b = server.HandleLine(churn).json;
        if (a.At("status").string != "ok" ||
            a.At("results").array[0].At("wfomc").string != "512" ||
            a.At("results").array[1].At("wfomc").string != "19683" ||
            b.At("status").string != "ok") {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(2 * kThreads * kIterations));
}

// First sample value of `name` in a Prometheus-style exposition text.
std::uint64_t MetricValue(const std::string& text, const std::string& name) {
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind(name + " ", 0) == 0) {
      return std::stoull(line.substr(name.size() + 1));
    }
  }
  ADD_FAILURE() << "metric " << name << " missing from exposition";
  return 0;
}

TEST(Serve, EvictionReportsBytesAndPeak) {
  // Regression for the stats gaps: evictions must account their bytes,
  // and the byte high-water mark must survive the eviction (the level
  // drops, the peak does not).
  ServerOptions options;
  options.max_circuits = 1;
  Server server(options);
  Query(&server, R"js({"sentence": "forall x T(x,x,x)", "domain": 2})js");
  ServerStats before = server.Stats();
  EXPECT_EQ(before.evictions, 0u);
  EXPECT_EQ(before.evicted_bytes, 0u);
  EXPECT_EQ(before.circuit_bytes_peak, before.circuit_bytes);
  Query(&server, R"js({"sentence": "forall x T(x,x,x)", "domain": 3})js");
  ServerStats after = server.Stats();
  EXPECT_EQ(after.evictions, 1u);
  EXPECT_GE(after.evicted_bytes, before.circuit_bytes);
  EXPECT_GE(after.circuit_bytes_peak, after.circuit_bytes);
  EXPECT_GT(after.circuit_bytes_peak, 0u);

  // The `stats` payload carries the new fields.
  JsonValue stats_json = Query(&server, R"js({"cmd": "stats"})js");
  EXPECT_EQ(stats_json.At("evictions").string, "1");
  EXPECT_EQ(stats_json.At("evicted_bytes").string,
            std::to_string(after.evicted_bytes));
  EXPECT_EQ(stats_json.At("circuit_bytes_peak").string,
            std::to_string(after.circuit_bytes_peak));
}

TEST(Serve, MetricsCommandMatchesSessionGroundTruth) {
  Server server;
  const std::string line =
      R"js({"sentence": "forall x forall y S(x,y)", "domain": 3,
            "weights": [{"S": ["2", "1"]}, {"S": ["3", "1"]}]})js";
  Query(&server, line);  // cold: compiles
  Query(&server, line);  // warm: cache hit
  Query(&server, "{}");  // missing sentence: error

  JsonValue response = Query(&server, R"js({"id": 9, "cmd": "metrics"})js");
  EXPECT_EQ(response.At("status").string, "ok");
  EXPECT_EQ(response.At("id").string, "9");
  const std::string& text = response.At("exposition").string;
  // The exposition is built before the metrics request itself is
  // counted, so it reflects exactly the three preceding requests.
  EXPECT_EQ(MetricValue(text, "swfomc_serve_requests_total"), 3u);
  EXPECT_EQ(MetricValue(text, "swfomc_serve_errors_total"), 1u);
  EXPECT_EQ(MetricValue(text, "swfomc_serve_cache_hits_total"), 1u);
  EXPECT_EQ(MetricValue(text, "swfomc_serve_cache_misses_total"), 1u);
  EXPECT_EQ(MetricValue(text, "swfomc_serve_cache_circuits"), 1u);
  EXPECT_EQ(MetricValue(text, "swfomc_serve_request_usec_warm_count"), 1u);
  EXPECT_EQ(MetricValue(text, "swfomc_serve_request_usec_cold_count"), 2u);
  // Two batches of two vectors each landed in the batch histogram.
  EXPECT_EQ(MetricValue(text, "swfomc_serve_batch_size_count"), 2u);
  EXPECT_EQ(MetricValue(text, "swfomc_serve_batch_size_sum"), 4u);
  // The engine-level instruments ride in the same registry.
  EXPECT_GE(MetricValue(text, "swfomc_engine_queries_total"), 1u);
}

TEST(Serve, MetricsStayMonotoneUnderConcurrentQueries) {
  // Satellite contract: hammer queries from worker threads while this
  // thread polls the `metrics` command — every scraped counter must be
  // monotone, and the final totals must equal the ground truth.
  Server server;
  constexpr int kThreads = 4;
  constexpr int kIterations = 20;
  std::atomic<int> running{kThreads};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&server, &running] {
      for (int i = 0; i < kIterations; ++i) {
        server.HandleLine(
            R"js({"sentence": "forall x forall y S(x,y)", "domain": 3})js");
      }
      running.fetch_sub(1);
    });
  }
  std::uint64_t last_requests = 0;
  std::uint64_t last_hits = 0;
  while (running.load() > 0) {
    JsonValue response = server.HandleLine(R"js({"cmd": "metrics"})js").json;
    ASSERT_EQ(response.At("status").string, "ok");
    const std::string& text = response.At("exposition").string;
    std::uint64_t requests =
        MetricValue(text, "swfomc_serve_requests_total");
    std::uint64_t hits = MetricValue(text, "swfomc_serve_cache_hits_total");
    EXPECT_GE(requests, last_requests);
    EXPECT_GE(hits, last_hits);
    last_requests = requests;
    last_hits = hits;
  }
  for (std::thread& client : clients) client.join();
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses,
            static_cast<std::uint64_t>(kThreads * kIterations));
  EXPECT_EQ(stats.errors, 0u);
}

TEST(Serve, TraceLogRecordsRequestSpans) {
  std::ostringstream out;
  obs::TraceLog trace(&out);
  ServerOptions options;
  options.trace = &trace;
  Server server(options);
  Query(&server,
        R"js({"sentence": "forall x forall y S(x,y)", "domain": 3})js");
  Query(&server,
        R"js({"sentence": "forall x forall y S(x,y)", "domain": 3})js");
  std::istringstream lines(out.str());
  std::string line;
  int request_spans = 0;
  while (std::getline(lines, line)) {
    JsonValue record = ParseJson(line, "<trace>");
    if (record.At("name").string == "serve_request") {
      ++request_spans;
      EXPECT_EQ(record.At("type").string, "span");
      EXPECT_TRUE(record.Has("dur_us"));
      EXPECT_EQ(record.At("mode").string, "compile");
    }
  }
  EXPECT_EQ(request_spans, 2);
}

}  // namespace
}  // namespace swfomc
