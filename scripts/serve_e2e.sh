#!/usr/bin/env bash
# End-to-end contract of `swfomc serve`, driven through a pipe exactly the
# way a client process would drive it (registered as the tier-1 ctest
# `cli_serve_e2e`): one JSONL request per line in, one compact JSON
# response per line out, in order. The session mixes golden-corpus
# queries, a warm-cache repeat, a malformed line, and a budget-exhausted
# compile — the daemon must answer every line (errors are per-request,
# never fatal) and exit 0 on `quit`.
#
# Usage: scripts/serve_e2e.sh path/to/swfomc
set -u

bin="${1:?usage: serve_e2e.sh path/to/swfomc}"
failures=0

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

requests="$workdir/requests.jsonl"
responses="$workdir/responses.jsonl"

cat > "$requests" <<'EOF'
{"id": 1, "sentence": "forall x forall y S(x,y)", "domain": 3, "weights": [{"S": ["2", "1"]}]}
{"id": 2, "sentence": "forall x forall y S(x,y)", "domain": 3, "weights": [{"S": ["2", "1"]}, {"S": ["3", "1"]}]}
this line is not JSON
{"id": 3, "sentence": "forall x exists y S(x,y)", "domain": 3}
{"id": 4, "sentence": "exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))", "domain": 7, "max_decisions": 0}
{"id": 5, "cmd": "stats"}
{"id": 6, "cmd": "metrics"}
{"cmd": "quit"}
EOF

"$bin" serve < "$requests" > "$responses"
code=$?
if [[ "$code" != 0 ]]; then
  echo "FAIL: serve exited $code (want 0)"
  failures=1
fi

lines=$(wc -l < "$responses")
if [[ "$lines" != 8 ]]; then
  echo "FAIL: $lines response lines (want 8, one per request)"
  cat "$responses"
  failures=1
fi

# check LINE_NO DESCRIPTION PATTERN...: the response on that line must
# contain every pattern (fixed strings against the compact JSON).
check() {
  local line_no="$1" desc="$2"
  shift 2
  local line
  line="$(sed -n "${line_no}p" "$responses")"
  local pattern
  for pattern in "$@"; do
    if ! grep -qF -- "$pattern" <<< "$line"; then
      echo "FAIL: response $line_no ($desc) lacks $pattern"
      echo "  got: $line"
      failures=1
      return
    fi
  done
  echo "ok: response $line_no: $desc"
}

check 1 "cold golden query" \
  '"id":1' '"status":"ok"' '"wfomc":"512"' '"cached":false'
check 2 "warm batch over the cached circuit" \
  '"id":2' '"cached":true' '"wfomc":"512"' '"wfomc":"19683"'
check 3 "malformed line gets a per-request error" '"status":"error"'
check 4 "daemon keeps serving after the error" \
  '"id":3' '"status":"ok"' '"wfomc":"343"'
check 5 "exhausted compile degrades to certified bounds" \
  '"id":4' '"status":"ok"' '"compile_outcome":"aborted"' \
  '"outcome":"bounds"' '"lower"' '"upper"'
check 6 "stats reflect the session" \
  '"id":5' '"cache_hits":1' '"errors":1' '"circuits":2' \
  '"evicted_bytes":0' '"circuit_bytes_peak":'
check 7 "metrics command answers with an exposition" \
  '"id":6' '"status":"ok"' '"exposition":'
check 8 "quit acknowledges and closes" '"status":"ok"' '"bye":true'

# The exposition rides JSON-escaped inside response 7; unescape it and
# hold it to the Prometheus text-format grammar plus the session's
# ground-truth counts (5 requests before the stats line, plus stats
# itself, were counted when the scrape ran; one was the malformed error;
# id1/id3/id4 missed the circuit cache, id2 hit it).
exposition_line="$(sed -n '7p' "$responses")"
metrics="$workdir/metrics.txt"
grep -oE '"exposition":"(\\.|[^"\\])*"' <<< "$exposition_line" \
  | sed -e 's/^"exposition":"//' -e 's/"$//' \
  | sed -e 's/\\n/\n/g' -e 's/\\"/"/g' > "$metrics"
if [[ ! -s "$metrics" ]]; then
  echo "FAIL: metrics response carries no exposition text"
  failures=1
else
  bad="$(grep -vE '^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?)$' "$metrics" || true)"
  if [[ -n "$bad" ]]; then
    echo "FAIL: exposition lines break the text-format grammar:"
    echo "$bad"
    failures=1
  else
    echo "ok: exposition parses ($(grep -cv '^#' "$metrics") samples)"
  fi
  expect_metric() {
    local name="$1" value="$2"
    if grep -qE "^${name} ${value}\$" "$metrics"; then
      echo "ok: metric $name = $value"
    else
      echo "FAIL: metric $name != $value"
      grep "^${name} " "$metrics" || echo "  ($name absent)"
      failures=1
    fi
  }
  expect_metric swfomc_serve_requests_total 6
  expect_metric swfomc_serve_errors_total 1
  expect_metric swfomc_serve_cache_hits_total 1
  expect_metric swfomc_serve_cache_misses_total 3
  expect_metric swfomc_serve_cache_circuits 2
  expect_metric swfomc_serve_batch_size_count 4
fi

exit "$failures"
