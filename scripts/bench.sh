#!/usr/bin/env bash
# Perf-trajectory recorder: runs the WMC ablation, Table 1, and sweep
# benchmark drivers with JSON output and folds the reports into
# BENCH_wmc.json, so successive PRs have hard numbers to compare against.
#
# Usage: scripts/bench.sh [build-dir]
#   BENCH_MIN_TIME=0.01 scripts/bench.sh       # CI smoke: one iteration each
#   BENCH_OUT=/tmp/b.json scripts/bench.sh     # write elsewhere
#   SWFOMC_BENCH_THREADS=8 scripts/bench.sh    # thread count for
#                                              # bench_sweep's pooled rows
#                                              # (default 4; the ablation's
#                                              # thread rows are fixed at
#                                              # 1/2/4; speedups need
#                                              # multi-core hardware)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
MIN_TIME="${BENCH_MIN_TIME:-0.5}"
OUT="${BENCH_OUT:-BENCH_wmc.json}"
export SWFOMC_BENCH_THREADS="${SWFOMC_BENCH_THREADS:-4}"

BENCHES=(bench_wmc_ablation bench_table1 bench_sweep bench_nnf
         bench_lifted_nnf bench_numeric bench_budget bench_serve
         bench_obs)

# bench_serve's cold-process row spawns the real CLI per iteration.
export SWFOMC_CLI="${SWFOMC_CLI:-$BUILD_DIR/tools/swfomc}"

for bench in "${BENCHES[@]}"; do
  if [[ ! -x "$BUILD_DIR/bench/$bench" ]]; then
    echo "error: $BUILD_DIR/bench/$bench not built (run cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

for bench in "${BENCHES[@]}"; do
  echo "running $bench (min_time=${MIN_TIME}s, threads=${SWFOMC_BENCH_THREADS})..."
  "$BUILD_DIR/bench/$bench" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$tmp/$bench.json" \
    --benchmark_out_format=json >/dev/null
done

{
  printf '{\n'
  first=1
  for bench in "${BENCHES[@]}"; do
    if [[ $first -eq 0 ]]; then printf ',\n'; fi
    first=0
    printf '"%s":\n' "$bench"
    cat "$tmp/$bench.json"
  done
  printf '}\n'
} > "$OUT"

echo "wrote $OUT"
