#!/usr/bin/env bash
# Perf-trajectory recorder: runs the WMC ablation and Table 1 benchmark
# drivers with JSON output and folds both reports into BENCH_wmc.json, so
# successive PRs have hard numbers to compare against.
#
# Usage: scripts/bench.sh [build-dir]
#   BENCH_MIN_TIME=0.01 scripts/bench.sh   # CI smoke: one iteration each
#   BENCH_OUT=/tmp/b.json scripts/bench.sh # write elsewhere
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
MIN_TIME="${BENCH_MIN_TIME:-0.5}"
OUT="${BENCH_OUT:-BENCH_wmc.json}"

for bench in bench_wmc_ablation bench_table1; do
  if [[ ! -x "$BUILD_DIR/bench/$bench" ]]; then
    echo "error: $BUILD_DIR/bench/$bench not built (run cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

for bench in bench_wmc_ablation bench_table1; do
  echo "running $bench (min_time=${MIN_TIME}s)..."
  "$BUILD_DIR/bench/$bench" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$tmp/$bench.json" \
    --benchmark_out_format=json >/dev/null
done

{
  printf '{\n"bench_wmc_ablation":\n'
  cat "$tmp/bench_wmc_ablation.json"
  printf ',\n"bench_table1":\n'
  cat "$tmp/bench_table1.json"
  printf '}\n'
} > "$OUT"

echo "wrote $OUT"
