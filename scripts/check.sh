#!/usr/bin/env bash
# Local + CI verification wrapper: configure, build, run the tier-1 suite.
#
# Usage: scripts/check.sh [build-dir]
#   CXX=clang++ scripts/check.sh        # pick a compiler
#   CHECK_LABELS="tier1|slow|example" scripts/check.sh   # widen the ctest run
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
LABELS="${CHECK_LABELS:-tier1}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . -DSWFOMC_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" -L "$LABELS" --output-on-failure -j "$JOBS"
