#!/usr/bin/env bash
# Exit-code contract of the swfomc CLI, asserted against the real binary
# (registered as the tier-1 ctest `cli_exit_codes`):
#   0   success (including --help)
#   1   an --check comparison failed
#   2   unreadable or malformed input file
#   3   a resource budget was exhausted under --on-budget=error
#   64  usage error (EX_USAGE): bad command, bad option, missing operand
#
# Usage: scripts/cli_exit_codes.sh path/to/swfomc
set -u

bin="${1:?usage: cli_exit_codes.sh path/to/swfomc}"
failures=0

expect() {
  local want="$1"
  shift
  "$@" >/dev/null 2>&1
  local got=$?
  if [[ "$got" != "$want" ]]; then
    echo "FAIL: exit $got (want $want): $*"
    failures=1
  else
    echo "ok: exit $got: $*"
  fi
}

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# 0: help, from any position.
expect 0 "$bin" --help
expect 0 "$bin" run --help

# 64: the command line itself is wrong.
expect 64 "$bin"
expect 64 "$bin" frobnicate whatever.model
expect 64 "$bin" run
expect 64 "$bin" run --bogus-flag x.model
expect 64 "$bin" run --threads abc x.model
expect 64 "$bin" run --method warp-drive x.model
expect 64 "$bin" run --threads
expect 64 "$bin" run --out circuit.nnf x.model        # --out is compile-only
expect 64 "$bin" compile --out a.nnf --out-dir d x.model
expect 64 "$bin" eval --out-dir d x.nnf
expect 64 "$bin" eval --method grounded x.nnf         # the circuit kind is
expect 64 "$bin" compile --threads 4 x.model          # fixed; thread counts
expect 64 "$bin" eval --threads 2 x.nnf               # would be ignored
expect 64 "$bin" run --domain 3 x.model               # --domain is eval-only
expect 64 "$bin" compile --domain 3 x.model
expect 64 "$bin" eval --domain abc x.nnf
expect 64 "$bin" serve --domain 3
mkdir -p "$workdir/a" "$workdir/b"
printf 'sentence forall x R(x)\ndomain 1\n' > "$workdir/a/same.model"
printf 'sentence forall x R(x)\ndomain 1\n' > "$workdir/b/same.model"
expect 64 "$bin" compile --out-dir "$workdir/nnf-dup" \
  "$workdir/a/same.model" "$workdir/b/same.model"     # basenames collide
expect 64 "$bin" run --budget-ms x.model              # flag eats the operand
expect 64 "$bin" run --budget-ms -5 x.model
expect 64 "$bin" run --max-memory 64q x.model         # bad size suffix
expect 64 "$bin" run --on-budget=panic --budget-ms 5 x.model
expect 64 "$bin" run --on-budget=error x.model        # needs a budget flag
expect 64 "$bin" eval --budget-ms 5 x.nnf             # eval runs no search
expect 64 "$bin" route --max-decisions 1 x.model
# serve is a daemon: it reads requests from its connection, not from file
# operands, and one-shot reporting flags have nothing to act on.
expect 64 "$bin" serve x.model
expect 64 "$bin" serve --check
expect 64 "$bin" serve --method grounded
expect 64 "$bin" serve --on-budget=error --budget-ms 5
expect 64 "$bin" serve --out report.json
expect 64 "$bin" serve --listen 99999                 # not a TCP port
expect 64 "$bin" serve --max-circuits abc
expect 64 "$bin" run --listen 4242 x.model            # serve-only flags
expect 64 "$bin" run --max-circuits 4 x.model
expect 64 "$bin" compile --max-circuit-bytes 1M x.model

# Observability sinks follow the counting/evaluation work: route and
# print have none, serve exposes metrics through its protocol command
# instead of a file, and both flags demand a filename.
expect 64 "$bin" route --metrics-out m.txt x.model
expect 64 "$bin" route --trace-out t.jsonl x.model
expect 64 "$bin" print --metrics-out m.txt x.model
expect 64 "$bin" print --trace-out t.jsonl x.model
expect 64 "$bin" serve --metrics-out m.txt
expect 64 "$bin" run --metrics-out                    # flag needs a value
expect 64 "$bin" run --trace-out
expect 64 "$bin" run --metrics-out= x.model
expect 64 "$bin" run --trace-out= x.model

# 2: input files that cannot be read or parsed.
expect 2 "$bin" run "$workdir/does-not-exist.model"
expect 2 "$bin" cnf "$workdir/does-not-exist.cnf"
expect 2 "$bin" eval "$workdir/does-not-exist.nnf"
printf 'garbage directive\n' > "$workdir/bad.model"
expect 2 "$bin" run "$workdir/bad.model"
printf 'nnf 1 0 1\nL 2\n' > "$workdir/bad.nnf"        # literal out of range
expect 2 "$bin" eval "$workdir/bad.nnf"

# 1: the count disagrees with the pinned expectation.
printf 'sentence forall x R(x)\ndomain 1\nexpect 5\n' > "$workdir/wrong.model"
expect 1 "$bin" run --check "$workdir/wrong.model"
expect 1 "$bin" compile --check "$workdir/wrong.model"
printf 'nnf 1 0 1\ne 5\nL 1\n' > "$workdir/wrong.nnf"  # evaluates to 1
expect 1 "$bin" eval --check "$workdir/wrong.nnf"
# A sweep whose FINAL point matches but whose mid-range point does not
# must still fail (the check covers every point, not just the last one).
printf 'sentence forall x exists y S(x,y)\ndomain 1..3\nexpect 2 = 999\nexpect 343\n' \
  > "$workdir/midsweep.model"
expect 1 "$bin" run --check "$workdir/midsweep.model"
printf 'sentence forall x exists y S(x,y)\ndomain 1..3\nexpect 2 = 9\nexpect 343\n' \
  > "$workdir/goodsweep.model"
expect 0 "$bin" run --check "$workdir/goodsweep.model"

# 3: a budget fired and the caller asked --on-budget=error. The triangle
# sentence is FO3 (grounded route) and needs real decisions, so a zero
# decision cap always stops it; the default bounds policy keeps exit 0.
printf 'model triangle\ndomain 3\nmethod grounded\nsentence exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))\n' \
  > "$workdir/triangle.model"
expect 3 "$bin" run --max-decisions 0 --on-budget=error "$workdir/triangle.model"
expect 3 "$bin" run --budget-ms 0 --on-budget error "$workdir/triangle.model"
expect 3 "$bin" compile --max-decisions 0 --on-budget=error "$workdir/triangle.model"
expect 0 "$bin" run --max-decisions 0 "$workdir/triangle.model"
expect 0 "$bin" run --max-decisions 0 --on-budget=bounds "$workdir/triangle.model"

# Lifted compilation: a liftable FO² model needs no `domain` directive
# and compiles to a domain-parametric circuit; a non-liftable one
# without a domain is a malformed workload (exit 2), as is `run` on any
# domain-less model. --domain only makes sense against lifted circuits.
printf 'sentence forall x exists y S(x,y)\n' > "$workdir/liftable.model"
expect 0 "$bin" compile "$workdir/liftable.model"
expect 0 "$bin" compile --out-dir "$workdir/lnnf" "$workdir/liftable.model"
expect 0 "$bin" eval --domain 4 "$workdir/lnnf/liftable.nnf"
expect 2 "$bin" eval "$workdir/lnnf/liftable.nnf"     # no e line, no --domain
expect 2 "$bin" run "$workdir/liftable.model"         # run needs a domain
printf 'sentence forall x T(x,x,x)\n' > "$workdir/unliftable.model"
expect 2 "$bin" compile "$workdir/unliftable.model"   # grounded needs a domain
printf 'sentence forall x R(x)\ndomain 2\n' > "$workdir/g.model"
expect 0 "$bin" compile --method grounded --out-dir "$workdir/gnnf" "$workdir/g.model"
expect 64 "$bin" eval --domain 2 "$workdir/gnnf/g.nnf" # grounded circuits fix n

# 0: the same checks, satisfied. Also exercises compile -> eval chaining.
printf 'sentence forall x R(x)\ndomain 1\nexpect 1\n' > "$workdir/right.model"
expect 0 "$bin" run --check "$workdir/right.model"
expect 0 "$bin" compile --check --out-dir "$workdir/nnf" "$workdir/right.model"
expect 0 "$bin" eval --check "$workdir/nnf/right.nnf"

# 0: observability sinks on a counting command write real files; an
# unwritable sink is an I/O failure (exit 2), not a usage error.
expect 0 "$bin" run --metrics-out "$workdir/m.txt" \
  --trace-out "$workdir/t.jsonl" --check "$workdir/right.model"
expect 0 grep -q '^swfomc_' "$workdir/m.txt"
expect 0 grep -q '"ts_us"' "$workdir/t.jsonl"
expect 2 "$bin" run --metrics-out "$workdir/no-such-dir/m.txt" \
  "$workdir/right.model"

# 0: the daemon's side of the contract — `quit` and EOF are clean exits.
printf '{"cmd":"quit"}\n' > "$workdir/quit.jsonl"
expect 0 sh -c "exec \"$bin\" serve < \"$workdir/quit.jsonl\""
expect 0 sh -c "exec \"$bin\" serve < /dev/null"

exit "$failures"
