#!/usr/bin/env python3
"""Benchmark-regression gate: compares a fresh BENCH_wmc.json against the
committed baseline and fails (exit 1) when any instance regressed more
than the threshold.

Usage:
    scripts/bench_check.py BASELINE.json FRESH.json [--threshold 1.25]

Rules:
  * Instances are matched by (driver, benchmark name); instances present
    on only one side are reported but never fail the gate (new rows have
    no baseline, retired rows have no fresh run).
  * Multi-threaded rows are skipped: the committed baseline was recorded
    on a 1-core container (see CHANGES.md), where threads > 1 only
    measures pool overhead — comparing them against a multi-core CI
    runner would be noise in both directions. A row is multi-threaded
    when its counter/pool thread count (the trailing benchmark argument
    in `..._Threads/N/T/...` rows, or any `_Pooled` sweep row) is > 1.
  * Comparison is on real_time, normalized per iteration by the
    benchmark library already; the threshold is a ratio (1.25 = +25%).

Environment: BENCH_REGRESSION_THRESHOLD overrides --threshold.
"""

import argparse
import json
import os
import re
import sys


def is_multithreaded(name: str) -> bool:
    """True for rows whose counter/pool runs more than one thread."""
    if "_Pooled" in name:
        return True
    match = re.match(r".*_Threads/\d+/(\d+)(?:/|$)", name)
    return match is not None and int(match.group(1)) > 1


def load_rows(path: str) -> dict:
    with open(path) as handle:
        report = json.load(handle)
    rows = {}
    for driver, payload in report.items():
        for bench in payload.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            rows[(driver, bench["name"])] = float(bench["real_time"])
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("BENCH_REGRESSION_THRESHOLD", "1.25")),
        help="fail when fresh/baseline exceeds this ratio (default 1.25)",
    )
    args = parser.parse_args()

    baseline = load_rows(args.baseline)
    fresh = load_rows(args.fresh)

    regressions = []
    skipped = 0
    compared = 0
    for key, base_time in sorted(baseline.items()):
        driver, name = key
        if key not in fresh:
            print(f"note: {driver}:{name} missing from fresh run")
            continue
        if is_multithreaded(name):
            skipped += 1
            continue
        compared += 1
        ratio = fresh[key] / base_time if base_time > 0 else float("inf")
        marker = ""
        if ratio > args.threshold:
            regressions.append((driver, name, base_time, fresh[key], ratio))
            marker = "  <-- REGRESSION"
        print(f"{driver}:{name}: {base_time:.3g} -> {fresh[key]:.3g} ns "
              f"({ratio:.2f}x){marker}")
    for key in sorted(set(fresh) - set(baseline)):
        print(f"note: {key[0]}:{key[1]} has no baseline (new instance)")

    print(f"\ncompared {compared} instances "
          f"({skipped} multi-threaded rows skipped), "
          f"threshold {args.threshold:.2f}x")
    if regressions:
        print(f"FAIL: {len(regressions)} instance(s) regressed "
              f"more than {100 * (args.threshold - 1):.0f}%:")
        for driver, name, base, new, ratio in regressions:
            print(f"  {driver}:{name}: {base:.3g} -> {new:.3g} ns "
                  f"({ratio:.2f}x)")
        return 1
    print("OK: no instance regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
