#!/usr/bin/env python3
"""Benchmark-regression gate: compares a fresh BENCH_wmc.json against the
committed baseline and fails (exit 1) when any instance regressed more
than the threshold.

Usage:
    scripts/bench_check.py BASELINE.json FRESH.json [--threshold 1.25]

Rules:
  * Instances are matched by (driver, benchmark name); instances present
    on only one side are reported but never fail the gate (new rows have
    no baseline, retired rows have no fresh run).
  * Multi-threaded rows are skipped when the baseline was recorded on a
    single-core machine (the driver report's context.num_cpus, which the
    benchmark library stamps at record time): there, threads > 1 only
    measures pool overhead, and comparing such rows against a multi-core
    CI runner would be noise in both directions. A baseline recorded
    with num_cpus > 1 compares its multi-threaded rows normally. A row
    is multi-threaded when its counter/pool thread count (the trailing
    benchmark argument in `..._Threads/N/T/...` rows, or any `_Pooled`
    sweep row) is > 1.
  * Comparison is on real_time, normalized per iteration by the
    benchmark library already; the threshold is a ratio (1.25 = +25%).

Environment: SWFOMC_BENCH_TOLERANCE overrides the default threshold
(e.g. SWFOMC_BENCH_TOLERANCE=1.5 allows +50%); the legacy
BENCH_REGRESSION_THRESHOLD is still honored when the former is unset.
An explicit --threshold flag wins over both.
"""

import argparse
import json
import math
import os
import re
import sys


def is_multithreaded(name: str) -> bool:
    """True for rows whose counter/pool runs more than one thread."""
    if "_Pooled" in name:
        return True
    match = re.match(r".*_Threads/\d+/(\d+)(?:/|$)", name)
    return match is not None and int(match.group(1)) > 1


def load_rows(path: str) -> tuple:
    """((driver, name) -> row dict, driver -> context num_cpus)."""
    with open(path) as handle:
        report = json.load(handle)
    rows = {}
    cpus = {}
    for driver, payload in report.items():
        cpus[driver] = int(payload.get("context", {}).get("num_cpus", 1))
        for bench in payload.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            rows[(driver, bench["name"])] = bench
    return rows, cpus


def uniform_drift(ratios: list) -> float:
    """The common slowdown factor when every row drifted together, or 0.

    A genuine code regression hits the touched rows and leaves the rest
    alone; a slower machine (different CPU, thermal throttling, noisy
    neighbor) slows *every* row by roughly the same factor. When all
    compared rows regressed and each ratio sits within +/-15% of their
    geometric mean, the drift is uniform and the right fix is re-recording
    the baseline on the current runner, not hunting a phantom regression.
    """
    if len(ratios) < 3 or min(ratios) <= 1.0:
        return 0.0
    mean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    if all(max(r / mean, mean / r) <= 1.15 for r in ratios):
        return mean
    return 0.0


def default_threshold() -> float:
    for variable in ("SWFOMC_BENCH_TOLERANCE", "BENCH_REGRESSION_THRESHOLD"):
        value = os.environ.get(variable)
        if value is None:
            continue
        try:
            threshold = float(value)
        except ValueError:
            sys.exit(f"error: {variable}={value!r} is not a number")
        if threshold < 1.0:
            sys.exit(f"error: {variable}={value!r} must be >= 1.0 "
                     "(it is a fresh/baseline ratio, not a percentage)")
        return threshold
    return 1.25


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="fail when fresh/baseline exceeds this ratio (default 1.25; "
        "SWFOMC_BENCH_TOLERANCE / BENCH_REGRESSION_THRESHOLD override it)",
    )
    args = parser.parse_args()
    if args.threshold is None:
        # Resolved only when the flag is absent, so an explicit
        # --threshold wins even over a malformed environment variable.
        args.threshold = default_threshold()

    baseline, baseline_cpus = load_rows(args.baseline)
    fresh, _ = load_rows(args.fresh)

    regressions = []
    ratios = []
    skipped = 0
    compared = 0
    for key, base_row in sorted(baseline.items()):
        driver, name = key
        base_time = float(base_row["real_time"])
        if key not in fresh:
            print(f"note: {driver}:{name} missing from fresh run")
            continue
        if baseline_cpus.get(driver, 1) <= 1 and is_multithreaded(name):
            # A 1-core baseline has nothing meaningful to say about
            # multi-threaded rows.
            skipped += 1
            continue
        compared += 1
        fresh_time = float(fresh[key]["real_time"])
        ratio = fresh_time / base_time if base_time > 0 else float("inf")
        ratios.append(ratio)
        marker = ""
        if ratio > args.threshold:
            regressions.append((driver, name, base_time, fresh_time, ratio))
            marker = "  <-- REGRESSION"
        print(f"{driver}:{name}: {base_time:.3g} -> {fresh_time:.3g} ns "
              f"({ratio:.2f}x){marker}")
    for key in sorted(set(fresh) - set(baseline)):
        print(f"note: {key[0]}:{key[1]} has no baseline (new instance)")

    print(f"\ncompared {compared} instances "
          f"({skipped} multi-threaded rows skipped), "
          f"threshold {args.threshold:.2f}x")
    if regressions:
        drift = uniform_drift(ratios)
        if drift:
            print(f"FAIL: every compared instance slowed down by a "
                  f"uniform ~{drift:.2f}x (ratios within +/-15% of their "
                  f"geometric mean).")
            print("This pattern is machine skew — a slower/throttled "
                  "runner, not a code regression. Re-record the baseline "
                  "on the current runner (scripts/bench.sh) instead of "
                  "bisecting individual rows.")
            return 1
        print(f"FAIL: {len(regressions)} instance(s) regressed "
              f"more than {100 * (args.threshold - 1):.0f}%:")
        for driver, name, base, new, ratio in regressions:
            print(f"  {driver}:{name}: {base:.3g} -> {new:.3g} ns "
                  f"({ratio:.2f}x)")
            print(f"  baseline row: "
                  f"{json.dumps(baseline[(driver, name)], sort_keys=True)}")
        print("(override the threshold with SWFOMC_BENCH_TOLERANCE, "
              "e.g. SWFOMC_BENCH_TOLERANCE=1.5 for +50%)")
        return 1
    print("OK: no instance regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
