# Test-time helper for the cli_golden_eval ctest entry: globs the .nnf
# files the cli_golden_compile fixture just wrote (a configure-time glob
# would see an empty directory) and replays them through `swfomc eval
# --check`. Usage:
#   cmake -D SWFOMC_CLI=<binary> -D NNF_DIR=<dir> -P eval_dir.cmake
file(GLOB circuits "${NNF_DIR}/*.nnf")
if(NOT circuits)
  message(FATAL_ERROR "no .nnf files in ${NNF_DIR} (did the compile fixture run?)")
endif()
execute_process(
  COMMAND ${SWFOMC_CLI} eval --check --compact ${circuits}
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "swfomc eval --check failed with status ${status}")
endif()
