// swfomc — the command-line front-end: feed the engine models and
// weighted CNFs as files instead of recompiled C++. Every subcommand
// emits one machine-readable JSON document on stdout; diagnostics go to
// stderr with file:line:column positions.
//
//   swfomc run [options] FILE.model...    evaluate WFOMC workloads
//   swfomc cnf [options] FILE.cnf...      weighted model counts (DPLL)
//   swfomc route FILE.model...            routing decision only, no solve
//   swfomc print FILE.{model,cnf}...      reprint in canonical form
//
// Options:
//   --threads N   worker threads (1 = sequential, 0 = hardware), default 1
//   --method M    force auto | lifted-fo2 | gamma-acyclic | grounded
//   --check       exit 1 when a model's `expect` value doesn't match
//   --compact     single-line JSON output
//
// Exit codes: 0 success, 1 an `expect` check failed, 2 bad usage or
// unreadable/malformed input.

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "api/engine.h"
#include "io/cnf_format.h"
#include "io/diagnostics.h"
#include "io/json.h"
#include "io/model_format.h"
#include "io/runner.h"

namespace {

using swfomc::api::Engine;
using swfomc::api::Method;
using swfomc::io::JsonValue;
using swfomc::io::ModelSpec;
using swfomc::io::RunOptions;
using swfomc::io::WeightedCnf;

constexpr const char* kUsage =
    R"(usage: swfomc <command> [options] <file>...

commands:
  run     evaluate .model files: parse, route, count, report JSON
  cnf     weighted model count of .cnf files through the DPLL counter
  route   report the routing decision for .model files without solving
  print   parse .model/.cnf files and reprint them in canonical form

options:
  --threads N   worker threads (1 = sequential, 0 = one per hardware
                thread); applies to the grounded path and sweeps
  --method M    force a method: auto | lifted-fo2 | gamma-acyclic | grounded
  --check       exit with status 1 if any model's `expect` value mismatches
  --compact     emit single-line JSON instead of pretty-printed
  --help        this text

exit codes: 0 ok, 1 an expect-check failed, 2 usage or input error
)";

struct CliOptions {
  std::string command;
  RunOptions run;
  bool check = false;
  bool compact = false;
  std::vector<std::string> files;
};

int Fail(const std::string& message) {
  std::cerr << "swfomc: " << message << "\n";
  return 2;
}

// Strict flag-value parser: digits only, bounded — `--threads -1` or
// `--threads 4abc` must be a usage error, not ~4 billion worker threads
// (std::stoul would accept both).
unsigned ParseThreadCount(const std::string& text) {
  if (text.empty()) throw std::runtime_error("--threads needs a value");
  unsigned value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      throw std::runtime_error("bad --threads value '" + text +
                               "' (expected a non-negative integer)");
    }
    value = value * 10 + static_cast<unsigned>(c - '0');
    if (value > 4096) {
      throw std::runtime_error("--threads value '" + text +
                               "' exceeds the supported maximum (4096)");
    }
  }
  return value;  // 0 = one per hardware thread
}

std::optional<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  if (argc < 2) return std::nullopt;
  options.command = argv[1];
  if (options.command == "--help" || options.command == "-h") {
    return std::nullopt;
  }
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return std::nullopt;
    if (arg == "--check") {
      options.check = true;
    } else if (arg == "--compact") {
      options.compact = true;
    } else if (arg == "--threads") {
      if (++i >= argc) throw std::runtime_error("--threads needs a value");
      options.run.num_threads = ParseThreadCount(argv[i]);
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.run.num_threads = ParseThreadCount(arg.substr(10));
    } else if (arg == "--method" || arg.rfind("--method=", 0) == 0) {
      std::string name;
      if (arg == "--method") {
        if (++i >= argc) throw std::runtime_error("--method needs a value");
        name = argv[i];
      } else {
        name = arg.substr(9);
      }
      auto method = swfomc::io::ParseMethodName(name);
      if (!method.has_value()) {
        throw std::runtime_error("unknown method '" + name + "'");
      }
      options.run.method_override = *method;
    } else if (arg.rfind("--", 0) == 0) {
      throw std::runtime_error("unknown option '" + arg + "'");
    } else {
      options.files.push_back(std::move(arg));
    }
  }
  if (options.files.empty()) {
    throw std::runtime_error("no input files");
  }
  return options;
}

void Emit(const JsonValue& document, bool compact) {
  std::cout << document.Dump(compact ? -1 : 2) << "\n";
}

int RunModels(const CliOptions& options) {
  JsonValue results = JsonValue::MakeArray();
  bool checks_passed = true;
  for (const std::string& path : options.files) {
    ModelSpec spec = swfomc::io::LoadModelFile(path);
    swfomc::io::ModelRunReport report =
        swfomc::io::RunModel(spec, options.run, path);
    if (options.check && spec.expect.has_value() && !report.check_passed) {
      checks_passed = false;
      std::cerr << "swfomc: check FAILED: " << path << ": expected "
                << spec.expect->ToString() << " at n=" << spec.domain_hi
                << ", computed " << report.points.back().value.ToString()
                << " (" << swfomc::api::ToString(report.method_used) << ")\n";
    }
    results.array.push_back(swfomc::io::ToJson(report));
  }
  JsonValue document = JsonValue::MakeObject();
  document.Add("results", std::move(results));
  if (options.check) {
    document.Add("check", JsonValue::MakeString(checks_passed ? "pass"
                                                              : "fail"));
  }
  Emit(document, options.compact);
  return checks_passed ? 0 : 1;
}

int RunCnfs(const CliOptions& options) {
  JsonValue results = JsonValue::MakeArray();
  for (const std::string& path : options.files) {
    WeightedCnf instance = swfomc::io::LoadWeightedCnfFile(path);
    swfomc::io::CnfRunReport report =
        swfomc::io::RunWeightedCnf(instance, options.run, path);
    results.array.push_back(swfomc::io::ToJson(report));
  }
  JsonValue document = JsonValue::MakeObject();
  document.Add("results", std::move(results));
  Emit(document, options.compact);
  return 0;
}

int RunRoute(const CliOptions& options) {
  JsonValue results = JsonValue::MakeArray();
  for (const std::string& path : options.files) {
    ModelSpec spec = swfomc::io::LoadModelFile(path);
    Engine engine(spec.vocabulary);
    swfomc::api::RouteDecision decision =
        engine.ExplainRoute(spec.sentence);
    JsonValue entry = JsonValue::MakeObject();
    entry.Add("file", JsonValue::MakeString(path));
    entry.Add("method",
              JsonValue::MakeString(swfomc::api::ToString(decision.method)));
    entry.Add("reason", JsonValue::MakeString(decision.reason));
    results.array.push_back(std::move(entry));
  }
  JsonValue document = JsonValue::MakeObject();
  document.Add("results", std::move(results));
  Emit(document, options.compact);
  return 0;
}

int RunPrint(const CliOptions& options) {
  for (const std::string& path : options.files) {
    if (path.ends_with(".cnf")) {
      std::cout << swfomc::io::PrintWeightedCnf(
          swfomc::io::LoadWeightedCnfFile(path));
    } else {
      std::cout << swfomc::io::PrintModel(swfomc::io::LoadModelFile(path));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<CliOptions> options;
  try {
    options = ParseArgs(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << kUsage;
    return Fail(error.what());
  }
  if (!options.has_value()) {
    std::cout << kUsage;
    return argc < 2 ? 2 : 0;
  }
  try {
    if (options->command == "run") return RunModels(*options);
    if (options->command == "cnf") return RunCnfs(*options);
    if (options->command == "route") return RunRoute(*options);
    if (options->command == "print") return RunPrint(*options);
    std::cerr << kUsage;
    return Fail("unknown command '" + options->command + "'");
  } catch (const swfomc::io::ParseError& error) {
    return Fail(error.what());
  } catch (const std::exception& error) {
    return Fail(error.what());
  }
}
