// swfomc — the command-line front-end: feed the engine models and
// weighted CNFs as files instead of recompiled C++. Every subcommand
// emits one machine-readable JSON document on stdout; diagnostics go to
// stderr with file:line:column positions.
//
//   swfomc run [options] FILE.model...       evaluate WFOMC workloads
//   swfomc cnf [options] FILE.cnf...         weighted model counts (DPLL)
//   swfomc route FILE.model...               routing decision only, no solve
//   swfomc compile [options] FILE.model...   compile to d-DNNF circuits
//   swfomc eval [options] FILE.nnf...        evaluate compiled circuits
//   swfomc print FILE.{model,cnf,nnf}...     reprint in canonical form
//   swfomc serve [options]                   long-lived JSONL inference daemon
//
// Options:
//   --threads N    worker threads (1 = sequential, 0 = hardware), default 1
//   --method M     force auto | lifted-fo2 | gamma-acyclic | grounded
//   --check        exit 1 when an `expect`/`e` value doesn't match
//   --compact      single-line JSON output
//   --out FILE     compile: write the circuit to FILE (single input)
//   --out-dir DIR  compile: write one INPUT-basename.nnf per input
//   --domain N     eval: domain size for lifted circuits
//   --budget-ms N      wall-clock budget per input (run/cnf/compile)
//   --max-decisions N  decision budget per input
//   --max-memory N     memory ceiling, k/m/g suffixes (component cache)
//   --on-budget M      bounds (report anytime bounds; default) | error
//
// Exit codes: 0 success, 1 a check failed, 2 unreadable or malformed
// input, 3 a budget was exhausted under --on-budget=error, 64 usage
// error (unknown command/option, missing operand).

#include <filesystem>
#include <fstream>
#include <map>
#include <iostream>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "api/engine.h"
#include "io/cnf_format.h"
#include "io/diagnostics.h"
#include "io/json.h"
#include "io/model_format.h"
#include "io/nnf_format.h"
#include "io/runner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/budget.h"
#include "serve/server.h"

namespace {

using swfomc::api::Engine;
using swfomc::api::Method;
using swfomc::io::JsonValue;
using swfomc::io::ModelSpec;
using swfomc::io::NnfDocument;
using swfomc::io::RunOptions;
using swfomc::io::WeightedCnf;

// BSD sysexits EX_USAGE: the command line itself was wrong (as opposed to
// exit 2, a file we could not read or parse).
constexpr int kExitUsage = 64;
// A resource budget fired and the caller asked --on-budget=error: the
// inputs were fine, the answer is just not exact.
constexpr int kExitBudget = 3;

constexpr const char* kUsage =
    R"(usage: swfomc <command> [options] <file>...

commands:
  run      evaluate .model files: parse, route, count, report JSON
  cnf      weighted model count of .cnf files through the DPLL counter
  route    report the routing decision for .model files without solving
  compile  compile .model files into circuits (.nnf): liftable FO²
           sentences become domain-parametric lifted circuits (no
           `domain` directive needed); everything else traces the
           grounded search into a fixed-n d-DNNF
  eval     evaluate .nnf circuits (either dialect) under their embedded
           weights; --domain N picks the domain size for lifted circuits
           (default: the `e` line's size)
  print    parse .model/.cnf/.nnf files and reprint them canonically
  serve    long-lived inference daemon: newline-delimited JSON requests
           on stdin (or a TCP port with --listen), one response line
           each; compiled circuits are kept in a bounded LRU so repeat
           queries skip compilation (see the README's Serving section)

options:
  --threads N    worker threads (1 = sequential, 0 = one per hardware
                 thread); applies to the grounded path and sweeps of
                 run/cnf (compile and eval are sequential and reject it)
  --method M     force a method: auto | lifted-fo2 | gamma-acyclic |
                 grounded (run and compile; gamma-acyclic has no
                 circuit form and is rejected by compile)
  --check        exit with status 1 if any model's `expect` (or circuit's
                 `e`) value mismatches
  --compact      emit single-line JSON instead of pretty-printed
  --out FILE     compile only: write the circuit to FILE (one input file)
  --out-dir DIR  compile only: write DIR/<input-basename>.nnf per input
  --domain N     eval only: evaluate lifted circuits at domain size N
                 (rejected for grounded circuits — they fix n at
                 compile time)
  --budget-ms N      wall-clock budget per input, in milliseconds; an
                     exhausted grounded search reports certified anytime
                     bounds instead of running on (run/cnf/compile; the
                     deadline restarts for each input file)
  --max-decisions N  cap on DPLL decisions per input (run/cnf/compile)
  --max-memory N     component-cache memory ceiling in bytes; accepts
                     k/m/g binary suffixes (run/cnf/compile)
  --on-budget M      what an exhausted budget means: bounds (default —
                     report lower/upper and exit 0) or error (exit 3)
  --metrics-out FILE write Prometheus-style text exposition of the run's
                     counters/gauges/histograms to FILE on exit
                     (run/cnf/compile/eval; serve exposes the same data
                     through its `metrics` protocol command instead)
  --trace-out FILE   write a structured JSONL span/event trace to FILE
                     (run/cnf/compile/eval/serve)
  --listen PORT           serve only: accept TCP connections on 127.0.0.1
                          instead of stdin/stdout (0 = ephemeral port,
                          reported on stderr)
  --max-circuits N        serve only: circuit-LRU entry bound (default 64)
  --max-circuit-bytes N   serve only: circuit-LRU byte bound, k/m/g
                          suffixes (default 256m)
  --max-request-bytes N   serve only: longest accepted request line
                          (default 1m)
  (serve treats --budget-ms/--max-decisions/--max-memory as per-request
  defaults that requests may override)
  --help         this text

exit codes: 0 ok, 1 a check failed, 2 unreadable or malformed input,
3 a budget was exhausted under --on-budget=error, 64 usage error
)";

// A bad command line (vs. bad input files, which stay exit 2).
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class OnBudget { kBounds, kError };

struct CliOptions {
  std::string command;
  RunOptions run;
  bool check = false;
  bool compact = false;
  /// Explicitly-set --on-budget (usage error without a budget flag);
  /// effective policy defaults to kBounds.
  std::optional<OnBudget> on_budget;
  std::string out_file;
  std::string out_dir;
  /// eval only: the domain size for lifted circuits.
  std::optional<std::uint64_t> domain;
  std::vector<std::string> files;
  /// serve-only knobs.
  std::optional<std::uint16_t> listen_port;
  std::optional<std::uint64_t> max_circuits;
  std::optional<std::uint64_t> max_circuit_bytes;
  std::optional<std::uint64_t> max_request_bytes;
  /// Observability sinks ("" = disabled).
  std::string metrics_out;
  std::string trace_out;

  bool serve_flags_used() const {
    return listen_port.has_value() || max_circuits.has_value() ||
           max_circuit_bytes.has_value() || max_request_bytes.has_value();
  }

  OnBudget budget_policy() const {
    return on_budget.value_or(OnBudget::kBounds);
  }
};

int Fail(const std::string& message) {
  std::cerr << "swfomc: " << message << "\n";
  return 2;
}

// Strict flag-value parser: digits only, bounded — `--threads -1` or
// `--threads 4abc` must be a usage error, not ~4 billion worker threads
// (std::stoul would accept both).
unsigned ParseThreadCount(const std::string& text) {
  if (text.empty()) throw UsageError("--threads needs a value");
  unsigned value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      throw UsageError("bad --threads value '" + text +
                       "' (expected a non-negative integer)");
    }
    value = value * 10 + static_cast<unsigned>(c - '0');
    if (value > 4096) {
      throw UsageError("--threads value '" + text +
                       "' exceeds the supported maximum (4096)");
    }
  }
  return value;  // 0 = one per hardware thread
}

// Same strictness for the 64-bit budget flags.
std::uint64_t ParseUint64Flag(const std::string& flag,
                              const std::string& text) {
  if (text.empty()) throw UsageError(flag + " needs a value");
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      throw UsageError("bad " + flag + " value '" + text +
                       "' (expected a non-negative integer)");
    }
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (~std::uint64_t{0} - digit) / 10) {
      throw UsageError(flag + " value '" + text + "' is out of range");
    }
    value = value * 10 + digit;
  }
  return value;
}

// A byte count with an optional k/m/g binary suffix (case-insensitive),
// e.g. `--max-memory 64m` or `--max-circuit-bytes 1g`.
std::uint64_t ParseMemorySize(const std::string& flag,
                              const std::string& text) {
  if (text.empty()) throw UsageError(flag + " needs a value");
  std::uint64_t multiplier = 1;
  std::string digits = text;
  switch (digits.back()) {
    case 'k': case 'K': multiplier = std::uint64_t{1} << 10; break;
    case 'm': case 'M': multiplier = std::uint64_t{1} << 20; break;
    case 'g': case 'G': multiplier = std::uint64_t{1} << 30; break;
    default: break;
  }
  if (multiplier != 1) digits.pop_back();
  std::uint64_t value = ParseUint64Flag(flag, digits);
  if (value > ~std::uint64_t{0} / multiplier) {
    throw UsageError(flag + " value '" + text + "' is out of range");
  }
  return value * multiplier;
}

std::uint16_t ParsePort(const std::string& text) {
  std::uint64_t port = ParseUint64Flag("--listen", text);
  if (port > 65535) {
    throw UsageError("--listen port '" + text + "' is out of range (0 = "
                     "ephemeral, else 1..65535)");
  }
  return static_cast<std::uint16_t>(port);
}

std::optional<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  if (argc < 2) throw UsageError("no command given");
  options.command = argv[1];
  if (options.command == "--help" || options.command == "-h") {
    return std::nullopt;
  }
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return std::nullopt;
    if (arg == "--check") {
      options.check = true;
    } else if (arg == "--compact") {
      options.compact = true;
    } else if (arg == "--threads") {
      if (++i >= argc) throw UsageError("--threads needs a value");
      options.run.num_threads = ParseThreadCount(argv[i]);
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.run.num_threads = ParseThreadCount(arg.substr(10));
    } else if (arg == "--out") {
      if (++i >= argc) throw UsageError("--out needs a value");
      options.out_file = argv[i];
    } else if (arg.rfind("--out=", 0) == 0) {
      options.out_file = arg.substr(6);
    } else if (arg == "--out-dir") {
      if (++i >= argc) throw UsageError("--out-dir needs a value");
      options.out_dir = argv[i];
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      options.out_dir = arg.substr(10);
    } else if (arg == "--domain") {
      if (++i >= argc) throw UsageError("--domain needs a value");
      options.domain = ParseUint64Flag("--domain", argv[i]);
    } else if (arg.rfind("--domain=", 0) == 0) {
      options.domain = ParseUint64Flag("--domain", arg.substr(9));
    } else if (arg == "--budget-ms") {
      if (++i >= argc) throw UsageError("--budget-ms needs a value");
      options.run.budget_ms = ParseUint64Flag("--budget-ms", argv[i]);
    } else if (arg.rfind("--budget-ms=", 0) == 0) {
      options.run.budget_ms = ParseUint64Flag("--budget-ms", arg.substr(12));
    } else if (arg == "--max-decisions") {
      if (++i >= argc) throw UsageError("--max-decisions needs a value");
      options.run.max_decisions = ParseUint64Flag("--max-decisions", argv[i]);
    } else if (arg.rfind("--max-decisions=", 0) == 0) {
      options.run.max_decisions =
          ParseUint64Flag("--max-decisions", arg.substr(16));
    } else if (arg == "--max-memory") {
      if (++i >= argc) throw UsageError("--max-memory needs a value");
      options.run.max_memory_bytes = ParseMemorySize("--max-memory", argv[i]);
    } else if (arg.rfind("--max-memory=", 0) == 0) {
      options.run.max_memory_bytes =
          ParseMemorySize("--max-memory", arg.substr(13));
    } else if (arg == "--listen") {
      if (++i >= argc) throw UsageError("--listen needs a value");
      options.listen_port = ParsePort(argv[i]);
    } else if (arg.rfind("--listen=", 0) == 0) {
      options.listen_port = ParsePort(arg.substr(9));
    } else if (arg == "--max-circuits") {
      if (++i >= argc) throw UsageError("--max-circuits needs a value");
      options.max_circuits = ParseUint64Flag("--max-circuits", argv[i]);
    } else if (arg.rfind("--max-circuits=", 0) == 0) {
      options.max_circuits =
          ParseUint64Flag("--max-circuits", arg.substr(15));
    } else if (arg == "--max-circuit-bytes") {
      if (++i >= argc) throw UsageError("--max-circuit-bytes needs a value");
      options.max_circuit_bytes =
          ParseMemorySize("--max-circuit-bytes", argv[i]);
    } else if (arg.rfind("--max-circuit-bytes=", 0) == 0) {
      options.max_circuit_bytes =
          ParseMemorySize("--max-circuit-bytes", arg.substr(20));
    } else if (arg == "--max-request-bytes") {
      if (++i >= argc) throw UsageError("--max-request-bytes needs a value");
      options.max_request_bytes =
          ParseMemorySize("--max-request-bytes", argv[i]);
    } else if (arg.rfind("--max-request-bytes=", 0) == 0) {
      options.max_request_bytes =
          ParseMemorySize("--max-request-bytes", arg.substr(20));
    } else if (arg == "--metrics-out") {
      if (++i >= argc) throw UsageError("--metrics-out needs a value");
      options.metrics_out = argv[i];
      if (options.metrics_out.empty()) {
        throw UsageError("--metrics-out needs a value");
      }
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      options.metrics_out = arg.substr(14);
      if (options.metrics_out.empty()) {
        throw UsageError("--metrics-out needs a value");
      }
    } else if (arg == "--trace-out") {
      if (++i >= argc) throw UsageError("--trace-out needs a value");
      options.trace_out = argv[i];
      if (options.trace_out.empty()) {
        throw UsageError("--trace-out needs a value");
      }
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      options.trace_out = arg.substr(12);
      if (options.trace_out.empty()) {
        throw UsageError("--trace-out needs a value");
      }
    } else if (arg == "--on-budget" || arg.rfind("--on-budget=", 0) == 0) {
      std::string name;
      if (arg == "--on-budget") {
        if (++i >= argc) throw UsageError("--on-budget needs a value");
        name = argv[i];
      } else {
        name = arg.substr(12);
      }
      if (name == "bounds") {
        options.on_budget = OnBudget::kBounds;
      } else if (name == "error") {
        options.on_budget = OnBudget::kError;
      } else {
        throw UsageError("bad --on-budget value '" + name +
                         "' (expected bounds or error)");
      }
    } else if (arg == "--method" || arg.rfind("--method=", 0) == 0) {
      std::string name;
      if (arg == "--method") {
        if (++i >= argc) throw UsageError("--method needs a value");
        name = argv[i];
      } else {
        name = arg.substr(9);
      }
      auto method = swfomc::io::ParseMethodName(name);
      if (!method.has_value()) {
        throw UsageError("unknown method '" + name + "'");
      }
      options.run.method_override = *method;
    } else if (arg.rfind("--", 0) == 0) {
      throw UsageError("unknown option '" + arg + "'");
    } else {
      options.files.push_back(std::move(arg));
    }
  }
  if (options.command == "serve") {
    // The daemon reads requests from its transport, not from operands,
    // and its knobs that would silently do nothing are rejected outright
    // (same philosophy as compile/eval below).
    if (!options.files.empty()) {
      throw UsageError("serve takes no file operands (requests arrive on "
                       "stdin or the --listen socket)");
    }
    if (options.check) {
      throw UsageError("--check does not apply to the serve command "
                       "(expectations live in requests, not files)");
    }
    if (options.compact) {
      throw UsageError("--compact does not apply to the serve command "
                       "(responses are always single-line)");
    }
    if (options.run.method_override.has_value()) {
      throw UsageError("--method does not apply to the serve command "
                       "(requests carry their own method)");
    }
    if (options.on_budget.has_value()) {
      throw UsageError("--on-budget does not apply to the serve command "
                       "(budget outcomes are reported per request)");
    }
    if (!options.out_file.empty() || !options.out_dir.empty()) {
      throw UsageError("--out/--out-dir do not apply to the serve command");
    }
    if (options.domain.has_value()) {
      throw UsageError("--domain does not apply to the serve command "
                       "(requests carry their own domain size)");
    }
    if (!options.metrics_out.empty()) {
      throw UsageError("--metrics-out does not apply to the serve command "
                       "(scrape the 'metrics' protocol command instead)");
    }
    return options;
  }
  if (options.serve_flags_used()) {
    throw UsageError(
        "--listen/--max-circuits/--max-circuit-bytes/--max-request-bytes "
        "only apply to the serve command");
  }
  if (options.files.empty()) {
    throw UsageError("no input files");
  }
  if (!options.out_file.empty() && options.command != "compile") {
    throw UsageError("--out only applies to the compile command");
  }
  if (!options.out_dir.empty() && options.command != "compile") {
    throw UsageError("--out-dir only applies to the compile command");
  }
  if (!options.out_file.empty() && !options.out_dir.empty()) {
    throw UsageError("--out and --out-dir are mutually exclusive");
  }
  if (!options.out_file.empty() && options.files.size() != 1) {
    throw UsageError("--out takes exactly one input file (use --out-dir)");
  }
  // Compilation is sequential and eval is a linear circuit pass;
  // accepting a thread count there would silently do nothing. Eval has
  // nothing to route, so a forced method is meaningless too.
  if (options.command == "compile" || options.command == "eval") {
    if (options.run.num_threads != 1) {
      throw UsageError("--threads does not apply to the " + options.command +
                       " command (tracing and evaluation are sequential)");
    }
  }
  if (options.command == "eval" && options.run.method_override.has_value()) {
    throw UsageError("--method does not apply to the eval command "
                     "(the circuit kind was fixed at compile time)");
  }
  if (options.domain.has_value() && options.command != "eval") {
    throw UsageError("--domain only applies to the eval command (run and "
                     "compile take the model's 'domain' directive)");
  }
  // Observability follows the counting/evaluation work; route and print
  // do none, so the sinks would stay empty — reject rather than write a
  // vacuous file.
  if ((options.command == "route" || options.command == "print")) {
    if (!options.metrics_out.empty()) {
      throw UsageError("--metrics-out does not apply to the " +
                       options.command + " command (it runs no search)");
    }
    if (!options.trace_out.empty()) {
      throw UsageError("--trace-out does not apply to the " +
                       options.command + " command (it runs no search)");
    }
  }
  // Budgets govern the counting search; route/eval/print never run one.
  if (options.run.governed() &&
      (options.command == "route" || options.command == "eval" ||
       options.command == "print")) {
    throw UsageError("budget options do not apply to the " + options.command +
                     " command (it runs no counting search)");
  }
  if (options.on_budget.has_value() && !options.run.governed()) {
    throw UsageError(
        "--on-budget needs a budget (--budget-ms, --max-decisions, or "
        "--max-memory)");
  }
  return options;
}

void Emit(const JsonValue& document, bool compact) {
  std::cout << document.Dump(compact ? -1 : 2) << "\n";
}

// The report's "obs" block: where this run's observability artifacts
// went, so a consumer of the JSON knows which sidecar files belong to it.
void AddObsBlock(JsonValue* document, const CliOptions& options) {
  if (options.metrics_out.empty() && options.trace_out.empty()) return;
  JsonValue obs = JsonValue::MakeObject();
  if (!options.metrics_out.empty()) {
    obs.Add("metrics_out", JsonValue::MakeString(options.metrics_out));
  }
  if (!options.trace_out.empty()) {
    obs.Add("trace_out", JsonValue::MakeString(options.trace_out));
  }
  document->Add("obs", std::move(obs));
}

int RunServe(const CliOptions& options) {
  swfomc::serve::ServerOptions server_options;
  server_options.num_threads = options.run.num_threads;
  if (options.max_circuits.has_value()) {
    server_options.max_circuits =
        static_cast<std::size_t>(*options.max_circuits);
  }
  if (options.max_circuit_bytes.has_value()) {
    server_options.max_circuit_bytes =
        static_cast<std::size_t>(*options.max_circuit_bytes);
  }
  if (options.max_request_bytes.has_value()) {
    server_options.max_request_bytes =
        static_cast<std::size_t>(*options.max_request_bytes);
  }
  server_options.budget_ms = options.run.budget_ms;
  server_options.max_decisions = options.run.max_decisions;
  server_options.max_memory_bytes = options.run.max_memory_bytes;
  server_options.trace = options.run.trace;
  swfomc::serve::Server server(server_options);
  if (options.listen_port.has_value()) {
    return server.ServeTcp(*options.listen_port, [](std::uint16_t port) {
      // One structured readiness event on stderr (stdout carries only
      // responses): supervisors parse the JSON for the bound port
      // instead of scraping a human-oriented sentence.
      std::cerr << "{\"event\":\"ready\",\"transport\":\"tcp\","
                   "\"addr\":\"127.0.0.1\",\"port\":"
                << port << "}\n";
    });
  }
  return server.ServeStream(std::cin, std::cout);
}

int RunModels(const CliOptions& options) {
  JsonValue results = JsonValue::MakeArray();
  bool checks_passed = true;
  bool budget_exhausted = false;
  for (const std::string& path : options.files) {
    ModelSpec spec = swfomc::io::LoadModelFile(path);
    swfomc::io::ModelRunReport report =
        swfomc::io::RunModel(spec, options.run, path);
    if (report.outcome != swfomc::api::Outcome::kExact) {
      budget_exhausted = true;
      std::cerr << "swfomc: budget exhausted: " << path << ": outcome "
                << swfomc::api::ToString(report.outcome) << " ("
                << swfomc::runtime::ToString(report.stop_reason) << ")\n";
    }
    if (options.check && !report.check_passed) {
      checks_passed = false;
      // Report the first failing point — for a sweep that may be a
      // mid-range size, not the last one.
      const std::uint64_t n = report.first_failed_point.value_or(spec.domain_hi);
      const swfomc::numeric::BigRational* expect = nullptr;
      for (const auto& [size, value] : spec.point_expects) {
        if (size == n) expect = &value;
      }
      if (expect == nullptr && spec.expect.has_value()) {
        expect = &*spec.expect;
      }
      std::string computed = "?";
      for (const auto& point : report.points) {
        if (point.domain_size != n) continue;
        switch (point.outcome) {
          case swfomc::api::Outcome::kExact:
            computed = point.value.ToString();
            break;
          case swfomc::api::Outcome::kBounds:
            computed = "[" + point.bounds->lower.ToString() + ", " +
                       point.bounds->upper.ToString() + "]";
            break;
          case swfomc::api::Outcome::kAborted:
            computed = "aborted";
            break;
        }
      }
      std::cerr << "swfomc: check FAILED: " << path << ": expected "
                << (expect != nullptr ? expect->ToString() : "?")
                << " at n=" << n << ", computed " << computed << " ("
                << swfomc::api::ToString(report.method_used) << ")\n";
    }
    results.array.push_back(swfomc::io::ToJson(report));
  }
  JsonValue document = JsonValue::MakeObject();
  document.Add("results", std::move(results));
  if (options.check) {
    document.Add("check", JsonValue::MakeString(checks_passed ? "pass"
                                                              : "fail"));
  }
  AddObsBlock(&document, options);
  Emit(document, options.compact);
  if (budget_exhausted && options.budget_policy() == OnBudget::kError) {
    return kExitBudget;
  }
  return checks_passed ? 0 : 1;
}

int RunCnfs(const CliOptions& options) {
  JsonValue results = JsonValue::MakeArray();
  bool budget_exhausted = false;
  for (const std::string& path : options.files) {
    WeightedCnf instance = swfomc::io::LoadWeightedCnfFile(path);
    swfomc::io::CnfRunReport report =
        swfomc::io::RunWeightedCnf(instance, options.run, path);
    if (report.outcome != swfomc::api::Outcome::kExact) {
      budget_exhausted = true;
      std::cerr << "swfomc: budget exhausted: " << path << ": outcome "
                << swfomc::api::ToString(report.outcome) << " ("
                << swfomc::runtime::ToString(report.stop_reason) << ")\n";
    }
    results.array.push_back(swfomc::io::ToJson(report));
  }
  JsonValue document = JsonValue::MakeObject();
  document.Add("results", std::move(results));
  AddObsBlock(&document, options);
  Emit(document, options.compact);
  if (budget_exhausted && options.budget_policy() == OnBudget::kError) {
    return kExitBudget;
  }
  return 0;
}

int RunRoute(const CliOptions& options) {
  JsonValue results = JsonValue::MakeArray();
  for (const std::string& path : options.files) {
    ModelSpec spec = swfomc::io::LoadModelFile(path);
    Engine engine(spec.vocabulary);
    swfomc::api::RouteDecision decision =
        engine.ExplainRoute(spec.sentence);
    JsonValue entry = JsonValue::MakeObject();
    entry.Add("file", JsonValue::MakeString(path));
    entry.Add("method",
              JsonValue::MakeString(swfomc::api::ToString(decision.method)));
    entry.Add("reason", JsonValue::MakeString(decision.reason));
    results.array.push_back(std::move(entry));
  }
  JsonValue document = JsonValue::MakeObject();
  document.Add("results", std::move(results));
  Emit(document, options.compact);
  return 0;
}

// The .nnf path for one compile input: --out verbatim, or
// --out-dir/<input-basename>.nnf.
std::string OutputPathFor(const CliOptions& options,
                          const std::string& input) {
  if (!options.out_file.empty()) return options.out_file;
  std::filesystem::path name = std::filesystem::path(input).filename();
  name.replace_extension(".nnf");
  return (std::filesystem::path(options.out_dir) / name).string();
}

int RunCompile(const CliOptions& options) {
  if (!options.out_dir.empty()) {
    // Output names are input basenames, so two inputs sharing one would
    // silently overwrite each other's circuit — refuse up front.
    std::map<std::string, std::string> by_output;
    for (const std::string& path : options.files) {
      std::string out_path = OutputPathFor(options, path);
      auto [it, inserted] = by_output.emplace(out_path, path);
      if (!inserted) {
        throw UsageError("--out-dir would write '" + out_path +
                         "' for both '" + it->second + "' and '" + path +
                         "' (basenames collide)");
      }
    }
    std::error_code error;
    std::filesystem::create_directories(options.out_dir, error);
    if (error) {
      throw std::runtime_error("cannot create --out-dir '" +
                               options.out_dir + "': " + error.message());
    }
  }
  JsonValue results = JsonValue::MakeArray();
  bool checks_passed = true;
  bool budget_exhausted = false;
  for (const std::string& path : options.files) {
    ModelSpec spec = swfomc::io::LoadModelFile(path);
    swfomc::io::CompileOutcome outcome =
        swfomc::io::RunCompile(spec, options.run, path);
    if (outcome.report.outcome != swfomc::api::Outcome::kExact) {
      // A trace the budget stopped is discarded whole — there is no
      // "partial circuit" to write, whatever --out asked for.
      budget_exhausted = true;
      std::cerr << "swfomc: budget exhausted: " << path
                << ": compilation aborted ("
                << swfomc::runtime::ToString(outcome.report.stop_reason)
                << "), partial circuit discarded\n";
    }
    if (options.check && spec.expect.has_value() &&
        !outcome.report.check_passed) {
      checks_passed = false;
      std::cerr << "swfomc: check FAILED: " << path << ": expected "
                << spec.expect->ToString() << " at n=" << spec.domain_hi
                << (outcome.query.has_value()
                        ? ", compiled circuit counts " +
                              outcome.report.count.ToString()
                        : ", but compilation was aborted")
                << "\n";
    }
    if (outcome.query.has_value() &&
        (!options.out_file.empty() || !options.out_dir.empty())) {
      std::string out_path = OutputPathFor(options, path);
      std::string rendered;
      if (outcome.query->kind() ==
          swfomc::api::CompiledQuery::Kind::kLifted) {
        // Pin (domain_hi, count) as the e line when the model has a
        // domain: it both checks the pipeline and gives `swfomc eval`
        // its default domain size.
        std::optional<std::pair<std::uint64_t, swfomc::numeric::BigRational>>
            expect;
        if (spec.has_domain) {
          expect.emplace(spec.domain_hi, outcome.report.count);
        }
        rendered = swfomc::io::PrintLiftedNnf(swfomc::io::MakeLiftedNnfDocument(
            *outcome.query, std::move(expect)));
      } else {
        rendered = swfomc::io::PrintNnf(
            swfomc::io::MakeNnfDocument(*outcome.query, spec.expect));
      }
      std::ofstream out(out_path);
      if (!out) {
        throw std::runtime_error("cannot write nnf file: " + out_path);
      }
      out << rendered;
      if (!out.flush()) {
        throw std::runtime_error("error writing nnf file: " + out_path);
      }
      outcome.report.output_path = std::move(out_path);
    }
    results.array.push_back(swfomc::io::ToJson(outcome.report));
  }
  JsonValue document = JsonValue::MakeObject();
  document.Add("results", std::move(results));
  if (options.check) {
    document.Add("check", JsonValue::MakeString(checks_passed ? "pass"
                                                              : "fail"));
  }
  AddObsBlock(&document, options);
  Emit(document, options.compact);
  if (budget_exhausted && options.budget_policy() == OnBudget::kError) {
    return kExitBudget;
  }
  return checks_passed ? 0 : 1;
}

int RunEval(const CliOptions& options) {
  JsonValue results = JsonValue::MakeArray();
  bool checks_passed = true;
  for (const std::string& path : options.files) {
    swfomc::io::AnyNnfDocument document = swfomc::io::LoadAnyNnfFile(path);
    swfomc::io::EvalRunReport report;
    if (const NnfDocument* grounded =
            std::get_if<NnfDocument>(&document)) {
      if (options.domain.has_value()) {
        throw UsageError("--domain does not apply to '" + path +
                         "': a grounded circuit fixes its domain size at "
                         "compile time (compile a lifted circuit to sweep n)");
      }
      report = swfomc::io::RunEval(*grounded, path);
    } else {
      report = swfomc::io::RunEval(
          std::get<swfomc::io::LiftedNnfDocument>(document), options.domain,
          path);
    }
    if (options.check && report.expected.has_value() &&
        !report.check_passed) {
      checks_passed = false;
      std::cerr << "swfomc: check FAILED: " << path << ": expected "
                << report.expected->ToString() << ", circuit evaluates to "
                << report.value.ToString() << "\n";
    }
    // Eval runs no counting search, so the engine registers nothing here;
    // the CLI itself records per-circuit instruments instead.
    if (options.run.metrics != nullptr) {
      options.run.metrics
          ->GetCounter("swfomc_eval_circuits_total",
                       "Circuits evaluated by swfomc eval")
          ->Add();
      options.run.metrics
          ->GetHistogram("swfomc_eval_usec",
                         "Microseconds per circuit evaluation")
          ->Record(static_cast<std::uint64_t>(report.elapsed_seconds * 1e6));
    }
    if (options.run.trace != nullptr) {
      options.run.trace->Event("eval")
          .Str("file", path)
          .Str("kind", swfomc::api::ToString(report.kind))
          .Num("n", report.domain_size);
    }
    results.array.push_back(swfomc::io::ToJson(report));
  }
  JsonValue document = JsonValue::MakeObject();
  document.Add("results", std::move(results));
  if (options.check) {
    document.Add("check", JsonValue::MakeString(checks_passed ? "pass"
                                                              : "fail"));
  }
  AddObsBlock(&document, options);
  Emit(document, options.compact);
  return checks_passed ? 0 : 1;
}

int RunPrint(const CliOptions& options) {
  for (const std::string& path : options.files) {
    if (path.ends_with(".cnf")) {
      std::cout << swfomc::io::PrintWeightedCnf(
          swfomc::io::LoadWeightedCnfFile(path));
    } else if (path.ends_with(".nnf")) {
      swfomc::io::AnyNnfDocument document = swfomc::io::LoadAnyNnfFile(path);
      if (const NnfDocument* grounded = std::get_if<NnfDocument>(&document)) {
        std::cout << swfomc::io::PrintNnf(*grounded);
      } else {
        std::cout << swfomc::io::PrintLiftedNnf(
            std::get<swfomc::io::LiftedNnfDocument>(document));
      }
    } else {
      std::cout << swfomc::io::PrintModel(swfomc::io::LoadModelFile(path));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<CliOptions> options;
  try {
    options = ParseArgs(argc, argv);
  } catch (const UsageError& error) {
    std::cerr << kUsage;
    std::cerr << "swfomc: " << error.what() << "\n";
    return kExitUsage;
  }
  if (!options.has_value()) {  // --help
    std::cout << kUsage;
    return 0;
  }
  try {
    // Observability sinks outlive the command: the trace file opens (and
    // fails) up front, the metrics exposition is written after the
    // command finishes so it reflects the whole run.
    swfomc::obs::MetricsRegistry registry;
    std::unique_ptr<swfomc::obs::TraceLog> trace;
    if (!options->trace_out.empty()) {
      trace = swfomc::obs::TraceLog::OpenFile(options->trace_out);
    }
    if (!options->metrics_out.empty()) options->run.metrics = &registry;
    options->run.trace = trace.get();

    auto dispatch = [&]() -> int {
      if (options->command == "run") return RunModels(*options);
      if (options->command == "cnf") return RunCnfs(*options);
      if (options->command == "route") return RunRoute(*options);
      if (options->command == "compile") return RunCompile(*options);
      if (options->command == "eval") return RunEval(*options);
      if (options->command == "print") return RunPrint(*options);
      if (options->command == "serve") return RunServe(*options);
      std::cerr << kUsage;
      std::cerr << "swfomc: unknown command '" << options->command << "'\n";
      return kExitUsage;
    };
    int code = dispatch();
    if (!options->metrics_out.empty()) {
      std::ofstream out(options->metrics_out);
      if (!out) {
        return Fail("cannot write metrics file: " + options->metrics_out);
      }
      out << registry.TextExposition();
      if (!out.flush()) {
        return Fail("error writing metrics file: " + options->metrics_out);
      }
    }
    return code;
  } catch (const UsageError& error) {
    // Command-line-shaped problems discovered mid-command (e.g. colliding
    // --out-dir basenames) keep the EX_USAGE exit.
    std::cerr << "swfomc: " << error.what() << "\n";
    return kExitUsage;
  } catch (const swfomc::io::ParseError& error) {
    return Fail(error.what());
  } catch (const std::exception& error) {
    return Fail(error.what());
  }
}
