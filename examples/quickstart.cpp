// Quickstart: parse a sentence, compute FOMC / WFOMC / probabilities, and
// see the engine's routing.
//
// Build & run:   cmake --build build && ./build/examples/quickstart

#include <iostream>

#include "api/engine.h"
#include "logic/printer.h"

int main() {
  using swfomc::api::Engine;
  using swfomc::numeric::BigRational;

  // An engine owns a weighted vocabulary; Parse() auto-declares relations
  // with default weights (1, 1).
  Engine engine{swfomc::logic::Vocabulary{}};

  // The paper's opening example: FOMC(∀x∃y R(x,y), n) = (2^n - 1)^n.
  swfomc::logic::Formula phi = engine.Parse("forall x exists y R(x,y)");
  std::cout << "Phi = " << swfomc::logic::ToString(phi, engine.vocabulary())
            << "\n\n";
  std::cout << " n | FOMC(Phi, n) = (2^n - 1)^n\n";
  for (std::uint64_t n = 1; n <= 10; ++n) {
    std::cout << " " << n << " | " << engine.FOMC(phi, n) << "\n";
  }

  // Make R a weighted (probabilistic) relation: w = 1, w̄ = 3 means each
  // tuple is present with probability w/(w+w̄) = 1/4.
  engine.mutable_vocabulary()->SetWeights(engine.vocabulary().Require("R"),
                                          BigRational(1), BigRational(3));
  std::cout << "\nWith tuple probability 1/4:\n";
  std::cout << " n | WFOMC | Pr(Phi)\n";
  for (std::uint64_t n = 1; n <= 6; ++n) {
    Engine::Result result = engine.WFOMC(phi, n);
    std::cout << " " << n << " | " << result.value.ToString() << " | "
              << engine.Probability(phi, n).ToDouble() << "   (method: "
              << ToString(result.method) << ")\n";
  }

  // The engine routes automatically: an FO² sentence goes to the lifted
  // cell algorithm (PTIME in n), a γ-acyclic conjunctive query to the
  // Theorem 3.6 evaluator, anything else to grounding + exact DPLL.
  swfomc::logic::Formula cq =
      engine.Parse("exists x exists y (Author(x,y) & Famous(y))");
  std::cout << "\nCQ routing: " << ToString(engine.Route(cq)) << "\n";
  swfomc::logic::Formula fo3 = engine.Parse(
      "forall x forall y forall z ((E(x,y) & E(y,z)) => E(x,z))");
  std::cout << "FO3 (transitivity) routing: " << ToString(engine.Route(fo3))
            << "\n";
  std::cout << "Transitive relations over n=3: " << engine.FOMC(fo3, 3)
            << " (OEIS A006905: 171)\n";
  return 0;
}
