// Query-complexity explorer: where does a conjunctive query sit in the
// paper's Figure 1 taxonomy, and what does that mean for evaluation?
//
// For each query the example classifies its hypergraph (γ-/β-/α-acyclic
// or cyclic), reports any weak β-cycle, evaluates the query with the
// appropriate engine, and — for β-cyclic queries — demonstrates the
// Section 3.2 embedding of a typed cycle C_k, the paper's evidence that
// such queries are "C_k-hard".
//
// Build & run: cmake --build build && ./build/examples/query_complexity

#include <cstdio>

#include "cq/acyclicity.h"
#include "cq/gamma_evaluator.h"
#include "cq/hypergraph.h"
#include "cq/typed_cycle.h"

int main() {
  using swfomc::cq::ConjunctiveQuery;
  using swfomc::numeric::BigRational;

  const char* queries[] = {
      "R(x,y), S(y,z), T(z)",                        // chain: γ-acyclic
      "R(x,z), S(x,y,z), T(y,z)",                    // cγ: γ-cyclic, PTIME
      "R1(x1,x2), R2(x2,x3), R3(x3,x1)",             // C3: conjectured hard
      "A(x,y,z), R1(x,y), R2(y,z), R3(z,x)",         // α-acyclic cover
  };

  std::printf("%-38s %-14s %-11s %s\n", "query", "class", "weak-beta",
              "evaluation at n = 4 (p = 1/2)");
  for (const char* text : queries) {
    ConjunctiveQuery query = ConjunctiveQuery::FromString(text);
    swfomc::cq::Hypergraph graph = swfomc::cq::BuildHypergraph(query);
    swfomc::cq::AcyclicityClass klass = swfomc::cq::Classify(graph);
    auto cycle = swfomc::cq::FindWeakBetaCycle(graph);
    std::string beta = cycle.has_value()
                           ? "len-" + std::to_string(cycle->edges.size())
                           : std::string("none");

    std::string evaluation;
    if (klass == swfomc::cq::AcyclicityClass::kGammaAcyclic) {
      BigRational p = swfomc::cq::GammaAcyclicProbability(query, 4);
      evaluation = "Pr = " + p.ToString() + "  (Theorem 3.6, PTIME)";
    } else {
      // No lifted algorithm: typed grounding (exponential) at a small n.
      BigRational p = swfomc::cq::TypedGroundedProbability(query, 2);
      evaluation = "Pr(n=2) = " + p.ToString() + "  (grounded only)";
    }
    std::printf("%-38s %-14s %-11s %s\n", text,
                swfomc::cq::ToString(klass), beta.c_str(),
                evaluation.c_str());
  }

  // The Ck-hardness evidence, run live: embed a C_3 instance into a
  // β-cyclic query with baggage and check the counts coincide.
  std::printf("\nSection 3.2 embedding: C_3 into R1(x1,x2,w),R2,R3,A(w)\n");
  ConjunctiveQuery baggage;
  baggage.AddAtom("R1", {"x1", "x2", "w"});
  baggage.AddAtom("R2", {"x2", "x3"});
  baggage.AddAtom("R3", {"x3", "x1"});
  baggage.AddAtom("A", {"w"});
  std::vector<std::uint64_t> domains = {2, 2, 2};
  std::vector<BigRational> probabilities(3, BigRational::Fraction(1, 2));
  swfomc::cq::CkEmbedding embedding =
      swfomc::cq::EmbedCkInBetaCyclicQuery(baggage, domains, probabilities);
  BigRational lhs =
      swfomc::cq::TypedCycleProbability(3, domains, probabilities);
  BigRational rhs = swfomc::cq::TypedGroundedProbability(
      embedding.query, embedding.domain_sizes);
  std::printf("  Pr(C_3)        = %s\n", lhs.ToString().c_str());
  std::printf("  Pr(Q embedded) = %s   %s\n", rhs.ToString().c_str(),
              lhs == rhs ? "(equal, as Section 3.2 proves)" : "(MISMATCH)");
  std::printf(
      "\nHence a PTIME algorithm for the baggage query would yield PTIME\n"
      "for C_3 — the paper's \"Ck-hard\" region of Figure 1.\n");
  return 0;
}
