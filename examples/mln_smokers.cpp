// The classic "friends & smokers" Markov Logic Network, inferred exactly
// through the paper's Example 1.2 reduction to symmetric WFOMC with the
// lifted FO² engine — the full pipeline the paper's introduction motivates.
//
// MLN:
//   (3,  Smokes(x) & Friend(x,y) => Smokes(y))   soft: smoking spreads
//   (2,  Smokes(x) => Cancer(x))                 soft: smoking is risky
//
// Note one practical trick: the lifted engine's cost is driven by the
// number of 1-types, and Skolemizing an existential query adds a
// predicate (doubling the 1-types). We therefore compute
// Pr(∃x Cancer(x)) as 1 − Pr(∀x ¬Cancer(x)) — the universal complement
// keeps the sentence ∀-only and the cell count down.
//
// Build & run: cmake --build build && ./build/examples/mln_smokers

#include <iostream>

#include "fo2/cell_algorithm.h"
#include "logic/parser.h"
#include "mln/reduction.h"

int main() {
  using swfomc::numeric::BigRational;

  swfomc::mln::MarkovLogicNetwork network{swfomc::logic::Vocabulary{}};
  network.AddSoft(BigRational(3), "Smokes(x) & Friend(x,y) => Smokes(y)");
  network.AddSoft(BigRational(2), "Smokes(x) => Cancer(x)");

  swfomc::logic::Formula no_cancer = swfomc::logic::ParseStrict(
      "forall x !Cancer(x)", network.vocabulary());
  swfomc::logic::Formula exists_cancer = swfomc::logic::ParseStrict(
      "exists x Cancer(x)", network.vocabulary());

  auto lifted_engine = [](const swfomc::logic::Formula& sentence,
                          const swfomc::logic::Vocabulary& vocabulary,
                          std::uint64_t n) {
    return swfomc::fo2::LiftedWFOMC(sentence, vocabulary, n);
  };

  std::cout << "Friends & smokers MLN, lifted WFOMC inference\n";
  std::cout << " n | Pr(exists x Cancer(x)) | check (brute force)\n";
  for (std::uint64_t n = 1; n <= 5; ++n) {
    BigRational p = BigRational(1) - swfomc::mln::ProbabilityViaWFOMC(
                                         network, no_cancer, n,
                                         lifted_engine);
    std::cout << " " << n << " | " << p.ToDouble();
    if (n <= 2) {
      BigRational reference =
          network.BruteForceProbability(exists_cancer, n);
      std::cout << " | " << (p == reference ? "exact match" : "MISMATCH");
    } else {
      std::cout << " | (2^" << (2 * n + n * n)
                << " worlds: brute force out of reach)";
    }
    std::cout << "\n";
  }

  // A universal query needs no complement trick.
  swfomc::logic::Formula all_smoke = swfomc::logic::ParseStrict(
      "forall x Smokes(x)", network.vocabulary());
  std::cout << "\n n | Pr(forall x Smokes(x))\n";
  for (std::uint64_t n = 1; n <= 5; ++n) {
    BigRational p = swfomc::mln::ProbabilityViaWFOMC(network, all_smoke, n,
                                                     lifted_engine);
    std::cout << " " << n << " | " << p.ToDouble() << "\n";
  }

  std::cout << "\nThe reduction introduced "
            << swfomc::mln::ReduceToWFOMC(network).vocabulary.size() -
                   network.vocabulary().size()
            << " auxiliary relations with weights 1/(w-1) (Example 1.2).\n";
  return 0;
}
