// Approximate vs exact MLN inference — the paper's Section 1 motivation.
//
// Today's MLN systems run MC-SAT on top of SampleSAT, which has no
// uniformity guarantee; the paper's program is to replace sampling with
// exact symmetric WFOMC (Example 1.2). This example runs both paths on a
// small social-network MLN and prints the estimates side by side.
//
// Build & run: cmake --build build && ./build/examples/approximate_vs_exact

#include <cstdio>

#include "logic/parser.h"
#include "mcsat/mcsat.h"
#include "mln/mln.h"
#include "mln/reduction.h"

int main() {
  using swfomc::numeric::BigRational;

  // The classic "smokers" MLN: friendship makes smoking contagious, and
  // friendship is irreflexive (a hard constraint).
  swfomc::logic::Vocabulary vocab;
  vocab.AddRelation("Friends", 2);
  vocab.AddRelation("Smokes", 1);
  swfomc::mln::MarkovLogicNetwork network(std::move(vocab));
  network.AddHard("forall x !Friends(x,x)");
  network.AddSoft(BigRational(2), "(Friends(x,y) & Smokes(x)) -> Smokes(y)");

  const std::uint64_t n = 2;  // people
  const char* queries[] = {
      "exists x Smokes(x)",
      "forall x Smokes(x)",
      "exists x exists y (Friends(x,y) & Smokes(x) & Smokes(y))",
  };

  std::printf("Smokers MLN over %llu people\n",
              static_cast<unsigned long long>(n));
  std::printf("  hard: forall x !Friends(x,x)\n");
  std::printf("  soft: (2, Friends(x,y) & Smokes(x) -> Smokes(y))\n\n");
  std::printf("%-52s %-12s %-12s %s\n", "query", "exact WFOMC",
              "MC-SAT est.", "brute force");
  for (const char* text : queries) {
    swfomc::logic::Formula query =
        swfomc::logic::ParseStrict(text, network.vocabulary());

    // Exact path: Example 1.2 reduction to symmetric WFOMC.
    BigRational exact = swfomc::mln::ProbabilityViaWFOMC(network, query, n);

    // Approximate path: MC-SAT with SampleSAT (what Alchemy/Tuffy do).
    swfomc::mcsat::McSatOptions options;
    options.seed = 7;
    options.burn_in = 200;
    options.samples = 3000;
    swfomc::mcsat::McSatSampler sampler(network, n, options);
    double estimate = sampler.EstimateProbability(query);

    // Ground truth by exhaustive enumeration of all worlds.
    BigRational brute = network.BruteForceProbability(query, n);

    std::printf("%-52s %-12.6f %-12.4f %.6f\n", text, exact.ToDouble(),
                estimate, brute.ToDouble());
  }
  std::printf(
      "\nThe exact column equals brute force by construction (and stays\n"
      "feasible long after brute force dies); the MC-SAT column is a\n"
      "stochastic estimate carrying SampleSAT's bias.\n");
  return 0;
}
