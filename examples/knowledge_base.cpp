// A miniature probabilistic knowledge base in the style of the paper's
// introduction (NELL / Knowledge Vault): extracted facts are uncertain
// tuples; queries are conjunctive; γ-acyclic queries run through the
// Theorem 3.6 PTIME evaluator.
//
// Schema (all tuples symmetric within a relation, probabilities from the
// "extractor confidence"):
//   BornIn(person, city)      p = 1/3
//   LocatedIn(city, country)  p = 2/3
//   Capital(city)             p = 1/5
//   Landmark(city, site)      p = 1/2

#include <iostream>

#include "cq/acyclicity.h"
#include "cq/gamma_evaluator.h"
#include "cq/hypergraph.h"

int main() {
  using swfomc::cq::ConjunctiveQuery;
  using swfomc::numeric::BigRational;

  auto with_probabilities = [](ConjunctiveQuery query) {
    query.SetProbability("BornIn", BigRational::Fraction(1, 3));
    query.SetProbability("LocatedIn", BigRational::Fraction(2, 3));
    query.SetProbability("Capital", BigRational::Fraction(1, 5));
    query.SetProbability("Landmark", BigRational::Fraction(1, 2));
    return query;
  };

  struct NamedQuery {
    const char* description;
    const char* text;
  };
  NamedQuery queries[] = {
      {"someone was born in some city of some country",
       "BornIn(p,c), LocatedIn(c,k)"},
      {"someone was born in a capital with a landmark",
       "BornIn(p,c), Capital(c), Landmark(c,s)"},
      {"a chain person->city->country plus a landmark in that city",
       "BornIn(p,c), LocatedIn(c,k), Landmark(c,s)"},
  };

  std::cout << "Probabilistic KB — γ-acyclic CQ evaluation (Theorem 3.6)\n";
  for (const NamedQuery& q : queries) {
    ConjunctiveQuery query =
        with_probabilities(ConjunctiveQuery::FromString(q.text));
    swfomc::cq::Hypergraph graph = swfomc::cq::BuildHypergraph(query);
    std::cout << "\nQ: " << q.description << "\n   " << query.ToString()
              << "\n   class: "
              << swfomc::cq::ToString(swfomc::cq::Classify(graph)) << "\n";
    if (!swfomc::cq::IsGammaAcyclic(graph)) {
      std::cout << "   (not gamma-acyclic; would route to grounding)\n";
      continue;
    }
    std::cout << "    n | Pr(Q)\n";
    for (std::uint64_t n : {2, 4, 8, 16, 32}) {
      BigRational p = swfomc::cq::GammaAcyclicProbability(query, n);
      std::cout << "   " << n << (n < 10 ? " " : "") << " | "
                << p.ToDouble() << "\n";
    }
  }

  // The typed triangle from Table 2 (conjectured hard) classifies as
  // cyclic — the evaluator refuses it, exactly as the theory predicts.
  ConjunctiveQuery triangle =
      ConjunctiveQuery::FromString("R(x,y), S(y,z), T(z,x)");
  std::cout << "\nTyped triangle R(x,y),S(y,z),T(z,x): class "
            << swfomc::cq::ToString(
                   swfomc::cq::Classify(swfomc::cq::BuildHypergraph(triangle)))
            << " (Table 2 open problem — no PTIME algorithm known)\n";
  return 0;
}
