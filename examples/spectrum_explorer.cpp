// Spectra and 0-1 laws (Sections 1 and 4): compute initial segments of
// Spec(Φ) with the decision procedure, and watch µ_n(Φ) converge to 0 or
// 1 exactly as Fagin's 0-1 law predicts — with exact rationals, no
// floating point in the counting path.

#include <iostream>

#include "api/engine.h"
#include "logic/printer.h"

int main() {
  using swfomc::api::Engine;

  struct Entry {
    const char* comment;
    const char* text;
  };

  std::cout << "=== Spectra (initial segments, n = 1..8) ===\n";
  Entry spectra[] = {
      {"even sizes only (perfect matching)",
       "(forall x exists y (M(x,y) & x != y))"
       " & (forall x forall y (M(x,y) => M(y,x)))"
       " & (forall x forall y forall z ((M(x,y) & M(x,z)) => y = z))"},
      {"at least 3 elements",
       "exists x exists y exists z (x != y & y != z & x != z)"},
      {"every conjunctive query: all sizes", "exists x exists y R(x,y)"},
  };
  for (const Entry& entry : spectra) {
    Engine engine{swfomc::logic::Vocabulary{}};
    swfomc::logic::Formula f = engine.Parse(entry.text);
    std::cout << entry.comment << ":\n  {";
    bool first = true;
    for (std::uint64_t n = 1; n <= 8; ++n) {
      if (engine.HasModelOfSize(f, n)) {
        std::cout << (first ? "" : ", ") << n;
        first = false;
      }
    }
    std::cout << ", ...}\n";
  }

  std::cout << "\n=== 0-1 laws: mu_n(Phi) ===\n";
  Entry laws[] = {
      {"forall x exists y R(x,y)   (mu -> 1)",
       "forall x exists y R(x,y)"},
      {"exists x forall y R(x,y)   (mu -> 0)",
       "exists x forall y R(x,y)"},
      {"exists x exists y (R(x,y) & !R(y,x))   (mu -> 1)",
       "exists x exists y (R(x,y) & !R(y,x))"},
  };
  for (const Entry& entry : laws) {
    Engine engine{swfomc::logic::Vocabulary{}};
    swfomc::logic::Formula f = engine.Parse(entry.text);
    std::cout << entry.comment << "\n   n:  mu_n\n";
    for (std::uint64_t n : {1, 2, 4, 8, 16, 24}) {
      std::cout << "  " << n << (n < 10 ? " " : "") << ":  "
                << engine.Mu(f, n).ToDouble() << "\n";
    }
  }

  std::cout << "\nNote: the paper proves (Theorem 3.1) that no closed form\n"
               "for FOMC(Phi, n) exists in general (unless #P1 = PTIME) —\n"
               "these curves are computed by lifted counting, not formulas.\n";
  return 0;
}
