#include "mln/mln.h"

#include <stdexcept>

#include "logic/evaluate.h"
#include "logic/parser.h"
#include "logic/structure.h"

namespace swfomc::mln {

using numeric::BigRational;

void MarkovLogicNetwork::AddSoft(numeric::BigRational weight,
                                 logic::Formula formula) {
  if (weight.Sign() <= 0) {
    throw std::invalid_argument("MLN: soft weights must be positive");
  }
  constraints_.push_back(Constraint{std::move(weight), std::move(formula)});
}

void MarkovLogicNetwork::AddHard(logic::Formula formula) {
  constraints_.push_back(Constraint{std::nullopt, std::move(formula)});
}

void MarkovLogicNetwork::AddSoft(numeric::BigRational weight,
                                 const std::string& formula_text) {
  AddSoft(std::move(weight), logic::Parse(formula_text, &vocabulary_));
}

void MarkovLogicNetwork::AddHard(const std::string& formula_text) {
  AddHard(logic::Parse(formula_text, &vocabulary_));
}

numeric::BigRational MarkovLogicNetwork::BruteForceWeight(
    const logic::Formula& query, std::uint64_t domain_size) const {
  logic::Structure world(vocabulary_, domain_size);
  if (world.TupleCount() > 24) {
    throw std::invalid_argument("MLN::BruteForceWeight: world too large");
  }
  BigRational total;
  std::uint64_t limit = 1ULL << world.TupleCount();
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    world.AssignFromMask(mask);
    if (!logic::Evaluate(world, query)) continue;
    bool hard_ok = true;
    BigRational weight(1);
    for (const Constraint& constraint : constraints_) {
      if (!constraint.weight.has_value()) {
        // Hard: every grounding must hold, i.e. the universal closure.
        std::uint64_t satisfied =
            logic::CountSatisfiedGroundings(world, constraint.formula);
        std::uint64_t all = 1;
        for (std::size_t i = 0;
             i < logic::FreeVariables(constraint.formula).size(); ++i) {
          all *= domain_size;
        }
        if (satisfied != all) {
          hard_ok = false;
          break;
        }
      } else {
        std::uint64_t satisfied =
            logic::CountSatisfiedGroundings(world, constraint.formula);
        if (satisfied > 0) {
          weight *= BigRational::Pow(*constraint.weight,
                                     static_cast<std::int64_t>(satisfied));
        }
      }
    }
    if (hard_ok) total += weight;
  }
  return total;
}

numeric::BigRational MarkovLogicNetwork::BruteForceProbability(
    const logic::Formula& query, std::uint64_t domain_size) const {
  BigRational numerator = BruteForceWeight(query, domain_size);
  BigRational normalizer = BruteForceWeight(logic::True(), domain_size);
  if (normalizer.IsZero()) {
    throw std::domain_error("MLN: zero partition function");
  }
  return numerator / normalizer;
}

}  // namespace swfomc::mln
