#include "mln/reduction.h"

#include <stdexcept>

#include "grounding/grounded_wfomc.h"

namespace swfomc::mln {

using numeric::BigRational;

WfomcReduction ReduceToWFOMC(const MarkovLogicNetwork& network) {
  WfomcReduction result;
  result.vocabulary = network.vocabulary();
  std::vector<logic::Formula> hard;

  for (const MarkovLogicNetwork::Constraint& constraint :
       network.constraints()) {
    std::set<std::string> free_set = logic::FreeVariables(constraint.formula);
    std::vector<std::string> free_vars(free_set.begin(), free_set.end());
    if (!constraint.weight.has_value()) {
      // Hard constraint: its universal closure joins Γ directly.
      hard.push_back(logic::Forall(free_vars, constraint.formula));
      continue;
    }
    const BigRational& w = *constraint.weight;
    if (w == BigRational(1)) continue;  // weight-1 constraints are no-ops

    // Fresh auxiliary relation with weights (1/(w-1), 1).
    BigRational aux_weight = BigRational(1) / (w - BigRational(1));
    logic::RelationId aux = result.vocabulary.AddRelation(
        result.vocabulary.FreshName("MlnR"), free_vars.size(), aux_weight, 1);
    std::vector<logic::Term> args;
    args.reserve(free_vars.size());
    for (const std::string& v : free_vars) {
      args.push_back(logic::Term::Var(v));
    }
    hard.push_back(logic::Forall(
        free_vars, logic::Or(logic::Atom(aux, std::move(args)),
                             constraint.formula)));
  }
  result.gamma = logic::And(std::move(hard));
  return result;
}

numeric::BigRational ProbabilityViaWFOMC(const MarkovLogicNetwork& network,
                                         const logic::Formula& query,
                                         std::uint64_t domain_size,
                                         const WfomcEngine& engine) {
  WfomcReduction reduction = ReduceToWFOMC(network);
  BigRational numerator = engine(logic::And(query, reduction.gamma),
                                 reduction.vocabulary, domain_size);
  BigRational denominator =
      engine(reduction.gamma, reduction.vocabulary, domain_size);
  if (denominator.IsZero()) {
    throw std::domain_error("MLN reduction: zero partition function");
  }
  return numerator / denominator;
}

numeric::BigRational ProbabilityViaWFOMC(const MarkovLogicNetwork& network,
                                         const logic::Formula& query,
                                         std::uint64_t domain_size) {
  return ProbabilityViaWFOMC(
      network, query, domain_size,
      [](const logic::Formula& sentence, const logic::Vocabulary& vocabulary,
         std::uint64_t n) {
        return grounding::GroundedWFOMC(sentence, vocabulary, n);
      });
}

}  // namespace swfomc::mln
