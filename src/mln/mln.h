#ifndef SWFOMC_MLN_MLN_H_
#define SWFOMC_MLN_MLN_H_

#include <optional>
#include <string>
#include <vector>

#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "numeric/rational.h"

namespace swfomc::mln {

/// A Markov Logic Network (Example 1.1): a finite set of constraints
/// (w, ϕ(x⃗)) over a relational vocabulary. A soft constraint multiplies a
/// world's weight by w for every tuple of constants a⃗ with D |= ϕ[a⃗];
/// a hard constraint (w = ∞) must hold for all groundings.
///
/// Weights here are exact rationals (the paper dispenses with log-space
/// weights); hard constraints are represented by an unset weight.
class MarkovLogicNetwork {
 public:
  struct Constraint {
    /// Weight; std::nullopt means hard (w = ∞).
    std::optional<numeric::BigRational> weight;
    logic::Formula formula;  // free variables are the constraint's x⃗
  };

  explicit MarkovLogicNetwork(logic::Vocabulary vocabulary)
      : vocabulary_(std::move(vocabulary)) {}

  /// Adds a soft constraint (w, ϕ). Requires w > 0.
  void AddSoft(numeric::BigRational weight, logic::Formula formula);
  /// Adds a hard constraint (∞, ϕ).
  void AddHard(logic::Formula formula);

  /// Parses the formula against this MLN's vocabulary (auto-declaring new
  /// relations) and adds it.
  void AddSoft(numeric::BigRational weight, const std::string& formula_text);
  void AddHard(const std::string& formula_text);

  const std::vector<Constraint>& constraints() const { return constraints_; }
  const logic::Vocabulary& vocabulary() const { return vocabulary_; }
  logic::Vocabulary* mutable_vocabulary() { return &vocabulary_; }

  /// Exact reference semantics by exhaustive world enumeration:
  /// W(Φ) = Σ_{D |= Φ ∧ hard} Π_{(w,ϕ),a⃗: D |= ϕ[a⃗]} w  and
  /// Pr(Φ) = W(Φ)/W(true). Exponential in |Tup(n)| — ground truth only.
  numeric::BigRational BruteForceWeight(const logic::Formula& query,
                                        std::uint64_t domain_size) const;
  numeric::BigRational BruteForceProbability(const logic::Formula& query,
                                             std::uint64_t domain_size) const;

 private:
  logic::Vocabulary vocabulary_;
  std::vector<Constraint> constraints_;
};

}  // namespace swfomc::mln

#endif  // SWFOMC_MLN_MLN_H_
