#ifndef SWFOMC_MLN_REDUCTION_H_
#define SWFOMC_MLN_REDUCTION_H_

#include <functional>

#include "mln/mln.h"

namespace swfomc::mln {

/// Example 1.2: the reduction from MLN inference to symmetric WFOMC.
/// Every soft constraint (w, ϕ(x⃗)) is replaced by
///   * a hard constraint ∀x⃗ (R(x⃗) ∨ ϕ(x⃗)), and
///   * a fresh relation R of arity |x⃗| with symmetric weights
///     (w_R, w̄_R) = (1/(w-1), 1) — negative when w < 1.
/// Then Pr_MLN(Φ) = Pr(Φ | Γ) = WFOMC(Φ ∧ Γ) / WFOMC(Γ), where Γ
/// conjoins all hard constraints (original and introduced). The reduction
/// is independent of the domain size.
///
/// Soft constraints with w = 1 are weightless no-ops and are dropped;
/// the transformation is undefined for w = 1 only in the sense that no
/// auxiliary relation is needed.
struct WfomcReduction {
  logic::Vocabulary vocabulary;  // extended, with auxiliary weights
  logic::Formula gamma;          // conjunction of hard constraints
};

WfomcReduction ReduceToWFOMC(const MarkovLogicNetwork& network);

/// A WFOMC engine: (sentence, vocabulary, n) -> WFOMC.
using WfomcEngine = std::function<numeric::BigRational(
    const logic::Formula&, const logic::Vocabulary&, std::uint64_t)>;

/// Pr_MLN(query) over a domain of the given size, computed through the
/// WFOMC reduction with the supplied engine (grounded or lifted).
numeric::BigRational ProbabilityViaWFOMC(const MarkovLogicNetwork& network,
                                         const logic::Formula& query,
                                         std::uint64_t domain_size,
                                         const WfomcEngine& engine);

/// Same, defaulting to the grounded DPLL engine.
numeric::BigRational ProbabilityViaWFOMC(const MarkovLogicNetwork& network,
                                         const logic::Formula& query,
                                         std::uint64_t domain_size);

}  // namespace swfomc::mln

#endif  // SWFOMC_MLN_REDUCTION_H_
