#ifndef SWFOMC_NUMERIC_RATIONAL_H_
#define SWFOMC_NUMERIC_RATIONAL_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "numeric/bigint.h"

namespace swfomc::numeric {

/// Exact rational number over BigInt.
///
/// Invariant: denominator > 0 and gcd(|numerator|, denominator) == 1;
/// zero is represented as 0/1. Negative values (the paper's Lemma 3.3 /
/// Example 1.2 use weight -1 and weights 1/(w-1) < 0) are fully supported.
class BigRational {
 public:
  /// Zero.
  BigRational() : numerator_(0), denominator_(1) {}
  /// From integer.
  BigRational(std::int64_t value)  // NOLINT(google-explicit-constructor)
      : numerator_(value), denominator_(1) {}
  /// From BigInt.
  BigRational(BigInt value)  // NOLINT(google-explicit-constructor)
      : numerator_(std::move(value)), denominator_(1) {}
  /// numerator/denominator; throws std::domain_error if denominator is 0.
  BigRational(BigInt numerator, BigInt denominator);
  /// Convenience for small fractions.
  static BigRational Fraction(std::int64_t numerator,
                              std::int64_t denominator);
  /// Parses "a", "-a", "a/b". Throws std::invalid_argument on bad input.
  static BigRational FromString(std::string_view text);

  const BigInt& numerator() const { return numerator_; }
  const BigInt& denominator() const { return denominator_; }

  bool IsZero() const { return numerator_.IsZero(); }
  bool IsOne() const { return numerator_.IsOne() && denominator_.IsOne(); }
  bool IsInteger() const { return denominator_.IsOne(); }
  int Sign() const { return numerator_.Sign(); }

  /// Heap bytes owned by this value (numerator + denominator limb
  /// buffers). Used by byte-accounted caches.
  std::size_t HeapBytes() const {
    return numerator_.HeapBytes() + denominator_.HeapBytes();
  }

  /// "a/b" or "a" when the denominator is 1.
  std::string ToString() const;
  /// Lossy; reporting only.
  double ToDouble() const;
  /// The integer value; throws std::domain_error when not an integer.
  const BigInt& ToInteger() const;

  BigRational operator-() const;
  BigRational Abs() const;
  /// Multiplicative inverse; throws std::domain_error on zero.
  BigRational Inverse() const;

  BigRational& operator+=(const BigRational& other);
  BigRational& operator-=(const BigRational& other);
  BigRational& operator*=(const BigRational& other);
  BigRational& operator/=(const BigRational& other);

  friend BigRational operator+(BigRational a, const BigRational& b) {
    return a += b;
  }
  friend BigRational operator-(BigRational a, const BigRational& b) {
    return a -= b;
  }
  friend BigRational operator*(BigRational a, const BigRational& b) {
    return a *= b;
  }
  friend BigRational operator/(BigRational a, const BigRational& b) {
    return a /= b;
  }

  /// base^exponent; negative exponents allowed for nonzero base.
  static BigRational Pow(const BigRational& base, std::int64_t exponent);

  friend bool operator==(const BigRational& a, const BigRational& b) {
    return a.numerator_ == b.numerator_ && a.denominator_ == b.denominator_;
  }
  friend bool operator!=(const BigRational& a, const BigRational& b) {
    return !(a == b);
  }
  friend bool operator<(const BigRational& a, const BigRational& b);
  friend bool operator>(const BigRational& a, const BigRational& b) {
    return b < a;
  }
  friend bool operator<=(const BigRational& a, const BigRational& b) {
    return !(b < a);
  }
  friend bool operator>=(const BigRational& a, const BigRational& b) {
    return !(a < b);
  }

  friend std::ostream& operator<<(std::ostream& os, const BigRational& value);

 private:
  void Reduce();
  /// Debug-build invariant check (compiled out under NDEBUG): denominator
  /// positive, numerator and denominator coprime, zero stored as 0/1.
  /// Every mutation path ends in either Reduce() or a fast path whose
  /// result is canonical by construction; this verifies both.
  void CheckCanonical() const;

  BigInt numerator_;
  BigInt denominator_;
};

/// Batched, gcd-deferred rational accumulator.
///
/// The counters spend most of their time folding long products and short
/// sums of canonical BigRationals (branch weights, component counts,
/// cached values). Running those through BigRational would reduce to
/// lowest terms after every step; this accumulator keeps an *unreduced*
/// numerator/denominator pair (denominator positive, but not coprime with
/// the numerator) and performs a single canonicalizing reduction when the
/// result is taken. Because only the final canonical value is observable,
/// results are bit-identical to the step-by-step path.
class RationalAccumulator {
 public:
  /// Starts at zero (0/1).
  RationalAccumulator() : numerator_(0), denominator_(1) {}

  void SetOne() {
    numerator_ = BigInt(1);
    denominator_ = BigInt(1);
  }
  void Set(const BigRational& value) {
    numerator_ = value.numerator();
    denominator_ = value.denominator();
  }

  /// True iff the accumulated value is zero (denominators never vanish,
  /// so the unreduced numerator decides).
  bool IsZero() const { return numerator_.IsZero(); }

  /// *this *= value, no reduction.
  void Multiply(const BigRational& value) {
    numerator_ *= value.numerator();
    denominator_ *= value.denominator();
  }

  /// *this += value, cross-multiplied, no reduction.
  void Add(const BigRational& value) {
    numerator_ = numerator_ * value.denominator() + value.numerator() * denominator_;
    denominator_ *= value.denominator();
  }

  /// *this += other, cross-multiplied, no reduction.
  void Add(const RationalAccumulator& other) {
    numerator_ =
        numerator_ * other.denominator_ + other.numerator_ * denominator_;
    denominator_ *= other.denominator_;
  }

  /// The accumulated value in canonical form (one reduction).
  BigRational Canonical() const { return BigRational(numerator_, denominator_); }

 private:
  BigInt numerator_;
  BigInt denominator_;
};

}  // namespace swfomc::numeric

#endif  // SWFOMC_NUMERIC_RATIONAL_H_
