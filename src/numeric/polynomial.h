#ifndef SWFOMC_NUMERIC_POLYNOMIAL_H_
#define SWFOMC_NUMERIC_POLYNOMIAL_H_

#include <string>
#include <vector>

#include "numeric/rational.h"

namespace swfomc::numeric {

/// Dense univariate polynomial over BigRational.
///
/// Two of the paper's arguments are literally polynomial arguments and this
/// class runs them:
///   * Section 2 observes that WFOMC(Φ,n,w) is a multivariate polynomial in
///     the relation weights and that an evaluation oracle at positive points
///     determines it everywhere (so negative weights add no hardness);
///   * Lemma 3.5 recovers WFOMC(Φ,n,w) as the degree-n coefficient of a
///     degree-n² polynomial via n+1 oracle calls (finite differences or,
///     equivalently, interpolation).
class Polynomial {
 public:
  /// The zero polynomial.
  Polynomial() = default;
  /// From low-to-high coefficient list (trailing zeros are trimmed).
  explicit Polynomial(std::vector<BigRational> coefficients);
  /// The constant polynomial c.
  static Polynomial Constant(BigRational c);
  /// The monomial c * x^degree.
  static Polynomial Monomial(BigRational c, std::size_t degree);

  /// Degree; the zero polynomial has degree 0 by convention here.
  std::size_t Degree() const {
    return coefficients_.empty() ? 0 : coefficients_.size() - 1;
  }
  bool IsZero() const { return coefficients_.empty(); }

  /// Coefficient of x^k (0 beyond the degree).
  const BigRational& Coefficient(std::size_t k) const;

  /// Horner evaluation.
  BigRational Evaluate(const BigRational& x) const;

  Polynomial operator-() const;
  Polynomial& operator+=(const Polynomial& other);
  Polynomial& operator-=(const Polynomial& other);
  Polynomial& operator*=(const Polynomial& other);

  friend Polynomial operator+(Polynomial a, const Polynomial& b) {
    return a += b;
  }
  friend Polynomial operator-(Polynomial a, const Polynomial& b) {
    return a -= b;
  }
  friend Polynomial operator*(Polynomial a, const Polynomial& b) {
    return a *= b;
  }

  friend bool operator==(const Polynomial& a, const Polynomial& b) {
    return a.coefficients_ == b.coefficients_;
  }
  friend bool operator!=(const Polynomial& a, const Polynomial& b) {
    return !(a == b);
  }

  /// Unique polynomial of degree < points.size() through the given
  /// (x, y) pairs (Lagrange). Throws std::invalid_argument on duplicate x.
  static Polynomial Interpolate(
      const std::vector<std::pair<BigRational, BigRational>>& points);

  /// Human-readable rendering like "3*x^2 - 1/2*x + 7".
  std::string ToString(const std::string& variable = "x") const;

 private:
  void Trim();

  // Low-to-high; invariant: no trailing zero coefficient.
  std::vector<BigRational> coefficients_;
};

/// The k-th forward finite difference at 0 with step `step`:
/// Δ^k f(0) = Σ_i (-1)^{k-i} C(k,i) f(i*step). For a polynomial f of degree
/// k with leading coefficient c and step 1, this equals c * k!. This is
/// exactly the extraction step in the proof of Lemma 3.5.
BigRational FiniteDifferenceAtZero(
    const std::vector<BigRational>& values_at_multiples_of_step);

}  // namespace swfomc::numeric

#endif  // SWFOMC_NUMERIC_POLYNOMIAL_H_
