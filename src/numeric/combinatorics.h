#ifndef SWFOMC_NUMERIC_COMBINATORICS_H_
#define SWFOMC_NUMERIC_COMBINATORICS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "numeric/bigint.h"

namespace swfomc::numeric {

/// n! as a BigInt. Served from a shared thread-local FactorialTable, so
/// repeated calls (e.g. unlabeled-count divisions across domain sizes)
/// cost one multiplication per previously unseen n.
BigInt Factorial(std::uint64_t n);

/// Binomial coefficient C(n, k); 0 when k > n.
BigInt Binomial(std::uint64_t n, std::uint64_t k);

/// Binomial coefficient with BigInt upper index (needed by the γ-acyclic
/// evaluator, where rule (e) multiplies domain sizes). Computed as the
/// falling factorial n(n-1)...(n-k+1) / k!.
BigInt Binomial(const BigInt& n, std::uint64_t k);

/// Multinomial coefficient n! / (parts[0]! * ... * parts[m-1]!).
/// Requires sum(parts) == n (checked).
BigInt Multinomial(std::uint64_t n, const std::vector<std::uint64_t>& parts);

/// Enumerates all weak compositions of `total` into `parts` non-negative
/// summands, invoking `visit` with each composition. Used by the FO² cell
/// algorithm (Appendix C sums over cell cardinalities n_1+...+n_{2^m}=n).
/// `visit` returning false aborts the enumeration.
void ForEachComposition(
    std::uint64_t total, std::size_t parts,
    const std::function<bool(const std::vector<std::uint64_t>&)>& visit);

/// Number of weak compositions of `total` into `parts` summands:
/// C(total + parts - 1, parts - 1).
BigInt CompositionCount(std::uint64_t total, std::size_t parts);

/// Memoized factorial table: Get(n) extends the cache one multiplication
/// at a time, so a sequence of calls costs one BigInt multiply per new n
/// instead of O(n) each. Deque storage keeps returned references valid
/// across later growth. Backs the free Factorial().
class FactorialTable {
 public:
  const BigInt& Get(std::uint64_t n);

 private:
  std::deque<BigInt> values_;
};

/// Memoized binomial coefficients via cached Pascal rows: row n is built
/// once from row n-1 (n additions) and every later Get(n, k) is a table
/// lookup. Use one table per algorithm invocation wherever C(n, k) is
/// recomputed inside loops (the FO² composition sum, closed forms, the
/// chain-query and QS4 recurrences).
class BinomialTable {
 public:
  /// C(n, k); a shared zero when k > n.
  const BigInt& Get(std::uint64_t n, std::uint64_t k);

  /// n! / (parts[0]! · ... · parts[m-1]!) as a product of cached
  /// binomials. Requires sum(parts) == n (checked).
  BigInt Multinomial(std::uint64_t n, const std::vector<std::uint64_t>& parts);

 private:
  std::vector<std::vector<BigInt>> rows_;
};

}  // namespace swfomc::numeric

#endif  // SWFOMC_NUMERIC_COMBINATORICS_H_
