#include "numeric/combinatorics.h"

#include <stdexcept>

namespace swfomc::numeric {

BigInt Factorial(std::uint64_t n) {
  thread_local FactorialTable table;
  return table.Get(n);
}

BigInt Binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return BigInt(0);
  if (k > n - k) k = n - k;
  BigInt result(1);
  for (std::uint64_t i = 0; i < k; ++i) {
    result *= BigInt::FromUnsigned(n - i);
    result /= BigInt::FromUnsigned(i + 1);
  }
  return result;
}

BigInt Binomial(const BigInt& n, std::uint64_t k) {
  if (n.IsNegative()) {
    throw std::domain_error("Binomial: negative upper index");
  }
  // Unconditional k > n guard: the old FitsInt64-gated check missed
  // n in [2^63, 2^64) with k > n, where the falling factorial below
  // picks up negative factors.
  if (BigInt::FromUnsigned(k) > n) return BigInt(0);
  BigInt result(1);
  for (std::uint64_t i = 0; i < k; ++i) {
    result *= n - BigInt::FromUnsigned(i);
    result /= BigInt::FromUnsigned(i + 1);
  }
  return result;
}

BigInt Multinomial(std::uint64_t n, const std::vector<std::uint64_t>& parts) {
  std::uint64_t sum = 0;
  for (std::uint64_t p : parts) sum += p;
  if (sum != n) {
    throw std::invalid_argument("Multinomial: parts do not sum to n");
  }
  BigInt result(1);
  std::uint64_t remaining = n;
  for (std::uint64_t p : parts) {
    result *= Binomial(remaining, p);
    remaining -= p;
  }
  return result;
}

void ForEachComposition(
    std::uint64_t total, std::size_t parts,
    const std::function<bool(const std::vector<std::uint64_t>&)>& visit) {
  if (parts == 0) {
    if (total == 0) visit({});
    return;
  }
  std::vector<std::uint64_t> current(parts, 0);
  // Recursive fill of positions [index, parts) summing to `remaining`.
  std::function<bool(std::size_t, std::uint64_t)> fill =
      [&](std::size_t index, std::uint64_t remaining) -> bool {
    if (index + 1 == parts) {
      current[index] = remaining;
      return visit(current);
    }
    for (std::uint64_t value = 0; value <= remaining; ++value) {
      current[index] = value;
      if (!fill(index + 1, remaining - value)) return false;
    }
    return true;
  };
  fill(0, total);
}

BigInt CompositionCount(std::uint64_t total, std::size_t parts) {
  if (parts == 0) return BigInt(total == 0 ? 1 : 0);
  return Binomial(total + parts - 1, static_cast<std::uint64_t>(parts - 1));
}

const BigInt& FactorialTable::Get(std::uint64_t n) {
  if (values_.empty()) values_.push_back(BigInt(1));  // 0! = 1
  while (values_.size() <= n) {
    values_.push_back(values_.back() *
                      BigInt::FromUnsigned(values_.size()));
  }
  return values_[n];
}

const BigInt& BinomialTable::Get(std::uint64_t n, std::uint64_t k) {
  static const BigInt kZero(0);
  if (k > n) return kZero;
  while (rows_.size() <= n) {
    std::size_t row_index = rows_.size();
    std::vector<BigInt> row(row_index + 1, BigInt(1));
    for (std::size_t j = 1; j < row_index; ++j) {
      row[j] = rows_[row_index - 1][j - 1] + rows_[row_index - 1][j];
    }
    rows_.push_back(std::move(row));
  }
  return rows_[n][k];
}

BigInt BinomialTable::Multinomial(std::uint64_t n,
                                  const std::vector<std::uint64_t>& parts) {
  std::uint64_t sum = 0;
  for (std::uint64_t p : parts) sum += p;
  if (sum != n) {
    throw std::invalid_argument("Multinomial: parts do not sum to n");
  }
  BigInt result(1);
  std::uint64_t remaining = n;
  for (std::uint64_t p : parts) {
    result *= Get(remaining, p);
    remaining -= p;
  }
  return result;
}

}  // namespace swfomc::numeric
