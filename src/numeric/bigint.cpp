#include "numeric/bigint.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace swfomc::numeric {

namespace {

constexpr std::uint64_t kBase = 1ULL << 32;
constexpr std::uint64_t kTwo63 = 1ULL << 63;
constexpr std::size_t kKaratsubaThreshold = 32;

void TrimZeros(std::vector<std::uint32_t>* limbs) {
  while (!limbs->empty() && limbs->back() == 0) limbs->pop_back();
}

}  // namespace

std::uint64_t BigInt::InlineMagnitude() const {
  // Negate in unsigned space: well-defined for INT64_MIN.
  return small_ < 0 ? ~static_cast<std::uint64_t>(small_) + 1
                    : static_cast<std::uint64_t>(small_);
}

BigInt::MagnitudeSpan BigInt::MagnitudeView(std::uint32_t scratch[2]) const {
  if (!IsInline()) return {limbs_.data(), limbs_.size()};
  std::uint64_t magnitude = InlineMagnitude();
  std::size_t count = 0;
  while (magnitude != 0) {
    scratch[count++] = static_cast<std::uint32_t>(magnitude);
    magnitude >>= 32;
  }
  return {scratch, count};
}

void BigInt::SetFromUnsignedMagnitude(std::uint64_t magnitude, bool negative) {
  if (negative ? magnitude <= kTwo63 : magnitude < kTwo63) {
    small_ = negative ? static_cast<std::int64_t>(~magnitude + 1)
                      : static_cast<std::int64_t>(magnitude);
    limbs_.clear();
    negative_ = false;
    return;
  }
  limbs_.clear();
  limbs_.push_back(static_cast<std::uint32_t>(magnitude));
  limbs_.push_back(static_cast<std::uint32_t>(magnitude >> 32));
  negative_ = negative;
  small_ = 0;
}

void BigInt::SetFromMagnitude(std::vector<std::uint32_t> magnitude,
                              bool negative) {
  TrimZeros(&magnitude);
  if (magnitude.size() <= 2) {
    std::uint64_t value = magnitude.empty() ? 0 : magnitude[0];
    if (magnitude.size() == 2) {
      value |= static_cast<std::uint64_t>(magnitude[1]) << 32;
    }
    SetFromUnsignedMagnitude(value, negative);
    return;
  }
  limbs_ = std::move(magnitude);
  negative_ = negative;
  small_ = 0;
}

void BigInt::MaybeDemote() {
  if (limbs_.empty()) {
    negative_ = false;
    small_ = 0;
    return;
  }
  if (limbs_.size() > 2) return;
  std::uint64_t magnitude = limbs_[0];
  if (limbs_.size() == 2) {
    magnitude |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  }
  if (negative_ ? magnitude > kTwo63 : magnitude >= kTwo63) return;
  bool negative = negative_;
  limbs_.clear();
  negative_ = false;
  small_ = negative ? static_cast<std::int64_t>(~magnitude + 1)
                    : static_cast<std::int64_t>(magnitude);
}

void BigInt::NegateInPlace() {
  if (IsInline()) {
    if (small_ == std::numeric_limits<std::int64_t>::min()) {
      SetFromUnsignedMagnitude(kTwo63, false);
    } else {
      small_ = -small_;
    }
    return;
  }
  negative_ = !negative_;
  // Negating heap +2^63 yields INT64_MIN, which must go back inline.
  MaybeDemote();
}

BigInt BigInt::FromUnsigned(std::uint64_t value) {
  BigInt result;
  result.SetFromUnsignedMagnitude(value, false);
  return result;
}

BigInt BigInt::FromString(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigInt: empty string");
  bool negative = false;
  std::size_t start = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    start = 1;
  }
  if (start == text.size()) throw std::invalid_argument("BigInt: no digits");
  if (text.size() - start <= 18) {
    // Up to 18 digits always fit: 10^18 < 2^63.
    std::uint64_t value = 0;
    for (std::size_t i = start; i < text.size(); ++i) {
      char c = text[i];
      if (c < '0' || c > '9') {
        throw std::invalid_argument("BigInt: invalid digit");
      }
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    BigInt result;
    result.SetFromUnsignedMagnitude(value, negative);
    return result;
  }
  std::vector<std::uint32_t> magnitude;
  // Process 9 decimal digits at a time: magnitude = magnitude * 10^9 + chunk.
  std::size_t i = start;
  while (i < text.size()) {
    std::size_t chunk_len = std::min<std::size_t>(9, text.size() - i);
    std::uint32_t chunk = 0;
    std::uint32_t chunk_base = 1;
    for (std::size_t j = 0; j < chunk_len; ++j, ++i) {
      char c = text[i];
      if (c < '0' || c > '9') {
        throw std::invalid_argument("BigInt: invalid digit");
      }
      chunk = chunk * 10 + static_cast<std::uint32_t>(c - '0');
      chunk_base *= 10;
    }
    std::uint64_t carry = chunk;
    for (std::uint32_t& limb : magnitude) {
      std::uint64_t cur = static_cast<std::uint64_t>(limb) * chunk_base + carry;
      limb = static_cast<std::uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
    }
    while (carry != 0) {
      magnitude.push_back(static_cast<std::uint32_t>(carry & 0xFFFFFFFFu));
      carry >>= 32;
    }
  }
  BigInt result;
  result.SetFromMagnitude(std::move(magnitude), negative);
  return result;
}

int BigInt::Sign() const {
  if (IsInline()) return (small_ > 0) - (small_ < 0);
  return negative_ ? -1 : 1;
}

std::size_t BigInt::BitLength() const {
  if (IsInline()) {
    return static_cast<std::size_t>(std::bit_width(InlineMagnitude()));
  }
  std::uint32_t top = limbs_.back();
  return (limbs_.size() - 1) * 32 +
         static_cast<std::size_t>(std::bit_width(top));
}

std::string BigInt::ToString() const {
  if (IsInline()) return std::to_string(small_);
  // Repeatedly divide the magnitude by 10^9.
  std::vector<std::uint32_t> magnitude = limbs_;
  std::vector<std::uint32_t> chunks;  // base-10^9 digits, little-endian
  while (!magnitude.empty()) {
    std::uint64_t remainder = 0;
    for (std::size_t i = magnitude.size(); i-- > 0;) {
      std::uint64_t cur = (remainder << 32) | magnitude[i];
      magnitude[i] = static_cast<std::uint32_t>(cur / 1000000000u);
      remainder = cur % 1000000000u;
    }
    TrimZeros(&magnitude);
    chunks.push_back(static_cast<std::uint32_t>(remainder));
  }
  std::string out;
  if (negative_) out.push_back('-');
  out += std::to_string(chunks.back());
  for (std::size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out.append(9 - part.size(), '0');
    out += part;
  }
  return out;
}

std::int64_t BigInt::ToInt64() const {
  if (!IsInline()) throw std::overflow_error("BigInt: does not fit in int64");
  return small_;
}

double BigInt::ToDouble() const {
  if (IsInline()) return static_cast<double>(small_);
  double result = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    result = result * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -result : result;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  result.NegateInPlace();
  return result;
}

BigInt BigInt::Abs() const {
  BigInt result = *this;
  if (result.IsInline()) {
    if (result.small_ < 0) result.NegateInPlace();
  } else {
    // A negative heap magnitude is >= 2^63 + 1; it stays heap when the
    // sign is dropped, so the form remains canonical.
    result.negative_ = false;
  }
  return result;
}

int BigInt::CompareMagnitude(MagnitudeSpan a, MagnitudeSpan b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<std::uint32_t> BigInt::AddMagnitude(MagnitudeSpan a,
                                                MagnitudeSpan b) {
  MagnitudeSpan longer = a.size() >= b.size() ? a : b;
  MagnitudeSpan shorter = a.size() >= b.size() ? b : a;
  std::vector<std::uint32_t> result;
  result.reserve(longer.size() + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < longer.size(); ++i) {
    std::uint64_t sum = carry + longer[i];
    if (i < shorter.size()) sum += shorter[i];
    result.push_back(static_cast<std::uint32_t>(sum & 0xFFFFFFFFu));
    carry = sum >> 32;
  }
  if (carry != 0) result.push_back(static_cast<std::uint32_t>(carry));
  return result;
}

std::vector<std::uint32_t> BigInt::SubMagnitude(MagnitudeSpan a,
                                                MagnitudeSpan b) {
  std::vector<std::uint32_t> result;
  result.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow;
    if (i < b.size()) diff -= b[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    result.push_back(static_cast<std::uint32_t>(diff));
  }
  TrimZeros(&result);
  return result;
}

std::vector<std::uint32_t> BigInt::MulSchoolbook(MagnitudeSpan a,
                                                 MagnitudeSpan b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint32_t> result(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = static_cast<std::uint64_t>(a[i]) * b[j] +
                          result[i + j] + carry;
      result[i + j] = static_cast<std::uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      std::uint64_t cur = result[k] + carry;
      result[k] = static_cast<std::uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
      ++k;
    }
  }
  TrimZeros(&result);
  return result;
}

std::vector<std::uint32_t> BigInt::MulKaratsuba(MagnitudeSpan a,
                                                MagnitudeSpan b) {
  if (a.size() < kKaratsubaThreshold || b.size() < kKaratsubaThreshold) {
    return MulSchoolbook(a, b);
  }
  std::size_t half = std::max(a.size(), b.size()) / 2;
  auto low = [half](MagnitudeSpan v) {
    MagnitudeSpan part = v.subspan(0, std::min(half, v.size()));
    while (!part.empty() && part.back() == 0) part = part.first(part.size() - 1);
    return part;
  };
  auto high = [half](MagnitudeSpan v) {
    return v.size() > half ? v.subspan(half) : MagnitudeSpan{};
  };
  MagnitudeSpan a_low = low(a);
  MagnitudeSpan a_high = high(a);
  MagnitudeSpan b_low = low(b);
  MagnitudeSpan b_high = high(b);

  std::vector<std::uint32_t> z0 = MulKaratsuba(a_low, b_low);
  std::vector<std::uint32_t> z2 = MulKaratsuba(a_high, b_high);
  std::vector<std::uint32_t> sum_a = AddMagnitude(a_low, a_high);
  std::vector<std::uint32_t> sum_b = AddMagnitude(b_low, b_high);
  std::vector<std::uint32_t> z1 = MulKaratsuba(sum_a, sum_b);
  z1 = SubMagnitude(z1, z0);
  z1 = SubMagnitude(z1, z2);

  // result = z0 + z1 << (32*half) + z2 << (64*half)
  std::vector<std::uint32_t> result(std::max(
      {z0.size(), z1.size() + half, z2.size() + 2 * half}) + 1, 0);
  auto add_at = [&result](const std::vector<std::uint32_t>& v,
                          std::size_t offset) {
    std::uint64_t carry = 0;
    std::size_t i = 0;
    for (; i < v.size(); ++i) {
      std::uint64_t cur = static_cast<std::uint64_t>(result[offset + i]) +
                          v[i] + carry;
      result[offset + i] = static_cast<std::uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
    }
    while (carry != 0) {
      std::uint64_t cur = result[offset + i] + carry;
      result[offset + i] = static_cast<std::uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
      ++i;
    }
  };
  add_at(z0, 0);
  add_at(z1, half);
  add_at(z2, 2 * half);
  TrimZeros(&result);
  return result;
}

std::vector<std::uint32_t> BigInt::MulMagnitude(MagnitudeSpan a,
                                                MagnitudeSpan b) {
  return MulKaratsuba(a, b);
}

void BigInt::DivModMagnitude(MagnitudeSpan a, MagnitudeSpan b,
                             std::vector<std::uint32_t>* quotient,
                             std::vector<std::uint32_t>* remainder) {
  quotient->clear();
  remainder->clear();
  if (b.empty()) throw std::domain_error("BigInt: division by zero");
  if (CompareMagnitude(a, b) < 0) {
    remainder->assign(a.begin(), a.end());
    return;
  }
  if (b.size() == 1) {
    // Fast path: single-limb divisor.
    std::uint64_t divisor = b[0];
    quotient->assign(a.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = a.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | a[i];
      (*quotient)[i] = static_cast<std::uint32_t>(cur / divisor);
      rem = cur % divisor;
    }
    TrimZeros(quotient);
    if (rem != 0) {
      remainder->push_back(static_cast<std::uint32_t>(rem & 0xFFFFFFFFu));
      if (rem >> 32) remainder->push_back(static_cast<std::uint32_t>(rem >> 32));
    }
    return;
  }
  // Knuth algorithm D with normalization so the top divisor limb has its
  // high bit set.
  int shift = 0;
  std::uint32_t top = b.back();
  while ((top & 0x80000000u) == 0) {
    top <<= 1;
    ++shift;
  }
  auto shift_left = [](MagnitudeSpan v, int s) {
    std::vector<std::uint32_t> out(v.size() + 1, 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      out[i] |= v[i] << s;
      if (s != 0) out[i + 1] |= static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(v[i]) >> (32 - s));
    }
    TrimZeros(&out);
    return out;
  };
  std::vector<std::uint32_t> u = shift_left(a, shift);
  std::vector<std::uint32_t> v = shift_left(b, shift);
  std::size_t n = v.size();
  std::size_t m = u.size() - n;
  u.push_back(0);  // u has m+n+1 limbs
  quotient->assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t q_hat = numerator / v[n - 1];
    std::uint64_t r_hat = numerator % v[n - 1];
    while (q_hat >= kBase ||
           q_hat * v[n - 2] > ((r_hat << 32) | u[j + n - 2])) {
      --q_hat;
      r_hat += v[n - 1];
      if (r_hat >= kBase) break;
    }
    // Multiply-subtract u[j..j+n] -= q_hat * v.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t product = q_hat * v[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(u[j + i]) -
                          static_cast<std::int64_t>(product & 0xFFFFFFFFu) -
                          borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[j + i] = static_cast<std::uint32_t>(diff);
    }
    std::int64_t diff = static_cast<std::int64_t>(u[j + n]) -
                        static_cast<std::int64_t>(carry) - borrow;
    if (diff < 0) {
      // q_hat was one too large: add back.
      diff += static_cast<std::int64_t>(kBase);
      --q_hat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum =
            static_cast<std::uint64_t>(u[j + i]) + v[i] + add_carry;
        u[j + i] = static_cast<std::uint32_t>(sum & 0xFFFFFFFFu);
        add_carry = sum >> 32;
      }
      diff += static_cast<std::int64_t>(add_carry);
      diff &= 0xFFFFFFFF;
    }
    u[j + n] = static_cast<std::uint32_t>(diff);
    (*quotient)[j] = static_cast<std::uint32_t>(q_hat);
  }
  TrimZeros(quotient);
  // Remainder = u[0..n) >> shift.
  u.resize(n);
  if (shift != 0) {
    for (std::size_t i = 0; i < n; ++i) {
      u[i] >>= shift;
      if (i + 1 < n) {
        u[i] |= u[i + 1] << (32 - shift);
      }
    }
  }
  TrimZeros(&u);
  *remainder = std::move(u);
}

void BigInt::AddGeneric(const BigInt& other, bool negate_other) {
  std::uint32_t sa[2], sb[2];
  MagnitudeSpan a = MagnitudeView(sa);
  MagnitudeSpan b = other.MagnitudeView(sb);
  bool a_negative = IsNegative();
  bool b_negative = negate_other ? !other.IsNegative() : other.IsNegative();
  if (a_negative == b_negative) {
    SetFromMagnitude(AddMagnitude(a, b), a_negative);
    return;
  }
  int cmp = CompareMagnitude(a, b);
  if (cmp == 0) {
    SetFromUnsignedMagnitude(0, false);
  } else if (cmp > 0) {
    SetFromMagnitude(SubMagnitude(a, b), a_negative);
  } else {
    SetFromMagnitude(SubMagnitude(b, a), b_negative);
  }
}

BigInt& BigInt::operator+=(const BigInt& other) {
  if (IsInline() && other.IsInline()) {
    std::int64_t result;
    if (!__builtin_add_overflow(small_, other.small_, &result)) {
      small_ = result;
      return *this;
    }
  }
  AddGeneric(other, /*negate_other=*/false);
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& other) {
  if (IsInline() && other.IsInline()) {
    std::int64_t result;
    if (!__builtin_sub_overflow(small_, other.small_, &result)) {
      small_ = result;
      return *this;
    }
  }
  AddGeneric(other, /*negate_other=*/true);
  return *this;
}

BigInt& BigInt::operator*=(const BigInt& other) {
  if (IsInline() && other.IsInline()) {
    std::int64_t result;
    if (!__builtin_mul_overflow(small_, other.small_, &result)) {
      small_ = result;
      return *this;
    }
  }
  std::uint32_t sa[2], sb[2];
  MagnitudeSpan a = MagnitudeView(sa);
  MagnitudeSpan b = other.MagnitudeView(sb);
  bool result_negative = IsNegative() != other.IsNegative();
  SetFromMagnitude(MulMagnitude(a, b), result_negative);
  return *this;
}

BigInt& BigInt::operator/=(const BigInt& other) {
  BigInt quotient, remainder;
  DivMod(*this, other, &quotient, &remainder);
  *this = std::move(quotient);
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& other) {
  BigInt quotient, remainder;
  DivMod(*this, other, &quotient, &remainder);
  *this = std::move(remainder);
  return *this;
}

void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                    BigInt* remainder) {
  if (b.IsZero()) throw std::domain_error("BigInt: division by zero");
  if (a.IsInline() && b.IsInline()) {
    // Magnitude division avoids the INT64_MIN / -1 overflow; the 2^63
    // quotient escapes to heap form via SetFromUnsignedMagnitude.
    std::uint64_t a_mag = a.InlineMagnitude();
    std::uint64_t b_mag = b.InlineMagnitude();
    bool a_negative = a.small_ < 0;
    bool q_negative = a_negative != (b.small_ < 0);
    quotient->SetFromUnsignedMagnitude(a_mag / b_mag, q_negative);
    remainder->SetFromUnsignedMagnitude(a_mag % b_mag, a_negative);
    return;
  }
  // Signs are read before either out-param is written so quotient or
  // remainder may alias a or b.
  bool a_negative = a.IsNegative();
  bool q_negative = a_negative != b.IsNegative();
  std::uint32_t sa[2], sb[2];
  std::vector<std::uint32_t> q_mag, r_mag;
  DivModMagnitude(a.MagnitudeView(sa), b.MagnitudeView(sb), &q_mag, &r_mag);
  quotient->SetFromMagnitude(std::move(q_mag), q_negative);
  remainder->SetFromMagnitude(std::move(r_mag), a_negative);
}

BigInt BigInt::Pow(const BigInt& base, std::uint64_t exponent) {
  BigInt result(1);
  BigInt factor = base;
  while (exponent != 0) {
    if (exponent & 1) result *= factor;
    exponent >>= 1;
    if (exponent != 0) factor *= factor;
  }
  return result;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  while (true) {
    if (a.IsInline() && b.IsInline()) {
      // Single-word Euclid on magnitudes — the overwhelmingly common
      // case for rational reduction in the counters.
      std::uint64_t x = a.InlineMagnitude();
      std::uint64_t y = b.InlineMagnitude();
      while (y != 0) {
        std::uint64_t t = x % y;
        x = y;
        y = t;
      }
      return FromUnsigned(x);
    }
    if (b.IsZero()) return a.Abs();
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
}

BigInt BigInt::ShiftLeft(std::size_t bits) const {
  if (IsZero() || bits == 0) return *this;
  BigInt result;
  if (IsInline() && bits < 64) {
    std::uint64_t magnitude = InlineMagnitude();
    if ((magnitude >> (64 - bits)) == 0) {
      result.SetFromUnsignedMagnitude(magnitude << bits, small_ < 0);
      return result;
    }
  }
  std::uint32_t scratch[2];
  MagnitudeSpan magnitude = MagnitudeView(scratch);
  std::size_t limb_shift = bits / 32;
  int bit_shift = static_cast<int>(bits % 32);
  std::vector<std::uint32_t> out(magnitude.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < magnitude.size(); ++i) {
    out[i + limb_shift] |= magnitude[i] << bit_shift;
    if (bit_shift != 0) {
      out[i + limb_shift + 1] |= static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(magnitude[i]) >> (32 - bit_shift));
    }
  }
  result.SetFromMagnitude(std::move(out), IsNegative());
  return result;
}

BigInt BigInt::ShiftRight(std::size_t bits) const {
  BigInt result;
  if (IsInline()) {
    std::uint64_t shifted = bits >= 64 ? 0 : InlineMagnitude() >> bits;
    result.SetFromUnsignedMagnitude(shifted, small_ < 0);
    return result;
  }
  std::size_t limb_shift = bits / 32;
  int bit_shift = static_cast<int>(bits % 32);
  if (limb_shift >= limbs_.size()) return result;
  std::vector<std::uint32_t> out(limbs_.begin() + limb_shift, limbs_.end());
  if (bit_shift != 0) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] >>= bit_shift;
      if (i + 1 < out.size()) {
        out[i] |= out[i + 1] << (32 - bit_shift);
      }
    }
  }
  result.SetFromMagnitude(std::move(out), negative_);
  return result;
}

bool operator<(const BigInt& a, const BigInt& b) {
  if (a.IsInline() && b.IsInline()) return a.small_ < b.small_;
  int a_sign = a.Sign();
  int b_sign = b.Sign();
  if (a_sign != b_sign) return a_sign < b_sign;
  if (a.IsInline() != b.IsInline()) {
    // Same sign, mixed forms: the heap magnitude is strictly larger
    // (canonical representation keeps int64-sized values inline).
    return a.IsInline() ? a_sign > 0 : a_sign < 0;
  }
  int cmp = BigInt::CompareMagnitude(a.limbs_, b.limbs_);
  return a_sign < 0 ? cmp > 0 : cmp < 0;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

}  // namespace swfomc::numeric
