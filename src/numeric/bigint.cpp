#include "numeric/bigint.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace swfomc::numeric {

namespace {

constexpr std::uint64_t kBase = 1ULL << 32;
constexpr std::size_t kKaratsubaThreshold = 32;

void TrimZeros(std::vector<std::uint32_t>* limbs) {
  while (!limbs->empty() && limbs->back() == 0) limbs->pop_back();
}

}  // namespace

BigInt::BigInt(std::int64_t value) {
  negative_ = value < 0;
  // Avoid UB on INT64_MIN: negate in unsigned space.
  std::uint64_t magnitude =
      negative_ ? ~static_cast<std::uint64_t>(value) + 1
                : static_cast<std::uint64_t>(value);
  while (magnitude != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(magnitude & 0xFFFFFFFFu));
    magnitude >>= 32;
  }
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::FromUnsigned(std::uint64_t value) {
  BigInt result;
  while (value != 0) {
    result.limbs_.push_back(static_cast<std::uint32_t>(value & 0xFFFFFFFFu));
    value >>= 32;
  }
  return result;
}

BigInt BigInt::FromString(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigInt: empty string");
  bool negative = false;
  std::size_t start = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    start = 1;
  }
  if (start == text.size()) throw std::invalid_argument("BigInt: no digits");
  BigInt result;
  // Process 9 decimal digits at a time: result = result * 10^9 + chunk.
  std::size_t i = start;
  while (i < text.size()) {
    std::size_t chunk_len = std::min<std::size_t>(9, text.size() - i);
    std::uint32_t chunk = 0;
    std::uint32_t chunk_base = 1;
    for (std::size_t j = 0; j < chunk_len; ++j, ++i) {
      char c = text[i];
      if (c < '0' || c > '9') {
        throw std::invalid_argument("BigInt: invalid digit");
      }
      chunk = chunk * 10 + static_cast<std::uint32_t>(c - '0');
      chunk_base *= 10;
    }
    // result = result * chunk_base + chunk, in-place over limbs.
    std::uint64_t carry = chunk;
    for (std::uint32_t& limb : result.limbs_) {
      std::uint64_t cur = static_cast<std::uint64_t>(limb) * chunk_base + carry;
      limb = static_cast<std::uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
    }
    while (carry != 0) {
      result.limbs_.push_back(static_cast<std::uint32_t>(carry & 0xFFFFFFFFu));
      carry >>= 32;
    }
  }
  result.negative_ = negative;
  result.Normalize();
  return result;
}

int BigInt::Sign() const {
  if (limbs_.empty()) return 0;
  return negative_ ? -1 : 1;
}

std::size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

std::string BigInt::ToString() const {
  if (limbs_.empty()) return "0";
  // Repeatedly divide the magnitude by 10^9.
  std::vector<std::uint32_t> magnitude = limbs_;
  std::vector<std::uint32_t> chunks;  // base-10^9 digits, little-endian
  while (!magnitude.empty()) {
    std::uint64_t remainder = 0;
    for (std::size_t i = magnitude.size(); i-- > 0;) {
      std::uint64_t cur = (remainder << 32) | magnitude[i];
      magnitude[i] = static_cast<std::uint32_t>(cur / 1000000000u);
      remainder = cur % 1000000000u;
    }
    TrimZeros(&magnitude);
    chunks.push_back(static_cast<std::uint32_t>(remainder));
  }
  std::string out;
  if (negative_) out.push_back('-');
  out += std::to_string(chunks.back());
  for (std::size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out.append(9 - part.size(), '0');
    out += part;
  }
  return out;
}

bool BigInt::FitsInt64() const {
  if (limbs_.size() > 2) return false;
  if (limbs_.size() < 2) return true;
  std::uint64_t magnitude =
      (static_cast<std::uint64_t>(limbs_[1]) << 32) | limbs_[0];
  if (negative_) return magnitude <= (1ULL << 63);
  return magnitude < (1ULL << 63);
}

std::int64_t BigInt::ToInt64() const {
  if (!FitsInt64()) throw std::overflow_error("BigInt: does not fit in int64");
  std::uint64_t magnitude = 0;
  if (!limbs_.empty()) magnitude = limbs_[0];
  if (limbs_.size() == 2) magnitude |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (negative_) return static_cast<std::int64_t>(~magnitude + 1);
  return static_cast<std::int64_t>(magnitude);
}

double BigInt::ToDouble() const {
  double result = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    result = result * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -result : result;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  if (!result.limbs_.empty()) result.negative_ = !result.negative_;
  return result;
}

BigInt BigInt::Abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

int BigInt::CompareMagnitude(const std::vector<std::uint32_t>& a,
                             const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<std::uint32_t> BigInt::AddMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  const auto& longer = a.size() >= b.size() ? a : b;
  const auto& shorter = a.size() >= b.size() ? b : a;
  std::vector<std::uint32_t> result;
  result.reserve(longer.size() + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < longer.size(); ++i) {
    std::uint64_t sum = carry + longer[i];
    if (i < shorter.size()) sum += shorter[i];
    result.push_back(static_cast<std::uint32_t>(sum & 0xFFFFFFFFu));
    carry = sum >> 32;
  }
  if (carry != 0) result.push_back(static_cast<std::uint32_t>(carry));
  return result;
}

std::vector<std::uint32_t> BigInt::SubMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> result;
  result.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow;
    if (i < b.size()) diff -= b[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    result.push_back(static_cast<std::uint32_t>(diff));
  }
  TrimZeros(&result);
  return result;
}

std::vector<std::uint32_t> BigInt::MulSchoolbook(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint32_t> result(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = static_cast<std::uint64_t>(a[i]) * b[j] +
                          result[i + j] + carry;
      result[i + j] = static_cast<std::uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      std::uint64_t cur = result[k] + carry;
      result[k] = static_cast<std::uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
      ++k;
    }
  }
  TrimZeros(&result);
  return result;
}

std::vector<std::uint32_t> BigInt::MulKaratsuba(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.size() < kKaratsubaThreshold || b.size() < kKaratsubaThreshold) {
    return MulSchoolbook(a, b);
  }
  std::size_t half = std::max(a.size(), b.size()) / 2;
  auto split = [half](const std::vector<std::uint32_t>& v)
      -> std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>> {
    std::vector<std::uint32_t> low(v.begin(),
                                   v.begin() + std::min(half, v.size()));
    std::vector<std::uint32_t> high;
    if (v.size() > half) high.assign(v.begin() + half, v.end());
    TrimZeros(&low);
    return {std::move(low), std::move(high)};
  };
  auto [a_low, a_high] = split(a);
  auto [b_low, b_high] = split(b);

  std::vector<std::uint32_t> z0 = MulKaratsuba(a_low, b_low);
  std::vector<std::uint32_t> z2 = MulKaratsuba(a_high, b_high);
  std::vector<std::uint32_t> sum_a = AddMagnitude(a_low, a_high);
  std::vector<std::uint32_t> sum_b = AddMagnitude(b_low, b_high);
  std::vector<std::uint32_t> z1 = MulKaratsuba(sum_a, sum_b);
  z1 = SubMagnitude(z1, z0);
  z1 = SubMagnitude(z1, z2);

  // result = z0 + z1 << (32*half) + z2 << (64*half)
  std::vector<std::uint32_t> result(std::max(
      {z0.size(), z1.size() + half, z2.size() + 2 * half}) + 1, 0);
  auto add_at = [&result](const std::vector<std::uint32_t>& v,
                          std::size_t offset) {
    std::uint64_t carry = 0;
    std::size_t i = 0;
    for (; i < v.size(); ++i) {
      std::uint64_t cur = static_cast<std::uint64_t>(result[offset + i]) +
                          v[i] + carry;
      result[offset + i] = static_cast<std::uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
    }
    while (carry != 0) {
      std::uint64_t cur = result[offset + i] + carry;
      result[offset + i] = static_cast<std::uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
      ++i;
    }
  };
  add_at(z0, 0);
  add_at(z1, half);
  add_at(z2, 2 * half);
  TrimZeros(&result);
  return result;
}

std::vector<std::uint32_t> BigInt::MulMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  return MulKaratsuba(a, b);
}

void BigInt::DivModMagnitude(const std::vector<std::uint32_t>& a,
                             const std::vector<std::uint32_t>& b,
                             std::vector<std::uint32_t>* quotient,
                             std::vector<std::uint32_t>* remainder) {
  quotient->clear();
  remainder->clear();
  if (b.empty()) throw std::domain_error("BigInt: division by zero");
  if (CompareMagnitude(a, b) < 0) {
    *remainder = a;
    return;
  }
  if (b.size() == 1) {
    // Fast path: single-limb divisor.
    std::uint64_t divisor = b[0];
    quotient->assign(a.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = a.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | a[i];
      (*quotient)[i] = static_cast<std::uint32_t>(cur / divisor);
      rem = cur % divisor;
    }
    TrimZeros(quotient);
    if (rem != 0) {
      remainder->push_back(static_cast<std::uint32_t>(rem & 0xFFFFFFFFu));
      if (rem >> 32) remainder->push_back(static_cast<std::uint32_t>(rem >> 32));
    }
    return;
  }
  // Knuth algorithm D with normalization so the top divisor limb has its
  // high bit set.
  int shift = 0;
  std::uint32_t top = b.back();
  while ((top & 0x80000000u) == 0) {
    top <<= 1;
    ++shift;
  }
  auto shift_left = [](const std::vector<std::uint32_t>& v, int s) {
    std::vector<std::uint32_t> out(v.size() + 1, 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      out[i] |= v[i] << s;
      if (s != 0) out[i + 1] |= static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(v[i]) >> (32 - s));
    }
    TrimZeros(&out);
    return out;
  };
  std::vector<std::uint32_t> u = shift_left(a, shift);
  std::vector<std::uint32_t> v = shift_left(b, shift);
  std::size_t n = v.size();
  std::size_t m = u.size() - n;
  u.push_back(0);  // u has m+n+1 limbs
  quotient->assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t q_hat = numerator / v[n - 1];
    std::uint64_t r_hat = numerator % v[n - 1];
    while (q_hat >= kBase ||
           q_hat * v[n - 2] > ((r_hat << 32) | u[j + n - 2])) {
      --q_hat;
      r_hat += v[n - 1];
      if (r_hat >= kBase) break;
    }
    // Multiply-subtract u[j..j+n] -= q_hat * v.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t product = q_hat * v[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(u[j + i]) -
                          static_cast<std::int64_t>(product & 0xFFFFFFFFu) -
                          borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[j + i] = static_cast<std::uint32_t>(diff);
    }
    std::int64_t diff = static_cast<std::int64_t>(u[j + n]) -
                        static_cast<std::int64_t>(carry) - borrow;
    if (diff < 0) {
      // q_hat was one too large: add back.
      diff += static_cast<std::int64_t>(kBase);
      --q_hat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum =
            static_cast<std::uint64_t>(u[j + i]) + v[i] + add_carry;
        u[j + i] = static_cast<std::uint32_t>(sum & 0xFFFFFFFFu);
        add_carry = sum >> 32;
      }
      diff += static_cast<std::int64_t>(add_carry);
      diff &= 0xFFFFFFFF;
    }
    u[j + n] = static_cast<std::uint32_t>(diff);
    (*quotient)[j] = static_cast<std::uint32_t>(q_hat);
  }
  TrimZeros(quotient);
  // Remainder = u[0..n) >> shift.
  u.resize(n);
  if (shift != 0) {
    for (std::size_t i = 0; i < n; ++i) {
      u[i] >>= shift;
      if (i + 1 < n) {
        u[i] |= u[i + 1] << (32 - shift);
      }
    }
  }
  TrimZeros(&u);
  *remainder = std::move(u);
}

void BigInt::Normalize() {
  TrimZeros(&limbs_);
  if (limbs_.empty()) negative_ = false;
}

BigInt& BigInt::operator+=(const BigInt& other) {
  if (negative_ == other.negative_) {
    limbs_ = AddMagnitude(limbs_, other.limbs_);
  } else {
    int cmp = CompareMagnitude(limbs_, other.limbs_);
    if (cmp == 0) {
      limbs_.clear();
      negative_ = false;
    } else if (cmp > 0) {
      limbs_ = SubMagnitude(limbs_, other.limbs_);
    } else {
      limbs_ = SubMagnitude(other.limbs_, limbs_);
      negative_ = other.negative_;
    }
  }
  Normalize();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& other) {
  BigInt negated = other;
  if (!negated.limbs_.empty()) negated.negative_ = !negated.negative_;
  return *this += negated;
}

BigInt& BigInt::operator*=(const BigInt& other) {
  bool result_negative = negative_ != other.negative_;
  limbs_ = MulMagnitude(limbs_, other.limbs_);
  negative_ = result_negative;
  Normalize();
  return *this;
}

BigInt& BigInt::operator/=(const BigInt& other) {
  BigInt quotient, remainder;
  DivMod(*this, other, &quotient, &remainder);
  *this = std::move(quotient);
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& other) {
  BigInt quotient, remainder;
  DivMod(*this, other, &quotient, &remainder);
  *this = std::move(remainder);
  return *this;
}

void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                    BigInt* remainder) {
  std::vector<std::uint32_t> q_mag, r_mag;
  DivModMagnitude(a.limbs_, b.limbs_, &q_mag, &r_mag);
  quotient->limbs_ = std::move(q_mag);
  quotient->negative_ = a.negative_ != b.negative_;
  quotient->Normalize();
  remainder->limbs_ = std::move(r_mag);
  remainder->negative_ = a.negative_;
  remainder->Normalize();
}

BigInt BigInt::Pow(const BigInt& base, std::uint64_t exponent) {
  BigInt result(1);
  BigInt factor = base;
  while (exponent != 0) {
    if (exponent & 1) result *= factor;
    exponent >>= 1;
    if (exponent != 0) factor *= factor;
  }
  return result;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.IsZero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::ShiftLeft(std::size_t bits) const {
  if (limbs_.empty() || bits == 0) {
    BigInt r = *this;
    return r;
  }
  std::size_t limb_shift = bits / 32;
  int bit_shift = static_cast<int>(bits % 32);
  BigInt result;
  result.negative_ = negative_;
  result.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    result.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      result.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(limbs_[i]) >> (32 - bit_shift));
    }
  }
  result.Normalize();
  return result;
}

BigInt BigInt::ShiftRight(std::size_t bits) const {
  std::size_t limb_shift = bits / 32;
  int bit_shift = static_cast<int>(bits % 32);
  if (limb_shift >= limbs_.size()) return BigInt();
  BigInt result;
  result.negative_ = negative_;
  result.limbs_.assign(limbs_.begin() + limb_shift, limbs_.end());
  if (bit_shift != 0) {
    for (std::size_t i = 0; i < result.limbs_.size(); ++i) {
      result.limbs_[i] >>= bit_shift;
      if (i + 1 < result.limbs_.size()) {
        result.limbs_[i] |= result.limbs_[i + 1] << (32 - bit_shift);
      }
    }
  }
  result.Normalize();
  return result;
}

bool operator<(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_) return a.negative_;
  int cmp = BigInt::CompareMagnitude(a.limbs_, b.limbs_);
  return a.negative_ ? cmp > 0 : cmp < 0;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

}  // namespace swfomc::numeric
