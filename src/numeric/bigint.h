#ifndef SWFOMC_NUMERIC_BIGINT_H_
#define SWFOMC_NUMERIC_BIGINT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace swfomc::numeric {

/// Arbitrary-precision signed integer.
///
/// Model counts in symmetric WFOMC grow as 2^Θ(n²) (there are 2^|Tup(n)|
/// labeled structures over a domain of size n), so every counting path in
/// this library uses exact arbitrary-precision arithmetic. GMP is not a
/// dependency; this is a from-scratch implementation with sign-magnitude
/// representation over 32-bit limbs (little-endian), schoolbook
/// multiplication with a Karatsuba fast path, and long division.
///
/// The class is a regular value type: copyable, movable, totally ordered,
/// hashable via ToString. All operations are exact; division truncates
/// toward zero (C++ semantics), and DivMod returns both quotient and
/// remainder with |r| < |b| and sign(r) == sign(a) (or r == 0).
class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// From native signed integer.
  BigInt(std::int64_t value);  // NOLINT(google-explicit-constructor)
  /// From native unsigned integer.
  static BigInt FromUnsigned(std::uint64_t value);
  /// Parses a decimal string with optional leading '-'. Throws
  /// std::invalid_argument on malformed input.
  static BigInt FromString(std::string_view text);

  /// True iff the value is zero.
  bool IsZero() const { return limbs_.empty(); }
  /// True iff the value is strictly negative.
  bool IsNegative() const { return negative_; }
  /// True iff the value is one.
  bool IsOne() const { return !negative_ && limbs_.size() == 1 && limbs_[0] == 1; }
  /// Sign as -1, 0, or +1.
  int Sign() const;

  /// Number of bits in the magnitude (0 for zero).
  std::size_t BitLength() const;

  /// Decimal string rendering.
  std::string ToString() const;

  /// Returns the value as int64 if it fits; throws std::overflow_error
  /// otherwise.
  std::int64_t ToInt64() const;
  /// True iff the value fits in int64.
  bool FitsInt64() const;
  /// Lossy conversion to double (for reporting only; never used in
  /// counting paths).
  double ToDouble() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt& operator+=(const BigInt& other);
  BigInt& operator-=(const BigInt& other);
  BigInt& operator*=(const BigInt& other);
  BigInt& operator/=(const BigInt& other);
  BigInt& operator%=(const BigInt& other);

  friend BigInt operator+(BigInt a, const BigInt& b) { return a += b; }
  friend BigInt operator-(BigInt a, const BigInt& b) { return a -= b; }
  friend BigInt operator*(BigInt a, const BigInt& b) { return a *= b; }
  friend BigInt operator/(BigInt a, const BigInt& b) { return a /= b; }
  friend BigInt operator%(BigInt a, const BigInt& b) { return a %= b; }

  /// Simultaneous quotient and remainder; truncated division.
  /// Throws std::domain_error when divisor is zero.
  static void DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                     BigInt* remainder);

  /// a^exponent with exponent >= 0 (throws std::domain_error otherwise).
  static BigInt Pow(const BigInt& base, std::uint64_t exponent);
  /// Greatest common divisor of |a| and |b| (non-negative result).
  static BigInt Gcd(BigInt a, BigInt b);

  /// Left shift by `bits` (multiplication by 2^bits).
  BigInt ShiftLeft(std::size_t bits) const;
  /// Arithmetic right shift of the magnitude by `bits` (division of the
  /// magnitude by 2^bits, sign preserved; returns 0 if all bits shifted out).
  BigInt ShiftRight(std::size_t bits) const;

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return a.negative_ == b.negative_ && a.limbs_ == b.limbs_;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) { return !(a == b); }
  friend bool operator<(const BigInt& a, const BigInt& b);
  friend bool operator>(const BigInt& a, const BigInt& b) { return b < a; }
  friend bool operator<=(const BigInt& a, const BigInt& b) { return !(b < a); }
  friend bool operator>=(const BigInt& a, const BigInt& b) { return !(a < b); }

  friend std::ostream& operator<<(std::ostream& os, const BigInt& value);

 private:
  // Magnitude comparison: -1, 0, +1 for |a| vs |b|.
  static int CompareMagnitude(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> AddMagnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> SubMagnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> MulMagnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> MulSchoolbook(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> MulKaratsuba(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  // Long division of magnitudes; quotient and remainder out-params.
  static void DivModMagnitude(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b,
                              std::vector<std::uint32_t>* quotient,
                              std::vector<std::uint32_t>* remainder);
  void Normalize();

  // Little-endian 32-bit limbs; empty means zero. Invariant: no trailing
  // zero limb, and negative_ is false when limbs_ is empty.
  std::vector<std::uint32_t> limbs_;
  bool negative_ = false;
};

}  // namespace swfomc::numeric

#endif  // SWFOMC_NUMERIC_BIGINT_H_
