#ifndef SWFOMC_NUMERIC_BIGINT_H_
#define SWFOMC_NUMERIC_BIGINT_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace swfomc::numeric {

/// Arbitrary-precision signed integer.
///
/// Model counts in symmetric WFOMC grow as 2^Θ(n²) (there are 2^|Tup(n)|
/// labeled structures over a domain of size n), so every counting path in
/// this library uses exact arbitrary-precision arithmetic. GMP is not a
/// dependency; this is a from-scratch implementation with schoolbook
/// multiplication, a Karatsuba fast path, and Knuth long division.
///
/// Representation: a value that fits in int64 is stored *inline* in a
/// single machine word (`small_`, with `limbs_` empty) — no heap
/// allocation, and every arithmetic operation on two inline operands is a
/// handful of instructions with an overflow check. Values outside int64
/// escape to sign-magnitude heap limbs (32-bit, little-endian). The form
/// is canonical: a result that fits int64 is always demoted back to the
/// inline word, so equality is field-wise and hashing via ToString stays
/// stable. This mirrors the small-value fast paths of Cachet/sharpSAT —
/// counter intermediates are overwhelmingly single-word.
///
/// The class is a regular value type: copyable, movable, totally ordered,
/// hashable via ToString. All operations are exact; division truncates
/// toward zero (C++ semantics), and DivMod returns both quotient and
/// remainder with |r| < |b| and sign(r) == sign(a) (or r == 0).
class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// From native signed integer (always inline).
  BigInt(std::int64_t value) : small_(value) {}  // NOLINT(google-explicit-constructor)
  /// From native unsigned integer.
  static BigInt FromUnsigned(std::uint64_t value);
  /// Parses a decimal string with optional leading '-'. Throws
  /// std::invalid_argument on malformed input.
  static BigInt FromString(std::string_view text);

  /// True iff the value is zero.
  bool IsZero() const { return limbs_.empty() && small_ == 0; }
  /// True iff the value is strictly negative.
  bool IsNegative() const {
    return limbs_.empty() ? small_ < 0 : negative_;
  }
  /// True iff the value is one.
  bool IsOne() const { return limbs_.empty() && small_ == 1; }
  /// Sign as -1, 0, or +1.
  int Sign() const;

  /// Number of bits in the magnitude (0 for zero).
  std::size_t BitLength() const;

  /// Decimal string rendering.
  std::string ToString() const;

  /// Returns the value as int64 if it fits; throws std::overflow_error
  /// otherwise.
  std::int64_t ToInt64() const;
  /// True iff the value fits in int64 — equivalently (by the canonical
  /// representation) iff the value is stored inline.
  bool FitsInt64() const { return limbs_.empty(); }
  /// Heap bytes owned by this value (the limb buffer's capacity; 0 for
  /// inline values). Used by byte-accounted caches.
  std::size_t HeapBytes() const {
    return limbs_.capacity() * sizeof(std::uint32_t);
  }
  /// Lossy conversion to double (for reporting only; never used in
  /// counting paths).
  double ToDouble() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt& operator+=(const BigInt& other);
  BigInt& operator-=(const BigInt& other);
  BigInt& operator*=(const BigInt& other);
  BigInt& operator/=(const BigInt& other);
  BigInt& operator%=(const BigInt& other);

  friend BigInt operator+(BigInt a, const BigInt& b) { return a += b; }
  friend BigInt operator-(BigInt a, const BigInt& b) { return a -= b; }
  friend BigInt operator*(BigInt a, const BigInt& b) { return a *= b; }
  friend BigInt operator/(BigInt a, const BigInt& b) { return a /= b; }
  friend BigInt operator%(BigInt a, const BigInt& b) { return a %= b; }

  /// Simultaneous quotient and remainder; truncated division.
  /// Throws std::domain_error when divisor is zero.
  static void DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                     BigInt* remainder);

  /// a^exponent with exponent >= 0 (throws std::domain_error otherwise).
  static BigInt Pow(const BigInt& base, std::uint64_t exponent);
  /// Greatest common divisor of |a| and |b| (non-negative result).
  static BigInt Gcd(BigInt a, BigInt b);

  /// Left shift by `bits` (multiplication by 2^bits).
  BigInt ShiftLeft(std::size_t bits) const;
  /// Arithmetic right shift of the magnitude by `bits` (division of the
  /// magnitude by 2^bits, sign preserved; returns 0 if all bits shifted out).
  BigInt ShiftRight(std::size_t bits) const;

  friend bool operator==(const BigInt& a, const BigInt& b) {
    // Canonical form (inline iff the value fits int64, sign normalized,
    // no trailing zero limbs) makes equality field-wise: mixed inline /
    // heap representations of the same value cannot exist.
    return a.small_ == b.small_ && a.negative_ == b.negative_ &&
           a.limbs_ == b.limbs_;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) { return !(a == b); }
  friend bool operator<(const BigInt& a, const BigInt& b);
  friend bool operator>(const BigInt& a, const BigInt& b) { return b < a; }
  friend bool operator<=(const BigInt& a, const BigInt& b) { return !(b < a); }
  friend bool operator>=(const BigInt& a, const BigInt& b) { return !(a < b); }

  friend std::ostream& operator<<(std::ostream& os, const BigInt& value);

 private:
  using MagnitudeSpan = std::span<const std::uint32_t>;

  /// True when the value is stored in `small_` (iff it fits int64).
  bool IsInline() const { return limbs_.empty(); }
  /// |small_| without UB on INT64_MIN. Inline form only.
  std::uint64_t InlineMagnitude() const;
  /// The magnitude as a limb span; inline values are decomposed into the
  /// caller-provided 2-limb scratch buffer (no allocation).
  MagnitudeSpan MagnitudeView(std::uint32_t scratch[2]) const;

  /// Canonicalizing assignment from an (untrimmed) magnitude vector:
  /// demotes to the inline word whenever the value fits int64.
  void SetFromMagnitude(std::vector<std::uint32_t> magnitude, bool negative);
  /// Same, from a 64-bit magnitude (negative with magnitude 2^63 is
  /// INT64_MIN and stays inline).
  void SetFromUnsignedMagnitude(std::uint64_t magnitude, bool negative);
  /// Demotes a trimmed heap value back inline when it fits int64.
  void MaybeDemote();
  void NegateInPlace();

  /// Sign-magnitude addition of `other` (negated when `negate_other`)
  /// into *this through the limb kernels; handles every non-inline or
  /// overflowing case.
  void AddGeneric(const BigInt& other, bool negate_other);

  // Magnitude kernels over limb spans (operands may be inline-decomposed
  // scratch buffers or heap limb arrays).
  static int CompareMagnitude(MagnitudeSpan a, MagnitudeSpan b);
  static std::vector<std::uint32_t> AddMagnitude(MagnitudeSpan a,
                                                 MagnitudeSpan b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> SubMagnitude(MagnitudeSpan a,
                                                 MagnitudeSpan b);
  static std::vector<std::uint32_t> MulMagnitude(MagnitudeSpan a,
                                                 MagnitudeSpan b);
  static std::vector<std::uint32_t> MulSchoolbook(MagnitudeSpan a,
                                                  MagnitudeSpan b);
  static std::vector<std::uint32_t> MulKaratsuba(MagnitudeSpan a,
                                                 MagnitudeSpan b);
  // Long division of magnitudes; quotient and remainder out-params.
  static void DivModMagnitude(MagnitudeSpan a, MagnitudeSpan b,
                              std::vector<std::uint32_t>* quotient,
                              std::vector<std::uint32_t>* remainder);

  // Inline value when limbs_ is empty; otherwise 0.
  std::int64_t small_ = 0;
  // Heap form: little-endian 32-bit limbs of the magnitude; empty means
  // the value is inline. Invariants: no trailing zero limb; non-empty
  // only when the value does not fit int64; negative_ is false in the
  // inline form (the sign lives in small_).
  std::vector<std::uint32_t> limbs_;
  bool negative_ = false;
};

}  // namespace swfomc::numeric

#endif  // SWFOMC_NUMERIC_BIGINT_H_
