#include "numeric/rational.h"

#include <ostream>
#include <stdexcept>
#include <utility>

namespace swfomc::numeric {

BigRational::BigRational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  if (denominator_.IsZero()) {
    throw std::domain_error("BigRational: zero denominator");
  }
  Reduce();
}

BigRational BigRational::Fraction(std::int64_t numerator,
                                  std::int64_t denominator) {
  return BigRational(BigInt(numerator), BigInt(denominator));
}

BigRational BigRational::FromString(std::string_view text) {
  std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    return BigRational(BigInt::FromString(text));
  }
  return BigRational(BigInt::FromString(text.substr(0, slash)),
                     BigInt::FromString(text.substr(slash + 1)));
}

void BigRational::Reduce() {
  if (denominator_.IsNegative()) {
    numerator_ = -numerator_;
    denominator_ = -denominator_;
  }
  if (numerator_.IsZero()) {
    denominator_ = BigInt(1);
    return;
  }
  if (!denominator_.IsOne()) {
    BigInt g = BigInt::Gcd(numerator_, denominator_);
    if (!g.IsOne()) {
      numerator_ /= g;
      denominator_ /= g;
    }
  }
  CheckCanonical();
}

void BigRational::CheckCanonical() const {
#ifndef NDEBUG
  if (!denominator_.IsNegative() && !denominator_.IsZero() &&
      (numerator_.IsZero() ? denominator_.IsOne()
                           : BigInt::Gcd(numerator_, denominator_).IsOne())) {
    return;
  }
  throw std::logic_error("BigRational: non-canonical value " +
                         numerator_.ToString() + "/" +
                         denominator_.ToString());
#endif
}

std::string BigRational::ToString() const {
  if (denominator_.IsOne()) return numerator_.ToString();
  return numerator_.ToString() + "/" + denominator_.ToString();
}

double BigRational::ToDouble() const {
  // Scale to keep precision when both parts are huge.
  std::size_t num_bits = numerator_.BitLength();
  std::size_t den_bits = denominator_.BitLength();
  std::size_t excess =
      (num_bits > 900 || den_bits > 900)
          ? std::max(num_bits, den_bits) - 512
          : 0;
  BigInt n = numerator_.ShiftRight(excess);
  BigInt d = denominator_.ShiftRight(excess);
  if (d.IsZero()) return 0.0;
  return n.ToDouble() / d.ToDouble();
}

const BigInt& BigRational::ToInteger() const {
  if (!denominator_.IsOne()) {
    throw std::domain_error("BigRational: not an integer: " + ToString());
  }
  return numerator_;
}

BigRational BigRational::operator-() const {
  BigRational result = *this;
  result.numerator_ = -result.numerator_;
  return result;
}

BigRational BigRational::Abs() const {
  BigRational result = *this;
  result.numerator_ = result.numerator_.Abs();
  return result;
}

BigRational BigRational::Inverse() const {
  if (IsZero()) throw std::domain_error("BigRational: inverse of zero");
  return BigRational(denominator_, numerator_);
}

BigRational& BigRational::operator+=(const BigRational& other) {
  // Fast paths whose results are canonical by construction: with both
  // operands reduced, gcd(n1 + k*d1, d1) == gcd(n1, d1) == 1, so adding
  // an integer multiple of the denominator to the numerator never
  // introduces a common factor.
  if (other.denominator_.IsOne()) {
    if (denominator_.IsOne()) {
      numerator_ += other.numerator_;
    } else {
      numerator_ += other.numerator_ * denominator_;
    }
    CheckCanonical();
    return *this;
  }
  if (denominator_.IsOne()) {
    numerator_ = numerator_ * other.denominator_ + other.numerator_;
    denominator_ = other.denominator_;
    CheckCanonical();
    return *this;
  }
  numerator_ = numerator_ * other.denominator_ + other.numerator_ * denominator_;
  denominator_ *= other.denominator_;
  Reduce();
  return *this;
}

BigRational& BigRational::operator-=(const BigRational& other) {
  if (other.denominator_.IsOne()) {
    if (denominator_.IsOne()) {
      numerator_ -= other.numerator_;
    } else {
      numerator_ -= other.numerator_ * denominator_;
    }
    CheckCanonical();
    return *this;
  }
  if (denominator_.IsOne()) {
    numerator_ = numerator_ * other.denominator_ - other.numerator_;
    denominator_ = other.denominator_;
    CheckCanonical();
    return *this;
  }
  numerator_ = numerator_ * other.denominator_ - other.numerator_ * denominator_;
  denominator_ *= other.denominator_;
  Reduce();
  return *this;
}

BigRational& BigRational::operator*=(const BigRational& other) {
  if (denominator_.IsOne() && other.denominator_.IsOne()) {
    // Integer times integer stays canonical without a gcd.
    numerator_ *= other.numerator_;
    CheckCanonical();
    return *this;
  }
  // Cross-cancel before multiplying (Knuth 4.5.1): with both operands
  // reduced, dividing out gcd(n1, d2) and gcd(n2, d1) leaves a product
  // already in lowest terms, and the gcds run on the small inputs rather
  // than the large product.
  BigInt other_num = other.numerator_;
  BigInt other_den = other.denominator_;
  if (!other_den.IsOne() && !numerator_.IsZero()) {
    BigInt g = BigInt::Gcd(numerator_, other_den);
    if (!g.IsOne()) {
      numerator_ /= g;
      other_den /= g;
    }
  }
  if (!denominator_.IsOne() && !other_num.IsZero()) {
    BigInt g = BigInt::Gcd(other_num, denominator_);
    if (!g.IsOne()) {
      other_num /= g;
      denominator_ /= g;
    }
  }
  numerator_ *= other_num;
  denominator_ *= other_den;
  if (numerator_.IsZero()) denominator_ = BigInt(1);
  CheckCanonical();
  return *this;
}

BigRational& BigRational::operator/=(const BigRational& other) {
  if (other.IsZero()) throw std::domain_error("BigRational: division by zero");
  BigInt other_num = other.numerator_;  // copy: `other` may alias *this
  numerator_ *= other.denominator_;
  denominator_ *= other_num;
  Reduce();
  return *this;
}

BigRational BigRational::Pow(const BigRational& base, std::int64_t exponent) {
  if (exponent < 0) {
    return Pow(base.Inverse(), -exponent);
  }
  return BigRational(BigInt::Pow(base.numerator_,
                                 static_cast<std::uint64_t>(exponent)),
                     BigInt::Pow(base.denominator_,
                                 static_cast<std::uint64_t>(exponent)));
}

bool operator<(const BigRational& a, const BigRational& b) {
  return a.numerator_ * b.denominator_ < b.numerator_ * a.denominator_;
}

std::ostream& operator<<(std::ostream& os, const BigRational& value) {
  return os << value.ToString();
}

}  // namespace swfomc::numeric
