#include "numeric/rational.h"

#include <ostream>
#include <stdexcept>
#include <utility>

namespace swfomc::numeric {

BigRational::BigRational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  if (denominator_.IsZero()) {
    throw std::domain_error("BigRational: zero denominator");
  }
  Reduce();
}

BigRational BigRational::Fraction(std::int64_t numerator,
                                  std::int64_t denominator) {
  return BigRational(BigInt(numerator), BigInt(denominator));
}

BigRational BigRational::FromString(std::string_view text) {
  std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    return BigRational(BigInt::FromString(text));
  }
  return BigRational(BigInt::FromString(text.substr(0, slash)),
                     BigInt::FromString(text.substr(slash + 1)));
}

void BigRational::Reduce() {
  if (denominator_.IsNegative()) {
    numerator_ = -numerator_;
    denominator_ = -denominator_;
  }
  if (numerator_.IsZero()) {
    denominator_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(numerator_, denominator_);
  if (!g.IsOne()) {
    numerator_ /= g;
    denominator_ /= g;
  }
}

std::string BigRational::ToString() const {
  if (denominator_.IsOne()) return numerator_.ToString();
  return numerator_.ToString() + "/" + denominator_.ToString();
}

double BigRational::ToDouble() const {
  // Scale to keep precision when both parts are huge.
  std::size_t num_bits = numerator_.BitLength();
  std::size_t den_bits = denominator_.BitLength();
  std::size_t excess =
      (num_bits > 900 || den_bits > 900)
          ? std::max(num_bits, den_bits) - 512
          : 0;
  BigInt n = numerator_.ShiftRight(excess);
  BigInt d = denominator_.ShiftRight(excess);
  if (d.IsZero()) return 0.0;
  return n.ToDouble() / d.ToDouble();
}

const BigInt& BigRational::ToInteger() const {
  if (!denominator_.IsOne()) {
    throw std::domain_error("BigRational: not an integer: " + ToString());
  }
  return numerator_;
}

BigRational BigRational::operator-() const {
  BigRational result = *this;
  result.numerator_ = -result.numerator_;
  return result;
}

BigRational BigRational::Abs() const {
  BigRational result = *this;
  result.numerator_ = result.numerator_.Abs();
  return result;
}

BigRational BigRational::Inverse() const {
  if (IsZero()) throw std::domain_error("BigRational: inverse of zero");
  return BigRational(denominator_, numerator_);
}

BigRational& BigRational::operator+=(const BigRational& other) {
  numerator_ = numerator_ * other.denominator_ + other.numerator_ * denominator_;
  denominator_ *= other.denominator_;
  Reduce();
  return *this;
}

BigRational& BigRational::operator-=(const BigRational& other) {
  numerator_ = numerator_ * other.denominator_ - other.numerator_ * denominator_;
  denominator_ *= other.denominator_;
  Reduce();
  return *this;
}

BigRational& BigRational::operator*=(const BigRational& other) {
  numerator_ *= other.numerator_;
  denominator_ *= other.denominator_;
  Reduce();
  return *this;
}

BigRational& BigRational::operator/=(const BigRational& other) {
  if (other.IsZero()) throw std::domain_error("BigRational: division by zero");
  numerator_ *= other.denominator_;
  denominator_ *= other.numerator_;
  Reduce();
  return *this;
}

BigRational BigRational::Pow(const BigRational& base, std::int64_t exponent) {
  if (exponent < 0) {
    return Pow(base.Inverse(), -exponent);
  }
  return BigRational(BigInt::Pow(base.numerator_,
                                 static_cast<std::uint64_t>(exponent)),
                     BigInt::Pow(base.denominator_,
                                 static_cast<std::uint64_t>(exponent)));
}

bool operator<(const BigRational& a, const BigRational& b) {
  return a.numerator_ * b.denominator_ < b.numerator_ * a.denominator_;
}

std::ostream& operator<<(std::ostream& os, const BigRational& value) {
  return os << value.ToString();
}

}  // namespace swfomc::numeric
