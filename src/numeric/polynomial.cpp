#include "numeric/polynomial.h"

#include <stdexcept>
#include <utility>

#include "numeric/combinatorics.h"

namespace swfomc::numeric {

namespace {
const BigRational kZero;
}  // namespace

Polynomial::Polynomial(std::vector<BigRational> coefficients)
    : coefficients_(std::move(coefficients)) {
  Trim();
}

Polynomial Polynomial::Constant(BigRational c) {
  return Polynomial({std::move(c)});
}

Polynomial Polynomial::Monomial(BigRational c, std::size_t degree) {
  std::vector<BigRational> coefficients(degree + 1);
  coefficients[degree] = std::move(c);
  return Polynomial(std::move(coefficients));
}

const BigRational& Polynomial::Coefficient(std::size_t k) const {
  if (k >= coefficients_.size()) return kZero;
  return coefficients_[k];
}

BigRational Polynomial::Evaluate(const BigRational& x) const {
  BigRational result;
  for (std::size_t i = coefficients_.size(); i-- > 0;) {
    result = result * x + coefficients_[i];
  }
  return result;
}

Polynomial Polynomial::operator-() const {
  Polynomial result = *this;
  for (BigRational& c : result.coefficients_) c = -c;
  return result;
}

Polynomial& Polynomial::operator+=(const Polynomial& other) {
  if (other.coefficients_.size() > coefficients_.size()) {
    coefficients_.resize(other.coefficients_.size());
  }
  for (std::size_t i = 0; i < other.coefficients_.size(); ++i) {
    coefficients_[i] += other.coefficients_[i];
  }
  Trim();
  return *this;
}

Polynomial& Polynomial::operator-=(const Polynomial& other) {
  if (other.coefficients_.size() > coefficients_.size()) {
    coefficients_.resize(other.coefficients_.size());
  }
  for (std::size_t i = 0; i < other.coefficients_.size(); ++i) {
    coefficients_[i] -= other.coefficients_[i];
  }
  Trim();
  return *this;
}

Polynomial& Polynomial::operator*=(const Polynomial& other) {
  if (coefficients_.empty() || other.coefficients_.empty()) {
    coefficients_.clear();
    return *this;
  }
  std::vector<BigRational> result(
      coefficients_.size() + other.coefficients_.size() - 1);
  for (std::size_t i = 0; i < coefficients_.size(); ++i) {
    if (coefficients_[i].IsZero()) continue;
    for (std::size_t j = 0; j < other.coefficients_.size(); ++j) {
      result[i + j] += coefficients_[i] * other.coefficients_[j];
    }
  }
  coefficients_ = std::move(result);
  Trim();
  return *this;
}

Polynomial Polynomial::Interpolate(
    const std::vector<std::pair<BigRational, BigRational>>& points) {
  Polynomial result;
  for (std::size_t i = 0; i < points.size(); ++i) {
    // Basis polynomial L_i with L_i(x_i)=1, L_i(x_j)=0 for j != i.
    Polynomial basis = Polynomial::Constant(BigRational(1));
    BigRational denominator(1);
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j == i) continue;
      BigRational dx = points[i].first - points[j].first;
      if (dx.IsZero()) {
        throw std::invalid_argument(
            "Polynomial::Interpolate: duplicate x value");
      }
      basis *= Polynomial({-points[j].first, BigRational(1)});
      denominator *= dx;
    }
    basis *= Polynomial::Constant(points[i].second / denominator);
    result += basis;
  }
  return result;
}

std::string Polynomial::ToString(const std::string& variable) const {
  if (coefficients_.empty()) return "0";
  std::string out;
  for (std::size_t i = coefficients_.size(); i-- > 0;) {
    const BigRational& c = coefficients_[i];
    if (c.IsZero()) continue;
    if (!out.empty()) {
      out += c.Sign() < 0 ? " - " : " + ";
    } else if (c.Sign() < 0) {
      out += "-";
    }
    BigRational magnitude = c.Abs();
    if (i == 0) {
      out += magnitude.ToString();
    } else {
      if (!magnitude.IsOne()) out += magnitude.ToString() + "*";
      out += variable;
      if (i > 1) out += "^" + std::to_string(i);
    }
  }
  if (out.empty()) out = "0";
  return out;
}

void Polynomial::Trim() {
  while (!coefficients_.empty() && coefficients_.back().IsZero()) {
    coefficients_.pop_back();
  }
}

BigRational FiniteDifferenceAtZero(
    const std::vector<BigRational>& values_at_multiples_of_step) {
  if (values_at_multiples_of_step.empty()) {
    throw std::invalid_argument("FiniteDifferenceAtZero: no values");
  }
  std::size_t k = values_at_multiples_of_step.size() - 1;
  BigRational result;
  for (std::size_t i = 0; i <= k; ++i) {
    BigRational term(Binomial(static_cast<std::uint64_t>(k),
                              static_cast<std::uint64_t>(i)));
    term *= values_at_multiples_of_step[i];
    if ((k - i) % 2 == 1) term = -term;
    result += term;
  }
  return result;
}

}  // namespace swfomc::numeric
