#include "prop/tseitin.h"

#include <stdexcept>
#include <unordered_map>

namespace swfomc::prop {

namespace {

class Encoder {
 public:
  Encoder(CnfFormula* cnf, std::uint32_t first_aux)
      : cnf_(cnf), next_var_(first_aux) {}

  // Returns a literal equivalent to the subformula, adding defining
  // clauses for any fresh auxiliary variable.
  Literal Encode(const PropFormula& node) {
    auto it = cache_.find(node.get());
    if (it != cache_.end()) return it->second;
    Literal result = EncodeUncached(node);
    cache_.emplace(node.get(), result);
    return result;
  }

  std::uint32_t next_var() const { return next_var_; }

 private:
  Literal EncodeUncached(const PropFormula& node) {
    switch (node->kind()) {
      case PropKind::kVar:
        return Literal{node->variable(), true};
      case PropKind::kNot:
        return Encode(node->child()).Negated();
      case PropKind::kAnd:
      case PropKind::kOr: {
        std::vector<Literal> child_literals;
        child_literals.reserve(node->children().size());
        for (const PropFormula& child : node->children()) {
          child_literals.push_back(Encode(child));
        }
        Literal aux{next_var_++, true};
        if (node->kind() == PropKind::kAnd) {
          // aux <=> AND(children): (!aux | c_i) for all i, and
          // (aux | !c_1 | ... | !c_k).
          Clause big{aux};
          for (const Literal& c : child_literals) {
            cnf_->clauses.push_back({aux.Negated(), c});
            big.push_back(c.Negated());
          }
          cnf_->clauses.push_back(std::move(big));
        } else {
          // aux <=> OR(children): (aux | !c_i) for all i, and
          // (!aux | c_1 | ... | c_k).
          Clause big{aux.Negated()};
          for (const Literal& c : child_literals) {
            cnf_->clauses.push_back({aux, c.Negated()});
            big.push_back(c);
          }
          cnf_->clauses.push_back(std::move(big));
        }
        return aux;
      }
      case PropKind::kTrue:
      case PropKind::kFalse:
        // Prop constructors fold constants away below the root; only the
        // root can be constant, and the caller handles that case.
        throw std::logic_error("Tseitin: constant below root");
    }
    throw std::logic_error("Tseitin: unreachable");
  }

  CnfFormula* cnf_;
  std::uint32_t next_var_;
  std::unordered_map<const PropNode*, Literal> cache_;
};

}  // namespace

TseitinResult TseitinTransform(const PropFormula& formula,
                               std::uint32_t original_variable_count) {
  TseitinResult result;
  result.original_variable_count = original_variable_count;
  result.cnf.variable_count = original_variable_count;
  if (formula->kind() == PropKind::kTrue) {
    return result;  // empty CNF: every assignment satisfies
  }
  if (formula->kind() == PropKind::kFalse) {
    result.cnf.clauses.push_back({});  // empty clause: unsatisfiable
    return result;
  }
  Encoder encoder(&result.cnf, original_variable_count);
  Literal root = encoder.Encode(formula);
  result.cnf.clauses.push_back({root});
  result.cnf.variable_count = encoder.next_var();
  return result;
}

}  // namespace swfomc::prop
