#ifndef SWFOMC_PROP_CNF_H_
#define SWFOMC_PROP_CNF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "prop/prop_formula.h"

namespace swfomc::prop {

/// A literal: positive (variable, true) or negative (variable, false).
struct Literal {
  VarId variable;
  bool positive;

  Literal Negated() const { return Literal{variable, !positive}; }

  friend bool operator==(const Literal& a, const Literal& b) {
    return a.variable == b.variable && a.positive == b.positive;
  }
  friend bool operator<(const Literal& a, const Literal& b) {
    if (a.variable != b.variable) return a.variable < b.variable;
    return a.positive < b.positive;
  }
};

/// A clause: a disjunction of literals.
using Clause = std::vector<Literal>;

/// A CNF formula over variables [0, variable_count).
struct CnfFormula {
  std::uint32_t variable_count = 0;
  std::vector<Clause> clauses;

  /// True iff the assignment satisfies every clause.
  bool IsSatisfiedBy(const std::vector<bool>& assignment) const;

  /// DIMACS-style rendering for debugging.
  std::string ToString() const;
};

/// Sorts literals within each clause, drops duplicate literals, drops
/// tautological clauses (containing v and !v), and deduplicates clauses.
void NormalizeCnf(CnfFormula* cnf);

}  // namespace swfomc::prop

#endif  // SWFOMC_PROP_CNF_H_
