#include "prop/dimacs.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace swfomc::prop {

std::string ToDimacs(const CnfFormula& cnf) {
  std::ostringstream out;
  out << "p cnf " << cnf.variable_count << ' ' << cnf.clauses.size() << '\n';
  for (const Clause& clause : cnf.clauses) {
    for (const Literal& literal : clause) {
      if (!literal.positive) out << '-';
      out << (literal.variable + 1) << ' ';
    }
    out << "0\n";
  }
  return out.str();
}

CnfFormula FromDimacs(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  CnfFormula cnf;
  bool have_header = false;
  std::size_t declared_clauses = 0;
  Clause pending;

  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      std::istringstream header(line);
      std::string p, format;
      long long variables = -1, clauses = -1;
      header >> p >> format >> variables >> clauses;
      if (p != "p" || format != "cnf" || variables < 0 || clauses < 0 ||
          header.fail()) {
        throw std::invalid_argument("FromDimacs: malformed header: " + line);
      }
      cnf.variable_count = static_cast<std::uint32_t>(variables);
      declared_clauses = static_cast<std::size_t>(clauses);
      have_header = true;
      continue;
    }
    if (!have_header) {
      throw std::invalid_argument(
          "FromDimacs: clause before the \"p cnf\" header");
    }
    std::istringstream body(line);
    long long literal = 0;
    while (body >> literal) {
      if (literal == 0) {
        cnf.clauses.push_back(std::move(pending));
        pending.clear();
        continue;
      }
      long long magnitude = literal > 0 ? literal : -literal;
      if (magnitude > cnf.variable_count) {
        throw std::invalid_argument(
            "FromDimacs: literal " + std::to_string(literal) +
            " outside declared variable range");
      }
      pending.push_back(Literal{static_cast<VarId>(magnitude - 1),
                                literal > 0});
    }
    if (!body.eof()) {
      throw std::invalid_argument("FromDimacs: non-numeric token in: " +
                                  line);
    }
  }
  if (!have_header) {
    throw std::invalid_argument("FromDimacs: missing \"p cnf\" header");
  }
  if (!pending.empty()) {
    throw std::invalid_argument(
        "FromDimacs: trailing clause without terminating 0");
  }
  if (declared_clauses != cnf.clauses.size()) {
    throw std::invalid_argument(
        "FromDimacs: header declares " + std::to_string(declared_clauses) +
        " clauses, found " + std::to_string(cnf.clauses.size()));
  }
  return cnf;
}

}  // namespace swfomc::prop
