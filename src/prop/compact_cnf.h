#ifndef SWFOMC_PROP_COMPACT_CNF_H_
#define SWFOMC_PROP_COMPACT_CNF_H_

#include <cstdint>
#include <span>
#include <vector>

#include "prop/cnf.h"

namespace swfomc::prop {

/// Compact literal encoding: lit = 2·variable + (positive ? 1 : 0). The
/// solver-facing twin of `Literal`, chosen so a literal fits a machine
/// word, negation is one XOR, and literals index occurrence lists
/// directly.
using Lit = std::uint32_t;

constexpr Lit MakeLit(VarId variable, bool positive) {
  return (variable << 1) | static_cast<Lit>(positive ? 1 : 0);
}
constexpr VarId LitVariable(Lit lit) { return lit >> 1; }
constexpr bool LitPositive(Lit lit) { return (lit & 1u) != 0; }
constexpr Lit NegateLit(Lit lit) { return lit ^ 1u; }

/// Flat (CSR) view of a CNF formula: every clause's literals live in one
/// contiguous array addressed by offsets, plus per-literal occurrence
/// lists (literal -> clauses containing it). Built once per solve; search
/// state (assignments, satisfied/free counters) lives elsewhere, so
/// conditioning never copies or reallocates clauses.
class CompactCnf {
 public:
  CompactCnf() = default;

  /// Flattens `cnf` (ideally normalized first — see NormalizeCnf) into the
  /// compact form. Empty clauses are kept; callers that treat them as
  /// immediate UNSAT should check before building.
  static CompactCnf Build(const CnfFormula& cnf);

  std::uint32_t variable_count() const { return variable_count_; }
  std::uint32_t clause_count() const {
    return static_cast<std::uint32_t>(clause_begin_.size() - 1);
  }

  std::span<const Lit> Clause(std::uint32_t clause) const {
    return {literals_.data() + clause_begin_[clause],
            literals_.data() + clause_begin_[clause + 1]};
  }
  std::uint32_t ClauseSize(std::uint32_t clause) const {
    return clause_begin_[clause + 1] - clause_begin_[clause];
  }

  /// Ids of the clauses containing `lit` (that exact polarity).
  std::span<const std::uint32_t> Occurrences(Lit lit) const {
    return {occurrences_.data() + occurrence_begin_[lit],
            occurrences_.data() + occurrence_begin_[lit + 1]};
  }

  /// Ids of the clauses containing the variable in either polarity (the
  /// two per-literal lists are adjacent in the flat array, so this is one
  /// contiguous span — may list a clause twice only if it contained both
  /// polarities, which normalization forbids).
  std::span<const std::uint32_t> VariableOccurrences(VarId variable) const {
    Lit negative = MakeLit(variable, false);
    return {occurrences_.data() + occurrence_begin_[negative],
            occurrences_.data() + occurrence_begin_[negative + 2]};
  }

  /// True iff the variable appears (either polarity) in some clause.
  bool Mentions(VarId variable) const {
    Lit negative = MakeLit(variable, false);
    return occurrence_begin_[negative + 2] != occurrence_begin_[negative];
  }

 private:
  std::uint32_t variable_count_ = 0;
  std::vector<Lit> literals_;
  std::vector<std::uint32_t> clause_begin_{0};
  std::vector<std::uint32_t> occurrences_;
  std::vector<std::uint32_t> occurrence_begin_{0, 0};
};

}  // namespace swfomc::prop

#endif  // SWFOMC_PROP_COMPACT_CNF_H_
