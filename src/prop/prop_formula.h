#ifndef SWFOMC_PROP_PROP_FORMULA_H_
#define SWFOMC_PROP_PROP_FORMULA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace swfomc::prop {

/// Propositional variable id (0-based).
using VarId = std::uint32_t;

enum class PropKind { kTrue, kFalse, kVar, kNot, kAnd, kOr };

class PropNode;
/// Immutable shared propositional formula (the lineage F_{Φ,n} of Section 2
/// is represented in this form before CNF conversion).
using PropFormula = std::shared_ptr<const PropNode>;

class PropNode {
 public:
  PropKind kind() const { return kind_; }
  VarId variable() const { return variable_; }
  const std::vector<PropFormula>& children() const { return children_; }
  const PropFormula& child(std::size_t i = 0) const { return children_.at(i); }

  PropNode(PropKind kind, VarId variable, std::vector<PropFormula> children)
      : kind_(kind), variable_(variable), children_(std::move(children)) {}

 private:
  PropKind kind_;
  VarId variable_;
  std::vector<PropFormula> children_;
};

PropFormula PropTrue();
PropFormula PropFalse();
PropFormula PropVar(VarId variable);
/// Simplifying connectives: constants are folded, nested And/Or flattened.
PropFormula PropNot(PropFormula operand);
PropFormula PropAnd(std::vector<PropFormula> operands);
PropFormula PropOr(std::vector<PropFormula> operands);
PropFormula PropAnd(PropFormula a, PropFormula b);
PropFormula PropOr(PropFormula a, PropFormula b);

/// Largest variable id + 1 occurring in the formula (0 if none).
std::uint32_t VariableUpperBound(const PropFormula& formula);

/// Evaluates under a total assignment (indexed by VarId).
bool EvaluateProp(const PropFormula& formula,
                  const std::vector<bool>& assignment);

/// Number of nodes.
std::size_t PropSize(const PropFormula& formula);

/// Debug rendering, e.g. "(x0 & !(x1 | x2))".
std::string PropToString(const PropFormula& formula);

}  // namespace swfomc::prop

#endif  // SWFOMC_PROP_PROP_FORMULA_H_
