#include "prop/prop_formula.h"

#include <algorithm>
#include <stdexcept>

namespace swfomc::prop {

namespace {

PropFormula MakeNode(PropKind kind, VarId variable,
                     std::vector<PropFormula> children) {
  return std::make_shared<const PropNode>(kind, variable, std::move(children));
}

}  // namespace

PropFormula PropTrue() {
  static const PropFormula instance = MakeNode(PropKind::kTrue, 0, {});
  return instance;
}

PropFormula PropFalse() {
  static const PropFormula instance = MakeNode(PropKind::kFalse, 0, {});
  return instance;
}

PropFormula PropVar(VarId variable) {
  return MakeNode(PropKind::kVar, variable, {});
}

PropFormula PropNot(PropFormula operand) {
  switch (operand->kind()) {
    case PropKind::kTrue: return PropFalse();
    case PropKind::kFalse: return PropTrue();
    case PropKind::kNot: return operand->child();
    default: return MakeNode(PropKind::kNot, 0, {std::move(operand)});
  }
}

PropFormula PropAnd(std::vector<PropFormula> operands) {
  std::vector<PropFormula> flattened;
  for (PropFormula& f : operands) {
    if (f->kind() == PropKind::kTrue) continue;
    if (f->kind() == PropKind::kFalse) return PropFalse();
    if (f->kind() == PropKind::kAnd) {
      for (const PropFormula& child : f->children()) {
        flattened.push_back(child);
      }
    } else {
      flattened.push_back(std::move(f));
    }
  }
  if (flattened.empty()) return PropTrue();
  if (flattened.size() == 1) return flattened[0];
  return MakeNode(PropKind::kAnd, 0, std::move(flattened));
}

PropFormula PropOr(std::vector<PropFormula> operands) {
  std::vector<PropFormula> flattened;
  for (PropFormula& f : operands) {
    if (f->kind() == PropKind::kFalse) continue;
    if (f->kind() == PropKind::kTrue) return PropTrue();
    if (f->kind() == PropKind::kOr) {
      for (const PropFormula& child : f->children()) {
        flattened.push_back(child);
      }
    } else {
      flattened.push_back(std::move(f));
    }
  }
  if (flattened.empty()) return PropFalse();
  if (flattened.size() == 1) return flattened[0];
  return MakeNode(PropKind::kOr, 0, std::move(flattened));
}

PropFormula PropAnd(PropFormula a, PropFormula b) {
  return PropAnd(std::vector<PropFormula>{std::move(a), std::move(b)});
}

PropFormula PropOr(PropFormula a, PropFormula b) {
  return PropOr(std::vector<PropFormula>{std::move(a), std::move(b)});
}

std::uint32_t VariableUpperBound(const PropFormula& formula) {
  std::uint32_t bound = 0;
  if (formula->kind() == PropKind::kVar) {
    bound = formula->variable() + 1;
  }
  for (const PropFormula& child : formula->children()) {
    bound = std::max(bound, VariableUpperBound(child));
  }
  return bound;
}

bool EvaluateProp(const PropFormula& formula,
                  const std::vector<bool>& assignment) {
  switch (formula->kind()) {
    case PropKind::kTrue: return true;
    case PropKind::kFalse: return false;
    case PropKind::kVar: return assignment.at(formula->variable());
    case PropKind::kNot: return !EvaluateProp(formula->child(), assignment);
    case PropKind::kAnd:
      for (const PropFormula& child : formula->children()) {
        if (!EvaluateProp(child, assignment)) return false;
      }
      return true;
    case PropKind::kOr:
      for (const PropFormula& child : formula->children()) {
        if (EvaluateProp(child, assignment)) return true;
      }
      return false;
  }
  throw std::logic_error("EvaluateProp: unreachable");
}

std::size_t PropSize(const PropFormula& formula) {
  std::size_t size = 1;
  for (const PropFormula& child : formula->children()) {
    size += PropSize(child);
  }
  return size;
}

std::string PropToString(const PropFormula& formula) {
  switch (formula->kind()) {
    case PropKind::kTrue: return "true";
    case PropKind::kFalse: return "false";
    case PropKind::kVar: return "x" + std::to_string(formula->variable());
    case PropKind::kNot: return "!" + PropToString(formula->child());
    case PropKind::kAnd:
    case PropKind::kOr: {
      std::string out = "(";
      const char* op = formula->kind() == PropKind::kAnd ? " & " : " | ";
      for (std::size_t i = 0; i < formula->children().size(); ++i) {
        if (i > 0) out += op;
        out += PropToString(formula->children()[i]);
      }
      return out + ")";
    }
  }
  throw std::logic_error("PropToString: unreachable");
}

}  // namespace swfomc::prop
