#ifndef SWFOMC_PROP_DIMACS_H_
#define SWFOMC_PROP_DIMACS_H_

#include <string>

#include "prop/cnf.h"

namespace swfomc::prop {

/// DIMACS CNF interchange, so grounded lineages can be handed to (or
/// taken from) external #SAT/WMC tools. Variables are 1-based in DIMACS
/// and 0-based internally; comment lines ("c ...") are preserved on
/// neither side.

/// Renders a CNF in DIMACS format: "p cnf <vars> <clauses>" header, one
/// zero-terminated clause per line.
std::string ToDimacs(const CnfFormula& cnf);

/// Parses DIMACS text. Accepts comment lines, blank lines, and clauses
/// spanning multiple lines (terminated by 0). Throws std::invalid_argument
/// on malformed input, a missing header, or literals out of the declared
/// range.
CnfFormula FromDimacs(const std::string& text);

}  // namespace swfomc::prop

#endif  // SWFOMC_PROP_DIMACS_H_
