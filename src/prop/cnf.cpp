#include "prop/cnf.h"

#include <algorithm>
#include <set>

namespace swfomc::prop {

bool CnfFormula::IsSatisfiedBy(const std::vector<bool>& assignment) const {
  for (const Clause& clause : clauses) {
    bool satisfied = false;
    for (const Literal& literal : clause) {
      if (assignment.at(literal.variable) == literal.positive) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

std::string CnfFormula::ToString() const {
  std::string out = "p cnf " + std::to_string(variable_count) + " " +
                    std::to_string(clauses.size()) + "\n";
  for (const Clause& clause : clauses) {
    for (const Literal& literal : clause) {
      if (!literal.positive) out += "-";
      out += std::to_string(literal.variable + 1) + " ";
    }
    out += "0\n";
  }
  return out;
}

void NormalizeCnf(CnfFormula* cnf) {
  std::set<Clause> seen;
  std::vector<Clause> result;
  for (Clause& clause : cnf->clauses) {
    std::sort(clause.begin(), clause.end());
    clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
    bool tautology = false;
    for (std::size_t i = 0; i + 1 < clause.size(); ++i) {
      if (clause[i].variable == clause[i + 1].variable &&
          clause[i].positive != clause[i + 1].positive) {
        tautology = true;
        break;
      }
    }
    if (tautology) continue;
    if (seen.insert(clause).second) {
      result.push_back(std::move(clause));
    }
  }
  cnf->clauses = std::move(result);
}

}  // namespace swfomc::prop
