#include "prop/compact_cnf.h"

namespace swfomc::prop {

CompactCnf CompactCnf::Build(const CnfFormula& cnf) {
  CompactCnf compact;
  compact.variable_count_ = cnf.variable_count;

  // Spell the clause type explicitly: inside this member scope the
  // unqualified name `Clause` finds the accessor, not the alias.
  std::size_t total_literals = 0;
  for (const std::vector<Literal>& clause : cnf.clauses) {
    total_literals += clause.size();
  }

  compact.literals_.reserve(total_literals);
  compact.clause_begin_.clear();
  compact.clause_begin_.reserve(cnf.clauses.size() + 1);
  compact.clause_begin_.push_back(0);
  for (const std::vector<Literal>& clause : cnf.clauses) {
    for (const Literal& literal : clause) {
      compact.literals_.push_back(MakeLit(literal.variable, literal.positive));
    }
    compact.clause_begin_.push_back(
        static_cast<std::uint32_t>(compact.literals_.size()));
  }

  // Counting sort of clause ids into per-literal occurrence lists.
  std::size_t literal_space = 2 * static_cast<std::size_t>(cnf.variable_count);
  std::vector<std::uint32_t> counts(literal_space, 0);
  for (Lit lit : compact.literals_) ++counts[lit];
  compact.occurrence_begin_.assign(literal_space + 1, 0);
  for (std::size_t lit = 0; lit < literal_space; ++lit) {
    compact.occurrence_begin_[lit + 1] =
        compact.occurrence_begin_[lit] + counts[lit];
  }
  compact.occurrences_.resize(total_literals);
  std::vector<std::uint32_t> cursor(compact.occurrence_begin_.begin(),
                                    compact.occurrence_begin_.end() - 1);
  for (std::uint32_t clause = 0; clause < compact.clause_count(); ++clause) {
    for (Lit lit : compact.Clause(clause)) {
      compact.occurrences_[cursor[lit]++] = clause;
    }
  }
  return compact;
}

}  // namespace swfomc::prop
