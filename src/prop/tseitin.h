#ifndef SWFOMC_PROP_TSEITIN_H_
#define SWFOMC_PROP_TSEITIN_H_

#include "prop/cnf.h"
#include "prop/prop_formula.h"

namespace swfomc::prop {

/// Result of a Tseitin encoding. Auxiliary variables occupy ids
/// [original_variable_count, cnf.variable_count). Because every auxiliary
/// variable is *defined* by a biconditional, each satisfying assignment of
/// the original formula extends to exactly one satisfying assignment of the
/// CNF — so weighted model counts are preserved when auxiliary variables
/// get weights (1, 1).
struct TseitinResult {
  CnfFormula cnf;
  std::uint32_t original_variable_count = 0;
};

/// Encodes an arbitrary propositional formula into equisatisfiable,
/// count-preserving CNF. `original_variable_count` must be an upper bound
/// on variable ids in the formula (it fixes which ids are "original"; pass
/// VariableUpperBound(formula) or the known ground-tuple count).
TseitinResult TseitinTransform(const PropFormula& formula,
                               std::uint32_t original_variable_count);

}  // namespace swfomc::prop

#endif  // SWFOMC_PROP_TSEITIN_H_
