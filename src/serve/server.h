#ifndef SWFOMC_SERVE_SERVER_H_
#define SWFOMC_SERVE_SERVER_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "api/engine.h"
#include "io/json.h"
#include "nnf/circuit.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"

namespace swfomc::serve {

/// Configuration of a long-lived inference server (`swfomc serve`).
struct ServerOptions {
  /// Worker threads for fanning a request's weight vectors out over the
  /// compiled circuit (1 = sequential, 0 = one per hardware thread).
  unsigned num_threads = 1;
  /// Bounds of the compiled-circuit LRU: entry count and resident bytes
  /// (CompiledQuery::MemoryBytes plus key/bookkeeping overhead). A
  /// circuit bigger than the whole byte bound on its own is served but
  /// not cached, mirroring ComponentCache's policy.
  std::size_t max_circuits = 64;
  std::size_t max_circuit_bytes = std::size_t{256} << 20;  // 256 MiB
  /// Longest accepted request line; longer lines get a per-request error
  /// response instead of an unbounded parse.
  std::size_t max_request_bytes = std::size_t{1} << 20;  // 1 MiB
  /// Default per-request resource envelope; a request's own budget_ms /
  /// max_decisions / max_memory_bytes fields override these.
  std::optional<std::uint64_t> budget_ms;
  std::optional<std::uint64_t> max_decisions;
  std::optional<std::uint64_t> max_memory_bytes;
  /// Structured span/event log for request tracing (not owned; null =
  /// disabled). Wired from `swfomc serve --trace-out FILE`.
  obs::TraceLog* trace = nullptr;
};

/// Point-in-time counters (the `stats` command's payload). Backed by
/// the server's MetricsRegistry; Stats() materializes a snapshot.
struct ServerStats {
  std::uint64_t requests = 0;    // query requests handled (ok or error)
  std::uint64_t errors = 0;      // requests answered with status "error"
  std::uint64_t cache_hits = 0;  // queries served from a cached circuit
  std::uint64_t cache_misses = 0;
  std::uint64_t evictions = 0;
  /// Cumulative bytes accounted to evicted entries.
  std::uint64_t evicted_bytes = 0;
  std::size_t circuits = 0;       // entries resident in the LRU
  std::size_t circuit_bytes = 0;  // bytes accounted to those entries
  /// High-water mark of circuit_bytes over the server's lifetime.
  std::size_t circuit_bytes_peak = 0;
};

/// A long-lived batching WFOMC server: newline-delimited JSON requests
/// in, one-line JSON responses out. Each query names a sentence, a
/// domain size, and one or more weight vectors; the server compiles the
/// sentence once, keeps the circuit in a bounded LRU, and answers every
/// weight vector with a linear circuit pass — the compile-once-
/// evaluate-many amortization that makes warm queries orders of
/// magnitude cheaper than a cold `swfomc run`. Liftable FO² sentences
/// compile into a domain-parametric lifted circuit cached under the
/// canonical sentence alone, so requests at *different* domain sizes
/// share one entry; everything else compiles into a fixed-n d-DNNF
/// keyed on (sentence, domain size).
///
/// Request object (one per line; unknown fields are ignored):
///   {"cmd": "query",            -- default; also "stats", "quit",
///                                  "shutdown" (TCP: stop accepting)
///    "id": <any value>,         -- echoed verbatim in the response
///    "sentence": "...",         -- FO sentence (logic/parser.h syntax)
///    "domain": N,               -- domain size
///    "weights": [{"R": ["2", "1"], ...}, ...]
///                               -- zero or more weight vectors (a single
///                                  object is accepted as a batch of one);
///                                  each maps relation name -> [w, wbar],
///                                  exact rationals as strings or numbers
///    "mode": "compile",         -- default; "direct" re-counts per vector
///                                  without compiling (no cache)
///    "budget_ms": N, "max_decisions": N, "max_memory_bytes": N}
///                               -- optional per-request envelope
///
/// Responses carry the echoed "id", "status" ("ok" | "error"), and for
/// queries a "results" array aligned with the weight vectors; compile-
/// mode responses also report "kind" ("lifted" | "grounded") and
/// "cached". A request
/// whose compilation exhausts its budget falls back to one governed
/// direct count per weight vector, so results degrade to certified
/// bounds (or "aborted") per vector instead of failing the request.
/// Malformed lines yield an error *response* — the daemon never dies on
/// bad input.
///
/// HandleRequest is thread-safe: the circuit LRU and the evaluation-
/// arena pool are mutex-guarded, and compilation runs outside the cache
/// lock so a slow compile never blocks warm requests for other circuits.
class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  struct Reply {
    io::JsonValue json;
    /// The connection should close after sending `json` (cmd "quit" or
    /// "shutdown").
    bool quit = false;
  };

  /// Parses one request line and answers it. Never throws on bad input:
  /// malformed JSON, missing fields, unknown commands, oversized lines,
  /// and evaluation failures all produce a status:"error" reply.
  Reply HandleLine(std::string_view line);

  /// Answers one parsed request object (the JSONL layer sans framing).
  /// Thread-safe; never throws on bad request content.
  io::JsonValue HandleRequest(const io::JsonValue& request);

  /// Reads newline-delimited requests from `in` until EOF or a "quit" /
  /// "shutdown" command, writing one compact JSON response line per
  /// request to `out` (flushed per line — clients pipeline on it).
  /// Blank lines are ignored. Returns 0 (the daemon's clean exit).
  int ServeStream(std::istream& in, std::ostream& out);

  /// TCP mode: listens on `port` (0 = ephemeral), reports the bound port
  /// through `on_listening`, then serves connections sequentially, each
  /// with ServeStream semantics. Returns 0 after a "shutdown" command;
  /// throws std::runtime_error when the socket cannot be opened.
  int ServeTcp(std::uint16_t port,
               const std::function<void(std::uint16_t)>& on_listening = {});

  ServerStats Stats() const;
  const ServerOptions& options() const { return options_; }

  /// The server's live metrics registry — the source behind the `stats`
  /// and `metrics` protocol commands. Exposed so embedders (tests, a
  /// future scrape endpoint) can read instruments directly.
  const obs::MetricsRegistry& metrics() const { return registry_; }

 private:
  struct CacheEntry {
    std::string key;
    std::shared_ptr<const api::CompiledQuery> query;
    std::size_t bytes = 0;
  };

  /// One parsed weight vector: the reweights, or the error that made the
  /// vector unusable (reported per-result, not per-request).
  struct WeightVector {
    std::vector<api::RelationWeights> reweights;
    std::string error;
  };

  io::JsonValue HandleQuery(const io::JsonValue& request);
  io::JsonValue HandleStats(const io::JsonValue* id) const;
  io::JsonValue HandleMetrics(const io::JsonValue* id) const;

  /// LRU probe; moves a hit to the front. Returns nullptr on a miss.
  std::shared_ptr<const api::CompiledQuery> CacheLookup(
      const std::string& key);
  /// Inserts (or refreshes) a compiled circuit and evicts past either
  /// bound. Oversized circuits are dropped, not inserted.
  void CacheInsert(const std::string& key,
                   std::shared_ptr<const api::CompiledQuery> query);

  /// Arena pool: one nnf::Circuit::EvalArena per concurrently evaluating
  /// thread, reused across requests so steady-state serving does not
  /// allocate scratch.
  std::unique_ptr<nnf::Circuit::EvalArena> AcquireArena();
  void ReleaseArena(std::unique_ptr<nnf::Circuit::EvalArena> arena);

  ServerOptions options_;

  /// All server counters/gauges/histograms live here (ServerStats is a
  /// snapshot of these instruments plus the cache levels); declared
  /// before pool_ so the pool's instruments outlive it.
  mutable obs::MetricsRegistry registry_;
  /// Instrument pointers resolved once in the constructor.
  struct Instruments {
    obs::Counter* requests = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* evicted_bytes = nullptr;
    obs::Gauge* circuits = nullptr;
    obs::Gauge* circuit_bytes = nullptr;
    obs::Gauge* circuit_bytes_peak = nullptr;
    obs::Gauge* inflight = nullptr;
    obs::Histogram* warm_usec = nullptr;
    obs::Histogram* cold_usec = nullptr;
    obs::Histogram* batch_size = nullptr;
  };
  Instruments m_;

  std::unique_ptr<runtime::ThreadPool> pool_;  // set when num_threads > 1

  mutable std::mutex cache_mutex_;
  std::list<CacheEntry> lru_;  // most recently used at the front
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> index_;
  std::size_t cache_bytes_ = 0;
  std::size_t cache_bytes_peak_ = 0;  // guarded by cache_mutex_

  std::mutex arena_mutex_;
  std::vector<std::unique_ptr<nnf::Circuit::EvalArena>> free_arenas_;

  bool shutdown_requested_ = false;  // set by cmd "shutdown" (TCP loop)
};

}  // namespace swfomc::serve

#endif  // SWFOMC_SERVE_SERVER_H_
