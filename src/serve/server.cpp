#include "serve/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <streambuf>
#include <utility>

#include "io/diagnostics.h"
#include "io/model_format.h"
#include "logic/printer.h"
#include "runtime/budget.h"

namespace swfomc::serve {

namespace {

using io::JsonValue;
using numeric::BigRational;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Per-entry bookkeeping beyond CompiledQuery::MemoryBytes: the key
/// string, the list node, and the index slot (same estimation style as
/// ComponentCache::kEntryOverheadBytes).
constexpr std::size_t kCacheEntryOverheadBytes =
    sizeof(std::string) + sizeof(void*) * 4 + sizeof(std::size_t) * 2;

/// JSON numbers arrive as verbatim decimal strings; budgets and domain
/// sizes must be plain non-negative integers.
std::optional<std::uint64_t> Uint64FromJson(const JsonValue& value) {
  if (value.kind != JsonValue::Kind::kNumber &&
      value.kind != JsonValue::Kind::kString) {
    return std::nullopt;
  }
  const std::string& text = value.string;
  if (text.empty()) return std::nullopt;
  std::uint64_t out = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (out > (~std::uint64_t{0} - digit) / 10) return std::nullopt;
    out = out * 10 + digit;
  }
  return out;
}

/// Weights accept JSON numbers ("2") and rational strings ("1/2") —
/// exact values only, the same grammar as .model weight lines.
BigRational RationalFromJson(const JsonValue& value) {
  if (value.kind != JsonValue::Kind::kNumber &&
      value.kind != JsonValue::Kind::kString) {
    throw std::invalid_argument(
        "weight must be a number or a rational string like \"1/2\"");
  }
  return BigRational::FromString(value.string);
}

const JsonValue* FindMember(const JsonValue& object, const std::string& key) {
  if (object.kind != JsonValue::Kind::kObject) return nullptr;
  for (const auto& [name, value] : object.object) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue MakeError(const JsonValue* id, const std::string& message) {
  JsonValue json = JsonValue::MakeObject();
  if (id != nullptr) json.Add("id", *id);
  json.Add("status", JsonValue::MakeString("error"));
  json.Add("error", JsonValue::MakeString(message));
  return json;
}

/// The per-request resource envelope (request fields override the server
/// defaults). Arms `budget` and returns true when any limit applies.
struct RequestBudget {
  std::optional<std::uint64_t> budget_ms;
  std::optional<std::uint64_t> max_decisions;
  std::optional<std::uint64_t> max_memory_bytes;

  bool governed() const {
    return budget_ms.has_value() || max_decisions.has_value() ||
           max_memory_bytes.has_value();
  }
  bool Arm(runtime::Budget* budget) const {
    if (!governed()) return false;
    if (budget_ms.has_value()) budget->SetWallClockMs(*budget_ms);
    if (max_decisions.has_value()) budget->SetMaxDecisions(*max_decisions);
    if (max_memory_bytes.has_value()) {
      budget->SetMaxMemoryBytes(*max_memory_bytes);
    }
    return true;
  }
};

void AddOutcomeFields(JsonValue* json, api::Outcome outcome,
                      runtime::StopReason stop_reason) {
  json->Add("outcome", JsonValue::MakeString(api::ToString(outcome)));
  if (stop_reason != runtime::StopReason::kNone) {
    json->Add("stop_reason",
              JsonValue::MakeString(runtime::ToString(stop_reason)));
  }
}

/// One governed direct count (the compile-aborted fallback and the
/// "direct" mode): a fresh engine and a fresh budget per weight vector,
/// so every vector gets the full envelope and certified bounds where the
/// search cannot finish.
JsonValue DirectResult(const logic::Vocabulary& base_vocabulary,
                       const logic::Formula& sentence,
                       std::uint64_t domain_size,
                       const std::vector<api::RelationWeights>& reweights,
                       api::Method method, const RequestBudget& envelope,
                       unsigned num_threads, obs::MetricsRegistry* metrics,
                       obs::TraceLog* trace) {
  logic::Vocabulary vocabulary = base_vocabulary;
  for (const api::RelationWeights& weights : reweights) {
    // Parsing validated the names; Find cannot miss here.
    vocabulary.SetWeights(*vocabulary.Find(weights.relation),
                          weights.positive, weights.negative);
  }
  api::Engine::Options engine_options;
  engine_options.num_threads = num_threads;
  engine_options.metrics = metrics;
  engine_options.trace = trace;
  api::Engine engine(std::move(vocabulary), engine_options);
  // Per-call governance: the request's budget rides on QueryOptions, so
  // even a shared engine would stay untouched.
  runtime::Budget budget;
  api::QueryOptions query_options;
  if (envelope.governed()) {
    envelope.Arm(&budget);
    query_options.budget = &budget;
  }
  api::Engine::Result result =
      engine.WFOMC(sentence, domain_size, method, query_options);
  JsonValue entry = JsonValue::MakeObject();
  switch (result.outcome) {
    case api::Outcome::kExact:
      entry.Add("wfomc", JsonValue::MakeString(result.value.ToString()));
      break;
    case api::Outcome::kBounds:
      entry.Add("lower",
                JsonValue::MakeString(result.bounds->lower.ToString()));
      entry.Add("upper",
                JsonValue::MakeString(result.bounds->upper.ToString()));
      break;
    case api::Outcome::kAborted:
      break;
  }
  if (result.outcome != api::Outcome::kExact) {
    AddOutcomeFields(&entry, result.outcome, result.stop_reason);
  }
  return entry;
}

/// Blocking-I/O streambuf over a connected socket, enough for the
/// line-oriented protocol: buffered reads, writes flushed per response.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setg(in_, in_, in_);
    setp(out_, out_ + sizeof(out_));
  }

 protected:
  int_type underflow() override {
    ssize_t n = ::read(fd_, in_, sizeof(in_));
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(in_[0]);
  }

  int_type overflow(int_type ch) override {
    if (!Flush()) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return Flush() ? 0 : -1; }

 private:
  bool Flush() {
    const char* data = pbase();
    std::size_t pending = static_cast<std::size_t>(pptr() - pbase());
    while (pending > 0) {
      ssize_t n = ::write(fd_, data, pending);
      if (n <= 0) return false;
      data += n;
      pending -= static_cast<std::size_t>(n);
    }
    setp(out_, out_ + sizeof(out_));
    return true;
  }

  int fd_;
  char in_[4096];
  char out_[4096];
};

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  m_.requests = registry_.GetCounter("swfomc_serve_requests_total",
                                     "Requests handled (ok or error)");
  m_.errors = registry_.GetCounter("swfomc_serve_errors_total",
                                   "Requests answered with status error");
  m_.cache_hits = registry_.GetCounter(
      "swfomc_serve_cache_hits_total",
      "Queries answered from a cached compiled circuit");
  m_.cache_misses = registry_.GetCounter("swfomc_serve_cache_misses_total",
                                         "Circuit-cache lookup misses");
  m_.evictions = registry_.GetCounter("swfomc_serve_cache_evictions_total",
                                      "Circuits evicted from the LRU");
  m_.evicted_bytes =
      registry_.GetCounter("swfomc_serve_cache_evicted_bytes_total",
                           "Bytes accounted to evicted circuits");
  m_.circuits = registry_.GetGauge("swfomc_serve_cache_circuits",
                                   "Circuits resident in the LRU");
  m_.circuit_bytes = registry_.GetGauge("swfomc_serve_cache_bytes",
                                        "Bytes resident in the circuit LRU");
  m_.circuit_bytes_peak =
      registry_.GetGauge("swfomc_serve_cache_bytes_peak",
                         "High-water mark of resident circuit bytes");
  m_.inflight = registry_.GetGauge("swfomc_serve_inflight",
                                   "Query requests currently executing");
  m_.warm_usec = registry_.GetHistogram(
      "swfomc_serve_request_usec_warm",
      "Microseconds per query served from a cached circuit");
  m_.cold_usec = registry_.GetHistogram(
      "swfomc_serve_request_usec_cold",
      "Microseconds per query that compiled or counted directly");
  m_.batch_size = registry_.GetHistogram(
      "swfomc_serve_batch_size", "Weight vectors per query request");

  unsigned threads = runtime::ThreadPool::ResolveThreadCount(
      options_.num_threads == 0 ? 0 : options_.num_threads);
  options_.num_threads = threads;
  if (threads > 1) {
    pool_ = std::make_unique<runtime::ThreadPool>(
        threads, runtime::ThreadPool::Metrics::FromRegistry(&registry_));
  }
}

Server::~Server() = default;

Server::Reply Server::HandleLine(std::string_view line) {
  Reply reply;
  if (line.size() > options_.max_request_bytes) {
    m_.requests->Add();
    m_.errors->Add();
    reply.json = MakeError(nullptr,
                           "request exceeds " +
                               std::to_string(options_.max_request_bytes) +
                               " bytes");
    return reply;
  }
  JsonValue request;
  try {
    request = io::ParseJson(line, "<request>");
  } catch (const io::ParseError& error) {
    m_.requests->Add();
    m_.errors->Add();
    reply.json = MakeError(nullptr, error.what());
    return reply;
  }
  const JsonValue* cmd = FindMember(request, "cmd");
  if (cmd != nullptr && cmd->kind == JsonValue::Kind::kString &&
      (cmd->string == "quit" || cmd->string == "shutdown")) {
    if (cmd->string == "shutdown") shutdown_requested_ = true;
    reply.json = JsonValue::MakeObject();
    if (const JsonValue* id = FindMember(request, "id")) {
      reply.json.Add("id", *id);
    }
    reply.json.Add("status", JsonValue::MakeString("ok"));
    reply.json.Add("bye", JsonValue::MakeBool(true));
    reply.quit = true;
    return reply;
  }
  reply.json = HandleRequest(request);
  return reply;
}

io::JsonValue Server::HandleRequest(const io::JsonValue& request) {
  const JsonValue* id = FindMember(request, "id");
  auto finish = [&](JsonValue json, bool is_error) {
    m_.requests->Add();
    if (is_error) m_.errors->Add();
    return json;
  };
  if (request.kind != JsonValue::Kind::kObject) {
    return finish(MakeError(nullptr, "request must be a JSON object"), true);
  }
  std::string cmd = "query";
  if (const JsonValue* member = FindMember(request, "cmd")) {
    if (member->kind != JsonValue::Kind::kString) {
      return finish(MakeError(id, "\"cmd\" must be a string"), true);
    }
    cmd = member->string;
  }
  if (cmd == "stats") return finish(HandleStats(id), false);
  if (cmd == "metrics") return finish(HandleMetrics(id), false);
  if (cmd == "quit" || cmd == "shutdown") {
    JsonValue json = JsonValue::MakeObject();
    if (id != nullptr) json.Add("id", *id);
    json.Add("status", JsonValue::MakeString("ok"));
    json.Add("bye", JsonValue::MakeBool(true));
    return finish(std::move(json), false);
  }
  if (cmd != "query") {
    return finish(MakeError(id, "unknown command '" + cmd + "'"), true);
  }
  struct InflightGuard {
    obs::Gauge* gauge;
    InflightGuard(obs::Gauge* g) : gauge(g) { gauge->Add(1); }
    ~InflightGuard() { gauge->Sub(1); }
  } inflight{m_.inflight};
  JsonValue response = HandleQuery(request);
  bool is_error = false;
  if (const JsonValue* status = FindMember(response, "status")) {
    is_error = status->string == "error";
  }
  return finish(std::move(response), is_error);
}

io::JsonValue Server::HandleQuery(const io::JsonValue& request) {
  auto start = std::chrono::steady_clock::now();
  const JsonValue* id = FindMember(request, "id");

  // Latency lands in the warm histogram only when the whole request was
  // answered from a cached circuit; compiles, direct counts, and error
  // replies are all "cold". Recorded on every exit path.
  struct LatencyGuard {
    Server* self;
    std::chrono::steady_clock::time_point start;
    bool warm = false;
    ~LatencyGuard() {
      auto usec = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      (warm ? self->m_.warm_usec : self->m_.cold_usec)
          ->Record(static_cast<std::uint64_t>(usec));
    }
  } latency{this, start};

  obs::TraceLog::Span span;
  if (options_.trace != nullptr) {
    std::uint64_t query_id = options_.trace->NextQueryId();
    if (options_.trace->SampledQuery(query_id)) {
      span = options_.trace->BeginSpan("serve_request");
      span.Num("query", query_id);
    }
  }

  const JsonValue* sentence_member = FindMember(request, "sentence");
  if (sentence_member == nullptr ||
      sentence_member->kind != JsonValue::Kind::kString) {
    return MakeError(id, "missing required string field \"sentence\"");
  }
  const JsonValue* domain_member = FindMember(request, "domain");
  if (domain_member == nullptr) {
    return MakeError(id, "missing required field \"domain\"");
  }
  std::optional<std::uint64_t> domain = Uint64FromJson(*domain_member);
  if (!domain.has_value()) {
    return MakeError(id, "\"domain\" must be a non-negative integer");
  }

  RequestBudget envelope{options_.budget_ms, options_.max_decisions,
                         options_.max_memory_bytes};
  struct BudgetField {
    const char* name;
    std::optional<std::uint64_t>* slot;
  };
  const BudgetField budget_fields[] = {
      {"budget_ms", &envelope.budget_ms},
      {"max_decisions", &envelope.max_decisions},
      {"max_memory_bytes", &envelope.max_memory_bytes},
  };
  for (const BudgetField& field : budget_fields) {
    if (const JsonValue* member = FindMember(request, field.name)) {
      std::optional<std::uint64_t> value = Uint64FromJson(*member);
      if (!value.has_value()) {
        return MakeError(id, std::string("\"") + field.name +
                                 "\" must be a non-negative integer");
      }
      *field.slot = value;
    }
  }

  std::string mode = "compile";
  if (const JsonValue* member = FindMember(request, "mode")) {
    if (member->kind != JsonValue::Kind::kString ||
        (member->string != "compile" && member->string != "direct")) {
      return MakeError(id, "\"mode\" must be \"compile\" or \"direct\"");
    }
    mode = member->string;
  }
  api::Method method = api::Method::kAuto;
  if (const JsonValue* member = FindMember(request, "method")) {
    std::optional<api::Method> parsed;
    if (member->kind == JsonValue::Kind::kString) {
      parsed = io::ParseMethodName(member->string);
    }
    if (!parsed.has_value()) {
      return MakeError(id, "unknown method");
    }
    if (mode == "compile" && *parsed != api::Method::kAuto) {
      return MakeError(
          id, "\"method\" only applies to mode \"direct\" (compilation "
              "always traces the grounded search)");
    }
    method = *parsed;
  }

  // Parse the sentence into a fresh vocabulary (every relation defaults
  // to weights (1, 1); the request's weight vectors reweight from there).
  api::Engine parser{logic::Vocabulary{}};
  logic::Formula sentence;
  try {
    sentence = parser.Parse(sentence_member->string);
  } catch (const std::exception& error) {
    return MakeError(id, std::string("bad sentence: ") + error.what());
  }
  const logic::Vocabulary& vocabulary = parser.vocabulary();
  std::string canonical = logic::ToString(sentence, vocabulary);

  // Weight vectors: absent -> one all-default vector; a single object is
  // a batch of one. Per-vector problems become per-result errors.
  std::vector<WeightVector> vectors;
  const JsonValue* weights_member = FindMember(request, "weights");
  if (weights_member == nullptr) {
    vectors.emplace_back();
  } else if (weights_member->kind == JsonValue::Kind::kObject) {
    vectors.resize(1);
  } else if (weights_member->kind == JsonValue::Kind::kArray) {
    vectors.resize(weights_member->array.size());
  } else {
    return MakeError(id,
                     "\"weights\" must be an object or an array of objects");
  }
  auto parse_vector = [&](const JsonValue& object, WeightVector* out) {
    if (object.kind != JsonValue::Kind::kObject) {
      out->error = "weight vector must be an object";
      return;
    }
    for (const auto& [name, value] : object.object) {
      if (!vocabulary.Find(name).has_value()) {
        out->error = "unknown relation '" + name + "'";
        return;
      }
      if (value.kind != JsonValue::Kind::kArray || value.array.size() != 2) {
        out->error = "weights for '" + name + "' must be [w, wbar]";
        return;
      }
      api::RelationWeights reweight;
      reweight.relation = name;
      try {
        reweight.positive = RationalFromJson(value.array[0]);
        reweight.negative = RationalFromJson(value.array[1]);
      } catch (const std::exception& error) {
        out->error = "bad weight for '" + name + "': " + error.what();
        return;
      }
      out->reweights.push_back(std::move(reweight));
    }
  };
  if (weights_member != nullptr) {
    if (weights_member->kind == JsonValue::Kind::kObject) {
      parse_vector(*weights_member, &vectors[0]);
    } else {
      for (std::size_t i = 0; i < vectors.size(); ++i) {
        parse_vector(weights_member->array[i], &vectors[i]);
      }
    }
  }
  if (vectors.empty()) {
    return MakeError(id, "\"weights\" must contain at least one vector");
  }
  m_.batch_size->Record(vectors.size());
  span.Str("mode", mode).Num("n", *domain);
  span.Num("batch", static_cast<std::uint64_t>(vectors.size()));

  JsonValue response = JsonValue::MakeObject();
  if (id != nullptr) response.Add("id", *id);
  response.Add("status", JsonValue::MakeString("ok"));
  response.Add("sentence", JsonValue::MakeString(canonical));
  response.Add("n", JsonValue::MakeNumber(*domain));
  response.Add("mode", JsonValue::MakeString(mode));

  std::vector<JsonValue> results(vectors.size());
  auto direct_all = [&]() {
    for (std::size_t i = 0; i < vectors.size(); ++i) {
      if (!vectors[i].error.empty()) {
        results[i] = MakeError(nullptr, vectors[i].error);
        continue;
      }
      try {
        results[i] =
            DirectResult(vocabulary, sentence, *domain, vectors[i].reweights,
                         method, envelope, options_.num_threads, &registry_,
                         options_.trace);
      } catch (const std::exception& error) {
        results[i] = MakeError(nullptr, error.what());
      }
    }
  };

  if (mode == "direct") {
    direct_all();
  } else {
    // Liftable sentences cache under the canonical sentence alone: one
    // lifted circuit answers every domain size, so requests at different
    // n share the entry. Grounded circuits are fixed-n and key on
    // (sentence, n). A lifted circuit is only valid for n >= 1; a
    // domain-0 request compiles grounded.
    api::Engine router{logic::Vocabulary(vocabulary)};
    bool lifted = *domain >= 1 && router.CanCompileLifted(sentence);
    std::string key = canonical;
    if (!lifted) {
      key.push_back('\x1f');
      key += std::to_string(*domain);
    }

    std::shared_ptr<const api::CompiledQuery> query = CacheLookup(key);
    bool cached = query != nullptr;
    latency.warm = cached;
    span.Bool("cached", cached);
    if (!cached) {
      api::Engine::Options compiler_options;
      compiler_options.metrics = &registry_;
      compiler_options.trace = options_.trace;
      api::Engine compiler{logic::Vocabulary(vocabulary), compiler_options};
      runtime::Budget budget;
      api::CompileOptions compile_options;
      compile_options.domain_size = *domain;
      compile_options.method =
          lifted ? api::Method::kLiftedFO2 : api::Method::kGrounded;
      if (envelope.governed()) {
        envelope.Arm(&budget);
        compile_options.budget = &budget;
      }
      auto compile_start = std::chrono::steady_clock::now();
      api::CompileResult compiled;
      try {
        compiled = compiler.Compile(sentence, compile_options);
      } catch (const std::exception& error) {
        return MakeError(id, std::string("compile failed: ") + error.what());
      }
      response.Add("compile_seconds",
                   JsonValue::MakeNumber(SecondsSince(compile_start)));
      if (compiled.outcome != api::Outcome::kExact) {
        // The budget stopped the trace; the partial circuit is unusable.
        // Answer each vector with a governed direct count instead — the
        // request degrades to certified bounds, it does not fail.
        response.Add("compile_outcome",
                     JsonValue::MakeString(api::ToString(compiled.outcome)));
        if (compiled.stop_reason != runtime::StopReason::kNone) {
          response.Add(
              "stop_reason",
              JsonValue::MakeString(runtime::ToString(compiled.stop_reason)));
        }
        response.Add("cached", JsonValue::MakeBool(false));
        direct_all();
        JsonValue results_json = JsonValue::MakeArray();
        for (JsonValue& entry : results) {
          results_json.array.push_back(std::move(entry));
        }
        response.Add("results", std::move(results_json));
        response.Add("elapsed_seconds",
                     JsonValue::MakeNumber(SecondsSince(start)));
        return response;
      }
      query = std::make_shared<const api::CompiledQuery>(
          std::move(*compiled.compiled));
      CacheInsert(key, query);
    }
    response.Add("cached", JsonValue::MakeBool(cached));
    response.Add("kind",
                 JsonValue::MakeString(api::ToString(query->kind())));

    auto evaluate_one = [&](std::size_t i) {
      if (!vectors[i].error.empty()) {
        results[i] = MakeError(nullptr, vectors[i].error);
        return;
      }
      std::unique_ptr<nnf::Circuit::EvalArena> arena = AcquireArena();
      try {
        BigRational value =
            query->Evaluate(*domain, vectors[i].reweights, arena.get());
        JsonValue entry = JsonValue::MakeObject();
        entry.Add("wfomc", JsonValue::MakeString(value.ToString()));
        results[i] = std::move(entry);
      } catch (const std::exception& error) {
        results[i] = MakeError(nullptr, error.what());
      }
      ReleaseArena(std::move(arena));
    };
    if (pool_ != nullptr && vectors.size() > 1) {
      runtime::TaskGroup group(pool_.get());
      for (std::size_t i = 0; i < vectors.size(); ++i) {
        group.Submit([&evaluate_one, i] { evaluate_one(i); });
      }
      group.Wait();
    } else {
      for (std::size_t i = 0; i < vectors.size(); ++i) evaluate_one(i);
    }
  }

  JsonValue results_json = JsonValue::MakeArray();
  for (JsonValue& entry : results) {
    results_json.array.push_back(std::move(entry));
  }
  response.Add("results", std::move(results_json));
  response.Add("elapsed_seconds", JsonValue::MakeNumber(SecondsSince(start)));
  return response;
}

io::JsonValue Server::HandleStats(const io::JsonValue* id) const {
  ServerStats stats = Stats();
  JsonValue json = JsonValue::MakeObject();
  if (id != nullptr) json.Add("id", *id);
  json.Add("status", JsonValue::MakeString("ok"));
  json.Add("requests", JsonValue::MakeNumber(stats.requests));
  json.Add("errors", JsonValue::MakeNumber(stats.errors));
  json.Add("cache_hits", JsonValue::MakeNumber(stats.cache_hits));
  json.Add("cache_misses", JsonValue::MakeNumber(stats.cache_misses));
  json.Add("evictions", JsonValue::MakeNumber(stats.evictions));
  json.Add("evicted_bytes", JsonValue::MakeNumber(stats.evicted_bytes));
  json.Add("circuits", JsonValue::MakeNumber(
                           static_cast<std::uint64_t>(stats.circuits)));
  json.Add("circuit_bytes", JsonValue::MakeNumber(static_cast<std::uint64_t>(
                                stats.circuit_bytes)));
  json.Add("circuit_bytes_peak",
           JsonValue::MakeNumber(
               static_cast<std::uint64_t>(stats.circuit_bytes_peak)));
  return json;
}

io::JsonValue Server::HandleMetrics(const io::JsonValue* id) const {
  // Refresh the cache-level gauges so a scrape on an idle server still
  // reflects the live LRU (they are otherwise updated per cache
  // operation).
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    m_.circuits->Set(static_cast<std::int64_t>(lru_.size()));
    m_.circuit_bytes->Set(static_cast<std::int64_t>(cache_bytes_));
    m_.circuit_bytes_peak->Set(static_cast<std::int64_t>(cache_bytes_peak_));
  }
  JsonValue json = JsonValue::MakeObject();
  if (id != nullptr) json.Add("id", *id);
  json.Add("status", JsonValue::MakeString("ok"));
  json.Add("exposition", JsonValue::MakeString(registry_.TextExposition()));
  return json;
}

ServerStats Server::Stats() const {
  ServerStats stats;
  stats.requests = m_.requests->Value();
  stats.errors = m_.errors->Value();
  stats.cache_hits = m_.cache_hits->Value();
  stats.cache_misses = m_.cache_misses->Value();
  stats.evictions = m_.evictions->Value();
  stats.evicted_bytes = m_.evicted_bytes->Value();
  std::lock_guard<std::mutex> lock(cache_mutex_);
  stats.circuits = lru_.size();
  stats.circuit_bytes = cache_bytes_;
  stats.circuit_bytes_peak = cache_bytes_peak_;
  return stats;
}

std::shared_ptr<const api::CompiledQuery> Server::CacheLookup(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    m_.cache_misses->Add();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  m_.cache_hits->Add();
  return it->second->query;
}

void Server::CacheInsert(const std::string& key,
                         std::shared_ptr<const api::CompiledQuery> query) {
  std::size_t bytes =
      query->MemoryBytes() + key.capacity() + kCacheEntryOverheadBytes;
  if (options_.max_circuits == 0 || bytes > options_.max_circuit_bytes) {
    // Serving an oversized circuit is fine; pinning the whole cache to it
    // is not (ComponentCache applies the same rule to giant entries).
    return;
  }
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // A concurrent request compiled the same key first; keep the fresher
    // entry and refresh its LRU position.
    cache_bytes_ -= it->second->bytes;
    it->second->query = std::move(query);
    it->second->bytes = bytes;
    cache_bytes_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(CacheEntry{key, std::move(query), bytes});
    index_[key] = lru_.begin();
    cache_bytes_ += bytes;
  }
  if (cache_bytes_ > cache_bytes_peak_) cache_bytes_peak_ = cache_bytes_;
  while (lru_.size() > options_.max_circuits ||
         (lru_.size() > 1 && cache_bytes_ > options_.max_circuit_bytes)) {
    CacheEntry& victim = lru_.back();
    std::size_t victim_bytes = victim.bytes;
    cache_bytes_ -= victim_bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    m_.evictions->Add();
    m_.evicted_bytes->Add(victim_bytes);
  }
  m_.circuits->Set(static_cast<std::int64_t>(lru_.size()));
  m_.circuit_bytes->Set(static_cast<std::int64_t>(cache_bytes_));
  m_.circuit_bytes_peak->Set(static_cast<std::int64_t>(cache_bytes_peak_));
}

std::unique_ptr<nnf::Circuit::EvalArena> Server::AcquireArena() {
  std::lock_guard<std::mutex> lock(arena_mutex_);
  if (free_arenas_.empty()) {
    return std::make_unique<nnf::Circuit::EvalArena>();
  }
  std::unique_ptr<nnf::Circuit::EvalArena> arena =
      std::move(free_arenas_.back());
  free_arenas_.pop_back();
  return arena;
}

void Server::ReleaseArena(std::unique_ptr<nnf::Circuit::EvalArena> arena) {
  std::lock_guard<std::mutex> lock(arena_mutex_);
  free_arenas_.push_back(std::move(arena));
}

int Server::ServeStream(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    Reply reply = HandleLine(line);
    out << reply.json.Dump(-1) << "\n" << std::flush;
    if (reply.quit) break;
  }
  return 0;
}

int Server::ServeTcp(std::uint16_t port,
                     const std::function<void(std::uint16_t)>& on_listening) {
  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) throw std::runtime_error("serve: cannot create socket");
  int reuse = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local clients only
  address.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listener, 8) != 0) {
    ::close(listener);
    throw std::runtime_error("serve: cannot listen on port " +
                             std::to_string(port));
  }
  socklen_t address_size = sizeof(address);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&address),
                &address_size);
  if (on_listening) on_listening(ntohs(address.sin_port));

  while (!shutdown_requested_) {
    int connection = ::accept(listener, nullptr, nullptr);
    if (connection < 0) break;
    FdStreamBuf buffer(connection);
    std::istream in(&buffer);
    std::ostream out(&buffer);
    ServeStream(in, out);
    ::close(connection);
  }
  ::close(listener);
  return 0;
}

}  // namespace swfomc::serve
