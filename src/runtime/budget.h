#ifndef SWFOMC_RUNTIME_BUDGET_H_
#define SWFOMC_RUNTIME_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace swfomc::runtime {

/// Why a governed computation stopped early. kNone means it ran to
/// completion; every other value names the resource (or request) that cut
/// it short. The first reason to fire wins — a computation reports exactly
/// one reason even when several limits trip near-simultaneously.
enum class StopReason : std::uint8_t {
  kNone = 0,
  kCancelled,  // a CancelToken was triggered (or a kCancel fault fired)
  kDeadline,   // the wall-clock deadline passed
  kDecisions,  // the decision-count cap was reached
  kMemory,     // the memory ceiling was hit (or a kMemory fault fired)
};

const char* ToString(StopReason reason);

/// Cooperative cancellation flag, shared between the requesting thread
/// and any number of workers. Requesting cancellation is a relaxed store;
/// workers poll IsCancelled() at their own cadence (the DPLL counter
/// checks once per decision), so cancellation latency is bounded by the
/// poller's check interval plus its unwind cost, never by a kill.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void RequestCancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }
  bool IsCancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Re-arms the token for another governed run.
  void Reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Resource envelope for one governed computation: a wall-clock deadline,
/// a decision-count cap, and a byte-accounted memory ceiling. All three
/// default to unlimited; set only what should bind. The usage counters are
/// atomic so one Budget can be shared by every worker of a parallel
/// search (and by every point of a sweep — the envelope covers the whole
/// query, not each subproblem).
///
/// The budget does not enforce anything by itself: governed code charges
/// usage through ChargeDecisions/TryChargeBytes and polls CheckDeadline,
/// then winds down cooperatively when a limit reports exhausted. Decision
/// caps are exact (every decision is charged before it is made); deadline
/// checks are amortized by the caller (the counter reads the clock every
/// 64 decisions), so deadline overshoot is bounded by that interval's
/// work.
class Budget {
 public:
  static constexpr std::uint64_t kUnlimited = ~std::uint64_t{0};

  Budget() = default;
  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  /// Deadline `ms` milliseconds from now (monotonic clock).
  void SetWallClockMs(std::uint64_t ms) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(ms);
    has_deadline_ = true;
  }
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void SetMaxDecisions(std::uint64_t cap) { max_decisions_ = cap; }
  void SetMaxMemoryBytes(std::uint64_t cap) { max_memory_bytes_ = cap; }

  bool has_deadline() const { return has_deadline_; }
  std::uint64_t max_decisions() const { return max_decisions_; }
  std::uint64_t max_memory_bytes() const { return max_memory_bytes_; }

  /// Charges `n` decisions and reports kDecisions once the cap is
  /// exceeded (charge-then-check: the caller should charge each decision
  /// *before* performing it, so a cap of K permits exactly K decisions).
  StopReason ChargeDecisions(std::uint64_t n) {
    std::uint64_t used =
        decisions_used_.fetch_add(n, std::memory_order_relaxed) + n;
    if (used > max_decisions_) return StopReason::kDecisions;
    return StopReason::kNone;
  }

  /// Reads the clock; kDeadline once the deadline has passed. Amortize —
  /// this is the expensive check.
  StopReason CheckDeadline() const {
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      return StopReason::kDeadline;
    }
    return StopReason::kNone;
  }

  /// Charges `n` bytes against the memory ceiling; false (and the charge
  /// rolled back) when it would exceed the cap.
  bool TryChargeBytes(std::uint64_t n) {
    std::uint64_t used =
        bytes_used_.fetch_add(n, std::memory_order_relaxed) + n;
    if (used > max_memory_bytes_) {
      bytes_used_.fetch_sub(n, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
  void ReleaseBytes(std::uint64_t n) {
    bytes_used_.fetch_sub(n, std::memory_order_relaxed);
  }

  std::uint64_t decisions_used() const {
    return decisions_used_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_used() const {
    return bytes_used_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t max_decisions_ = kUnlimited;
  std::uint64_t max_memory_bytes_ = kUnlimited;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::atomic<std::uint64_t> decisions_used_{0};
  std::atomic<std::uint64_t> bytes_used_{0};
};

/// Deterministic fault injection for exercising governed exit paths.
///
/// A FaultPoint names a site (a class of events inside the governed
/// computation), an action to simulate, and the 1-based ordinal of the
/// event at which to fire. The computation calls Count(site) once per
/// event; the call returns true exactly once, on the `fire_at`-th event
/// at the matching site. The ordinal counter is atomic, so under a
/// parallel search the fault still fires exactly once — at a
/// schedule-dependent but always-valid point — which is what the TSan
/// concurrent-cancellation tests rely on. Sequential runs fire at a fully
/// deterministic point, which is what the differential bound tests rely
/// on.
class FaultPoint {
 public:
  enum class Site : std::uint8_t {
    kDecision,     // one event per DPLL decision
    kCacheInsert,  // one event per component-cache insertion attempt
  };
  enum class Action : std::uint8_t {
    kCancel,           // behave as if a CancelToken fired
    kMemoryExhausted,  // behave as if an allocation hit the ceiling
  };

  FaultPoint(Site site, Action action, std::uint64_t fire_at)
      : site_(site), action_(action), fire_at_(fire_at) {}
  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

  Site site() const { return site_; }
  Action action() const { return action_; }

  /// Records one event at `site`; true exactly on the fire_at-th matching
  /// event (false forever after).
  bool Count(Site site) noexcept {
    if (site != site_) return false;
    return events_.fetch_add(1, std::memory_order_relaxed) + 1 == fire_at_;
  }

  std::uint64_t events() const {
    return events_.load(std::memory_order_relaxed);
  }

  /// The StopReason the action simulates.
  StopReason reason() const {
    return action_ == Action::kCancel ? StopReason::kCancelled
                                      : StopReason::kMemory;
  }

 private:
  const Site site_;
  const Action action_;
  const std::uint64_t fire_at_;
  std::atomic<std::uint64_t> events_{0};
};

}  // namespace swfomc::runtime

#endif  // SWFOMC_RUNTIME_BUDGET_H_
