#include "runtime/thread_pool.h"

#include <utility>

namespace swfomc::runtime {

namespace {

// Which pool deque the current thread owns: workers_ index + 1, or 0 for
// every external thread (the shared deque). thread_local rather than a
// member so nested pools on one thread stay well-defined — each pool
// indexes its own deque vector with the same slot number.
thread_local std::size_t current_slot = 0;

}  // namespace

ThreadPool::Metrics ThreadPool::Metrics::FromRegistry(
    obs::MetricsRegistry* registry) {
  Metrics metrics;
  if (registry == nullptr) return metrics;
  metrics.tasks_run = registry->GetCounter(
      "swfomc_pool_tasks_run_total", "Tasks popped from the owner's deque");
  metrics.tasks_stolen = registry->GetCounter(
      "swfomc_pool_tasks_stolen_total", "Tasks stolen from another deque");
  metrics.queue_depth = registry->GetGauge(
      "swfomc_pool_queue_depth", "Tasks pushed but not yet started");
  return metrics;
}

ThreadPool::ThreadPool(unsigned thread_count)
    : ThreadPool(thread_count, Metrics{}) {}

ThreadPool::ThreadPool(unsigned thread_count, Metrics metrics)
    : metrics_(metrics) {
  std::size_t workers = thread_count > 1 ? thread_count - 1 : 0;
  deques_.resize(workers + 1);  // slot 0 is the external/shared deque
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

unsigned ThreadPool::ResolveThreadCount(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

void ThreadPool::Push(Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t slot = current_slot < deques_.size() ? current_slot : 0;
    if (slot == 0) {
      // External thread: spread tasks round-robin so workers start on
      // distinct deques.
      slot = deques_.size() > 1 ? 1 + next_victim_++ % (deques_.size() - 1)
                                : 0;
    }
    deques_[slot].push_back(std::move(task));
    ++pending_;
  }
  if (metrics_.queue_depth != nullptr) metrics_.queue_depth->Add(1);
  work_available_.notify_one();
}

bool ThreadPool::RunOneTask() {
  Task task;
  bool stolen = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_ == 0) return false;
    std::size_t own = current_slot < deques_.size() ? current_slot : 0;
    if (!deques_[own].empty()) {
      // Own deque: LIFO — resume the most recently forked (cache-warm)
      // subproblem.
      task = std::move(deques_[own].back());
      deques_[own].pop_back();
    } else {
      // Steal: FIFO from another deque — take the oldest fork, which is
      // the coarsest-grained work available.
      for (std::size_t i = 1; i <= deques_.size(); ++i) {
        std::size_t victim = (own + i) % deques_.size();
        if (!deques_[victim].empty()) {
          task = std::move(deques_[victim].front());
          deques_[victim].pop_front();
          stolen = victim != own;
          break;
        }
      }
    }
    --pending_;
  }
  if (metrics_.queue_depth != nullptr) metrics_.queue_depth->Sub(1);
  if (stolen) {
    if (metrics_.tasks_stolen != nullptr) metrics_.tasks_stolen->Add(1);
  } else if (metrics_.tasks_run != nullptr) {
    metrics_.tasks_run->Add(1);
  }
  Execute(std::move(task));
  return true;
}

void ThreadPool::Execute(Task task) {
  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }
  task.group->OnTaskDone(std::move(error));
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  current_slot = worker_index;
  while (true) {
    if (RunOneTask()) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    work_available_.wait(lock,
                         [this] { return pending_ != 0 || shutting_down_; });
    if (pending_ == 0 && shutting_down_) return;
  }
}

TaskGroup::~TaskGroup() {
  try {
    Wait();
  } catch (...) {
    // Destructor join: the exception already escaped a task and the owner
    // never called Wait(); dropping it beats std::terminate.
  }
}

void TaskGroup::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++outstanding_;
  }
  pool_->Push(ThreadPool::Task{std::move(fn), this});
}

void TaskGroup::Wait() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (outstanding_ == 0) break;
    }
    if (pool_->RunOneTask()) continue;
    // Nothing runnable anywhere: the remaining tasks of this group are
    // executing on other threads, and only this (blocked) thread could
    // submit more to the group — so sleep until the count drains and be
    // done. Work those tasks spawn belongs to nested groups, which help
    // themselves on their own threads.
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return outstanding_ == 0; });
    break;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (error_ != nullptr) {
    std::exception_ptr error = std::exchange(error_, nullptr);
    std::rethrow_exception(error);
  }
}

void TaskGroup::OnTaskDone(std::exception_ptr error) {
  // Notify *inside* the lock: the waiter may destroy this TaskGroup the
  // moment it observes outstanding_ == 0 under the mutex, so an unlocked
  // notify here would race the condition variable's destruction.
  std::lock_guard<std::mutex> lock(mutex_);
  if (error != nullptr && error_ == nullptr) error_ = std::move(error);
  if (--outstanding_ == 0) all_done_.notify_all();
}

}  // namespace swfomc::runtime
