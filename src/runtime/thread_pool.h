#ifndef SWFOMC_RUNTIME_THREAD_POOL_H_
#define SWFOMC_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace swfomc::runtime {

class TaskGroup;

/// Fixed-size work-stealing thread pool for deterministic fork-join
/// parallelism: per-worker deques (LIFO for the owner, FIFO for thieves),
/// a caller that participates in the work instead of blocking, and no
/// task ever dropped. The pool makes no ordering promises — callers that
/// need determinism must combine results in a schedule-independent way
/// (the WMC use case multiplies exact per-component counts, so any
/// schedule yields bit-identical answers).
///
/// The deques share one mutex: forks in this codebase happen at coarse
/// granularity (large residual components near the root of a DPLL search,
/// whole sweep points), so queue traffic is a few hundred operations per
/// second and lock contention is unmeasurable. The stealing *structure*
/// still matters: owners resume their most recent fork (cache-warm),
/// thieves take the oldest (largest) subproblem.
class ThreadPool {
 public:
  /// Spawns `thread_count - 1` workers; the thread calling
  /// TaskGroup::Wait acts as the remaining worker. `thread_count` of 0 or
  /// 1 spawns no workers at all — every task runs inline in Wait, which
  /// keeps the sequential path allocation- and synchronization-free.
  /// Observability hooks. All pointers may be null (the disabled
  /// state); FromRegistry binds the pool's standard metric names. The
  /// instruments must outlive the pool.
  struct Metrics {
    obs::Counter* tasks_run = nullptr;     // popped from the own deque
    obs::Counter* tasks_stolen = nullptr;  // taken from another deque
    obs::Gauge* queue_depth = nullptr;     // tasks pushed but not started
    static Metrics FromRegistry(obs::MetricsRegistry* registry);
  };

  explicit ThreadPool(unsigned thread_count);
  ThreadPool(unsigned thread_count, Metrics metrics);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers plus the participating caller.
  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Maps a requested thread count to an effective one: 0 means "use the
  /// hardware", anything else is taken literally. Never returns 0.
  static unsigned ResolveThreadCount(unsigned requested);

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  /// Pushes onto the current worker's own deque (back) when called from a
  /// pool thread, else onto a round-robin victim.
  void Push(Task task);
  /// Pops one task (own deque back first, then steals from the fronts of
  /// the others) and runs it. Returns false when every deque is empty.
  bool RunOneTask();
  void WorkerLoop(std::size_t worker_index);
  static void Execute(Task task);

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::vector<std::deque<Task>> deques_;  // one per worker + one shared
  std::size_t pending_ = 0;
  std::size_t next_victim_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
  Metrics metrics_;
};

/// One fork-join region. Submit() enqueues subtasks; Wait() returns once
/// all of them (including tasks submitted by tasks) have finished,
/// executing pending pool work while it waits — the "help-first" join
/// that makes nested groups deadlock-free on a bounded pool. The first
/// exception thrown by any task is captured and rethrown from Wait().
///
/// A TaskGroup is owned by exactly one thread; Submit and Wait must be
/// called from that thread. Tasks themselves may create nested groups.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  /// Joins outstanding tasks; any pending exception is swallowed here, so
  /// call Wait() explicitly unless the stack is already unwinding.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Submit(std::function<void()> fn);
  void Wait();

 private:
  friend class ThreadPool;

  void OnTaskDone(std::exception_ptr error);

  ThreadPool* pool_;
  std::mutex mutex_;
  std::condition_variable all_done_;
  std::size_t outstanding_ = 0;
  std::exception_ptr error_;
};

}  // namespace swfomc::runtime

#endif  // SWFOMC_RUNTIME_THREAD_POOL_H_
