#include "runtime/budget.h"

namespace swfomc::runtime {

const char* ToString(StopReason reason) {
  switch (reason) {
    case StopReason::kNone: return "none";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kDecisions: return "decisions";
    case StopReason::kMemory: return "memory";
  }
  return "?";
}

}  // namespace swfomc::runtime
