#include "closedforms/closed_forms.h"

#include "numeric/combinatorics.h"

namespace swfomc::closedforms {

using numeric::BigInt;
using numeric::BigRational;

numeric::BigInt ForallExistsFOMC(std::uint64_t n) {
  return BigInt::Pow(BigInt::Pow(BigInt(2), n) - BigInt(1), n);
}

numeric::BigRational ForallExistsWFOMC(std::uint64_t n,
                                       const numeric::BigRational& w,
                                       const numeric::BigRational& w_bar) {
  BigRational inner =
      BigRational::Pow(w + w_bar, static_cast<std::int64_t>(n)) -
      BigRational::Pow(w_bar, static_cast<std::int64_t>(n));
  return BigRational::Pow(inner, static_cast<std::int64_t>(n));
}

numeric::BigInt ExistsFOMC(std::uint64_t n) {
  return BigInt::Pow(BigInt(2), n) - BigInt(1);
}

numeric::BigRational ExistsWFOMC(std::uint64_t n,
                                 const numeric::BigRational& w,
                                 const numeric::BigRational& w_bar) {
  return BigRational::Pow(w + w_bar, static_cast<std::int64_t>(n)) -
         BigRational::Pow(w_bar, static_cast<std::int64_t>(n));
}

numeric::BigInt Table1FOMC(std::uint64_t n) {
  numeric::BinomialTable binomials;  // row n shared by the O(n²) loop
  BigInt total(0);
  for (std::uint64_t k = 0; k <= n; ++k) {
    for (std::uint64_t m = 0; m <= n; ++m) {
      total += binomials.Get(n, k) * binomials.Get(n, m) *
               BigInt::Pow(BigInt(2), n * n - k * m);
    }
  }
  return total;
}

numeric::BigRational Table1WFOMC(std::uint64_t n,
                                 const numeric::BigRational& w_r,
                                 const numeric::BigRational& wbar_r,
                                 const numeric::BigRational& w_s,
                                 const numeric::BigRational& wbar_s,
                                 const numeric::BigRational& w_t,
                                 const numeric::BigRational& wbar_t) {
  numeric::BinomialTable binomials;
  BigRational total;
  for (std::uint64_t k = 0; k <= n; ++k) {
    for (std::uint64_t m = 0; m <= n; ++m) {
      BigRational term(binomials.Get(n, k) * binomials.Get(n, m));
      term *= BigRational::Pow(w_r, static_cast<std::int64_t>(n - k));
      term *= BigRational::Pow(wbar_r, static_cast<std::int64_t>(k));
      term *= BigRational::Pow(w_s, static_cast<std::int64_t>(k * m));
      term *= BigRational::Pow(w_s + wbar_s,
                               static_cast<std::int64_t>(n * n - k * m));
      term *= BigRational::Pow(w_t, static_cast<std::int64_t>(n - m));
      term *= BigRational::Pow(wbar_t, static_cast<std::int64_t>(m));
      total += term;
    }
  }
  return total;
}

numeric::BigInt ExistsConjFOMC(std::uint64_t n) {
  return BigInt::Pow(BigInt(2), 2 * n + n * n) - Table1FOMC(n);
}

numeric::BigInt WorldCount(std::uint64_t tuple_count) {
  return BigInt::Pow(BigInt(2), tuple_count);
}

}  // namespace swfomc::closedforms
