#ifndef SWFOMC_CLOSEDFORMS_CLOSED_FORMS_H_
#define SWFOMC_CLOSEDFORMS_CLOSED_FORMS_H_

#include <cstdint>

#include "numeric/bigint.h"
#include "numeric/rational.h"

namespace swfomc::closedforms {

/// Exact closed-form counting identities quoted in the paper, used as
/// independent cross-checks of the lifted and grounded engines.

/// FOMC(∀x∃y R(x,y), n) = (2^n - 1)^n  (Section 1).
numeric::BigInt ForallExistsFOMC(std::uint64_t n);

/// WFOMC(∀x∃y R(x,y), n, w, w̄) = ((w + w̄)^n - w̄^n)^n  (Section 2).
numeric::BigRational ForallExistsWFOMC(std::uint64_t n,
                                       const numeric::BigRational& w,
                                       const numeric::BigRational& w_bar);

/// FOMC(∃y S(y), n) = 2^n - 1.
numeric::BigInt ExistsFOMC(std::uint64_t n);

/// WFOMC(∃y S(y), n, w, w̄) = (w + w̄)^n - w̄^n  (Section 2).
numeric::BigRational ExistsWFOMC(std::uint64_t n,
                                 const numeric::BigRational& w,
                                 const numeric::BigRational& w_bar);

/// Table 1, row "Symmetric FOMC":
/// FOMC(∀x∀y (R(x) ∨ S(x,y) ∨ T(y)), n) = Σ_{k,m} C(n,k) C(n,m) 2^{n²-km}.
numeric::BigInt Table1FOMC(std::uint64_t n);

/// Table 1, row "Symmetric WFOMC": Σ_{k,m} C(n,k) C(n,m) W_{k,m} with
/// W_{k,m} = w_R^{n-k} w̄_R^k w_S^{km} (w_S+w̄_S)^{n²-km} w_T^{n-m} w̄_T^m.
///
/// NOTE on conventions: the paper's table counts k = |{x : ¬R(x)}| and
/// m = |{y : ¬T(y)}| (the clause is only constrained where R(x) and T(y)
/// are both false, and exactly the km tuples S(x,y) in that rectangle are
/// forced true — contributing w_S^{km}).
numeric::BigRational Table1WFOMC(std::uint64_t n,
                                 const numeric::BigRational& w_r,
                                 const numeric::BigRational& wbar_r,
                                 const numeric::BigRational& w_s,
                                 const numeric::BigRational& wbar_s,
                                 const numeric::BigRational& w_t,
                                 const numeric::BigRational& wbar_t);

/// Section 1's #P-hard-asymmetric example Φ = ∃x∃y (R(x) ∧ S(x,y) ∧ T(y)):
/// FOMC(Φ, n) = 2^{2n+n²} - Σ_{k,m} C(n,k) C(n,m) 2^{n²-km}
/// (complement of Table 1's dual).
numeric::BigInt ExistsConjFOMC(std::uint64_t n);

/// µ_n(Φ) denominator: the number of labeled structures 2^{|Tup(n)|}.
numeric::BigInt WorldCount(std::uint64_t tuple_count);

}  // namespace swfomc::closedforms

#endif  // SWFOMC_CLOSEDFORMS_CLOSED_FORMS_H_
