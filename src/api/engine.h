#ifndef SWFOMC_API_ENGINE_H_
#define SWFOMC_API_ENGINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fo2/lifted_compiler.h"
#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "nnf/circuit.h"
#include "nnf/lifted_circuit.h"
#include "numeric/bigint.h"
#include "numeric/rational.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "wmc/dpll_counter.h"
#include "wmc/weights.h"

namespace swfomc::api {

/// Which algorithm answered a query.
enum class Method {
  kAuto,          // request: let the engine route
  kLiftedFO2,     // Appendix C cell algorithm (PTIME data complexity)
  kGammaAcyclic,  // Theorem 3.6 evaluator
  kGrounded,      // lineage + Tseitin + DPLL counter (exponential)
};

const char* ToString(Method method);

/// How a query ended under a resource envelope. Ungoverned queries (and
/// every lifted-path query — the PTIME routes never exhaust a budget) are
/// kExact. kBounds carries certified anytime bounds; kAborted means the
/// budget fired where no certified answer exists (negative weights, or a
/// partial compilation trace).
enum class Outcome {
  kExact,
  kBounds,
  kAborted,
};

const char* ToString(Outcome outcome);

/// Certified anytime bounds: lower <= exact <= upper, from the explored
/// part of a budget-stopped search (non-negative weights only).
struct BoundsResult {
  numeric::BigRational lower;
  numeric::BigRational upper;
};

/// The outcome of Auto routing, with the evidence behind it: `method` is
/// what Route() returns and `reason` a one-line human-readable
/// justification (why the chosen path applies, or — for the grounded
/// fallback — why each lifted path was rejected). Surfaced through the
/// CLI's JSON output so every run records which algorithm answered and
/// why.
struct RouteDecision {
  Method method = Method::kGrounded;
  std::string reason;
};

/// One relation's replacement weights for CompiledQuery evaluation.
struct RelationWeights {
  std::string relation;
  numeric::BigRational positive{1};
  numeric::BigRational negative{1};
};

/// A sentence compiled into a reusable arithmetic circuit
/// (Engine::Compile). Two kinds exist, distinguished by kind():
///
///   * kGrounded — a d-DNNF over ground tuples, compiled at a fixed
///     domain size: the exponential DPLL search over the grounded
///     lineage runs once and its trace is kept, so every subsequent
///     weight vector — a learning-loop step, a per-tenant reweighting —
///     is answered by one linear circuit pass instead of a fresh count.
///   * kLifted — a domain-parametric first-order circuit with counting
///     nodes (liftable FO² sentences only): one compile answers *every*
///     (domain size, weight vector) pair in time polynomial in n.
///
/// The compiled object is immutable and self-contained: it carries the
/// circuit, the compile-time vocabulary snapshot, and — for the grounded
/// kind — the ground-tuple → relation map that turns per-relation weights
/// into the circuit's per-variable weights.
class CompiledQuery {
 public:
  enum class Kind { kGrounded, kLifted };

  Kind kind() const { return kind_; }
  /// The grounded d-DNNF; empty (zero nodes… do not evaluate) for kLifted.
  const nnf::Circuit& circuit() const { return circuit_; }
  /// The domain-parametric circuit; empty for kGrounded.
  const nnf::LiftedCircuit& lifted_circuit() const { return lifted_circuit_; }
  /// The fixed compile-time domain size of a grounded circuit; 0 for
  /// kLifted (a lifted circuit has no fixed size — pass n to Evaluate).
  std::uint64_t domain_size() const { return domain_size_; }
  const logic::Vocabulary& vocabulary() const { return vocabulary_; }
  /// Ground tuple variables [0, tuple_count); higher variable ids are
  /// Tseitin auxiliaries and always weigh (1, 1).
  std::uint32_t tuple_count() const {
    return static_cast<std::uint32_t>(variable_relation_.size());
  }
  /// The count computed while compiling (under the compile-time weights);
  /// identical to WFOMC(Φ, n, Method::kGrounded). Grounded kind only — a
  /// lifted compile is domain-parametric and produces no single count.
  const numeric::BigRational& compile_count() const { return compile_count_; }
  /// The compiling search's counters (cache_* describe the trace memo).
  /// Grounded kind only.
  const wmc::DpllCounter::Stats& compile_stats() const {
    return compile_stats_;
  }
  /// The lifted compiler's counters. Lifted kind only.
  const fo2::LiftedCompileStats& lifted_compile_stats() const {
    return lifted_compile_stats_;
  }

  /// Approximate resident bytes: the circuit's arenas plus the ground
  /// tuple → relation map, the compile count's limb buffers, and the
  /// vocabulary snapshot's strings and weights. Lets a circuit cache
  /// bound its footprint (swfomc serve's LRU).
  std::size_t MemoryBytes() const;

  /// The uniform entry point: WFOMC(Φ, n) with the listed relations'
  /// weights replaced (relations not listed keep their compile-time
  /// weights; zero and negative weights are fine — neither circuit kind
  /// depends on the weights). For the grounded kind `domain_size` must
  /// equal domain_size() (std::invalid_argument otherwise — a grounded
  /// circuit answers one n); the lifted kind accepts any n >= 1. `arena`
  /// is optional caller-owned scratch reused across calls (one arena per
  /// evaluating thread). Throws std::invalid_argument for an unknown
  /// relation name.
  numeric::BigRational Evaluate(std::uint64_t domain_size,
                                const std::vector<RelationWeights>& reweights,
                                nnf::Circuit::EvalArena* arena) const;
  numeric::BigRational Evaluate(
      std::uint64_t domain_size,
      const std::vector<RelationWeights>& reweights) const;

  /// WFOMC(Φ, n) under the compile-time vocabulary weights, via the
  /// circuit. Grounded kind: equals compile_count() — the cheap sanity
  /// check. Lifted kind throws (it needs a domain size).
  numeric::BigRational Evaluate() const;
  /// WFOMC(Φ, n) at the compile-time domain size with the listed
  /// relations' weights replaced. Grounded kind only; the lifted kind
  /// throws std::invalid_argument (pass n via Evaluate(n, reweights)).
  numeric::BigRational Evaluate(
      const std::vector<RelationWeights>& reweights) const;
  /// Serving form: same as above with caller-owned evaluation scratch
  /// (one nnf::Circuit::EvalArena reused across calls makes steady-state
  /// evaluation allocation-free; see circuit.h).
  numeric::BigRational Evaluate(const std::vector<RelationWeights>& reweights,
                                nnf::Circuit::EvalArena* arena) const;
  /// Lowest level, grounded kind only: explicit per-variable weights
  /// (must cover circuit().variable_count() variables; Tseitin
  /// auxiliaries should stay (1, 1) for the count to mean WFOMC).
  numeric::BigRational EvaluateRaw(const wmc::WeightMap& weights) const;
  numeric::BigRational EvaluateRaw(const wmc::WeightMap& weights,
                                   nnf::Circuit::EvalArena* arena) const;

  /// The per-variable weight map `reweights` induces — what EvaluateRaw
  /// would be handed. Exposed for serialization (.nnf weight lines).
  /// Grounded kind only.
  wmc::WeightMap GroundWeights(
      const std::vector<RelationWeights>& reweights) const;

  /// The per-relation weight vector `reweights` induces over the lifted
  /// circuit's (extended) relation table. Lifted kind only.
  nnf::LiftedCircuit::Weights LiftedWeights(
      const std::vector<RelationWeights>& reweights) const;

 private:
  friend class Engine;

  void RequireKind(Kind kind, const char* who) const;

  Kind kind_ = Kind::kGrounded;
  nnf::Circuit circuit_;
  nnf::LiftedCircuit lifted_circuit_;
  logic::Vocabulary vocabulary_;
  std::uint64_t domain_size_ = 0;
  std::vector<logic::RelationId> variable_relation_;
  numeric::BigRational compile_count_;
  wmc::DpllCounter::Stats compile_stats_;
  fo2::LiftedCompileStats lifted_compile_stats_;
};

const char* ToString(CompiledQuery::Kind kind);

/// Per-call resource governance: non-null members override the engine's
/// Options for the duration of one query, so concurrent callers sharing
/// an Engine (the serve daemon) govern each request without mutating
/// shared engine state.
struct QueryOptions {
  runtime::Budget* budget = nullptr;
  runtime::CancelToken* cancel = nullptr;
  runtime::FaultPoint* fault = nullptr;
};

/// What Engine::Compile should produce and under which resources.
struct CompileOptions {
  /// Required by the grounded compiler (it fixes n at compile time);
  /// ignored by the lifted compiler, whose circuit is domain-parametric.
  std::optional<std::uint64_t> domain_size;
  /// kAuto compiles liftable sentences into lifted circuits and falls
  /// back to the grounded trace (at `domain_size`) otherwise. kLiftedFO2
  /// and kGrounded force their compiler; kGammaAcyclic has no circuit
  /// form and is rejected.
  Method method = Method::kAuto;
  /// Per-call governance for the grounded trace (the lifted compiler is
  /// polynomial and runs ungoverned); non-null overrides engine Options.
  runtime::Budget* budget = nullptr;
  runtime::CancelToken* cancel = nullptr;
  runtime::FaultPoint* fault = nullptr;
};

/// The outcome of Engine::Compile, shaped like Engine::Result: which
/// compiler ran, how it ended, and — exactly when `outcome` is kExact —
/// the compiled circuit. A grounded compilation the budget stops
/// mid-trace cannot be salvaged (the partial circuit would be wrong for
/// some weight vectors), so the trace is discarded and reported kAborted.
struct CompileResult {
  Outcome outcome = Outcome::kExact;
  runtime::StopReason stop_reason = runtime::StopReason::kNone;
  Method method = Method::kGrounded;
  std::optional<CompiledQuery> compiled;
};

/// The library facade: one entry point for symmetric WFOMC over a weighted
/// vocabulary. `Auto` routing sends
///   * FO² sentences (arity <= 2, no constants) to the lifted cell
///     algorithm,
///   * existentially-quantified conjunctions of distinct positive atoms
///     whose hypergraph is γ-acyclic to the Theorem 3.6 evaluator,
///   * everything else to the grounded DPLL engine.
/// Routing never changes the answer, only the complexity — and neither
/// does threading: every parallel configuration returns counts
/// bit-identical to the sequential ones.
class Engine {
 public:
  struct Options {
    /// Worker threads for the grounded path (independent-component
    /// solving inside the DPLL counter) and for WFOMCSweep's concurrent
    /// sweep points. 1 = fully sequential; 0 = one per hardware thread.
    unsigned num_threads = 1;
    /// Resource envelope for grounded searches (not owned; shared by
    /// every query — and every sweep point — issued while set). On
    /// exhaustion WFOMC/WFOMCSweep report Outcome::kBounds (or kAborted)
    /// instead of spinning; Compile reports through TryCompile.
    runtime::Budget* budget = nullptr;
    /// Cooperative cancellation for grounded searches (not owned).
    runtime::CancelToken* cancel = nullptr;
    /// Deterministic fault injection for tests (not owned).
    runtime::FaultPoint* fault = nullptr;
    /// Live observability (not owned; null = disabled). The registry
    /// receives per-method route counters and is forwarded into the
    /// DPLL counter and its pool; the trace log gets one span per
    /// WFOMC/WFOMCSweep/Compile call (with a fresh query id) plus the
    /// counter's progress events. Neither changes any result bit.
    obs::MetricsRegistry* metrics = nullptr;
    obs::TraceLog* trace = nullptr;
  };

  /// CompileResult used to be a nested type; the alias keeps
  /// Engine::CompileResult spelling valid for pre-unification callers.
  using CompileResult = api::CompileResult;

  explicit Engine(logic::Vocabulary vocabulary);
  Engine(logic::Vocabulary vocabulary, Options options);

  const logic::Vocabulary& vocabulary() const { return vocabulary_; }
  logic::Vocabulary* mutable_vocabulary() { return &vocabulary_; }

  const Options& options() const { return options_; }
  void set_options(Options options) { options_ = options; }

  /// Parses a sentence against (and possibly extending) the vocabulary.
  logic::Formula Parse(const std::string& text);

  struct Result {
    /// The exact count when `outcome` is kExact; the certified lower
    /// bound (== bounds->lower) for kBounds; zero for kAborted.
    numeric::BigRational value;
    Method method = Method::kGrounded;
    Outcome outcome = Outcome::kExact;
    /// Set exactly when `outcome` is kBounds.
    std::optional<BoundsResult> bounds;
    /// Why a governed query stopped (kNone when it ran to completion).
    runtime::StopReason stop_reason = runtime::StopReason::kNone;
    /// The DPLL counter's search/cache counters when `method` was
    /// kGrounded (the lifted paths never run the counter).
    std::optional<wmc::DpllCounter::Stats> grounded_stats;
  };

  /// Symmetric WFOMC(Φ, n, w, w̄).
  Result WFOMC(const logic::Formula& sentence, std::uint64_t domain_size,
               Method method = Method::kAuto);
  /// Same, with per-call resource governance (see QueryOptions): non-null
  /// members override the engine-level Options for this query only.
  Result WFOMC(const logic::Formula& sentence, std::uint64_t domain_size,
               Method method, const QueryOptions& query_options);

  struct SweepPoint {
    std::uint64_t domain_size = 0;
    numeric::BigRational value;
    Outcome outcome = Outcome::kExact;
    std::optional<BoundsResult> bounds;
    runtime::StopReason stop_reason = runtime::StopReason::kNone;
  };
  struct SweepResult {
    Method method = Method::kGrounded;
    /// kExact when every point is exact; else the worst point outcome
    /// (kAborted dominates kBounds). A shared budget keeps draining
    /// across points, so later points typically degrade first… to
    /// brackets computed in O(component) time.
    Outcome outcome = Outcome::kExact;
    runtime::StopReason stop_reason = runtime::StopReason::kNone;
    std::vector<SweepPoint> points;  // one per n, ascending
  };

  /// Batched WFOMC(Φ, n, w, w̄) for every n in [n_lo, n_hi] — the
  /// domain-size sweep the paper's experiments run. Routes once and
  /// reuses the shared structure a point-by-point loop rebuilds:
  ///   * lifted FO²: the universal (Scott/Skolem) normal form is
  ///     constructed once and one binomial table serves every point;
  ///   * γ-acyclic: the conjunctive query and its weight map are
  ///     extracted once;
  ///   * grounded: sweep points are independent and run concurrently on
  ///     the thread pool when Options::num_threads != 1.
  /// Results are bit-identical to calling WFOMC per point, in every
  /// threading configuration. Throws std::invalid_argument when
  /// n_lo > n_hi.
  SweepResult WFOMCSweep(const logic::Formula& sentence, std::uint64_t n_lo,
                         std::uint64_t n_hi, Method method = Method::kAuto);
  /// Same, with per-call resource governance (see QueryOptions).
  SweepResult WFOMCSweep(const logic::Formula& sentence, std::uint64_t n_lo,
                         std::uint64_t n_hi, Method method,
                         const QueryOptions& query_options);

  /// The unified compile entry point. Routing (under kAuto):
  ///   * liftable FO² sentences (CanCompileLifted) compile once into a
  ///     domain-parametric lifted circuit — no domain size needed, every
  ///     n >= 1 answered by CompiledQuery::Evaluate(n, reweights);
  ///   * everything else runs the grounded path (lineage + Tseitin —
  ///     every sentence the grounded method accepts is compilable): the
  ///     DPLL counter searches once in tracing mode at the required
  ///     options.domain_size, and the trace is the circuit.
  /// Grounded compilation cost is one sequential grounded count with
  /// zero-weight pruning off; each Evaluate afterwards is linear in the
  /// circuit. Throws std::invalid_argument when the grounded path is
  /// taken without a domain size, and for Method::kGammaAcyclic (the
  /// Theorem 3.6 evaluator has no circuit form).
  CompileResult Compile(const logic::Formula& sentence,
                        const CompileOptions& options = {});

  /// True when Compile would produce a lifted circuit for this sentence
  /// under Method::kAuto (sentence in FO², arity <= 2, no constants).
  bool CanCompileLifted(const logic::Formula& sentence) const;

  /// Deprecated shim for the pre-unification API: grounded compile at a
  /// fixed domain size under the engine-level Options, throwing
  /// std::runtime_error on a budget stop. Use Compile(Φ, CompileOptions)
  /// instead.
  CompiledQuery Compile(const logic::Formula& sentence,
                        std::uint64_t domain_size);

  /// Deprecated shim for the pre-unification API: grounded compile at a
  /// fixed domain size under the engine-level Options, reporting a
  /// budget stop as Outcome::kAborted. Use Compile(Φ, CompileOptions)
  /// instead.
  CompileResult TryCompile(const logic::Formula& sentence,
                           std::uint64_t domain_size);

  /// FOMC(Φ, n): WFOMC with all weights forced to (1, 1).
  numeric::BigInt FOMC(const logic::Formula& sentence,
                       std::uint64_t domain_size,
                       Method method = Method::kAuto);

  /// Pr(Φ) under the symmetric tuple-independent distribution, i.e.
  /// WFOMC(Φ) / WFOMC(true). Requires w + w̄ != 0 for every relation.
  numeric::BigRational Probability(const logic::Formula& sentence,
                                   std::uint64_t domain_size,
                                   Method method = Method::kAuto);

  /// The asymptotic fraction µ_n(Φ) of labeled structures satisfying Φ
  /// (Section 1, "0-1 Laws"): Probability with weights (1, 1).
  numeric::BigRational Mu(const logic::Formula& sentence,
                          std::uint64_t domain_size);

  /// Spectrum membership: does Φ have a model of size n?
  bool HasModelOfSize(const logic::Formula& sentence,
                      std::uint64_t domain_size);

  /// The routing decision Auto would take (for inspection/testing).
  Method Route(const logic::Formula& sentence) const;

  /// Route() plus the reason for the decision — the introspection the
  /// CLI's reports are built on. Route(s) == ExplainRoute(s).method.
  RouteDecision ExplainRoute(const logic::Formula& sentence) const;

 private:
  logic::Vocabulary vocabulary_;
  Options options_;
};

}  // namespace swfomc::api

#endif  // SWFOMC_API_ENGINE_H_
