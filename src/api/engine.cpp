#include "api/engine.h"

#include <stdexcept>

#include "cq/acyclicity.h"
#include "cq/gamma_evaluator.h"
#include "fo2/cell_algorithm.h"
#include "grounding/grounded_wfomc.h"
#include "logic/parser.h"
#include "reductions/spectrum.h"

namespace swfomc::api {

namespace {

using logic::Formula;
using logic::FormulaKind;
using numeric::BigRational;

// Recognizes ∃x⃗ (R_1(..) & .. & R_k(..)) with distinct positive atoms over
// variables only; returns the CQ or nullopt.
std::optional<cq::ConjunctiveQuery> AsConjunctiveQuery(
    const Formula& sentence, const logic::Vocabulary& vocabulary) {
  Formula body = sentence;
  while (body->kind() == FormulaKind::kExists) body = body->child();
  std::vector<Formula> atoms;
  if (body->kind() == FormulaKind::kAtom) {
    atoms.push_back(body);
  } else if (body->kind() == FormulaKind::kAnd) {
    for (const Formula& child : body->children()) {
      if (child->kind() != FormulaKind::kAtom) return std::nullopt;
      atoms.push_back(child);
    }
  } else {
    return std::nullopt;
  }
  cq::ConjunctiveQuery query;
  for (const Formula& atom : atoms) {
    std::vector<std::string> variables;
    for (const logic::Term& term : atom->arguments()) {
      if (!term.IsVariable()) return std::nullopt;
      variables.push_back(term.name);
    }
    try {
      query.AddAtom(vocabulary.name(atom->relation()), std::move(variables));
    } catch (const std::invalid_argument&) {
      return std::nullopt;  // self-join
    }
  }
  // All quantified variables must appear in atoms (and the sentence must
  // be closed).
  if (!logic::IsSentence(sentence)) return std::nullopt;
  return query;
}

// Forces every relation's weights to (1, 1) for the lifetime of the
// guard; the original vocabulary is restored on scope exit, including
// when the guarded computation throws.
class ScopedUnitWeights {
 public:
  explicit ScopedUnitWeights(logic::Vocabulary* vocabulary)
      : vocabulary_(vocabulary), saved_(*vocabulary) {
    for (logic::RelationId id = 0; id < vocabulary_->size(); ++id) {
      vocabulary_->SetWeights(id, 1, 1);
    }
  }
  ~ScopedUnitWeights() { *vocabulary_ = std::move(saved_); }

  ScopedUnitWeights(const ScopedUnitWeights&) = delete;
  ScopedUnitWeights& operator=(const ScopedUnitWeights&) = delete;

 private:
  logic::Vocabulary* vocabulary_;
  logic::Vocabulary saved_;
};

}  // namespace

const char* ToString(Method method) {
  switch (method) {
    case Method::kAuto: return "auto";
    case Method::kLiftedFO2: return "lifted-fo2";
    case Method::kGammaAcyclic: return "gamma-acyclic";
    case Method::kGrounded: return "grounded";
  }
  return "?";
}

Engine::Engine(logic::Vocabulary vocabulary)
    : vocabulary_(std::move(vocabulary)) {}

logic::Formula Engine::Parse(const std::string& text) {
  return logic::Parse(text, &vocabulary_);
}

Method Engine::Route(const logic::Formula& sentence) const {
  // γ-acyclic CQ path: needs probability conversion, so w + w̄ != 0.
  if (auto query = AsConjunctiveQuery(sentence, vocabulary_)) {
    bool weights_ok = true;
    for (const auto& atom : query->atoms()) {
      logic::RelationId id = vocabulary_.Require(atom.relation);
      if ((vocabulary_.positive_weight(id) + vocabulary_.negative_weight(id))
              .IsZero()) {
        weights_ok = false;
        break;
      }
    }
    if (weights_ok && cq::IsGammaAcyclic(cq::BuildHypergraph(*query))) {
      return Method::kGammaAcyclic;
    }
  }
  if (logic::IsSentence(sentence) && logic::InFragmentFOk(sentence, 2) &&
      vocabulary_.MaxArity() <= 2) {
    // Constants also exclude the lifted path.
    try {
      // Routing must be cheap; rely on the same checks ToUniversalForm
      // performs by scanning for constants here.
      std::function<bool(const Formula&)> has_constant =
          [&](const Formula& f) {
            for (const logic::Term& t : f->arguments()) {
              if (t.IsConstant()) return true;
            }
            for (const Formula& child : f->children()) {
              if (has_constant(child)) return true;
            }
            return false;
          };
      if (!has_constant(sentence)) return Method::kLiftedFO2;
    } catch (...) {
    }
  }
  return Method::kGrounded;
}

Engine::Result Engine::WFOMC(const logic::Formula& sentence,
                             std::uint64_t domain_size, Method method) {
  if (method == Method::kAuto) method = Route(sentence);
  Result result;
  result.method = method;
  switch (method) {
    case Method::kLiftedFO2:
      result.value = fo2::LiftedWFOMC(sentence, vocabulary_, domain_size);
      return result;
    case Method::kGammaAcyclic: {
      auto query = AsConjunctiveQuery(sentence, vocabulary_);
      if (!query.has_value()) {
        throw std::invalid_argument(
            "Engine::WFOMC: sentence is not a conjunctive query");
      }
      std::map<std::string, std::pair<BigRational, BigRational>> weights;
      for (const auto& atom : query->atoms()) {
        logic::RelationId id = vocabulary_.Require(atom.relation);
        weights[atom.relation] = {vocabulary_.positive_weight(id),
                                  vocabulary_.negative_weight(id)};
      }
      result.value = cq::GammaAcyclicWFOMC(*query, domain_size, weights);
      return result;
    }
    case Method::kGrounded:
      result.value =
          grounding::GroundedWFOMC(sentence, vocabulary_, domain_size);
      return result;
    case Method::kAuto:
      break;
  }
  throw std::logic_error("Engine::WFOMC: unreachable");
}

numeric::BigInt Engine::FOMC(const logic::Formula& sentence,
                             std::uint64_t domain_size, Method method) {
  ScopedUnitWeights unit_weights(&vocabulary_);
  return WFOMC(sentence, domain_size, method).value.ToInteger();
}

numeric::BigRational Engine::Probability(const logic::Formula& sentence,
                                         std::uint64_t domain_size,
                                         Method method) {
  BigRational numerator = WFOMC(sentence, domain_size, method).value;
  BigRational normalizer(1);
  for (logic::RelationId id = 0; id < vocabulary_.size(); ++id) {
    std::uint64_t tuples = 1;
    for (std::size_t i = 0; i < vocabulary_.arity(id); ++i) {
      tuples *= domain_size;
    }
    BigRational total =
        vocabulary_.positive_weight(id) + vocabulary_.negative_weight(id);
    normalizer *= BigRational::Pow(total, static_cast<std::int64_t>(tuples));
  }
  if (normalizer.IsZero()) {
    throw std::domain_error("Engine::Probability: zero normalizer");
  }
  return numerator / normalizer;
}

numeric::BigRational Engine::Mu(const logic::Formula& sentence,
                                std::uint64_t domain_size) {
  ScopedUnitWeights unit_weights(&vocabulary_);
  return Probability(sentence, domain_size);
}

bool Engine::HasModelOfSize(const logic::Formula& sentence,
                            std::uint64_t domain_size) {
  return reductions::HasModelOfSize(sentence, vocabulary_, domain_size);
}

}  // namespace swfomc::api
