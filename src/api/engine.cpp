#include "api/engine.h"

#include <limits>
#include <stdexcept>
#include <utility>

#include "cq/acyclicity.h"
#include "cq/gamma_evaluator.h"
#include "fo2/cell_algorithm.h"
#include "fo2/fo2_normal_form.h"
#include "grounding/grounded_wfomc.h"
#include "grounding/lineage.h"
#include "grounding/tuple_index.h"
#include "logic/parser.h"
#include "nnf/circuit_builder.h"
#include "numeric/combinatorics.h"
#include "prop/tseitin.h"
#include "reductions/spectrum.h"
#include "runtime/thread_pool.h"

namespace swfomc::api {

namespace {

using logic::Formula;
using logic::FormulaKind;
using numeric::BigRational;

// Recognizes ∃x⃗ (R_1(..) & .. & R_k(..)) with distinct positive atoms over
// variables only; returns the CQ or nullopt.
std::optional<cq::ConjunctiveQuery> AsConjunctiveQuery(
    const Formula& sentence, const logic::Vocabulary& vocabulary) {
  Formula body = sentence;
  while (body->kind() == FormulaKind::kExists) body = body->child();
  std::vector<Formula> atoms;
  if (body->kind() == FormulaKind::kAtom) {
    atoms.push_back(body);
  } else if (body->kind() == FormulaKind::kAnd) {
    for (const Formula& child : body->children()) {
      if (child->kind() != FormulaKind::kAtom) return std::nullopt;
      atoms.push_back(child);
    }
  } else {
    return std::nullopt;
  }
  cq::ConjunctiveQuery query;
  for (const Formula& atom : atoms) {
    std::vector<std::string> variables;
    for (const logic::Term& term : atom->arguments()) {
      if (!term.IsVariable()) return std::nullopt;
      variables.push_back(term.name);
    }
    try {
      query.AddAtom(vocabulary.name(atom->relation()), std::move(variables));
    } catch (const std::invalid_argument&) {
      return std::nullopt;  // self-join
    }
  }
  // All quantified variables must appear in atoms (and the sentence must
  // be closed).
  if (!logic::IsSentence(sentence)) return std::nullopt;
  return query;
}

// The γ-acyclic evaluator's inputs, extracted once per call: the
// conjunctive query plus each relation's weight pair. Shared by WFOMC
// and WFOMCSweep so their fragment checks and weight handling cannot
// diverge. Throws std::invalid_argument (prefixed with `who`) when the
// sentence is not a conjunctive query.
struct GammaQueryInputs {
  cq::ConjunctiveQuery query;
  std::map<std::string, std::pair<BigRational, BigRational>> weights;
};

GammaQueryInputs RequireGammaAcyclicQuery(const Formula& sentence,
                                          const logic::Vocabulary& vocabulary,
                                          const char* who) {
  auto query = AsConjunctiveQuery(sentence, vocabulary);
  if (!query.has_value()) {
    throw std::invalid_argument(std::string(who) +
                                ": sentence is not a conjunctive query");
  }
  GammaQueryInputs inputs;
  for (const auto& atom : query->atoms()) {
    logic::RelationId id = vocabulary.Require(atom.relation);
    inputs.weights[atom.relation] = {vocabulary.positive_weight(id),
                                     vocabulary.negative_weight(id)};
  }
  inputs.query = *std::move(query);
  return inputs;
}

// Forces every relation's weights to (1, 1) for the lifetime of the
// guard; the original vocabulary is restored on scope exit, including
// when the guarded computation throws.
class ScopedUnitWeights {
 public:
  explicit ScopedUnitWeights(logic::Vocabulary* vocabulary)
      : vocabulary_(vocabulary), saved_(*vocabulary) {
    for (logic::RelationId id = 0; id < vocabulary_->size(); ++id) {
      vocabulary_->SetWeights(id, 1, 1);
    }
  }
  ~ScopedUnitWeights() { *vocabulary_ = std::move(saved_); }

  ScopedUnitWeights(const ScopedUnitWeights&) = delete;
  ScopedUnitWeights& operator=(const ScopedUnitWeights&) = delete;

 private:
  logic::Vocabulary* vocabulary_;
  logic::Vocabulary saved_;
};

// Maps the counter's outcome onto the API enum.
Outcome FromCounterOutcome(wmc::DpllCounter::CountOutcome outcome) {
  switch (outcome) {
    case wmc::DpllCounter::CountOutcome::kExact: return Outcome::kExact;
    case wmc::DpllCounter::CountOutcome::kBounds: return Outcome::kBounds;
    case wmc::DpllCounter::CountOutcome::kAborted: return Outcome::kAborted;
  }
  return Outcome::kAborted;
}

// The governance pointers one query runs under: each per-call override,
// when non-null, shadows the engine-level option. Resolution happens once
// at the query boundary so shared engine state is never mutated.
struct Governance {
  runtime::Budget* budget = nullptr;
  runtime::CancelToken* cancel = nullptr;
  runtime::FaultPoint* fault = nullptr;
};

Governance ResolveGovernance(const Engine::Options& engine_options,
                             const QueryOptions& query_options) {
  return Governance{
      query_options.budget != nullptr ? query_options.budget
                                      : engine_options.budget,
      query_options.cancel != nullptr ? query_options.cancel
                                      : engine_options.cancel,
      query_options.fault != nullptr ? query_options.fault
                                     : engine_options.fault};
}

// Method names as metric-name fragments ('-' is not a valid metric
// character, so these diverge from ToString).
const char* MethodMetricSuffix(Method method) {
  switch (method) {
    case Method::kAuto: return "auto";
    case Method::kLiftedFO2: return "lifted_fo2";
    case Method::kGammaAcyclic: return "gamma_acyclic";
    case Method::kGrounded: return "grounded";
  }
  return "unknown";
}

// One engine-level query boundary: counts the route decision, claims a
// query id, and opens a sampled span. Every entry point (WFOMC, sweep,
// compile) funnels through this so metric names cannot drift apart.
struct QueryScope {
  obs::TraceLog::Span span;
  std::uint64_t query_id = 0;

  QueryScope(const Engine::Options& options, const char* op, Method method) {
    if (options.metrics != nullptr) {
      options.metrics
          ->GetCounter("swfomc_engine_queries_total",
                       "Engine-level query entries (wfomc, sweep, compile)")
          ->Add();
      options.metrics
          ->GetCounter(std::string("swfomc_engine_route_") +
                           MethodMetricSuffix(method) + "_total",
                       "Queries routed to this method")
          ->Add();
    }
    if (options.trace != nullptr) {
      query_id = options.trace->NextQueryId();
      if (options.trace->SampledQuery(query_id)) {
        span = options.trace->BeginSpan(op);
        span.Num("query", query_id).Str("method", ToString(method));
      }
    }
  }
};

// Resident bytes of a vocabulary snapshot: the relation records, both
// copies of every name (the record and the by-name index key), the weight
// limb buffers, and an approximation of the index's per-entry node
// overhead. Counted so a circuit cache cannot be undercounted by many
// small circuits carrying long relation names.
std::size_t VocabularyBytes(const logic::Vocabulary& vocabulary) {
  std::size_t bytes = 0;
  for (logic::RelationId id = 0; id < vocabulary.size(); ++id) {
    bytes += sizeof(logic::Vocabulary::Relation) +
             2 * vocabulary.name(id).capacity() +
             vocabulary.positive_weight(id).HeapBytes() +
             vocabulary.negative_weight(id).HeapBytes() +
             4 * sizeof(void*);  // by-name hash node
  }
  return bytes;
}

}  // namespace

const char* ToString(Method method) {
  switch (method) {
    case Method::kAuto: return "auto";
    case Method::kLiftedFO2: return "lifted-fo2";
    case Method::kGammaAcyclic: return "gamma-acyclic";
    case Method::kGrounded: return "grounded";
  }
  return "?";
}

const char* ToString(Outcome outcome) {
  switch (outcome) {
    case Outcome::kExact: return "exact";
    case Outcome::kBounds: return "bounds";
    case Outcome::kAborted: return "aborted";
  }
  return "?";
}

const char* ToString(CompiledQuery::Kind kind) {
  switch (kind) {
    case CompiledQuery::Kind::kGrounded: return "grounded";
    case CompiledQuery::Kind::kLifted: return "lifted";
  }
  return "?";
}

Engine::Engine(logic::Vocabulary vocabulary)
    : Engine(std::move(vocabulary), Options{}) {}

Engine::Engine(logic::Vocabulary vocabulary, Options options)
    : vocabulary_(std::move(vocabulary)), options_(options) {}

logic::Formula Engine::Parse(const std::string& text) {
  return logic::Parse(text, &vocabulary_);
}

Method Engine::Route(const logic::Formula& sentence) const {
  return ExplainRoute(sentence).method;
}

RouteDecision Engine::ExplainRoute(const logic::Formula& sentence) const {
  // Rejection evidence for the grounded fallback's reason line.
  std::string cq_obstacle;
  std::string fo2_obstacle;

  // γ-acyclic CQ path: needs probability conversion, so w + w̄ != 0.
  if (auto query = AsConjunctiveQuery(sentence, vocabulary_)) {
    std::string zero_total_relation;
    for (const auto& atom : query->atoms()) {
      logic::RelationId id = vocabulary_.Require(atom.relation);
      if ((vocabulary_.positive_weight(id) + vocabulary_.negative_weight(id))
              .IsZero()) {
        zero_total_relation = atom.relation;
        break;
      }
    }
    if (!zero_total_relation.empty()) {
      cq_obstacle = "conjunctive query but relation " + zero_total_relation +
                    " has w + w̄ = 0";
    } else if (cq::IsGammaAcyclic(cq::BuildHypergraph(*query))) {
      return RouteDecision{
          Method::kGammaAcyclic,
          "existential conjunctive query with a gamma-acyclic hypergraph "
          "(Theorem 3.6 evaluator, PTIME)"};
    } else {
      cq_obstacle = "conjunctive query but its hypergraph is not "
                    "gamma-acyclic";
    }
  } else {
    cq_obstacle = "not an existential conjunctive query";
  }

  if (!logic::IsSentence(sentence)) {
    fo2_obstacle = "not a sentence (free variables)";
  } else if (!logic::InFragmentFOk(sentence, 2)) {
    fo2_obstacle = "uses more than 2 variables";
  } else if (vocabulary_.MaxArity() > 2) {
    fo2_obstacle = "vocabulary has a relation of arity > 2";
  } else {
    // Constants also exclude the lifted path; scan for them here (the
    // same check ToUniversalForm performs) so routing stays cheap.
    std::function<bool(const Formula&)> has_constant =
        [&](const Formula& f) {
          for (const logic::Term& t : f->arguments()) {
            if (t.IsConstant()) return true;
          }
          for (const Formula& child : f->children()) {
            if (has_constant(child)) return true;
          }
          return false;
        };
    if (has_constant(sentence)) {
      fo2_obstacle = "contains constants";
    } else {
      return RouteDecision{
          Method::kLiftedFO2,
          "FO² sentence over arity <= 2 without constants "
          "(Appendix C cell algorithm, PTIME data complexity)"};
    }
  }

  return RouteDecision{Method::kGrounded,
                       "grounded fallback: " + cq_obstacle + "; " +
                           fo2_obstacle};
}

Engine::Result Engine::WFOMC(const logic::Formula& sentence,
                             std::uint64_t domain_size, Method method) {
  return WFOMC(sentence, domain_size, method, QueryOptions{});
}

Engine::Result Engine::WFOMC(const logic::Formula& sentence,
                             std::uint64_t domain_size, Method method,
                             const QueryOptions& query_options) {
  Governance governance = ResolveGovernance(options_, query_options);
  if (method == Method::kAuto) method = Route(sentence);
  QueryScope scope(options_, "wfomc", method);
  scope.span.Num("n", domain_size);
  Result result = [&]() -> Result {
    Result result;
    result.method = method;
    switch (method) {
      case Method::kLiftedFO2:
        result.value = fo2::LiftedWFOMC(sentence, vocabulary_, domain_size);
        return result;
      case Method::kGammaAcyclic: {
        auto [query, weights] =
            RequireGammaAcyclicQuery(sentence, vocabulary_, "Engine::WFOMC");
        result.value = cq::GammaAcyclicWFOMC(query, domain_size, weights);
        return result;
      }
      case Method::kGrounded: {
        wmc::DpllCounter::Options counter_options;
        counter_options.num_threads = options_.num_threads;
        counter_options.budget = governance.budget;
        counter_options.cancel = governance.cancel;
        counter_options.fault = governance.fault;
        counter_options.metrics = options_.metrics;
        counter_options.trace = options_.trace;
        counter_options.trace_query_id = scope.query_id;
        wmc::DpllCounter::Stats stats;
        wmc::DpllCounter::CountResult counted =
            grounding::GroundedWFOMCBounded(sentence, vocabulary_,
                                            domain_size, counter_options,
                                            &stats);
        result.grounded_stats = stats;
        result.outcome = FromCounterOutcome(counted.outcome);
        result.stop_reason = counted.stop_reason;
        if (result.outcome == Outcome::kBounds) {
          result.bounds =
              BoundsResult{counted.value, std::move(counted.upper)};
          result.value = std::move(counted.value);
        } else if (result.outcome == Outcome::kExact) {
          result.value = std::move(counted.value);
        }
        return result;
      }
      case Method::kAuto:
        break;
    }
    throw std::logic_error("Engine::WFOMC: unreachable");
  }();
  scope.span.Str("outcome", ToString(result.outcome));
  return result;
}

Engine::SweepResult Engine::WFOMCSweep(const logic::Formula& sentence,
                                       std::uint64_t n_lo, std::uint64_t n_hi,
                                       Method method) {
  return WFOMCSweep(sentence, n_lo, n_hi, method, QueryOptions{});
}

Engine::SweepResult Engine::WFOMCSweep(const logic::Formula& sentence,
                                       std::uint64_t n_lo, std::uint64_t n_hi,
                                       Method method,
                                       const QueryOptions& query_options) {
  Governance governance = ResolveGovernance(options_, query_options);
  if (n_lo > n_hi) {
    throw std::invalid_argument("Engine::WFOMCSweep: n_lo > n_hi");
  }
  // One point per size; [0, 2^64-1] would wrap the count to zero.
  if (n_hi - n_lo == std::numeric_limits<std::uint64_t>::max()) {
    throw std::invalid_argument("Engine::WFOMCSweep: range too large");
  }
  if (method == Method::kAuto) method = Route(sentence);
  QueryScope scope(options_, "wfomc_sweep", method);
  scope.span.Num("n_lo", n_lo).Num("n_hi", n_hi);
  SweepResult sweep;
  sweep.method = method;
  sweep.points.resize(static_cast<std::size_t>(n_hi - n_lo + 1));
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    sweep.points[i].domain_size = n_lo + i;
  }
  switch (method) {
    case Method::kLiftedFO2: {
      // One normal-form construction and one Pascal-row table for the
      // whole sweep; each point still runs the full composition sum. The
      // form is built lazily at the first n >= 1 point so a sweep that
      // only touches n = 0 behaves exactly like the per-point WFOMC call
      // (which evaluates n = 0 directly, without the normal form).
      std::optional<fo2::UniversalForm> form;
      numeric::BinomialTable binomials;
      for (SweepPoint& point : sweep.points) {
        if (point.domain_size == 0) {
          point.value = fo2::LiftedWFOMC(sentence, vocabulary_, 0);
          continue;
        }
        if (!form.has_value()) {
          form = fo2::ToUniversalForm(sentence, vocabulary_);
        }
        point.value =
            fo2::CellAlgorithmWFOMC(*form, point.domain_size, &binomials);
      }
      return sweep;
    }
    case Method::kGammaAcyclic: {
      auto [query, weights] =
          RequireGammaAcyclicQuery(sentence, vocabulary_, "Engine::WFOMCSweep");
      for (SweepPoint& point : sweep.points) {
        point.value =
            cq::GammaAcyclicWFOMC(query, point.domain_size, weights);
      }
      return sweep;
    }
    case Method::kGrounded: {
      // Sweep points are independent grounded counts, so they run
      // concurrently on the pool (each point's counter stays sequential —
      // cross-point parallelism already saturates the workers, and one
      // pool level keeps the schedule simple). Exact counts are
      // bit-identical to the sequential loop; a shared budget is charged
      // by all points together, so which points degrade to bounds can
      // vary with the schedule (the bracket guarantee holds per point
      // regardless).
      auto count_point = [this, &sentence, &governance, &scope](
                             SweepPoint* point, unsigned point_threads) {
        wmc::DpllCounter::Options counter_options;
        counter_options.num_threads = point_threads;
        counter_options.budget = governance.budget;
        counter_options.cancel = governance.cancel;
        counter_options.fault = governance.fault;
        counter_options.metrics = options_.metrics;
        counter_options.trace = options_.trace;
        counter_options.trace_query_id = scope.query_id;
        wmc::DpllCounter::CountResult counted =
            grounding::GroundedWFOMCBounded(sentence, vocabulary_,
                                            point->domain_size,
                                            counter_options);
        point->outcome = FromCounterOutcome(counted.outcome);
        point->stop_reason = counted.stop_reason;
        if (point->outcome == Outcome::kBounds) {
          point->bounds =
              BoundsResult{counted.value, std::move(counted.upper)};
          point->value = std::move(counted.value);
        } else if (point->outcome == Outcome::kExact) {
          point->value = std::move(counted.value);
        }
      };
      unsigned threads =
          runtime::ThreadPool::ResolveThreadCount(options_.num_threads);
      if (threads <= 1 || sweep.points.size() == 1) {
        // Sequential across points — but forward num_threads so a
        // single-point sweep still parallelizes *inside* the counter,
        // exactly like the equivalent WFOMC call.
        for (SweepPoint& point : sweep.points) {
          count_point(&point, options_.num_threads);
        }
      } else {
        runtime::ThreadPool pool(
            threads, runtime::ThreadPool::Metrics::FromRegistry(
                         options_.metrics));
        runtime::TaskGroup group(&pool);
        for (SweepPoint& point : sweep.points) {
          group.Submit([&count_point, &point] { count_point(&point, 1); });
        }
        group.Wait();
      }
      for (const SweepPoint& point : sweep.points) {
        if (point.outcome == Outcome::kAborted ||
            (point.outcome == Outcome::kBounds &&
             sweep.outcome == Outcome::kExact)) {
          sweep.outcome = point.outcome;
        }
        if (sweep.stop_reason == runtime::StopReason::kNone) {
          sweep.stop_reason = point.stop_reason;
        }
      }
      return sweep;
    }
    case Method::kAuto:
      break;
  }
  throw std::logic_error("Engine::WFOMCSweep: unreachable");
}

void CompiledQuery::RequireKind(Kind kind, const char* who) const {
  if (kind_ == kind) return;
  if (kind == Kind::kGrounded) {
    throw std::invalid_argument(
        std::string(who) +
        ": this circuit is lifted (domain-parametric); pass a domain size "
        "via Evaluate(n, reweights)");
  }
  throw std::invalid_argument(std::string(who) +
                              ": this circuit is grounded, not lifted");
}

std::size_t CompiledQuery::MemoryBytes() const {
  return circuit_.MemoryBytes() + lifted_circuit_.MemoryBytes() +
         variable_relation_.capacity() * sizeof(logic::RelationId) +
         compile_count_.HeapBytes() + VocabularyBytes(vocabulary_);
}

numeric::BigRational CompiledQuery::Evaluate(
    std::uint64_t domain_size, const std::vector<RelationWeights>& reweights,
    nnf::Circuit::EvalArena* arena) const {
  if (kind_ == Kind::kGrounded) {
    if (domain_size != domain_size_) {
      throw std::invalid_argument(
          "CompiledQuery::Evaluate: this grounded circuit was compiled at "
          "domain size " +
          std::to_string(domain_size_) + " and cannot evaluate at " +
          std::to_string(domain_size) +
          "; recompile at that size or compile a lifted circuit");
    }
    // The grounded evaluator requires scratch; make a one-shot arena
    // when the caller brought none.
    if (arena == nullptr) return EvaluateRaw(GroundWeights(reweights));
    return EvaluateRaw(GroundWeights(reweights), arena);
  }
  return lifted_circuit_.Evaluate(
      domain_size, LiftedWeights(reweights), nullptr,
      arena != nullptr ? &arena->rational_values : nullptr);
}

numeric::BigRational CompiledQuery::Evaluate(
    std::uint64_t domain_size,
    const std::vector<RelationWeights>& reweights) const {
  return Evaluate(domain_size, reweights, nullptr);
}

numeric::BigRational CompiledQuery::Evaluate() const {
  return Evaluate(std::vector<RelationWeights>{});
}

numeric::BigRational CompiledQuery::Evaluate(
    const std::vector<RelationWeights>& reweights) const {
  RequireKind(Kind::kGrounded, "CompiledQuery::Evaluate");
  return EvaluateRaw(GroundWeights(reweights));
}

numeric::BigRational CompiledQuery::Evaluate(
    const std::vector<RelationWeights>& reweights,
    nnf::Circuit::EvalArena* arena) const {
  RequireKind(Kind::kGrounded, "CompiledQuery::Evaluate");
  return EvaluateRaw(GroundWeights(reweights), arena);
}

numeric::BigRational CompiledQuery::EvaluateRaw(
    const wmc::WeightMap& weights) const {
  RequireKind(Kind::kGrounded, "CompiledQuery::EvaluateRaw");
  return circuit_.Evaluate(weights);
}

numeric::BigRational CompiledQuery::EvaluateRaw(
    const wmc::WeightMap& weights, nnf::Circuit::EvalArena* arena) const {
  RequireKind(Kind::kGrounded, "CompiledQuery::EvaluateRaw");
  return circuit_.Evaluate(weights, arena);
}

nnf::LiftedCircuit::Weights CompiledQuery::LiftedWeights(
    const std::vector<RelationWeights>& reweights) const {
  RequireKind(Kind::kLifted, "CompiledQuery::LiftedWeights");
  // The circuit's relation table is the extended (Scott/Skolem)
  // vocabulary, whose prefix is the original vocabulary in id order — so
  // replacements resolved against the snapshot apply by id, and the
  // appended Def/Sk predicates keep their fixed (1,1)/(1,-1) weights.
  nnf::LiftedCircuit::Weights weights = lifted_circuit_.DefaultWeights();
  for (const RelationWeights& reweight : reweights) {
    auto id = vocabulary_.Find(reweight.relation);
    if (!id.has_value()) {
      throw std::invalid_argument(
          "CompiledQuery::Evaluate: unknown relation '" + reweight.relation +
          "'");
    }
    weights[*id] = {reweight.positive, reweight.negative};
  }
  return weights;
}

wmc::WeightMap CompiledQuery::GroundWeights(
    const std::vector<RelationWeights>& reweights) const {
  RequireKind(Kind::kGrounded, "CompiledQuery::GroundWeights");
  // Start from the compile-time per-relation weights, overlay the
  // replacements, then expand per ground tuple. Tseitin auxiliaries
  // (ids >= tuple_count()) keep the WeightMap default (1, 1).
  std::vector<std::pair<BigRational, BigRational>> by_relation;
  by_relation.reserve(vocabulary_.size());
  for (logic::RelationId id = 0; id < vocabulary_.size(); ++id) {
    by_relation.emplace_back(vocabulary_.positive_weight(id),
                             vocabulary_.negative_weight(id));
  }
  for (const RelationWeights& reweight : reweights) {
    auto id = vocabulary_.Find(reweight.relation);
    if (!id.has_value()) {
      throw std::invalid_argument(
          "CompiledQuery::Evaluate: unknown relation '" + reweight.relation +
          "'");
    }
    by_relation[*id] = {reweight.positive, reweight.negative};
  }
  wmc::WeightMap weights(circuit_.variable_count());
  for (prop::VarId v = 0; v < variable_relation_.size(); ++v) {
    const auto& [positive, negative] = by_relation[variable_relation_[v]];
    weights.Set(v, positive, negative);
  }
  return weights;
}

bool Engine::CanCompileLifted(const logic::Formula& sentence) const {
  return fo2::CanCompileLifted(sentence, vocabulary_);
}

CompileResult Engine::Compile(const logic::Formula& sentence,
                              const CompileOptions& options) {
  Method method = options.method;
  if (method == Method::kAuto) {
    method = CanCompileLifted(sentence) ? Method::kLiftedFO2
                                        : Method::kGrounded;
  }
  QueryScope scope(options_, "compile", method);
  if (options.domain_size.has_value()) {
    scope.span.Num("n", *options.domain_size);
  }
  CompileResult result;
  result.method = method;
  switch (method) {
    case Method::kLiftedFO2: {
      // Polynomial in the sentence; runs ungoverned like every lifted
      // path. options.domain_size is irrelevant — the circuit answers
      // every n >= 1.
      CompiledQuery compiled;
      compiled.kind_ = CompiledQuery::Kind::kLifted;
      compiled.lifted_circuit_ = fo2::CompileLifted(
          sentence, vocabulary_, &compiled.lifted_compile_stats_);
      compiled.vocabulary_ = vocabulary_;
      result.compiled = std::move(compiled);
      return result;
    }
    case Method::kGammaAcyclic:
      throw std::invalid_argument(
          "Engine::Compile: the gamma-acyclic evaluator has no circuit "
          "form; compile with method grounded or lifted-fo2");
    case Method::kGrounded:
      break;
    case Method::kAuto:
      throw std::logic_error("Engine::Compile: unreachable");
  }
  if (!options.domain_size.has_value()) {
    throw std::invalid_argument(
        "Engine::Compile: the grounded compiler fixes the domain size at "
        "compile time; set CompileOptions::domain_size (only liftable FO² "
        "sentences compile without one)");
  }
  std::uint64_t domain_size = *options.domain_size;
  Governance governance = ResolveGovernance(
      options_,
      QueryOptions{options.budget, options.cancel, options.fault});

  // The same grounding pipeline as Method::kGrounded, with the counter in
  // tracing mode: the count falls out of the compile for free, and the
  // circuit's variable layout matches TupleIndex exactly.
  grounding::TupleIndex index(vocabulary_, domain_size);
  prop::PropFormula lineage = grounding::GroundLineage(sentence, index);
  prop::TseitinResult tseitin = prop::TseitinTransform(
      lineage, static_cast<std::uint32_t>(index.TupleCount()));
  wmc::WeightMap weights =
      grounding::SymmetricGroundWeights(index, tseitin.cnf.variable_count);

  nnf::CircuitBuilder builder(tseitin.cnf.variable_count);
  wmc::DpllCounter::Options counter_options;
  counter_options.trace_sink = &builder;
  counter_options.budget = governance.budget;
  counter_options.cancel = governance.cancel;
  counter_options.fault = governance.fault;
  counter_options.metrics = options_.metrics;
  counter_options.trace = options_.trace;
  counter_options.trace_query_id = scope.query_id;
  wmc::DpllCounter counter(std::move(tseitin.cnf), std::move(weights),
                           counter_options);

  wmc::DpllCounter::CountResult counted = counter.CountBounded();
  result.stop_reason = counted.stop_reason;
  if (counted.outcome != wmc::DpllCounter::CountOutcome::kExact) {
    // A stopped trace contains placeholder FALSE nodes for the abandoned
    // subtrees — wrong for some weight vector — so the whole circuit is
    // discarded. (Unlike counting, compilation has no usable partial
    // result; the caller retries with a larger budget or falls back to
    // per-query counting.)
    result.outcome = Outcome::kAborted;
    scope.span.Str("outcome", ToString(result.outcome));
    return result;
  }
  CompiledQuery compiled;
  compiled.compile_count_ = std::move(counted.value);
  compiled.compile_stats_ = counter.stats();
  compiled.circuit_ = builder.Finish();
  compiled.vocabulary_ = vocabulary_;
  compiled.domain_size_ = domain_size;
  compiled.variable_relation_.reserve(
      static_cast<std::size_t>(index.TupleCount()));
  for (prop::VarId v = 0; v < index.TupleCount(); ++v) {
    compiled.variable_relation_.push_back(index.AtomOf(v).relation);
  }
  result.outcome = Outcome::kExact;
  result.compiled = std::move(compiled);
  scope.span.Str("outcome", ToString(result.outcome));
  return result;
}

CompiledQuery Engine::Compile(const logic::Formula& sentence,
                              std::uint64_t domain_size) {
  CompileResult result = TryCompile(sentence, domain_size);
  if (result.outcome != Outcome::kExact) {
    throw std::runtime_error(
        std::string("Engine::Compile: budget exhausted mid-trace "
                    "(stop reason: ") +
        runtime::ToString(result.stop_reason) +
        "); a partial circuit is unusable — retry with a larger budget");
  }
  return *std::move(result.compiled);
}

Engine::CompileResult Engine::TryCompile(const logic::Formula& sentence,
                                         std::uint64_t domain_size) {
  CompileOptions options;
  options.domain_size = domain_size;
  options.method = Method::kGrounded;
  return Compile(sentence, options);
}

namespace {

// FOMC/Probability return a single number with no channel for bounds, so
// a budget-stopped count behind them must throw rather than silently
// hand back a lower bound.
void RequireExact(const Engine::Result& result, const char* who) {
  if (result.outcome != Outcome::kExact) {
    throw std::runtime_error(
        std::string(who) + ": budget exhausted (stop reason: " +
        runtime::ToString(result.stop_reason) +
        "); use WFOMC() to consume anytime bounds");
  }
}

}  // namespace

numeric::BigInt Engine::FOMC(const logic::Formula& sentence,
                             std::uint64_t domain_size, Method method) {
  ScopedUnitWeights unit_weights(&vocabulary_);
  Result result = WFOMC(sentence, domain_size, method);
  RequireExact(result, "Engine::FOMC");
  return result.value.ToInteger();
}

numeric::BigRational Engine::Probability(const logic::Formula& sentence,
                                         std::uint64_t domain_size,
                                         Method method) {
  Result numerator_result = WFOMC(sentence, domain_size, method);
  RequireExact(numerator_result, "Engine::Probability");
  BigRational numerator = std::move(numerator_result.value);
  BigRational normalizer(1);
  for (logic::RelationId id = 0; id < vocabulary_.size(); ++id) {
    std::uint64_t tuples = 1;
    for (std::size_t i = 0; i < vocabulary_.arity(id); ++i) {
      tuples *= domain_size;
    }
    BigRational total =
        vocabulary_.positive_weight(id) + vocabulary_.negative_weight(id);
    normalizer *= BigRational::Pow(total, static_cast<std::int64_t>(tuples));
  }
  if (normalizer.IsZero()) {
    throw std::domain_error("Engine::Probability: zero normalizer");
  }
  return numerator / normalizer;
}

numeric::BigRational Engine::Mu(const logic::Formula& sentence,
                                std::uint64_t domain_size) {
  ScopedUnitWeights unit_weights(&vocabulary_);
  return Probability(sentence, domain_size);
}

bool Engine::HasModelOfSize(const logic::Formula& sentence,
                            std::uint64_t domain_size) {
  return reductions::HasModelOfSize(sentence, vocabulary_, domain_size);
}

}  // namespace swfomc::api
