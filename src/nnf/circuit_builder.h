#ifndef SWFOMC_NNF_CIRCUIT_BUILDER_H_
#define SWFOMC_NNF_CIRCUIT_BUILDER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "nnf/circuit.h"
#include "wmc/trace.h"

namespace swfomc::nnf {

/// The wmc::TraceSink that turns a DPLL search trace into a Circuit.
/// Plug one into DpllCounter::Options::trace_sink, run Count() once, and
/// Finish() hands back the d-DNNF of exactly the formula that was
/// counted.
///
/// The builder canonicalizes on the fly — TRUE factors and FALSE summands
/// are dropped, empty/singleton AND and OR collapse to their neutral
/// element or single child, and constant/literal/free-variable nodes are
/// hash-consed — so the arena stays a compact DAG. Finish() then drops
/// the nodes collapsing made unreachable and renumbers so the root is the
/// last node (the `.nnf` on-disk convention).
class CircuitBuilder final : public wmc::TraceSink {
 public:
  explicit CircuitBuilder(std::uint32_t variable_count);

  NodeId True() override;
  NodeId False() override;
  NodeId Literal(prop::Lit lit) override;
  NodeId FreeVariable(prop::VarId variable) override;
  NodeId And(std::span<const NodeId> children) override;
  NodeId Or(prop::VarId decision, std::span<const NodeId> children) override;
  void Root(NodeId root) override;

  bool has_root() const { return root_ != kNoNode; }

  /// The trimmed, root-last circuit. Requires Root() to have been called
  /// (DpllCounter::Count() does; throws std::logic_error otherwise).
  /// Consumes the builder's arena — build a fresh builder per compile.
  Circuit Finish();

 private:
  NodeId Append(Circuit::Node node, std::span<const NodeId> children);

  std::uint32_t variable_count_;
  std::vector<Circuit::Node> nodes_;
  std::vector<NodeId> edges_;
  NodeId root_ = kNoNode;
  NodeId true_ = kNoNode;
  NodeId false_ = kNoNode;
  std::vector<NodeId> literal_node_;  // per compact literal, kNoNode = none
  std::vector<NodeId> free_node_;     // per variable, kNoNode = none
};

}  // namespace swfomc::nnf

#endif  // SWFOMC_NNF_CIRCUIT_BUILDER_H_
