#ifndef SWFOMC_NNF_CIRCUIT_H_
#define SWFOMC_NNF_CIRCUIT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "numeric/rational.h"
#include "prop/compact_cnf.h"
#include "wmc/weights.h"

namespace swfomc::nnf {

/// Node kinds of a d-DNNF arithmetic circuit (Darwiche's deterministic
/// decomposable negation normal form): constants, literals, decomposable
/// conjunctions (children over pairwise disjoint variables), and
/// deterministic disjunctions (children pairwise inconsistent — here, the
/// two phases of a decision variable).
enum class NodeKind : std::uint8_t { kTrue, kFalse, kLiteral, kAnd, kOr };

/// Decision annotation of an OR node that records no decision variable.
inline constexpr prop::VarId kNoDecision = 0xFFFFFFFFu;

/// A compiled query circuit in a flat arena: nodes in topological order
/// (every child has a smaller id than its parent), children in one shared
/// edge array addressed by per-node spans. The circuit is a DAG — cache
/// hits during compilation become shared subcircuits — and evaluation is
/// one linear bottom-up pass, so a query compiled once answers any
/// subsequent weight vector in O(nodes + edges) exact-rational
/// operations.
class Circuit {
 public:
  using NodeId = std::uint32_t;

  struct Node {
    NodeKind kind = NodeKind::kTrue;
    prop::Lit literal = 0;               // kLiteral only (compact encoding)
    prop::VarId decision = kNoDecision;  // kOr only
    std::uint32_t children_begin = 0;    // span into the edge array
    std::uint32_t children_end = 0;
  };

  /// Structural statistics (the `swfomc compile` report's circuit block).
  struct Stats {
    std::uint64_t nodes = 0;
    std::uint64_t constant_nodes = 0;
    std::uint64_t literal_nodes = 0;
    std::uint64_t and_nodes = 0;
    std::uint64_t or_nodes = 0;
    std::uint64_t edges = 0;
    /// Longest root-to-leaf path, in edges (0 when the root is a leaf).
    std::uint64_t depth = 0;
  };

  /// Reusable evaluation scratch: the per-node value column plus the
  /// per-variable scaled-weight tables of the integer fast path. A caller
  /// serving many weight vectors against the same circuit passes one
  /// arena to every Evaluate call; after the first evaluation the buffers
  /// hold their capacity, so steady-state serving allocates only when an
  /// individual value outgrows its slot. The arena carries no state
  /// between calls — every slot is overwritten before it is read — and
  /// one arena can serve circuits of different sizes (the vectors are
  /// resized per call). Not thread-safe: one arena per evaluating thread.
  struct EvalArena {
    std::vector<numeric::BigInt> integer_values;
    std::vector<numeric::BigRational> rational_values;
    std::vector<numeric::BigInt> scaled_positive;
    std::vector<numeric::BigInt> scaled_negative;
  };

  Circuit() = default;

  /// Raw assembly, used by CircuitBuilder::Finish and the .nnf parser.
  /// Requirements (std::invalid_argument otherwise): at least one node;
  /// every child id smaller than its parent's id (topological, acyclic);
  /// children spans nested in `edges`; constants and literals childless;
  /// literal variables and OR decisions inside `variable_count`;
  /// `root < nodes.size()`.
  Circuit(std::uint32_t variable_count, std::vector<Node> nodes,
          std::vector<NodeId> edges, NodeId root);

  std::uint32_t variable_count() const { return variable_count_; }
  std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  std::uint64_t edge_count() const { return edges_.size(); }
  NodeId root() const { return root_; }
  const Node& node(NodeId id) const { return nodes_[id]; }
  std::span<const NodeId> Children(NodeId id) const {
    return {edges_.data() + nodes_[id].children_begin,
            edges_.data() + nodes_[id].children_end};
  }

  /// The weighted count: one bottom-up pass assigning TRUE → 1, FALSE →
  /// 0, literal → its weight, AND → product, OR → sum. For circuits
  /// traced from DpllCounter this equals DpllCounter::Count() under the
  /// same weights, bit for bit, for *every* weight map (including zero
  /// and negative weights). Throws std::invalid_argument when `weights`
  /// covers fewer than variable_count() variables.
  ///
  /// When the circuit is structurally decomposable and smooth (traced
  /// circuits always are; checked once at construction), evaluation
  /// clears each covered variable's weight denominators up front, runs
  /// the pass in pure integer arithmetic, and divides once at the root —
  /// identical result, but without a gcd reduction per node, which is
  /// what makes serving a compiled circuit several times cheaper than a
  /// recount even on rational weights.
  numeric::BigRational Evaluate(const wmc::WeightMap& weights) const;
  /// Same, with caller-owned scratch (see EvalArena); the no-arena
  /// overload delegates here with a throwaway arena.
  numeric::BigRational Evaluate(const wmc::WeightMap& weights,
                                EvalArena* arena) const;

  Stats ComputeStats() const;

  /// Resident bytes of the circuit's flat arenas (nodes, edges, and the
  /// structural-analysis varset table). Used by byte-bounded circuit
  /// caches (swfomc serve) the way ComponentCache accounts its entries.
  std::size_t MemoryBytes() const {
    return nodes_.capacity() * sizeof(Node) +
           edges_.capacity() * sizeof(NodeId) +
           varsets_.capacity() * sizeof(std::uint64_t);
  }

  /// Structural d-DNNF audit: AND children must be variable-disjoint
  /// (checked with per-node variable sets), OR children must be pairwise
  /// inconsistent — each pair has to fix some variable to opposite
  /// phases among its surface literals (the child itself, or the direct
  /// literal children of an AND child); an OR carrying a decision
  /// variable must fix exactly that variable in every child. Returns
  /// false and fills *error (when non-null) with the first violation.
  bool Validate(std::string* error) const;

 private:
  numeric::BigRational EvaluateRational(const wmc::WeightMap& weights,
                                        EvalArena* arena) const;
  numeric::BigRational EvaluateScaled(const wmc::WeightMap& weights,
                                      EvalArena* arena) const;
  // One construction-time bitset pass: fills varsets_ and decides
  // scalable_ (every AND variable-disjoint, every OR smooth). The table
  // is kept — Evaluate's fast path reads the root's set and Validate
  // reuses the per-node sets instead of rebuilding them.
  void AnalyzeStructure();
  // The variables below node `id`, as a bitset of varset_words_ words.
  std::span<const std::uint64_t> Varset(NodeId id) const {
    return {varsets_.data() + static_cast<std::size_t>(id) * varset_words_,
            varset_words_};
  }

  std::uint32_t variable_count_ = 0;
  std::vector<Node> nodes_;
  std::vector<NodeId> edges_;
  NodeId root_ = 0;
  // True when the integer-scaled evaluation is sound: every product term
  // of the root then has degree exactly one in each root-varset
  // variable, so per-variable denominator clearing scales the total by
  // one known factor.
  bool scalable_ = false;
  std::size_t varset_words_ = 0;
  std::vector<std::uint64_t> varsets_;  // nodes_.size() × varset_words_
};

}  // namespace swfomc::nnf

#endif  // SWFOMC_NNF_CIRCUIT_H_
