#include "nnf/circuit_builder.h"

#include <stdexcept>
#include <utility>

namespace swfomc::nnf {

CircuitBuilder::CircuitBuilder(std::uint32_t variable_count)
    : variable_count_(variable_count),
      literal_node_(static_cast<std::size_t>(variable_count) * 2, kNoNode),
      free_node_(variable_count, kNoNode) {}

CircuitBuilder::NodeId CircuitBuilder::Append(
    Circuit::Node node, std::span<const NodeId> children) {
  node.children_begin = static_cast<std::uint32_t>(edges_.size());
  edges_.insert(edges_.end(), children.begin(), children.end());
  node.children_end = static_cast<std::uint32_t>(edges_.size());
  nodes_.push_back(node);
  return static_cast<NodeId>(nodes_.size() - 1);
}

CircuitBuilder::NodeId CircuitBuilder::True() {
  if (true_ == kNoNode) {
    true_ = Append(Circuit::Node{.kind = NodeKind::kTrue}, {});
  }
  return true_;
}

CircuitBuilder::NodeId CircuitBuilder::False() {
  if (false_ == kNoNode) {
    false_ = Append(Circuit::Node{.kind = NodeKind::kFalse}, {});
  }
  return false_;
}

CircuitBuilder::NodeId CircuitBuilder::Literal(prop::Lit lit) {
  NodeId& memo = literal_node_.at(lit);
  if (memo == kNoNode) {
    memo = Append(Circuit::Node{.kind = NodeKind::kLiteral, .literal = lit},
                  {});
  }
  return memo;
}

CircuitBuilder::NodeId CircuitBuilder::FreeVariable(prop::VarId variable) {
  NodeId& memo = free_node_.at(variable);
  if (memo == kNoNode) {
    NodeId phases[2] = {Literal(prop::MakeLit(variable, true)),
                        Literal(prop::MakeLit(variable, false))};
    memo = Append(
        Circuit::Node{.kind = NodeKind::kOr, .decision = variable}, phases);
  }
  return memo;
}

CircuitBuilder::NodeId CircuitBuilder::And(std::span<const NodeId> children) {
  std::vector<NodeId> kept;
  kept.reserve(children.size());
  for (NodeId child : children) {
    if (child == true_) continue;  // neutral factor
    if (child == false_) return False();
    kept.push_back(child);
  }
  if (kept.empty()) return True();
  if (kept.size() == 1) return kept.front();
  return Append(Circuit::Node{.kind = NodeKind::kAnd}, kept);
}

CircuitBuilder::NodeId CircuitBuilder::Or(prop::VarId decision,
                                          std::span<const NodeId> children) {
  std::vector<NodeId> kept;
  kept.reserve(children.size());
  for (NodeId child : children) {
    if (child == false_) continue;  // zero summand
    kept.push_back(child);
  }
  if (kept.empty()) return False();
  if (kept.size() == 1) return kept.front();
  return Append(Circuit::Node{.kind = NodeKind::kOr, .decision = decision},
                kept);
}

void CircuitBuilder::Root(NodeId root) { root_ = root; }

Circuit CircuitBuilder::Finish() {
  if (root_ == kNoNode) {
    throw std::logic_error("CircuitBuilder::Finish: no root traced");
  }
  // Reachability from the root. Children always precede their parent, so
  // keeping the reachable nodes in arena order preserves topological
  // order and makes the root the highest surviving id.
  std::vector<char> reachable(nodes_.size(), 0);
  std::vector<NodeId> stack = {root_};
  reachable[root_] = 1;
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    const Circuit::Node& node = nodes_[id];
    for (std::uint32_t e = node.children_begin; e < node.children_end; ++e) {
      if (!reachable[edges_[e]]) {
        reachable[edges_[e]] = 1;
        stack.push_back(edges_[e]);
      }
    }
  }
  std::vector<NodeId> renumber(nodes_.size(), kNoNode);
  std::vector<Circuit::Node> nodes;
  std::vector<NodeId> edges;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!reachable[id]) continue;
    renumber[id] = static_cast<NodeId>(nodes.size());
    Circuit::Node node = nodes_[id];
    std::uint32_t begin = static_cast<std::uint32_t>(edges.size());
    for (std::uint32_t e = node.children_begin; e < node.children_end; ++e) {
      edges.push_back(renumber[edges_[e]]);
    }
    node.children_begin = begin;
    node.children_end = static_cast<std::uint32_t>(edges.size());
    nodes.push_back(node);
  }
  NodeId root = renumber[root_];
  nodes_.clear();
  edges_.clear();
  return Circuit(variable_count_, std::move(nodes), std::move(edges), root);
}

}  // namespace swfomc::nnf
