#ifndef SWFOMC_NNF_LIFTED_CIRCUIT_H_
#define SWFOMC_NNF_LIFTED_CIRCUIT_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "numeric/combinatorics.h"
#include "numeric/rational.h"

namespace swfomc::nnf {

/// A domain-parametric arithmetic circuit: the first-order analogue of the
/// grounded d-DNNF in circuit.h (first-order circuits with counting nodes;
/// Van den Broeck et al., IJCAI 2011). Where a grounded circuit fixes the
/// domain size at compile time and names one propositional variable per
/// ground tuple, a lifted circuit's leaves name *relations* and its
/// counting nodes carry child multiplicities that are functions of n — so
/// one compile of an FO² sentence evaluates at every (domain size, weight
/// vector) pair in time polynomial in n.
///
/// Node kinds:
///   * kConst — a fixed rational (slot into the constant pool);
///   * kWeight — one phase of one relation's weight, resolved per call
///     (w_R when `positive`, w̄_R otherwise);
///   * kAnd — product of the children (1 when childless);
///   * kOr — sum of the children (0 when childless); the compiler emits
///     these for mutually exclusive alternatives (Shannon branches of a
///     zero-ary predicate, the satisfying off-diagonal codes of a cell
///     pair), so the sum is a deterministic disjunction arithmetically;
///   * kCount — the binomial counting node, the lifted analogue of an AND
///     over an n-element partition. Its `cells` field gives C, the number
///     of 1-types; its children are the C per-cell weights u_0..u_{C-1}
///     followed by the C(C+1)/2 pair sums r_kl for 0 <= k <= l < C in
///     row-major upper-triangular order. Its value at domain size n is
///     Appendix C's composition sum:
///       Σ_{n_0+..+n_{C-1} = n} (n choose n_0..n_{C-1})
///           Π_l u_l^{n_l} · Π_l r_ll^{C(n_l,2)} · Π_{k<l} r_kl^{n_k n_l}.
///
/// Like the grounded circuit, the structure never depends on the weights
/// (both Shannon branches are present even when a compile-time weight is
/// zero), so one circuit is exact for every weight vector — including
/// zero and negative weights — and evaluation is bit-identical to the
/// direct cell algorithm for every (n, weights).
class LiftedCircuit {
 public:
  using NodeId = std::uint32_t;

  enum class Kind : std::uint8_t { kConst, kWeight, kAnd, kOr, kCount };

  /// One relation of the circuit's (extended, Scott/Skolem) vocabulary,
  /// with its compile-time weights — the defaults Evaluate uses when the
  /// caller passes no replacement vector. Self-contained (no logic::
  /// dependency) so a parsed .lnnf file round-trips without a vocabulary.
  struct Relation {
    std::string name;
    numeric::BigRational positive_weight{1};
    numeric::BigRational negative_weight{1};
  };

  struct Node {
    Kind kind = Kind::kConst;
    /// kConst: slot in the constant pool; kWeight: relation id.
    std::uint32_t index = 0;
    /// kWeight only: which phase of the relation's weight pair.
    bool positive = true;
    /// kCount only: C, the number of cells (children are C + C(C+1)/2).
    std::uint32_t cells = 0;
    std::uint32_t children_begin = 0;  // span into the edge array
    std::uint32_t children_end = 0;
  };

  /// Structural statistics (the `swfomc compile` report's circuit block).
  struct Stats {
    std::uint64_t nodes = 0;
    std::uint64_t constant_nodes = 0;
    std::uint64_t weight_nodes = 0;
    std::uint64_t and_nodes = 0;
    std::uint64_t or_nodes = 0;
    std::uint64_t count_nodes = 0;
    std::uint64_t edges = 0;
    /// Longest root-to-leaf path, in edges (0 when the root is a leaf).
    std::uint64_t depth = 0;
  };

  /// Per-relation weights for one evaluation: weights[id] = (w, w̄).
  using Weights =
      std::vector<std::pair<numeric::BigRational, numeric::BigRational>>;

  LiftedCircuit() = default;

  /// Raw assembly, used by the lifted compiler and the .lnnf parser.
  /// Requirements (std::invalid_argument otherwise): at least one node;
  /// every child id smaller than its parent's id (topological, acyclic);
  /// children spans nested in `edges`; kConst/kWeight childless with
  /// in-range indices; kCount with cells >= 1 and exactly
  /// cells + cells(cells+1)/2 children; `root < nodes.size()`.
  LiftedCircuit(std::vector<Relation> relations,
                std::vector<numeric::BigRational> constants,
                std::vector<Node> nodes, std::vector<NodeId> edges,
                NodeId root);

  const std::vector<Relation>& relations() const { return relations_; }
  const std::vector<numeric::BigRational>& constants() const {
    return constants_;
  }
  std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  std::uint64_t edge_count() const { return edges_.size(); }
  NodeId root() const { return root_; }
  const Node& node(NodeId id) const { return nodes_[id]; }
  std::span<const NodeId> Children(NodeId id) const {
    return {edges_.data() + nodes_[id].children_begin,
            edges_.data() + nodes_[id].children_end};
  }

  /// The compile-time weight pairs, in relation-id order — the identity
  /// element for Evaluate's `weights` parameter.
  Weights DefaultWeights() const;

  /// WFOMC(Φ, n) under the compile-time weights.
  numeric::BigRational Evaluate(std::uint64_t domain_size) const;

  /// WFOMC(Φ, n) under explicit per-relation weights (`weights` must
  /// cover relations().size() relations; zero and negative weights are
  /// fine). `binomials` and `values` are optional caller-owned scratch: a
  /// sweep passes one binomial table so Pascal rows are built once, and a
  /// server passes one value column per thread so steady-state evaluation
  /// allocates only when an individual value outgrows its slot.
  /// Throws std::invalid_argument for domain size 0 (the Scott/Skolem
  /// normal form underlying the circuit assumes a non-empty domain; route
  /// n = 0 to a direct count) and for a short weight vector.
  numeric::BigRational Evaluate(
      std::uint64_t domain_size, const Weights& weights,
      numeric::BinomialTable* binomials = nullptr,
      std::vector<numeric::BigRational>* values = nullptr) const;

  Stats ComputeStats() const;

  /// Resident bytes of the circuit: flat arenas plus the constant pool's
  /// limb buffers and the relation table's strings and weights. Used by
  /// byte-bounded circuit caches (swfomc serve).
  std::size_t MemoryBytes() const;

 private:
  std::vector<Relation> relations_;
  std::vector<numeric::BigRational> constants_;
  std::vector<Node> nodes_;
  std::vector<NodeId> edges_;
  NodeId root_ = 0;
};

}  // namespace swfomc::nnf

#endif  // SWFOMC_NNF_LIFTED_CIRCUIT_H_
