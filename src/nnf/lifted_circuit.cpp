#include "nnf/lifted_circuit.h"

#include <stdexcept>
#include <string>

namespace swfomc::nnf {

using numeric::BigRational;

namespace {

// Children of a kCount node: the C cell weights u_0..u_{C-1} first, then
// the upper-triangular pair sums r_kl for k <= l, row-major.
std::size_t PairSlot(std::size_t cells, std::size_t k, std::size_t l) {
  return cells + k * cells - k * (k - 1) / 2 + (l - k);
}

std::size_t CountChildren(std::size_t cells) {
  return cells + cells * (cells + 1) / 2;
}

}  // namespace

LiftedCircuit::LiftedCircuit(std::vector<Relation> relations,
                             std::vector<BigRational> constants,
                             std::vector<Node> nodes, std::vector<NodeId> edges,
                             NodeId root)
    : relations_(std::move(relations)),
      constants_(std::move(constants)),
      nodes_(std::move(nodes)),
      edges_(std::move(edges)),
      root_(root) {
  if (nodes_.empty()) {
    throw std::invalid_argument("LiftedCircuit: a circuit needs at least one node");
  }
  if (root_ >= nodes_.size()) {
    throw std::invalid_argument("LiftedCircuit: root out of range");
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    if (node.children_begin > node.children_end ||
        node.children_end > edges_.size()) {
      throw std::invalid_argument("LiftedCircuit: children span out of range");
    }
    std::size_t arity = node.children_end - node.children_begin;
    switch (node.kind) {
      case Kind::kConst:
        if (node.index >= constants_.size()) {
          throw std::invalid_argument(
              "LiftedCircuit: constant index out of range");
        }
        if (arity != 0) {
          throw std::invalid_argument("LiftedCircuit: constants are childless");
        }
        break;
      case Kind::kWeight:
        if (node.index >= relations_.size()) {
          throw std::invalid_argument(
              "LiftedCircuit: weight relation out of range");
        }
        if (arity != 0) {
          throw std::invalid_argument("LiftedCircuit: weights are childless");
        }
        break;
      case Kind::kAnd:
      case Kind::kOr:
        break;
      case Kind::kCount:
        if (node.cells == 0) {
          throw std::invalid_argument(
              "LiftedCircuit: counting node needs at least one cell");
        }
        if (arity != CountChildren(node.cells)) {
          throw std::invalid_argument(
              "LiftedCircuit: counting node over C cells needs "
              "C + C(C+1)/2 children");
        }
        break;
    }
    for (NodeId child : Children(id)) {
      if (child >= id) {
        throw std::invalid_argument(
            "LiftedCircuit: child does not precede its parent");
      }
    }
  }
}

LiftedCircuit::Weights LiftedCircuit::DefaultWeights() const {
  Weights weights;
  weights.reserve(relations_.size());
  for (const Relation& relation : relations_) {
    weights.emplace_back(relation.positive_weight, relation.negative_weight);
  }
  return weights;
}

BigRational LiftedCircuit::Evaluate(std::uint64_t domain_size) const {
  return Evaluate(domain_size, DefaultWeights());
}

BigRational LiftedCircuit::Evaluate(
    std::uint64_t domain_size, const Weights& weights,
    numeric::BinomialTable* binomials,
    std::vector<BigRational>* values) const {
  if (domain_size == 0) {
    throw std::invalid_argument(
        "LiftedCircuit::Evaluate: domain size 0 is outside the circuit's "
        "validity range (the Scott/Skolem normal form assumes n >= 1)");
  }
  if (weights.size() < relations_.size()) {
    throw std::invalid_argument(
        "LiftedCircuit::Evaluate: weight vector covers fewer relations "
        "than the circuit names");
  }
  numeric::BinomialTable local_binomials;
  if (binomials == nullptr) binomials = &local_binomials;
  std::vector<BigRational> local_values;
  if (values == nullptr) values = &local_values;
  values->resize(nodes_.size());
  std::vector<BigRational>& value = *values;

  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    switch (node.kind) {
      case Kind::kConst:
        value[id] = constants_[node.index];
        break;
      case Kind::kWeight:
        value[id] = node.positive ? weights[node.index].first
                                  : weights[node.index].second;
        break;
      case Kind::kAnd: {
        BigRational product(1);
        for (NodeId child : Children(id)) product *= value[child];
        value[id] = std::move(product);
        break;
      }
      case Kind::kOr: {
        BigRational sum;
        for (NodeId child : Children(id)) sum += value[child];
        value[id] = std::move(sum);
        break;
      }
      case Kind::kCount: {
        // Appendix C's composition sum, with the cell weights u_l and
        // pair sums r_kl already evaluated in the children. This is the
        // same loop as the direct cell algorithm's SolveMatrix, so the
        // result is bit-identical to a direct count.
        std::span<const NodeId> children = Children(id);
        std::size_t cells = node.cells;
        std::uint64_t n = domain_size;
        BigRational total;
        numeric::ForEachComposition(
            n, cells,
            [&](const std::vector<std::uint64_t>& counts) -> bool {
              BigRational term(binomials->Multinomial(n, counts));
              for (std::size_t l = 0; l < cells && !term.IsZero(); ++l) {
                if (counts[l] == 0) continue;
                term *= BigRational::Pow(
                    value[children[l]], static_cast<std::int64_t>(counts[l]));
                if (counts[l] >= 2) {
                  term *= BigRational::Pow(
                      value[children[PairSlot(cells, l, l)]],
                      static_cast<std::int64_t>(counts[l] * (counts[l] - 1) /
                                                2));
                }
                for (std::size_t k = 0; k < l; ++k) {
                  if (counts[k] == 0) continue;
                  term *= BigRational::Pow(
                      value[children[PairSlot(cells, k, l)]],
                      static_cast<std::int64_t>(counts[k] * counts[l]));
                }
              }
              total += term;
              return true;
            });
        value[id] = std::move(total);
        break;
      }
    }
  }
  return value[root_];
}

LiftedCircuit::Stats LiftedCircuit::ComputeStats() const {
  Stats stats;
  stats.nodes = nodes_.size();
  stats.edges = edges_.size();
  std::vector<std::uint64_t> depth(nodes_.size(), 0);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    switch (node.kind) {
      case Kind::kConst: ++stats.constant_nodes; break;
      case Kind::kWeight: ++stats.weight_nodes; break;
      case Kind::kAnd: ++stats.and_nodes; break;
      case Kind::kOr: ++stats.or_nodes; break;
      case Kind::kCount: ++stats.count_nodes; break;
    }
    for (NodeId child : Children(id)) {
      if (depth[child] + 1 > depth[id]) depth[id] = depth[child] + 1;
    }
  }
  stats.depth = depth[root_];
  return stats;
}

std::size_t LiftedCircuit::MemoryBytes() const {
  std::size_t bytes = nodes_.capacity() * sizeof(Node) +
                      edges_.capacity() * sizeof(NodeId) +
                      constants_.capacity() * sizeof(BigRational) +
                      relations_.capacity() * sizeof(Relation);
  for (const BigRational& constant : constants_) {
    bytes += constant.HeapBytes();
  }
  for (const Relation& relation : relations_) {
    bytes += relation.name.capacity() + relation.positive_weight.HeapBytes() +
             relation.negative_weight.HeapBytes();
  }
  return bytes;
}

}  // namespace swfomc::nnf
