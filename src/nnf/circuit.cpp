#include "nnf/circuit.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

namespace swfomc::nnf {

namespace {

using numeric::BigRational;
using prop::LitPositive;
using prop::LitVariable;
using prop::VarId;

std::string NodeName(Circuit::NodeId id) {
  return "node " + std::to_string(id);
}

}  // namespace

Circuit::Circuit(std::uint32_t variable_count, std::vector<Node> nodes,
                 std::vector<NodeId> edges, NodeId root)
    : variable_count_(variable_count),
      nodes_(std::move(nodes)),
      edges_(std::move(edges)),
      root_(root) {
  if (nodes_.empty()) {
    throw std::invalid_argument("Circuit: no nodes");
  }
  if (root_ >= nodes_.size()) {
    throw std::invalid_argument("Circuit: root out of range");
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    if (node.children_begin > node.children_end ||
        node.children_end > edges_.size()) {
      throw std::invalid_argument("Circuit: bad children span at " +
                                  NodeName(id));
    }
    bool childless = node.children_begin == node.children_end;
    switch (node.kind) {
      case NodeKind::kTrue:
      case NodeKind::kFalse:
        if (!childless) {
          throw std::invalid_argument("Circuit: constant with children at " +
                                      NodeName(id));
        }
        break;
      case NodeKind::kLiteral:
        if (!childless) {
          throw std::invalid_argument("Circuit: literal with children at " +
                                      NodeName(id));
        }
        if (LitVariable(node.literal) >= variable_count_) {
          throw std::invalid_argument(
              "Circuit: literal variable out of range at " + NodeName(id));
        }
        break;
      case NodeKind::kOr:
        if (node.decision != kNoDecision &&
            node.decision >= variable_count_) {
          throw std::invalid_argument(
              "Circuit: decision variable out of range at " + NodeName(id));
        }
        [[fallthrough]];
      case NodeKind::kAnd:
        for (std::uint32_t e = node.children_begin; e < node.children_end;
             ++e) {
          if (edges_[e] >= id) {
            throw std::invalid_argument(
                "Circuit: child does not precede its parent at " +
                NodeName(id));
          }
        }
        break;
    }
  }
  AnalyzeStructure();
}

void Circuit::AnalyzeStructure() {
  // One bitset pass building the per-node variable sets (kept for
  // Evaluate's fast path and for Validate) and deciding whether the
  // integer-scaled evaluation is sound: every AND must be
  // variable-disjoint and every OR smooth (all children with the same
  // variable set), in which case each product term of a node covers its
  // variable set with exactly one literal — so clearing each variable's
  // weight denominator scales the total by one known factor.
  varset_words_ = (static_cast<std::size_t>(variable_count_) + 63) / 64;
  varsets_.assign(nodes_.size() * varset_words_, 0);
  scalable_ = true;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    std::uint64_t* set =
        varsets_.data() + static_cast<std::size_t>(id) * varset_words_;
    switch (node.kind) {
      case NodeKind::kTrue:
      case NodeKind::kFalse:
        break;
      case NodeKind::kLiteral: {
        prop::VarId v = LitVariable(node.literal);
        set[v / 64] |= std::uint64_t{1} << (v % 64);
        break;
      }
      case NodeKind::kAnd:
        for (NodeId child : Children(id)) {
          std::span<const std::uint64_t> child_set = Varset(child);
          for (std::size_t w = 0; w < varset_words_; ++w) {
            if ((set[w] & child_set[w]) != 0) scalable_ = false;
            set[w] |= child_set[w];
          }
        }
        break;
      case NodeKind::kOr: {
        std::span<const NodeId> children = Children(id);
        for (NodeId child : children) {
          std::span<const std::uint64_t> child_set = Varset(child);
          for (std::size_t w = 0; w < varset_words_; ++w) {
            if (child != children.front() &&
                set[w] != child_set[w]) {
              scalable_ = false;
            }
            set[w] |= child_set[w];
          }
        }
        break;
      }
    }
  }
}

numeric::BigRational Circuit::Evaluate(const wmc::WeightMap& weights) const {
  EvalArena arena;
  return Evaluate(weights, &arena);
}

numeric::BigRational Circuit::Evaluate(const wmc::WeightMap& weights,
                                       EvalArena* arena) const {
  if (weights.size() < variable_count_) {
    throw std::invalid_argument(
        "Circuit::Evaluate: weight map covers " +
        std::to_string(weights.size()) + " of " +
        std::to_string(variable_count_) + " variables");
  }
  return scalable_ ? EvaluateScaled(weights, arena)
                   : EvaluateRational(weights, arena);
}

numeric::BigRational Circuit::EvaluateScaled(const wmc::WeightMap& weights,
                                             EvalArena* arena) const {
  using numeric::BigInt;
  // Clear denominators per covered variable: scale both phases of v by
  // d_v = lcm(den(w_v), den(w̄_v)). Each root product term picks exactly
  // one literal per covered variable (that is what scalable_ certifies),
  // so the root total is scaled by exactly Π d_v — divide once at the
  // end. The pass itself is pure BigInt arithmetic: no per-node gcd.
  std::vector<BigInt>& scaled_positive = arena->scaled_positive;
  std::vector<BigInt>& scaled_negative = arena->scaled_negative;
  scaled_positive.resize(variable_count_);
  scaled_negative.resize(variable_count_);
  std::span<const std::uint64_t> root_varset = Varset(root_);
  BigInt denominator(1);
  for (prop::VarId v = 0; v < variable_count_; ++v) {
    if ((root_varset[v / 64] & (std::uint64_t{1} << (v % 64))) == 0) {
      // Not under the root: zero the slot — a literal node outside the
      // root's cone may still read it, and the arena can hold values
      // from a previous evaluation.
      scaled_positive[v] = BigInt(0);
      scaled_negative[v] = BigInt(0);
      continue;
    }
    const wmc::VariableWeights& weight = weights.Get(v);
    const BigInt& positive_den = weight.positive.denominator();
    const BigInt& negative_den = weight.negative.denominator();
    BigInt lcm =
        positive_den * (negative_den / BigInt::Gcd(positive_den,
                                                   negative_den));
    scaled_positive[v] = weight.positive.numerator() * (lcm / positive_den);
    scaled_negative[v] = weight.negative.numerator() * (lcm / negative_den);
    denominator *= lcm;
  }
  std::vector<BigInt>& value = arena->integer_values;
  value.resize(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    switch (node.kind) {
      case NodeKind::kTrue:
        value[id] = BigInt(1);
        break;
      case NodeKind::kFalse:
        // Explicit: the arena slot may hold a previous evaluation's value.
        value[id] = BigInt(0);
        break;
      case NodeKind::kLiteral: {
        prop::VarId v = LitVariable(node.literal);
        value[id] = LitPositive(node.literal) ? scaled_positive[v]
                                              : scaled_negative[v];
        break;
      }
      case NodeKind::kAnd: {
        BigInt product(1);
        for (NodeId child : Children(id)) product *= value[child];
        value[id] = std::move(product);
        break;
      }
      case NodeKind::kOr: {
        BigInt sum;
        for (NodeId child : Children(id)) sum += value[child];
        value[id] = std::move(sum);
        break;
      }
    }
  }
  // Moving the root value out leaves a valid (zero) slot; every slot is
  // rewritten before it is read on the next evaluation.
  return BigRational(std::move(value[root_]), std::move(denominator));
}

numeric::BigRational Circuit::EvaluateRational(const wmc::WeightMap& weights,
                                               EvalArena* arena) const {
  std::vector<BigRational>& value = arena->rational_values;
  value.resize(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    switch (node.kind) {
      case NodeKind::kTrue:
        value[id] = BigRational(1);
        break;
      case NodeKind::kFalse:
        value[id] = BigRational(0);
        break;
      case NodeKind::kLiteral:
        value[id] = weights.LiteralWeight(LitVariable(node.literal),
                                          LitPositive(node.literal));
        break;
      case NodeKind::kAnd: {
        BigRational product(1);
        for (NodeId child : Children(id)) product *= value[child];
        value[id] = std::move(product);
        break;
      }
      case NodeKind::kOr: {
        BigRational sum;
        for (NodeId child : Children(id)) sum += value[child];
        value[id] = std::move(sum);
        break;
      }
    }
  }
  BigRational result = std::move(value[root_]);
  value[root_] = BigRational(0);  // keep every arena slot a valid value
  return result;
}

Circuit::Stats Circuit::ComputeStats() const {
  Stats stats;
  stats.nodes = nodes_.size();
  stats.edges = edges_.size();
  std::vector<std::uint64_t> depth(nodes_.size(), 0);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    switch (node.kind) {
      case NodeKind::kTrue:
      case NodeKind::kFalse:
        ++stats.constant_nodes;
        break;
      case NodeKind::kLiteral:
        ++stats.literal_nodes;
        break;
      case NodeKind::kAnd:
        ++stats.and_nodes;
        break;
      case NodeKind::kOr:
        ++stats.or_nodes;
        break;
    }
    for (NodeId child : Children(id)) {
      depth[id] = std::max(depth[id], depth[child] + 1);
    }
  }
  stats.depth = depth[root_];
  return stats;
}

namespace {

// One surface literal of an OR child: the child itself when it is a
// literal node, or a direct literal child of an AND child. Determinism is
// witnessed at this depth for decision-traced circuits (every branch
// starts with its decision literal) and for c2d-style output.
struct FixedPhase {
  VarId variable;
  bool positive;
};

void SurfaceLiterals(const Circuit& circuit, Circuit::NodeId id,
                     std::vector<FixedPhase>* out) {
  out->clear();
  const Circuit::Node& node = circuit.node(id);
  if (node.kind == NodeKind::kLiteral) {
    out->push_back(
        {LitVariable(node.literal), LitPositive(node.literal)});
    return;
  }
  if (node.kind != NodeKind::kAnd) return;
  for (Circuit::NodeId child : circuit.Children(id)) {
    const Circuit::Node& grand = circuit.node(child);
    if (grand.kind == NodeKind::kLiteral) {
      out->push_back(
          {LitVariable(grand.literal), LitPositive(grand.literal)});
    }
  }
}

bool ConflictingPhase(const std::vector<FixedPhase>& a,
                      const std::vector<FixedPhase>& b) {
  for (const FixedPhase& pa : a) {
    for (const FixedPhase& pb : b) {
      if (pa.variable == pb.variable && pa.positive != pb.positive) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

bool Circuit::Validate(std::string* error) const {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  // The per-node variable sets were built once at construction
  // (AnalyzeStructure); the audit only re-walks AND children against a
  // scratch accumulator to name the shared variable of a violation.
  std::vector<std::uint64_t> accumulated(varset_words_);
  std::vector<FixedPhase> phases_a;
  std::vector<FixedPhase> phases_b;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    switch (node.kind) {
      case NodeKind::kTrue:
      case NodeKind::kFalse:
      case NodeKind::kLiteral:
        break;
      case NodeKind::kAnd: {
        std::fill(accumulated.begin(), accumulated.end(), 0);
        for (NodeId child : Children(id)) {
          std::span<const std::uint64_t> child_set = Varset(child);
          for (std::size_t w = 0; w < varset_words_; ++w) {
            if ((accumulated[w] & child_set[w]) != 0) {
              return fail("AND " + NodeName(id) +
                          " is not decomposable: children share variable " +
                          std::to_string(
                              w * 64 +
                              static_cast<std::size_t>(std::countr_zero(
                                  accumulated[w] & child_set[w]))));
            }
            accumulated[w] |= child_set[w];
          }
        }
        break;
      }
      case NodeKind::kOr: {
        std::span<const NodeId> children = Children(id);
        if (node.decision != kNoDecision) {
          // Decision-annotated OR: every child must fix the decision
          // variable, one phase per child.
          bool seen[2] = {false, false};
          for (NodeId child : children) {
            SurfaceLiterals(*this, child, &phases_a);
            bool fixes = false;
            for (const FixedPhase& phase : phases_a) {
              if (phase.variable != node.decision) continue;
              fixes = true;
              if (seen[phase.positive ? 1 : 0]) {
                return fail("OR " + NodeName(id) +
                            " is not deterministic: two children fix "
                            "decision variable " +
                            std::to_string(node.decision) +
                            " to the same phase");
              }
              seen[phase.positive ? 1 : 0] = true;
            }
            if (!fixes) {
              return fail("OR " + NodeName(id) + ": child " +
                          NodeName(child) +
                          " does not fix the decision variable " +
                          std::to_string(node.decision));
            }
          }
        } else {
          // No recorded decision: require a conflicting surface literal
          // for every pair of children.
          for (std::size_t i = 0; i < children.size(); ++i) {
            SurfaceLiterals(*this, children[i], &phases_a);
            for (std::size_t j = i + 1; j < children.size(); ++j) {
              SurfaceLiterals(*this, children[j], &phases_b);
              if (!ConflictingPhase(phases_a, phases_b)) {
                return fail("OR " + NodeName(id) +
                            " is not deterministic: children " +
                            NodeName(children[i]) + " and " +
                            NodeName(children[j]) +
                            " have no conflicting literal");
              }
            }
          }
        }
        break;
      }
    }
  }
  return true;
}

}  // namespace swfomc::nnf
