#include "transforms/skolemization.h"

#include <stdexcept>

#include "logic/transform.h"

namespace swfomc::transforms {

namespace {

using logic::Formula;
using logic::FormulaKind;

// Finds an innermost existential subformula (one containing no other
// existential); returns nullptr when none exists. The input is in NNF, so
// every existential occurs positively.
Formula FindInnermostExists(const Formula& formula) {
  for (const Formula& child : formula->children()) {
    Formula found = FindInnermostExists(child);
    if (found != nullptr) return found;
  }
  if (formula->kind() == FormulaKind::kExists) return formula;
  return nullptr;
}

// Replaces occurrences of `target` (by pointer identity) with
// `replacement`. Pointer-shared occurrences denote the same formula of the
// same named variables, so replacing all of them with one Skolem atom is
// sound (they share one guard sentence).
Formula ReplaceNode(const Formula& formula, const Formula& target,
                    const Formula& replacement) {
  if (formula.get() == target.get()) return replacement;
  if (formula->children().empty()) return formula;
  std::vector<Formula> children;
  children.reserve(formula->children().size());
  bool changed = false;
  for (const Formula& child : formula->children()) {
    Formula mapped = ReplaceNode(child, target, replacement);
    changed |= mapped.get() != child.get();
    children.push_back(std::move(mapped));
  }
  if (!changed) return formula;
  switch (formula->kind()) {
    case FormulaKind::kNot:
      return Not(children[0]);
    case FormulaKind::kAnd:
      return And(std::move(children));
    case FormulaKind::kOr:
      return Or(std::move(children));
    case FormulaKind::kImplies:
      return Implies(children[0], children[1]);
    case FormulaKind::kIff:
      return Iff(children[0], children[1]);
    case FormulaKind::kForall:
      return Forall(formula->variable(), children[0]);
    case FormulaKind::kExists:
      return Exists(formula->variable(), children[0]);
    default:
      throw std::logic_error("ReplaceNode: unreachable");
  }
}

}  // namespace

RewriteResult Skolemize(const logic::Formula& sentence,
                        const logic::Vocabulary& vocabulary) {
  RewriteResult result;
  result.vocabulary = vocabulary;
  Formula current = logic::ToNNF(sentence);

  // Each round eliminates one innermost existential occurrence ∃v ψ(x⃗,v)
  // (positive, since the formula is in NNF) by the cancellation gadget:
  //   * the occurrence is replaced in place by Z(x⃗), w(Z) = w̄(Z) = 1;
  //   * guards ∀x⃗∀v (Z(x⃗) ∨ ¬ψ), ∀x⃗∀v (Sk(x⃗) ∨ ¬ψ) and
  //     ∀x⃗ (Z(x⃗) ∨ Sk(x⃗)) are conjoined, with w(Sk) = 1, w̄(Sk) = -1.
  // For a tuple a⃗ where ∃v ψ(a⃗,v) holds, Z(a⃗) and Sk(a⃗) are forced
  // true (factor +1). Where it fails, the allowed assignments are
  // (Z,Sk) ∈ {(1,1), (1,0), (0,1)} with weights +1, -1, +1: the two
  // Z-true worlds cancel and the truthful Z-false world survives — the
  // same pairing the paper uses in Lemma 3.4, needed here because the
  // replaced occurrence may sit under other connectives (the bare
  // Lemma 3.3 statement covers the prenex ∀*∃ case, where the original
  // constraint is dropped; in-place replacement requires the full
  // gadget).
  //
  // Rounds terminate because the guard bodies ¬ψ dualize ψ's quantifiers
  // at strictly smaller depth than the eliminated occurrence. The cap is
  // a safety net against a logic bug, not an expected exit.
  for (std::size_t round = 0; round < 10000; ++round) {
    Formula target = FindInnermostExists(current);
    if (target == nullptr) break;

    std::set<std::string> free_vars = logic::FreeVariables(target);
    std::vector<std::string> params(free_vars.begin(), free_vars.end());
    std::vector<logic::Term> args;
    args.reserve(params.size());
    for (const std::string& p : params) {
      args.push_back(logic::Term::Var(p));
    }
    logic::RelationId z_id = result.vocabulary.AddRelation(
        result.vocabulary.FreshName("Z"), params.size(),
        numeric::BigRational(1), numeric::BigRational(1));
    logic::RelationId sk_id = result.vocabulary.AddRelation(
        result.vocabulary.FreshName("Sk"), params.size(),
        numeric::BigRational(1), numeric::BigRational(-1));
    Formula z_atom = logic::Atom(z_id, args);
    Formula sk_atom = logic::Atom(sk_id, args);
    Formula body = target->child();

    current = ReplaceNode(current, target, z_atom);
    // ∀ params ∀ v (Z ∨ ¬ψ) ∧ (Sk ∨ ¬ψ), then ∀ params (Z ∨ Sk). The
    // re-normalized ¬ψ may surface fresh existentials; later rounds
    // eliminate them.
    Formula negated_body = logic::ToNNF(Not(body));
    std::vector<std::string> quantified = params;
    quantified.push_back(target->variable());
    current = And(current,
                  Forall(quantified,
                         And(Or(z_atom, negated_body),
                             Or(sk_atom, negated_body))));
    current = And(current, params.empty()
                               ? Or(z_atom, sk_atom)
                               : Forall(params, Or(z_atom, sk_atom)));
  }

  if (FindInnermostExists(current) != nullptr) {
    throw std::runtime_error("Skolemize: did not converge");
  }
  result.sentence = std::move(current);
  return result;
}

}  // namespace swfomc::transforms
