#ifndef SWFOMC_TRANSFORMS_NEGATION_REMOVAL_H_
#define SWFOMC_TRANSFORMS_NEGATION_REMOVAL_H_

#include "transforms/skolemization.h"

namespace swfomc::transforms {

/// Lemma 3.4: given a sentence in prenex form with quantifier prefix ∀*,
/// produces a *positive* sentence (no negations anywhere) over an extended
/// weighted vocabulary with the same WFOMC for every n.
///
/// Every negated subformula ¬ψ(x⃗) in the (NNF) matrix is replaced by a
/// fresh atom A(x⃗), and the matrix gains the conjunct
/// (ψ ∨ A) ∧ (A ∨ B) ∧ (ψ ∨ B) with weights w_A = w̄_A = w_B = 1,
/// w̄_B = -1: when ¬ψ(a⃗) ≡ A(a⃗) the B-atom is forced true contributing
/// +1; when ψ(a⃗) and A(a⃗) both hold, B(a⃗) is free and the two worlds
/// cancel.
///
/// Throws std::invalid_argument when the input is not a ∀* prenex sentence
/// (Skolemize first — Lemma 3.3 — to reach that form).
RewriteResult RemoveNegations(const logic::Formula& sentence,
                              const logic::Vocabulary& vocabulary);

}  // namespace swfomc::transforms

#endif  // SWFOMC_TRANSFORMS_NEGATION_REMOVAL_H_
