#include "transforms/negation_removal.h"

#include <stdexcept>

#include "logic/transform.h"

namespace swfomc::transforms {

namespace {

using logic::Formula;
using logic::FormulaKind;

// Finds a negation node in a quantifier-free NNF matrix (child is an atom
// or equality); nullptr when the matrix is positive.
Formula FindNegation(const Formula& formula) {
  if (formula->kind() == FormulaKind::kNot) return formula;
  for (const Formula& child : formula->children()) {
    Formula found = FindNegation(child);
    if (found != nullptr) return found;
  }
  return nullptr;
}

Formula ReplaceNode(const Formula& formula, const Formula& target,
                    const Formula& replacement) {
  if (formula.get() == target.get()) return replacement;
  if (formula->children().empty()) return formula;
  std::vector<Formula> children;
  children.reserve(formula->children().size());
  bool changed = false;
  for (const Formula& child : formula->children()) {
    Formula mapped = ReplaceNode(child, target, replacement);
    changed |= mapped.get() != child.get();
    children.push_back(std::move(mapped));
  }
  if (!changed) return formula;
  switch (formula->kind()) {
    case FormulaKind::kNot:
      return Not(children[0]);
    case FormulaKind::kAnd:
      return And(std::move(children));
    case FormulaKind::kOr:
      return Or(std::move(children));
    default:
      throw std::logic_error(
          "RemoveNegations: unexpected node in quantifier-free NNF matrix");
  }
}

}  // namespace

RewriteResult RemoveNegations(const logic::Formula& sentence,
                              const logic::Vocabulary& vocabulary) {
  // Normalize to prenex first: Skolemize emits a *conjunction* of ∀*
  // sentences (the rewritten formula plus its guards), and ∀ distributes
  // over ∧, so the conjunction prenexes into a single ∀* sentence.
  std::size_t counter = 0;
  logic::PrenexForm prenex = logic::ToPrenex(sentence, &counter);
  std::vector<std::string> prefix;
  for (const logic::PrenexForm::QuantifiedVar& q : prenex.prefix) {
    if (!q.is_forall) {
      throw std::invalid_argument(
          "RemoveNegations: input must be a prenex ∀* sentence "
          "(apply Skolemize first)");
    }
    prefix.push_back(q.variable);
  }
  Formula matrix = logic::ToNNF(prenex.matrix);

  RewriteResult result;
  result.vocabulary = vocabulary;

  std::vector<Formula> delta_conjuncts;
  for (;;) {
    Formula negation = FindNegation(matrix);
    if (negation == nullptr) break;
    Formula psi = negation->child();  // positive atom or equality

    std::set<std::string> free_vars = logic::FreeVariables(psi);
    std::vector<logic::Term> args;
    args.reserve(free_vars.size());
    for (const std::string& v : free_vars) {
      args.push_back(logic::Term::Var(v));
    }
    logic::RelationId a_id = result.vocabulary.AddRelation(
        result.vocabulary.FreshName("NegA"), args.size(),
        numeric::BigRational(1), numeric::BigRational(1));
    logic::RelationId b_id = result.vocabulary.AddRelation(
        result.vocabulary.FreshName("NegB"), args.size(),
        numeric::BigRational(1), numeric::BigRational(-1));
    Formula a_atom = logic::Atom(a_id, args);
    Formula b_atom = logic::Atom(b_id, args);

    matrix = ReplaceNode(matrix, negation, a_atom);
    // Δ-matrix from Eq. (7): (ψ ∨ A) ∧ (A ∨ B) ∧ (ψ ∨ B). Its free
    // variables are among the existing prefix, so all Δs share the prefix.
    delta_conjuncts.push_back(logic::And(std::vector<Formula>{
        Or(psi, a_atom), Or(a_atom, b_atom), Or(psi, b_atom)}));
  }

  std::vector<Formula> all{matrix};
  for (Formula& d : delta_conjuncts) all.push_back(std::move(d));
  result.sentence = Forall(prefix, And(std::move(all)));
  return result;
}

}  // namespace swfomc::transforms
