#include "transforms/equality_removal.h"

#include <stdexcept>

#include "numeric/polynomial.h"

namespace swfomc::transforms {

namespace {

using logic::Formula;
using logic::FormulaKind;

Formula ReplaceEquality(const Formula& formula, logic::RelationId e_id) {
  switch (formula->kind()) {
    case FormulaKind::kEquality:
      return logic::Atom(e_id, formula->arguments());
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kAtom:
      return formula;
    default: {
      std::vector<Formula> children;
      children.reserve(formula->children().size());
      for (const Formula& child : formula->children()) {
        children.push_back(ReplaceEquality(child, e_id));
      }
      switch (formula->kind()) {
        case FormulaKind::kNot:
          return Not(children[0]);
        case FormulaKind::kAnd:
          return And(std::move(children));
        case FormulaKind::kOr:
          return Or(std::move(children));
        case FormulaKind::kImplies:
          return Implies(children[0], children[1]);
        case FormulaKind::kIff:
          return Iff(children[0], children[1]);
        case FormulaKind::kForall:
          return Forall(formula->variable(), children[0]);
        case FormulaKind::kExists:
          return Exists(formula->variable(), children[0]);
        default:
          throw std::logic_error("ReplaceEquality: unreachable");
      }
    }
  }
}

}  // namespace

EqualityRemovalResult RemoveEquality(const logic::Formula& sentence,
                                     const logic::Vocabulary& vocabulary) {
  EqualityRemovalResult result;
  result.vocabulary = vocabulary;
  std::string name = result.vocabulary.FreshName("Eq");
  // Placeholder weight (1, 1); the recovery procedure re-binds w(E).
  result.equality_relation = result.vocabulary.AddRelation(name, 2);
  Formula rewritten = ReplaceEquality(sentence, result.equality_relation);
  Formula reflexivity = logic::Forall(
      "veq", logic::Atom(result.equality_relation,
                         {logic::Term::Var("veq"), logic::Term::Var("veq")}));
  result.sentence = And(std::move(rewritten), std::move(reflexivity));
  return result;
}

numeric::BigRational WFOMCViaEqualityRemoval(
    const logic::Formula& sentence, const logic::Vocabulary& vocabulary,
    std::uint64_t domain_size, const WfomcOracle& oracle) {
  EqualityRemovalResult rewrite = RemoveEquality(sentence, vocabulary);
  std::uint64_t degree = domain_size * domain_size;
  std::vector<std::pair<numeric::BigRational, numeric::BigRational>> points;
  points.reserve(degree + 1);
  for (std::uint64_t z = 0; z <= degree; ++z) {
    logic::Vocabulary bound = rewrite.vocabulary;
    bound.SetWeights(rewrite.equality_relation,
                     numeric::BigRational(static_cast<std::int64_t>(z)), 1);
    points.emplace_back(
        numeric::BigRational(static_cast<std::int64_t>(z)),
        oracle(rewrite.sentence, bound, domain_size));
  }
  numeric::Polynomial f = numeric::Polynomial::Interpolate(points);
  if (f.Degree() > degree) {
    throw std::logic_error("WFOMCViaEqualityRemoval: degree bound violated");
  }
  // All monomials must have degree >= n; the coefficient of z^n is the
  // answer (worlds where |E| = n, i.e. E is exactly the diagonal).
  for (std::uint64_t k = 0; k < domain_size; ++k) {
    if (!f.Coefficient(k).IsZero()) {
      throw std::logic_error(
          "WFOMCViaEqualityRemoval: low-degree monomial present");
    }
  }
  return f.Coefficient(domain_size);
}

}  // namespace swfomc::transforms
