#ifndef SWFOMC_TRANSFORMS_EQUALITY_REMOVAL_H_
#define SWFOMC_TRANSFORMS_EQUALITY_REMOVAL_H_

#include <functional>

#include "numeric/rational.h"
#include "transforms/skolemization.h"

namespace swfomc::transforms {

/// Lemma 3.5, structural part: replaces every equality atom x = y by
/// E(x, y) for a fresh binary relation E and conjoins ∀x E(x, x). The
/// weight w(E) is a free parameter z (w̄(E) = 1); the returned vocabulary
/// carries a placeholder weight that callers of the recovery procedure
/// below re-bind per evaluation point.
struct EqualityRemovalResult {
  logic::Formula sentence;
  logic::Vocabulary vocabulary;
  logic::RelationId equality_relation;
};

EqualityRemovalResult RemoveEquality(const logic::Formula& sentence,
                                     const logic::Vocabulary& vocabulary);

/// An oracle computing WFOMC(Φ', n, w') for the rewritten, equality-free
/// sentence (e.g. grounding::GroundedWFOMC, or a lifted algorithm).
using WfomcOracle = std::function<numeric::BigRational(
    const logic::Formula&, const logic::Vocabulary&, std::uint64_t)>;

/// Lemma 3.5, recovery part: WFOMC(Φ, n, w, w̄) equals the coefficient of
/// z^n in f(z) = WFOMC(Φ', n, w ∪ {w_E = z}), a polynomial of degree ≤ n²
/// all of whose monomials have degree ≥ n (∀x E(x,x) forces |E| ≥ n).
///
/// The paper extracts the coefficient with n+1 oracle calls and a finite-
/// difference/limit argument; this implementation uses exact polynomial
/// interpolation at z = 0..n² instead (n²+1 calls — still polynomial, and
/// exact over the rationals with no limit step). EXPERIMENTS.md discusses
/// the substitution.
numeric::BigRational WFOMCViaEqualityRemoval(
    const logic::Formula& sentence, const logic::Vocabulary& vocabulary,
    std::uint64_t domain_size, const WfomcOracle& oracle);

}  // namespace swfomc::transforms

#endif  // SWFOMC_TRANSFORMS_EQUALITY_REMOVAL_H_
