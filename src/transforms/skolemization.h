#ifndef SWFOMC_TRANSFORMS_SKOLEMIZATION_H_
#define SWFOMC_TRANSFORMS_SKOLEMIZATION_H_

#include "logic/formula.h"
#include "logic/vocabulary.h"

namespace swfomc::transforms {

/// Result of a WFOMC-preserving rewriting: a new sentence over an
/// *extended* weighted vocabulary such that
/// WFOMC(sentence', n, w', w̄') == WFOMC(sentence, n, w, w̄) for all n.
struct RewriteResult {
  logic::Formula sentence;
  logic::Vocabulary vocabulary;
};

/// Lemma 3.3 (Skolemization for WFOMC, after Van den Broeck-Meert-Darwiche
/// KR'14): eliminates every existential quantifier. Each innermost
/// subformula ∃v ψ(u⃗,v) (in NNF, so every occurrence is positive) is
/// replaced in place by a fresh atom Z(u⃗) with w(Z) = w̄(Z) = 1, guarded
/// by ∀u⃗∀v (Z(u⃗) ∨ ¬ψ) ∧ (Sk(u⃗) ∨ ¬ψ) and ∀u⃗ (Z(u⃗) ∨ Sk(u⃗)) for a
/// second fresh atom Sk with w(Sk) = 1, w̄(Sk) = -1. Where the existential
/// holds, Z and Sk are forced true (factor +1); where it fails, the world
/// with Z true pairs off against Sk's negative weight and only the
/// truthful Z-false world survives — the Lemma 3.4 cancellation pattern,
/// required because the occurrence may sit under other connectives. (The
/// paper's bare Lemma 3.3 form, which drops the original constraint,
/// covers only the prenex ∀*∃ case.)
///
/// The output contains only universal quantifiers. Note the *unweighted*
/// model count is NOT preserved (Section 3.1 explains why it cannot be) —
/// only WFOMC with the stated weights is.
RewriteResult Skolemize(const logic::Formula& sentence,
                        const logic::Vocabulary& vocabulary);

}  // namespace swfomc::transforms

#endif  // SWFOMC_TRANSFORMS_SKOLEMIZATION_H_
