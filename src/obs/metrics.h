#ifndef SWFOMC_OBS_METRICS_H_
#define SWFOMC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

// Process-wide metrics: counters, gauges, and log-bucketed histograms
// behind a name-keyed registry. The design splits into a cold control
// plane (registration, scrape — mutex-guarded, rare) and a hot data
// plane (increments — a relaxed atomic add on a thread-local shard,
// never a lock). Instruments are owned by the registry and handed out
// as stable pointers; a null instrument pointer is the disabled state,
// so callers guard with a single predictable branch and disabled
// observability costs nothing else.
namespace swfomc::obs {

namespace internal {

// Shard count for striped instruments. A power of two sized to cover
// the pool widths this codebase uses (ThreadPool caps out well below
// this on the target machines); more threads than shards only means
// sharing, never incorrectness.
inline constexpr std::size_t kShards = 16;

// Stable per-thread shard slot, assigned round-robin on first use.
std::size_t ThisThreadShard();

// One cacheline per shard so concurrent writers do not false-share.
struct alignas(64) PaddedCount {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace internal

// Monotone counter. Add() is a relaxed fetch_add on this thread's
// shard; Value() sums the shards. Because shards only grow, the summed
// value is monotone across scrapes even while writers are racing.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    shards_[internal::ThisThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<internal::PaddedCount, internal::kShards> shards_;
};

// Point-in-time signed value (queue depth, inflight requests). A
// single atomic — gauges are read-modify-write from many threads, so
// sharding would lose the "current value" meaning.
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(std::int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Log-bucketed histogram over non-negative integer samples (latencies
// in microseconds, batch sizes). Bucket b holds samples <= 2^b, so the
// boundaries cover [1, 2^62] with relative error bounded by 2x — ample
// for latency percentiles. Record() touches one shard: bucket count,
// sum and count, all relaxed.
class Histogram {
 public:
  // Buckets 0..61 have upper bounds 2^0..2^61; bucket 62 is +Inf.
  static constexpr std::size_t kBuckets = 63;

  static std::size_t BucketIndex(std::uint64_t value);
  // Inclusive upper bound of a finite bucket (2^index).
  static std::uint64_t BucketBound(std::size_t index) {
    return std::uint64_t{1} << index;
  }

  void Record(std::uint64_t value) {
    Shard& shard = shards_[internal::ThisThreadShard()];
    shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
  }

  // Aggregated view of one scrape. Taken bucket-by-bucket with relaxed
  // loads, so concurrent Record()s may or may not be included — but
  // every field is monotone across snapshots.
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t sum = 0;
    std::uint64_t count = 0;

    // Quantile by linear interpolation inside the containing bucket;
    // q in [0, 1]. Returns 0 for an empty histogram.
    double Quantile(double q) const;
  };
  Snapshot Take() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> count{0};
  };
  std::array<Shard, internal::kShards> shards_;
};

// Name-keyed instrument owner. Registration is idempotent: asking for
// an existing name returns the same instrument (and throws
// std::invalid_argument if the name is already bound to a different
// instrument kind, or is not a valid metric name). Instrument pointers
// remain valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "");

  // Prometheus-style text exposition: `# HELP` / `# TYPE` lines, then
  // samples; histograms expose cumulative `_bucket{le="..."}` plus
  // `_sum` and `_count`, and sibling gauges `<name>_p50/_p95/_p99` with
  // interpolated quantiles. Deterministically ordered by metric name.
  std::string TextExposition() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry* GetEntry(const std::string& name, Kind kind, const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace swfomc::obs

#endif  // SWFOMC_OBS_METRICS_H_
