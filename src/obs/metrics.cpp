#include "obs/metrics.h"

#include <atomic>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace swfomc::obs {

namespace internal {

std::size_t ThisThreadShard() {
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace internal

std::size_t Histogram::BucketIndex(std::uint64_t value) {
  if (value <= 1) return 0;
  // Smallest b with value <= 2^b, i.e. bit width of value - 1.
  std::size_t bits = 0;
  for (std::uint64_t v = value - 1; v != 0; v >>= 1) ++bits;
  return bits < kBuckets - 1 ? bits : kBuckets - 1;
}

Histogram::Snapshot Histogram::Take() const {
  Snapshot snapshot;
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      snapshot.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
    snapshot.count += shard.count.load(std::memory_order_relaxed);
  }
  return snapshot;
}

double Histogram::Snapshot::Quantile(double q) const {
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    double before = static_cast<double>(cumulative);
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) < rank) continue;
    // Interpolate inside (lower, upper]; the +Inf bucket has no upper
    // bound, so report its lower edge.
    double lower = b == 0 ? 0.0
                          : static_cast<double>(Histogram::BucketBound(b - 1));
    if (b == kBuckets - 1) return lower;
    double upper = static_cast<double>(Histogram::BucketBound(b));
    double fraction =
        (rank - before) / static_cast<double>(buckets[b]);
    if (fraction < 0.0) fraction = 0.0;
    if (fraction > 1.0) fraction = 1.0;
    return lower + (upper - lower) * fraction;
  }
  return 0.0;
}

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (!(alpha || c == '_' || c == ':' || (digit && i > 0))) return false;
  }
  return true;
}

void AppendHeader(std::ostringstream* out, const std::string& name,
                  const std::string& help, const char* type) {
  if (!help.empty()) *out << "# HELP " << name << ' ' << help << '\n';
  *out << "# TYPE " << name << ' ' << type << '\n';
}

// Doubles in the exposition (quantiles only) carry no exponent and a
// fixed precision so the output is locale-independent and stable.
void AppendDouble(std::ostringstream* out, double v) {
  std::uint64_t whole = static_cast<std::uint64_t>(v);
  std::uint64_t milli =
      static_cast<std::uint64_t>((v - static_cast<double>(whole)) * 1000.0 +
                                 0.5);
  if (milli >= 1000) {
    ++whole;
    milli = 0;
  }
  *out << whole << '.';
  *out << static_cast<char>('0' + milli / 100)
       << static_cast<char>('0' + milli / 10 % 10)
       << static_cast<char>('0' + milli % 10);
}

}  // namespace

MetricsRegistry::Entry* MetricsRegistry::GetEntry(const std::string& name,
                                                 Kind kind,
                                                 const std::string& help) {
  if (!ValidMetricName(name)) {
    throw std::invalid_argument("MetricsRegistry: invalid metric name '" +
                                name + "'");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.try_emplace(name);
  Entry& entry = it->second;
  if (inserted) {
    entry.kind = kind;
    entry.help = help;
    switch (kind) {
      case Kind::kCounter: entry.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: entry.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
  } else if (entry.kind != kind) {
    throw std::invalid_argument("MetricsRegistry: metric '" + name +
                                "' already registered with a different kind");
  }
  return &entry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  return GetEntry(name, Kind::kCounter, help)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  return GetEntry(name, Kind::kGauge, help)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  return GetEntry(name, Kind::kHistogram, help)->histogram.get();
}

std::string MetricsRegistry::TextExposition() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        AppendHeader(&out, name, entry.help, "counter");
        out << name << ' ' << entry.counter->Value() << '\n';
        break;
      case Kind::kGauge:
        AppendHeader(&out, name, entry.help, "gauge");
        out << name << ' ' << entry.gauge->Value() << '\n';
        break;
      case Kind::kHistogram: {
        AppendHeader(&out, name, entry.help, "histogram");
        Histogram::Snapshot snapshot = entry.histogram->Take();
        // Cumulative buckets; finite buckets stop at the last nonzero
        // one so idle histograms do not bloat the exposition.
        std::size_t last_nonzero = 0;
        for (std::size_t b = 0; b + 1 < Histogram::kBuckets; ++b) {
          if (snapshot.buckets[b] != 0) last_nonzero = b;
        }
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b <= last_nonzero; ++b) {
          cumulative += snapshot.buckets[b];
          out << name << "_bucket{le=\"" << Histogram::BucketBound(b)
              << "\"} " << cumulative << '\n';
        }
        out << name << "_bucket{le=\"+Inf\"} " << snapshot.count << '\n';
        out << name << "_sum " << snapshot.sum << '\n';
        out << name << "_count " << snapshot.count << '\n';
        // Extracted quantiles ride along as gauges (`{quantile=}` labels
        // belong to the summary type, so they get their own names).
        static constexpr struct { const char* suffix; double q; } kQuantiles[] =
            {{"_p50", 0.5}, {"_p95", 0.95}, {"_p99", 0.99}};
        for (const auto& [suffix, q] : kQuantiles) {
          out << "# TYPE " << name << suffix << " gauge\n";
          out << name << suffix << ' ';
          AppendDouble(&out, snapshot.Quantile(q));
          out << '\n';
        }
        break;
      }
    }
  }
  return out.str();
}

}  // namespace swfomc::obs
