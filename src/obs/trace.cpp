#include "obs/trace.h"

#include <stdexcept>
#include <utility>

namespace swfomc::obs {

namespace {

// Minimal JSON string escaping (obs is a leaf module, so it cannot use
// io::EscapeJson): quote, backslash, and control characters.
void AppendEscaped(std::string* out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          *out += "\\u00";
          *out += hex[(c >> 4) & 0xf];
          *out += hex[c & 0xf];
        } else {
          *out += c;
        }
    }
  }
}

void AppendKey(std::string* line, std::string_view key) {
  *line += ",\"";
  AppendEscaped(line, key);
  *line += "\":";
}

}  // namespace

TraceLog::TraceLog(std::ostream* out, std::uint64_t sample_every)
    : out_(out),
      sample_every_(sample_every),
      epoch_(std::chrono::steady_clock::now()) {}

TraceLog::TraceLog(std::uint64_t sample_every)
    : out_(nullptr),
      sample_every_(sample_every),
      epoch_(std::chrono::steady_clock::now()) {}

std::unique_ptr<TraceLog> TraceLog::OpenFile(const std::string& path,
                                             std::uint64_t sample_every) {
  std::unique_ptr<TraceLog> log(new TraceLog(sample_every));
  log->owned_file_.open(path, std::ios::out | std::ios::trunc);
  if (!log->owned_file_) {
    throw std::runtime_error("TraceLog: cannot open '" + path +
                             "' for writing");
  }
  log->out_ = &log->owned_file_;
  return log;
}

std::uint64_t TraceLog::NowUs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceLog::WriteLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  *out_ << line << '\n';
  out_->flush();
}

TraceLog::Record::Record(TraceLog* log, const char* type,
                         std::string_view name, std::uint64_t ts_us)
    : log_(log) {
  line_ = "{\"ts_us\":" + std::to_string(ts_us) + ",\"type\":\"" + type +
          "\",\"name\":\"";
  AppendEscaped(&line_, name);
  line_ += '"';
}

TraceLog::Record::Record(Record&& other) noexcept
    : log_(std::exchange(other.log_, nullptr)),
      line_(std::move(other.line_)) {}

TraceLog::Record::~Record() { Emit(); }

TraceLog::Record& TraceLog::Record::Str(std::string_view key,
                                        std::string_view value) {
  if (log_ == nullptr) return *this;
  AppendKey(&line_, key);
  line_ += '"';
  AppendEscaped(&line_, value);
  line_ += '"';
  return *this;
}

TraceLog::Record& TraceLog::Record::Num(std::string_view key,
                                        std::uint64_t value) {
  if (log_ == nullptr) return *this;
  AppendKey(&line_, key);
  line_ += std::to_string(value);
  return *this;
}

TraceLog::Record& TraceLog::Record::Num(std::string_view key,
                                        std::int64_t value) {
  if (log_ == nullptr) return *this;
  AppendKey(&line_, key);
  line_ += std::to_string(value);
  return *this;
}

TraceLog::Record& TraceLog::Record::Bool(std::string_view key, bool value) {
  if (log_ == nullptr) return *this;
  AppendKey(&line_, key);
  line_ += value ? "true" : "false";
  return *this;
}

void TraceLog::Record::Emit() {
  TraceLog* log = std::exchange(log_, nullptr);
  if (log == nullptr) return;
  line_ += '}';
  log->WriteLine(line_);
}

TraceLog::Record TraceLog::Event(std::string_view name) {
  return Record(this, "event", name, NowUs());
}

TraceLog::Span::Span(TraceLog* log, std::string_view name,
                     std::uint64_t start_us)
    : log_(log), start_us_(start_us) {
  line_ = "\"name\":\"";
  AppendEscaped(&line_, name);
  line_ += '"';
}

TraceLog::Span::Span(Span&& other) noexcept
    : log_(std::exchange(other.log_, nullptr)),
      start_us_(other.start_us_),
      line_(std::move(other.line_)) {}

TraceLog::Span& TraceLog::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    Finish();
    log_ = std::exchange(other.log_, nullptr);
    start_us_ = other.start_us_;
    line_ = std::move(other.line_);
  }
  return *this;
}

TraceLog::Span& TraceLog::Span::Str(std::string_view key,
                                    std::string_view value) {
  if (log_ == nullptr) return *this;
  AppendKey(&line_, key);
  line_ += '"';
  AppendEscaped(&line_, value);
  line_ += '"';
  return *this;
}

TraceLog::Span& TraceLog::Span::Num(std::string_view key,
                                    std::uint64_t value) {
  if (log_ == nullptr) return *this;
  AppendKey(&line_, key);
  line_ += std::to_string(value);
  return *this;
}

TraceLog::Span& TraceLog::Span::Bool(std::string_view key, bool value) {
  if (log_ == nullptr) return *this;
  AppendKey(&line_, key);
  line_ += value ? "true" : "false";
  return *this;
}

void TraceLog::Span::Finish() {
  TraceLog* log = std::exchange(log_, nullptr);
  if (log == nullptr) return;
  std::uint64_t end_us = log->NowUs();
  std::string line =
      "{\"ts_us\":" + std::to_string(start_us_) + ",\"type\":\"span\",";
  line += line_;
  line += ",\"dur_us\":" +
          std::to_string(end_us >= start_us_ ? end_us - start_us_ : 0);
  line += '}';
  log->WriteLine(line);
}

TraceLog::Span TraceLog::BeginSpan(std::string_view name) {
  return Span(this, name, NowUs());
}

}  // namespace swfomc::obs
