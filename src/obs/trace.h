#ifndef SWFOMC_OBS_TRACE_H_
#define SWFOMC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

// Structured event tracing: one JSON object per line (JSONL), each
// carrying a monotonic microsecond timestamp relative to the log's
// creation. Two record shapes:
//
//   {"ts_us":N,"type":"event","name":"...", ...fields}
//   {"ts_us":N,"type":"span","name":"...","dur_us":N, ...fields}
//
// Spans are closed-interval records emitted once at completion (the
// timestamp is the span's start). Records tied to a query can carry a
// "query" field from NextQueryId(); the sampling knob drops whole
// queries, never partial ones, so a sampled trace still contains
// complete spans. Emission serializes on a mutex — tracing is for the
// request/compile cadence, not the per-decision hot path.
namespace swfomc::obs {

class TraceLog {
 public:
  // Writes to a caller-owned stream (not owned, must outlive the log).
  explicit TraceLog(std::ostream* out, std::uint64_t sample_every = 1);
  // Opens (truncates) a JSONL file; throws std::runtime_error when the
  // file cannot be created.
  static std::unique_ptr<TraceLog> OpenFile(const std::string& path,
                                            std::uint64_t sample_every = 1);

  // Monotone id source for correlating a query's records.
  std::uint64_t NextQueryId() {
    return next_query_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // The sampling knob: true when records for this query id should be
  // emitted (every sample_every-th query; 0 behaves like 1).
  bool SampledQuery(std::uint64_t query_id) const {
    return sample_every_ <= 1 || query_id % sample_every_ == 0;
  }

  // One in-flight record. Field setters return *this for chaining; the
  // line is written when the record is destroyed (or Emit()ed). Keys
  // must be plain identifiers; string values are JSON-escaped.
  class Record {
   public:
    Record(Record&& other) noexcept;
    Record(const Record&) = delete;
    Record& operator=(const Record&) = delete;
    Record& operator=(Record&&) = delete;
    ~Record();

    Record& Str(std::string_view key, std::string_view value);
    Record& Num(std::string_view key, std::uint64_t value);
    Record& Num(std::string_view key, std::int64_t value);
    Record& Bool(std::string_view key, bool value);
    void Emit();

   private:
    friend class TraceLog;
    Record(TraceLog* log, const char* type, std::string_view name,
           std::uint64_t ts_us);
    TraceLog* log_;
    std::string line_;
  };

  // An instantaneous event, stamped now.
  Record Event(std::string_view name);

  // RAII span: records its start on construction and emits one span
  // record with dur_us when destroyed (or Finish()ed early). A span
  // moved-from or taken on a null log emits nothing.
  class Span {
   public:
    Span() : log_(nullptr) {}
    Span(Span&& other) noexcept;
    /// Finishes the current span (if any) before taking over the other.
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { Finish(); }

    Span& Str(std::string_view key, std::string_view value);
    Span& Num(std::string_view key, std::uint64_t value);
    Span& Bool(std::string_view key, bool value);
    void Finish();

   private:
    friend class TraceLog;
    Span(TraceLog* log, std::string_view name, std::uint64_t start_us);
    TraceLog* log_;
    std::uint64_t start_us_;
    std::string line_;
  };

  Span BeginSpan(std::string_view name);

  // Microseconds since the log was created (monotonic clock).
  std::uint64_t NowUs() const;

 private:
  void WriteLine(const std::string& line);

  std::ostream* out_;
  std::ofstream owned_file_;
  std::uint64_t sample_every_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> next_query_id_{0};
  std::mutex mutex_;

  TraceLog(std::uint64_t sample_every);  // file-owning constructor helper
};

}  // namespace swfomc::obs

#endif  // SWFOMC_OBS_TRACE_H_
