#ifndef SWFOMC_TM_PAIRING_H_
#define SWFOMC_TM_PAIRING_H_

#include <cstdint>
#include <utility>

#include "numeric/bigint.h"

namespace swfomc::tm {

/// The Lemma 3.8 pairing function used by the universal #P1 machine U1:
///
///   e(i, j) = 2^i * 3^{4i*ceil(log3 j)} * (6j + 1)
///
/// with the three properties the proof needs:
///   (a) i and j are recoverable from e(i, j) in linear time — i is the
///       number of trailing zero bits, j comes from stripping ternary
///       trailing zeros of the odd part and inverting 6j + 1;
///   (b) e(i, j) >= (i * j^i + i)^2, so U1 can afford to run M_i on j;
///   (c) j -> e(i, j) is PTIME for fixed i.
numeric::BigInt PairingEncode(std::uint64_t i, std::uint64_t j);

/// Inverse of PairingEncode; throws std::invalid_argument when `value` is
/// not in the image of e.
std::pair<std::uint64_t, std::uint64_t> PairingDecode(
    const numeric::BigInt& value);

/// ceil(log3 j) for j >= 1 (0 for j = 1).
std::uint64_t CeilLog3(std::uint64_t j);

}  // namespace swfomc::tm

#endif  // SWFOMC_TM_PAIRING_H_
