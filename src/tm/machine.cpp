#include "tm/machine.h"

#include <stdexcept>

namespace swfomc::tm {

CountingTuringMachine::CountingTuringMachine(int num_states, int num_tapes,
                                             std::vector<int> active_tape,
                                             int initial_state,
                                             std::set<int> accepting_states)
    : num_states_(num_states),
      num_tapes_(num_tapes),
      active_tape_(std::move(active_tape)),
      initial_state_(initial_state),
      accepting_(std::move(accepting_states)) {
  if (num_states_ <= 0 || num_tapes_ <= 0) {
    throw std::invalid_argument("CountingTuringMachine: empty machine");
  }
  if (static_cast<int>(active_tape_.size()) != num_states_) {
    throw std::invalid_argument(
        "CountingTuringMachine: active_tape must have one entry per state");
  }
  for (int tape : active_tape_) {
    if (tape < 0 || tape >= num_tapes_) {
      throw std::invalid_argument(
          "CountingTuringMachine: active tape out of range");
    }
  }
  if (initial_state_ < 0 || initial_state_ >= num_states_) {
    throw std::invalid_argument(
        "CountingTuringMachine: initial state out of range");
  }
  delta_.assign(static_cast<std::size_t>(num_states_),
                std::vector<std::vector<Transition>>(2));
}

void CountingTuringMachine::AddTransition(int state, bool read_symbol,
                                          Transition transition) {
  if (state < 0 || state >= num_states_ || transition.next_state < 0 ||
      transition.next_state >= num_states_) {
    throw std::invalid_argument("CountingTuringMachine: bad transition");
  }
  delta_.at(static_cast<std::size_t>(state))[read_symbol ? 1 : 0].push_back(
      transition);
}

const std::vector<CountingTuringMachine::Transition>&
CountingTuringMachine::Delta(int state, bool read_symbol) const {
  return delta_.at(static_cast<std::size_t>(state))[read_symbol ? 1 : 0];
}

std::string CountingTuringMachine::ToString() const {
  std::string out = "TM(states=" + std::to_string(num_states_) +
                    ", tapes=" + std::to_string(num_tapes_) + ")\n";
  for (int q = 0; q < num_states_; ++q) {
    for (int s = 0; s <= 1; ++s) {
      for (const Transition& t : delta_[static_cast<std::size_t>(q)][s]) {
        out += "  d(q" + std::to_string(q) + "," + std::to_string(s) +
               ") -> (q" + std::to_string(t.next_state) + "," +
               std::to_string(t.write ? 1 : 0) + "," +
               (t.move == Move::kLeft ? "L" : "R") + ")\n";
      }
    }
  }
  return out;
}

CountingTuringMachine AlwaysAcceptMachine() {
  CountingTuringMachine machine(1, 1, {0}, 0, {0});
  for (bool symbol : {false, true}) {
    machine.AddTransition(
        0, symbol,
        {0, symbol, CountingTuringMachine::Move::kRight});
  }
  return machine;
}

CountingTuringMachine BranchingMachine() {
  CountingTuringMachine machine(1, 1, {0}, 0, {0});
  // Reading 1: write 1 or 0 (two options), move right.
  machine.AddTransition(0, true,
                        {0, true, CountingTuringMachine::Move::kRight});
  machine.AddTransition(0, false,
                        {0, false, CountingTuringMachine::Move::kRight});
  machine.AddTransition(0, true,
                        {0, false, CountingTuringMachine::Move::kRight});
  return machine;
}

CountingTuringMachine ParityMachine() {
  // q0 = "even steps so far" (accepting), q1 = odd.
  CountingTuringMachine machine(2, 1, {0, 0}, 0, {0});
  for (bool symbol : {false, true}) {
    machine.AddTransition(
        0, symbol, {1, symbol, CountingTuringMachine::Move::kRight});
    machine.AddTransition(
        1, symbol, {0, symbol, CountingTuringMachine::Move::kRight});
  }
  return machine;
}

CountingTuringMachine TwoTapeBranchingMachine() {
  // q0 acts on tape 0 (deterministic sweep); q1 acts on tape 1 and
  // nondeterministically writes a guess bit.
  CountingTuringMachine machine(2, 2, {0, 1}, 0, {0, 1});
  for (bool symbol : {false, true}) {
    machine.AddTransition(
        0, symbol, {1, symbol, CountingTuringMachine::Move::kRight});
    machine.AddTransition(
        1, symbol, {0, false, CountingTuringMachine::Move::kRight});
    machine.AddTransition(
        1, symbol, {0, true, CountingTuringMachine::Move::kRight});
  }
  return machine;
}

}  // namespace swfomc::tm
