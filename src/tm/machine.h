#ifndef SWFOMC_TM_MACHINE_H_
#define SWFOMC_TM_MACHINE_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace swfomc::tm {

/// A nondeterministic multi-tape *counting* Turing machine (Valiant,
/// reviewed in Section 3.3) over tape alphabet {0, 1}, in the normal form
/// Appendix B assumes: every state reads and writes exactly one designated
/// tape ("a state that reads and writes all tapes can be converted into a
/// sequence of 2k states").
///
/// Heads move Left or Right each step. At the leftmost cell a Left move
/// stays put, and at the rightmost cell (last cell of the last region, in
/// the Appendix B layout) a Right move stays put — matching the encoder's
/// movement predicates.
class CountingTuringMachine {
 public:
  enum class Move { kLeft, kRight };

  struct Transition {
    int next_state;
    bool write;  // symbol written to the active tape
    Move move;
  };

  /// `active_tape[q]` designates the tape state q reads/writes.
  CountingTuringMachine(int num_states, int num_tapes,
                        std::vector<int> active_tape, int initial_state,
                        std::set<int> accepting_states);

  /// Adds a nondeterministic option to δ(state, read_symbol).
  void AddTransition(int state, bool read_symbol, Transition transition);

  int num_states() const { return num_states_; }
  int num_tapes() const { return num_tapes_; }
  int initial_state() const { return initial_state_; }
  int active_tape(int state) const { return active_tape_.at(state); }
  bool IsAccepting(int state) const { return accepting_.contains(state); }
  const std::set<int>& accepting_states() const { return accepting_; }

  const std::vector<Transition>& Delta(int state, bool read_symbol) const;

  std::string ToString() const;

 private:
  int num_states_;
  int num_tapes_;
  std::vector<int> active_tape_;
  int initial_state_;
  std::set<int> accepting_;
  // delta_[state][symbol] -> options.
  std::vector<std::vector<std::vector<Transition>>> delta_;
};

/// Canned machines used by tests and benches.

/// One accepting state, deterministic right-sweep: exactly one accepting
/// computation for every input n (>= 1).
CountingTuringMachine AlwaysAcceptMachine();

/// Reading a 1 nondeterministically writes 1 or 0 and moves right: on
/// input 1^n (run length n, so n-1 transitions over all-ones cells) there
/// are exactly 2^(n-1) accepting computations.
CountingTuringMachine BranchingMachine();

/// Two states toggling each step; accepts iff the run makes an even
/// number of steps: #accepting(n) = 1 if n is odd (n-1 transitions), else 0.
CountingTuringMachine ParityMachine();

/// Two tapes: copies nondeterministic guesses onto tape 2 while sweeping
/// tape 1; every guess accepted — 2^(n-1) accepting computations, but
/// exercising the multi-tape frame axioms.
CountingTuringMachine TwoTapeBranchingMachine();

}  // namespace swfomc::tm

#endif  // SWFOMC_TM_MACHINE_H_
