#ifndef SWFOMC_TM_SIMULATOR_H_
#define SWFOMC_TM_SIMULATOR_H_

#include "numeric/bigint.h"
#include "tm/machine.h"

namespace swfomc::tm {

/// Counts the accepting computations of the machine on input 1^n under
/// the Appendix B run discipline:
///   * every tape has c regions of n cells (total span c*n);
///   * the run takes exactly c*n time steps (c epochs of n steps), i.e.
///     c*n - 1 nondeterministic transitions;
///   * the input tape initially holds n ones in region 1, all else zeros,
///     heads on the first cell, state = initial;
///   * a computation accepts iff its state at the final step is accepting;
///   * a step with no applicable transition kills the branch (unless it is
///     the final step).
/// This is the quantity Lemma 3.9 equates to FOMC(Θ1, n) / n!.
numeric::BigInt CountAcceptingComputations(const CountingTuringMachine& machine,
                                           std::uint64_t n,
                                           std::uint64_t epochs = 1);

}  // namespace swfomc::tm

#endif  // SWFOMC_TM_SIMULATOR_H_
