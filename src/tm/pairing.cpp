#include "tm/pairing.h"

#include <stdexcept>

namespace swfomc::tm {

using numeric::BigInt;

std::uint64_t CeilLog3(std::uint64_t j) {
  if (j == 0) throw std::invalid_argument("CeilLog3: j must be >= 1");
  std::uint64_t power = 1;
  std::uint64_t exponent = 0;
  while (power < j) {
    power *= 3;
    ++exponent;
  }
  return exponent;
}

numeric::BigInt PairingEncode(std::uint64_t i, std::uint64_t j) {
  if (j == 0) throw std::invalid_argument("PairingEncode: j must be >= 1");
  BigInt result = BigInt::Pow(BigInt(2), i);
  result *= BigInt::Pow(BigInt(3), 4 * i * CeilLog3(j));
  result *= BigInt::FromUnsigned(6 * j + 1);
  return result;
}

std::pair<std::uint64_t, std::uint64_t> PairingDecode(
    const numeric::BigInt& value) {
  if (value.Sign() <= 0) {
    throw std::invalid_argument("PairingDecode: value must be positive");
  }
  // i = number of trailing zero bits.
  BigInt odd = value;
  std::uint64_t i = 0;
  BigInt two(2), three(3);
  for (;;) {
    BigInt quotient, remainder;
    BigInt::DivMod(odd, two, &quotient, &remainder);
    if (!remainder.IsZero()) break;
    odd = std::move(quotient);
    ++i;
  }
  // Strip ternary trailing zeros, counting them.
  BigInt rest = odd;
  std::uint64_t ternary_zeros = 0;
  for (;;) {
    BigInt quotient, remainder;
    BigInt::DivMod(rest, three, &quotient, &remainder);
    if (!remainder.IsZero()) break;
    rest = std::move(quotient);
    ++ternary_zeros;
  }
  // rest must be 6j + 1.
  BigInt quotient, remainder;
  BigInt::DivMod(rest - BigInt(1), BigInt(6), &quotient, &remainder);
  if (!remainder.IsZero() || !quotient.FitsInt64() ||
      quotient.Sign() <= 0) {
    throw std::invalid_argument("PairingDecode: not in the image of e");
  }
  std::uint64_t j = static_cast<std::uint64_t>(quotient.ToInt64());
  if (ternary_zeros != 4 * i * CeilLog3(j)) {
    throw std::invalid_argument("PairingDecode: inconsistent exponents");
  }
  return {i, j};
}

}  // namespace swfomc::tm
