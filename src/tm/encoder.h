#ifndef SWFOMC_TM_ENCODER_H_
#define SWFOMC_TM_ENCODER_H_

#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "tm/machine.h"

namespace swfomc::tm {

/// The Appendix B construction behind Theorem 3.1 / Lemma 3.9: encodes a
/// nondeterministic multi-tape counting TM running for c*n steps on input
/// 1^n into an FO³ sentence Θ1 such that, over a domain of size n,
///
///   FOMC(Θ1, n) = n! * #accepting-computations(machine, n)
///
/// (one model per linear order of the domain per accepting run).
///
/// The construction follows the paper's signature exactly — a strict
/// linear order with Min/Max/Succ, per-(state, epoch) unary predicates
/// S_qe, and per-(tape, epoch, region) binary predicates H, T0, T1, Left,
/// Right, Unchanged over (time, position) — with one repair: the paper's
/// items 9/10 write the movement/frame definitions as loose biconditionals
/// that, read literally, either over-constrain or leave Unchanged
/// undetermined at the written cell (inflating the count). We pin every
/// auxiliary predicate down with exact definitions:
///   Left_{τer}(t,p)  <=> head of τ at time t sits immediately before
///                        (r,p) in tape order, or at (r1, Min) = (r,p);
///   Right_{τer}(t,p) <=> dually with the last cell absorbing;
///   Unchanged_{τer}(t,p) <=> not (head of τ at (r,p) and the current
///                        state acts on τ),
/// which makes models correspond one-to-one to (order, accepting run)
/// pairs. DESIGN.md records this as a faithful-intent substitution.
struct EncodedMachine {
  logic::Vocabulary vocabulary;
  logic::Formula theta;
  std::size_t epochs = 1;
};

/// Builds Θ1 for the machine with the given epoch count c (run length
/// c*n). Every generated sentence uses at most 3 distinct variables; the
/// result is verified to be FO³ before returning.
EncodedMachine EncodeMachine(const CountingTuringMachine& machine,
                             std::size_t epochs = 1);

}  // namespace swfomc::tm

#endif  // SWFOMC_TM_ENCODER_H_
