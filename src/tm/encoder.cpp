#include "tm/encoder.h"

#include <stdexcept>
#include <string>
#include <vector>

namespace swfomc::tm {

namespace {

using logic::Atom;
using logic::Formula;
using logic::RelationId;
using logic::Term;

// Builds and owns the Θ1 signature for one machine.
class Encoder {
 public:
  Encoder(const CountingTuringMachine& machine, std::size_t epochs)
      : machine_(machine), epochs_(epochs) {
    lt_ = vocab_.AddRelation("Lt", 2);
    succ_ = vocab_.AddRelation("Succ", 2);
    min_ = vocab_.AddRelation("Min", 1);
    max_ = vocab_.AddRelation("Max", 1);
    state_.assign(Q(), std::vector<RelationId>(epochs_));
    for (std::size_t q = 0; q < Q(); ++q) {
      for (std::size_t e = 0; e < epochs_; ++e) {
        state_[q][e] = vocab_.AddRelation(
            "S" + std::to_string(q) + "e" + std::to_string(e), 1);
      }
    }
    auto add_grid = [this](const char* prefix) {
      std::vector<std::vector<std::vector<RelationId>>> grid(
          T(), std::vector<std::vector<RelationId>>(
                   epochs_, std::vector<RelationId>(epochs_)));
      for (std::size_t tape = 0; tape < T(); ++tape) {
        for (std::size_t e = 0; e < epochs_; ++e) {
          for (std::size_t r = 0; r < epochs_; ++r) {
            grid[tape][e][r] = vocab_.AddRelation(
                std::string(prefix) + std::to_string(tape) + "e" +
                    std::to_string(e) + "r" + std::to_string(r),
                2);
          }
        }
      }
      return grid;
    };
    head_ = add_grid("H");
    tape0_ = add_grid("T0t");
    tape1_ = add_grid("T1t");
    left_ = add_grid("Lf");
    right_ = add_grid("Rt");
    unchanged_ = add_grid("Un");
  }

  EncodedMachine Build() {
    std::vector<Formula> sentences;
    AppendOrderAxioms(&sentences);
    AppendStateAxioms(&sentences);
    AppendHeadAxioms(&sentences);
    AppendSymbolAxioms(&sentences);
    AppendInitialConfiguration(&sentences);
    AppendTransitions(&sentences);
    AppendMovementDefinitions(&sentences);
    AppendUnchangedDefinitionsAndFrame(&sentences);
    AppendInactiveHeadPersistence(&sentences);
    AppendAcceptance(&sentences);

    EncodedMachine result;
    result.theta = logic::And(std::move(sentences));
    result.vocabulary = std::move(vocab_);
    result.epochs = epochs_;
    if (!logic::InFragmentFOk(result.theta, 3)) {
      throw std::logic_error("EncodeMachine: Θ1 left the FO3 fragment");
    }
    return result;
  }

 private:
  std::size_t Q() const {
    return static_cast<std::size_t>(machine_.num_states());
  }
  std::size_t T() const {
    return static_cast<std::size_t>(machine_.num_tapes());
  }

  static Term X() { return Term::Var("x"); }
  static Term Y() { return Term::Var("y"); }
  static Term Z() { return Term::Var("z"); }

  Formula Lt(Term a, Term b) const { return Atom(lt_, {a, b}); }
  Formula Succ(Term a, Term b) const { return Atom(succ_, {a, b}); }
  Formula Min(Term a) const { return Atom(min_, {a}); }
  Formula Max(Term a) const { return Atom(max_, {a}); }
  Formula S(std::size_t q, std::size_t e, Term t) const {
    return Atom(state_[q][e], {t});
  }
  Formula H(std::size_t tape, std::size_t e, std::size_t r, Term t,
            Term p) const {
    return Atom(head_[tape][e][r], {t, p});
  }
  Formula Tape(bool symbol, std::size_t tape, std::size_t e, std::size_t r,
               Term t, Term p) const {
    return Atom((symbol ? tape1_ : tape0_)[tape][e][r], {t, p});
  }
  Formula Left(std::size_t tape, std::size_t e, std::size_t r, Term t,
               Term p) const {
    return Atom(left_[tape][e][r], {t, p});
  }
  Formula Right(std::size_t tape, std::size_t e, std::size_t r, Term t,
                Term p) const {
    return Atom(right_[tape][e][r], {t, p});
  }
  Formula Unchanged(std::size_t tape, std::size_t e, std::size_t r, Term t,
                    Term p) const {
    return Atom(unchanged_[tape][e][r], {t, p});
  }

  // Item 1: Lt is a strict linear order.
  void AppendOrderAxioms(std::vector<Formula>* out) const {
    out->push_back(logic::Forall(
        {"x", "y"},
        logic::Implies(logic::Not(logic::Equals(X(), Y())),
                       logic::Or(Lt(X(), Y()), Lt(Y(), X())))));
    out->push_back(logic::Forall(
        {"x", "y"},
        logic::Or(logic::Not(Lt(X(), Y())), logic::Not(Lt(Y(), X())))));
    out->push_back(logic::Forall(
        {"x"}, logic::Not(Lt(X(), X()))));
    out->push_back(logic::Forall(
        {"x", "y", "z"},
        logic::Implies(logic::And(Lt(X(), Y()), Lt(Y(), Z())),
                       Lt(X(), Z()))));
    // Item 2: Min/Max definitions.
    out->push_back(logic::Forall(
        {"x"}, logic::Iff(Min(X()),
                          logic::Not(logic::Exists("y", Lt(Y(), X()))))));
    out->push_back(logic::Forall(
        {"x"}, logic::Iff(Max(X()),
                          logic::Not(logic::Exists("y", Lt(X(), Y()))))));
    // Item 3: Succ definition.
    out->push_back(logic::Forall(
        {"x", "y"},
        logic::Iff(Succ(X(), Y()),
                   logic::And(Lt(X(), Y()),
                              logic::Not(logic::Exists(
                                  "z", logic::And(Lt(X(), Z()),
                                                  Lt(Z(), Y()))))))));
  }

  // Item 4: exactly one state per (epoch, time).
  void AppendStateAxioms(std::vector<Formula>* out) const {
    for (std::size_t e = 0; e < epochs_; ++e) {
      std::vector<Formula> some_state;
      for (std::size_t q = 0; q < Q(); ++q) {
        some_state.push_back(S(q, e, X()));
        for (std::size_t q2 = q + 1; q2 < Q(); ++q2) {
          out->push_back(logic::Forall(
              "x", logic::Or(logic::Not(S(q, e, X())),
                             logic::Not(S(q2, e, X())))));
        }
      }
      out->push_back(logic::Forall("x", logic::Or(std::move(some_state))));
    }
  }

  // Item 5: per tape and time, the head is in exactly one position.
  void AppendHeadAxioms(std::vector<Formula>* out) const {
    for (std::size_t tape = 0; tape < T(); ++tape) {
      for (std::size_t e = 0; e < epochs_; ++e) {
        // (a) at least one position in some region.
        std::vector<Formula> somewhere;
        for (std::size_t r = 0; r < epochs_; ++r) {
          somewhere.push_back(H(tape, e, r, X(), Y()));
        }
        out->push_back(logic::Forall(
            "x", logic::Exists("y", logic::Or(std::move(somewhere)))));
        for (std::size_t r = 0; r < epochs_; ++r) {
          // (b) at most one region.
          for (std::size_t r2 = 0; r2 < epochs_; ++r2) {
            if (r2 == r) continue;
            out->push_back(logic::Forall(
                {"x", "y"},
                logic::Implies(H(tape, e, r, X(), Y()),
                               logic::Forall(
                                   "z", logic::Not(
                                            H(tape, e, r2, X(), Z()))))));
          }
          // (c) at most one position within the region.
          out->push_back(logic::Forall(
              {"x", "y"},
              logic::Implies(
                  H(tape, e, r, X(), Y()),
                  logic::Not(logic::Exists(
                      "z", logic::And(logic::Not(logic::Equals(Y(), Z())),
                                      H(tape, e, r, X(), Z())))))));
        }
      }
    }
  }

  // Item 6: each cell holds exactly one symbol.
  void AppendSymbolAxioms(std::vector<Formula>* out) const {
    for (std::size_t tape = 0; tape < T(); ++tape) {
      for (std::size_t e = 0; e < epochs_; ++e) {
        for (std::size_t r = 0; r < epochs_; ++r) {
          out->push_back(logic::Forall(
              {"x", "y"},
              logic::Iff(Tape(false, tape, e, r, X(), Y()),
                         logic::Not(Tape(true, tape, e, r, X(), Y())))));
        }
      }
    }
  }

  // Item 7: initial configuration at (epoch 0, time Min).
  void AppendInitialConfiguration(std::vector<Formula>* out) const {
    // (a) initial state, all heads at the first cell.
    std::vector<Formula> at_min{
        S(static_cast<std::size_t>(machine_.initial_state()), 0, X())};
    for (std::size_t tape = 0; tape < T(); ++tape) {
      at_min.push_back(H(tape, 0, 0, X(), X()));
    }
    out->push_back(logic::Forall(
        "x", logic::Implies(Min(X()), logic::And(std::move(at_min)))));
    // (b) tape 0 region 0 holds 1^n; everything else holds 0.
    std::vector<Formula> contents;
    for (std::size_t tape = 0; tape < T(); ++tape) {
      for (std::size_t r = 0; r < epochs_; ++r) {
        bool ones = (tape == 0 && r == 0);
        contents.push_back(Tape(ones, tape, 0, r, X(), Y()));
      }
    }
    out->push_back(logic::Forall(
        {"x", "y"},
        logic::Implies(Min(X()), logic::And(std::move(contents)))));
  }

  // Item 8 (a)+(b): the transition relation.
  void AppendTransitions(std::vector<Formula>* out) const {
    for (std::size_t q = 0; q < Q(); ++q) {
      std::size_t tape =
          static_cast<std::size_t>(machine_.active_tape(static_cast<int>(q)));
      for (bool symbol : {false, true}) {
        const auto& options = machine_.Delta(static_cast<int>(q), symbol);
        for (std::size_t e = 0; e < epochs_; ++e) {
          for (std::size_t r = 0; r < epochs_; ++r) {
            // Consequent builder: the successor configuration at time y
            // (epoch e2), written at old head position z.
            auto consequent = [&](std::size_t e2) {
              std::vector<Formula> branches;
              for (const CountingTuringMachine::Transition& o : options) {
                Formula move =
                    o.move == CountingTuringMachine::Move::kLeft
                        ? Left(tape, e2, r, Y(), Z())
                        : Right(tape, e2, r, Y(), Z());
                branches.push_back(logic::And(
                    {S(static_cast<std::size_t>(o.next_state), e2, Y()),
                     std::move(move),
                     Tape(o.write, tape, e2, r, Y(), Z())}));
              }
              return logic::Or(std::move(branches));  // empty -> false
            };
            // (a) within an epoch: Succ(x,y).
            out->push_back(logic::Forall(
                {"x", "y", "z"},
                logic::Implies(
                    logic::And({S(q, e, X()), H(tape, e, r, X(), Z()),
                                Tape(symbol, tape, e, r, X(), Z()),
                                Succ(X(), Y())}),
                    consequent(e))));
            // (b) across the epoch boundary: Max(x) ∧ Min(y).
            if (e + 1 < epochs_) {
              out->push_back(logic::Forall(
                  {"x", "y", "z"},
                  logic::Implies(
                      logic::And({S(q, e, X()), H(tape, e, r, X(), Z()),
                                  Tape(symbol, tape, e, r, X(), Z()),
                                  Max(X()), Min(Y())}),
                      consequent(e + 1))));
            }
          }
        }
      }
    }
  }

  // Item 9 (repaired): exact definitions of the movement predicates.
  // Left_{τer}(t,p) <=> the head of τ at time t is at the cell immediately
  // before (r,p) in tape order, with the first cell of the tape absorbing.
  void AppendMovementDefinitions(std::vector<Formula>* out) const {
    for (std::size_t tape = 0; tape < T(); ++tape) {
      for (std::size_t e = 0; e < epochs_; ++e) {
        for (std::size_t r = 0; r < epochs_; ++r) {
          // Predecessor-of-(r,p) clause.
          Formula within = logic::Exists(
              "z", logic::And(Succ(Z(), Y()), H(tape, e, r, X(), Z())));
          Formula boundary;
          if (r == 0) {
            // First region: at (r0, Min) a left move stays.
            boundary = logic::And(Min(Y()), H(tape, e, 0, X(), Y()));
          } else {
            boundary = logic::And(
                Min(Y()),
                logic::Exists("z", logic::And(Max(Z()),
                                              H(tape, e, r - 1, X(), Z()))));
          }
          out->push_back(logic::Forall(
              {"x", "y"},
              logic::Iff(Left(tape, e, r, X(), Y()),
                         logic::Or(std::move(within), std::move(boundary)))));

          // Right_{τer}(t,p) <=> head immediately after (r,p), last cell
          // of the last region absorbing.
          Formula within_r = logic::Exists(
              "z", logic::And(Succ(Y(), Z()), H(tape, e, r, X(), Z())));
          Formula boundary_r;
          if (r + 1 == epochs_) {
            boundary_r = logic::And(Max(Y()), H(tape, e, r, X(), Y()));
          } else {
            boundary_r = logic::And(
                Max(Y()),
                logic::Exists("z", logic::And(Min(Z()),
                                              H(tape, e, r + 1, X(), Z()))));
          }
          out->push_back(logic::Forall(
              {"x", "y"},
              logic::Iff(Right(tape, e, r, X(), Y()),
                         logic::Or(std::move(within_r),
                                   std::move(boundary_r)))));
        }
      }
    }
  }

  // Item 10 (repaired): Unchanged is definable — a cell changes only when
  // the head of its tape sits on it while the state acts on that tape.
  void AppendUnchangedDefinitionsAndFrame(std::vector<Formula>* out) const {
    for (std::size_t tape = 0; tape < T(); ++tape) {
      for (std::size_t e = 0; e < epochs_; ++e) {
        // "the current state acts on this tape" at (epoch e, time x).
        std::vector<Formula> active;
        for (std::size_t q = 0; q < Q(); ++q) {
          if (static_cast<std::size_t>(machine_.active_tape(
                  static_cast<int>(q))) == tape) {
            active.push_back(S(q, e, X()));
          }
        }
        Formula is_active = logic::Or(std::move(active));  // empty -> false
        for (std::size_t r = 0; r < epochs_; ++r) {
          out->push_back(logic::Forall(
              {"x", "y"},
              logic::Iff(Unchanged(tape, e, r, X(), Y()),
                         logic::Not(logic::And(H(tape, e, r, X(), Y()),
                                               is_active)))));
          // Frame axiom within an epoch.
          out->push_back(logic::Forall(
              {"x", "y", "z"},
              logic::Implies(
                  logic::And(Succ(X(), Y()),
                             Unchanged(tape, e, r, X(), Z())),
                  logic::Iff(Tape(true, tape, e, r, X(), Z()),
                             Tape(true, tape, e, r, Y(), Z())))));
          // Frame axiom across the epoch boundary.
          if (e + 1 < epochs_) {
            out->push_back(logic::Forall(
                {"x", "y", "z"},
                logic::Implies(
                    logic::And({Max(X()), Min(Y()),
                                Unchanged(tape, e, r, X(), Z())}),
                    logic::Iff(Tape(true, tape, e, r, X(), Z()),
                               Tape(true, tape, e + 1, r, Y(), Z())))));
          }
        }
      }
    }
  }

  // Item 8(d): heads of inactive tapes do not move.
  void AppendInactiveHeadPersistence(std::vector<Formula>* out) const {
    for (std::size_t q = 0; q < Q(); ++q) {
      std::size_t active =
          static_cast<std::size_t>(machine_.active_tape(static_cast<int>(q)));
      for (std::size_t tape = 0; tape < T(); ++tape) {
        if (tape == active) continue;
        for (std::size_t e = 0; e < epochs_; ++e) {
          for (std::size_t r = 0; r < epochs_; ++r) {
            out->push_back(logic::Forall(
                {"x", "y", "z"},
                logic::Implies(
                    logic::And({S(q, e, X()), H(tape, e, r, X(), Z()),
                                Succ(X(), Y())}),
                    H(tape, e, r, Y(), Z()))));
            if (e + 1 < epochs_) {
              out->push_back(logic::Forall(
                  {"x", "y", "z"},
                  logic::Implies(
                      logic::And({S(q, e, X()), H(tape, e, r, X(), Z()),
                                  Max(X()), Min(Y())}),
                      H(tape, e + 1, r, Y(), Z()))));
            }
          }
        }
      }
    }
  }

  // Item 11: the machine halts accepting at (last epoch, Max).
  void AppendAcceptance(std::vector<Formula>* out) const {
    std::vector<Formula> accepting;
    for (int q : machine_.accepting_states()) {
      accepting.push_back(
          S(static_cast<std::size_t>(q), epochs_ - 1, X()));
    }
    out->push_back(logic::Forall(
        "x",
        logic::Implies(Max(X()), logic::Or(std::move(accepting)))));
  }

  const CountingTuringMachine& machine_;
  std::size_t epochs_;
  logic::Vocabulary vocab_;
  RelationId lt_, succ_, min_, max_;
  std::vector<std::vector<RelationId>> state_;                 // [q][e]
  std::vector<std::vector<std::vector<RelationId>>> head_;     // [tape][e][r]
  std::vector<std::vector<std::vector<RelationId>>> tape0_;
  std::vector<std::vector<std::vector<RelationId>>> tape1_;
  std::vector<std::vector<std::vector<RelationId>>> left_;
  std::vector<std::vector<std::vector<RelationId>>> right_;
  std::vector<std::vector<std::vector<RelationId>>> unchanged_;
};

}  // namespace

EncodedMachine EncodeMachine(const CountingTuringMachine& machine,
                             std::size_t epochs) {
  if (epochs == 0) {
    throw std::invalid_argument("EncodeMachine: epochs must be >= 1");
  }
  return Encoder(machine, epochs).Build();
}

}  // namespace swfomc::tm
