#include "tm/simulator.h"

#include <map>
#include <stdexcept>
#include <vector>

namespace swfomc::tm {

namespace {

using numeric::BigInt;

struct Configuration {
  int state;
  std::vector<std::vector<bool>> tapes;  // [tape][cell], length c*n each
  std::vector<std::size_t> heads;        // [tape]

  friend bool operator<(const Configuration& a, const Configuration& b) {
    if (a.state != b.state) return a.state < b.state;
    if (a.heads != b.heads) return a.heads < b.heads;
    return a.tapes < b.tapes;
  }
};

}  // namespace

numeric::BigInt CountAcceptingComputations(
    const CountingTuringMachine& machine, std::uint64_t n,
    std::uint64_t epochs) {
  if (n == 0) return BigInt(0);
  std::uint64_t span = n * epochs;
  std::uint64_t steps = span;  // time steps 1..c*n

  Configuration initial;
  initial.state = machine.initial_state();
  initial.tapes.assign(static_cast<std::size_t>(machine.num_tapes()),
                       std::vector<bool>(span, false));
  for (std::uint64_t i = 0; i < n; ++i) {
    initial.tapes[0][i] = true;  // input 1^n in region 1 of tape 1
  }
  initial.heads.assign(static_cast<std::size_t>(machine.num_tapes()), 0);

  // Breadth-first over time steps, merging identical configurations with
  // multiplicity — counts paths, not reachable configurations.
  std::map<Configuration, BigInt> frontier;
  frontier.emplace(initial, BigInt(1));
  for (std::uint64_t t = 1; t < steps; ++t) {
    std::map<Configuration, BigInt> next;
    for (const auto& [config, count] : frontier) {
      int tape = machine.active_tape(config.state);
      bool symbol = config.tapes[static_cast<std::size_t>(tape)]
                                [config.heads[static_cast<std::size_t>(tape)]];
      for (const CountingTuringMachine::Transition& option :
           machine.Delta(config.state, symbol)) {
        Configuration successor = config;
        successor.state = option.next_state;
        std::size_t& head = successor.heads[static_cast<std::size_t>(tape)];
        successor.tapes[static_cast<std::size_t>(tape)][head] = option.write;
        if (option.move == CountingTuringMachine::Move::kLeft) {
          if (head > 0) --head;  // stay at the leftmost cell
        } else {
          if (head + 1 < span) ++head;  // stay at the rightmost cell
        }
        auto [it, inserted] = next.emplace(std::move(successor), count);
        if (!inserted) it->second += count;
      }
    }
    frontier = std::move(next);
  }

  BigInt accepted(0);
  for (const auto& [config, count] : frontier) {
    if (machine.IsAccepting(config.state)) accepted += count;
  }
  return accepted;
}

}  // namespace swfomc::tm
