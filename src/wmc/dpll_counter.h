#ifndef SWFOMC_WMC_DPLL_COUNTER_H_
#define SWFOMC_WMC_DPLL_COUNTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "numeric/rational.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "prop/cnf.h"
#include "prop/compact_cnf.h"
#include "runtime/budget.h"
#include "runtime/thread_pool.h"
#include "wmc/component_cache.h"
#include "wmc/trace.h"
#include "wmc/trail.h"
#include "wmc/weights.h"

namespace swfomc::wmc {

/// Exact weighted model counter over CNF: DPLL search with unit
/// propagation, connected-component decomposition, and component caching
/// (the architecture of Cachet / sharpSAT). This is the library's
/// stand-in for the #SAT oracle the paper's reductions assume, and the
/// engine behind the grounded (non-lifted) WFOMC baseline.
///
/// Internally the search is trail-based: the CNF is flattened once into a
/// CompactCnf, conditioning updates per-clause counters through
/// occurrence lists, and backtracking unwinds the assignment trail —
/// clauses are never copied during search. Residual components are
/// discovered by DFS over the occurrence lists restricted to unassigned
/// variables and memoized in a bounded hashed component cache.
///
/// With `Options::num_threads > 1` the counter solves independent
/// components in parallel on a work-stealing pool: components found at a
/// decision node are variable-disjoint subproblems whose counts multiply,
/// so large ones are forked to other workers (each with its own trail and
/// scratch state, seeded from a snapshot of the parent's assignment) while
/// the cache is shared through a mutex-striped sharded table. Because
/// every cached value is the exact count determined by its key, the
/// result is bit-identical to the sequential count on every schedule —
/// parallelism changes wall-clock and Stats, never the answer.
///
/// Counts are over *all* variables in [0, cnf.variable_count): a variable
/// not constrained by any clause contributes a factor (w + w̄). Negative
/// and zero weights are handled exactly.
///
/// The search can be resource-governed (`Options::budget` / `cancel` /
/// `fault`): every worker checks for a stop once per decision and, on
/// exhaustion, winds down cooperatively — explored branches keep their
/// exact mass, abandoned subtrees are bracketed, and CountBounded()
/// returns certified anytime bounds instead of an answer-or-hang.
class DpllCounter {
 public:
  struct Options {
    /// Split residual formulas into variable-disjoint components and count
    /// them independently.
    bool use_components = true;
    /// Memoize component counts keyed by their packed signature.
    bool use_cache = true;
    /// Cache entry bound; the oldest entries are evicted past it.
    std::size_t max_cache_entries = std::size_t{1} << 20;
    /// Worker threads for independent-component solving. 1 = fully
    /// sequential (no pool, no locking); 0 = one per hardware thread.
    /// Requires use_components (without decomposition there is nothing
    /// independent to fork); ignored otherwise.
    unsigned num_threads = 1;
    /// A component is forked to the pool only when it still has at least
    /// this many unassigned variables; smaller ones are solved inline,
    /// since a fork costs a trail snapshot plus fresh scratch state.
    std::uint32_t parallel_min_component_vars = 16;
    /// When set, Count() emits its search DAG into the sink as a d-DNNF
    /// circuit (see wmc/trace.h). Tracing forces the search sequential,
    /// replaces the bounded component cache with an unbounded trace memo
    /// (cache hits must stay resolvable to circuit nodes), skips the
    /// single-clause closed form, and disables every zero-weight pruning
    /// shortcut so the circuit is valid for all weight vectors — the
    /// returned count is still bit-identical to an untraced Count().
    TraceSink* trace_sink = nullptr;
    /// Byte bound on the component cache's resident size (keys + rational
    /// payloads + per-entry overhead); eviction is driven by whichever of
    /// the entry and byte bounds binds first. When `budget` carries a
    /// memory ceiling, the effective bound is the tighter of the two.
    std::size_t max_cache_bytes = ComponentCache::kUnboundedBytes;
    /// Resource envelope for the search (not owned; may be shared across
    /// counters and threads). On exhaustion the search winds down
    /// cooperatively and CountBounded() reports bounds or an abort
    /// instead of spinning. null = ungoverned.
    runtime::Budget* budget = nullptr;
    /// Cooperative cancellation (not owned). Polled once per decision by
    /// every worker, including pool-forked component tasks.
    runtime::CancelToken* cancel = nullptr;
    /// Deterministic fault injection for tests (not owned): fires
    /// cancellation or a simulated allocation failure at the K-th
    /// decision / cache insertion. null in production.
    runtime::FaultPoint* fault = nullptr;
    /// Live metrics registry (not owned; null = disabled). Counters are
    /// bridged from Stats without changing counting semantics: each
    /// worker flushes its deltas every 4096 decisions and once at the
    /// end of every Count(); cache counters publish per invocation at
    /// finalization. Disabled cost is one predictable branch per
    /// decision.
    obs::MetricsRegistry* metrics = nullptr;
    /// Structured progress events (not owned; null = disabled), emitted
    /// at the same flush cadence and subject to the log's query
    /// sampling keyed by trace_query_id.
    obs::TraceLog* trace = nullptr;
    /// Correlates this counter's trace records with a query id from
    /// TraceLog::NextQueryId().
    std::uint64_t trace_query_id = 0;
  };

  struct Stats {
    std::uint64_t decisions = 0;
    std::uint64_t unit_propagations = 0;
    std::uint64_t component_splits = 0;
    std::uint64_t parallel_forks = 0;
    /// Subtrees replaced by a [0, mass] bracket after the search stopped.
    std::uint64_t aborted_subtrees = 0;
    std::uint64_t cache_lookups = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_entries = 0;
    std::uint64_t cache_collisions = 0;
    std::uint64_t cache_insertions = 0;
    std::uint64_t cache_evictions = 0;
    /// Resident bytes in the component cache after Count() (level, not a
    /// counter; 0 in tracing mode).
    std::uint64_t cache_bytes = 0;
  };

  /// How a governed count ended.
  enum class CountOutcome : std::uint8_t {
    kExact,   // the budget sufficed: value == upper == the exact count
    kBounds,  // stopped early with certified value <= exact <= upper
    kAborted, // stopped early with no certified bounds (negative weights
              // or a partial trace); value/upper are meaningless
  };

  /// Result of a governed count. Exact runs (including every ungoverned
  /// run) report kExact with upper == value. When a budget, token, or
  /// fault stops the search early, explored branches contribute their
  /// exact partial mass and every unexplored subtree is bracketed by
  /// [0, product of its free-literal weight mass], so with non-negative
  /// weights `value <= exact <= upper` is certified. Negative weights
  /// make that bracket unsound, and a stopped trace is unusable, so both
  /// degrade to kAborted.
  struct CountResult {
    CountOutcome outcome = CountOutcome::kExact;
    numeric::BigRational value;  // exact count, or certified lower bound
    numeric::BigRational upper;  // == value when exact
    runtime::StopReason stop_reason = runtime::StopReason::kNone;
  };

  DpllCounter(prop::CnfFormula cnf, WeightMap weights);
  DpllCounter(prop::CnfFormula cnf, WeightMap weights, Options options);

  /// Weighted model count; deterministic and exact — bit-identical across
  /// every num_threads setting and schedule. Throws std::runtime_error if
  /// a governed run stops before the count is exact (use CountBounded()
  /// to consume anytime results).
  numeric::BigRational Count();

  /// Weighted model count under the Options resource envelope; never
  /// throws on exhaustion. Deterministic given a deterministic stop point
  /// (a decision cap or fault); wall-clock deadlines stop at a
  /// timing-dependent point, but the bracket guarantee holds wherever the
  /// stop lands. Bounds are monotone in the budget: every decision the
  /// search is allowed replaces a bracket with mass it contains.
  CountResult CountBounded();

  /// Search and cache counters, finalized on every return path of
  /// Count(). Counts (decisions, propagations, splits) vary with the
  /// schedule in parallel runs — shared cache hits change which subtrees
  /// are explored — but always satisfy the invariants
  /// cache_hits <= cache_lookups and cache_evictions <= cache_insertions.
  const Stats& stats() const { return stats_; }

  /// Plain DPLL satisfiability with early exit (used by the spectrum
  /// decision procedure of Section 4).
  static bool IsSatisfiable(const prop::CnfFormula& cnf);

 private:
  /// A residual component: unassigned variables connected through active
  /// clauses, as sorted id spans (no clause materialization).
  struct Component {
    std::vector<prop::VarId> variables;
    std::vector<std::uint32_t> clauses;
  };

  struct ClauseMark {
    std::uint32_t stamp = 0;
    std::uint32_t component = 0;  // valid when stamp matches epoch
  };

  /// Per-search-node scratch vectors, pooled by recursion depth: each
  /// CountResidual / BranchOnComponent frame borrows the entry at its
  /// depth instead of constructing fresh vectors, so steady-state search
  /// nodes reuse the capacity of earlier visits at the same depth.
  /// Heap-allocated entries keep the borrowed references stable while the
  /// stack grows underneath a deeper frame.
  struct NodeScratch {
    std::vector<Component> components;
    std::vector<prop::VarId> free_variables;
    std::vector<prop::VarId> remaining;
  };

  // Interval-tracking accumulator (defined in the .cpp): runs only the
  // exact lower track until the first bracketed factor arrives.
  class BoundsAccumulator;

  /// Count of one search node, possibly bracketed. While `exact`, `value`
  /// is the exact count and `upper` is unused (kept empty); once any
  /// descendant was cut off, `value`/`upper` are the certified bounds.
  struct NodeResult {
    numeric::BigRational value;
    numeric::BigRational upper;
    bool exact = true;
  };

  /// Everything one worker needs to run the search: its own trail, its
  /// own epoch-stamped scratch, and its own counters. The sequential
  /// counter uses exactly one of these; every parallel fork builds a
  /// fresh one seeded with a snapshot of the forking trail, so workers
  /// share only the read-only CompactCnf/weights and the striped cache.
  struct SearchContext {
    std::optional<Trail> trail;
    Stats stats;
    // Search counters already pushed to the live metrics registry;
    // FlushLiveStats publishes stats - flushed and advances this.
    Stats flushed;
    // Per-worker tick counter amortizing the deadline check (the clock is
    // read every 64 decisions, starting with the first).
    std::uint64_t governance_ticks = 0;

    // Epoch-stamped scratch for FindComponents / PickBranchVariable, so
    // neither allocates per search node. 32-bit epochs keep the stamp
    // arrays cache-friendly; on wraparound they are wiped and the epoch
    // restarts (BumpEpoch).
    std::uint32_t epoch = 0;
    std::vector<std::uint32_t> variable_stamp;
    std::vector<ClauseMark> clause_mark;
    std::vector<std::uint32_t> score_stamp;
    std::vector<std::uint64_t> score;

    // Buffer pools: component id-spans, cache keys, and the synchronized
    // lookup's copy target are recycled across search nodes instead of
    // reallocated (a fresh BigRational per probe is a malloc per probe).
    std::vector<Component> component_pool;
    ComponentKey key_scratch;
    numeric::BigRational cached_value;

    // Depth-indexed node scratch (AcquireScratch/ReleaseScratch) and the
    // component-DFS work stack, both reused across all search nodes.
    std::vector<std::unique_ptr<NodeScratch>> node_scratch;
    std::size_t scratch_depth = 0;
    std::vector<prop::VarId> dfs_stack;
  };

  // Prepares a context against the current compact_ (fresh trail unless
  // the caller moves a snapshot in afterwards).
  void InitContext(SearchContext* ctx) const;
  void BumpEpoch(SearchContext* ctx) const;
  // Borrows the scratch entry for the current recursion depth (growing
  // the pool on first descent); ReleaseScratch must be called once per
  // acquire, on frame exit.
  NodeScratch* AcquireScratch(SearchContext* ctx) const;
  void ReleaseScratch(SearchContext* ctx) const { --ctx->scratch_depth; }

  // Weighted count of the residual formula over `candidates` (unassigned
  // variables) and `parent_clauses` (sorted ids of the clauses that could
  // still be active), assuming unit propagation has reached fixpoint:
  // splits into components, counts free variables as (w + w̄), and
  // multiplies the per-component counts (possibly in parallel).
  //
  // The trace_* out-parameters are non-null exactly when tracing: the
  // residual/component entry points append the circuit nodes of their
  // factors to *trace_children, the per-component ones write their node
  // to *trace_node.
  NodeResult CountResidual(
      SearchContext* ctx, const std::vector<prop::VarId>& candidates,
      const std::vector<std::uint32_t>& parent_clauses,
      std::vector<TraceSink::NodeId>* trace_children);
  // Multiplies the component counts, forking large components onto the
  // pool; `ctx`'s trail is snapshotted per fork before any inline solving
  // mutates it.
  NodeResult CountComponents(
      SearchContext* ctx, std::vector<Component>* components,
      std::vector<TraceSink::NodeId>* trace_children);
  NodeResult CountComponentCached(SearchContext* ctx,
                                  const Component& component,
                                  TraceSink::NodeId* trace_node);
  NodeResult BranchOnComponent(SearchContext* ctx,
                               const Component& component,
                               TraceSink::NodeId* trace_node);

  // Governance checkpoint, one call per decision: observes an already-
  // requested stop, fires the fault point, polls the cancel token, and
  // charges the budget (decision cap exactly; deadline every 64 ticks).
  // kNone means keep searching. Only called when governed_.
  runtime::StopReason CheckStop(SearchContext* ctx);
  // Publishes a stop reason to every worker; the first reason wins.
  void RequestStop(runtime::StopReason reason);
  // The [0, Π unassigned (w + w̄)] bracket standing in for `component`'s
  // abandoned subtree.
  NodeResult BracketComponent(SearchContext* ctx, const Component& component);

  // Partitions `candidates` into connected components and isolated
  // (constraint-free) variables via DFS over the occurrence lists. Each
  // component's clause list is assembled by one sweep over
  // `parent_clauses`, inheriting its sorted order — no per-component
  // sort.
  void FindComponents(SearchContext* ctx,
                      const std::vector<prop::VarId>& candidates,
                      const std::vector<std::uint32_t>& parent_clauses,
                      std::vector<Component>* components,
                      std::vector<prop::VarId>* free_variables);
  prop::VarId PickBranchVariable(SearchContext* ctx,
                                 const Component& component);
  // Packs the component's signature into ctx->key_scratch and returns its
  // 64-bit hash.
  std::uint64_t PackKey(SearchContext* ctx, const Component& component);

  // True when `component` should be handed to the pool rather than solved
  // inline (pool available, component large enough, spawn budget left).
  bool ShouldFork(const Component& component);
  // Folds a finished context's search counters into stats_.
  void MergeContextStats(const Stats& stats);
  // Publishes cache counters into stats_; called on every Count() return.
  // The cache itself persists across Count() calls, so counters are
  // reported relative to the baseline snapshotted at Count() entry —
  // stats() always describes exactly one Count() invocation.
  void SnapshotCacheBaseline();
  void FinalizeStats();

  // Publishes a worker's search-counter deltas to the live registry and
  // emits one progress trace event (when sampled). Called every 4096
  // decisions and once per context at the end of the search; never
  // called when observability is off (observed_ == false).
  void FlushLiveStats(SearchContext* ctx);

  bool tracing() const { return options_.trace_sink != nullptr; }

  prop::CnfFormula cnf_;
  WeightMap weights_;
  Options options_;
  unsigned effective_threads_;
  // True when any of budget/cancel/fault is set; the sole per-decision
  // cost on ungoverned runs is this one predictable branch.
  bool governed_;
  // True when metrics or trace is set; like governed_, one predictable
  // per-decision branch when off.
  bool observed_;
  // Instrument pointers resolved once at construction (all null when
  // options_.metrics is null).
  struct LiveMetrics {
    obs::Counter* decisions = nullptr;
    obs::Counter* propagations = nullptr;
    obs::Counter* component_splits = nullptr;
    obs::Counter* parallel_forks = nullptr;
    obs::Counter* cache_lookups = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_insertions = nullptr;
    obs::Counter* cache_evictions = nullptr;
  };
  LiveMetrics live_;
  // Non-negative weights make the [0, mass] bracket certified; scanned
  // once per governed Count(). With negative weights a stop degrades to
  // kAborted.
  bool bounds_sound_ = true;
  // The stop requested for the current Count(), observed by every worker
  // (including pool forks, which share `this`). kNone while running.
  std::atomic<runtime::StopReason> stop_{runtime::StopReason::kNone};
  Stats stats_;
  ShardedComponentCache cache_;
  // cache_'s single shard in the sequential configuration (nullptr when
  // parallel): the hot probe path skips shard selection through it.
  ComponentCache* local_cache_;
  // Cache counter values at Count() entry (see FinalizeStats).
  Stats cache_baseline_;

  // Parallel execution state; pool_ exists only while a parallel Count()
  // is running.
  std::unique_ptr<runtime::ThreadPool> pool_;
  std::atomic<std::uint64_t> forks_spawned_{0};
  std::uint64_t fork_budget_ = 0;

  // Search state, rebuilt by Count().
  prop::CompactCnf compact_;
  std::vector<numeric::BigRational> total_weight_;  // per-var w + w̄

  // Tracing state (rebuilt per Count()): the unbounded trace memo plays
  // the component cache's role — a hit must return the circuit node of
  // the first computation, so entries can never be evicted — and its
  // counters feed the cache_* Stats fields in tracing mode.
  struct TraceEntry {
    numeric::BigRational value;
    TraceSink::NodeId node = TraceSink::kNoNode;
  };
  struct TraceKeyHash {
    std::size_t operator()(const ComponentKey& key) const {
      return static_cast<std::size_t>(HashComponentKey(key));
    }
  };
  std::unordered_map<ComponentKey, TraceEntry, TraceKeyHash> trace_cache_;
  Stats trace_cache_stats_;
};

/// One-shot convenience.
numeric::BigRational CountWeightedModels(prop::CnfFormula cnf,
                                         WeightMap weights);

}  // namespace swfomc::wmc

#endif  // SWFOMC_WMC_DPLL_COUNTER_H_
