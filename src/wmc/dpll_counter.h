#ifndef SWFOMC_WMC_DPLL_COUNTER_H_
#define SWFOMC_WMC_DPLL_COUNTER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "numeric/rational.h"
#include "prop/cnf.h"
#include "prop/compact_cnf.h"
#include "wmc/component_cache.h"
#include "wmc/trail.h"
#include "wmc/weights.h"

namespace swfomc::wmc {

/// Exact weighted model counter over CNF: DPLL search with unit
/// propagation, connected-component decomposition, and component caching
/// (the architecture of Cachet / sharpSAT). This is the library's
/// stand-in for the #SAT oracle the paper's reductions assume, and the
/// engine behind the grounded (non-lifted) WFOMC baseline.
///
/// Internally the search is trail-based: the CNF is flattened once into a
/// CompactCnf, conditioning updates per-clause counters through
/// occurrence lists, and backtracking unwinds the assignment trail —
/// clauses are never copied during search. Residual components are
/// discovered by DFS over the occurrence lists restricted to unassigned
/// variables and memoized in a bounded hashed ComponentCache.
///
/// Counts are over *all* variables in [0, cnf.variable_count): a variable
/// not constrained by any clause contributes a factor (w + w̄). Negative
/// and zero weights are handled exactly.
class DpllCounter {
 public:
  struct Options {
    /// Split residual formulas into variable-disjoint components and count
    /// them independently.
    bool use_components = true;
    /// Memoize component counts keyed by their packed signature.
    bool use_cache = true;
    /// Cache entry bound; the oldest entries are evicted past it.
    std::size_t max_cache_entries = std::size_t{1} << 20;
  };

  struct Stats {
    std::uint64_t decisions = 0;
    std::uint64_t unit_propagations = 0;
    std::uint64_t component_splits = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_entries = 0;
    std::uint64_t cache_collisions = 0;
    std::uint64_t cache_evictions = 0;
  };

  DpllCounter(prop::CnfFormula cnf, WeightMap weights);
  DpllCounter(prop::CnfFormula cnf, WeightMap weights, Options options);

  /// Weighted model count; deterministic and exact.
  numeric::BigRational Count();

  const Stats& stats() const { return stats_; }

  /// Plain DPLL satisfiability with early exit (used by the spectrum
  /// decision procedure of Section 4).
  static bool IsSatisfiable(const prop::CnfFormula& cnf);

 private:
  /// A residual component: unassigned variables connected through active
  /// clauses, as sorted id spans (no clause materialization).
  struct Component {
    std::vector<prop::VarId> variables;
    std::vector<std::uint32_t> clauses;
  };

  // Weighted count of the residual formula over `candidates` (unassigned
  // variables) and `parent_clauses` (sorted ids of the clauses that could
  // still be active), assuming unit propagation has reached fixpoint:
  // splits into components, counts free variables as (w + w̄), and
  // multiplies the per-component counts.
  numeric::BigRational CountResidual(
      const std::vector<prop::VarId>& candidates,
      const std::vector<std::uint32_t>& parent_clauses);
  numeric::BigRational CountComponentCached(const Component& component);
  numeric::BigRational BranchOnComponent(const Component& component);

  // Partitions `candidates` into connected components and isolated
  // (constraint-free) variables via DFS over the occurrence lists. Each
  // component's clause list is assembled by one sweep over
  // `parent_clauses`, inheriting its sorted order — no per-component
  // sort.
  void FindComponents(const std::vector<prop::VarId>& candidates,
                      const std::vector<std::uint32_t>& parent_clauses,
                      std::vector<Component>* components,
                      std::vector<prop::VarId>* free_variables);
  prop::VarId PickBranchVariable(const Component& component);
  // Packs the component's signature into key_scratch_ and returns its
  // 64-bit hash.
  std::uint64_t PackKey(const Component& component);

  prop::CnfFormula cnf_;
  WeightMap weights_;
  Options options_;
  Stats stats_;
  ComponentCache cache_;

  // Search state, rebuilt by Count().
  prop::CompactCnf compact_;
  std::optional<Trail> trail_;
  std::vector<numeric::BigRational> total_weight_;  // per-var w + w̄

  // Epoch-stamped scratch for FindComponents / PickBranchVariable, so
  // neither allocates per search node. 32-bit epochs keep the stamp
  // arrays cache-friendly; on wraparound they are wiped and the epoch
  // restarts (BumpEpoch).
  void BumpEpoch();
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> variable_stamp_;
  struct ClauseMark {
    std::uint32_t stamp = 0;
    std::uint32_t component = 0;  // valid when stamp matches epoch_
  };
  std::vector<ClauseMark> clause_mark_;
  std::vector<std::uint32_t> score_stamp_;
  std::vector<std::uint64_t> score_;

  // Buffer pools: component id-spans and cache keys are recycled across
  // search nodes instead of reallocated.
  std::vector<Component> component_pool_;
  ComponentKey key_scratch_;
};

/// One-shot convenience.
numeric::BigRational CountWeightedModels(prop::CnfFormula cnf,
                                         WeightMap weights);

}  // namespace swfomc::wmc

#endif  // SWFOMC_WMC_DPLL_COUNTER_H_
