#ifndef SWFOMC_WMC_DPLL_COUNTER_H_
#define SWFOMC_WMC_DPLL_COUNTER_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "numeric/rational.h"
#include "prop/cnf.h"
#include "wmc/weights.h"

namespace swfomc::wmc {

/// Exact weighted model counter over CNF: DPLL search with unit
/// propagation, connected-component decomposition, and component caching
/// (the architecture of Cachet / sharpSAT, simplified). This is the
/// library's stand-in for the #SAT oracle the paper's reductions assume,
/// and the engine behind the grounded (non-lifted) WFOMC baseline.
///
/// Counts are over *all* variables in [0, cnf.variable_count): a variable
/// not constrained by any clause contributes a factor (w + w̄). Negative
/// and zero weights are handled exactly.
class DpllCounter {
 public:
  struct Options {
    /// Split residual formulas into variable-disjoint components and count
    /// them independently.
    bool use_components = true;
    /// Memoize component counts keyed by their canonical form.
    bool use_cache = true;
  };

  struct Stats {
    std::uint64_t decisions = 0;
    std::uint64_t unit_propagations = 0;
    std::uint64_t component_splits = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_entries = 0;
  };

  DpllCounter(prop::CnfFormula cnf, WeightMap weights);
  DpllCounter(prop::CnfFormula cnf, WeightMap weights, Options options);

  /// Weighted model count; deterministic and exact.
  numeric::BigRational Count();

  const Stats& stats() const { return stats_; }

  /// Plain DPLL satisfiability with early exit (used by the spectrum
  /// decision procedure of Section 4).
  static bool IsSatisfiable(const prop::CnfFormula& cnf);

 private:
  // Weighted count over the variables mentioned in `clauses` (only), of
  // assignments satisfying all clauses.
  numeric::BigRational CountClauses(std::vector<prop::Clause> clauses);
  numeric::BigRational CountComponentCached(std::vector<prop::Clause> clauses);

  prop::CnfFormula cnf_;
  WeightMap weights_;
  Options options_;
  Stats stats_;
  std::unordered_map<std::string, numeric::BigRational> cache_;
};

/// One-shot convenience.
numeric::BigRational CountWeightedModels(prop::CnfFormula cnf,
                                         WeightMap weights);

}  // namespace swfomc::wmc

#endif  // SWFOMC_WMC_DPLL_COUNTER_H_
