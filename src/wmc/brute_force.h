#ifndef SWFOMC_WMC_BRUTE_FORCE_H_
#define SWFOMC_WMC_BRUTE_FORCE_H_

#include "numeric/rational.h"
#include "prop/cnf.h"
#include "prop/prop_formula.h"
#include "wmc/weights.h"

namespace swfomc::wmc {

/// Reference weighted model counter: enumerates all 2^k assignments of the
/// variables [0, variable_count). Exponential by construction — used as
/// ground truth in tests and as the paper's "asymmetric WFOMC is hard"
/// baseline. Throws std::invalid_argument when variable_count > 30.
numeric::BigRational BruteForceWMC(const prop::PropFormula& formula,
                                   std::uint32_t variable_count,
                                   const WeightMap& weights);

/// Same over a CNF.
numeric::BigRational BruteForceWMC(const prop::CnfFormula& cnf,
                                   const WeightMap& weights);

/// Unweighted count (#F) over the given number of variables.
numeric::BigInt BruteForceCount(const prop::PropFormula& formula,
                                std::uint32_t variable_count);

}  // namespace swfomc::wmc

#endif  // SWFOMC_WMC_BRUTE_FORCE_H_
