#include "wmc/dpll_counter.h"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <utility>

namespace swfomc::wmc {

namespace {

using numeric::BigRational;
using numeric::RationalAccumulator;
using prop::Clause;
using prop::Lit;
using prop::LitPositive;
using prop::LitVariable;
using prop::MakeLit;
using prop::NegateLit;
using prop::VarId;

// Cache stripes in parallel mode: enough that workers rarely collide on a
// mutex, few enough that the per-shard FIFO bound stays meaningful.
constexpr std::size_t kParallelCacheShards = 16;

// Fork budget per Count() as a multiple of the worker count: bounds the
// total trail-snapshot/scratch cost while leaving plenty of tasks to
// steal. Once spent, the search continues sequentially in every branch.
constexpr std::uint64_t kForksPerThread = 32;

// Live-metrics flush cadence in decisions (must be a power of two): a
// relaxed fetch_add per counter every this many decisions, so the
// enabled-mode amortized cost stays far below one increment per
// decision.
constexpr std::uint64_t kLiveFlushInterval = 4096;

// Adds the search-side counters (cache counters come from the cache).
void AddSearchStats(DpllCounter::Stats* into, const DpllCounter::Stats& from) {
  into->decisions += from.decisions;
  into->unit_propagations += from.unit_propagations;
  into->component_splits += from.component_splits;
  into->parallel_forks += from.parallel_forks;
  into->aborted_subtrees += from.aborted_subtrees;
}

}  // namespace

/// Interval-tracking product/sum built on RationalAccumulator. While
/// every factor is exact only the lower track runs — the identical
/// gcd-deferred op sequence as the ungoverned counter, so exact results
/// stay bit-identical and carry no second-accumulator cost. The upper
/// track is forked lazily (a copy of the exact prefix) when the first
/// bracketed factor arrives.
///
/// Interval arithmetic here assumes non-negative endpoints with
/// lower <= exact <= upper, under which products and sums of intervals
/// bracket the products and sums of the exact values. The counter only
/// trusts brackets when all weights are non-negative (bounds_sound_).
class DpllCounter::BoundsAccumulator {
 public:
  void SetOne() {
    lower_.SetOne();
    exact_ = true;
  }

  bool exact() const { return exact_; }

  /// True only when the accumulated value is *exactly* zero. A zero
  /// lower bound on a bracketed product says nothing about the upper
  /// track, so zero-short-circuits must (and do) key off this.
  bool IsZero() const { return exact_ && lower_.IsZero(); }

  void Set(const BigRational& value) {
    lower_.Set(value);
    exact_ = true;
  }

  void Multiply(const BigRational& factor) {
    lower_.Multiply(factor);
    if (!exact_) upper_.Multiply(factor);
  }

  void Multiply(const NodeResult& factor) {
    if (!factor.exact && exact_) Fork();
    lower_.Multiply(factor.value);
    if (!exact_) upper_.Multiply(factor.exact ? factor.value : factor.upper);
  }

  void Add(const RationalAccumulator& term) {
    lower_.Add(term);
    if (!exact_) upper_.Add(term);
  }

  void Add(const BoundsAccumulator& term) {
    if (!term.exact_ && exact_) Fork();
    lower_.Add(term.lower_);
    if (!exact_) upper_.Add(term.exact_ ? term.lower_ : term.upper_);
  }

  NodeResult Finish() const {
    NodeResult result;
    result.value = lower_.Canonical();
    result.exact = exact_;
    if (!exact_) result.upper = upper_.Canonical();
    return result;
  }

 private:
  void Fork() {
    upper_ = lower_;  // the exact prefix bounds itself from above
    exact_ = false;
  }

  RationalAccumulator lower_;
  RationalAccumulator upper_;
  bool exact_ = true;
};

DpllCounter::DpllCounter(prop::CnfFormula cnf, WeightMap weights)
    : DpllCounter(std::move(cnf), std::move(weights), Options{}) {}

DpllCounter::DpllCounter(prop::CnfFormula cnf, WeightMap weights,
                         Options options)
    : cnf_(std::move(cnf)),
      weights_(std::move(weights)),
      options_(options),
      // Parallelism forks independent components, so it needs
      // decomposition on; without it the counter stays sequential. A
      // trace sink also forces sequential: circuit nodes are emitted in
      // construction order and the trace memo is unsynchronized.
      effective_threads_(
          options.use_components && options.trace_sink == nullptr
              ? runtime::ThreadPool::ResolveThreadCount(options.num_threads)
              : 1),
      governed_(options.budget != nullptr || options.cancel != nullptr ||
                options.fault != nullptr),
      observed_(options.metrics != nullptr || options.trace != nullptr),
      // A budget's memory ceiling caps the cache bytes too (the cache is
      // the dominant allocation); the tighter of the two bounds wins.
      cache_(options.max_cache_entries,
             effective_threads_ > 1 ? kParallelCacheShards : 1,
             /*synchronized=*/effective_threads_ > 1,
             options.budget != nullptr
                 ? std::min<std::size_t>(options.max_cache_bytes,
                                         options.budget->max_memory_bytes())
                 : options.max_cache_bytes),
      local_cache_(cache_.LocalShard()) {
  weights_.EnsureSize(cnf_.variable_count);
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* r = options_.metrics;
    live_.decisions = r->GetCounter("swfomc_dpll_decisions_total",
                                    "DPLL branch decisions");
    live_.propagations = r->GetCounter("swfomc_dpll_propagations_total",
                                       "Unit propagations");
    live_.component_splits = r->GetCounter(
        "swfomc_dpll_component_splits_total",
        "Residuals that split into >1 component");
    live_.parallel_forks = r->GetCounter("swfomc_dpll_parallel_forks_total",
                                         "Components forked to the pool");
    live_.cache_lookups = r->GetCounter("swfomc_dpll_cache_lookups_total",
                                        "Component-cache probes");
    live_.cache_hits = r->GetCounter("swfomc_dpll_cache_hits_total",
                                     "Component-cache hits");
    live_.cache_insertions = r->GetCounter(
        "swfomc_dpll_cache_insertions_total", "Component-cache insertions");
    live_.cache_evictions = r->GetCounter(
        "swfomc_dpll_cache_evictions_total", "Component-cache evictions");
  }
}

void DpllCounter::FlushLiveStats(SearchContext* ctx) {
  const Stats& now = ctx->stats;
  Stats& last = ctx->flushed;
  if (live_.decisions != nullptr) {
    live_.decisions->Add(now.decisions - last.decisions);
    live_.propagations->Add(now.unit_propagations - last.unit_propagations);
    live_.component_splits->Add(now.component_splits - last.component_splits);
    live_.parallel_forks->Add(now.parallel_forks - last.parallel_forks);
  }
  last = now;
  if (options_.trace != nullptr &&
      options_.trace->SampledQuery(options_.trace_query_id)) {
    options_.trace->Event("dpll_progress")
        .Num("query", options_.trace_query_id)
        .Num("decisions", now.decisions)
        .Num("propagations", now.unit_propagations)
        .Num("splits", now.component_splits);
  }
}

void DpllCounter::InitContext(SearchContext* ctx) const {
  ctx->epoch = 0;
  ctx->variable_stamp.assign(cnf_.variable_count, 0);
  ctx->clause_mark.assign(compact_.clause_count(), ClauseMark{});
  ctx->score_stamp.assign(cnf_.variable_count, 0);
  ctx->score.assign(cnf_.variable_count, 0);
  ctx->node_scratch.clear();
  ctx->scratch_depth = 0;
  ctx->dfs_stack.clear();
}

DpllCounter::NodeScratch* DpllCounter::AcquireScratch(
    SearchContext* ctx) const {
  if (ctx->scratch_depth == ctx->node_scratch.size()) {
    ctx->node_scratch.push_back(std::make_unique<NodeScratch>());
  }
  NodeScratch* scratch = ctx->node_scratch[ctx->scratch_depth++].get();
  scratch->components.clear();
  scratch->free_variables.clear();
  scratch->remaining.clear();
  return scratch;
}

numeric::BigRational DpllCounter::Count() {
  CountResult result = CountBounded();
  if (result.outcome != CountOutcome::kExact) {
    throw std::runtime_error(
        std::string("DpllCounter: budget exhausted before an exact count "
                    "(stop reason: ") +
        runtime::ToString(result.stop_reason) +
        "); use CountBounded() for anytime results");
  }
  return std::move(result.value);
}

DpllCounter::CountResult DpllCounter::CountBounded() {
  stats_ = Stats{};
  SnapshotCacheBaseline();
  trace_cache_.clear();
  trace_cache_stats_ = Stats{};
  forks_spawned_.store(0, std::memory_order_relaxed);
  stop_.store(runtime::StopReason::kNone, std::memory_order_relaxed);
  bounds_sound_ = true;
  if (governed_) {
    // The [0, mass] bracket needs every weight non-negative; scanned once
    // here so per-node code can trust bounds_sound_.
    for (VarId v = 0; v < cnf_.variable_count && bounds_sound_; ++v) {
      const VariableWeights& w = weights_.Get(v);
      bounds_sound_ = w.positive.Sign() >= 0 && w.negative.Sign() >= 0;
    }
  }
  TraceSink* sink = options_.trace_sink;
  TraceSink::NodeId trace_root = TraceSink::kNoNode;
  SearchContext root;
  // The counting core; root's counters and the cache's are folded into
  // stats_ on exit no matter which path returns. In tracing mode the
  // zero-weight early returns are disabled — a weight-induced zero is
  // not UNSAT, and the circuit must stay valid for other weight vectors.
  NodeResult result = [&]() -> NodeResult {
    prop::NormalizeCnf(&cnf_);
    for (const Clause& clause : cnf_.clauses) {
      if (clause.empty()) {
        if (sink != nullptr) trace_root = sink->False();
        return NodeResult{};
      }
    }
    compact_ = prop::CompactCnf::Build(cnf_);
    total_weight_.clear();
    total_weight_.reserve(cnf_.variable_count);
    for (VarId v = 0; v < cnf_.variable_count; ++v) {
      total_weight_.push_back(weights_.Get(v).Total());
    }
    if (effective_threads_ > 1) {
      pool_ = std::make_unique<runtime::ThreadPool>(
          effective_threads_,
          runtime::ThreadPool::Metrics::FromRegistry(options_.metrics));
      fork_budget_ = static_cast<std::uint64_t>(effective_threads_) *
                     kForksPerThread;
    }
    InitContext(&root);
    root.trail.emplace(&compact_);

    if (!root.trail->PropagateExistingUnits(&root.stats.unit_propagations)) {
      if (sink != nullptr) trace_root = sink->False();
      return NodeResult{};
    }
    std::vector<TraceSink::NodeId> children;
    // Gcd-deferred product of the root factors: one canonicalizing
    // reduction at the end instead of one per factor.
    BoundsAccumulator result;
    result.SetOne();
    for (Lit lit : root.trail->assignments()) {
      const BigRational& weight =
          weights_.LiteralWeight(LitVariable(lit), LitPositive(lit));
      if (!weight.IsOne()) result.Multiply(weight);
      if (sink != nullptr) children.push_back(sink->Literal(lit));
    }
    if (result.IsZero() && sink == nullptr) return NodeResult{};

    std::vector<VarId> candidates;
    candidates.reserve(cnf_.variable_count);
    for (VarId v = 0; v < cnf_.variable_count; ++v) {
      if (root.trail->IsAssigned(v)) continue;
      if (compact_.Mentions(v)) {
        candidates.push_back(v);
      } else {
        // Never constrained by any clause: free (w + w̄) factor.
        result.Multiply(total_weight_[v]);
        if (sink != nullptr) children.push_back(sink->FreeVariable(v));
      }
    }
    if (result.IsZero() && sink == nullptr) return NodeResult{};
    std::vector<std::uint32_t> all_clauses(compact_.clause_count());
    for (std::uint32_t c = 0; c < compact_.clause_count(); ++c) {
      all_clauses[c] = c;
    }
    result.Multiply(CountResidual(&root, candidates, all_clauses,
                                  sink != nullptr ? &children : nullptr));
    if (sink != nullptr) trace_root = sink->And(children);
    return result.Finish();
  }();
  pool_.reset();
  MergeContextStats(root.stats);
  if (observed_) FlushLiveStats(&root);
  FinalizeStats();
  if (sink != nullptr) sink->Root(trace_root);

  CountResult out;
  out.stop_reason = stop_.load(std::memory_order_relaxed);
  if (out.stop_reason == runtime::StopReason::kNone) {
    // Never stopped — exact even if governed. (A stop that fired after
    // the last decision still unwound through brackets, so result.exact
    // implies no bracket anywhere.)
    out.outcome = CountOutcome::kExact;
    out.value = std::move(result.value);
    out.upper = out.value;
    return out;
  }
  if (result.exact) {
    // The stop fired but every subtree it interrupted turned out to be
    // resolvable without further decisions (or from the cache): the
    // count is exact after all.
    out.outcome = CountOutcome::kExact;
    out.value = std::move(result.value);
    out.upper = out.value;
    return out;
  }
  if (sink != nullptr || !bounds_sound_) {
    // A stopped trace is unusable (placeholder FALSE nodes), and with
    // negative weights the bracket certifies nothing.
    out.outcome = CountOutcome::kAborted;
    return out;
  }
  out.outcome = CountOutcome::kBounds;
  out.value = std::move(result.value);
  out.upper = std::move(result.upper);
  return out;
}

void DpllCounter::MergeContextStats(const Stats& stats) {
  AddSearchStats(&stats_, stats);
}

void DpllCounter::SnapshotCacheBaseline() {
  cache_baseline_.cache_lookups = cache_.lookups();
  cache_baseline_.cache_hits = cache_.hits();
  cache_baseline_.cache_collisions = cache_.collisions();
  cache_baseline_.cache_insertions = cache_.insertions();
  cache_baseline_.cache_evictions = cache_.evictions();
}

void DpllCounter::FinalizeStats() {
  // Per-invocation cache deltas go to the live registry on scope exit,
  // after whichever branch below fills them in.
  struct PublishCache {
    DpllCounter* self;
    ~PublishCache() {
      if (self->live_.cache_lookups == nullptr) return;
      self->live_.cache_lookups->Add(self->stats_.cache_lookups);
      self->live_.cache_hits->Add(self->stats_.cache_hits);
      self->live_.cache_insertions->Add(self->stats_.cache_insertions);
      self->live_.cache_evictions->Add(self->stats_.cache_evictions);
    }
  } publish{this};
  if (tracing()) {
    // The trace memo replaced the component cache for this Count(); its
    // counters are already per-invocation (the memo is rebuilt each call)
    // and nothing is ever collided out or evicted.
    stats_.cache_lookups = trace_cache_stats_.cache_lookups;
    stats_.cache_hits = trace_cache_stats_.cache_hits;
    stats_.cache_insertions = trace_cache_stats_.cache_insertions;
    stats_.cache_entries = trace_cache_.size();
    return;
  }
  // Deltas against the Count()-entry baseline, so repeated Count() calls
  // report per-invocation counters even though the cache (and its
  // cumulative totals) persist across calls. cache_entries is a level,
  // not a counter, and stays absolute.
  stats_.cache_lookups = cache_.lookups() - cache_baseline_.cache_lookups;
  stats_.cache_hits = cache_.hits() - cache_baseline_.cache_hits;
  stats_.cache_entries = cache_.size();
  stats_.cache_collisions =
      cache_.collisions() - cache_baseline_.cache_collisions;
  stats_.cache_insertions =
      cache_.insertions() - cache_baseline_.cache_insertions;
  stats_.cache_evictions =
      cache_.evictions() - cache_baseline_.cache_evictions;
  stats_.cache_bytes = cache_.bytes();
}

DpllCounter::NodeResult DpllCounter::CountResidual(
    SearchContext* ctx, const std::vector<VarId>& candidates,
    const std::vector<std::uint32_t>& parent_clauses,
    std::vector<TraceSink::NodeId>* trace_children) {
  NodeScratch* scratch = AcquireScratch(ctx);
  std::vector<Component>& components = scratch->components;
  std::vector<VarId>& free_variables = scratch->free_variables;
  FindComponents(ctx, candidates, parent_clauses, &components,
                 &free_variables);

  BoundsAccumulator result;
  result.SetOne();
  for (VarId v : free_variables) {
    result.Multiply(total_weight_[v]);
    if (trace_children != nullptr) {
      trace_children->push_back(options_.trace_sink->FreeVariable(v));
    } else if (result.IsZero()) {
      break;
    }
  }
  bool descend = trace_children != nullptr ? !components.empty()
                                           : !result.IsZero() &&
                                                 !components.empty();
  if (descend) {
    if (!options_.use_components && components.size() > 1) {
      // Decomposition disabled: fuse everything back into one residual.
      Component merged;
      for (Component& component : components) {
        merged.variables.insert(merged.variables.end(),
                                component.variables.begin(),
                                component.variables.end());
        merged.clauses.insert(merged.clauses.end(),
                              component.clauses.begin(),
                              component.clauses.end());
      }
      std::sort(merged.variables.begin(), merged.variables.end());
      std::sort(merged.clauses.begin(), merged.clauses.end());
      TraceSink::NodeId node = TraceSink::kNoNode;
      result.Multiply(CountComponentCached(
          ctx, merged, trace_children != nullptr ? &node : nullptr));
      if (trace_children != nullptr) trace_children->push_back(node);
    } else {
      if (components.size() > 1) ++ctx->stats.component_splits;
      result.Multiply(CountComponents(ctx, &components, trace_children));
    }
  }
  // Recycle the id-span buffers for later search nodes.
  for (Component& component : components) {
    component.variables.clear();
    component.clauses.clear();
    ctx->component_pool.push_back(std::move(component));
  }
  components.clear();
  ReleaseScratch(ctx);
  return result.Finish();
}

bool DpllCounter::ShouldFork(const Component& component) {
  if (pool_ == nullptr) return false;
  if (component.variables.size() < options_.parallel_min_component_vars) {
    return false;
  }
  // Claim a fork slot; on overshoot give it back — the budget is a soft
  // bound on snapshot overhead, not a correctness constraint.
  if (forks_spawned_.fetch_add(1, std::memory_order_relaxed) >=
      fork_budget_) {
    forks_spawned_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

DpllCounter::NodeResult DpllCounter::CountComponents(
    SearchContext* ctx, std::vector<Component>* components,
    std::vector<TraceSink::NodeId>* trace_children) {
  if (pool_ == nullptr || components->size() < 2) {
    // Tracing always lands here (a trace sink forces one thread, so
    // pool_ is null) and must visit every component even after a zero
    // factor — the AND node needs all its children.
    BoundsAccumulator result;
    result.SetOne();
    for (const Component& component : *components) {
      TraceSink::NodeId node = TraceSink::kNoNode;
      result.Multiply(CountComponentCached(
          ctx, component, trace_children != nullptr ? &node : nullptr));
      if (trace_children != nullptr) {
        trace_children->push_back(node);
      } else if (result.IsZero()) {
        break;
      }
    }
    return result.Finish();
  }
  // Fork the large components, solve the rest inline while the workers
  // run, and multiply everything in component order afterwards. Each fork
  // captures a snapshot of the trail *now* — the inline solving below
  // pushes and pops decisions on ctx->trail, so a later copy would see a
  // mid-branch assignment.
  std::size_t count = components->size();
  std::vector<NodeResult> values(count);
  std::vector<Stats> fork_stats(count);
  std::vector<char> is_forked(count, 0);
  runtime::TaskGroup group(pool_.get());
  for (std::size_t i = 0; i < count; ++i) {
    if (!ShouldFork((*components)[i])) continue;
    is_forked[i] = 1;
    ++ctx->stats.parallel_forks;
    group.Submit([this, i, components, &values, &fork_stats,
                  snapshot = *ctx->trail]() mutable {
      SearchContext child;
      InitContext(&child);
      child.trail.emplace(std::move(snapshot));
      values[i] = CountComponentCached(&child, (*components)[i], nullptr);
      fork_stats[i] = child.stats;
      if (observed_) FlushLiveStats(&child);
    });
  }
  // Forked tasks observe the shared stop flag (they run on `this`, and
  // every decision checks it), so a governed stop winds them down within
  // one check interval. The inline work can additionally short-circuit:
  // after one exactly-zero factor the product is zero no matter what the
  // siblings count.
  bool zero_seen = false;
  for (std::size_t i = 0; i < count; ++i) {
    if (!is_forked[i] && !zero_seen) {
      values[i] = CountComponentCached(ctx, (*components)[i], nullptr);
      zero_seen = values[i].exact && values[i].value.IsZero();
    }
  }
  group.Wait();
  BoundsAccumulator result;
  result.SetOne();
  for (std::size_t i = 0; i < count; ++i) {
    if (is_forked[i]) AddSearchStats(&ctx->stats, fork_stats[i]);
    if (zero_seen) continue;  // skipped inline slots hold no real count
    result.Multiply(values[i]);
  }
  return zero_seen ? NodeResult{} : result.Finish();
}

DpllCounter::NodeResult DpllCounter::CountComponentCached(
    SearchContext* ctx, const Component& component,
    TraceSink::NodeId* trace_node) {
  if (trace_node != nullptr) {
    // Tracing: the unbounded trace memo stands in for the component
    // cache (a hit must hand back the node of the first computation),
    // and the single-clause closed form is skipped — branching emits the
    // clause's decision chain through the generic machinery instead.
    PackKey(ctx, component);
    ++trace_cache_stats_.cache_lookups;
    auto it = trace_cache_.find(ctx->key_scratch);
    if (it != trace_cache_.end()) {
      ++trace_cache_stats_.cache_hits;
      *trace_node = it->second.node;
      return NodeResult{it->second.value, BigRational(), true};
    }
    // Copy the scratch key out before recursing (nested lookups reuse it).
    ComponentKey key = ctx->key_scratch;
    NodeResult result = BranchOnComponent(ctx, component, trace_node);
    if (!result.exact) {
      // A stopped trace is unusable; the placeholder FALSE node keeps the
      // circuit well-formed while CountBounded() reports kAborted, and a
      // bracketed value must never enter the memo (hits would replay it
      // as exact).
      *trace_node = options_.trace_sink->False();
      return result;
    }
    if (options_.fault != nullptr &&
        options_.fault->Count(runtime::FaultPoint::Site::kCacheInsert)) {
      RequestStop(options_.fault->reason());
      return result;  // the value stays exact; the *next* decision stops
    }
    trace_cache_.emplace(std::move(key),
                         TraceEntry{result.value, *trace_node});
    ++trace_cache_stats_.cache_insertions;
    return result;
  }
  // A single-clause component has the closed form
  //   Π_v (w_v + w̄_v)  −  Π_{lit} weight(¬lit)
  // (all assignments minus the one falsifying the clause); computing it
  // beats both branching and a cache round-trip, and such components are
  // the bulk of what Tseitin-encoded lineages shatter into.
  if (component.clauses.size() == 1) {
    RationalAccumulator all;
    RationalAccumulator falsifying;
    all.SetOne();
    falsifying.SetOne();
    for (Lit lit : compact_.Clause(component.clauses.front())) {
      VarId v = LitVariable(lit);
      if (ctx->trail->IsAssigned(v)) continue;
      all.Multiply(total_weight_[v]);
      falsifying.Multiply(weights_.LiteralWeight(v, !LitPositive(lit)));
    }
    return NodeResult{all.Canonical() - falsifying.Canonical(),
                      BigRational(), true};
  }
  if (!options_.use_cache) return BranchOnComponent(ctx, component, nullptr);
  std::uint64_t hash = PackKey(ctx, component);
  if (local_cache_ != nullptr) {
    // Sequential configuration: probe the single shard directly, exactly
    // the pre-sharding fast path (one hashtable find, zero copies).
    if (const BigRational* hit = local_cache_->Lookup(ctx->key_scratch,
                                                      hash)) {
      return NodeResult{*hit, BigRational(), true};
    }
  } else if (cache_.Lookup(ctx->key_scratch, hash, &ctx->cached_value)) {
    // Copy-out under the shard lock (another worker may evict the entry),
    // into per-context scratch so a miss costs no allocation.
    return NodeResult{ctx->cached_value, BigRational(), true};
  }
  // Copy the scratch key out before recursing (nested lookups reuse it).
  ComponentKey key = ctx->key_scratch;
  NodeResult result = BranchOnComponent(ctx, component, nullptr);
  // Only exact values may be cached: a key determines its exact count,
  // but says nothing about where a budget cut the subtree off.
  if (result.exact) {
    if (options_.fault != nullptr &&
        options_.fault->Count(runtime::FaultPoint::Site::kCacheInsert)) {
      // Simulated allocation failure on this insertion: skip the insert
      // and stop the search; the already-computed value is still exact.
      RequestStop(options_.fault->reason());
    } else if (local_cache_ != nullptr) {
      local_cache_->Insert(std::move(key), hash, result.value);
    } else {
      cache_.Insert(std::move(key), hash, result.value);
    }
  }
  return result;
}

runtime::StopReason DpllCounter::CheckStop(SearchContext* ctx) {
  runtime::StopReason stopped = stop_.load(std::memory_order_relaxed);
  if (stopped != runtime::StopReason::kNone) return stopped;
  if (options_.fault != nullptr &&
      options_.fault->Count(runtime::FaultPoint::Site::kDecision)) {
    RequestStop(options_.fault->reason());
    return stop_.load(std::memory_order_relaxed);
  }
  if (options_.cancel != nullptr && options_.cancel->IsCancelled()) {
    RequestStop(runtime::StopReason::kCancelled);
    return stop_.load(std::memory_order_relaxed);
  }
  if (options_.budget != nullptr) {
    // The decision cap is charged exactly (a cap of K permits exactly K
    // decisions, and a cap of 0 stops before the first); the clock is
    // read every 64 ticks, starting with tick 0 so a 0ms deadline also
    // fires before any decision.
    runtime::StopReason reason = options_.budget->ChargeDecisions(1);
    if (reason == runtime::StopReason::kNone &&
        (ctx->governance_ticks++ & 63) == 0) {
      reason = options_.budget->CheckDeadline();
    }
    if (reason != runtime::StopReason::kNone) {
      RequestStop(reason);
      return stop_.load(std::memory_order_relaxed);
    }
  }
  return runtime::StopReason::kNone;
}

void DpllCounter::RequestStop(runtime::StopReason reason) {
  runtime::StopReason expected = runtime::StopReason::kNone;
  stop_.compare_exchange_strong(expected, reason, std::memory_order_relaxed);
}

DpllCounter::NodeResult DpllCounter::BracketComponent(
    SearchContext* ctx, const Component& component) {
  ++ctx->stats.aborted_subtrees;
  // Every total assignment of the component's unassigned variables has
  // weight <= Π (w + w̄), and with non-negative weights the sum over the
  // satisfying subset is sandwiched in [0, that product].
  RationalAccumulator upper;
  upper.SetOne();
  for (VarId v : component.variables) {
    if (!ctx->trail->IsAssigned(v)) upper.Multiply(total_weight_[v]);
  }
  return NodeResult{BigRational(0), upper.Canonical(), false};
}

DpllCounter::NodeResult DpllCounter::BranchOnComponent(
    SearchContext* ctx, const Component& component,
    TraceSink::NodeId* trace_node) {
  // The per-decision governance checkpoint: once a stop is requested (by
  // this worker or any other), the whole remaining subtree collapses to
  // its bracket and the recursion unwinds without further decisions.
  if (governed_ && CheckStop(ctx) != runtime::StopReason::kNone) {
    return BracketComponent(ctx, component);
  }
  VarId variable = PickBranchVariable(ctx, component);
  ++ctx->stats.decisions;
  if (observed_ &&
      (ctx->stats.decisions & (kLiveFlushInterval - 1)) == 0) {
    FlushLiveStats(ctx);
  }
  NodeScratch* scratch = AcquireScratch(ctx);
  // Branch product and decision sum stay unreduced until the OR closes:
  // one canonicalizing reduction per decision node instead of one per
  // weight factor.
  BoundsAccumulator total;
  BoundsAccumulator term;
  // Circuit children of the decision OR; conflicting branches contribute
  // no child (an omitted FALSE summand is weight-independent).
  std::vector<TraceSink::NodeId> or_children;
  std::vector<TraceSink::NodeId> branch_children;
  for (bool value : {true, false}) {
    const BigRational& weight = weights_.LiteralWeight(variable, value);
    // A zero-weight branch carries factor 0 — but only for *these*
    // weights, so tracing must still explore it for the circuit.
    if (weight.IsZero() && trace_node == nullptr) continue;
    std::size_t mark = ctx->trail->Mark();
    if (ctx->trail->AssignAndPropagate(MakeLit(variable, value),
                                       &ctx->stats.unit_propagations)) {
      term.Set(weight);
      const std::vector<Lit>& trail = ctx->trail->assignments();
      if (trace_node != nullptr) {
        branch_children.clear();
        // The decision literal itself (trail[mark]) plus its implications.
        for (std::size_t i = mark; i < trail.size(); ++i) {
          branch_children.push_back(options_.trace_sink->Literal(trail[i]));
        }
      }
      for (std::size_t i = mark + 1; i < trail.size(); ++i) {
        const BigRational& implied = weights_.LiteralWeight(
            LitVariable(trail[i]), LitPositive(trail[i]));
        if (!implied.IsOne()) term.Multiply(implied);
      }
      if (!term.IsZero() || trace_node != nullptr) {
        std::vector<VarId>& remaining = scratch->remaining;
        remaining.clear();
        remaining.reserve(component.variables.size());
        for (VarId v : component.variables) {
          if (!ctx->trail->IsAssigned(v)) remaining.push_back(v);
        }
        term.Multiply(CountResidual(ctx, remaining, component.clauses,
                                    trace_node != nullptr ? &branch_children
                                                          : nullptr));
      }
      total.Add(term);
      if (trace_node != nullptr) {
        or_children.push_back(options_.trace_sink->And(branch_children));
      }
    }
    ctx->trail->UndoTo(mark);
  }
  if (trace_node != nullptr) {
    *trace_node = options_.trace_sink->Or(variable, or_children);
  }
  ReleaseScratch(ctx);
  return total.Finish();
}

void DpllCounter::BumpEpoch(SearchContext* ctx) const {
  if (++ctx->epoch == 0) {  // wraparound: wipe every stamp and restart
    std::fill(ctx->variable_stamp.begin(), ctx->variable_stamp.end(), 0);
    std::fill(ctx->clause_mark.begin(), ctx->clause_mark.end(),
              ClauseMark{});
    std::fill(ctx->score_stamp.begin(), ctx->score_stamp.end(), 0);
    ctx->epoch = 1;
  }
}

void DpllCounter::FindComponents(
    SearchContext* ctx, const std::vector<VarId>& candidates,
    const std::vector<std::uint32_t>& parent_clauses,
    std::vector<Component>* components, std::vector<VarId>* free_variables) {
  BumpEpoch(ctx);
  std::vector<VarId>& stack = ctx->dfs_stack;
  for (VarId seed : candidates) {
    if (ctx->variable_stamp[seed] == ctx->epoch) continue;
    ctx->variable_stamp[seed] = ctx->epoch;
    Component component;
    if (!ctx->component_pool.empty()) {
      component = std::move(ctx->component_pool.back());
      ctx->component_pool.pop_back();
    }
    std::uint32_t component_index =
        static_cast<std::uint32_t>(components->size());
    bool has_clauses = false;
    stack.assign(1, seed);
    while (!stack.empty()) {
      VarId v = stack.back();
      stack.pop_back();
      component.variables.push_back(v);
      for (std::uint32_t clause : compact_.VariableOccurrences(v)) {
        ClauseMark& mark = ctx->clause_mark[clause];
        if (mark.stamp == ctx->epoch) continue;
        if (ctx->trail->ClauseSatisfied(clause)) continue;
        mark = ClauseMark{ctx->epoch, component_index};
        has_clauses = true;
        for (Lit lit : compact_.Clause(clause)) {
          VarId other = LitVariable(lit);
          if (ctx->variable_stamp[other] == ctx->epoch) continue;
          ctx->variable_stamp[other] = ctx->epoch;
          if (ctx->trail->IsAssigned(other)) continue;  // stamped, not
                                                        // visited
          stack.push_back(other);
        }
      }
    }
    if (!has_clauses) {
      // All of the variable's clauses are satisfied: it is unconstrained
      // in this residual and contributes (w + w̄) directly.
      free_variables->push_back(seed);
      component.variables.clear();
      ctx->component_pool.push_back(std::move(component));
    } else {
      components->push_back(std::move(component));
    }
  }
  if (components->empty()) return;
  // One sweep over the parent's (sorted) clause list hands every active
  // clause to its component in ascending id order, so cache signatures
  // are canonical without any per-component sort.
  for (std::uint32_t clause : parent_clauses) {
    if (ctx->clause_mark[clause].stamp == ctx->epoch) {
      (*components)[ctx->clause_mark[clause].component].clauses.push_back(
          clause);
    }
  }
}

prop::VarId DpllCounter::PickBranchVariable(SearchContext* ctx,
                                            const Component& component) {
  // Dynamic literal-occurrence scores over the current component: branch
  // on the variable constrained by the most active clauses, ties to the
  // smallest id. (Weighting shorter clauses higher was tried and measured
  // strictly worse on the grounded-lineage workloads.)
  BumpEpoch(ctx);
  VarId best = component.variables.front();
  std::uint64_t best_score = 0;
  for (std::uint32_t clause : component.clauses) {
    for (Lit lit : compact_.Clause(clause)) {
      VarId v = LitVariable(lit);
      if (ctx->trail->IsAssigned(v)) continue;
      if (ctx->score_stamp[v] != ctx->epoch) {
        ctx->score_stamp[v] = ctx->epoch;
        ctx->score[v] = 0;
      }
      ++ctx->score[v];
      if (ctx->score[v] > best_score ||
          (ctx->score[v] == best_score && v < best)) {
        best = v;
        best_score = ctx->score[v];
      }
    }
  }
  return best;
}

std::uint64_t DpllCounter::PackKey(SearchContext* ctx,
                                   const Component& component) {
  ComponentKey& key = ctx->key_scratch;
  key.clear();
  std::uint64_t state = ComponentHashInit();
  for (std::uint32_t clause : component.clauses) {
    for (Lit lit : compact_.Clause(clause)) {
      if (!ctx->trail->IsAssigned(LitVariable(lit))) {
        key.push_back(lit);
        state = ComponentHashStep(state, lit);
      }
    }
    key.push_back(kComponentKeySeparator);
    state = ComponentHashStep(state, kComponentKeySeparator);
  }
  return ComponentHashFinalize(state);
}

bool DpllCounter::IsSatisfiable(const prop::CnfFormula& cnf) {
  prop::CnfFormula normalized = cnf;
  prop::NormalizeCnf(&normalized);
  for (const Clause& clause : normalized.clauses) {
    if (clause.empty()) return false;
  }
  prop::CompactCnf compact = prop::CompactCnf::Build(normalized);
  Trail trail(&compact);
  std::uint64_t propagations = 0;
  if (!trail.PropagateExistingUnits(&propagations)) return false;
  std::function<bool()> solve = [&]() -> bool {
    // Find an active clause; with none left, the assignment extends to a
    // model.
    std::uint32_t target = compact.clause_count();
    for (std::uint32_t clause = 0; clause < compact.clause_count();
         ++clause) {
      if (!trail.ClauseSatisfied(clause)) {
        target = clause;
        break;
      }
    }
    if (target == compact.clause_count()) return true;
    Lit branch = 0;
    for (Lit lit : compact.Clause(target)) {
      if (!trail.IsAssigned(LitVariable(lit))) {
        branch = lit;
        break;
      }
    }
    for (Lit lit : {branch, NegateLit(branch)}) {
      std::size_t mark = trail.Mark();
      if (trail.AssignAndPropagate(lit, &propagations) && solve()) {
        return true;
      }
      trail.UndoTo(mark);
    }
    return false;
  };
  return solve();
}

numeric::BigRational CountWeightedModels(prop::CnfFormula cnf,
                                         WeightMap weights) {
  DpllCounter counter(std::move(cnf), std::move(weights));
  return counter.Count();
}

}  // namespace swfomc::wmc
