#include "wmc/dpll_counter.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>

namespace swfomc::wmc {

namespace {

using prop::Clause;
using prop::Literal;
using prop::VarId;
using numeric::BigRational;

std::set<VarId> VariablesOf(const std::vector<Clause>& clauses) {
  std::set<VarId> vars;
  for (const Clause& clause : clauses) {
    for (const Literal& literal : clause) vars.insert(literal.variable);
  }
  return vars;
}

// Conditions the clause set on `lit` being true. Returns nullopt if an
// empty clause (conflict) arises.
std::optional<std::vector<Clause>> Condition(const std::vector<Clause>& clauses,
                                             Literal lit) {
  std::vector<Clause> result;
  result.reserve(clauses.size());
  for (const Clause& clause : clauses) {
    bool satisfied = false;
    for (const Literal& l : clause) {
      if (l.variable == lit.variable && l.positive == lit.positive) {
        satisfied = true;
        break;
      }
    }
    if (satisfied) continue;
    Clause reduced;
    reduced.reserve(clause.size());
    for (const Literal& l : clause) {
      if (l.variable != lit.variable) reduced.push_back(l);
    }
    if (reduced.empty()) return std::nullopt;
    result.push_back(std::move(reduced));
  }
  return result;
}

std::string CanonicalKey(std::vector<Clause> clauses) {
  for (Clause& clause : clauses) std::sort(clause.begin(), clause.end());
  std::sort(clauses.begin(), clauses.end());
  std::string key;
  for (const Clause& clause : clauses) {
    for (const Literal& l : clause) {
      key += l.positive ? '+' : '-';
      key += std::to_string(l.variable);
      key += ',';
    }
    key += ';';
  }
  return key;
}

}  // namespace

DpllCounter::DpllCounter(prop::CnfFormula cnf, WeightMap weights)
    : DpllCounter(std::move(cnf), std::move(weights), Options{}) {}

DpllCounter::DpllCounter(prop::CnfFormula cnf, WeightMap weights,
                         Options options)
    : cnf_(std::move(cnf)), weights_(std::move(weights)), options_(options) {
  weights_.EnsureSize(cnf_.variable_count);
}

numeric::BigRational DpllCounter::Count() {
  prop::NormalizeCnf(&cnf_);
  for (const Clause& clause : cnf_.clauses) {
    if (clause.empty()) return BigRational(0);
  }
  std::set<VarId> mentioned = VariablesOf(cnf_.clauses);
  BigRational result = CountClauses(cnf_.clauses);
  // Variables never mentioned contribute (w + w̄) each.
  for (VarId v = 0; v < cnf_.variable_count; ++v) {
    if (!mentioned.contains(v)) {
      result *= weights_.Get(v).Total();
    }
  }
  return result;
}

numeric::BigRational DpllCounter::CountClauses(std::vector<Clause> clauses) {
  BigRational factor(1);
  // Unit propagation to fixpoint, batched one round at a time: collect
  // every unit literal, then condition the whole clause set in a single
  // pass. Variables that vanish because all their clauses got satisfied
  // are accounted for with one before/after diff over the entire loop.
  std::set<VarId> before_propagation;
  std::set<VarId> assigned;
  bool propagated = false;
  for (;;) {
    std::map<VarId, bool> units;
    for (const Clause& clause : clauses) {
      if (clause.size() == 1) {
        auto [it, inserted] =
            units.emplace(clause[0].variable, clause[0].positive);
        if (!inserted && it->second != clause[0].positive) {
          return BigRational(0);  // conflicting units
        }
      }
    }
    if (units.empty()) break;
    if (!propagated) {
      before_propagation = VariablesOf(clauses);
      propagated = true;
    }
    stats_.unit_propagations += units.size();
    for (const auto& [variable, positive] : units) {
      factor *= weights_.LiteralWeight(variable, positive);
      assigned.insert(variable);
    }
    std::vector<Clause> next;
    next.reserve(clauses.size());
    for (const Clause& clause : clauses) {
      bool satisfied = false;
      Clause reduced;
      reduced.reserve(clause.size());
      for (const Literal& l : clause) {
        auto it = units.find(l.variable);
        if (it == units.end()) {
          reduced.push_back(l);
        } else if (it->second == l.positive) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      if (reduced.empty()) return BigRational(0);
      next.push_back(std::move(reduced));
    }
    clauses = std::move(next);
    if (factor.IsZero()) {
      // Zero annihilates; still sound to stop (counts multiply through).
      return BigRational(0);
    }
  }
  if (propagated) {
    std::set<VarId> after = VariablesOf(clauses);
    for (VarId v : before_propagation) {
      if (!assigned.contains(v) && !after.contains(v)) {
        factor *= weights_.Get(v).Total();
      }
    }
    if (factor.IsZero()) return BigRational(0);
  }
  if (clauses.empty()) return factor;

  // Component decomposition: partition clauses by shared variables.
  if (options_.use_components) {
    std::map<VarId, std::size_t> var_group;  // var -> clause-group root
    std::vector<std::size_t> parent(clauses.size());
    for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
    std::function<std::size_t(std::size_t)> find =
        [&](std::size_t x) -> std::size_t {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    auto unite = [&](std::size_t a, std::size_t b) {
      a = find(a);
      b = find(b);
      if (a != b) parent[a] = b;
    };
    for (std::size_t i = 0; i < clauses.size(); ++i) {
      for (const Literal& l : clauses[i]) {
        auto it = var_group.find(l.variable);
        if (it == var_group.end()) {
          var_group.emplace(l.variable, i);
        } else {
          unite(it->second, i);
        }
      }
    }
    std::map<std::size_t, std::vector<Clause>> components;
    for (std::size_t i = 0; i < clauses.size(); ++i) {
      components[find(i)].push_back(clauses[i]);
    }
    if (components.size() > 1) {
      ++stats_.component_splits;
      BigRational product = factor;
      for (auto& [root, component] : components) {
        product *= CountComponentCached(std::move(component));
        if (product.IsZero()) return product;
      }
      return product;
    }
  }

  // Branch on the most frequent variable.
  std::map<VarId, std::size_t> occurrences;
  for (const Clause& clause : clauses) {
    for (const Literal& l : clause) ++occurrences[l.variable];
  }
  VarId best = occurrences.begin()->first;
  std::size_t best_count = 0;
  for (const auto& [v, count] : occurrences) {
    if (count > best_count) {
      best = v;
      best_count = count;
    }
  }
  ++stats_.decisions;

  BigRational total;
  std::set<VarId> before = VariablesOf(clauses);
  for (bool value : {true, false}) {
    Literal lit{best, value};
    auto conditioned = Condition(clauses, lit);
    if (!conditioned.has_value()) continue;
    BigRational term = weights_.LiteralWeight(best, value);
    if (!term.IsZero()) {
      std::set<VarId> after = VariablesOf(*conditioned);
      term *= CountClauses(std::move(*conditioned));
      for (VarId v : before) {
        if (v != best && !after.contains(v)) {
          term *= weights_.Get(v).Total();
        }
      }
    }
    total += term;
  }
  return factor * total;
}

numeric::BigRational DpllCounter::CountComponentCached(
    std::vector<Clause> clauses) {
  if (!options_.use_cache) return CountClauses(std::move(clauses));
  std::string key = CanonicalKey(clauses);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  BigRational result = CountClauses(std::move(clauses));
  cache_.emplace(std::move(key), result);
  stats_.cache_entries = cache_.size();
  return result;
}

bool DpllCounter::IsSatisfiable(const prop::CnfFormula& cnf) {
  std::vector<Clause> clauses = cnf.clauses;
  // Recursive lambda: DPLL decision procedure.
  std::function<bool(std::vector<Clause>)> solve =
      [&solve](std::vector<Clause> current) -> bool {
    // Unit propagation.
    for (;;) {
      const Clause* unit = nullptr;
      for (const Clause& clause : current) {
        if (clause.empty()) return false;
        if (clause.size() == 1) {
          unit = &clause;
          break;
        }
      }
      if (unit == nullptr) break;
      auto conditioned = Condition(current, (*unit)[0]);
      if (!conditioned.has_value()) return false;
      current = std::move(*conditioned);
    }
    if (current.empty()) return true;
    Literal lit = current[0][0];
    auto positive = Condition(current, lit);
    if (positive.has_value() && solve(std::move(*positive))) return true;
    auto negative = Condition(current, lit.Negated());
    return negative.has_value() && solve(std::move(*negative));
  };
  for (const Clause& clause : clauses) {
    if (clause.empty()) return false;
  }
  return solve(std::move(clauses));
}

numeric::BigRational CountWeightedModels(prop::CnfFormula cnf,
                                         WeightMap weights) {
  DpllCounter counter(std::move(cnf), std::move(weights));
  return counter.Count();
}

}  // namespace swfomc::wmc
