#include "wmc/dpll_counter.h"

#include <algorithm>
#include <functional>

namespace swfomc::wmc {

namespace {

using numeric::BigRational;
using prop::Clause;
using prop::Lit;
using prop::LitPositive;
using prop::LitVariable;
using prop::MakeLit;
using prop::NegateLit;
using prop::VarId;

}  // namespace

DpllCounter::DpllCounter(prop::CnfFormula cnf, WeightMap weights)
    : DpllCounter(std::move(cnf), std::move(weights), Options{}) {}

DpllCounter::DpllCounter(prop::CnfFormula cnf, WeightMap weights,
                         Options options)
    : cnf_(std::move(cnf)),
      weights_(std::move(weights)),
      options_(options),
      cache_(options.max_cache_entries) {
  weights_.EnsureSize(cnf_.variable_count);
}

numeric::BigRational DpllCounter::Count() {
  prop::NormalizeCnf(&cnf_);
  for (const Clause& clause : cnf_.clauses) {
    if (clause.empty()) return BigRational(0);
  }
  compact_ = prop::CompactCnf::Build(cnf_);
  trail_.emplace(&compact_);
  total_weight_.clear();
  total_weight_.reserve(cnf_.variable_count);
  for (VarId v = 0; v < cnf_.variable_count; ++v) {
    total_weight_.push_back(weights_.Get(v).Total());
  }
  epoch_ = 0;
  variable_stamp_.assign(cnf_.variable_count, 0);
  clause_mark_.assign(compact_.clause_count(), ClauseMark{});
  score_stamp_.assign(cnf_.variable_count, 0);
  score_.assign(cnf_.variable_count, 0);

  if (!trail_->PropagateExistingUnits(&stats_.unit_propagations)) {
    return BigRational(0);
  }
  BigRational result(1);
  for (Lit lit : trail_->assignments()) {
    const BigRational& weight =
        weights_.LiteralWeight(LitVariable(lit), LitPositive(lit));
    if (!weight.IsOne()) result *= weight;
  }
  if (result.IsZero()) return result;

  std::vector<VarId> candidates;
  candidates.reserve(cnf_.variable_count);
  for (VarId v = 0; v < cnf_.variable_count; ++v) {
    if (trail_->IsAssigned(v)) continue;
    if (compact_.Mentions(v)) {
      candidates.push_back(v);
    } else {
      // Never constrained by any clause: free (w + w̄) factor.
      result *= total_weight_[v];
    }
  }
  if (result.IsZero()) return result;
  std::vector<std::uint32_t> all_clauses(compact_.clause_count());
  for (std::uint32_t c = 0; c < compact_.clause_count(); ++c) {
    all_clauses[c] = c;
  }
  return result * CountResidual(candidates, all_clauses);
}

numeric::BigRational DpllCounter::CountResidual(
    const std::vector<VarId>& candidates,
    const std::vector<std::uint32_t>& parent_clauses) {
  std::vector<Component> components;
  std::vector<VarId> free_variables;
  FindComponents(candidates, parent_clauses, &components, &free_variables);

  BigRational result(1);
  for (VarId v : free_variables) {
    result *= total_weight_[v];
    if (result.IsZero()) break;
  }
  if (!result.IsZero() && !components.empty()) {
    if (!options_.use_components && components.size() > 1) {
      // Decomposition disabled: fuse everything back into one residual.
      Component merged;
      for (Component& component : components) {
        merged.variables.insert(merged.variables.end(),
                                component.variables.begin(),
                                component.variables.end());
        merged.clauses.insert(merged.clauses.end(),
                              component.clauses.begin(),
                              component.clauses.end());
      }
      std::sort(merged.variables.begin(), merged.variables.end());
      std::sort(merged.clauses.begin(), merged.clauses.end());
      result *= CountComponentCached(merged);
    } else {
      if (components.size() > 1) ++stats_.component_splits;
      for (const Component& component : components) {
        result *= CountComponentCached(component);
        if (result.IsZero()) break;
      }
    }
  }
  // Recycle the id-span buffers for later search nodes.
  for (Component& component : components) {
    component.variables.clear();
    component.clauses.clear();
    component_pool_.push_back(std::move(component));
  }
  return result;
}

numeric::BigRational DpllCounter::CountComponentCached(
    const Component& component) {
  // A single-clause component has the closed form
  //   Π_v (w_v + w̄_v)  −  Π_{lit} weight(¬lit)
  // (all assignments minus the one falsifying the clause); computing it
  // beats both branching and a cache round-trip, and such components are
  // the bulk of what Tseitin-encoded lineages shatter into.
  if (component.clauses.size() == 1) {
    BigRational all(1);
    BigRational falsifying(1);
    for (Lit lit : compact_.Clause(component.clauses.front())) {
      VarId v = LitVariable(lit);
      if (trail_->IsAssigned(v)) continue;
      all *= total_weight_[v];
      falsifying *= weights_.LiteralWeight(v, !LitPositive(lit));
    }
    return all - falsifying;
  }
  if (!options_.use_cache) return BranchOnComponent(component);
  std::uint64_t hash = PackKey(component);
  if (const BigRational* hit = cache_.Lookup(key_scratch_, hash)) {
    ++stats_.cache_hits;
    return *hit;
  }
  // Copy the scratch key out before recursing (nested lookups reuse it).
  ComponentKey key = key_scratch_;
  BigRational value = BranchOnComponent(component);
  cache_.Insert(std::move(key), hash, value);
  stats_.cache_entries = cache_.size();
  stats_.cache_collisions = cache_.collisions();
  stats_.cache_evictions = cache_.evictions();
  return value;
}

numeric::BigRational DpllCounter::BranchOnComponent(
    const Component& component) {
  VarId variable = PickBranchVariable(component);
  ++stats_.decisions;
  BigRational total;
  for (bool value : {true, false}) {
    const BigRational& weight = weights_.LiteralWeight(variable, value);
    if (weight.IsZero()) continue;  // the whole branch carries factor 0
    std::size_t mark = trail_->Mark();
    if (trail_->AssignAndPropagate(MakeLit(variable, value),
                                   &stats_.unit_propagations)) {
      BigRational term = weight;
      const std::vector<Lit>& trail = trail_->assignments();
      for (std::size_t i = mark + 1; i < trail.size(); ++i) {
        const BigRational& implied =
            weights_.LiteralWeight(LitVariable(trail[i]), LitPositive(trail[i]));
        if (!implied.IsOne()) term *= implied;
      }
      if (!term.IsZero()) {
        std::vector<VarId> remaining;
        remaining.reserve(component.variables.size());
        for (VarId v : component.variables) {
          if (!trail_->IsAssigned(v)) remaining.push_back(v);
        }
        term *= CountResidual(remaining, component.clauses);
      }
      total += term;
    }
    trail_->UndoTo(mark);
  }
  return total;
}

void DpllCounter::BumpEpoch() {
  if (++epoch_ == 0) {  // wraparound: wipe every stamp and restart
    std::fill(variable_stamp_.begin(), variable_stamp_.end(), 0);
    std::fill(clause_mark_.begin(), clause_mark_.end(), ClauseMark{});
    std::fill(score_stamp_.begin(), score_stamp_.end(), 0);
    epoch_ = 1;
  }
}

void DpllCounter::FindComponents(
    const std::vector<VarId>& candidates,
    const std::vector<std::uint32_t>& parent_clauses,
    std::vector<Component>* components, std::vector<VarId>* free_variables) {
  BumpEpoch();
  std::vector<VarId> stack;
  for (VarId seed : candidates) {
    if (variable_stamp_[seed] == epoch_) continue;
    variable_stamp_[seed] = epoch_;
    Component component;
    if (!component_pool_.empty()) {
      component = std::move(component_pool_.back());
      component_pool_.pop_back();
    }
    std::uint32_t component_index =
        static_cast<std::uint32_t>(components->size());
    bool has_clauses = false;
    stack.assign(1, seed);
    while (!stack.empty()) {
      VarId v = stack.back();
      stack.pop_back();
      component.variables.push_back(v);
      for (std::uint32_t clause : compact_.VariableOccurrences(v)) {
        ClauseMark& mark = clause_mark_[clause];
        if (mark.stamp == epoch_) continue;
        if (trail_->ClauseSatisfied(clause)) continue;
        mark = ClauseMark{epoch_, component_index};
        has_clauses = true;
        for (Lit lit : compact_.Clause(clause)) {
          VarId other = LitVariable(lit);
          if (variable_stamp_[other] == epoch_) continue;
          variable_stamp_[other] = epoch_;
          if (trail_->IsAssigned(other)) continue;  // stamped, not visited
          stack.push_back(other);
        }
      }
    }
    if (!has_clauses) {
      // All of the variable's clauses are satisfied: it is unconstrained
      // in this residual and contributes (w + w̄) directly.
      free_variables->push_back(seed);
      component.variables.clear();
      component_pool_.push_back(std::move(component));
    } else {
      components->push_back(std::move(component));
    }
  }
  if (components->empty()) return;
  // One sweep over the parent's (sorted) clause list hands every active
  // clause to its component in ascending id order, so cache signatures
  // are canonical without any per-component sort.
  for (std::uint32_t clause : parent_clauses) {
    if (clause_mark_[clause].stamp == epoch_) {
      (*components)[clause_mark_[clause].component].clauses.push_back(clause);
    }
  }
}

prop::VarId DpllCounter::PickBranchVariable(const Component& component) {
  // Dynamic literal-occurrence scores over the current component: branch
  // on the variable constrained by the most active clauses, ties to the
  // smallest id. (Weighting shorter clauses higher was tried and measured
  // strictly worse on the grounded-lineage workloads.)
  BumpEpoch();
  VarId best = component.variables.front();
  std::uint64_t best_score = 0;
  for (std::uint32_t clause : component.clauses) {
    for (Lit lit : compact_.Clause(clause)) {
      VarId v = LitVariable(lit);
      if (trail_->IsAssigned(v)) continue;
      if (score_stamp_[v] != epoch_) {
        score_stamp_[v] = epoch_;
        score_[v] = 0;
      }
      ++score_[v];
      if (score_[v] > best_score ||
          (score_[v] == best_score && v < best)) {
        best = v;
        best_score = score_[v];
      }
    }
  }
  return best;
}

std::uint64_t DpllCounter::PackKey(const Component& component) {
  ComponentKey& key = key_scratch_;
  key.clear();
  std::uint64_t state = ComponentHashInit();
  for (std::uint32_t clause : component.clauses) {
    for (Lit lit : compact_.Clause(clause)) {
      if (!trail_->IsAssigned(LitVariable(lit))) {
        key.push_back(lit);
        state = ComponentHashStep(state, lit);
      }
    }
    key.push_back(kComponentKeySeparator);
    state = ComponentHashStep(state, kComponentKeySeparator);
  }
  return ComponentHashFinalize(state);
}

bool DpllCounter::IsSatisfiable(const prop::CnfFormula& cnf) {
  prop::CnfFormula normalized = cnf;
  prop::NormalizeCnf(&normalized);
  for (const Clause& clause : normalized.clauses) {
    if (clause.empty()) return false;
  }
  prop::CompactCnf compact = prop::CompactCnf::Build(normalized);
  Trail trail(&compact);
  std::uint64_t propagations = 0;
  if (!trail.PropagateExistingUnits(&propagations)) return false;
  std::function<bool()> solve = [&]() -> bool {
    // Find an active clause; with none left, the assignment extends to a
    // model.
    std::uint32_t target = compact.clause_count();
    for (std::uint32_t clause = 0; clause < compact.clause_count();
         ++clause) {
      if (!trail.ClauseSatisfied(clause)) {
        target = clause;
        break;
      }
    }
    if (target == compact.clause_count()) return true;
    Lit branch = 0;
    for (Lit lit : compact.Clause(target)) {
      if (!trail.IsAssigned(LitVariable(lit))) {
        branch = lit;
        break;
      }
    }
    for (Lit lit : {branch, NegateLit(branch)}) {
      std::size_t mark = trail.Mark();
      if (trail.AssignAndPropagate(lit, &propagations) && solve()) {
        return true;
      }
      trail.UndoTo(mark);
    }
    return false;
  };
  return solve();
}

numeric::BigRational CountWeightedModels(prop::CnfFormula cnf,
                                         WeightMap weights) {
  DpllCounter counter(std::move(cnf), std::move(weights));
  return counter.Count();
}

}  // namespace swfomc::wmc
