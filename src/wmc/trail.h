#ifndef SWFOMC_WMC_TRAIL_H_
#define SWFOMC_WMC_TRAIL_H_

#include <cstdint>
#include <vector>

#include "prop/compact_cnf.h"

namespace swfomc::wmc {

/// Assignment trail over a CompactCnf, in the style of sharpSAT/Cachet:
/// per-variable truth values, per-clause satisfied/free-literal counters,
/// and a chronological trail of assignments so conditioning is done by
/// counter updates (O(occurrences) per literal) and backtracking by
/// replaying the trail in reverse — no clause vector is ever copied.
///
/// A clause is *satisfied* when some literal in it is assigned true,
/// *active* otherwise; an active clause whose free-literal count drops to
/// one forces its remaining literal (unit propagation), and to zero is a
/// conflict. On conflict the counters are still left consistent with the
/// trail, so UndoTo(mark) always restores the pre-branch state exactly.
class Trail {
 public:
  explicit Trail(const prop::CompactCnf* cnf);

  bool IsAssigned(prop::VarId variable) const {
    return values_[variable] != kUnassigned;
  }
  bool ClauseSatisfied(std::uint32_t clause) const {
    return satisfied_count_[clause] > 0;
  }
  /// Unassigned literals of an active clause (meaningless once satisfied).
  std::uint32_t FreeLiteralCount(std::uint32_t clause) const {
    return free_count_[clause];
  }

  /// Current trail height; pass back to UndoTo to unwind a branch.
  std::size_t Mark() const { return trail_.size(); }
  /// Literals assigned true, in assignment order (decisions followed by
  /// their implications).
  const std::vector<prop::Lit>& assignments() const { return trail_; }

  /// Assigns `decision` true and runs unit propagation to fixpoint.
  /// Implied literals are appended to the trail after the decision and
  /// counted into `*propagations`. Returns false on conflict (the trail
  /// then still holds every assignment made — call UndoTo to unwind).
  bool AssignAndPropagate(prop::Lit decision, std::uint64_t* propagations);

  /// Seeds propagation from clauses that are unit in the formula itself
  /// (used once at the root; decisions handle everything afterwards).
  /// Returns false on conflict, including a pre-existing empty clause.
  bool PropagateExistingUnits(std::uint64_t* propagations);

  /// Unassigns every trail literal above `mark`, restoring all counters.
  void UndoTo(std::size_t mark);

 private:
  static constexpr std::int8_t kUnassigned = -1;

  // Assigns one literal, updating every counter it touches (even past a
  // conflict, to keep UndoTo exact). Forced literals are pushed onto
  // queue_. Returns false iff some clause lost its last free literal.
  bool AssignOne(prop::Lit lit);
  bool DrainQueue(std::uint64_t* propagations);

  const prop::CompactCnf* cnf_;
  std::vector<std::int8_t> values_;
  std::vector<prop::Lit> trail_;
  std::vector<std::uint32_t> satisfied_count_;
  std::vector<std::uint32_t> free_count_;
  std::vector<prop::Lit> queue_;
  std::size_t queue_head_ = 0;
};

}  // namespace swfomc::wmc

#endif  // SWFOMC_WMC_TRAIL_H_
