#ifndef SWFOMC_WMC_WEIGHTS_H_
#define SWFOMC_WMC_WEIGHTS_H_

#include <cassert>
#include <vector>

#include "numeric/rational.h"
#include "prop/prop_formula.h"

namespace swfomc::wmc {

/// Per-variable weight pair (w, w̄) as in Section 2, Eq. (2)-(3):
/// WMC(F, w, w̄) = Σ_{θ |= F} Π_{θ(X)=1} w(X) · Π_{θ(X)=0} w̄(X).
/// Weights may be negative or zero.
struct VariableWeights {
  numeric::BigRational positive{1};  // w(X)
  numeric::BigRational negative{1};  // w̄(X)

  /// w + w̄: the total weight of an unconstrained variable.
  numeric::BigRational Total() const { return positive + negative; }
};

/// Weight table indexed by VarId.
class WeightMap {
 public:
  WeightMap() = default;
  /// All `count` variables weighted (1, 1) — plain model counting.
  explicit WeightMap(std::size_t count) : weights_(count) {}

  std::size_t size() const { return weights_.size(); }
  /// Grows the table with (1, 1) entries if needed.
  void EnsureSize(std::size_t count) {
    if (weights_.size() < count) weights_.resize(count);
  }

  // Get/LiteralWeight sit on the counters' innermost loops; callers run
  // behind EnsureSize, so the bounds check is a debug assert rather than
  // an .at() throw.
  const VariableWeights& Get(prop::VarId variable) const {
    assert(variable < weights_.size());
    return weights_[variable];
  }
  void Set(prop::VarId variable, numeric::BigRational positive,
           numeric::BigRational negative) {
    weights_.at(variable) =
        VariableWeights{std::move(positive), std::move(negative)};
  }

  /// Weight of a single literal.
  const numeric::BigRational& LiteralWeight(prop::VarId variable,
                                            bool positive) const {
    assert(variable < weights_.size());
    const VariableWeights& w = weights_[variable];
    return positive ? w.positive : w.negative;
  }

 private:
  std::vector<VariableWeights> weights_;
};

}  // namespace swfomc::wmc

#endif  // SWFOMC_WMC_WEIGHTS_H_
