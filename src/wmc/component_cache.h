#ifndef SWFOMC_WMC_COMPONENT_CACHE_H_
#define SWFOMC_WMC_COMPONENT_CACHE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "numeric/rational.h"

namespace swfomc::wmc {

/// Packed signature of a residual component: the free (unassigned)
/// compact literals of each active clause, clauses in ascending id order,
/// each clause terminated by kComponentKeySeparator. Literals use global
/// variable ids, so equal keys imply equal residual formulas *and* equal
/// weight vectors — a key determines its weighted count. That key-determines-
/// value property is also what makes sharing the cache between threads
/// sound: whichever thread computes a key first, every later reader gets
/// the same exact count.
using ComponentKey = std::vector<std::uint32_t>;

inline constexpr std::uint32_t kComponentKeySeparator = 0xFFFFFFFFu;

/// Incremental FNV-1a over 32-bit words with a splitmix64 finalizer;
/// exposed stepwise so signatures can be hashed while they are packed.
inline constexpr std::uint64_t ComponentHashInit() {
  return 0xcbf29ce484222325ull;  // FNV offset basis
}
inline constexpr std::uint64_t ComponentHashStep(std::uint64_t hash,
                                                 std::uint32_t word) {
  return (hash ^ word) * 0x100000001b3ull;  // FNV prime
}
inline constexpr std::uint64_t ComponentHashFinalize(std::uint64_t hash) {
  hash ^= hash >> 30;
  hash *= 0xbf58476d1ce4e5b9ull;
  hash ^= hash >> 27;
  hash *= 0x94d049bb133111ebull;
  hash ^= hash >> 31;
  return hash;
}

/// 64-bit hash of a packed signature.
std::uint64_t HashComponentKey(const ComponentKey& key);

/// Bounded hashed memo table for component counts: entries are addressed
/// by the 64-bit hash, the packed key is stored alongside the value to
/// resolve collisions exactly, and both the entry count and the resident
/// bytes are bounded — inserting past either bound evicts the oldest
/// entries (FIFO over *insertion or refresh* time: an entry replaced in
/// place counts as fresh and moves to the back of the eviction queue, so
/// a just-refreshed entry can never be evicted by its own insertion's
/// overflow handling). Unsynchronized; this is one shard of a
/// ShardedComponentCache (or the whole cache in the single-threaded
/// counter).
///
/// Byte accounting covers what the cache actually owns per entry: the
/// packed key's word buffer, the BigRational payload's limb buffers, and
/// a fixed per-entry overhead estimate for the map node + deque slot. An
/// entry larger than the whole byte bound on its own is not inserted
/// (evicting everything to fit one giant entry would destroy the cache's
/// purpose).
///
/// Counter invariants (asserted by the stress tests):
///   hits + collisions <= lookups, evictions <= insertions,
///   size() <= insertions - evictions (replacement inserts keep size flat).
class ComponentCache {
 public:
  static constexpr std::size_t kUnboundedBytes = ~std::size_t{0};
  /// Estimated fixed cost of one entry beyond its variable-size buffers:
  /// the unordered_map node (hash key, Entry struct, bucket link) plus
  /// the insertion-order slot (hash + refresh token).
  static constexpr std::size_t kEntryOverheadBytes =
      sizeof(std::uint64_t) * 3 + sizeof(void*) * 2 + sizeof(ComponentKey) +
      sizeof(numeric::BigRational) + sizeof(std::size_t) * 2;

  explicit ComponentCache(std::size_t max_entries,
                          std::size_t max_bytes = kUnboundedBytes);

  /// Returns the cached count for `key`, or nullptr on a miss. A hash
  /// match with a different stored key counts as a collision and a miss.
  /// The pointer is valid until the next Insert — fine single-threaded;
  /// the synchronized sharded front copies it out under the shard lock
  /// instead of exposing it. Defined inline: this is the hottest call in
  /// the whole counter (~1 probe per search node).
  const numeric::BigRational* Lookup(const ComponentKey& key,
                                     std::uint64_t hash) {
    ++lookups_;
    auto it = entries_.find(hash);
    if (it == entries_.end()) return nullptr;
    if (it->second.key != key) {
      ++collisions_;
      return nullptr;
    }
    ++hits_;
    return &it->second.value;
  }
  void Insert(ComponentKey key, std::uint64_t hash,
              numeric::BigRational value);

  std::size_t size() const { return entries_.size(); }
  /// Resident bytes currently accounted to entries (keys + rational limb
  /// buffers + per-entry overhead).
  std::size_t bytes() const { return bytes_; }
  std::size_t max_bytes() const { return max_bytes_; }
  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t collisions() const { return collisions_; }
  std::uint64_t insertions() const { return insertions_; }
  std::uint64_t evictions() const { return evictions_; }

  /// Bytes accounted to one (key, value) pair if it were an entry.
  static std::size_t EntryBytes(const ComponentKey& key,
                                const numeric::BigRational& value) {
    return key.capacity() * sizeof(std::uint32_t) + value.HeapBytes() +
           kEntryOverheadBytes;
  }

 private:
  struct Entry {
    ComponentKey key;
    numeric::BigRational value;
    std::size_t bytes;  // EntryBytes at insertion, so removal balances
    /// Matches exactly one insertion_order_ slot; a replacement bumps the
    /// token and enqueues a fresh slot, orphaning the old one.
    std::uint64_t token;
  };

  struct OrderSlot {
    std::uint64_t hash;
    std::uint64_t token;
  };

  void EvictOldest();
  /// Drops orphaned order slots once they outnumber the live ones, so the
  /// queue stays linear in the entry count even under replacement storms.
  void CompactOrderQueue();

  std::size_t max_entries_;
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  std::uint64_t next_token_ = 0;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::deque<OrderSlot> insertion_order_;
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t collisions_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
};

/// Mutex-striped sharded front for ComponentCache: the hash's top bits
/// pick a shard, and each shard pairs its own mutex with its own bounded
/// table, so concurrent workers contend only when they touch the same
/// stripe. Constructed unsynchronized for the single-threaded counter, in
/// which case the locks are skipped entirely and shard 0 behaves exactly
/// like the PR-2 cache.
class ShardedComponentCache {
 public:
  /// `max_entries` and `max_bytes` are global bounds, split evenly across
  /// shards. `shard_count` is rounded up to a power of two (so shard
  /// selection is a mask); `synchronized` false elides all locking.
  ShardedComponentCache(std::size_t max_entries, std::size_t shard_count,
                        bool synchronized,
                        std::size_t max_bytes = ComponentCache::kUnboundedBytes);

  /// Copies the cached count into `*value` (reusing its capacity) and
  /// returns true on a hit. Works in both configurations; under
  /// synchronization the copy happens inside the shard lock, which is
  /// what makes concurrent eviction safe.
  bool Lookup(const ComponentKey& key, std::uint64_t hash,
              numeric::BigRational* value) {
    Shard& shard = ShardFor(hash);
    std::unique_lock<std::mutex> lock(shard.mutex, std::defer_lock);
    if (synchronized_) lock.lock();
    const numeric::BigRational* hit = shard.cache.Lookup(key, hash);
    if (hit == nullptr) return false;
    *value = *hit;  // copied inside the lock; eviction can't invalidate it
    return true;
  }
  void Insert(ComponentKey key, std::uint64_t hash,
              numeric::BigRational value) {
    Shard& shard = ShardFor(hash);
    std::unique_lock<std::mutex> lock(shard.mutex, std::defer_lock);
    if (synchronized_) lock.lock();
    shard.cache.Insert(std::move(key), hash, std::move(value));
  }

  bool synchronized() const { return synchronized_; }
  std::size_t shard_count() const { return shards_.size(); }

  /// The underlying table when there is exactly one unsynchronized shard
  /// (the sequential counter's configuration), else nullptr. Lets the hot
  /// probe loop skip the shard-selection indirection entirely.
  ComponentCache* LocalShard() {
    if (synchronized_ || shards_.size() != 1) return nullptr;
    return &shards_.front()->cache;
  }

  /// Aggregated counters (sums over shards). Safe to call concurrently
  /// with Lookup/Insert only in the synchronized configuration.
  std::size_t size() const;
  std::size_t bytes() const;
  std::uint64_t lookups() const;
  std::uint64_t hits() const;
  std::uint64_t collisions() const;
  std::uint64_t insertions() const;
  std::uint64_t evictions() const;

 private:
  struct Shard {
    Shard(std::size_t max_entries, std::size_t max_bytes)
        : cache(max_entries, max_bytes) {}
    mutable std::mutex mutex;
    ComponentCache cache;
  };

  Shard& ShardFor(std::uint64_t hash) {
    // Top bits: the unordered_map inside the shard consumes the low bits,
    // so shard selection and bucket selection stay independent.
    return *shards_[(hash >> 48) & shard_mask_];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t shard_mask_;
  bool synchronized_;
};

}  // namespace swfomc::wmc

#endif  // SWFOMC_WMC_COMPONENT_CACHE_H_
