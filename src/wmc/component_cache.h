#ifndef SWFOMC_WMC_COMPONENT_CACHE_H_
#define SWFOMC_WMC_COMPONENT_CACHE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "numeric/rational.h"

namespace swfomc::wmc {

/// Packed signature of a residual component: the free (unassigned)
/// compact literals of each active clause, clauses in ascending id order,
/// each clause terminated by kComponentKeySeparator. Literals use global
/// variable ids, so equal keys imply equal residual formulas *and* equal
/// weight vectors — a key determines its weighted count.
using ComponentKey = std::vector<std::uint32_t>;

inline constexpr std::uint32_t kComponentKeySeparator = 0xFFFFFFFFu;

/// Incremental FNV-1a over 32-bit words with a splitmix64 finalizer;
/// exposed stepwise so signatures can be hashed while they are packed.
inline constexpr std::uint64_t ComponentHashInit() {
  return 0xcbf29ce484222325ull;  // FNV offset basis
}
inline constexpr std::uint64_t ComponentHashStep(std::uint64_t hash,
                                                 std::uint32_t word) {
  return (hash ^ word) * 0x100000001b3ull;  // FNV prime
}
inline constexpr std::uint64_t ComponentHashFinalize(std::uint64_t hash) {
  hash ^= hash >> 30;
  hash *= 0xbf58476d1ce4e5b9ull;
  hash ^= hash >> 27;
  hash *= 0x94d049bb133111ebull;
  hash ^= hash >> 31;
  return hash;
}

/// 64-bit hash of a packed signature.
std::uint64_t HashComponentKey(const ComponentKey& key);

/// Bounded hashed memo table for component counts, replacing a
/// string-keyed std::map: entries are addressed by the 64-bit hash, the
/// packed key is stored alongside the value to resolve collisions
/// exactly, and the entry count is bounded — inserting past the bound
/// evicts the oldest entries (FIFO).
class ComponentCache {
 public:
  explicit ComponentCache(std::size_t max_entries);

  /// Returns the cached count for `key`, or nullptr on a miss. A hash
  /// match with a different stored key counts as a collision and a miss.
  const numeric::BigRational* Lookup(const ComponentKey& key,
                                     std::uint64_t hash);
  void Insert(ComponentKey key, std::uint64_t hash,
              numeric::BigRational value);

  std::size_t size() const { return entries_.size(); }
  std::uint64_t collisions() const { return collisions_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    ComponentKey key;
    numeric::BigRational value;
  };

  std::size_t max_entries_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::deque<std::uint64_t> insertion_order_;
  std::uint64_t collisions_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace swfomc::wmc

#endif  // SWFOMC_WMC_COMPONENT_CACHE_H_
