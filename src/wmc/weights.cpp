#include "wmc/weights.h"

// WeightMap is header-only; this translation unit anchors the module in the
// build and is the natural home for future out-of-line helpers.

namespace swfomc::wmc {}  // namespace swfomc::wmc
