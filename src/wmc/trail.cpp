#include "wmc/trail.h"

namespace swfomc::wmc {

using prop::Lit;
using prop::LitPositive;
using prop::LitVariable;
using prop::NegateLit;
using prop::VarId;

Trail::Trail(const prop::CompactCnf* cnf)
    : cnf_(cnf),
      values_(cnf->variable_count(), kUnassigned),
      satisfied_count_(cnf->clause_count(), 0),
      free_count_(cnf->clause_count(), 0) {
  trail_.reserve(cnf->variable_count());
  for (std::uint32_t clause = 0; clause < cnf_->clause_count(); ++clause) {
    free_count_[clause] = cnf_->ClauseSize(clause);
  }
}

bool Trail::AssignOne(Lit lit) {
  VarId variable = LitVariable(lit);
  values_[variable] = LitPositive(lit) ? 1 : 0;
  trail_.push_back(lit);
  bool conflict = false;
  for (std::uint32_t clause : cnf_->Occurrences(lit)) {
    ++satisfied_count_[clause];
  }
  for (std::uint32_t clause : cnf_->Occurrences(NegateLit(lit))) {
    std::uint32_t free = --free_count_[clause];
    if (satisfied_count_[clause] != 0) continue;
    if (free == 0) {
      conflict = true;  // keep updating the remaining counters
    } else if (free == 1) {
      for (Lit candidate : cnf_->Clause(clause)) {
        if (values_[LitVariable(candidate)] == kUnassigned) {
          queue_.push_back(candidate);
          break;
        }
      }
    }
  }
  return !conflict;
}

bool Trail::DrainQueue(std::uint64_t* propagations) {
  while (queue_head_ < queue_.size()) {
    Lit lit = queue_[queue_head_++];
    VarId variable = LitVariable(lit);
    if (values_[variable] != kUnassigned) {
      if (values_[variable] == (LitPositive(lit) ? 1 : 0)) continue;
      queue_.clear();
      queue_head_ = 0;
      return false;  // forced both ways
    }
    ++*propagations;
    if (!AssignOne(lit)) {
      queue_.clear();
      queue_head_ = 0;
      return false;
    }
  }
  queue_.clear();
  queue_head_ = 0;
  return true;
}

bool Trail::AssignAndPropagate(Lit decision, std::uint64_t* propagations) {
  queue_.clear();
  queue_head_ = 0;
  if (!AssignOne(decision)) {
    queue_.clear();
    queue_head_ = 0;
    return false;
  }
  return DrainQueue(propagations);
}

bool Trail::PropagateExistingUnits(std::uint64_t* propagations) {
  queue_.clear();
  queue_head_ = 0;
  for (std::uint32_t clause = 0; clause < cnf_->clause_count(); ++clause) {
    if (satisfied_count_[clause] != 0) continue;
    if (free_count_[clause] == 0) return false;  // empty clause
    if (free_count_[clause] == 1) {
      for (Lit candidate : cnf_->Clause(clause)) {
        if (values_[LitVariable(candidate)] == kUnassigned) {
          queue_.push_back(candidate);
          break;
        }
      }
    }
  }
  return DrainQueue(propagations);
}

void Trail::UndoTo(std::size_t mark) {
  while (trail_.size() > mark) {
    Lit lit = trail_.back();
    trail_.pop_back();
    values_[LitVariable(lit)] = kUnassigned;
    for (std::uint32_t clause : cnf_->Occurrences(lit)) {
      --satisfied_count_[clause];
    }
    for (std::uint32_t clause : cnf_->Occurrences(NegateLit(lit))) {
      ++free_count_[clause];
    }
  }
}

}  // namespace swfomc::wmc
