#include "wmc/brute_force.h"

#include <stdexcept>

namespace swfomc::wmc {

namespace {

constexpr std::uint32_t kMaxBruteForceVariables = 30;

void CheckSize(std::uint32_t variable_count) {
  if (variable_count > kMaxBruteForceVariables) {
    throw std::invalid_argument(
        "BruteForceWMC: refusing to enumerate 2^" +
        std::to_string(variable_count) + " assignments");
  }
}

}  // namespace

numeric::BigRational BruteForceWMC(const prop::PropFormula& formula,
                                   std::uint32_t variable_count,
                                   const WeightMap& weights) {
  CheckSize(variable_count);
  numeric::BigRational total;
  std::vector<bool> assignment(variable_count, false);
  std::uint64_t limit = 1ULL << variable_count;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    for (std::uint32_t i = 0; i < variable_count; ++i) {
      assignment[i] = (mask >> i) & 1;
    }
    if (!EvaluateProp(formula, assignment)) continue;
    numeric::BigRational weight(1);
    for (std::uint32_t i = 0; i < variable_count; ++i) {
      weight *= weights.LiteralWeight(i, assignment[i]);
    }
    total += weight;
  }
  return total;
}

numeric::BigRational BruteForceWMC(const prop::CnfFormula& cnf,
                                   const WeightMap& weights) {
  CheckSize(cnf.variable_count);
  numeric::BigRational total;
  std::vector<bool> assignment(cnf.variable_count, false);
  std::uint64_t limit = 1ULL << cnf.variable_count;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    for (std::uint32_t i = 0; i < cnf.variable_count; ++i) {
      assignment[i] = (mask >> i) & 1;
    }
    if (!cnf.IsSatisfiedBy(assignment)) continue;
    numeric::BigRational weight(1);
    for (std::uint32_t i = 0; i < cnf.variable_count; ++i) {
      weight *= weights.LiteralWeight(i, assignment[i]);
    }
    total += weight;
  }
  return total;
}

numeric::BigInt BruteForceCount(const prop::PropFormula& formula,
                                std::uint32_t variable_count) {
  CheckSize(variable_count);
  numeric::BigInt count(0);
  std::vector<bool> assignment(variable_count, false);
  std::uint64_t limit = 1ULL << variable_count;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    for (std::uint32_t i = 0; i < variable_count; ++i) {
      assignment[i] = (mask >> i) & 1;
    }
    if (EvaluateProp(formula, assignment)) count += numeric::BigInt(1);
  }
  return count;
}

}  // namespace swfomc::wmc
