#ifndef SWFOMC_WMC_TRACE_H_
#define SWFOMC_WMC_TRACE_H_

#include <cstdint>
#include <span>

#include "prop/compact_cnf.h"

namespace swfomc::wmc {

/// Receiver for the DPLL counter's search trace (knowledge compilation).
///
/// When DpllCounter::Options::trace_sink is set, the counter narrates its
/// search as it counts: every branch point becomes a deterministic OR
/// (annotated with its decision variable), every component split becomes
/// a decomposable AND, and every component-cache hit is replayed as a
/// reference to the node the first computation returned — so the emitted
/// structure is a d-DNNF DAG no larger than the search's set of distinct
/// cached components. The callbacks return opaque node ids; the counter
/// never interprets them, it only threads them back into later calls.
///
/// The trace is weight-independent: in tracing mode the counter disables
/// every zero-weight shortcut (skipped branches, zero-factor early
/// returns, the single-clause closed form), so the same circuit evaluates
/// correctly under *any* weight vector, not just the one it was counted
/// with. Tracing forces the search sequential.
class TraceSink {
 public:
  using NodeId = std::uint32_t;
  static constexpr NodeId kNoNode = 0xFFFFFFFFu;

  virtual ~TraceSink() = default;

  /// The neutral/absorbing constants (empty residual, conflicting branch).
  virtual NodeId True() = 0;
  virtual NodeId False() = 0;
  /// A decided or implied literal.
  virtual NodeId Literal(prop::Lit lit) = 0;
  /// A variable unconstrained in its residual: semantically OR(v, ¬v),
  /// the (w + w̄) factor of the count.
  virtual NodeId FreeVariable(prop::VarId variable) = 0;
  /// Decomposable conjunction: children have pairwise disjoint variables
  /// (decision/implied literals, free variables, component counts).
  virtual NodeId And(std::span<const NodeId> children) = 0;
  /// Deterministic disjunction over the two phases of `decision`; each
  /// child fixes the decision variable to a distinct value (conflicting
  /// branches are omitted, so 0..2 children arrive).
  virtual NodeId Or(prop::VarId decision, std::span<const NodeId> children) = 0;
  /// Called exactly once per Count(), after the search finishes, with the
  /// node representing the whole formula.
  virtual void Root(NodeId root) = 0;
};

}  // namespace swfomc::wmc

#endif  // SWFOMC_WMC_TRACE_H_
