#include "wmc/component_cache.h"

#include <utility>

namespace swfomc::wmc {

std::uint64_t HashComponentKey(const ComponentKey& key) {
  std::uint64_t hash = ComponentHashInit();
  for (std::uint32_t word : key) hash = ComponentHashStep(hash, word);
  return ComponentHashFinalize(hash);
}

ComponentCache::ComponentCache(std::size_t max_entries)
    : max_entries_(max_entries) {}

const numeric::BigRational* ComponentCache::Lookup(const ComponentKey& key,
                                                   std::uint64_t hash) {
  auto it = entries_.find(hash);
  if (it == entries_.end()) return nullptr;
  if (it->second.key != key) {
    ++collisions_;
    return nullptr;
  }
  return &it->second.value;
}

void ComponentCache::Insert(ComponentKey key, std::uint64_t hash,
                            numeric::BigRational value) {
  if (max_entries_ == 0) return;
  auto it = entries_.find(hash);
  if (it != entries_.end()) {
    // Hash collision with a different key (Lookup missed): keep the fresh
    // entry, which the search is more likely to revisit.
    it->second = Entry{std::move(key), std::move(value)};
    return;
  }
  while (entries_.size() >= max_entries_) {
    entries_.erase(insertion_order_.front());
    insertion_order_.pop_front();
    ++evictions_;
  }
  insertion_order_.push_back(hash);
  entries_.emplace(hash, Entry{std::move(key), std::move(value)});
}

}  // namespace swfomc::wmc
