#include "wmc/component_cache.h"

#include <utility>

namespace swfomc::wmc {

std::uint64_t HashComponentKey(const ComponentKey& key) {
  std::uint64_t hash = ComponentHashInit();
  for (std::uint32_t word : key) hash = ComponentHashStep(hash, word);
  return ComponentHashFinalize(hash);
}

ComponentCache::ComponentCache(std::size_t max_entries, std::size_t max_bytes)
    : max_entries_(max_entries), max_bytes_(max_bytes) {}

void ComponentCache::EvictOldest() {
  // Skip slots orphaned by in-place replacements: a replaced entry's old
  // slot stays in the queue with a stale token, and only the slot whose
  // token still matches the live entry names an actual victim.
  while (true) {
    const OrderSlot slot = insertion_order_.front();
    insertion_order_.pop_front();
    auto victim = entries_.find(slot.hash);
    if (victim == entries_.end() || victim->second.token != slot.token) {
      continue;
    }
    bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++evictions_;
    return;
  }
}

void ComponentCache::CompactOrderQueue() {
  if (insertion_order_.size() <= 2 * entries_.size() + 16) return;
  std::deque<OrderSlot> live;
  for (const OrderSlot& slot : insertion_order_) {
    auto it = entries_.find(slot.hash);
    if (it != entries_.end() && it->second.token == slot.token) {
      live.push_back(slot);
    }
  }
  insertion_order_ = std::move(live);
}

void ComponentCache::Insert(ComponentKey key, std::uint64_t hash,
                            numeric::BigRational value) {
  if (max_entries_ == 0 || max_bytes_ == 0) return;
  std::size_t entry_bytes = EntryBytes(key, value);
  // A single entry bigger than the whole byte bound would force evicting
  // everything else just to hold it; skip it instead.
  if (entry_bytes > max_bytes_) return;
  ++insertions_;
  auto it = entries_.find(hash);
  if (it != entries_.end()) {
    // Hash collision with a different key (Lookup missed), or a second
    // worker racing us to the same key: keep the fresh entry. Same-key
    // replacement stores the identical value — counts are determined by
    // their keys — so this is benign either way. The refresh re-enqueues
    // the entry at the back of the eviction order: it is the newest entry
    // now, and the overflow loop below must victimize the *oldest* ones,
    // never the entry this very call just paid to store.
    bytes_ -= it->second.bytes;
    std::uint64_t token = ++next_token_;
    it->second = Entry{std::move(key), std::move(value), entry_bytes, token};
    bytes_ += entry_bytes;
    insertion_order_.push_back(OrderSlot{hash, token});
    CompactOrderQueue();
    while (bytes_ > max_bytes_) EvictOldest();
    return;
  }
  while (entries_.size() >= max_entries_ ||
         (!entries_.empty() && bytes_ + entry_bytes > max_bytes_)) {
    EvictOldest();
  }
  std::uint64_t token = ++next_token_;
  insertion_order_.push_back(OrderSlot{hash, token});
  entries_.emplace(hash,
                   Entry{std::move(key), std::move(value), entry_bytes, token});
  bytes_ += entry_bytes;
}

namespace {

std::size_t RoundUpPowerOfTwo(std::size_t value) {
  std::size_t result = 1;
  while (result < value) result <<= 1;
  return result;
}

}  // namespace

ShardedComponentCache::ShardedComponentCache(std::size_t max_entries,
                                             std::size_t shard_count,
                                             bool synchronized,
                                             std::size_t max_bytes)
    : synchronized_(synchronized) {
  std::size_t shards = RoundUpPowerOfTwo(shard_count == 0 ? 1 : shard_count);
  // max_entries is a *global* bound: with fewer entries than requested
  // shards, drop the shard count (more stripes than entries buys nothing)
  // rather than rounding every shard up to 1 and overshooting the bound.
  while (shards > 1 && max_entries / shards == 0) shards /= 2;
  shard_mask_ = shards - 1;
  std::size_t per_shard = max_entries / shards;
  // The byte bound splits the same way; hashing spreads entries evenly
  // enough that a per-shard slice enforces the global ceiling.
  std::size_t bytes_per_shard = max_bytes == ComponentCache::kUnboundedBytes
                                    ? ComponentCache::kUnboundedBytes
                                    : max_bytes / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(per_shard, bytes_per_shard));
  }
}

#define SWFOMC_CACHE_AGGREGATE(method, type)                       \
  type ShardedComponentCache::method() const {                     \
    type total = 0;                                                \
    for (const std::unique_ptr<Shard>& shard : shards_) {          \
      std::unique_lock<std::mutex> lock(shard->mutex,              \
                                        std::defer_lock);          \
      if (synchronized_) lock.lock();                              \
      total += shard->cache.method();                              \
    }                                                              \
    return total;                                                  \
  }

SWFOMC_CACHE_AGGREGATE(size, std::size_t)
SWFOMC_CACHE_AGGREGATE(bytes, std::size_t)
SWFOMC_CACHE_AGGREGATE(lookups, std::uint64_t)
SWFOMC_CACHE_AGGREGATE(hits, std::uint64_t)
SWFOMC_CACHE_AGGREGATE(collisions, std::uint64_t)
SWFOMC_CACHE_AGGREGATE(insertions, std::uint64_t)
SWFOMC_CACHE_AGGREGATE(evictions, std::uint64_t)

#undef SWFOMC_CACHE_AGGREGATE

}  // namespace swfomc::wmc
