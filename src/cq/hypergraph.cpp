#include "cq/hypergraph.h"

namespace swfomc::cq {

void Hypergraph::AddEdge(std::string name, std::set<std::string> nodes) {
  edges_.push_back(Edge{std::move(name), std::move(nodes)});
}

std::set<std::string> Hypergraph::Nodes() const {
  std::set<std::string> nodes;
  for (const Edge& edge : edges_) {
    nodes.insert(edge.nodes.begin(), edge.nodes.end());
  }
  return nodes;
}

std::vector<std::size_t> Hypergraph::EdgesContaining(
    const std::string& node) const {
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].nodes.contains(node)) result.push_back(i);
  }
  return result;
}

std::string Hypergraph::ToString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) out += ", ";
    out += edges_[i].name + ":{";
    bool first = true;
    for (const std::string& node : edges_[i].nodes) {
      if (!first) out += ",";
      out += node;
      first = false;
    }
    out += "}";
  }
  return out + "}";
}

Hypergraph BuildHypergraph(const ConjunctiveQuery& query) {
  Hypergraph graph;
  for (const ConjunctiveQuery::QueryAtom& atom : query.atoms()) {
    graph.AddEdge(atom.relation, std::set<std::string>(
                                     atom.variables.begin(),
                                     atom.variables.end()));
  }
  return graph;
}

}  // namespace swfomc::cq
