#include "cq/typed_cycle.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "prop/prop_formula.h"
#include "prop/tseitin.h"
#include "wmc/dpll_counter.h"
#include "wmc/weights.h"

namespace swfomc::cq {

namespace {

using numeric::BigRational;

// Typed tuple-variable index: lazily assigns a propositional variable to
// each accessed ground tuple R(a_1..a_m). Tuples never accessed by any
// assignment are unconstrained and marginalize to a factor of 1 in
// probability semantics, so they need no variable at all.
class TypedTupleIndex {
 public:
  prop::VarId VariableFor(const std::string& relation,
                          const std::vector<std::uint64_t>& constants) {
    std::string key = relation;
    for (std::uint64_t c : constants) {
      key += ',';
      key += std::to_string(c);
    }
    auto [it, inserted] = ids_.emplace(std::move(key), next_id_);
    if (inserted) {
      relation_of_.push_back(relation);
      ++next_id_;
    }
    return it->second;
  }

  std::uint32_t Count() const { return next_id_; }
  const std::string& RelationOf(prop::VarId id) const {
    return relation_of_.at(id);
  }

 private:
  std::map<std::string, prop::VarId> ids_;
  std::vector<std::string> relation_of_;
  prop::VarId next_id_ = 0;
};

// Enumerates assignments of `variables` to their domains, building the
// query lineage ⋁_assignment ⋀_atom tuple-var.
prop::PropFormula BuildTypedLineage(
    const ConjunctiveQuery& query, const std::vector<std::string>& variables,
    const std::map<std::string, std::uint64_t>& domain_sizes,
    TypedTupleIndex* index) {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(variables.size());
  for (const std::string& v : variables) {
    auto it = domain_sizes.find(v);
    if (it == domain_sizes.end()) {
      throw std::invalid_argument("typed grounding: no domain size for " + v);
    }
    if (it->second == 0) return prop::PropFalse();
    sizes.push_back(it->second);
  }

  std::vector<std::uint64_t> assignment(variables.size(), 0);
  std::vector<prop::PropFormula> disjuncts;
  for (;;) {
    std::vector<prop::PropFormula> conjuncts;
    conjuncts.reserve(query.atoms().size());
    for (const ConjunctiveQuery::QueryAtom& atom : query.atoms()) {
      std::vector<std::uint64_t> constants;
      constants.reserve(atom.variables.size());
      for (const std::string& v : atom.variables) {
        std::size_t position = static_cast<std::size_t>(
            std::find(variables.begin(), variables.end(), v) -
            variables.begin());
        constants.push_back(assignment[position]);
      }
      conjuncts.push_back(
          prop::PropVar(index->VariableFor(atom.relation, constants)));
    }
    disjuncts.push_back(prop::PropAnd(std::move(conjuncts)));

    // Odometer increment.
    std::size_t position = 0;
    while (position < assignment.size() &&
           ++assignment[position] == sizes[position]) {
      assignment[position] = 0;
      ++position;
    }
    if (position == assignment.size()) break;
  }
  return prop::PropOr(std::move(disjuncts));
}

}  // namespace

ConjunctiveQuery TypedCycle(std::size_t k) {
  if (k < 3) throw std::invalid_argument("typed cycle requires k >= 3");
  ConjunctiveQuery query;
  for (std::size_t i = 1; i <= k; ++i) {
    std::string x_i = "x" + std::to_string(i);
    std::string x_next = "x" + std::to_string(i == k ? 1 : i + 1);
    query.AddAtom("R" + std::to_string(i), {x_i, x_next});
  }
  return query;
}

numeric::BigRational TypedGroundedProbability(
    const ConjunctiveQuery& query,
    const std::map<std::string, std::uint64_t>& domain_sizes) {
  std::vector<std::string> variables = query.Variables();
  TypedTupleIndex index;
  prop::PropFormula lineage =
      BuildTypedLineage(query, variables, domain_sizes, &index);

  prop::TseitinResult encoded =
      prop::TseitinTransform(lineage, index.Count());
  wmc::WeightMap weights(encoded.cnf.variable_count);
  for (prop::VarId v = 0; v < index.Count(); ++v) {
    const BigRational& p = query.probability(index.RelationOf(v));
    weights.Set(v, p, BigRational(1) - p);
  }
  return wmc::CountWeightedModels(std::move(encoded.cnf),
                                  std::move(weights));
}

numeric::BigRational TypedGroundedProbability(const ConjunctiveQuery& query,
                                              std::uint64_t domain_size) {
  std::map<std::string, std::uint64_t> domains;
  for (const std::string& v : query.Variables()) domains[v] = domain_size;
  return TypedGroundedProbability(query, domains);
}

CkEmbedding EmbedCkInBetaCyclicQuery(
    const ConjunctiveQuery& beta_cyclic_query,
    const std::vector<std::uint64_t>& cycle_domain_sizes,
    const std::vector<BigRational>& cycle_probabilities) {
  Hypergraph graph = BuildHypergraph(beta_cyclic_query);
  std::optional<WeakBetaCycle> cycle = FindWeakBetaCycle(graph);
  if (!cycle.has_value()) {
    throw std::invalid_argument(
        "EmbedCkInBetaCyclicQuery: query has no weak beta-cycle");
  }
  std::size_t k = cycle->edges.size();
  if (cycle_domain_sizes.size() != k || cycle_probabilities.size() != k) {
    throw std::invalid_argument(
        "EmbedCkInBetaCyclicQuery: expected " + std::to_string(k) +
        " domain sizes and probabilities (cycle length)");
  }

  CkEmbedding embedding;
  embedding.cycle = *cycle;
  embedding.k = k;

  // C_k relation i joins x_i (cycle node i-1, 0-based nodes[i-1]) to
  // x_{i+1} (nodes[i mod k]). In the weak β-cycle R_1 x_1 R_2 ... x_k R_1,
  // node x_i lies in edges R_i and R_{i+1}, so the edge containing both
  // nodes[i-1] and nodes[i] is edges[i mod k]. We rebind probabilities by
  // looking the common edge up rather than trusting index arithmetic.
  const auto& edges = graph.edges();
  std::map<std::string, BigRational> cycle_probability_of;
  std::map<std::string, std::uint64_t> cycle_domain_of;
  for (std::size_t i = 0; i < k; ++i) {
    const std::string& node_a = cycle->nodes[i];
    const std::string& node_b = cycle->nodes[(i + 1) % k];
    // The unique cycle edge containing both endpoints of C_k's relation
    // R_{i+1} (joining x_{i+1} = node_a's successor ordering is rotational,
    // so any consistent orientation yields the same set of instances).
    const std::size_t* common = nullptr;
    for (const std::size_t& e : cycle->edges) {
      if (edges[e].nodes.contains(node_a) &&
          edges[e].nodes.contains(node_b)) {
        common = &e;
        break;
      }
    }
    if (common == nullptr) {
      throw std::logic_error("weak beta-cycle misses a connecting edge");
    }
    cycle_probability_of[edges[*common].name] = cycle_probabilities[i];
    cycle_domain_of[node_a] = cycle_domain_sizes[i];
  }

  // Rebuild Q with rebound probabilities.
  ConjunctiveQuery bound;
  for (const ConjunctiveQuery::QueryAtom& atom :
       beta_cyclic_query.atoms()) {
    bound.AddAtom(atom.relation, atom.variables);
    auto it = cycle_probability_of.find(atom.relation);
    bound.SetProbability(atom.relation, it != cycle_probability_of.end()
                                            ? it->second
                                            : BigRational(1));
  }
  embedding.query = std::move(bound);

  for (const std::string& v : beta_cyclic_query.Variables()) {
    auto it = cycle_domain_of.find(v);
    embedding.domain_sizes[v] = it != cycle_domain_of.end() ? it->second : 1;
  }
  return embedding;
}

numeric::BigRational TypedCycleProbability(
    std::size_t k, const std::vector<std::uint64_t>& domain_sizes,
    const std::vector<BigRational>& probabilities) {
  if (domain_sizes.size() != k || probabilities.size() != k) {
    throw std::invalid_argument(
        "TypedCycleProbability: need k domain sizes and probabilities");
  }
  ConjunctiveQuery cycle = TypedCycle(k);
  std::map<std::string, std::uint64_t> domains;
  for (std::size_t i = 0; i < k; ++i) {
    domains["x" + std::to_string(i + 1)] = domain_sizes[i];
    cycle.SetProbability("R" + std::to_string(i + 1), probabilities[i]);
  }
  return TypedGroundedProbability(cycle, domains);
}

}  // namespace swfomc::cq
