#ifndef SWFOMC_CQ_CHAIN_QUERY_H_
#define SWFOMC_CQ_CHAIN_QUERY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "cq/conjunctive_query.h"
#include "numeric/combinatorics.h"
#include "numeric/rational.h"

namespace swfomc::cq {

/// Example 3.10: the linear chain query
///
///   Q = ∃x0 ∃x1 ... ∃xm  R1(x0,x1) ∧ R2(x1,x2) ∧ ... ∧ Rm(x(m-1),xm)
///
/// evaluated by the paper's explicit recurrence (the specialization of
/// the Theorem 3.6 rules (a) and (b) to chains): eliminate the isolated
/// tail variable x_m, turning R_m into a unary relation of probability
/// q_m = 1 - (1 - p_m)^{n_m}, then condition on the number k of elements
/// in x_{m-1}'s domain carrying that unary relation:
///
///   P(n_0..n_m) = Σ_{k=1..n_{m-1}} C(n_{m-1}, k) q_m^k (1-q_m)^{n_{m-1}-k}
///                 · P(n_0..n_{m-2}, k)
///
/// with P(n_0) = 1 for n_0 >= 1. Memoized on (chain position, restricted
/// domain size); polynomial in max n_i for fixed m, exactly as the paper
/// observes ("not ... polynomial in both n and m").
class ChainQuery {
 public:
  /// A chain of m relations with the given tuple probabilities.
  explicit ChainQuery(std::vector<numeric::BigRational> probabilities);

  std::size_t length() const { return probabilities_.size(); }

  /// Pr(Q) with per-variable domain sizes n_0..n_m (m+1 values).
  numeric::BigRational Probability(
      const std::vector<std::uint64_t>& domain_sizes);

  /// Standard semantics: all variables range over [n].
  numeric::BigRational Probability(std::uint64_t domain_size);

  /// The same chain as a generic ConjunctiveQuery (for cross-checking
  /// against the Theorem 3.6 evaluator and typed grounding).
  ConjunctiveQuery ToConjunctiveQuery() const;

 private:
  numeric::BigRational Recurse(std::size_t m,
                               const std::vector<std::uint64_t>& domains,
                               std::uint64_t last_domain);

  std::vector<numeric::BigRational> probabilities_;
  std::map<std::pair<std::size_t, std::uint64_t>, numeric::BigRational>
      memo_;
  numeric::BinomialTable binomials_;
};

}  // namespace swfomc::cq

#endif  // SWFOMC_CQ_CHAIN_QUERY_H_
