#include "cq/gamma_evaluator.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "numeric/combinatorics.h"

namespace swfomc::cq {

namespace {

using numeric::BigInt;
using numeric::BigRational;

constexpr std::uint64_t kMaxConditioningDomain = 1u << 20;

// Raised-to-BigInt power with a sanity bound (exponents are domain sizes,
// polynomial in n).
BigRational PowBig(const BigRational& base, const BigInt& exponent) {
  if (exponent.IsNegative()) {
    throw std::domain_error("GammaEvaluator: negative exponent");
  }
  if (!exponent.FitsInt64()) {
    throw std::invalid_argument("GammaEvaluator: exponent too large");
  }
  return BigRational::Pow(base, exponent.ToInt64());
}

struct StateAtom {
  std::set<int> vars;
  BigRational probability;
};

struct State {
  std::vector<StateAtom> atoms;
  std::map<int, BigInt> domains;  // every var occurring in atoms

  std::string Key() const {
    // Canonical form: atoms sorted by (vars, probability).
    std::vector<std::string> parts;
    parts.reserve(atoms.size());
    for (const StateAtom& atom : atoms) {
      std::string s = "[";
      for (int v : atom.vars) s += std::to_string(v) + ",";
      s += "]" + atom.probability.ToString();
      parts.push_back(std::move(s));
    }
    std::sort(parts.begin(), parts.end());
    std::string key;
    for (const std::string& p : parts) key += p + ";";
    key += "|";
    for (const auto& [v, n] : domains) {
      key += std::to_string(v) + "=" + n.ToString() + ",";
    }
    return key;
  }

  // Keeps `domains` restricted to variables that still occur.
  void PruneDomains() {
    std::set<int> active;
    for (const StateAtom& atom : atoms) {
      active.insert(atom.vars.begin(), atom.vars.end());
    }
    for (auto it = domains.begin(); it != domains.end();) {
      if (!active.contains(it->first)) {
        it = domains.erase(it);
      } else {
        ++it;
      }
    }
  }
};

class Solver {
 public:
  explicit Solver(GammaEvaluator::Stats* stats,
                  std::map<std::string, BigRational>* memo)
      : stats_(stats), memo_(memo) {}

  BigRational Solve(State state) {
    // ∃x over an empty range is false.
    for (const auto& [v, n] : state.domains) {
      if (n.IsZero()) return BigRational(0);
    }
    if (state.atoms.empty()) return BigRational(1);
    std::string key = state.Key();
    auto it = memo_->find(key);
    if (it != memo_->end()) {
      ++stats_->memo_hits;
      return it->second;
    }
    BigRational result = SolveUncached(std::move(state));
    memo_->emplace(std::move(key), result);
    stats_->memo_entries = memo_->size();
    return result;
  }

 private:
  BigRational SolveUncached(State state) {
    BigRational factor(1);
    // Apply the non-branching rules (a), (c), (d), (e) to a fixed point.
    bool progress = true;
    while (progress) {
      progress = false;
      // (c) empty atom R(): the conjunct requires the 0-ary tuple present.
      for (std::size_t i = 0; i < state.atoms.size(); ++i) {
        if (state.atoms[i].vars.empty()) {
          factor *= state.atoms[i].probability;
          state.atoms.erase(state.atoms.begin() +
                            static_cast<std::ptrdiff_t>(i));
          ++stats_->rule_applications;
          progress = true;
          break;
        }
      }
      if (progress) continue;
      // (d) identical variable sets: independent conjuncts over the same
      // groundings merge multiplicatively.
      for (std::size_t i = 0; i < state.atoms.size() && !progress; ++i) {
        for (std::size_t j = i + 1; j < state.atoms.size(); ++j) {
          if (state.atoms[i].vars == state.atoms[j].vars) {
            state.atoms[i].probability *= state.atoms[j].probability;
            state.atoms.erase(state.atoms.begin() +
                              static_cast<std::ptrdiff_t>(j));
            ++stats_->rule_applications;
            progress = true;
            break;
          }
        }
      }
      if (progress) continue;
      // (a) isolated variable: occurs in exactly one atom.
      for (const auto& [v, n] : state.domains) {
        int occurrences = 0;
        std::size_t home = 0;
        for (std::size_t i = 0; i < state.atoms.size(); ++i) {
          if (state.atoms[i].vars.contains(v)) {
            ++occurrences;
            home = i;
          }
        }
        if (occurrences == 1) {
          // ∃x∈[n_x]: at least one of the n_x independent tuples present.
          StateAtom& atom = state.atoms[home];
          atom.probability =
              BigRational(1) -
              PowBig(BigRational(1) - atom.probability, n);
          atom.vars.erase(v);
          ++stats_->rule_applications;
          progress = true;
          break;
        }
      }
      if (progress) {
        state.PruneDomains();
        continue;
      }
      // (e) edge-equivalent variables.
      std::vector<int> vars;
      for (const auto& [v, n] : state.domains) vars.push_back(v);
      for (std::size_t i = 0; i < vars.size() && !progress; ++i) {
        for (std::size_t j = i + 1; j < vars.size(); ++j) {
          bool equivalent = true;
          for (const StateAtom& atom : state.atoms) {
            if (atom.vars.contains(vars[i]) != atom.vars.contains(vars[j])) {
              equivalent = false;
              break;
            }
          }
          if (equivalent) {
            for (StateAtom& atom : state.atoms) atom.vars.erase(vars[j]);
            state.domains[vars[i]] *= state.domains[vars[j]];
            state.domains.erase(vars[j]);
            ++stats_->rule_applications;
            progress = true;
            break;
          }
        }
      }
    }

    if (state.atoms.empty()) return factor;

    // (b) singleton atom R(x): condition on k = |R| (recursion + memo).
    for (std::size_t i = 0; i < state.atoms.size(); ++i) {
      if (state.atoms[i].vars.size() != 1) continue;
      int x = *state.atoms[i].vars.begin();
      BigRational p = state.atoms[i].probability;
      const BigInt& nx_big = state.domains.at(x);
      if (!nx_big.FitsInt64() ||
          nx_big.ToInt64() > static_cast<std::int64_t>(
                                 kMaxConditioningDomain)) {
        throw std::invalid_argument(
            "GammaEvaluator: conditioning domain too large");
      }
      std::uint64_t nx = static_cast<std::uint64_t>(nx_big.ToInt64());
      State residual = state;
      residual.atoms.erase(residual.atoms.begin() +
                           static_cast<std::ptrdiff_t>(i));
      ++stats_->rule_applications;
      BigRational sum;
      for (std::uint64_t k = 0; k <= nx; ++k) {
        BigRational coefficient(numeric::Binomial(nx, k));
        coefficient *= BigRational::Pow(p, static_cast<std::int64_t>(k));
        coefficient *= BigRational::Pow(
            BigRational(1) - p, static_cast<std::int64_t>(nx - k));
        if (coefficient.IsZero()) continue;
        State sub = residual;
        sub.domains[x] = BigInt::FromUnsigned(k);
        sum += coefficient * Solve(std::move(sub));
      }
      return factor * sum;
    }

    throw std::invalid_argument(
        "GammaEvaluator: reduction got stuck — the query is not "
        "gamma-acyclic");
  }

  GammaEvaluator::Stats* stats_;
  std::map<std::string, BigRational>* memo_;
};

}  // namespace

numeric::BigRational GammaEvaluator::Probability(
    const ConjunctiveQuery& query,
    const std::map<std::string, numeric::BigInt>& domain_sizes) {
  State state;
  std::map<std::string, int> ids;
  for (const ConjunctiveQuery::QueryAtom& atom : query.atoms()) {
    StateAtom sa;
    sa.probability = query.probability(atom.relation);
    for (const std::string& v : atom.variables) {
      auto [it, inserted] = ids.emplace(v, static_cast<int>(ids.size()));
      sa.vars.insert(it->second);
      auto domain = domain_sizes.find(v);
      if (domain == domain_sizes.end()) {
        throw std::invalid_argument(
            "GammaEvaluator: missing domain size for variable " + v);
      }
      state.domains[it->second] = domain->second;
    }
    state.atoms.push_back(std::move(sa));
  }
  Solver solver(&stats_, &memo_);
  return solver.Solve(std::move(state));
}

numeric::BigRational GammaEvaluator::Probability(
    const ConjunctiveQuery& query, std::uint64_t domain_size) {
  std::map<std::string, numeric::BigInt> domains;
  for (const std::string& v : query.Variables()) {
    domains[v] = numeric::BigInt::FromUnsigned(domain_size);
  }
  return Probability(query, domains);
}

numeric::BigRational GammaAcyclicProbability(const ConjunctiveQuery& query,
                                             std::uint64_t domain_size) {
  GammaEvaluator evaluator;
  return evaluator.Probability(query, domain_size);
}

numeric::BigRational GammaAcyclicWFOMC(
    const ConjunctiveQuery& query, std::uint64_t domain_size,
    const std::map<std::string,
                   std::pair<numeric::BigRational, numeric::BigRational>>&
        weights) {
  ConjunctiveQuery probabilistic = query;
  BigRational normalizer(1);
  for (const ConjunctiveQuery::QueryAtom& atom : query.atoms()) {
    auto it = weights.find(atom.relation);
    if (it == weights.end()) {
      throw std::invalid_argument("GammaAcyclicWFOMC: missing weights for " +
                                  atom.relation);
    }
    const auto& [w, w_bar] = it->second;
    BigRational total = w + w_bar;
    if (total.IsZero()) {
      throw std::domain_error(
          "GammaAcyclicWFOMC: w + w̄ = 0 for " + atom.relation +
          " (probability conversion undefined)");
    }
    probabilistic.SetProbability(atom.relation, w / total);
    std::uint64_t tuples = 1;
    for (std::size_t i = 0; i < atom.variables.size(); ++i) {
      tuples *= domain_size;
    }
    normalizer *= BigRational::Pow(total, static_cast<std::int64_t>(tuples));
  }
  return GammaAcyclicProbability(probabilistic, domain_size) * normalizer;
}

}  // namespace swfomc::cq
