#include "cq/chain_query.h"

#include <stdexcept>
#include <string>

#include "numeric/combinatorics.h"

namespace swfomc::cq {

namespace {

using numeric::BigRational;

BigRational Pow(const BigRational& base, std::uint64_t exponent) {
  return BigRational::Pow(base, static_cast<std::int64_t>(exponent));
}

}  // namespace

ChainQuery::ChainQuery(std::vector<BigRational> probabilities)
    : probabilities_(std::move(probabilities)) {
  if (probabilities_.empty()) {
    throw std::invalid_argument("ChainQuery: need at least one relation");
  }
}

BigRational ChainQuery::Recurse(std::size_t m,
                                const std::vector<std::uint64_t>& domains,
                                std::uint64_t last_domain) {
  // Pr of the length-m prefix chain where x_m's domain is [last_domain]
  // and x_0..x_{m-1} keep domains[0..m-1].
  if (m == 0) {
    return domains[0] >= 1 ? BigRational(1) : BigRational(0);
  }
  auto key = std::make_pair(m, last_domain);
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;

  const BigRational& p = probabilities_[m - 1];
  // Rule (a): x_m is isolated; R_m becomes unary with probability
  // q = 1 - (1-p)^{n_m}.
  BigRational q = BigRational(1) - Pow(BigRational(1) - p, last_domain);
  // Rule (b): condition on k = |R_m| among x_{m-1}'s n domain elements.
  std::uint64_t n = domains[m - 1];
  BigRational result(0);
  for (std::uint64_t k = 1; k <= n; ++k) {
    BigRational term(binomials_.Get(n, k));
    term *= Pow(q, k);
    term *= Pow(BigRational(1) - q, n - k);
    term *= Recurse(m - 1, domains, k);
    result += term;
  }
  memo_.emplace(key, result);
  return result;
}

BigRational ChainQuery::Probability(
    const std::vector<std::uint64_t>& domain_sizes) {
  if (domain_sizes.size() != length() + 1) {
    throw std::invalid_argument(
        "ChainQuery: need " + std::to_string(length() + 1) +
        " domain sizes (one per variable)");
  }
  for (std::uint64_t n : domain_sizes) {
    if (n == 0) return BigRational(0);
  }
  memo_.clear();
  return Recurse(length(), domain_sizes, domain_sizes.back());
}

BigRational ChainQuery::Probability(std::uint64_t domain_size) {
  return Probability(
      std::vector<std::uint64_t>(length() + 1, domain_size));
}

ConjunctiveQuery ChainQuery::ToConjunctiveQuery() const {
  ConjunctiveQuery query;
  for (std::size_t i = 1; i <= length(); ++i) {
    std::string relation = "R" + std::to_string(i);
    query.AddAtom(relation, {"x" + std::to_string(i - 1),
                             "x" + std::to_string(i)});
    query.SetProbability(relation, probabilities_[i - 1]);
  }
  return query;
}

}  // namespace swfomc::cq
