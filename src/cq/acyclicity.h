#ifndef SWFOMC_CQ_ACYCLICITY_H_
#define SWFOMC_CQ_ACYCLICITY_H_

#include <optional>

#include "cq/hypergraph.h"

namespace swfomc::cq {

/// γ-acyclicity per Fagin's reduction characterization (used verbatim in
/// the proof of Theorem 3.6): the hypergraph is γ-acyclic iff it reduces
/// to the empty hypergraph under, in any order,
///   (a) deleting a node that belongs to exactly one edge,
///   (b) deleting an edge with exactly one node,
///   (c) deleting an empty edge,
///   (d) deleting one of two edges with identical node sets,
///   (e) merging two edge-equivalent nodes (nodes in exactly the same
///       edges).
bool IsGammaAcyclic(const Hypergraph& graph);

/// α-acyclicity via GYO reduction: repeatedly delete nodes occurring in a
/// single edge and edges contained in other edges; α-acyclic iff the
/// hypergraph empties. Every γ-acyclic hypergraph is α-acyclic, not
/// conversely (Figure 1's containments).
bool IsAlphaAcyclic(const Hypergraph& graph);

/// A weak β-cycle (Fagin): a sequence R_1 x_1 R_2 x_2 ... x_{k-1} R_k x_k
/// R_{k+1} = R_1 with k >= 3, all x_i and R_i distinct, where each x_i
/// occurs in R_i and R_{i+1} and in no other edge of the cycle. β-acyclic
/// = no weak β-cycle. Section 3.2 reduces WFOMC of the typed cycle C_k to
/// any query containing a weak β-cycle of length k.
struct WeakBetaCycle {
  std::vector<std::size_t> edges;      // R_1 .. R_k (indices)
  std::vector<std::string> nodes;      // x_1 .. x_k
};
std::optional<WeakBetaCycle> FindWeakBetaCycle(const Hypergraph& graph);

inline bool IsBetaAcyclic(const Hypergraph& graph) {
  return !FindWeakBetaCycle(graph).has_value();
}

/// The Figure 1 taxonomy label of a query's hypergraph.
enum class AcyclicityClass {
  kGammaAcyclic,   // PTIME by Theorem 3.6
  kBetaAcyclic,    // open (paper: possibly the tractability frontier)
  kAlphaAcyclic,   // as hard as general CQs w/o self-joins
  kCyclic,         // contains C_k-style structure
};
AcyclicityClass Classify(const Hypergraph& graph);
const char* ToString(AcyclicityClass value);

}  // namespace swfomc::cq

#endif  // SWFOMC_CQ_ACYCLICITY_H_
