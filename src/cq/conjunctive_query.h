#ifndef SWFOMC_CQ_CONJUNCTIVE_QUERY_H_
#define SWFOMC_CQ_CONJUNCTIVE_QUERY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "numeric/rational.h"

namespace swfomc::cq {

/// A Boolean conjunctive query without self-joins (Section 3.2): an
/// existentially quantified conjunction of positive relational atoms,
/// every atom naming a distinct relation. The evaluator implements the
/// paper's generalized semantics where each variable x_i ranges over its
/// own domain [n_i]; the standard semantics sets all n_i = n.
///
/// Probabilities are per-relation tuple probabilities p_R ∈ [0,1] (the
/// symmetric setting); WFOMC weights convert via p = w / (w + w̄).
class ConjunctiveQuery {
 public:
  struct QueryAtom {
    std::string relation;                 // distinct per atom (no self-joins)
    std::vector<std::string> variables;   // repeated variables allowed
  };

  ConjunctiveQuery() = default;

  /// Adds an atom; throws std::invalid_argument on a repeated relation
  /// name (self-join).
  void AddAtom(const std::string& relation,
               std::vector<std::string> variables);

  /// Sets the symmetric tuple probability of a relation (default 1/2).
  void SetProbability(const std::string& relation,
                      numeric::BigRational probability);

  const std::vector<QueryAtom>& atoms() const { return atoms_; }
  const numeric::BigRational& probability(const std::string& relation) const;

  /// All distinct variables, in first-appearance order.
  std::vector<std::string> Variables() const;

  /// Parses "R(x,y), S(y,z), T(z)" — a comma-separated atom list.
  static ConjunctiveQuery FromString(const std::string& text);

  /// The query as an FO sentence ∃x⃗ ⋀ atoms over a fresh vocabulary whose
  /// weights encode the probabilities (w = p, w̄ = 1-p), for cross-checking
  /// against the grounded engine.
  struct AsSentence {
    logic::Formula sentence;
    logic::Vocabulary vocabulary;
  };
  AsSentence ToSentence() const;

  /// Human-readable rendering.
  std::string ToString() const;

 private:
  std::vector<QueryAtom> atoms_;
  std::map<std::string, numeric::BigRational> probabilities_;
};

}  // namespace swfomc::cq

#endif  // SWFOMC_CQ_CONJUNCTIVE_QUERY_H_
