#ifndef SWFOMC_CQ_TYPED_CYCLE_H_
#define SWFOMC_CQ_TYPED_CYCLE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "cq/acyclicity.h"
#include "cq/conjunctive_query.h"
#include "numeric/rational.h"

namespace swfomc::cq {

/// The typed k-cycle of Section 3.2 / Table 2:
///
///   C_k = ∃x1 ... ∃xk (R1(x1,x2), R2(x2,x3), ..., Rk(xk,x1)),  k >= 3,
///
/// conjectured hard for symmetric WFOMC. Relations are named "R1".."Rk",
/// variables "x1".."xk".
ConjunctiveQuery TypedCycle(std::size_t k);

/// Pr(Q) under the paper's *generalized* semantics where each variable
/// x_i ranges over its own domain [n_i] (Section 3.2 introduces this to
/// state the C_k reduction; the standard semantics is all n_i equal).
/// Computed by typed grounding: the lineage ⋁_assignments ⋀_atoms tuple
/// is built over per-relation typed tuple spaces and counted with DPLL.
/// Exponential in the grounding size — this is the ground-truth baseline
/// (no PTIME algorithm is expected to exist for cyclic queries).
numeric::BigRational TypedGroundedProbability(
    const ConjunctiveQuery& query,
    const std::map<std::string, std::uint64_t>& domain_sizes);

/// Standard-semantics convenience: every variable ranges over [n].
numeric::BigRational TypedGroundedProbability(const ConjunctiveQuery& query,
                                              std::uint64_t domain_size);

/// Section 3.2's reduction, made executable: given a β-cyclic query Q
/// (one containing a weak β-cycle R_1 x_1 R_2 x_2 ... x_k R_{k+1} = R_1),
/// any C_k instance embeds into a Q instance with the same WFOMC:
///   * cycle relations inherit the C_k relation probabilities,
///   * all other relations of Q get probability 1 (tuples always present,
///     so their atoms are vacuously satisfied),
///   * cycle variables inherit the C_k domain sizes,
///   * all other variables get domain size 1.
/// Hence PTIME data complexity for Q would give PTIME for C_k — the
/// paper's evidence that every β-cyclic query is "C_k-hard" (Figure 1).
struct CkEmbedding {
  ConjunctiveQuery query;  // Q with probabilities rebound per the reduction
  std::map<std::string, std::uint64_t> domain_sizes;
  WeakBetaCycle cycle;     // the weak β-cycle that was used
  std::size_t k = 0;       // its length
};

/// Builds the embedding of C_k (with the given per-variable domain sizes
/// n_1..n_k and per-relation probabilities p_1..p_k, where relation i
/// joins x_i to x_{i+1}) into `beta_cyclic_query`. Throws
/// std::invalid_argument when the query has no weak β-cycle, or when the
/// supplied vectors do not match the cycle length k found in the query.
CkEmbedding EmbedCkInBetaCyclicQuery(
    const ConjunctiveQuery& beta_cyclic_query,
    const std::vector<std::uint64_t>& cycle_domain_sizes,
    const std::vector<numeric::BigRational>& cycle_probabilities);

/// Pr(C_k) for the instance described by the same vectors — the left-hand
/// side of the reduction identity (typed grounding).
numeric::BigRational TypedCycleProbability(
    std::size_t k, const std::vector<std::uint64_t>& domain_sizes,
    const std::vector<numeric::BigRational>& probabilities);

}  // namespace swfomc::cq

#endif  // SWFOMC_CQ_TYPED_CYCLE_H_
