#ifndef SWFOMC_CQ_HYPERGRAPH_H_
#define SWFOMC_CQ_HYPERGRAPH_H_

#include <set>
#include <string>
#include <vector>

#include "cq/conjunctive_query.h"

namespace swfomc::cq {

/// The hypergraph of a conjunctive query (Section 3.2): variables are
/// nodes, atoms are hyperedges (as node *sets* — repeated variables
/// collapse, which is harmless for symmetric evaluation).
class Hypergraph {
 public:
  struct Edge {
    std::string name;            // originating relation
    std::set<std::string> nodes;
  };

  void AddEdge(std::string name, std::set<std::string> nodes);

  const std::vector<Edge>& edges() const { return edges_; }
  std::set<std::string> Nodes() const;

  bool Empty() const { return edges_.empty(); }

  /// Edges containing a node.
  std::vector<std::size_t> EdgesContaining(const std::string& node) const;

  std::string ToString() const;

 private:
  std::vector<Edge> edges_;
};

/// Builds the query's hypergraph.
Hypergraph BuildHypergraph(const ConjunctiveQuery& query);

}  // namespace swfomc::cq

#endif  // SWFOMC_CQ_HYPERGRAPH_H_
